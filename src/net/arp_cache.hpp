// Per-host ARP cache.
//
// Semantics chosen to match the behaviour the paper's ARP-spoofing relies
// on (Section 5.1):
//  * a reply addressed to this host inserts or updates an entry;
//  * a broadcast gratuitous announcement only UPDATES an existing entry —
//    hence Wackamole must also unicast spoofed replies at the router to be
//    sure its cache flips to the new owner;
//  * entries do not age out by default (like a busy router's cache within
//    the fail-over window), so a stale entry keeps black-holing traffic
//    until a spoof arrives.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/address.hpp"
#include "sim/time.hpp"

namespace wam::net {

class ArpCache {
 public:
  struct Entry {
    MacAddress mac;
    sim::TimePoint updated;
  };

  explicit ArpCache(sim::Duration ttl = sim::kZero) : ttl_(ttl) {}

  /// Insert or overwrite.
  void put(Ipv4Address ip, MacAddress mac, sim::TimePoint now);
  /// Overwrite only if an entry exists (gratuitous-broadcast semantics).
  /// Returns true if an entry was updated.
  bool update_existing(Ipv4Address ip, MacAddress mac, sim::TimePoint now);
  /// nullopt on miss or on an expired entry (when a ttl is configured).
  [[nodiscard]] std::optional<MacAddress> lookup(Ipv4Address ip,
                                                 sim::TimePoint now) const;
  [[nodiscard]] bool contains(Ipv4Address ip) const {
    return entries_.count(ip) > 0;
  }
  void erase(Ipv4Address ip) { entries_.erase(ip); }
  void clear() { entries_.clear(); }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  /// All cached IPs (used by the router application's ARP-knowledge sharing).
  [[nodiscard]] std::vector<Ipv4Address> known_ips() const;
  [[nodiscard]] const std::map<Ipv4Address, Entry>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::string describe() const;

 private:
  sim::Duration ttl_;  // zero = never expires
  std::map<Ipv4Address, Entry> entries_;
};

}  // namespace wam::net
