// Simulated host: NICs, IP aliases (virtual IPs), ARP, UDP sockets,
// optional packet forwarding.
//
// This is the "operating system" substrate that the real Wackamole drives
// through ifconfig aliases and raw ARP sockets. The surface area mirrors
// what the paper's IP-address-control component needs:
//   * add_alias / remove_alias — acquire / release a virtual IP;
//   * send_gratuitous_arp — broadcast announcement that updates existing
//     ARP entries LAN-wide;
//   * send_spoofed_reply — unicast ARP reply aimed at one peer (the router
//     in Figure 3), which inserts/updates that peer's cache entry;
//   * set_interface_up(false) — the paper's fault ("disconnecting the
//     interface").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "net/arp_cache.hpp"
#include "net/fabric.hpp"
#include "net/frame.hpp"
#include "sim/log.hpp"

namespace wam::net {

/// Per-host statistics; a thin view over registry cells once the host is
/// bound to an obs::Observability (see obs/metrics.hpp).
struct HostCounters {
  obs::Counter udp_sent;
  obs::Counter udp_received;
  obs::Counter udp_no_socket;
  obs::Counter ip_forwarded;
  obs::Counter ip_no_route;
  obs::Counter ip_not_ours;
  obs::Counter arp_requests_sent;
  obs::Counter arp_replies_sent;
  obs::Counter arp_resolution_failures;
  obs::Counter decode_errors;

  void bind(obs::MetricRegistry& registry, const std::string& scope);
  void export_into(obs::MetricRegistry& registry,
                   const std::string& scope) const;
};

class Host {
 public:
  /// Metadata handed to UDP handlers along with the payload.
  struct UdpContext {
    Ipv4Address src_ip;
    std::uint16_t src_port = 0;
    Ipv4Address dst_ip;  // the address the sender targeted (a VIP, often)
    std::uint16_t dst_port = 0;
    int ifindex = 0;
  };
  /// UDP receive callback. The payload is a zero-copy view into the
  /// received frame's refcounted buffer; handlers that keep it only for
  /// the duration of the call (the normal case) never pay a copy. Legacy
  /// lambdas taking `const util::Bytes&` still bind — SharedBytes detaches
  /// (deep-copies) into the temporary at each invocation.
  using UdpHandler =
      std::function<void(const UdpContext&, const util::SharedBytes& payload)>;

  Host(sim::Scheduler& sched, Fabric& fabric, std::string name,
       sim::Log* log = nullptr);
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  /// Attach an interface to a segment with a stationary primary address.
  /// Returns the interface index.
  int add_interface(SegmentId segment, Ipv4Address primary, int prefix_len);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int interface_count() const {
    return static_cast<int>(ifaces_.size());
  }
  [[nodiscard]] Ipv4Address primary_ip(int ifindex = 0) const;
  [[nodiscard]] MacAddress mac(int ifindex = 0) const;
  [[nodiscard]] NicId nic_id(int ifindex = 0) const;
  [[nodiscard]] Ipv4Network network(int ifindex = 0) const;

  // ---- Virtual IP management (the paper's acquire/release mechanism) ----
  void add_alias(int ifindex, Ipv4Address ip);
  void remove_alias(int ifindex, Ipv4Address ip);
  [[nodiscard]] bool owns_ip(Ipv4Address ip) const;
  [[nodiscard]] std::vector<Ipv4Address> aliases(int ifindex) const;
  /// Interface index owning `ip` (primary or alias), or -1.
  [[nodiscard]] int ifindex_of_ip(Ipv4Address ip) const;

  // ---- ARP ----
  /// Broadcast gratuitous announcement for `ip` (updates existing entries).
  void send_gratuitous_arp(int ifindex, Ipv4Address ip);
  /// Unicast a spoofed reply claiming `claimed_ip` at this host's MAC to the
  /// host owning `target_ip` (resolving its MAC first if needed).
  void send_spoofed_reply(int ifindex, Ipv4Address claimed_ip,
                          Ipv4Address target_ip);
  /// Duplicate-address detection: would another reachable host on this
  /// interface's segment answer a who-has for `ip`? (RFC 5227-style probe,
  /// answered synchronously by the fabric's ownership predicates.)
  [[nodiscard]] bool probe_address(int ifindex, Ipv4Address ip) const;
  [[nodiscard]] ArpCache& arp_cache() { return arp_; }
  [[nodiscard]] const ArpCache& arp_cache() const { return arp_; }

  // ---- UDP sockets ----
  /// Returns false if the port is already bound.
  bool open_udp(std::uint16_t port, UdpHandler handler);
  void close_udp(std::uint16_t port);
  void send_udp(Ipv4Address dst, std::uint16_t dst_port,
                std::uint16_t src_port, util::Bytes payload);
  /// Respond "from" a specific local address (e.g. the VIP a request hit).
  void send_udp_from(Ipv4Address src_ip, Ipv4Address dst,
                     std::uint16_t dst_port, std::uint16_t src_port,
                     util::Bytes payload);
  /// Limited broadcast on one interface (255.255.255.255).
  void send_udp_broadcast(int ifindex, std::uint16_t dst_port,
                          std::uint16_t src_port, util::Bytes payload);

  /// One datagram of a send_udp_burst() batch.
  struct UdpSend {
    Ipv4Address dst;
    std::uint16_t dst_port = 0;
    std::uint16_t src_port = 0;
    util::Bytes payload;
  };
  /// Flyweight injection hook for the open-loop load harness: send many
  /// datagrams at one instant, handing all frames with a resolved next
  /// hop to Fabric::send_batch (one delivery event per receiving NIC)
  /// instead of one fabric event each. Datagrams whose next hop is not
  /// yet in the ARP cache, loopback destinations, and unroutable
  /// destinations fall back to the exact per-datagram path send_udp()
  /// takes, so counters and ARP behavior are unchanged.
  void send_udp_burst(std::vector<UdpSend> batch);

  // ---- IP multicast ----
  /// Subscribe this interface to a 224.0.0.0/4 group (IGMP-less model:
  /// the switch fabric learns the filter directly).
  void join_multicast(int ifindex, Ipv4Address group);
  void leave_multicast(int ifindex, Ipv4Address group);
  [[nodiscard]] bool in_multicast_group(int ifindex, Ipv4Address group) const;
  /// Send a datagram to a multicast group via one interface.
  void send_udp_multicast(int ifindex, Ipv4Address group,
                          std::uint16_t dst_port, std::uint16_t src_port,
                          util::Bytes payload);

  // ---- Fault injection ----
  void set_interface_up(int ifindex, bool up);
  [[nodiscard]] bool interface_up(int ifindex) const;
  /// All interfaces down (host crash as seen from the network).
  void fail();
  void recover();
  [[nodiscard]] bool is_up() const;

  // ---- Forwarding (router role) ----
  void enable_forwarding(bool on) { forwarding_ = on; }
  [[nodiscard]] bool forwarding() const { return forwarding_; }
  void set_default_gateway(Ipv4Address gw) { default_gateway_ = gw; }
  /// Static route: destinations in `dst` go via `next_hop` (which must be on
  /// a directly attached network).
  void add_route(Ipv4Network dst, Ipv4Address next_hop);

  [[nodiscard]] const HostCounters& counters() const { return counters_; }
  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] Fabric& fabric() { return fabric_; }

  /// Back this host's counters with registry cells; convention for
  /// `scope`: "net/s<N>".
  void bind_observability(obs::Observability& obs, std::string scope);

  // ARP resolution tuning (Linux-like defaults).
  sim::Duration arp_retry_interval = sim::seconds(1.0);
  int arp_max_retries = 3;
  std::size_t arp_queue_cap = 32;

 private:
  struct Interface {
    NicId nic = -1;
    SegmentId segment = 0;
    Ipv4Address primary;
    Ipv4Network net;
    std::set<Ipv4Address> aliases;
    std::set<Ipv4Address> multicast_groups;
  };
  struct PendingArp {
    int ifindex = 0;
    std::vector<Ipv4Packet> queue;
    int retries = 0;
    sim::TimerHandle timer;
  };

  void receive(const Frame& frame, NicId nic);
  void handle_arp(const Frame& frame, int ifindex);
  void handle_ipv4(const Frame& frame, int ifindex);
  void deliver_udp(const Ipv4Packet& pkt, int ifindex);
  void forward(Ipv4Packet pkt);
  /// Pick (ifindex, next_hop) for dst; ifindex -1 when unroutable.
  [[nodiscard]] std::pair<int, Ipv4Address> route(Ipv4Address dst) const;
  void transmit_ip(Ipv4Packet pkt, int ifindex, Ipv4Address next_hop);
  void send_arp_request(int ifindex, Ipv4Address target);
  void arp_retry(Ipv4Address next_hop);
  void flush_pending(Ipv4Address resolved_ip);
  const Interface& iface(int ifindex) const;
  Interface& iface(int ifindex);

  sim::Scheduler& sched_;
  Fabric& fabric_;
  std::string name_;
  sim::Logger log_;
  std::vector<Interface> ifaces_;
  ArpCache arp_;
  std::map<std::uint16_t, UdpHandler> sockets_;
  std::map<Ipv4Address, PendingArp> pending_arp_;
  bool forwarding_ = false;
  Ipv4Address default_gateway_;
  std::vector<std::pair<Ipv4Network, Ipv4Address>> static_routes_;
  HostCounters counters_;
};

}  // namespace wam::net
