#include "net/arp_cache.hpp"

namespace wam::net {

void ArpCache::put(Ipv4Address ip, MacAddress mac, sim::TimePoint now) {
  entries_[ip] = Entry{mac, now};
}

bool ArpCache::update_existing(Ipv4Address ip, MacAddress mac,
                               sim::TimePoint now) {
  auto it = entries_.find(ip);
  if (it == entries_.end()) return false;
  it->second = Entry{mac, now};
  return true;
}

std::optional<MacAddress> ArpCache::lookup(Ipv4Address ip,
                                           sim::TimePoint now) const {
  auto it = entries_.find(ip);
  if (it == entries_.end()) return std::nullopt;
  if (ttl_ != sim::kZero && now - it->second.updated > ttl_) {
    return std::nullopt;
  }
  return it->second.mac;
}

std::vector<Ipv4Address> ArpCache::known_ips() const {
  std::vector<Ipv4Address> out;
  out.reserve(entries_.size());
  for (const auto& [ip, entry] : entries_) out.push_back(ip);
  return out;
}

std::string ArpCache::describe() const {
  std::string out;
  for (const auto& [ip, entry] : entries_) {
    if (!out.empty()) out += ", ";
    out += ip.to_string() + "=" + entry.mac.to_string();
  }
  return "{" + out + "}";
}

}  // namespace wam::net
