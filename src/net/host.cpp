#include "net/host.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace wam::net {

namespace {

// Single source of truth for the host metric names: bind() and
// export_into() both enumerate through here.
template <typename Counters, typename Fn>
void for_each_host_metric(Counters& c, Fn&& fn) {
  fn("udp_sent", c.udp_sent);
  fn("udp_received", c.udp_received);
  fn("udp_no_socket", c.udp_no_socket);
  fn("ip_forwarded", c.ip_forwarded);
  fn("ip_no_route", c.ip_no_route);
  fn("ip_not_ours", c.ip_not_ours);
  fn("arp_requests_sent", c.arp_requests_sent);
  fn("arp_replies_sent", c.arp_replies_sent);
  fn("arp_resolution_failures", c.arp_resolution_failures);
  fn("decode_errors", c.decode_errors);
}

}  // namespace

void HostCounters::bind(obs::MetricRegistry& registry,
                        const std::string& scope) {
  for_each_host_metric(*this, [&](const char* name, obs::Counter& c) {
    registry.bind(c, scope + "/" + name);
  });
}

void HostCounters::export_into(obs::MetricRegistry& registry,
                               const std::string& scope) const {
  for_each_host_metric(*this, [&](const char* name, const obs::Counter& c) {
    registry.counter(scope + "/" + name) = c.value();
  });
}

void Host::bind_observability(obs::Observability& obs, std::string scope) {
  counters_.bind(obs.registry, scope);
}

Host::Host(sim::Scheduler& sched, Fabric& fabric, std::string name,
           sim::Log* log)
    : sched_(sched),
      fabric_(fabric),
      name_(std::move(name)),
      log_(log, "net/" + name_) {}

int Host::add_interface(SegmentId segment, Ipv4Address primary,
                        int prefix_len) {
  Interface ifc;
  ifc.segment = segment;
  ifc.primary = primary;
  ifc.net = Ipv4Network(primary, prefix_len);
  auto ifindex = static_cast<int>(ifaces_.size());
  ifc.nic = fabric_.attach(segment, fabric_.allocate_mac(),
                           [this](const Frame& f, NicId nic) {
                             receive(f, nic);
                           });
  // Answer peers' duplicate-address probes: we "defend" every address we
  // currently own on this interface, primary and aliases alike.
  fabric_.set_address_probe(ifc.nic, [this, ifindex](Ipv4Address ip) {
    const auto& i = ifaces_[static_cast<std::size_t>(ifindex)];
    return i.primary == ip || i.aliases.count(ip) > 0;
  });
  ifaces_.push_back(std::move(ifc));
  return ifindex;
}

bool Host::probe_address(int ifindex, Ipv4Address ip) const {
  return fabric_.address_in_use(iface(ifindex).nic, ip);
}

const Host::Interface& Host::iface(int ifindex) const {
  WAM_EXPECTS(ifindex >= 0 && ifindex < interface_count());
  return ifaces_[static_cast<std::size_t>(ifindex)];
}

Host::Interface& Host::iface(int ifindex) {
  WAM_EXPECTS(ifindex >= 0 && ifindex < interface_count());
  return ifaces_[static_cast<std::size_t>(ifindex)];
}

Ipv4Address Host::primary_ip(int ifindex) const { return iface(ifindex).primary; }
MacAddress Host::mac(int ifindex) const {
  return fabric_.mac_of(iface(ifindex).nic);
}
NicId Host::nic_id(int ifindex) const { return iface(ifindex).nic; }
Ipv4Network Host::network(int ifindex) const { return iface(ifindex).net; }

void Host::add_alias(int ifindex, Ipv4Address ip) {
  iface(ifindex).aliases.insert(ip);
  log_.debug("alias + %s on if%d", ip.to_string().c_str(), ifindex);
}

void Host::remove_alias(int ifindex, Ipv4Address ip) {
  iface(ifindex).aliases.erase(ip);
  log_.debug("alias - %s on if%d", ip.to_string().c_str(), ifindex);
}

bool Host::owns_ip(Ipv4Address ip) const { return ifindex_of_ip(ip) >= 0; }

std::vector<Ipv4Address> Host::aliases(int ifindex) const {
  const auto& a = iface(ifindex).aliases;
  return {a.begin(), a.end()};
}

int Host::ifindex_of_ip(Ipv4Address ip) const {
  for (int i = 0; i < interface_count(); ++i) {
    const auto& ifc = ifaces_[static_cast<std::size_t>(i)];
    if (ifc.primary == ip || ifc.aliases.count(ip) > 0) return i;
  }
  return -1;
}

// ---------------------------------------------------------------- ARP ----

void Host::send_gratuitous_arp(int ifindex, Ipv4Address ip) {
  const auto& ifc = iface(ifindex);
  ArpPacket arp;
  arp.op = ArpOp::kReply;
  arp.sender_mac = mac(ifindex);
  arp.sender_ip = ip;
  arp.target_mac = MacAddress::broadcast();
  arp.target_ip = ip;  // sender==target marks it gratuitous
  Frame f{mac(ifindex), MacAddress::broadcast(), EtherType::kArp, arp.encode()};
  ++counters_.arp_replies_sent;
  log_.debug("gratuitous ARP for %s", ip.to_string().c_str());
  fabric_.send(ifc.nic, std::move(f));
}

void Host::send_spoofed_reply(int ifindex, Ipv4Address claimed_ip,
                              Ipv4Address target_ip) {
  const auto& ifc = iface(ifindex);
  auto target_mac = arp_.lookup(target_ip, sched_.now());
  if (!target_mac) {
    // Resolve the target first, then retry the spoof once resolution lands.
    send_arp_request(ifindex, target_ip);
    sched_.schedule(sim::milliseconds(5), [this, ifindex, claimed_ip,
                                           target_ip] {
      if (arp_.lookup(target_ip, sched_.now())) {
        send_spoofed_reply(ifindex, claimed_ip, target_ip);
      }
    });
    return;
  }
  ArpPacket arp;
  arp.op = ArpOp::kReply;
  arp.sender_mac = mac(ifindex);
  arp.sender_ip = claimed_ip;
  arp.target_mac = *target_mac;
  arp.target_ip = target_ip;
  Frame f{mac(ifindex), *target_mac, EtherType::kArp, arp.encode()};
  ++counters_.arp_replies_sent;
  log_.debug("spoofed ARP reply: %s is-at %s -> %s",
             claimed_ip.to_string().c_str(), mac(ifindex).to_string().c_str(),
             target_ip.to_string().c_str());
  fabric_.send(ifc.nic, std::move(f));
}

void Host::send_arp_request(int ifindex, Ipv4Address target) {
  const auto& ifc = iface(ifindex);
  ArpPacket arp;
  arp.op = ArpOp::kRequest;
  arp.sender_mac = mac(ifindex);
  arp.sender_ip = ifc.primary;
  arp.target_mac = MacAddress{};
  arp.target_ip = target;
  Frame f{mac(ifindex), MacAddress::broadcast(), EtherType::kArp, arp.encode()};
  ++counters_.arp_requests_sent;
  fabric_.send(ifc.nic, std::move(f));
}

void Host::handle_arp(const Frame& frame, int ifindex) {
  ArpPacket arp;
  try {
    arp = ArpPacket::decode(frame.payload);
  } catch (const util::DecodeError&) {
    ++counters_.decode_errors;
    return;
  }
  const auto& ifc = iface(ifindex);
  bool for_me = arp.target_ip == ifc.primary ||
                ifc.aliases.count(arp.target_ip) > 0;
  auto now = sched_.now();

  if (arp.op == ArpOp::kRequest) {
    // Requests that target us insert the sender's mapping (we will likely
    // reply to it momentarily) and trigger a unicast reply.
    if (for_me && !arp.is_gratuitous()) {
      arp_.put(arp.sender_ip, arp.sender_mac, now);
      ArpPacket reply;
      reply.op = ArpOp::kReply;
      reply.sender_mac = mac(ifindex);
      reply.sender_ip = arp.target_ip;
      reply.target_mac = arp.sender_mac;
      reply.target_ip = arp.sender_ip;
      Frame f{mac(ifindex), arp.sender_mac, EtherType::kArp, reply.encode()};
      ++counters_.arp_replies_sent;
      fabric_.send(ifc.nic, std::move(f));
    } else if (arp.is_gratuitous()) {
      arp_.update_existing(arp.sender_ip, arp.sender_mac, now);
    }
    return;
  }

  // Replies: unicast replies to us insert/update; broadcast gratuitous
  // announcements only refresh entries we already hold.
  if (frame.dst == mac(ifindex)) {
    arp_.put(arp.sender_ip, arp.sender_mac, now);
    flush_pending(arp.sender_ip);
  } else if (arp.is_gratuitous()) {
    if (arp_.update_existing(arp.sender_ip, arp.sender_mac, now)) {
      flush_pending(arp.sender_ip);
    }
  }
}

void Host::arp_retry(Ipv4Address next_hop) {
  auto it = pending_arp_.find(next_hop);
  if (it == pending_arp_.end()) return;
  auto& pending = it->second;
  if (pending.retries >= arp_max_retries) {
    counters_.arp_resolution_failures += pending.queue.size();
    log_.debug("ARP resolution failed for %s, dropping %zu packets",
               next_hop.to_string().c_str(), pending.queue.size());
    pending_arp_.erase(it);
    return;
  }
  ++pending.retries;
  send_arp_request(pending.ifindex, next_hop);
  pending.timer = sched_.schedule(arp_retry_interval,
                                  [this, next_hop] { arp_retry(next_hop); });
}

void Host::flush_pending(Ipv4Address resolved_ip) {
  auto it = pending_arp_.find(resolved_ip);
  if (it == pending_arp_.end()) return;
  auto pending = std::move(it->second);
  pending.timer.cancel();
  pending_arp_.erase(it);
  for (auto& pkt : pending.queue) {
    transmit_ip(std::move(pkt), pending.ifindex, resolved_ip);
  }
}

// ----------------------------------------------------------------- IP ----

std::pair<int, Ipv4Address> Host::route(Ipv4Address dst) const {
  // Connected routes first (longest prefix wins among attached networks).
  int best = -1;
  int best_len = -1;
  for (int i = 0; i < interface_count(); ++i) {
    const auto& ifc = ifaces_[static_cast<std::size_t>(i)];
    if (ifc.net.contains(dst) && ifc.net.prefix_len() > best_len) {
      best = i;
      best_len = ifc.net.prefix_len();
    }
  }
  if (best >= 0) return {best, dst};

  // Static routes (first match; scenarios keep these short).
  for (const auto& [net, via] : static_routes_) {
    if (net.contains(dst)) {
      auto [ifidx, hop] = route(via);
      if (ifidx >= 0 && hop == via) return {ifidx, via};
    }
  }

  if (!default_gateway_.is_any()) {
    for (int i = 0; i < interface_count(); ++i) {
      if (ifaces_[static_cast<std::size_t>(i)].net.contains(default_gateway_)) {
        return {i, default_gateway_};
      }
    }
  }
  return {-1, Ipv4Address{}};
}

void Host::transmit_ip(Ipv4Packet pkt, int ifindex, Ipv4Address next_hop) {
  const auto& ifc = iface(ifindex);
  if (pkt.dst.is_broadcast()) {
    Frame f{mac(ifindex), MacAddress::broadcast(), EtherType::kIpv4,
            pkt.encode()};
    fabric_.send(ifc.nic, std::move(f));
    return;
  }
  auto hop_mac = arp_.lookup(next_hop, sched_.now());
  if (hop_mac) {
    Frame f{mac(ifindex), *hop_mac, EtherType::kIpv4, pkt.encode()};
    fabric_.send(ifc.nic, std::move(f));
    return;
  }
  // Queue behind an ARP resolution.
  auto [it, inserted] = pending_arp_.try_emplace(next_hop);
  auto& pending = it->second;
  if (inserted) {
    pending.ifindex = ifindex;
    send_arp_request(ifindex, next_hop);
    pending.timer = sched_.schedule(arp_retry_interval,
                                    [this, next_hop] { arp_retry(next_hop); });
  }
  if (pending.queue.size() < arp_queue_cap) {
    pending.queue.push_back(std::move(pkt));
  }
}

void Host::handle_ipv4(const Frame& frame, int ifindex) {
  Ipv4Packet pkt;
  try {
    pkt = Ipv4Packet::decode(frame.payload);
  } catch (const util::DecodeError&) {
    ++counters_.decode_errors;
    return;
  }
  if (pkt.dst.is_broadcast() || owns_ip(pkt.dst)) {
    deliver_udp(pkt, ifindex);
    return;
  }
  if (pkt.dst.is_multicast()) {
    if (in_multicast_group(ifindex, pkt.dst)) deliver_udp(pkt, ifindex);
    return;  // never forwarded (single-segment multicast model)
  }
  if (forwarding_) {
    forward(std::move(pkt));
    return;
  }
  ++counters_.ip_not_ours;
}

void Host::forward(Ipv4Packet pkt) {
  if (pkt.ttl <= 1) return;
  --pkt.ttl;
  auto [ifindex, next_hop] = route(pkt.dst);
  if (ifindex < 0) {
    ++counters_.ip_no_route;
    return;
  }
  ++counters_.ip_forwarded;
  transmit_ip(std::move(pkt), ifindex, next_hop);
}

void Host::deliver_udp(const Ipv4Packet& pkt, int ifindex) {
  if (pkt.protocol != kProtoUdp) return;
  UdpDatagram dgram;
  try {
    dgram = UdpDatagram::decode(pkt.payload);
  } catch (const util::DecodeError&) {
    ++counters_.decode_errors;
    return;
  }
  auto it = sockets_.find(dgram.dst_port);
  if (it == sockets_.end()) {
    ++counters_.udp_no_socket;
    return;
  }
  ++counters_.udp_received;
  UdpContext ctx{pkt.src, dgram.src_port, pkt.dst, dgram.dst_port, ifindex};
  // Copy the handler: it may close/reopen the socket reentrantly.
  auto handler = it->second;
  handler(ctx, dgram.payload);
}

// ---------------------------------------------------------------- UDP ----

bool Host::open_udp(std::uint16_t port, UdpHandler handler) {
  WAM_EXPECTS(handler != nullptr);
  return sockets_.emplace(port, std::move(handler)).second;
}

void Host::close_udp(std::uint16_t port) { sockets_.erase(port); }

void Host::send_udp(Ipv4Address dst, std::uint16_t dst_port,
                    std::uint16_t src_port, util::Bytes payload) {
  auto [ifindex, next_hop] = route(dst);
  if (ifindex < 0) {
    ++counters_.ip_no_route;
    return;
  }
  send_udp_from(primary_ip(ifindex), dst, dst_port, src_port,
                std::move(payload));
}

void Host::send_udp_from(Ipv4Address src_ip, Ipv4Address dst,
                         std::uint16_t dst_port, std::uint16_t src_port,
                         util::Bytes payload) {
  if (owns_ip(dst)) {
    // Loopback: deliver on the next scheduler round, like a kernel would.
    UdpDatagram dgram{src_port, dst_port, std::move(payload)};
    Ipv4Packet pkt;
    pkt.src = src_ip;
    pkt.dst = dst;
    pkt.payload = dgram.encode();
    ++counters_.udp_sent;
    int ifindex = std::max(ifindex_of_ip(dst), 0);
    sched_.schedule(sim::kZero, [this, pkt = std::move(pkt), ifindex] {
      deliver_udp(pkt, ifindex);
    });
    return;
  }
  auto [ifindex, next_hop] = route(dst);
  if (ifindex < 0) {
    ++counters_.ip_no_route;
    return;
  }
  UdpDatagram dgram{src_port, dst_port, std::move(payload)};
  Ipv4Packet pkt;
  pkt.src = src_ip;
  pkt.dst = dst;
  pkt.payload = dgram.encode();
  ++counters_.udp_sent;
  transmit_ip(std::move(pkt), ifindex, next_hop);
}

void Host::send_udp_burst(std::vector<UdpSend> batch) {
  std::vector<std::vector<Frame>> per_if(ifaces_.size());
  for (auto& item : batch) {
    auto [ifindex, next_hop] = route(item.dst);
    if (ifindex < 0) {
      ++counters_.ip_no_route;
      continue;
    }
    if (owns_ip(item.dst)) {
      send_udp_from(primary_ip(ifindex), item.dst, item.dst_port,
                    item.src_port, std::move(item.payload));
      continue;
    }
    UdpDatagram dgram{item.src_port, item.dst_port, std::move(item.payload)};
    Ipv4Packet pkt;
    pkt.src = primary_ip(ifindex);
    pkt.dst = item.dst;
    pkt.payload = dgram.encode();
    ++counters_.udp_sent;
    auto hop_mac = arp_.lookup(next_hop, sched_.now());
    if (!hop_mac) {
      // Unresolved next hop: take the regular pending-ARP queue path.
      transmit_ip(std::move(pkt), ifindex, next_hop);
      continue;
    }
    per_if[static_cast<std::size_t>(ifindex)].push_back(
        Frame{mac(ifindex), *hop_mac, EtherType::kIpv4, pkt.encode()});
  }
  for (std::size_t i = 0; i < per_if.size(); ++i) {
    if (!per_if[i].empty()) {
      fabric_.send_batch(ifaces_[i].nic, std::move(per_if[i]));
    }
  }
}

void Host::join_multicast(int ifindex, Ipv4Address group) {
  WAM_EXPECTS(group.is_multicast());
  auto& ifc = iface(ifindex);
  if (ifc.multicast_groups.insert(group).second) {
    fabric_.add_mac_filter(ifc.nic, MacAddress::multicast_for(group));
  }
}

void Host::leave_multicast(int ifindex, Ipv4Address group) {
  auto& ifc = iface(ifindex);
  if (ifc.multicast_groups.erase(group) > 0) {
    fabric_.remove_mac_filter(ifc.nic, MacAddress::multicast_for(group));
  }
}

bool Host::in_multicast_group(int ifindex, Ipv4Address group) const {
  return iface(ifindex).multicast_groups.count(group) > 0;
}

void Host::send_udp_multicast(int ifindex, Ipv4Address group,
                              std::uint16_t dst_port, std::uint16_t src_port,
                              util::Bytes payload) {
  WAM_EXPECTS(group.is_multicast());
  UdpDatagram dgram{src_port, dst_port, std::move(payload)};
  Ipv4Packet pkt;
  pkt.src = primary_ip(ifindex);
  pkt.dst = group;
  pkt.payload = dgram.encode();
  ++counters_.udp_sent;
  Frame f{mac(ifindex), MacAddress::multicast_for(group), EtherType::kIpv4,
          pkt.encode()};
  fabric_.send(iface(ifindex).nic, std::move(f));
  // Multicast loops back to local members of the group.
  if (in_multicast_group(ifindex, group)) {
    sched_.schedule(sim::kZero, [this, pkt = std::move(pkt), ifindex] {
      deliver_udp(pkt, ifindex);
    });
  }
}

void Host::send_udp_broadcast(int ifindex, std::uint16_t dst_port,
                              std::uint16_t src_port, util::Bytes payload) {
  UdpDatagram dgram{src_port, dst_port, std::move(payload)};
  Ipv4Packet pkt;
  pkt.src = primary_ip(ifindex);
  pkt.dst = Ipv4Address::broadcast();
  pkt.payload = dgram.encode();
  ++counters_.udp_sent;
  transmit_ip(std::move(pkt), ifindex, Ipv4Address::broadcast());
}

// -------------------------------------------------------------- faults ----

void Host::set_interface_up(int ifindex, bool up) {
  fabric_.set_nic_up(iface(ifindex).nic, up);
}

bool Host::interface_up(int ifindex) const {
  return fabric_.nic_up(iface(ifindex).nic);
}

void Host::fail() {
  for (int i = 0; i < interface_count(); ++i) set_interface_up(i, false);
}

void Host::recover() {
  for (int i = 0; i < interface_count(); ++i) set_interface_up(i, true);
}

bool Host::is_up() const {
  for (int i = 0; i < interface_count(); ++i) {
    if (interface_up(i)) return true;
  }
  return false;
}

// ------------------------------------------------------------- receive ----

void Host::receive(const Frame& frame, NicId nic) {
  int ifindex = -1;
  for (int i = 0; i < interface_count(); ++i) {
    if (ifaces_[static_cast<std::size_t>(i)].nic == nic) {
      ifindex = i;
      break;
    }
  }
  WAM_ASSERT(ifindex >= 0);
  switch (frame.type) {
    case EtherType::kArp:
      handle_arp(frame, ifindex);
      break;
    case EtherType::kIpv4:
      handle_ipv4(frame, ifindex);
      break;
  }
}

void Host::add_route(Ipv4Network dst, Ipv4Address next_hop) {
  static_routes_.emplace_back(dst, next_hop);
}

}  // namespace wam::net
