// Wire formats for the simulated LAN.
//
// Frames carry serialized payloads (not in-memory object graphs) so that the
// simulation exercises real encode/decode paths: ARP packets and
// UDP-over-IPv4 datagrams round-trip through the endian-safe ByteWriter /
// ByteReader, and a corrupted or truncated payload surfaces as DecodeError.
//
// Payloads are util::SharedBytes: immutable, refcounted, copy-on-write.
// Copying a Frame — which the fabric does once per receiver on broadcast
// and multicast — bumps a reference count instead of deep-copying the
// bytes, and the IPv4/UDP decoders return their nested payloads as
// zero-copy slices of the enclosing frame's buffer.
#pragma once

#include <cstdint>
#include <string>

#include "net/address.hpp"
#include "util/bytes.hpp"
#include "util/shared_bytes.hpp"

namespace wam::net {

enum class EtherType : std::uint16_t {
  kArp = 0x0806,
  kIpv4 = 0x0800,
};

/// Ethernet-like frame: the unit the fabric moves between NICs.
struct Frame {
  MacAddress src;
  MacAddress dst;
  EtherType type = EtherType::kIpv4;
  util::SharedBytes payload;

  [[nodiscard]] std::string describe() const;
};

enum class ArpOp : std::uint16_t { kRequest = 1, kReply = 2 };

/// ARP packet (IPv4-over-Ethernet flavor only).
struct ArpPacket {
  ArpOp op = ArpOp::kRequest;
  MacAddress sender_mac;
  Ipv4Address sender_ip;
  MacAddress target_mac;  // ignored in requests
  Ipv4Address target_ip;

  /// Gratuitous announcements carry sender_ip == target_ip.
  [[nodiscard]] bool is_gratuitous() const { return sender_ip == target_ip; }

  [[nodiscard]] util::Bytes encode() const;
  static ArpPacket decode(util::ByteView buf);

  [[nodiscard]] std::string describe() const;
};

constexpr std::uint8_t kProtoUdp = 17;

/// Minimal IPv4 header + payload.
struct Ipv4Packet {
  Ipv4Address src;
  Ipv4Address dst;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = kProtoUdp;
  util::SharedBytes payload;

  [[nodiscard]] util::Bytes encode() const;
  /// The decoded payload is a zero-copy slice of `buf`'s storage.
  static Ipv4Packet decode(const util::SharedBytes& buf);
};

/// UDP datagram carried inside an Ipv4Packet payload.
struct UdpDatagram {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  util::SharedBytes payload;

  [[nodiscard]] util::Bytes encode() const;
  /// The decoded payload is a zero-copy slice of `buf`'s storage.
  static UdpDatagram decode(const util::SharedBytes& buf);
};

}  // namespace wam::net
