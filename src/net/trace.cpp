#include "net/trace.hpp"

#include <cstdio>

namespace wam::net {

FrameTrace::FrameTrace(sim::Scheduler& sched, Fabric& fabric,
                       std::size_t capacity)
    : sched_(sched), capacity_(capacity) {
  fabric.set_tap([this](SegmentId seg, const Frame& frame) {
    records_.push_back(Record{sched_.now(), seg, summarize(frame)});
    if (records_.size() > capacity_) records_.pop_front();
  });
}

std::string FrameTrace::summarize(const Frame& frame) {
  switch (frame.type) {
    case EtherType::kArp: {
      try {
        return "ARP " + ArpPacket::decode(frame.payload).describe();
      } catch (const util::DecodeError&) {
        return "ARP <malformed>";
      }
    }
    case EtherType::kIpv4: {
      try {
        auto pkt = Ipv4Packet::decode(frame.payload);
        if (pkt.protocol == kProtoUdp) {
          auto udp = UdpDatagram::decode(pkt.payload);
          char buf[96];
          std::snprintf(buf, sizeof(buf), "UDP %s:%u > %s:%u %zuB",
                        pkt.src.to_string().c_str(), udp.src_port,
                        pkt.dst.to_string().c_str(), udp.dst_port,
                        udp.payload.size());
          return buf;
        }
        return "IPv4 " + pkt.src.to_string() + " > " + pkt.dst.to_string() +
               " proto=" + std::to_string(pkt.protocol);
      } catch (const util::DecodeError&) {
        return "IPv4 <malformed>";
      }
    }
  }
  return "<unknown ethertype>";
}

std::vector<FrameTrace::Record> FrameTrace::find(
    const std::string& needle) const {
  std::vector<Record> out;
  for (const auto& r : records_) {
    if (r.summary.find(needle) != std::string::npos) out.push_back(r);
  }
  return out;
}

std::size_t FrameTrace::count(const std::string& needle) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.summary.find(needle) != std::string::npos) ++n;
  }
  return n;
}

std::string FrameTrace::dump() const {
  std::string out;
  for (const auto& r : records_) {
    char head[48];
    std::snprintf(head, sizeof(head), "%12.6f seg%d  ",
                  sim::to_seconds(r.time.time_since_epoch()), r.segment);
    out += head;
    out += r.summary;
    out += '\n';
  }
  return out;
}

}  // namespace wam::net
