#include "net/router.hpp"

namespace wam::net {

Router::Router(sim::Scheduler& sched, Fabric& fabric, std::string name,
               sim::Log* log)
    : host_(std::make_unique<Host>(sched, fabric, std::move(name), log)) {
  host_->enable_forwarding(true);
}

int Router::attach_network(SegmentId segment, Ipv4Address ip, int prefix_len) {
  return host_->add_interface(segment, ip, prefix_len);
}

}  // namespace wam::net
