// Frame tracing: a tcpdump-style observer for the simulated LAN.
//
// Attach a FrameTrace to a Fabric tap and it records a bounded ring of
// decoded one-line frame summaries ("ARP who-has 10.0.0.100 tell
// 10.0.0.254", "UDP 10.0.0.2:4803 > 255.255.255.255:4803 37B"), which
// tests grep and humans read when debugging protocol interactions.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "net/fabric.hpp"
#include "sim/scheduler.hpp"

namespace wam::net {

class FrameTrace {
 public:
  struct Record {
    sim::TimePoint time;
    SegmentId segment;
    std::string summary;
  };

  /// Attaching replaces the fabric's existing tap (if any).
  FrameTrace(sim::Scheduler& sched, Fabric& fabric,
             std::size_t capacity = 4096);

  [[nodiscard]] const std::deque<Record>& records() const { return records_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  /// Records whose summary contains `needle`.
  [[nodiscard]] std::vector<Record> find(const std::string& needle) const;
  /// Number of matching records, without materializing them.
  [[nodiscard]] std::size_t count(const std::string& needle) const;
  void clear() { records_.clear(); }
  /// Render all records, one per line, with timestamps.
  [[nodiscard]] std::string dump() const;

  /// One-line decode of a frame (static so tests can use it directly).
  [[nodiscard]] static std::string summarize(const Frame& frame);

 private:
  sim::Scheduler& sched_;
  std::size_t capacity_;
  std::deque<Record> records_;
};

}  // namespace wam::net
