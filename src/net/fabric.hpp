// The switched-LAN fabric: segments, NIC attachment, partitions, delivery.
//
// A Fabric owns zero or more segments (broadcast domains). Hosts attach
// NICs to segments; frames sent from a NIC are delivered — after a
// configurable latency and optional loss — to the NIC owning the
// destination MAC (unicast) or to every NIC (broadcast) *within the same
// partition component* of that segment.
//
// Partitions are the paper's fault model: set_partition() splits a
// segment's NICs into disjoint components that cannot exchange frames;
// merge_segment() heals it. NICs can also be taken down individually,
// which models the paper's experiment fault ("disconnecting the interface
// through which Spread, Wackamole and the experimental server access the
// network").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "obs/observability.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace wam::sim {
class ShardSet;
}

namespace wam::net {

using SegmentId = int;
using NicId = int;

/// Fabric statistics; a thin view over registry cells once the fabric is
/// bound to an obs::Observability (see obs/metrics.hpp).
struct FabricCounters {
  obs::Counter frames_sent;
  obs::Counter frames_delivered;
  obs::Counter dropped_no_target;    // unicast MAC not present/up
  obs::Counter dropped_partition;    // target in another component
  obs::Counter dropped_nic_down;     // sender or receiver NIC down
  obs::Counter dropped_random;       // loss model
  obs::Counter dropped_directional;  // one-way link faults

  void bind(obs::MetricRegistry& registry, const std::string& scope);
  void export_into(obs::MetricRegistry& registry,
                   const std::string& scope) const;
};

class Fabric {
 public:
  /// Delivery callback: (frame, receiving nic).
  using DeliverFn = std::function<void(const Frame&, NicId)>;
  /// Address-ownership predicate, answered synchronously on behalf of a
  /// NIC's host when a peer ARP-probes an address (duplicate-address
  /// detection).
  using AddressProbeFn = std::function<bool(Ipv4Address)>;
  /// Optional tap observing every frame accepted for transmission.
  using TapFn = std::function<void(SegmentId, const Frame&)>;

  struct SegmentConfig {
    sim::Duration latency = sim::microseconds(50);
    sim::Duration jitter = sim::microseconds(10);  // uniform [0, jitter]
    double drop_probability = 0.0;
    std::string name = "lan";
  };

  Fabric(sim::Scheduler& sched, sim::Log* log = nullptr,
         std::uint64_t seed = 1);

  SegmentId add_segment(SegmentConfig config);
  SegmentId add_segment();  // default-configured segment
  /// Fabric-unique locally-administered MAC (deterministic per fabric).
  MacAddress allocate_mac() { return MacAddress::from_index(next_mac_++); }
  [[nodiscard]] int segment_count() const {
    return static_cast<int>(segments_.size());
  }
  SegmentConfig& segment_config(SegmentId seg);

  /// Attach a NIC with the given MAC; frames for it go to `deliver`.
  NicId attach(SegmentId seg, MacAddress mac, DeliverFn deliver);
  /// Register the NIC's answer to ARP probes (see address_in_use()).
  void set_address_probe(NicId nic, AddressProbeFn probe);
  void set_nic_up(NicId nic, bool up);
  /// Multicast filters: a NIC also receives frames addressed to these MACs.
  void add_mac_filter(NicId nic, MacAddress mac);
  void remove_mac_filter(NicId nic, MacAddress mac);
  [[nodiscard]] bool nic_up(NicId nic) const;
  [[nodiscard]] SegmentId segment_of(NicId nic) const;
  [[nodiscard]] MacAddress mac_of(NicId nic) const;

  /// Split a segment into components; every NIC of the segment must appear
  /// in exactly one group. Frames no longer cross groups.
  void set_partition(SegmentId seg, const std::vector<std::vector<NicId>>& groups);
  /// Heal all partitions on the segment.
  void merge_segment(SegmentId seg);
  [[nodiscard]] int component_of(NicId nic) const;

  /// Asymmetric fault: frames from `from` to `to` are dropped while the
  /// reverse direction keeps working — the pathological case §2 of the
  /// paper warns about ("additional connectivity beyond that reported by
  /// the group communication system"). Applies to unicast, broadcast and
  /// multicast deliveries alike.
  void block_direction(NicId from, NicId to);
  void unblock_direction(NicId from, NicId to);
  void clear_directional_blocks();
  [[nodiscard]] std::size_t directional_block_count() const {
    return blocked_.size();
  }

  /// Loss burst: set the segment's random-drop probability (0 heals). A
  /// convenience over segment_config() that also publishes the fault /
  /// heal event, so chaos timelines record when the burst started and
  /// ended.
  void set_drop_probability(SegmentId seg, double p);

  /// Transmit a frame from `from`. Fire-and-forget (UDP-like) semantics.
  void send(NicId from, Frame frame);

  /// Transmit many frames from `from` at the current instant, scheduling
  /// ONE delivery event per receiving NIC instead of one per frame — the
  /// hook the open-loop load harness injects client storms through
  /// (see src/load). Semantics match calling send() once per frame in
  /// order: the same counters, the same loss/partition/NIC checks, and —
  /// pinned by tests/net_fabric_batch_test.cpp — the identical RNG draw
  /// sequence, so a same-seed batched run delivers frames to each host in
  /// byte-identical order to the unbatched path. Only the timestamps
  /// coarsen: a receiver's whole batch lands at the LATEST of its frames'
  /// computed arrival times (never earlier than unbatched, and at most
  /// one jitter span later).
  void send_batch(NicId from, std::vector<Frame> frames);

  /// ARP probe: would anyone else answer a who-has for `ip` sent from
  /// `asking`? Honours the same reachability rules as delivery — the
  /// answering NIC must share the asker's segment and partition component,
  /// both NICs must be up and neither direction blocked — so a holder the
  /// asker genuinely cannot hear never counts as a duplicate.
  [[nodiscard]] bool address_in_use(NicId asking, Ipv4Address ip) const;

  [[nodiscard]] const FabricCounters& counters() const {
    fold_shard_counters();
    return counters_;
  }
  void set_tap(TapFn tap) {
    WAM_EXPECTS(shards_ == nullptr);  // taps would race shard threads
    tap_ = std::move(tap);
  }
  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }

  // ---- sharded engine hookup (conservative PDES, sim/shard.hpp) ----
  /// Route deliveries through a ShardSet: every NIC is placed on a shard
  /// (assign_shard, default 0), sends draw loss/jitter from a per-NIC
  /// sender-side RNG stream — so the draw sequence depends only on the
  /// sender's own transmit order, never on shard count — and arrivals
  /// whose sender and receiver live on different shards cross at the
  /// barrier via ShardSet::post. Requirements: call before traffic flows,
  /// every segment's base latency >= the shard lookahead (the conservative
  /// guarantee), and no tap installed. A 1-shard set IS the sequential
  /// engine — the oracle the equivalence tests compare against.
  void set_sharding(sim::ShardSet& shards);
  [[nodiscard]] bool sharded() const { return shards_ != nullptr; }
  /// Place a NIC on a shard. Quiesced-only (between run_until calls).
  void assign_shard(NicId nic, int shard);
  [[nodiscard]] int shard_of(NicId nic) const;
  /// Merge per-shard counter deltas into the bound counters_ view (and
  /// thus the metric registry). Quiesced-only; counters() calls it, and
  /// sharded scenarios call it after each advance so registry queries see
  /// fresh values.
  void fold_shard_counters() const;

  /// Per-NIC delivery journal for the sequential-vs-sharded equivalence
  /// tests: every frame actually handed to a NIC, with its arrival time
  /// and a payload digest. Off by default (costs a hash per delivery).
  struct DeliveryRecord {
    sim::TimePoint when{};
    std::uint64_t digest = 0;
  };
  void set_record_deliveries(bool on) { record_deliveries_ = on; }
  [[nodiscard]] const std::vector<DeliveryRecord>& deliveries(NicId nic) const;

  /// Route frame metrics and partition fault events through a shared
  /// observability context; convention for `scope`: "net".
  void bind_observability(obs::Observability& obs, std::string scope);

 private:
  struct Nic {
    SegmentId segment = 0;
    MacAddress mac;
    bool up = true;
    int component = 0;
    DeliverFn deliver;
    std::set<MacAddress> filters;  // multicast subscriptions
    AddressProbeFn probe;          // duplicate-address detection answer
  };
  struct Segment {
    SegmentConfig config;
    std::vector<NicId> nics;
  };

  const Nic& nic(NicId id) const;
  Nic& nic(NicId id);
  void deliver_later(const Segment& seg, NicId from, NicId to, Frame frame);
  /// Hand `frame` to `to` right now (the body of every delivery event):
  /// re-checks liveness, bumps the receiver-side counters, journals.
  void deliver_now(NicId to, Frame frame);
  /// Schedule `fn` at `when` on the receiver's shard: directly when sender
  /// and receiver share a shard (or sharding is off), via the barrier
  /// otherwise.
  void schedule_delivery(NicId from, NicId to, sim::TimePoint when,
                         util::SmallFn fn);
  /// The scheduler a NIC's events run on (its shard's, or sched_).
  [[nodiscard]] sim::Scheduler& sched_of(NicId id);
  /// Sender-side RNG: the per-NIC stream when sharded, else the shared one.
  [[nodiscard]] sim::Rng& tx_rng(NicId sender);
  /// Counter sink for work done on a NIC's shard thread.
  [[nodiscard]] FabricCounters& ctrs(NicId id);

  sim::Scheduler& sched_;
  sim::Logger log_;
  sim::Rng rng_;
  std::uint64_t seed_;
  std::vector<Segment> segments_;
  std::vector<Nic> nics_;
  mutable FabricCounters counters_;
  TapFn tap_;
  std::uint16_t next_mac_ = 1;
  std::set<std::pair<NicId, NicId>> blocked_;  // (from, to) one-way faults
  obs::Observability* obs_ = nullptr;
  std::string obs_scope_;

  sim::ShardSet* shards_ = nullptr;
  std::vector<int> nic_shard_;      // shard of each NIC (sharded mode)
  std::vector<sim::Rng> nic_rng_;   // per-NIC sender-side streams
  /// Written by each shard's own thread during a window (obs::Counter is
  /// not atomic, so the shared counters_ view cannot be touched there);
  /// folded into counters_ at quiesce points.
  mutable std::vector<FabricCounters> shard_counters_;
  bool record_deliveries_ = false;
  std::vector<std::vector<DeliveryRecord>> journal_;  // per NIC
};

}  // namespace wam::net
