#include "net/fabric.hpp"

#include <algorithm>
#include <set>

#include "sim/shard.hpp"
#include "util/assert.hpp"

namespace wam::net {

namespace {

// Single source of truth for the fabric metric names: bind() and
// export_into() both enumerate through here, so the registry view can
// never drift from the struct.
template <typename Counters, typename Fn>
void for_each_fabric_metric(Counters& c, Fn&& fn) {
  fn("frames_sent", c.frames_sent);
  fn("frames_delivered", c.frames_delivered);
  fn("dropped_no_target", c.dropped_no_target);
  fn("dropped_partition", c.dropped_partition);
  fn("dropped_nic_down", c.dropped_nic_down);
  fn("dropped_random", c.dropped_random);
  fn("dropped_directional", c.dropped_directional);
}

}  // namespace

void FabricCounters::bind(obs::MetricRegistry& registry,
                          const std::string& scope) {
  for_each_fabric_metric(*this, [&](const char* name, obs::Counter& c) {
    registry.bind(c, scope + "/" + name);
  });
}

void FabricCounters::export_into(obs::MetricRegistry& registry,
                                 const std::string& scope) const {
  for_each_fabric_metric(*this,
                         [&](const char* name, const obs::Counter& c) {
                           registry.counter(scope + "/" + name) = c.value();
                         });
}

namespace {

/// FNV-1a over the frame's addressing and payload; identifies a frame for
/// the delivery journal without storing it.
std::uint64_t frame_digest(const Frame& frame) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h = (h ^ v) * 0x100000001b3ULL;
  };
  for (char c : frame.src.to_string()) mix(static_cast<unsigned char>(c));
  for (char c : frame.dst.to_string()) mix(static_cast<unsigned char>(c));
  mix(static_cast<std::uint64_t>(frame.type));
  for (std::uint8_t b : frame.payload) mix(b);
  return h;
}

}  // namespace

Fabric::Fabric(sim::Scheduler& sched, sim::Log* log, std::uint64_t seed)
    : sched_(sched), log_(log, "net/fabric"), rng_(seed), seed_(seed) {}

void Fabric::set_sharding(sim::ShardSet& shards) {
  WAM_EXPECTS(shards_ == nullptr);
  WAM_EXPECTS(!tap_);
  for (const auto& seg : segments_) {
    // The conservative guarantee: nothing sent in a window may arrive
    // inside it, so every hop must take at least one lookahead.
    WAM_EXPECTS(seg.config.latency >= shards.lookahead());
  }
  shards_ = &shards;
  nic_shard_.assign(nics_.size(), 0);
  shard_counters_ =
      std::vector<FabricCounters>(static_cast<std::size_t>(shards.size()));
  nic_rng_.clear();
  for (std::size_t i = 0; i < nics_.size(); ++i) {
    nic_rng_.push_back(sim::Rng(seed_).stream(1 + i));
  }
}

void Fabric::assign_shard(NicId id, int shard) {
  WAM_EXPECTS(shards_ != nullptr);
  WAM_EXPECTS(shard >= 0 && shard < shards_->size());
  WAM_EXPECTS(id >= 0 && id < static_cast<NicId>(nic_shard_.size()));
  nic_shard_[static_cast<std::size_t>(id)] = shard;
}

int Fabric::shard_of(NicId id) const {
  (void)nic(id);  // bounds check
  return shards_ == nullptr ? 0 : nic_shard_[static_cast<std::size_t>(id)];
}

void Fabric::fold_shard_counters() const {
  if (shard_counters_.empty()) return;
  // Both enumerations visit fields in the same order, so fold by index.
  std::vector<obs::Counter*> into;
  for_each_fabric_metric(counters_, [&](const char*, obs::Counter& c) {
    into.push_back(&c);
  });
  for (auto& sc : shard_counters_) {
    std::size_t i = 0;
    for_each_fabric_metric(sc, [&](const char*, obs::Counter& c) {
      const std::uint64_t delta = c.value();
      if (delta != 0) {
        *into[i] += delta;
        c = obs::Counter{};
      }
      ++i;
    });
  }
}

const std::vector<Fabric::DeliveryRecord>& Fabric::deliveries(
    NicId id) const {
  (void)nic(id);  // bounds check
  return journal_[static_cast<std::size_t>(id)];
}

sim::Scheduler& Fabric::sched_of(NicId id) {
  if (shards_ == nullptr) return sched_;
  return shards_->shard(nic_shard_[static_cast<std::size_t>(id)]);
}

sim::Rng& Fabric::tx_rng(NicId sender) {
  if (shards_ == nullptr) return rng_;
  return nic_rng_[static_cast<std::size_t>(sender)];
}

FabricCounters& Fabric::ctrs(NicId id) {
  if (shards_ == nullptr) return counters_;
  return shard_counters_[static_cast<std::size_t>(
      nic_shard_[static_cast<std::size_t>(id)])];
}

void Fabric::bind_observability(obs::Observability& obs, std::string scope) {
  obs_ = &obs;
  obs_scope_ = std::move(scope);
  counters_.bind(obs.registry, obs_scope_);
}

SegmentId Fabric::add_segment(SegmentConfig config) {
  segments_.push_back(Segment{std::move(config), {}});
  return static_cast<SegmentId>(segments_.size() - 1);
}

SegmentId Fabric::add_segment() { return add_segment(SegmentConfig{}); }

Fabric::SegmentConfig& Fabric::segment_config(SegmentId seg) {
  WAM_EXPECTS(seg >= 0 && seg < segment_count());
  return segments_[static_cast<std::size_t>(seg)].config;
}

NicId Fabric::attach(SegmentId seg, MacAddress mac, DeliverFn deliver) {
  WAM_EXPECTS(seg >= 0 && seg < segment_count());
  WAM_EXPECTS(deliver != nullptr);
  WAM_EXPECTS(!mac.is_broadcast() && !mac.is_null());
  for (const auto& existing : nics_) {
    WAM_EXPECTS(!(existing.segment == seg && existing.mac == mac));
  }
  auto id = static_cast<NicId>(nics_.size());
  nics_.push_back(Nic{seg, mac, true, 0, std::move(deliver)});
  segments_[static_cast<std::size_t>(seg)].nics.push_back(id);
  journal_.emplace_back();
  if (shards_ != nullptr) {
    nic_shard_.push_back(0);
    nic_rng_.push_back(sim::Rng(seed_).stream(1 + static_cast<std::uint64_t>(id)));
  }
  return id;
}

void Fabric::set_address_probe(NicId id, AddressProbeFn probe) {
  nic(id).probe = std::move(probe);
}

bool Fabric::address_in_use(NicId asking, Ipv4Address ip) const {
  const auto& asker = nic(asking);
  if (!asker.up) return false;
  for (const auto& other_id :
       segments_[static_cast<std::size_t>(asker.segment)].nics) {
    if (other_id == asking) continue;
    const auto& other = nic(other_id);
    if (!other.up || other.component != asker.component) continue;
    // A probe is a round trip: the who-has must reach the holder and the
    // is-at must make it back. (Empty-set guard: asymmetric links are a
    // chaos-only feature, so the common case skips both tree lookups.)
    if (!blocked_.empty() && (blocked_.count({asking, other_id}) > 0 ||
                              blocked_.count({other_id, asking}) > 0)) {
      continue;
    }
    if (other.probe && other.probe(ip)) return true;
  }
  return false;
}

const Fabric::Nic& Fabric::nic(NicId id) const {
  WAM_EXPECTS(id >= 0 && id < static_cast<NicId>(nics_.size()));
  return nics_[static_cast<std::size_t>(id)];
}

Fabric::Nic& Fabric::nic(NicId id) {
  WAM_EXPECTS(id >= 0 && id < static_cast<NicId>(nics_.size()));
  return nics_[static_cast<std::size_t>(id)];
}

void Fabric::set_nic_up(NicId id, bool up) {
  auto& n = nic(id);
  if (n.up != up) {
    log_.debug("nic %d (%s) %s", id, n.mac.to_string().c_str(),
               up ? "up" : "down");
  }
  n.up = up;
}

void Fabric::add_mac_filter(NicId id, MacAddress mac) {
  WAM_EXPECTS(mac.is_group());
  nic(id).filters.insert(mac);
}

void Fabric::remove_mac_filter(NicId id, MacAddress mac) {
  nic(id).filters.erase(mac);
}

bool Fabric::nic_up(NicId id) const { return nic(id).up; }
SegmentId Fabric::segment_of(NicId id) const { return nic(id).segment; }
MacAddress Fabric::mac_of(NicId id) const { return nic(id).mac; }
int Fabric::component_of(NicId id) const { return nic(id).component; }

void Fabric::set_partition(SegmentId seg,
                           const std::vector<std::vector<NicId>>& groups) {
  WAM_EXPECTS(seg >= 0 && seg < segment_count());
  const auto& members = segments_[static_cast<std::size_t>(seg)].nics;
  std::set<NicId> seen;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (NicId id : groups[g]) {
      WAM_EXPECTS(nic(id).segment == seg);
      WAM_EXPECTS(seen.insert(id).second);
      nic(id).component = static_cast<int>(g);
    }
  }
  WAM_EXPECTS(seen.size() == members.size());
  log_.info("segment %d partitioned into %zu components", seg, groups.size());
  if (obs_ != nullptr) {
    obs_->emit(sched_.now(), obs::EventType::kFaultInjected, obs_scope_,
               {{"kind", "partition"},
                {"segment", std::to_string(seg)},
                {"components", std::to_string(groups.size())}});
  }
}

void Fabric::block_direction(NicId from, NicId to) {
  if (!blocked_.emplace(from, to).second) return;
  log_.info("directional block: nic %d -> nic %d", from, to);
  if (obs_ != nullptr) {
    obs_->emit(sched_.now(), obs::EventType::kFaultInjected, obs_scope_,
               {{"kind", "directional_block"},
                {"from", std::to_string(from)},
                {"to", std::to_string(to)}});
  }
}

void Fabric::unblock_direction(NicId from, NicId to) {
  if (blocked_.erase({from, to}) == 0) return;
  if (obs_ != nullptr) {
    obs_->emit(sched_.now(), obs::EventType::kFaultHealed, obs_scope_,
               {{"kind", "directional_unblock"},
                {"from", std::to_string(from)},
                {"to", std::to_string(to)}});
  }
}

void Fabric::clear_directional_blocks() {
  if (blocked_.empty()) return;
  blocked_.clear();
  if (obs_ != nullptr) {
    obs_->emit(sched_.now(), obs::EventType::kFaultHealed, obs_scope_,
               {{"kind", "directional_clear"}});
  }
}

void Fabric::set_drop_probability(SegmentId seg, double p) {
  WAM_EXPECTS(p >= 0.0 && p < 1.0);
  auto& config = segment_config(seg);
  if (config.drop_probability == p) return;
  config.drop_probability = p;
  log_.info("segment %d loss probability now %g", seg, p);
  if (obs_ != nullptr) {
    obs_->emit(sched_.now(),
               p > 0.0 ? obs::EventType::kFaultInjected
                       : obs::EventType::kFaultHealed,
               obs_scope_,
               {{"kind", p > 0.0 ? "loss_burst" : "loss_end"},
                {"segment", std::to_string(seg)},
                {"p", std::to_string(p)}});
  }
}

void Fabric::merge_segment(SegmentId seg) {
  WAM_EXPECTS(seg >= 0 && seg < segment_count());
  for (NicId id : segments_[static_cast<std::size_t>(seg)].nics) {
    nic(id).component = 0;
  }
  log_.info("segment %d merged", seg);
  if (obs_ != nullptr) {
    obs_->emit(sched_.now(), obs::EventType::kFaultHealed, obs_scope_,
               {{"kind", "merge"}, {"segment", std::to_string(seg)}});
  }
}

void Fabric::deliver_now(NicId to, Frame frame) {
  const auto& n = nic(to);
  auto& c = ctrs(to);
  if (!n.up) {
    ++c.dropped_nic_down;
    return;
  }
  ++c.frames_delivered;
  if (record_deliveries_) {
    journal_[static_cast<std::size_t>(to)].push_back(
        DeliveryRecord{sched_of(to).now(), frame_digest(frame)});
  }
  n.deliver(frame, to);
}

void Fabric::schedule_delivery(NicId from, NicId to, sim::TimePoint when,
                               util::SmallFn fn) {
  if (shards_ == nullptr) {
    sched_.schedule_at(when, std::move(fn));
    return;
  }
  const int sf = nic_shard_[static_cast<std::size_t>(from)];
  const int st = nic_shard_[static_cast<std::size_t>(to)];
  if (sf == st) {
    shards_->shard(sf).schedule_at(when, std::move(fn));
    return;
  }
  shards_->post(sf, st, when, std::move(fn));
}

void Fabric::deliver_later(const Segment& seg, NicId from, NicId to,
                           Frame frame) {
  sim::Duration latency = seg.config.latency;
  if (seg.config.jitter > sim::kZero) {
    latency += tx_rng(from).duration_range(sim::kZero, seg.config.jitter);
  }
  const sim::TimePoint when = sched_of(from).now() + latency;
  schedule_delivery(from, to, when,
                    [this, to, frame = std::move(frame)]() mutable {
                      deliver_now(to, std::move(frame));
                    });
}

void Fabric::send(NicId from, Frame frame) {
  const auto& sender = nic(from);
  auto& c = ctrs(from);
  if (!sender.up) {
    ++c.dropped_nic_down;
    return;
  }
  const auto& seg = segments_[static_cast<std::size_t>(sender.segment)];
  ++c.frames_sent;
  if (tap_) tap_(sender.segment, frame);
  if (seg.config.drop_probability > 0 &&
      tx_rng(from).chance(seg.config.drop_probability)) {
    ++c.dropped_random;
    return;
  }

  if (frame.dst.is_group()) {
    // Broadcast goes to everyone; multicast only to NICs with the filter.
    for (NicId id : seg.nics) {
      if (id == from) continue;
      const auto& target = nic(id);
      if (!frame.dst.is_broadcast() && target.filters.count(frame.dst) == 0) {
        continue;
      }
      if (!target.up) {
        ++c.dropped_nic_down;
        continue;
      }
      if (target.component != sender.component) {
        ++c.dropped_partition;
        continue;
      }
      if (!blocked_.empty() && blocked_.count({from, id}) > 0) {
        ++c.dropped_directional;
        continue;
      }
      deliver_later(seg, from, id, frame);
    }
    return;
  }

  for (NicId id : seg.nics) {
    const auto& target = nic(id);
    if (target.mac != frame.dst) continue;
    if (!target.up) {
      ++c.dropped_nic_down;
      return;
    }
    if (target.component != sender.component) {
      ++c.dropped_partition;
      return;
    }
    if (!blocked_.empty() && blocked_.count({from, id}) > 0) {
      ++c.dropped_directional;
      return;
    }
    deliver_later(seg, from, id, frame);
    return;
  }
  ++c.dropped_no_target;
}

void Fabric::send_batch(NicId from, std::vector<Frame> frames) {
  if (frames.empty()) return;
  const auto& sender = nic(from);
  auto& c = ctrs(from);
  if (!sender.up) {
    c.dropped_nic_down += frames.size();
    return;
  }
  const auto& seg = segments_[static_cast<std::size_t>(sender.segment)];
  sim::Rng& rng = tx_rng(from);
  const sim::TimePoint tnow = sched_of(from).now();

  // Phase 1 mirrors send() once per frame — same counter bumps, same
  // eligibility checks, and crucially the same RNG draw order (one drop
  // draw per frame on lossy segments, one jitter draw per accepted
  // (frame, receiver) pair) — but records the computed arrival instead of
  // scheduling an event.
  struct Pending {
    sim::TimePoint when;
    std::uint32_t order;  // draw order; stands in for the scheduler seq
    std::uint32_t frame;
  };
  std::map<NicId, std::vector<Pending>> deliveries;
  std::uint32_t order = 0;
  auto arrival = [&] {
    sim::Duration latency = seg.config.latency;
    if (seg.config.jitter > sim::kZero) {
      latency += rng.duration_range(sim::kZero, seg.config.jitter);
    }
    return tnow + latency;
  };

  for (std::uint32_t fi = 0; fi < frames.size(); ++fi) {
    const Frame& frame = frames[fi];
    ++c.frames_sent;
    if (tap_) tap_(sender.segment, frame);
    if (seg.config.drop_probability > 0 &&
        rng.chance(seg.config.drop_probability)) {
      ++c.dropped_random;
      continue;
    }

    if (frame.dst.is_group()) {
      for (NicId id : seg.nics) {
        if (id == from) continue;
        const auto& target = nic(id);
        if (!frame.dst.is_broadcast() &&
            target.filters.count(frame.dst) == 0) {
          continue;
        }
        if (!target.up) {
          ++c.dropped_nic_down;
          continue;
        }
        if (target.component != sender.component) {
          ++c.dropped_partition;
          continue;
        }
        if (!blocked_.empty() && blocked_.count({from, id}) > 0) {
          ++c.dropped_directional;
          continue;
        }
        deliveries[id].push_back(Pending{arrival(), order++, fi});
      }
      continue;
    }

    bool matched = false;
    for (NicId id : seg.nics) {
      const auto& target = nic(id);
      if (target.mac != frame.dst) continue;
      matched = true;
      if (!target.up) {
        ++c.dropped_nic_down;
      } else if (target.component != sender.component) {
        ++c.dropped_partition;
      } else if (!blocked_.empty() && blocked_.count({from, id}) > 0) {
        ++c.dropped_directional;
      } else {
        deliveries[id].push_back(Pending{arrival(), order++, fi});
      }
      break;
    }
    if (!matched) ++c.dropped_no_target;
  }

  // Phase 2: one event per receiver at its batch's LAST arrival, handing
  // frames over in (arrival, draw order) — the (time, seq) order the
  // scheduler would have delivered the per-frame events in. The event runs
  // on the receiver's shard; deliver_now re-checks liveness per frame,
  // since the receiver may go down from within an earlier frame's handler,
  // exactly as it could between two unbatched delivery events.
  for (auto& [to, list] : deliveries) {
    std::sort(list.begin(), list.end(),
              [](const Pending& a, const Pending& b) {
                if (a.when != b.when) return a.when < b.when;
                return a.order < b.order;
              });
    std::vector<Frame> batch;
    batch.reserve(list.size());
    for (const Pending& p : list) batch.push_back(frames[p.frame]);
    schedule_delivery(from, to, list.back().when,
                      [this, to, batch = std::move(batch)]() mutable {
                        for (Frame& f : batch) deliver_now(to, std::move(f));
                      });
  }
}

}  // namespace wam::net
