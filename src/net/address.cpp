#include "net/address.hpp"

#include <cstdio>

#include "util/assert.hpp"

namespace wam::net {

MacAddress MacAddress::from_index(std::uint16_t index) {
  return MacAddress({0x02, 0x00, 0x00, 0x00,
                     static_cast<std::uint8_t>(index >> 8),
                     static_cast<std::uint8_t>(index & 0xff)});
}

MacAddress MacAddress::multicast_for(const Ipv4Address& group) {
  auto v = group.value();
  return MacAddress({0x01, 0x00, 0x5e,
                     static_cast<std::uint8_t>((v >> 16) & 0x7f),
                     static_cast<std::uint8_t>((v >> 8) & 0xff),
                     static_cast<std::uint8_t>(v & 0xff)});
}

std::optional<MacAddress> MacAddress::parse(std::string_view text) {
  std::array<std::uint8_t, 6> octets{};
  unsigned int v[6];
  char tail = 0;
  // %c probe detects trailing garbage.
  int n = std::sscanf(std::string(text).c_str(), "%x:%x:%x:%x:%x:%x%c", &v[0],
                      &v[1], &v[2], &v[3], &v[4], &v[5], &tail);
  if (n != 6) return std::nullopt;
  for (int i = 0; i < 6; ++i) {
    if (v[i] > 0xff) return std::nullopt;
    octets[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v[i]);
  }
  return MacAddress(octets);
}

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", octets_[0],
                octets_[1], octets_[2], octets_[3], octets_[4], octets_[5]);
  return buf;
}

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  unsigned int a, b, c, d;
  char tail = 0;
  int n = std::sscanf(std::string(text).c_str(), "%u.%u.%u.%u%c", &a, &b, &c,
                      &d, &tail);
  if (n != 4 || a > 255 || b > 255 || c > 255 || d > 255) return std::nullopt;
  return Ipv4Address(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
                     static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value_ >> 24) & 0xff,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

Ipv4Network::Ipv4Network(Ipv4Address base, int prefix_len)
    : prefix_len_(prefix_len) {
  WAM_EXPECTS(prefix_len >= 0 && prefix_len <= 32);
  mask_ = prefix_len == 0 ? 0 : ~std::uint32_t{0} << (32 - prefix_len);
  base_ = Ipv4Address(base.value() & mask_);
}

std::optional<Ipv4Network> Ipv4Network::parse(std::string_view text) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto ip = Ipv4Address::parse(text.substr(0, slash));
  if (!ip) return std::nullopt;
  int len = 0;
  auto tail = text.substr(slash + 1);
  if (tail.empty() || tail.size() > 2) return std::nullopt;
  for (char ch : tail) {
    if (ch < '0' || ch > '9') return std::nullopt;
    len = len * 10 + (ch - '0');
  }
  if (len > 32) return std::nullopt;
  return Ipv4Network(*ip, len);
}

bool Ipv4Network::contains(Ipv4Address ip) const {
  return (ip.value() & mask_) == base_.value();
}

std::string Ipv4Network::to_string() const {
  return base_.to_string() + "/" + std::to_string(prefix_len_);
}

}  // namespace wam::net
