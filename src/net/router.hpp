// Convenience wrapper for building a forwarding router host.
//
// A Router is a Host with forwarding enabled and one interface per attached
// network. Its ARP cache is the one Figure 3's fail-over story revolves
// around: when a server dies, the router keeps unicasting frames at the
// dead MAC until the new VIP owner spoofs an ARP reply at it.
#pragma once

#include <memory>

#include "net/host.hpp"

namespace wam::net {

class Router {
 public:
  Router(sim::Scheduler& sched, Fabric& fabric, std::string name,
         sim::Log* log = nullptr);

  /// Attach the router to a segment; `ip` is its address on that network.
  int attach_network(SegmentId segment, Ipv4Address ip, int prefix_len);

  [[nodiscard]] Host& host() { return *host_; }
  [[nodiscard]] const Host& host() const { return *host_; }
  [[nodiscard]] Ipv4Address ip(int ifindex = 0) const {
    return host_->primary_ip(ifindex);
  }
  [[nodiscard]] const ArpCache& arp_cache() const { return host_->arp_cache(); }

 private:
  std::unique_ptr<Host> host_;
};

}  // namespace wam::net
