#include "net/frame.hpp"

namespace wam::net {

std::string Frame::describe() const {
  std::string kind = type == EtherType::kArp ? "ARP" : "IPv4";
  return kind + " " + src.to_string() + " -> " + dst.to_string() + " (" +
         std::to_string(payload.size()) + "B)";
}

util::Bytes ArpPacket::encode() const {
  util::ByteWriter w;
  w.u16(static_cast<std::uint16_t>(op));
  w.raw(sender_mac.octets());
  w.u32(sender_ip.value());
  w.raw(target_mac.octets());
  w.u32(target_ip.value());
  return w.take();
}

ArpPacket ArpPacket::decode(util::ByteView buf) {
  util::ByteReader r(buf);
  ArpPacket p;
  auto op = r.u16();
  if (op != 1 && op != 2) throw util::DecodeError("bad ARP op");
  p.op = static_cast<ArpOp>(op);
  auto read_mac = [&r] {
    auto raw = r.raw(6);
    std::array<std::uint8_t, 6> octets{};
    std::copy(raw.begin(), raw.end(), octets.begin());
    return MacAddress(octets);
  };
  p.sender_mac = read_mac();
  p.sender_ip = Ipv4Address(r.u32());
  p.target_mac = read_mac();
  p.target_ip = Ipv4Address(r.u32());
  r.expect_end();
  return p;
}

std::string ArpPacket::describe() const {
  if (op == ArpOp::kRequest) {
    return "who-has " + target_ip.to_string() + " tell " +
           sender_ip.to_string();
  }
  return sender_ip.to_string() + " is-at " + sender_mac.to_string() +
         (is_gratuitous() ? " (gratuitous)" : "");
}

util::Bytes Ipv4Packet::encode() const {
  util::ByteWriter w;
  w.u32(src.value());
  w.u32(dst.value());
  w.u8(ttl);
  w.u8(protocol);
  w.bytes(payload);
  return w.take();
}

Ipv4Packet Ipv4Packet::decode(const util::SharedBytes& buf) {
  util::ByteReader r(buf);
  Ipv4Packet p;
  p.src = Ipv4Address(r.u32());
  p.dst = Ipv4Address(r.u32());
  p.ttl = r.u8();
  p.protocol = r.u8();
  p.payload = r.shared_bytes();  // zero-copy slice of the frame buffer
  r.expect_end();
  return p;
}

util::Bytes UdpDatagram::encode() const {
  util::ByteWriter w;
  w.u16(src_port);
  w.u16(dst_port);
  w.bytes(payload);
  return w.take();
}

UdpDatagram UdpDatagram::decode(const util::SharedBytes& buf) {
  util::ByteReader r(buf);
  UdpDatagram d;
  d.src_port = r.u16();
  d.dst_port = r.u16();
  d.payload = r.shared_bytes();  // zero-copy slice of the packet buffer
  r.expect_end();
  return d;
}

}  // namespace wam::net
