// Link-layer and network-layer address types.
//
// MacAddress and Ipv4Address are small value types with total ordering so
// they can key maps; Ipv4Network models a CIDR prefix for routing and
// egress-interface selection.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace wam::net {

class MacAddress {
 public:
  constexpr MacAddress() = default;
  constexpr explicit MacAddress(std::array<std::uint8_t, 6> octets)
      : octets_(octets) {}

  /// Locally-administered unicast MAC derived from a small integer id:
  /// 02:00:00:00:hh:ll.
  static MacAddress from_index(std::uint16_t index);
  /// IPv4 multicast MAC mapping: 01:00:5e + low 23 bits of the group.
  static MacAddress multicast_for(const class Ipv4Address& group);
  static constexpr MacAddress broadcast() {
    return MacAddress({0xff, 0xff, 0xff, 0xff, 0xff, 0xff});
  }
  static std::optional<MacAddress> parse(std::string_view text);

  [[nodiscard]] bool is_broadcast() const { return *this == broadcast(); }
  [[nodiscard]] bool is_null() const { return *this == MacAddress{}; }
  /// Group bit (I/G) of the first octet — set for multicast and broadcast.
  [[nodiscard]] bool is_group() const { return (octets_[0] & 0x01) != 0; }
  [[nodiscard]] const std::array<std::uint8_t, 6>& octets() const {
    return octets_;
  }
  [[nodiscard]] std::string to_string() const;

  friend auto operator<=>(const MacAddress&, const MacAddress&) = default;

 private:
  std::array<std::uint8_t, 6> octets_{};
};

class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  static std::optional<Ipv4Address> parse(std::string_view text);
  static constexpr Ipv4Address broadcast() { return Ipv4Address(0xffffffffu); }
  static constexpr Ipv4Address any() { return Ipv4Address(0u); }

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] bool is_broadcast() const { return value_ == 0xffffffffu; }
  [[nodiscard]] bool is_any() const { return value_ == 0; }
  /// 224.0.0.0/4 (class D).
  [[nodiscard]] bool is_multicast() const {
    return (value_ & 0xf0000000u) == 0xe0000000u;
  }
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Ipv4Address&,
                                    const Ipv4Address&) = default;

 private:
  std::uint32_t value_ = 0;
};

/// CIDR prefix, e.g. 192.168.0.0/24.
class Ipv4Network {
 public:
  constexpr Ipv4Network() = default;
  Ipv4Network(Ipv4Address base, int prefix_len);

  static std::optional<Ipv4Network> parse(std::string_view text);  // "a.b.c.d/len"

  [[nodiscard]] bool contains(Ipv4Address ip) const;
  [[nodiscard]] Ipv4Address base() const { return base_; }
  [[nodiscard]] int prefix_len() const { return prefix_len_; }
  [[nodiscard]] std::uint32_t mask() const { return mask_; }
  [[nodiscard]] std::string to_string() const;

  friend auto operator<=>(const Ipv4Network&, const Ipv4Network&) = default;

 private:
  Ipv4Address base_{};
  int prefix_len_ = 0;
  std::uint32_t mask_ = 0;
};

}  // namespace wam::net
