// Parallel seed fan-out for chaos campaigns.
//
// Each (seed, profile) job builds its own Scheduler + Fabric universe
// inside run_seed(), so jobs share no mutable state and can execute on
// worker threads concurrently. ParallelRunner fans a job list out over a
// bounded thread pool (util::parallel_for) and returns the results in
// job-list order, so downstream reporting is byte-identical to running
// the same list sequentially — only the wall clock changes. This is the
// property the `chaos_campaign --jobs N` CLI and the multi-seed benches
// rely on, and tests/chaos_parallel_test.cpp pins it.
#pragma once

#include <cstdint>
#include <vector>

#include "chaos/campaign.hpp"

namespace wam::chaos {

/// One unit of campaign work: a seed judged under a profile.
struct SeedJob {
  std::uint64_t seed = 0;
  Profile profile = Profile::kCluster;
  CampaignOptions options;
};

class ParallelRunner {
 public:
  /// jobs <= 1 runs sequentially on the caller's thread (no pool).
  explicit ParallelRunner(int jobs) : jobs_(jobs < 1 ? 1 : jobs) {}

  [[nodiscard]] int jobs() const { return jobs_; }

  /// Execute every job and return results[i] == run_seed(work[i]...).
  /// Results are ordered by input index regardless of completion order.
  [[nodiscard]] std::vector<CampaignResult> run(
      const std::vector<SeedJob>& work) const;

 private:
  int jobs_;
};

}  // namespace wam::chaos
