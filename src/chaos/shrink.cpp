#include "chaos/shrink.hpp"

#include <algorithm>

namespace wam::chaos {

ShrinkResult shrink_schedule(std::vector<FaultAction> actions,
                             const ShrinkPredicate& still_fails,
                             int max_evaluations) {
  ShrinkResult result;
  std::size_t chunk = std::max<std::size_t>(1, actions.size() / 2);
  while (chunk >= 1 && !actions.empty()) {
    bool removed_any = false;
    std::size_t i = 0;
    while (i < actions.size()) {
      if (result.evaluations >= max_evaluations) {
        result.exhausted = true;
        result.actions = std::move(actions);
        return result;
      }
      std::vector<FaultAction> candidate;
      candidate.reserve(actions.size());
      const std::size_t end = std::min(actions.size(), i + chunk);
      candidate.insert(candidate.end(), actions.begin(),
                       actions.begin() + static_cast<std::ptrdiff_t>(i));
      candidate.insert(candidate.end(),
                       actions.begin() + static_cast<std::ptrdiff_t>(end),
                       actions.end());
      ++result.evaluations;
      if (still_fails(candidate)) {
        actions = std::move(candidate);
        removed_any = true;
        // Re-test from the same index: the next chunk slid into place.
      } else {
        i += chunk;
      }
    }
    if (chunk == 1) {
      if (!removed_any) break;  // 1-minimal: no single deletion reproduces
    } else {
      chunk /= 2;
    }
  }
  result.actions = std::move(actions);
  return result;
}

}  // namespace wam::chaos
