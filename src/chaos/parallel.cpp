#include "chaos/parallel.hpp"

#include "util/parallel.hpp"

namespace wam::chaos {

std::vector<CampaignResult> ParallelRunner::run(
    const std::vector<SeedJob>& work) const {
  std::vector<CampaignResult> results(work.size());
  util::parallel_for(work.size(), jobs_, [&](std::size_t i) {
    results[i] = run_seed(work[i].seed, work[i].profile, work[i].options);
  });
  return results;
}

}  // namespace wam::chaos
