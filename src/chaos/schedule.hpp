// Randomized fault schedules for the chaos campaign.
//
// A FaultSchedule is data: a list of timed fault actions (partitions,
// merges, NIC faults, daemon crashes, graceful leaves, asymmetric drops,
// loss bursts) interleaved with oracle checkpoints. Schedules are produced
// by a seeded generator — the same (seed, options) pair always yields the
// same schedule — executed by chaos::run_seed() against a ClusterScenario
// or RouterScenario, and rendered into the scenario DSL of
// apps/scenario.hpp as the replay artifact attached to violations.
//
// The generator interleaves each fault storm with a quiescence window and
// heals transient faults (directional drops, loss bursts) before the
// window starts: under asymmetric connectivity the GCS may legitimately
// split servers of one partition group across views, so the predicted
// components below would be unsound while a transient is active.
//
// ClusterFaultModel / RouterFaultModel replay an action prefix and answer
// the two questions the invariant oracle needs at a checkpoint:
//   - components(): the maximal connected components implied by the
//     injected faults (partition groups minus NIC-down servers, plus one
//     singleton per NIC-down server — an isolated server must cover every
//     VIP alone, Section 3.1);
//   - participant(i): whether server i's Wackamole daemon is expected to
//     manage addresses (its GCS daemon is up and it has not gracefully
//     left).
// Both mirror the defensive no-op semantics of the scenario executors, so
// ANY subsequence of a schedule — the shrinker deletes actions — stays
// executable and soundly checkable.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace wam::chaos {

enum class FaultKind {
  kPartition,  // split the cluster segment into groups
  kMerge,      // heal all partitions
  kNicDown,    // administratively down server i's NIC (router: fail host)
  kNicUp,      // bring it back (router: recover host)
  kCrash,      // crash the GCS daemon on server i
  kRestart,    // restart a crashed GCS daemon
  kLeave,      // graceful Wackamole shutdown on server i
  kJoin,       // restart a gracefully-left Wackamole daemon
  kDrop,       // one-way frame drop a -> b (asymmetric fault)
  kUndrop,     // heal all one-way drops
  kLoss,       // random loss burst with probability `value` (0 heals)
  // ---- enforcement-layer faults (the fallible IpManager decorator) ----
  kOsFail,        // server i's acquire/release fails with `value` (0 heals)
  kOsFailSticky,  // server i's acquires fail until kOsHeal (dead NIC)
  kArpLose,       // server i's gratuitous ARPs are silently lost
  kOsHeal,        // clear every enforcement fault on server i
  // ---- transient state corruption (self-stabilization campaign) ----
  // All five are one-shot bit flips the daemons must detect and heal on
  // their own; the fault model treats them as no-ops (the expected steady
  // state is unchanged — that IS the reconvergence property under test).
  kCorruptVipOwner,    // stray write into server i's VIP table (`value` =
                       // group index)
  kCorruptIndex,       // desync server i's member index (`value` = group
                       // index)
  kStaleIncarnation,   // bit-flip server i's cached ViewTag
  kFlipViewId,         // bit-flip the epoch of server i's installed view
  kReconfigStorm,      // three forced rediscoveries in quick succession
};

/// The scenario-DSL verb for a kind ("crash", "drop", ...).
[[nodiscard]] const char* fault_kind_verb(FaultKind k);

struct FaultAction {
  sim::Duration at{};
  FaultKind kind = FaultKind::kMerge;
  std::vector<int> servers;              // operand server/router indices
  std::vector<std::vector<int>> groups;  // kPartition only
  double value = 0.0;                    // kLoss only
};

/// A pause where the campaign asserts Properties 1 and 2.
struct Checkpoint {
  sim::Duration at{};
  /// Second checkpoint of a round: no fault was injected since the
  /// previous one, so a violation here persisted across a quiet window
  /// (the no-regression property).
  bool regression_guard = false;
};

struct FaultSchedule {
  int num_servers = 5;
  int num_vips = 7;
  bool router_profile = false;
  /// Generated with enforcement faults: the executor shortens the cluster's
  /// quarantine cooldown and enables periodic announces so fence/unfence
  /// cycles complete within a quiescence window.
  bool os_faults = false;
  /// Generated with state-corruption faults: the executor enables the
  /// wackamole StateAuditor and the GCS ViewAuditor (plus fast resync
  /// backoff) so detection and healing complete within a quiescence
  /// window, and the ReconvergenceOracle tracks every applied injection.
  bool state_faults = false;
  std::vector<FaultAction> actions;      // sorted by `at`, strictly increasing
  std::vector<Checkpoint> checkpoints;   // sorted by `at`
  sim::Duration horizon{};               // run the simulation this far
};

struct GeneratorOptions {
  int num_servers = 5;   // routers for the router profile
  int num_vips = 7;
  int rounds = 4;        // storm/quiesce/checkpoint cycles
  sim::Duration quiesce = sim::seconds(12.0);
  sim::Duration calm = sim::seconds(5.0);
  /// Also generate enforcement-layer faults (osfail / osfail-sticky /
  /// arp-lose / osheal). Off by default so pre-existing pinned seeds keep
  /// consuming the generator stream identically.
  bool os_faults = false;
  /// Also generate transient state-corruption faults (corrupt-vip-owner /
  /// corrupt-index / stale-incarnation / flip-view-id / reconfig-storm).
  /// Off by default for the same stream-stability reason.
  bool state_faults = false;
};

/// Deterministic: the same (rng seed, options) yields the same schedule.
[[nodiscard]] FaultSchedule generate_cluster_schedule(
    sim::Rng& rng, const GeneratorOptions& opt);
[[nodiscard]] FaultSchedule generate_router_schedule(
    sim::Rng& rng, const GeneratorOptions& opt);

class ClusterFaultModel {
 public:
  explicit ClusterFaultModel(int num_servers);

  void apply(const FaultAction& a);

  /// Expected maximal connected components of servers.
  [[nodiscard]] std::vector<std::vector<int>> components() const;
  /// Whether server i's daemon is expected to manage addresses.
  [[nodiscard]] bool participant(int i) const;
  /// A directional drop, loss burst or probabilistic enforcement fault is
  /// active: predictions are unsound, the oracle must skip this checkpoint.
  /// (Sticky and arp-lose faults are NOT transient: their effect on
  /// coverage is deterministic and the oracle reasons about them.)
  [[nodiscard]] bool transient_active() const {
    return drops_ > 0 || loss_ > 0.0 || !os_prob_.empty();
  }
  [[nodiscard]] bool nic_down(int i) const { return nic_down_.count(i) > 0; }
  [[nodiscard]] bool crashed(int i) const { return crashed_.count(i) > 0; }
  [[nodiscard]] bool left(int i) const { return left_.count(i) > 0; }
  /// Probabilistic enforcement fault armed on server i.
  [[nodiscard]] bool os_prob(int i) const { return os_prob_.count(i) > 0; }
  /// Sticky enforcement fault: server i cannot acquire any group until a
  /// kOsHeal, so the oracle tolerates uncovered VIPs only in components
  /// where EVERY participant is sticky.
  [[nodiscard]] bool os_sticky(int i) const {
    return os_sticky_.count(i) > 0;
  }
  [[nodiscard]] bool arp_lose(int i) const { return arp_lose_.count(i) > 0; }

 private:
  int n_;
  std::vector<std::vector<int>> groups_;  // current partition groups
  std::set<int> nic_down_;
  std::set<int> crashed_;
  std::set<int> left_;
  std::set<int> os_prob_;
  std::set<int> os_sticky_;
  std::set<int> arp_lose_;
  int drops_ = 0;
  double loss_ = 0.0;
};

class RouterFaultModel {
 public:
  explicit RouterFaultModel(int num_routers);

  void apply(const FaultAction& a);

  [[nodiscard]] bool failed(int i) const { return failed_.count(i) > 0; }
  [[nodiscard]] bool left(int i) const { return left_.count(i) > 0; }
  [[nodiscard]] bool transient_active() const { return loss_ > 0.0; }
  [[nodiscard]] int num_routers() const { return n_; }

 private:
  int n_;
  std::set<int> failed_;
  std::set<int> left_;
  double loss_ = 0.0;
};

/// Render the schedule in the apps/scenario.hpp DSL (checkpoints become
/// comments). parse_scenario() accepts the output verbatim — the replay
/// artifact for a violating seed.
[[nodiscard]] std::string to_dsl(const FaultSchedule& s);

}  // namespace wam::chaos
