// Invariant oracles for the chaos campaign: Section 3.1's two properties,
// checked at every schedule checkpoint after a quiescence window.
//
//   Property 1 (Correctness): within every maximal connected component,
//   every VIP is covered by EXACTLY ONE participating daemon — uncovered
//   and multiply-covered addresses are distinct violation kinds.
//   Property 2 (Liveness): every participating daemon in a stabilized
//   component has reached RUN (reported with how long it has been stuck
//   in its current state, via Daemon::time_in_state()).
//
// Under enforcement faults, Property 1 gets a quarantine-aware variant: an
// uncovered VIP is tolerated only in a component where EVERY participant
// has a sticky enforcement fault (no daemon can bind anything — forced
// coverage keeps retrying but cannot succeed). If any participant's
// enforcement layer works, coverage must still be exactly once. A third
// check asserts the fence protocol itself: no daemon may report a group
// quarantined while still holding its addresses.
//
// A checkpoint whose fault model still has a transient active (directional
// drop, loss burst) is skipped: the component prediction is unsound there,
// and the schedule generator always heals transients before quiescence, so
// a skipped checkpoint can only appear in shrunk sub-schedules — where
// "violation disappears" correctly prunes the candidate.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "apps/cluster_scenario.hpp"
#include "apps/router_scenario.hpp"
#include "chaos/schedule.hpp"

namespace wam::chaos {

struct Violation {
  enum class Kind {
    kUncovered,  // Property 1: a VIP with no owner in its component
    kConflict,   // Property 1: a VIP owned more than once in its component
    kNotRun,     // Property 2: a participant stuck outside RUN
    /// NOTIFY self-fence invariant: a daemon lists a group as quarantined
    /// while its enforcement layer still holds the addresses — fencing
    /// must release before it quarantines.
    kFencedButHeld,
  };
  Kind kind = Kind::kUncovered;
  sim::TimePoint at{};
  /// True when detected at a regression-guard checkpoint: the condition
  /// persisted across a fault-free quiet window.
  bool persisted = false;
  std::string detail;
};

[[nodiscard]] const char* violation_kind_name(Violation::Kind k);
[[nodiscard]] std::string to_string(const Violation& v);

/// Append any Property 1/2 violations observed in `s` right now, given the
/// fault model replayed up to this checkpoint.
void check_cluster_invariants(apps::ClusterScenario& s,
                              const ClusterFaultModel& model,
                              bool regression_guard,
                              std::vector<Violation>& out);

void check_router_invariants(apps::RouterScenario& s,
                             const RouterFaultModel& model,
                             bool regression_guard,
                             std::vector<Violation>& out);

/// Pair-persistence rule for fault-injection runs (--os-faults).
///
/// With a fallible enforcement layer, a periodic balance round can hand a
/// group to a member whose first failure is yet to come — the cluster
/// cannot know an enforcement layer is sick until someone asks it to bind.
/// The retry budget, fence, and NOTIFY migration then take ~1 s, and a
/// checkpoint landing inside that window sees a coverage hole that is
/// bounded convergence, not a protocol bug. Checkpoints come in pairs
/// (post-quiesce, then a regression guard 5 s later) precisely so
/// persistence is observable: this filter reports a coverage violation
/// (uncovered / conflict / fenced-but-held) only when the same condition
/// is present at BOTH checkpoints of a pair. kNotRun reports immediately.
/// Real strandings span both checkpoints and are still caught; anything
/// that opens between pairs and persists is caught by the next pair.
class PairPersistenceFilter {
 public:
  /// Feed the violations found at one checkpoint; appends to `out` the
  /// ones that should be reported under the pair rule.
  void apply(bool regression_guard, std::vector<Violation> found,
             std::vector<Violation>& out);

 private:
  std::set<std::string> pending_;  // coverage keys seen at the last
                                   // post-quiesce checkpoint
};

}  // namespace wam::chaos
