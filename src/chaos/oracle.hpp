// Invariant oracles for the chaos campaign: Section 3.1's two properties,
// checked at every schedule checkpoint after a quiescence window.
//
//   Property 1 (Correctness): within every maximal connected component,
//   every VIP is covered by EXACTLY ONE participating daemon — uncovered
//   and multiply-covered addresses are distinct violation kinds.
//   Property 2 (Liveness): every participating daemon in a stabilized
//   component has reached RUN (reported with how long it has been stuck
//   in its current state, via Daemon::time_in_state()).
//
// A checkpoint whose fault model still has a transient active (directional
// drop, loss burst) is skipped: the component prediction is unsound there,
// and the schedule generator always heals transients before quiescence, so
// a skipped checkpoint can only appear in shrunk sub-schedules — where
// "violation disappears" correctly prunes the candidate.
#pragma once

#include <string>
#include <vector>

#include "apps/cluster_scenario.hpp"
#include "apps/router_scenario.hpp"
#include "chaos/schedule.hpp"

namespace wam::chaos {

struct Violation {
  enum class Kind {
    kUncovered,  // Property 1: a VIP with no owner in its component
    kConflict,   // Property 1: a VIP owned more than once in its component
    kNotRun,     // Property 2: a participant stuck outside RUN
  };
  Kind kind = Kind::kUncovered;
  sim::TimePoint at{};
  /// True when detected at a regression-guard checkpoint: the condition
  /// persisted across a fault-free quiet window.
  bool persisted = false;
  std::string detail;
};

[[nodiscard]] const char* violation_kind_name(Violation::Kind k);
[[nodiscard]] std::string to_string(const Violation& v);

/// Append any Property 1/2 violations observed in `s` right now, given the
/// fault model replayed up to this checkpoint.
void check_cluster_invariants(apps::ClusterScenario& s,
                              const ClusterFaultModel& model,
                              bool regression_guard,
                              std::vector<Violation>& out);

void check_router_invariants(apps::RouterScenario& s,
                             const RouterFaultModel& model,
                             bool regression_guard,
                             std::vector<Violation>& out);

}  // namespace wam::chaos
