// Invariant oracles for the chaos campaign: Section 3.1's two properties,
// checked at every schedule checkpoint after a quiescence window.
//
//   Property 1 (Correctness): within every maximal connected component,
//   every VIP is covered by EXACTLY ONE participating daemon — uncovered
//   and multiply-covered addresses are distinct violation kinds.
//   Property 2 (Liveness): every participating daemon in a stabilized
//   component has reached RUN (reported with how long it has been stuck
//   in its current state, via Daemon::time_in_state()).
//
// Under enforcement faults, Property 1 gets a quarantine-aware variant: an
// uncovered VIP is tolerated only in a component where EVERY participant
// has a sticky enforcement fault (no daemon can bind anything — forced
// coverage keeps retrying but cannot succeed). If any participant's
// enforcement layer works, coverage must still be exactly once. A third
// check asserts the fence protocol itself: no daemon may report a group
// quarantined while still holding its addresses.
//
// A checkpoint whose fault model still has a transient active (directional
// drop, loss burst) is skipped: the component prediction is unsound there,
// and the schedule generator always heals transients before quiescence, so
// a skipped checkpoint can only appear in shrunk sub-schedules — where
// "violation disappears" correctly prunes the candidate.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "apps/cluster_scenario.hpp"
#include "apps/router_scenario.hpp"
#include "chaos/schedule.hpp"

namespace wam::chaos {

struct Violation {
  enum class Kind {
    kUncovered,  // Property 1: a VIP with no owner in its component
    kConflict,   // Property 1: a VIP owned more than once in its component
    kNotRun,     // Property 2: a participant stuck outside RUN
    /// NOTIFY self-fence invariant: a daemon lists a group as quarantined
    /// while its enforcement layer still holds the addresses — fencing
    /// must release before it quarantines.
    kFencedButHeld,
    // ---- self-stabilization (--state-faults) ----
    /// An applied corruption was never detected: the target's
    /// corruptions_detected counter did not advance by the checkpoint.
    kCorruptionUndetected,
    /// Detected but never healed: self_heals did not advance.
    kCorruptionUnhealed,
    /// A state audit still reports findings at the checkpoint — the
    /// cluster did not reconverge within the bounded window.
    kResidualCorruption,
  };
  Kind kind = Kind::kUncovered;
  sim::TimePoint at{};
  /// True when detected at a regression-guard checkpoint: the condition
  /// persisted across a fault-free quiet window.
  bool persisted = false;
  std::string detail;
};

[[nodiscard]] const char* violation_kind_name(Violation::Kind k);
[[nodiscard]] std::string to_string(const Violation& v);

/// Append any Property 1/2 violations observed in `s` right now, given the
/// fault model replayed up to this checkpoint.
void check_cluster_invariants(apps::ClusterScenario& s,
                              const ClusterFaultModel& model,
                              bool regression_guard,
                              std::vector<Violation>& out);

void check_router_invariants(apps::RouterScenario& s,
                             const RouterFaultModel& model,
                             bool regression_guard,
                             std::vector<Violation>& out);

/// Pair-persistence rule for fault-injection runs (--os-faults).
///
/// With a fallible enforcement layer, a periodic balance round can hand a
/// group to a member whose first failure is yet to come — the cluster
/// cannot know an enforcement layer is sick until someone asks it to bind.
/// The retry budget, fence, and NOTIFY migration then take ~1 s, and a
/// checkpoint landing inside that window sees a coverage hole that is
/// bounded convergence, not a protocol bug. Checkpoints come in pairs
/// (post-quiesce, then a regression guard 5 s later) precisely so
/// persistence is observable: this filter reports a coverage violation
/// (uncovered / conflict / fenced-but-held) only when the same condition
/// is present at BOTH checkpoints of a pair. kNotRun reports immediately.
/// Real strandings span both checkpoints and are still caught; anything
/// that opens between pairs and persists is caught by the next pair.
class PairPersistenceFilter {
 public:
  /// Feed the violations found at one checkpoint; appends to `out` the
  /// ones that should be reported under the pair rule.
  void apply(bool regression_guard, std::vector<Violation> found,
             std::vector<Violation>& out);

 private:
  std::set<std::string> pending_;  // coverage keys seen at the last
                                   // post-quiesce checkpoint
};

/// Self-stabilization oracle for --state-faults schedules.
///
/// Properties 1/2 say what the steady state must look like; this oracle
/// asserts they are *restored* within a bounded window after a transient
/// corruption. Every APPLIED injection (the scenario hook returned true —
/// the target was running, connected and non-IDLE) records the target's
/// detection/heal counters; at the next checkpoint, a quiescence window
/// later, both must have advanced and a fresh audit of every reachable
/// daemon must come back clean. kReconfigStorm records no obligation (it
/// is churn, not corruption — the membership protocol itself absorbs it).
///
/// Constructed per execution, alongside the fault model, so any shrunk
/// subsequence of a schedule is judged with exactly the same rule.
class ReconvergenceOracle {
 public:
  /// Record an applied corruption injection.
  void on_applied(apps::ClusterScenario& s, const FaultAction& a);
  /// Judge pending obligations and audit for residual corruption.
  void check(apps::ClusterScenario& s, bool regression_guard,
             std::vector<Violation>& out);

 private:
  struct Obligation {
    int server = 0;
    sim::TimePoint at{};
    const char* verb = "";
    std::uint64_t detected0 = 0;  // wam+gcs corruptions_detected at injection
    std::uint64_t heals0 = 0;     // wam+gcs self_heals at injection
  };
  std::vector<Obligation> pending_;
};

}  // namespace wam::chaos
