// The chaos campaign driver: seed -> schedule -> execution -> verdict.
//
// run_seed() derives two decoupled RNG streams from the campaign seed
// (sim::Rng::stream), generates a fault schedule from the first and seeds
// the scenario's network fabric from the second, executes the schedule
// against a fresh ClusterScenario or RouterScenario, and runs the
// invariant oracle at every checkpoint. Everything is virtual-time
// deterministic: running the same seed twice yields byte-identical
// observability timelines (CampaignResult::timeline_json), which is what
// makes a violating seed a complete bug report.
//
// On violation the result carries the replay artifact — the seed, the
// schedule rendered in the scenario DSL, the event timeline — and, unless
// disabled, a greedily shrunk action subsequence that still reproduces
// some violation (see chaos/shrink.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/oracle.hpp"
#include "chaos/schedule.hpp"
#include "chaos/shrink.hpp"

namespace wam::chaos {

enum class Profile { kCluster, kRouter };

[[nodiscard]] const char* profile_name(Profile p);

struct CampaignOptions {
  GeneratorOptions generator;
  bool shrink = true;          // minimize the schedule on violation
  int shrink_max_evals = 120;  // each evaluation is a full simulated run
  /// Cluster-profile engine: 0 = legacy single-threaded, N >= 1 = sharded
  /// conservative-PDES engine with N shards. The sharded engine is
  /// decision-identical to the sequential one, so verdicts and timelines
  /// match across values. Router profile always runs sequentially.
  int shards = 0;
  bool shard_threads = true;
};

struct CampaignResult {
  std::uint64_t seed = 0;
  Profile profile = Profile::kCluster;
  FaultSchedule schedule;
  std::vector<Violation> violations;
  /// Replay artifact: the schedule in apps/scenario.hpp DSL form.
  std::string dsl;
  /// Deterministic JSON export of the run's observability timeline.
  std::string timeline_json;
  /// On violation with shrinking enabled: the minimized action list (and
  /// its DSL rendering), plus the predicate runs it cost.
  std::vector<FaultAction> shrunk_actions;
  std::string shrunk_dsl;
  int shrink_evaluations = 0;
  /// State-fault runs: per applied corruption injection, milliseconds from
  /// injection to the target's first SelfHeal (the reconvergence window).
  std::vector<double> reconvergence_ms;

  [[nodiscard]] bool passed() const { return violations.empty(); }
};

/// Generate, execute and judge one seed. Deterministic.
[[nodiscard]] CampaignResult run_seed(std::uint64_t seed, Profile profile,
                                      const CampaignOptions& opt = {});

/// Execute `actions` against the schedule's checkpoints/horizon without
/// generating anything — the building block for replay and shrinking.
/// Returns the violations; fills `timeline_json` when non-null.
/// `shards`/`shard_threads` select the engine for cluster-profile
/// schedules (see CampaignOptions); router schedules ignore them.
/// `reconvergence_ms`, when non-null, collects per-injection reconvergence
/// windows (state-fault cluster schedules only).
[[nodiscard]] std::vector<Violation> execute_schedule(
    const FaultSchedule& schedule, const std::vector<FaultAction>& actions,
    std::uint64_t fabric_seed, std::string* timeline_json, int shards = 0,
    bool shard_threads = true,
    std::vector<double>* reconvergence_ms = nullptr);

}  // namespace wam::chaos
