// Greedy schedule shrinker: delta debugging over fault-action lists.
//
// Given a failing schedule and a predicate that re-runs the campaign on a
// candidate action subsequence, repeatedly try deleting chunks of actions
// (halving the chunk size as deletions stop helping, ddmin-style) and keep
// every candidate that still fails. Checkpoint times and the horizon stay
// fixed, and every executor action is a defensive no-op when inapplicable,
// so ANY subsequence is executable — the predicate never has to reject a
// candidate as malformed.
//
// The result is 1-minimal with respect to single-chunk deletion, which in
// practice collapses a 4-round storm to the two or three actions that
// actually interact. Each predicate evaluation is a full simulated run, so
// `max_evaluations` bounds the work.
#pragma once

#include <functional>
#include <vector>

#include "chaos/schedule.hpp"

namespace wam::chaos {

using ShrinkPredicate =
    std::function<bool(const std::vector<FaultAction>&)>;

struct ShrinkResult {
  std::vector<FaultAction> actions;  // smallest still-failing subsequence
  int evaluations = 0;               // predicate runs spent
  bool exhausted = false;            // hit max_evaluations before 1-minimal
};

/// `still_fails(candidate)` must return true iff the violation reproduces.
/// `actions` itself is assumed failing (it is returned unchanged if no
/// deletion reproduces).
[[nodiscard]] ShrinkResult shrink_schedule(std::vector<FaultAction> actions,
                                           const ShrinkPredicate& still_fails,
                                           int max_evaluations = 200);

}  // namespace wam::chaos
