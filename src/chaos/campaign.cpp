#include "chaos/campaign.hpp"

#include "apps/cluster_scenario.hpp"
#include "apps/router_scenario.hpp"

namespace wam::chaos {

namespace {

// Dispatchers mirror ClusterFaultModel/RouterFaultModel::apply exactly:
// every action inapplicable in the current state is a no-op, so shrunk
// subsequences execute cleanly.

void apply_cluster(apps::ClusterScenario& s, const FaultAction& a,
                   ReconvergenceOracle* recon = nullptr) {
  switch (a.kind) {
    case FaultKind::kPartition:
      s.partition(a.groups);
      break;
    case FaultKind::kMerge:
      s.merge();
      break;
    case FaultKind::kNicDown:
      s.disconnect_server(a.servers[0]);
      break;
    case FaultKind::kNicUp:
      s.reconnect_server(a.servers[0]);
      break;
    case FaultKind::kCrash:
      s.crash_daemon(a.servers[0]);
      break;
    case FaultKind::kRestart:
      s.restart_daemon(a.servers[0]);
      break;
    case FaultKind::kLeave: {
      auto& w = s.wam(a.servers[0]);
      if (w.running() && w.connected()) s.graceful_leave(a.servers[0]);
      break;
    }
    case FaultKind::kJoin:
      s.rejoin(a.servers[0]);
      break;
    case FaultKind::kDrop:
      s.block_path(a.servers[0], a.servers[1]);
      break;
    case FaultKind::kUndrop:
      s.clear_blocked_paths();
      break;
    case FaultKind::kLoss:
      s.set_loss(a.value);
      break;
    case FaultKind::kOsFail:
      s.set_os_fail(a.servers[0], a.value);
      break;
    case FaultKind::kOsFailSticky:
      s.set_os_fail_sticky(a.servers[0]);
      break;
    case FaultKind::kArpLose:
      s.set_arp_lose(a.servers[0], true);
      break;
    case FaultKind::kOsHeal:
      s.heal_os(a.servers[0]);
      break;
    // Corruption injections report whether they actually applied (target
    // running, connected, non-IDLE); only applied ones create
    // reconvergence obligations — a no-op corruption obliges nobody.
    case FaultKind::kCorruptVipOwner:
      if (s.corrupt_vip_owner(a.servers[0], static_cast<int>(a.value)) &&
          recon != nullptr) {
        recon->on_applied(s, a);
      }
      break;
    case FaultKind::kCorruptIndex:
      if (s.corrupt_index(a.servers[0], static_cast<int>(a.value)) &&
          recon != nullptr) {
        recon->on_applied(s, a);
      }
      break;
    case FaultKind::kStaleIncarnation:
      if (s.stale_incarnation(a.servers[0]) && recon != nullptr) {
        recon->on_applied(s, a);
      }
      break;
    case FaultKind::kFlipViewId:
      if (s.flip_view_id(a.servers[0]) && recon != nullptr) {
        recon->on_applied(s, a);
      }
      break;
    case FaultKind::kReconfigStorm:
      s.reconfig_storm(a.servers[0]);
      break;
  }
}

void apply_router(apps::RouterScenario& s, const FaultAction& a) {
  switch (a.kind) {
    case FaultKind::kNicDown:
      if (s.router_host(a.servers[0]).is_up()) s.fail_router(a.servers[0]);
      break;
    case FaultKind::kNicUp:
      if (!s.router_host(a.servers[0]).is_up()) {
        s.recover_router(a.servers[0]);
      }
      break;
    case FaultKind::kLeave: {
      auto& w = s.wam(a.servers[0]);
      if (w.running() && w.connected()) s.graceful_leave(a.servers[0]);
      break;
    }
    case FaultKind::kJoin:
      s.rejoin(a.servers[0]);
      break;
    case FaultKind::kLoss:
      s.set_loss(a.value);
      break;
    default:
      break;  // not generated for the router profile
  }
}

/// Step the scheduler through the merged (action, checkpoint) timeline.
/// `Scenario` provides sched/timeline; `Apply` and `Check` close over the
/// profile-specific scenario and fault model.
template <class Scenario, class Apply, class Check>
std::vector<Violation> drive(Scenario& s, const FaultSchedule& schedule,
                             const std::vector<FaultAction>& actions,
                             const Apply& apply, const Check& check,
                             std::string* timeline_json) {
  std::vector<Violation> violations;
  std::size_t ai = 0;
  std::size_t ci = 0;
  while (ai < actions.size() || ci < schedule.checkpoints.size()) {
    const bool take_action =
        ai < actions.size() &&
        (ci >= schedule.checkpoints.size() ||
         actions[ai].at <= schedule.checkpoints[ci].at);
    if (take_action) {
      // advance_to quiesces the world first (all shard clocks equal on the
      // sharded engine), so faults always apply at a barrier.
      s.advance_to(sim::TimePoint(actions[ai].at));
      apply(actions[ai]);
      ++ai;
    } else {
      s.advance_to(sim::TimePoint(schedule.checkpoints[ci].at));
      check(schedule.checkpoints[ci], violations);
      ++ci;
    }
  }
  s.advance_to(sim::TimePoint(schedule.horizon));
  if (timeline_json) *timeline_json = s.timeline.to_json();
  return violations;
}

/// Reconvergence windows, measured from the event timeline: for every
/// applied corruption injection, the time to the target server's first
/// SelfHeal (in either layer) at or after it. Unhealed injections are the
/// oracle's business; here they simply contribute no sample.
void extract_reconvergence_ms(const obs::EventTimeline& timeline,
                              std::vector<double>& out) {
  const auto& events = timeline.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& e = events[i];
    if (e.type != obs::EventType::kFaultInjected) continue;
    const std::string* kind = e.field("kind");
    const std::string* applied = e.field("applied");
    const std::string* server = e.field("server");
    if (kind == nullptr || applied == nullptr || server == nullptr) continue;
    if (*applied != "1") continue;
    if (*kind != "corrupt_vip_owner" && *kind != "corrupt_index" &&
        *kind != "stale_incarnation" && *kind != "flip_view_id") {
      continue;
    }
    const std::string wam_scope = "wam/" + *server;
    const std::string gcs_scope = "gcs/" + *server;
    for (std::size_t j = i + 1; j < events.size(); ++j) {
      const auto& h = events[j];
      if (h.type != obs::EventType::kSelfHeal) continue;
      if (h.source != wam_scope && h.source != gcs_scope) continue;
      out.push_back(sim::to_millis(h.time - e.time));
      break;
    }
  }
}

std::vector<Violation> execute_cluster(const FaultSchedule& schedule,
                                       const std::vector<FaultAction>& actions,
                                       std::uint64_t fabric_seed,
                                       std::string* timeline_json, int shards,
                                       bool shard_threads,
                                       std::vector<double>* reconvergence_ms) {
  apps::ClusterOptions copts;
  copts.num_servers = schedule.num_servers;
  copts.num_vips = schedule.num_vips;
  copts.with_router = false;
  copts.shards = shards;
  copts.shard_threads = shard_threads;
  copts.balance_timeout = sim::seconds(15.0);  // let balance interleave
  copts.seed = fabric_seed;
  if (schedule.os_faults || schedule.state_faults) {
    // Fence/unfence cycles must complete within a quiescence window: the
    // cooldown probe fires before the checkpoint, and periodic announces
    // exercise the arp-lose path. State-fault heals reuse the same fence
    // machinery, so they need the same knobs. Untouched for pre-existing
    // schedules.
    copts.quarantine_cooldown = sim::seconds(10.0);
    copts.announce_interval = sim::seconds(2.0);
  }
  if (schedule.state_faults) {
    // Detection and healing must also complete within the window: audit
    // every 250 ms, resync after 500 ms with the backoff capped at 4 s.
    copts.audit_interval = sim::milliseconds(250);
    copts.resync_delay = sim::milliseconds(500);
    copts.resync_backoff_max = sim::seconds(4.0);
    copts.gcs.audit_interval = sim::milliseconds(250);
  }
  apps::ClusterScenario s(copts);
  s.start();
  s.run_until_stable(sim::seconds(8.0));  // actions start at t = 10 s

  ClusterFaultModel model(schedule.num_servers);
  PairPersistenceFilter pair_filter;
  ReconvergenceOracle recon;
  auto violations = drive(
      s, schedule, actions,
      [&](const FaultAction& a) {
        apply_cluster(s, a, schedule.state_faults ? &recon : nullptr);
        model.apply(a);
      },
      [&](const Checkpoint& cp, std::vector<Violation>& out) {
        if (schedule.state_faults) {
          // Reconvergence obligations bypass the pair filter: they are
          // judged exactly once, at the first checkpoint after injection.
          recon.check(s, cp.regression_guard, out);
        }
        if (!schedule.os_faults && !schedule.state_faults) {
          check_cluster_invariants(s, model, cp.regression_guard, out);
          return;
        }
        // Fault-injection runs: coverage violations must persist across
        // the checkpoint pair — a hole inside one retry/fence/NOTIFY
        // window is bounded convergence, not a bug.
        std::vector<Violation> found;
        check_cluster_invariants(s, model, cp.regression_guard, found);
        pair_filter.apply(cp.regression_guard, std::move(found), out);
      },
      timeline_json);
  if (reconvergence_ms != nullptr && schedule.state_faults) {
    extract_reconvergence_ms(s.timeline, *reconvergence_ms);
  }
  return violations;
}

std::vector<Violation> execute_router(const FaultSchedule& schedule,
                                      const std::vector<FaultAction>& actions,
                                      std::uint64_t fabric_seed,
                                      std::string* timeline_json) {
  apps::RouterScenarioOptions ropts;
  ropts.num_routers = schedule.num_servers;
  ropts.seed = fabric_seed;
  apps::RouterScenario s(ropts);
  s.start();
  s.run(sim::seconds(8.0));

  RouterFaultModel model(schedule.num_servers);
  PairPersistenceFilter pair_filter;
  return drive(
      s, schedule, actions,
      [&](const FaultAction& a) {
        apply_router(s, a);
        model.apply(a);
      },
      [&](const Checkpoint& cp, std::vector<Violation>& out) {
        if (!schedule.os_faults) {
          check_router_invariants(s, model, cp.regression_guard, out);
          return;
        }
        std::vector<Violation> found;
        check_router_invariants(s, model, cp.regression_guard, found);
        pair_filter.apply(cp.regression_guard, std::move(found), out);
      },
      timeline_json);
}

}  // namespace

const char* profile_name(Profile p) {
  return p == Profile::kCluster ? "cluster" : "router";
}

std::vector<Violation> execute_schedule(
    const FaultSchedule& schedule, const std::vector<FaultAction>& actions,
    std::uint64_t fabric_seed, std::string* timeline_json, int shards,
    bool shard_threads, std::vector<double>* reconvergence_ms) {
  return schedule.router_profile
             ? execute_router(schedule, actions, fabric_seed, timeline_json)
             : execute_cluster(schedule, actions, fabric_seed, timeline_json,
                               shards, shard_threads, reconvergence_ms);
}

CampaignResult run_seed(std::uint64_t seed, Profile profile,
                        const CampaignOptions& opt) {
  // Decoupled streams: schedule generation (1) and fabric jitter (2), so
  // replaying a shrunk action list keeps identical network timing.
  sim::Rng base(seed);
  auto gen_rng = base.stream(1);
  const std::uint64_t fabric_seed = base.stream(2).next();

  CampaignResult r;
  r.seed = seed;
  r.profile = profile;
  r.schedule = profile == Profile::kCluster
                   ? generate_cluster_schedule(gen_rng, opt.generator)
                   : generate_router_schedule(gen_rng, opt.generator);
  r.dsl = to_dsl(r.schedule);
  r.violations =
      execute_schedule(r.schedule, r.schedule.actions, fabric_seed,
                       &r.timeline_json, opt.shards, opt.shard_threads,
                       &r.reconvergence_ms);

  if (!r.passed() && opt.shrink) {
    auto still_fails = [&](const std::vector<FaultAction>& candidate) {
      return !execute_schedule(r.schedule, candidate, fabric_seed, nullptr,
                               opt.shards, opt.shard_threads)
                  .empty();
    };
    auto shrunk = shrink_schedule(r.schedule.actions, still_fails,
                                  opt.shrink_max_evals);
    r.shrunk_actions = std::move(shrunk.actions);
    r.shrink_evaluations = shrunk.evaluations;
    FaultSchedule mini = r.schedule;
    mini.actions = r.shrunk_actions;
    r.shrunk_dsl = to_dsl(mini);
  }
  return r;
}

}  // namespace wam::chaos
