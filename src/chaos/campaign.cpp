#include "chaos/campaign.hpp"

#include "apps/cluster_scenario.hpp"
#include "apps/router_scenario.hpp"

namespace wam::chaos {

namespace {

// Dispatchers mirror ClusterFaultModel/RouterFaultModel::apply exactly:
// every action inapplicable in the current state is a no-op, so shrunk
// subsequences execute cleanly.

void apply_cluster(apps::ClusterScenario& s, const FaultAction& a) {
  switch (a.kind) {
    case FaultKind::kPartition:
      s.partition(a.groups);
      break;
    case FaultKind::kMerge:
      s.merge();
      break;
    case FaultKind::kNicDown:
      s.disconnect_server(a.servers[0]);
      break;
    case FaultKind::kNicUp:
      s.reconnect_server(a.servers[0]);
      break;
    case FaultKind::kCrash:
      s.crash_daemon(a.servers[0]);
      break;
    case FaultKind::kRestart:
      s.restart_daemon(a.servers[0]);
      break;
    case FaultKind::kLeave: {
      auto& w = s.wam(a.servers[0]);
      if (w.running() && w.connected()) s.graceful_leave(a.servers[0]);
      break;
    }
    case FaultKind::kJoin:
      s.rejoin(a.servers[0]);
      break;
    case FaultKind::kDrop:
      s.block_path(a.servers[0], a.servers[1]);
      break;
    case FaultKind::kUndrop:
      s.clear_blocked_paths();
      break;
    case FaultKind::kLoss:
      s.set_loss(a.value);
      break;
    case FaultKind::kOsFail:
      s.set_os_fail(a.servers[0], a.value);
      break;
    case FaultKind::kOsFailSticky:
      s.set_os_fail_sticky(a.servers[0]);
      break;
    case FaultKind::kArpLose:
      s.set_arp_lose(a.servers[0], true);
      break;
    case FaultKind::kOsHeal:
      s.heal_os(a.servers[0]);
      break;
  }
}

void apply_router(apps::RouterScenario& s, const FaultAction& a) {
  switch (a.kind) {
    case FaultKind::kNicDown:
      if (s.router_host(a.servers[0]).is_up()) s.fail_router(a.servers[0]);
      break;
    case FaultKind::kNicUp:
      if (!s.router_host(a.servers[0]).is_up()) {
        s.recover_router(a.servers[0]);
      }
      break;
    case FaultKind::kLeave: {
      auto& w = s.wam(a.servers[0]);
      if (w.running() && w.connected()) s.graceful_leave(a.servers[0]);
      break;
    }
    case FaultKind::kJoin:
      s.rejoin(a.servers[0]);
      break;
    case FaultKind::kLoss:
      s.set_loss(a.value);
      break;
    default:
      break;  // not generated for the router profile
  }
}

/// Step the scheduler through the merged (action, checkpoint) timeline.
/// `Scenario` provides sched/timeline; `Apply` and `Check` close over the
/// profile-specific scenario and fault model.
template <class Scenario, class Apply, class Check>
std::vector<Violation> drive(Scenario& s, const FaultSchedule& schedule,
                             const std::vector<FaultAction>& actions,
                             const Apply& apply, const Check& check,
                             std::string* timeline_json) {
  std::vector<Violation> violations;
  std::size_t ai = 0;
  std::size_t ci = 0;
  while (ai < actions.size() || ci < schedule.checkpoints.size()) {
    const bool take_action =
        ai < actions.size() &&
        (ci >= schedule.checkpoints.size() ||
         actions[ai].at <= schedule.checkpoints[ci].at);
    if (take_action) {
      // advance_to quiesces the world first (all shard clocks equal on the
      // sharded engine), so faults always apply at a barrier.
      s.advance_to(sim::TimePoint(actions[ai].at));
      apply(actions[ai]);
      ++ai;
    } else {
      s.advance_to(sim::TimePoint(schedule.checkpoints[ci].at));
      check(schedule.checkpoints[ci], violations);
      ++ci;
    }
  }
  s.advance_to(sim::TimePoint(schedule.horizon));
  if (timeline_json) *timeline_json = s.timeline.to_json();
  return violations;
}

std::vector<Violation> execute_cluster(const FaultSchedule& schedule,
                                       const std::vector<FaultAction>& actions,
                                       std::uint64_t fabric_seed,
                                       std::string* timeline_json, int shards,
                                       bool shard_threads) {
  apps::ClusterOptions copts;
  copts.num_servers = schedule.num_servers;
  copts.num_vips = schedule.num_vips;
  copts.with_router = false;
  copts.shards = shards;
  copts.shard_threads = shard_threads;
  copts.balance_timeout = sim::seconds(15.0);  // let balance interleave
  copts.seed = fabric_seed;
  if (schedule.os_faults) {
    // Fence/unfence cycles must complete within a quiescence window: the
    // cooldown probe fires before the checkpoint, and periodic announces
    // exercise the arp-lose path. Untouched for pre-existing schedules.
    copts.quarantine_cooldown = sim::seconds(10.0);
    copts.announce_interval = sim::seconds(2.0);
  }
  apps::ClusterScenario s(copts);
  s.start();
  s.run_until_stable(sim::seconds(8.0));  // actions start at t = 10 s

  ClusterFaultModel model(schedule.num_servers);
  PairPersistenceFilter pair_filter;
  return drive(
      s, schedule, actions,
      [&](const FaultAction& a) {
        apply_cluster(s, a);
        model.apply(a);
      },
      [&](const Checkpoint& cp, std::vector<Violation>& out) {
        if (!schedule.os_faults) {
          check_cluster_invariants(s, model, cp.regression_guard, out);
          return;
        }
        // Fault-injection runs: coverage violations must persist across
        // the checkpoint pair — a hole inside one retry/fence/NOTIFY
        // window is bounded convergence, not a bug.
        std::vector<Violation> found;
        check_cluster_invariants(s, model, cp.regression_guard, found);
        pair_filter.apply(cp.regression_guard, std::move(found), out);
      },
      timeline_json);
}

std::vector<Violation> execute_router(const FaultSchedule& schedule,
                                      const std::vector<FaultAction>& actions,
                                      std::uint64_t fabric_seed,
                                      std::string* timeline_json) {
  apps::RouterScenarioOptions ropts;
  ropts.num_routers = schedule.num_servers;
  ropts.seed = fabric_seed;
  apps::RouterScenario s(ropts);
  s.start();
  s.run(sim::seconds(8.0));

  RouterFaultModel model(schedule.num_servers);
  PairPersistenceFilter pair_filter;
  return drive(
      s, schedule, actions,
      [&](const FaultAction& a) {
        apply_router(s, a);
        model.apply(a);
      },
      [&](const Checkpoint& cp, std::vector<Violation>& out) {
        if (!schedule.os_faults) {
          check_router_invariants(s, model, cp.regression_guard, out);
          return;
        }
        std::vector<Violation> found;
        check_router_invariants(s, model, cp.regression_guard, found);
        pair_filter.apply(cp.regression_guard, std::move(found), out);
      },
      timeline_json);
}

}  // namespace

const char* profile_name(Profile p) {
  return p == Profile::kCluster ? "cluster" : "router";
}

std::vector<Violation> execute_schedule(
    const FaultSchedule& schedule, const std::vector<FaultAction>& actions,
    std::uint64_t fabric_seed, std::string* timeline_json, int shards,
    bool shard_threads) {
  return schedule.router_profile
             ? execute_router(schedule, actions, fabric_seed, timeline_json)
             : execute_cluster(schedule, actions, fabric_seed, timeline_json,
                               shards, shard_threads);
}

CampaignResult run_seed(std::uint64_t seed, Profile profile,
                        const CampaignOptions& opt) {
  // Decoupled streams: schedule generation (1) and fabric jitter (2), so
  // replaying a shrunk action list keeps identical network timing.
  sim::Rng base(seed);
  auto gen_rng = base.stream(1);
  const std::uint64_t fabric_seed = base.stream(2).next();

  CampaignResult r;
  r.seed = seed;
  r.profile = profile;
  r.schedule = profile == Profile::kCluster
                   ? generate_cluster_schedule(gen_rng, opt.generator)
                   : generate_router_schedule(gen_rng, opt.generator);
  r.dsl = to_dsl(r.schedule);
  r.violations =
      execute_schedule(r.schedule, r.schedule.actions, fabric_seed,
                       &r.timeline_json, opt.shards, opt.shard_threads);

  if (!r.passed() && opt.shrink) {
    auto still_fails = [&](const std::vector<FaultAction>& candidate) {
      return !execute_schedule(r.schedule, candidate, fabric_seed, nullptr,
                               opt.shards, opt.shard_threads)
                  .empty();
    };
    auto shrunk = shrink_schedule(r.schedule.actions, still_fails,
                                  opt.shrink_max_evals);
    r.shrunk_actions = std::move(shrunk.actions);
    r.shrink_evaluations = shrunk.evaluations;
    FaultSchedule mini = r.schedule;
    mini.actions = r.shrunk_actions;
    r.shrunk_dsl = to_dsl(mini);
  }
  return r;
}

}  // namespace wam::chaos
