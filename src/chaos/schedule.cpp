#include "chaos/schedule.hpp"

#include <algorithm>
#include <cstdio>

#include "util/assert.hpp"

namespace wam::chaos {

namespace {

std::int64_t to_ms(sim::Duration d) { return d.count() / 1'000'000; }

/// Uniform pick from a non-empty vector.
int pick(sim::Rng& rng, const std::vector<int>& from) {
  WAM_EXPECTS(!from.empty());
  return from[rng.below(from.size())];
}

std::vector<int> all_upto(int n) {
  std::vector<int> out;
  for (int i = 0; i < n; ++i) out.push_back(i);
  return out;
}

}  // namespace

const char* fault_kind_verb(FaultKind k) {
  switch (k) {
    case FaultKind::kPartition: return "partition";
    case FaultKind::kMerge: return "merge";
    case FaultKind::kNicDown: return "disconnect";
    case FaultKind::kNicUp: return "reconnect";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRestart: return "restart";
    case FaultKind::kLeave: return "leave";
    case FaultKind::kJoin: return "join";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kUndrop: return "undrop";
    case FaultKind::kLoss: return "loss";
    case FaultKind::kOsFail: return "osfail";
    case FaultKind::kOsFailSticky: return "osfail-sticky";
    case FaultKind::kArpLose: return "arp-lose";
    case FaultKind::kOsHeal: return "osheal";
    case FaultKind::kCorruptVipOwner: return "corrupt-vip-owner";
    case FaultKind::kCorruptIndex: return "corrupt-index";
    case FaultKind::kStaleIncarnation: return "stale-incarnation";
    case FaultKind::kFlipViewId: return "flip-view-id";
    case FaultKind::kReconfigStorm: return "reconfig-storm";
  }
  return "?";
}

// ---------------------------------------------------------------- models

ClusterFaultModel::ClusterFaultModel(int num_servers) : n_(num_servers) {
  groups_.push_back(all_upto(n_));
}

void ClusterFaultModel::apply(const FaultAction& a) {
  // Mirrors the defensive no-op semantics of ClusterScenario and the
  // campaign dispatcher exactly: the shrinker deletes arbitrary actions,
  // so e.g. a restart whose crash was deleted must be a no-op here too.
  switch (a.kind) {
    case FaultKind::kPartition:
      groups_ = a.groups;
      break;
    case FaultKind::kMerge:
      groups_ = {all_upto(n_)};
      break;
    case FaultKind::kNicDown:
      nic_down_.insert(a.servers[0]);
      break;
    case FaultKind::kNicUp:
      nic_down_.erase(a.servers[0]);
      break;
    case FaultKind::kCrash:
      crashed_.insert(a.servers[0]);
      break;
    case FaultKind::kRestart:
      crashed_.erase(a.servers[0]);
      break;
    case FaultKind::kLeave:
      // The dispatcher only leaves a running, connected daemon.
      if (crashed_.count(a.servers[0]) == 0) left_.insert(a.servers[0]);
      break;
    case FaultKind::kJoin:
      left_.erase(a.servers[0]);
      break;
    case FaultKind::kDrop:
      ++drops_;
      break;
    case FaultKind::kUndrop:
      drops_ = 0;
      break;
    case FaultKind::kLoss:
      loss_ = a.value;
      break;
    case FaultKind::kOsFail:
      if (a.value > 0.0) {
        os_prob_.insert(a.servers[0]);
      } else {
        os_prob_.erase(a.servers[0]);
      }
      break;
    case FaultKind::kOsFailSticky:
      os_sticky_.insert(a.servers[0]);
      break;
    case FaultKind::kArpLose:
      arp_lose_.insert(a.servers[0]);
      break;
    case FaultKind::kOsHeal:
      os_prob_.erase(a.servers[0]);
      os_sticky_.erase(a.servers[0]);
      arp_lose_.erase(a.servers[0]);
      break;
    case FaultKind::kCorruptVipOwner:
    case FaultKind::kCorruptIndex:
    case FaultKind::kStaleIncarnation:
    case FaultKind::kFlipViewId:
    case FaultKind::kReconfigStorm:
      // Transient corruption: the daemon is expected to detect and heal it
      // by itself, so the predicted steady state is unchanged. Modelling
      // them as no-ops also keeps every shrunk subsequence sound.
      break;
  }
}

std::vector<std::vector<int>> ClusterFaultModel::components() const {
  // Partition groups minus NIC-down servers, plus one singleton per
  // NIC-down server: an administratively isolated server forms its own
  // maximal connected component and must cover every VIP alone.
  std::vector<std::vector<int>> out;
  for (const auto& g : groups_) {
    std::vector<int> alive;
    for (int idx : g) {
      if (nic_down_.count(idx) == 0) alive.push_back(idx);
    }
    if (!alive.empty()) out.push_back(std::move(alive));
  }
  for (int idx : nic_down_) out.push_back({idx});
  return out;
}

bool ClusterFaultModel::participant(int i) const {
  return crashed_.count(i) == 0 && left_.count(i) == 0;
}

RouterFaultModel::RouterFaultModel(int num_routers) : n_(num_routers) {}

void RouterFaultModel::apply(const FaultAction& a) {
  switch (a.kind) {
    case FaultKind::kNicDown:
      failed_.insert(a.servers[0]);
      break;
    case FaultKind::kNicUp:
      failed_.erase(a.servers[0]);
      break;
    case FaultKind::kLeave:
      if (failed_.count(a.servers[0]) == 0) left_.insert(a.servers[0]);
      break;
    case FaultKind::kJoin:
      left_.erase(a.servers[0]);
      break;
    case FaultKind::kLoss:
      loss_ = a.value;
      break;
    default:
      break;  // other kinds are not generated for the router profile
  }
}

// ------------------------------------------------------------- generator

namespace {

/// One storm action chosen among the kinds applicable to the model state.
/// `restarted_ms[i]` is the time of server i's last GCS restart: a leave
/// within 3 s of it could race the daemon's 2 s reconnect loop (the live
/// executor would no-op while the model records the departure), so such
/// servers are not leave candidates.
FaultAction pick_cluster_action(sim::Rng& rng, const ClusterFaultModel& model,
                                const std::vector<std::int64_t>& restarted_ms,
                                std::int64_t now_ms, int n, bool os_faults) {
  std::vector<int> nic_up;
  std::vector<int> nic_down;
  std::vector<int> crashed;
  std::vector<int> not_crashed;
  std::vector<int> leavable;
  std::vector<int> joinable;
  std::vector<int> not_sticky;
  std::vector<int> not_arp_lose;
  std::vector<int> os_faulted;
  for (int i = 0; i < n; ++i) {
    (model.nic_down(i) ? nic_down : nic_up).push_back(i);
    (model.crashed(i) ? crashed : not_crashed).push_back(i);
    if (!model.left(i) && !model.crashed(i) &&
        now_ms - restarted_ms[static_cast<std::size_t>(i)] >= 3000) {
      leavable.push_back(i);
    }
    if (model.left(i) && !model.crashed(i)) joinable.push_back(i);
    if (!model.os_sticky(i)) not_sticky.push_back(i);
    if (!model.arp_lose(i)) not_arp_lose.push_back(i);
    if (model.os_prob(i) || model.os_sticky(i) || model.arp_lose(i)) {
      os_faulted.push_back(i);
    }
  }

  std::vector<FaultKind> kinds{FaultKind::kPartition, FaultKind::kMerge,
                               FaultKind::kLoss};
  if (!nic_up.empty()) kinds.push_back(FaultKind::kNicDown);
  if (!nic_down.empty()) kinds.push_back(FaultKind::kNicUp);
  if (!not_crashed.empty()) kinds.push_back(FaultKind::kCrash);
  if (!crashed.empty()) kinds.push_back(FaultKind::kRestart);
  if (!leavable.empty()) kinds.push_back(FaultKind::kLeave);
  if (!joinable.empty()) kinds.push_back(FaultKind::kJoin);
  if (nic_up.size() >= 2) kinds.push_back(FaultKind::kDrop);
  if (os_faults) {
    kinds.push_back(FaultKind::kOsFail);
    if (!not_sticky.empty()) kinds.push_back(FaultKind::kOsFailSticky);
    if (!not_arp_lose.empty()) kinds.push_back(FaultKind::kArpLose);
    if (!os_faulted.empty()) kinds.push_back(FaultKind::kOsHeal);
  }

  FaultAction a;
  a.kind = kinds[rng.below(kinds.size())];
  switch (a.kind) {
    case FaultKind::kPartition: {
      do {
        a.groups.clear();
        auto k = 2 + rng.below(2);  // 2 or 3 groups
        std::vector<std::vector<int>> buckets(k);
        for (int i = 0; i < n; ++i) buckets[rng.below(k)].push_back(i);
        for (auto& b : buckets) {
          if (!b.empty()) a.groups.push_back(std::move(b));
        }
      } while (a.groups.size() < 2);
      break;
    }
    case FaultKind::kNicDown:
      a.servers.push_back(pick(rng, nic_up));
      break;
    case FaultKind::kNicUp:
      a.servers.push_back(pick(rng, nic_down));
      break;
    case FaultKind::kCrash:
      a.servers.push_back(pick(rng, not_crashed));
      break;
    case FaultKind::kRestart:
      a.servers.push_back(pick(rng, crashed));
      break;
    case FaultKind::kLeave:
      a.servers.push_back(pick(rng, leavable));
      break;
    case FaultKind::kJoin:
      a.servers.push_back(pick(rng, joinable));
      break;
    case FaultKind::kDrop: {
      int from = pick(rng, nic_up);
      int to = from;
      while (to == from) to = pick(rng, nic_up);
      a.servers = {from, to};
      break;
    }
    case FaultKind::kLoss:
      // Whole-millesimal probabilities survive the DSL round-trip exactly.
      a.value = static_cast<double>(rng.range(50, 300)) / 1000.0;
      break;
    case FaultKind::kOsFail:
      a.servers.push_back(pick(rng, all_upto(n)));
      a.value = static_cast<double>(rng.range(100, 600)) / 1000.0;
      break;
    case FaultKind::kOsFailSticky:
      a.servers.push_back(pick(rng, not_sticky));
      break;
    case FaultKind::kArpLose:
      a.servers.push_back(pick(rng, not_arp_lose));
      break;
    case FaultKind::kOsHeal:
      a.servers.push_back(pick(rng, os_faulted));
      break;
    default:
      break;
  }
  return a;
}

FaultAction pick_router_action(sim::Rng& rng, const RouterFaultModel& model,
                               int n) {
  std::vector<int> up;
  std::vector<int> down;
  std::vector<int> leavable;
  std::vector<int> joinable;
  for (int i = 0; i < n; ++i) {
    (model.failed(i) ? down : up).push_back(i);
    if (!model.failed(i) && !model.left(i)) leavable.push_back(i);
    if (model.left(i) && !model.failed(i)) joinable.push_back(i);
  }

  std::vector<FaultKind> kinds{FaultKind::kLoss};
  if (!up.empty()) kinds.push_back(FaultKind::kNicDown);
  if (!down.empty()) kinds.push_back(FaultKind::kNicUp);
  if (!leavable.empty()) kinds.push_back(FaultKind::kLeave);
  if (!joinable.empty()) kinds.push_back(FaultKind::kJoin);

  FaultAction a;
  a.kind = kinds[rng.below(kinds.size())];
  switch (a.kind) {
    case FaultKind::kNicDown:
      a.servers.push_back(pick(rng, up));
      break;
    case FaultKind::kNicUp:
      a.servers.push_back(pick(rng, down));
      break;
    case FaultKind::kLeave:
      a.servers.push_back(pick(rng, leavable));
      break;
    case FaultKind::kJoin:
      a.servers.push_back(pick(rng, joinable));
      break;
    case FaultKind::kLoss:
      a.value = static_cast<double>(rng.range(50, 300)) / 1000.0;
      break;
    default:
      break;
  }
  return a;
}

}  // namespace

FaultSchedule generate_cluster_schedule(sim::Rng& rng,
                                        const GeneratorOptions& opt) {
  WAM_EXPECTS(opt.num_servers >= 3);
  const int n = opt.num_servers;
  FaultSchedule s;
  s.num_servers = n;
  s.num_vips = opt.num_vips;
  s.os_faults = opt.os_faults;

  ClusterFaultModel model(n);
  std::vector<std::int64_t> restarted_ms(static_cast<std::size_t>(n), -10000);
  const std::int64_t quiesce_ms = to_ms(opt.quiesce);
  const std::int64_t calm_ms = to_ms(opt.calm);
  std::int64_t cursor = 10'000;  // actions start after initial stabilization
  s.state_faults = opt.state_faults;

  for (int round = 0; round < opt.rounds; ++round) {
    int burst = 1 + static_cast<int>(rng.below(3));
    for (int b = 0; b < burst; ++b) {
      cursor += rng.range(50, 600);
      FaultAction a = pick_cluster_action(rng, model, restarted_ms, cursor, n,
                                          opt.os_faults);
      a.at = sim::milliseconds(cursor);
      if (a.kind == FaultKind::kRestart) {
        restarted_ms[static_cast<std::size_t>(a.servers[0])] = cursor;
      }
      model.apply(a);
      s.actions.push_back(std::move(a));
    }
    // Heal transients before quiescence: the oracle's component prediction
    // is unsound while asymmetric drops, loss or probabilistic enforcement
    // faults are active. (Sticky / arp-lose faults persist: the oracle
    // reasons about those deterministically.)
    if (model.transient_active()) {
      for (auto kind : {FaultKind::kUndrop, FaultKind::kLoss}) {
        cursor += 50;
        FaultAction heal;
        heal.at = sim::milliseconds(cursor);
        heal.kind = kind;
        model.apply(heal);
        s.actions.push_back(std::move(heal));
      }
      for (int i = 0; i < n; ++i) {
        if (!model.os_prob(i)) continue;
        cursor += 50;
        FaultAction heal;
        heal.at = sim::milliseconds(cursor);
        heal.kind = FaultKind::kOsFail;
        heal.servers.push_back(i);
        heal.value = 0.0;
        model.apply(heal);
        s.actions.push_back(std::move(heal));
      }
    }
    // State-corruption shots land AFTER the transient heals, a couple of
    // seconds into the settling window: the corruption hits a cluster that
    // is (re)converging, and the remaining quiescence bounds the window in
    // which the daemon must detect and heal it. RNG draws happen only when
    // state faults are enabled so pre-existing pinned seeds keep consuming
    // the generator stream identically.
    if (opt.state_faults) {
      cursor += rng.range(2000, 4000);
      int shots = 1 + static_cast<int>(rng.below(2));  // 1 or 2 per round
      for (int c = 0; c < shots; ++c) {
        std::vector<int> candidates;
        for (int i = 0; i < n; ++i) {
          // Expected participants whose GCS was not just restarted: the
          // local Wackamole daemon should be connected and non-IDLE, so
          // the injection actually applies and the oracle tracks it.
          if (model.participant(i) &&
              cursor - restarted_ms[static_cast<std::size_t>(i)] >= 3000) {
            candidates.push_back(i);
          }
        }
        if (candidates.empty()) break;
        static constexpr FaultKind kCorruptions[] = {
            FaultKind::kCorruptVipOwner, FaultKind::kCorruptIndex,
            FaultKind::kStaleIncarnation, FaultKind::kFlipViewId,
            FaultKind::kReconfigStorm};
        FaultAction a;
        a.at = sim::milliseconds(cursor);
        a.kind = kCorruptions[rng.below(5)];
        a.servers.push_back(pick(rng, candidates));
        if (a.kind == FaultKind::kCorruptVipOwner ||
            a.kind == FaultKind::kCorruptIndex) {
          a.value = static_cast<double>(rng.below(
              static_cast<std::size_t>(opt.num_vips)));
        }
        model.apply(a);
        s.actions.push_back(std::move(a));
        cursor += rng.range(300, 600);
      }
    }
    s.checkpoints.push_back({sim::milliseconds(cursor + quiesce_ms), false});
    s.checkpoints.push_back(
        {sim::milliseconds(cursor + quiesce_ms + calm_ms), true});
    cursor += quiesce_ms + calm_ms + 500;
  }
  s.horizon = sim::milliseconds(cursor + 1000);
  return s;
}

FaultSchedule generate_router_schedule(sim::Rng& rng,
                                       const GeneratorOptions& opt) {
  WAM_EXPECTS(opt.num_servers >= 2);
  const int n = opt.num_servers;
  FaultSchedule s;
  s.num_servers = n;
  s.num_vips = 1;  // one indivisible virtual-router group
  s.router_profile = true;

  RouterFaultModel model(n);
  const std::int64_t quiesce_ms = to_ms(opt.quiesce);
  const std::int64_t calm_ms = to_ms(opt.calm);
  std::int64_t cursor = 10'000;

  for (int round = 0; round < opt.rounds; ++round) {
    int burst = 1 + static_cast<int>(rng.below(2));
    for (int b = 0; b < burst; ++b) {
      cursor += rng.range(50, 600);
      FaultAction a = pick_router_action(rng, model, n);
      a.at = sim::milliseconds(cursor);
      model.apply(a);
      s.actions.push_back(std::move(a));
    }
    if (model.transient_active()) {
      cursor += 50;
      FaultAction heal;
      heal.at = sim::milliseconds(cursor);
      heal.kind = FaultKind::kLoss;
      model.apply(heal);
      s.actions.push_back(std::move(heal));
    }
    s.checkpoints.push_back({sim::milliseconds(cursor + quiesce_ms), false});
    s.checkpoints.push_back(
        {sim::milliseconds(cursor + quiesce_ms + calm_ms), true});
    cursor += quiesce_ms + calm_ms + 500;
  }
  s.horizon = sim::milliseconds(cursor + 1000);
  return s;
}

// ------------------------------------------------------------------ DSL

namespace {

std::string format_secs(sim::Duration d) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(d.count()) / 1e9);
  return buf;
}

std::string server_token(int i) { return "server" + std::to_string(i + 1); }

}  // namespace

std::string to_dsl(const FaultSchedule& s) {
  std::string out;
  out += "# chaos schedule (profile: ";
  out += s.router_profile ? "router" : "cluster";
  out += ")\n";
  out += "servers " + std::to_string(s.num_servers) + "\n";
  out += "vips " + std::to_string(s.num_vips) + "\n";
  out += "gcs tuned\n";
  out += "balance 15\n";
  // State-fault schedules replay with auditing on, mirroring the campaign
  // executor's knobs — without it the injected corruption would never heal.
  if (s.state_faults) out += "audit 0.25\n";
  out += "\n";

  // Merge actions and checkpoints into one chronological listing so the
  // artifact reads as the exact campaign timeline.
  std::size_t ci = 0;
  auto flush_checkpoints = [&](sim::Duration upto) {
    while (ci < s.checkpoints.size() && s.checkpoints[ci].at <= upto) {
      out += "# checkpoint at " + format_secs(s.checkpoints[ci].at) +
             (s.checkpoints[ci].regression_guard ? " (regression guard)"
                                                 : " (post-quiesce)") +
             "\n";
      ++ci;
    }
  };
  for (const auto& a : s.actions) {
    flush_checkpoints(a.at);
    out += "at " + format_secs(a.at) + " " + fault_kind_verb(a.kind);
    switch (a.kind) {
      case FaultKind::kPartition: {
        out += " ";
        for (std::size_t g = 0; g < a.groups.size(); ++g) {
          if (g > 0) out += " | ";
          for (std::size_t i = 0; i < a.groups[g].size(); ++i) {
            if (i > 0) out += ",";
            out += server_token(a.groups[g][i]);
          }
        }
        break;
      }
      case FaultKind::kDrop:
        out += " " + server_token(a.servers[0]) + " " +
               server_token(a.servers[1]);
        break;
      case FaultKind::kLoss: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), " %.3f", a.value);
        out += buf;
        break;
      }
      case FaultKind::kOsFail: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), " %.3f", a.value);
        out += " " + server_token(a.servers[0]) + buf;
        break;
      }
      case FaultKind::kCorruptVipOwner:
      case FaultKind::kCorruptIndex:
        out += " " + server_token(a.servers[0]) + " " +
               std::to_string(static_cast<int>(a.value));
        break;
      case FaultKind::kMerge:
      case FaultKind::kUndrop:
        break;
      default:
        out += " " + server_token(a.servers[0]);
        break;
    }
    out += "\n";
  }
  flush_checkpoints(s.horizon);
  out += "run " + format_secs(s.horizon) + "\n";
  return out;
}

}  // namespace wam::chaos
