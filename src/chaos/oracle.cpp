#include "chaos/oracle.hpp"

namespace wam::chaos {

namespace {

std::string component_label(const std::vector<int>& component) {
  std::string out = "{";
  for (std::size_t i = 0; i < component.size(); ++i) {
    if (i > 0) out += ",";
    out += "server" + std::to_string(component[i] + 1);
  }
  return out + "}";
}

void check_daemon_run(wackamole::Daemon& w, const std::string& who,
                      sim::TimePoint now, bool regression_guard,
                      std::vector<Violation>& out) {
  if (w.running() && w.connected() &&
      w.state() == wackamole::WamState::kRun) {
    return;
  }
  Violation v;
  v.kind = Violation::Kind::kNotRun;
  v.at = now;
  v.persisted = regression_guard;
  v.detail = who + " state=" + wackamole::wam_state_name(w.state()) +
             (w.running() ? "" : " (stopped)") +
             (w.connected() ? "" : " (disconnected)") + " for " +
             sim::format_duration(w.time_in_state(now));
  out.push_back(std::move(v));
}

void report_coverage(int count, const std::string& what,
                     const std::string& where, sim::TimePoint now,
                     bool regression_guard, std::vector<Violation>& out) {
  if (count == 1) return;
  Violation v;
  v.kind = count == 0 ? Violation::Kind::kUncovered
                      : Violation::Kind::kConflict;
  v.at = now;
  v.persisted = regression_guard;
  v.detail = what + " covered " + std::to_string(count) + "x in component " +
             where;
  out.push_back(std::move(v));
}

}  // namespace

const char* violation_kind_name(Violation::Kind k) {
  switch (k) {
    case Violation::Kind::kUncovered: return "uncovered";
    case Violation::Kind::kConflict: return "conflict";
    case Violation::Kind::kNotRun: return "not-run";
    case Violation::Kind::kFencedButHeld: return "fenced-but-held";
  }
  return "?";
}

std::string to_string(const Violation& v) {
  return sim::format_time(v.at) + " [" + violation_kind_name(v.kind) + "] " +
         v.detail + (v.persisted ? " (persisted across quiet window)" : "");
}

void check_cluster_invariants(apps::ClusterScenario& s,
                              const ClusterFaultModel& model,
                              bool regression_guard,
                              std::vector<Violation>& out) {
  if (model.transient_active()) return;
  const auto now = s.sched.now();
  for (const auto& component : model.components()) {
    std::vector<int> participants;
    for (int i : component) {
      if (model.participant(i)) participants.push_back(i);
    }
    // A component whose daemons all crashed or left has nobody obliged to
    // cover anything (Property 1 quantifies over Wackamole participants).
    if (participants.empty()) continue;

    bool all_sticky = true;
    for (int i : participants) {
      check_daemon_run(s.wam(i), "server" + std::to_string(i + 1), now,
                       regression_guard, out);
      if (!model.os_sticky(i)) all_sticky = false;
      // Fence protocol invariant: quarantined means released.
      for (const auto& g : s.wam(i).quarantined_groups()) {
        if (!s.ip_manager(i).holds(g)) continue;
        Violation v;
        v.kind = Violation::Kind::kFencedButHeld;
        v.at = now;
        v.persisted = regression_guard;
        v.detail = "server" + std::to_string(i + 1) + " quarantined " + g +
                   " but still holds its addresses";
        out.push_back(std::move(v));
      }
    }
    const auto label = component_label(component);
    for (int k = 0; k < s.options().num_vips; ++k) {
      int count = s.coverage_count(s.vip(k), participants);
      // Quarantine-aware Property 1: an uncovered VIP is tolerable only
      // when no participant's enforcement layer can bind anything.
      if (count == 0 && all_sticky) continue;
      report_coverage(count, s.vip(k).to_string(), label, now,
                      regression_guard, out);
    }
  }
}

void check_router_invariants(apps::RouterScenario& s,
                             const RouterFaultModel& model,
                             bool regression_guard,
                             std::vector<Violation>& out) {
  if (model.transient_active()) return;
  const auto now = s.sched.now();
  // Failed routers are singleton components that legitimately keep their
  // aliases; the interesting component is the surviving fabric.
  std::vector<int> participants;
  for (int i = 0; i < model.num_routers(); ++i) {
    if (!model.failed(i) && !model.left(i)) participants.push_back(i);
  }
  if (participants.empty()) return;

  for (int i : participants) {
    check_daemon_run(s.wam(i), "router" + std::to_string(i + 1), now,
                     regression_guard, out);
  }

  // Property 1 for the indivisible group: exactly one participant holds
  // the WHOLE virtual-router identity, everyone else holds none of it.
  int holders = 0;
  for (int i : participants) {
    if (s.holds_whole_group(i)) {
      ++holders;
    } else if (!s.holds_nothing(i)) {
      Violation v;
      v.kind = Violation::Kind::kConflict;
      v.at = now;
      v.persisted = regression_guard;
      v.detail = "router" + std::to_string(i + 1) +
                 " holds a strict subset of the virtual-router group "
                 "(indivisibility broken)";
      out.push_back(std::move(v));
    }
  }
  report_coverage(holders, "virtual-router group", "{up routers}", now,
                  regression_guard, out);
}

void PairPersistenceFilter::apply(bool regression_guard,
                                  std::vector<Violation> found,
                                  std::vector<Violation>& out) {
  for (auto& v : found) {
    if (v.kind == Violation::Kind::kNotRun) {
      // Property 2 carries a stuck-duration in its detail and is not a
      // coverage transient: report immediately.
      out.push_back(std::move(v));
      continue;
    }
    // The detail string is stable across a pair (same VIP, same component:
    // no actions land between the two checkpoints), so it keys the
    // condition.
    std::string key =
        std::string(violation_kind_name(v.kind)) + "|" + v.detail;
    if (!regression_guard) {
      pending_.insert(std::move(key));
    } else if (pending_.count(key) > 0) {
      out.push_back(std::move(v));
    }
  }
  if (regression_guard) pending_.clear();
}

}  // namespace wam::chaos
