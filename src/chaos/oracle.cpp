#include "chaos/oracle.hpp"

namespace wam::chaos {

namespace {

std::string component_label(const std::vector<int>& component) {
  std::string out = "{";
  for (std::size_t i = 0; i < component.size(); ++i) {
    if (i > 0) out += ",";
    out += "server" + std::to_string(component[i] + 1);
  }
  return out + "}";
}

void check_daemon_run(wackamole::Daemon& w, const std::string& who,
                      sim::TimePoint now, bool regression_guard,
                      std::vector<Violation>& out) {
  if (w.running() && w.connected() &&
      w.state() == wackamole::WamState::kRun) {
    return;
  }
  Violation v;
  v.kind = Violation::Kind::kNotRun;
  v.at = now;
  v.persisted = regression_guard;
  v.detail = who + " state=" + wackamole::wam_state_name(w.state()) +
             (w.running() ? "" : " (stopped)") +
             (w.connected() ? "" : " (disconnected)") + " for " +
             sim::format_duration(w.time_in_state(now));
  out.push_back(std::move(v));
}

void report_coverage(int count, const std::string& what,
                     const std::string& where, sim::TimePoint now,
                     bool regression_guard, std::vector<Violation>& out) {
  if (count == 1) return;
  Violation v;
  v.kind = count == 0 ? Violation::Kind::kUncovered
                      : Violation::Kind::kConflict;
  v.at = now;
  v.persisted = regression_guard;
  v.detail = what + " covered " + std::to_string(count) + "x in component " +
             where;
  out.push_back(std::move(v));
}

}  // namespace

const char* violation_kind_name(Violation::Kind k) {
  switch (k) {
    case Violation::Kind::kUncovered: return "uncovered";
    case Violation::Kind::kConflict: return "conflict";
    case Violation::Kind::kNotRun: return "not-run";
  }
  return "?";
}

std::string to_string(const Violation& v) {
  return sim::format_time(v.at) + " [" + violation_kind_name(v.kind) + "] " +
         v.detail + (v.persisted ? " (persisted across quiet window)" : "");
}

void check_cluster_invariants(apps::ClusterScenario& s,
                              const ClusterFaultModel& model,
                              bool regression_guard,
                              std::vector<Violation>& out) {
  if (model.transient_active()) return;
  const auto now = s.sched.now();
  for (const auto& component : model.components()) {
    std::vector<int> participants;
    for (int i : component) {
      if (model.participant(i)) participants.push_back(i);
    }
    // A component whose daemons all crashed or left has nobody obliged to
    // cover anything (Property 1 quantifies over Wackamole participants).
    if (participants.empty()) continue;

    for (int i : participants) {
      check_daemon_run(s.wam(i), "server" + std::to_string(i + 1), now,
                       regression_guard, out);
    }
    const auto label = component_label(component);
    for (int k = 0; k < s.options().num_vips; ++k) {
      report_coverage(s.coverage_count(s.vip(k), participants),
                      s.vip(k).to_string(), label, now, regression_guard,
                      out);
    }
  }
}

void check_router_invariants(apps::RouterScenario& s,
                             const RouterFaultModel& model,
                             bool regression_guard,
                             std::vector<Violation>& out) {
  if (model.transient_active()) return;
  const auto now = s.sched.now();
  // Failed routers are singleton components that legitimately keep their
  // aliases; the interesting component is the surviving fabric.
  std::vector<int> participants;
  for (int i = 0; i < model.num_routers(); ++i) {
    if (!model.failed(i) && !model.left(i)) participants.push_back(i);
  }
  if (participants.empty()) return;

  for (int i : participants) {
    check_daemon_run(s.wam(i), "router" + std::to_string(i + 1), now,
                     regression_guard, out);
  }

  // Property 1 for the indivisible group: exactly one participant holds
  // the WHOLE virtual-router identity, everyone else holds none of it.
  int holders = 0;
  for (int i : participants) {
    if (s.holds_whole_group(i)) {
      ++holders;
    } else if (!s.holds_nothing(i)) {
      Violation v;
      v.kind = Violation::Kind::kConflict;
      v.at = now;
      v.persisted = regression_guard;
      v.detail = "router" + std::to_string(i + 1) +
                 " holds a strict subset of the virtual-router group "
                 "(indivisibility broken)";
      out.push_back(std::move(v));
    }
  }
  report_coverage(holders, "virtual-router group", "{up routers}", now,
                  regression_guard, out);
}

}  // namespace wam::chaos
