#include "chaos/oracle.hpp"

#include "wackamole/audit.hpp"

namespace wam::chaos {

namespace {

std::string component_label(const std::vector<int>& component) {
  std::string out = "{";
  for (std::size_t i = 0; i < component.size(); ++i) {
    if (i > 0) out += ",";
    out += "server" + std::to_string(component[i] + 1);
  }
  return out + "}";
}

void check_daemon_run(wackamole::Daemon& w, const std::string& who,
                      sim::TimePoint now, bool regression_guard,
                      std::vector<Violation>& out) {
  if (w.running() && w.connected() &&
      w.state() == wackamole::WamState::kRun) {
    return;
  }
  Violation v;
  v.kind = Violation::Kind::kNotRun;
  v.at = now;
  v.persisted = regression_guard;
  v.detail = who + " state=" + wackamole::wam_state_name(w.state()) +
             (w.running() ? "" : " (stopped)") +
             (w.connected() ? "" : " (disconnected)") + " for " +
             sim::format_duration(w.time_in_state(now));
  out.push_back(std::move(v));
}

void report_coverage(int count, const std::string& what,
                     const std::string& where, sim::TimePoint now,
                     bool regression_guard, std::vector<Violation>& out) {
  if (count == 1) return;
  Violation v;
  v.kind = count == 0 ? Violation::Kind::kUncovered
                      : Violation::Kind::kConflict;
  v.at = now;
  v.persisted = regression_guard;
  v.detail = what + " covered " + std::to_string(count) + "x in component " +
             where;
  out.push_back(std::move(v));
}

}  // namespace

const char* violation_kind_name(Violation::Kind k) {
  switch (k) {
    case Violation::Kind::kUncovered: return "uncovered";
    case Violation::Kind::kConflict: return "conflict";
    case Violation::Kind::kNotRun: return "not-run";
    case Violation::Kind::kFencedButHeld: return "fenced-but-held";
    case Violation::Kind::kCorruptionUndetected:
      return "corruption-undetected";
    case Violation::Kind::kCorruptionUnhealed: return "corruption-unhealed";
    case Violation::Kind::kResidualCorruption: return "residual-corruption";
  }
  return "?";
}

std::string to_string(const Violation& v) {
  return sim::format_time(v.at) + " [" + violation_kind_name(v.kind) + "] " +
         v.detail + (v.persisted ? " (persisted across quiet window)" : "");
}

void check_cluster_invariants(apps::ClusterScenario& s,
                              const ClusterFaultModel& model,
                              bool regression_guard,
                              std::vector<Violation>& out) {
  if (model.transient_active()) return;
  const auto now = s.sched.now();
  for (const auto& component : model.components()) {
    std::vector<int> participants;
    for (int i : component) {
      if (model.participant(i)) participants.push_back(i);
    }
    // A component whose daemons all crashed or left has nobody obliged to
    // cover anything (Property 1 quantifies over Wackamole participants).
    if (participants.empty()) continue;

    bool all_sticky = true;
    for (int i : participants) {
      check_daemon_run(s.wam(i), "server" + std::to_string(i + 1), now,
                       regression_guard, out);
      if (!model.os_sticky(i)) all_sticky = false;
      // Fence protocol invariant: quarantined means released.
      for (const auto& g : s.wam(i).quarantined_groups()) {
        if (!s.ip_manager(i).holds(g)) continue;
        Violation v;
        v.kind = Violation::Kind::kFencedButHeld;
        v.at = now;
        v.persisted = regression_guard;
        v.detail = "server" + std::to_string(i + 1) + " quarantined " + g +
                   " but still holds its addresses";
        out.push_back(std::move(v));
      }
    }
    const auto label = component_label(component);
    for (int k = 0; k < s.options().num_vips; ++k) {
      int count = s.coverage_count(s.vip(k), participants);
      // Quarantine-aware Property 1: an uncovered VIP is tolerable only
      // when no participant's enforcement layer can bind anything.
      if (count == 0 && all_sticky) continue;
      report_coverage(count, s.vip(k).to_string(), label, now,
                      regression_guard, out);
    }
  }
}

void check_router_invariants(apps::RouterScenario& s,
                             const RouterFaultModel& model,
                             bool regression_guard,
                             std::vector<Violation>& out) {
  if (model.transient_active()) return;
  const auto now = s.sched.now();
  // Failed routers are singleton components that legitimately keep their
  // aliases; the interesting component is the surviving fabric.
  std::vector<int> participants;
  for (int i = 0; i < model.num_routers(); ++i) {
    if (!model.failed(i) && !model.left(i)) participants.push_back(i);
  }
  if (participants.empty()) return;

  for (int i : participants) {
    check_daemon_run(s.wam(i), "router" + std::to_string(i + 1), now,
                     regression_guard, out);
  }

  // Property 1 for the indivisible group: exactly one participant holds
  // the WHOLE virtual-router identity, everyone else holds none of it.
  int holders = 0;
  for (int i : participants) {
    if (s.holds_whole_group(i)) {
      ++holders;
    } else if (!s.holds_nothing(i)) {
      Violation v;
      v.kind = Violation::Kind::kConflict;
      v.at = now;
      v.persisted = regression_guard;
      v.detail = "router" + std::to_string(i + 1) +
                 " holds a strict subset of the virtual-router group "
                 "(indivisibility broken)";
      out.push_back(std::move(v));
    }
  }
  report_coverage(holders, "virtual-router group", "{up routers}", now,
                  regression_guard, out);
}

// ------------------------------------------------- reconvergence oracle ----

namespace {

/// Detection and healing may happen in either layer (a flipped view epoch
/// is caught by the GCS ViewAuditor, a corrupt table by the Wackamole
/// StateAuditor), so obligations sum the counters of both daemons.
std::uint64_t detected_count(apps::ClusterScenario& s, int i) {
  return s.wam(i).counters().corruptions_detected.value() +
         s.gcs_daemon(i).counters().corruptions_detected.value();
}

std::uint64_t heal_count(apps::ClusterScenario& s, int i) {
  return s.wam(i).counters().self_heals.value() +
         s.gcs_daemon(i).counters().self_heals.value();
}

}  // namespace

void ReconvergenceOracle::on_applied(apps::ClusterScenario& s,
                                     const FaultAction& a) {
  if (a.kind == FaultKind::kReconfigStorm) return;
  Obligation o;
  o.server = a.servers[0];
  o.at = s.sched.now();
  o.verb = fault_kind_verb(a.kind);
  o.detected0 = detected_count(s, o.server);
  o.heals0 = heal_count(s, o.server);
  pending_.push_back(o);
}

void ReconvergenceOracle::check(apps::ClusterScenario& s,
                                bool regression_guard,
                                std::vector<Violation>& out) {
  const auto now = s.sched.now();
  for (const auto& o : pending_) {
    auto& w = s.wam(o.server);
    if (!w.running() || !w.connected()) {
      // The target crashed or lost its GCS since the injection: its state
      // was (or will be) rebuilt from scratch, so the obligation is moot.
      continue;
    }
    const std::string who = "server" + std::to_string(o.server + 1);
    if (detected_count(s, o.server) == o.detected0) {
      Violation v;
      v.kind = Violation::Kind::kCorruptionUndetected;
      v.at = now;
      v.persisted = regression_guard;
      v.detail = who + ": " + o.verb + " injected at " +
                 sim::format_time(o.at) + " never detected";
      out.push_back(std::move(v));
    } else if (heal_count(s, o.server) == o.heals0) {
      Violation v;
      v.kind = Violation::Kind::kCorruptionUnhealed;
      v.at = now;
      v.persisted = regression_guard;
      v.detail = who + ": " + o.verb + " injected at " +
                 sim::format_time(o.at) + " detected but never healed";
      out.push_back(std::move(v));
    }
  }
  pending_.clear();

  // Residual sweep: Properties 1/2 must not just hold — the guarded state
  // itself must be clean again on every reachable daemon.
  for (int i = 0; i < s.num_servers(); ++i) {
    const std::string who = "server" + std::to_string(i + 1);
    auto& w = s.wam(i);
    if (w.running() && w.connected()) {
      auto findings = wackamole::StateAuditor::audit(w);
      for (const auto& f : findings) {
        Violation v;
        v.kind = Violation::Kind::kResidualCorruption;
        v.at = now;
        v.persisted = regression_guard;
        v.detail = who + " wam audit: " +
                   wackamole::audit_check_name(f.check) +
                   (f.group.empty() ? "" : " " + f.group) + " (" + f.detail +
                   ")";
        out.push_back(std::move(v));
      }
    }
    auto& g = s.gcs_daemon(i);
    if (g.running() && g.in_op() && !g.view_audit_clean()) {
      Violation v;
      v.kind = Violation::Kind::kResidualCorruption;
      v.at = now;
      v.persisted = regression_guard;
      v.detail = who + " gcs view audit not clean";
      out.push_back(std::move(v));
    }
  }
}

void PairPersistenceFilter::apply(bool regression_guard,
                                  std::vector<Violation> found,
                                  std::vector<Violation>& out) {
  for (auto& v : found) {
    if (v.kind == Violation::Kind::kNotRun) {
      // Property 2 carries a stuck-duration in its detail and is not a
      // coverage transient: report immediately.
      out.push_back(std::move(v));
      continue;
    }
    // The detail string is stable across a pair (same VIP, same component:
    // no actions land between the two checkpoints), so it keys the
    // condition.
    std::string key =
        std::string(violation_kind_name(v.kind)) + "|" + v.detail;
    if (!regression_guard) {
      pending_.insert(std::move(key));
    } else if (pending_.count(key) > 0) {
      out.push_back(std::move(v));
    }
  }
  if (regression_guard) pending_.clear();
}

}  // namespace wam::chaos
