// Client-side session handle to a local GCS daemon.
//
// Mirrors Spread's client library: connect to the daemon on the same host,
// join named groups, multicast with Agreed ordering, receive messages and
// group membership notifications through callbacks. If the daemon stops,
// the client learns through on_disconnect and may reconnect later —
// Wackamole uses exactly this to implement its "drop all virtual interfaces
// and periodically retry" behaviour (Section 4.2).
#pragma once

#include <cstdint>
#include <string>

#include "gcs/daemon.hpp"

namespace wam::gcs {

class Client {
 public:
  Client(std::string name, ClientCallbacks callbacks);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Attach to a daemon; returns false if the daemon is not running.
  bool connect(Daemon& daemon);
  /// Detach (leaving all groups gracefully).
  void disconnect();
  [[nodiscard]] bool connected() const { return daemon_ != nullptr; }

  void join(const std::string& group);
  void leave(const std::string& group);
  void multicast(const std::string& group, util::Bytes payload,
                 ServiceType service = ServiceType::kAgreed);

  /// Identity within the current connection; only valid while connected.
  [[nodiscard]] MemberId self() const;
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  ClientCallbacks callbacks_;
  Daemon* daemon_ = nullptr;
  std::uint32_t id_ = 0;
};

}  // namespace wam::gcs
