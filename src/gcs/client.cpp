#include "gcs/client.hpp"

#include "util/assert.hpp"

namespace wam::gcs {

Client::Client(std::string name, ClientCallbacks callbacks)
    : name_(std::move(name)), callbacks_(std::move(callbacks)) {}

Client::~Client() {
  if (connected()) disconnect();
}

bool Client::connect(Daemon& daemon) {
  WAM_EXPECTS(!connected());
  if (!daemon.running()) return false;
  ClientCallbacks wrapped = callbacks_;
  auto user_disconnect = callbacks_.on_disconnect;
  // Intercept daemon-initiated disconnects so connected() stays truthful.
  wrapped.on_disconnect = [this, user_disconnect] {
    daemon_ = nullptr;
    id_ = 0;
    if (user_disconnect) user_disconnect();
  };
  id_ = daemon.register_client(name_, std::move(wrapped));
  daemon_ = &daemon;
  return true;
}

void Client::disconnect() {
  if (!connected()) return;
  auto* daemon = daemon_;
  auto id = id_;
  daemon_ = nullptr;
  id_ = 0;
  daemon->unregister_client(id);
}

void Client::join(const std::string& group) {
  WAM_EXPECTS(connected());
  daemon_->client_join(id_, group);
}

void Client::leave(const std::string& group) {
  WAM_EXPECTS(connected());
  daemon_->client_leave(id_, group);
}

void Client::multicast(const std::string& group, util::Bytes payload,
                       ServiceType service) {
  WAM_EXPECTS(connected());
  daemon_->client_multicast(id_, group, std::move(payload), service);
}

MemberId Client::self() const {
  WAM_EXPECTS(connected());
  return daemon_->member_id(id_);
}

}  // namespace wam::gcs
