#include "gcs/audit.hpp"

#include <algorithm>

namespace wam::gcs {

const char* view_check_name(ViewCheck c) {
  switch (c) {
    case ViewCheck::kIdMismatch: return "view-id-mismatch";
    case ViewCheck::kMembersMismatch: return "view-members-mismatch";
    case ViewCheck::kEpochRegressed: return "view-epoch-regressed";
    case ViewCheck::kSelfMissing: return "view-self-missing";
  }
  return "?";
}

void ViewAuditor::record(const View& v) {
  shadow_ = v;
  have_ = true;
  shadow_epoch_ = std::max(shadow_epoch_, v.id.epoch);
}

std::optional<ViewFinding> ViewAuditor::audit(const View& live,
                                              DaemonId self) const {
  if (!have_) return std::nullopt;
  if (!(live.id == shadow_.id)) {
    return ViewFinding{ViewCheck::kIdMismatch,
                       "live " + live.id.to_string() + " vs shadow " +
                           shadow_.id.to_string()};
  }
  if (live.members != shadow_.members) {
    return ViewFinding{ViewCheck::kMembersMismatch,
                       "live " + live.to_string() + " vs shadow " +
                           shadow_.to_string()};
  }
  if (live.id.epoch < shadow_epoch_) {
    return ViewFinding{ViewCheck::kEpochRegressed,
                       "epoch " + std::to_string(live.id.epoch) +
                           " below high-water " +
                           std::to_string(shadow_epoch_)};
  }
  if (!live.contains(self)) {
    return ViewFinding{ViewCheck::kSelfMissing,
                       self.to_string() + " not in " + live.to_string()};
  }
  return std::nullopt;
}

}  // namespace wam::gcs
