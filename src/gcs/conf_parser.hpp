// spread.conf-style configuration parsing for the GCS daemon.
//
// The real Spread daemon is driven by a text file; this parser accepts a
// compact dialect covering everything our daemon supports:
//
//     # spread.conf
//     Port = 4803
//     Multicast = 239.192.0.7     # omit for limited broadcast
//     Ordering = ring             # or: sequencer
//     FaultDetection = 1s
//     Heartbeat = 0.4s            # the distributed heartbeat timeout
//     Discovery = 1.4s
//     TokenHold = 2ms
//     TokenRetry = 50ms
//     TokenWindow = 64
//
// Durations take `s` or `ms` suffixes. The result is validate()d.
#pragma once

#include <stdexcept>
#include <string>

#include "gcs/config.hpp"

namespace wam::gcs {

class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

[[nodiscard]] Config parse_config(const std::string& text);
[[nodiscard]] std::string render_config(const Config& config);

}  // namespace wam::gcs
