// GCS wire messages.
//
// Every daemon-to-daemon packet is one of the variants below, serialized
// with a leading type byte into a UDP payload. DataMessage doubles as the
// retained-message record used by the Virtual-Synchrony exchange: during a
// membership change each daemon ships its unstable messages (tagged with
// the view that sequenced them) to the coordinator, whose INSTALL carries
// the per-old-view union back out.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "gcs/types.hpp"
#include "util/bytes.hpp"
#include "util/shared_bytes.hpp"

namespace wam::gcs {

enum class MsgType : std::uint8_t {
  kHeartbeat = 1,
  kDiscovery = 2,
  kPropose = 3,
  kAccept = 4,
  kInstall = 5,
  kForward = 6,
  kData = 7,
  kNack = 8,
  kToken = 9,
};

enum class DataKind : std::uint8_t {
  kClientPayload = 0,  // application multicast
  kJoin = 1,           // group join control message
  kLeave = 2,          // group leave control message
};

/// A data message. For kAgreed service, `seq` is the view-global sequence
/// number stamped by the sequencer (0 until then). For kFifo service,
/// `seq` is the origin daemon's per-view FIFO counter and the message is
/// broadcast by the origin directly.
struct DataMessage {
  ViewId view;                   // view that sequenced it; proposal view in FORWARD
  std::uint64_t seq = 0;         // 0 until the sequencer assigns one
  MemberId sender;               // originating client
  std::uint64_t origin_msg_id = 0;  // per-origin-daemon counter (dedup/pending)
  ServiceType service = ServiceType::kAgreed;
  DataKind kind = DataKind::kClientPayload;
  std::string group;
  util::SharedBytes payload;  // COW: shared with the wire buffer on decode
  /// kCausal only: (daemon, last stream seq dispatched from that daemon)
  /// at send time — the happened-before dependencies.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> vclock;
};

/// Periodic liveness + stability gossip (broadcast every heartbeat_timeout).
struct Heartbeat {
  DaemonId sender;
  ViewId view;                      // sender's installed view
  bool in_op = true;                // false while reconfiguring
  std::uint64_t delivered_seq = 0;  // highest contiguously delivered seq
  std::uint64_t stable_seq = 0;     // sequencer's stability watermark
  std::uint64_t fifo_seq = 0;       // head of the sender's FIFO/causal
                                    // stream (receivers NACK a silent tail)
};

/// Membership-change flood: who I am, what epoch I propose, whom I've heard.
struct Discovery {
  DaemonId sender;
  std::uint64_t epoch = 0;
  std::vector<DaemonId> known;
};

/// Coordinator's proposed membership after the discovery window closes.
struct Propose {
  ViewId view;
  std::vector<DaemonId> members;
};

struct GroupEntry {
  std::string group;
  MemberId member;
};

/// Member -> coordinator: my state for the Virtual-Synchrony exchange.
struct Accept {
  ViewId view;          // the proposal being accepted
  DaemonId sender;
  ViewId old_view;      // last installed view
  std::vector<DataMessage> retained;  // unstable messages from old views
  std::vector<GroupEntry> groups;     // local group table snapshot
  std::vector<std::pair<std::string, std::uint64_t>> group_seqs;
};

/// Coordinator -> all: install the view after delivering the sync set.
struct Install {
  View view;
  std::vector<DataMessage> sync;   // union of retained, sorted (view, seq)
  std::vector<GroupEntry> groups;  // merged group table for the new view
  std::vector<std::pair<std::string, std::uint64_t>> group_seqs;
};

/// Member -> sequencer: please order this (seq==0 inside).
struct Forward {
  DataMessage data;
};

/// Receiver -> sequencer (agreed) or origin daemon (fifo): I am missing
/// these sequence numbers. For the FIFO flavor, `fifo_origin` names the
/// origin daemon whose stream has the gap; it is 0.0.0.0 for agreed.
struct Nack {
  ViewId view;
  DaemonId sender;
  DaemonId fifo_origin;
  std::vector<std::uint64_t> missing;
};

/// The rotating ordering token (OrderingEngine::kTokenRing). Unicast
/// around the ring in membership order.
struct Token {
  ViewId view;
  std::uint64_t rotation = 0;  // hop counter; receivers dedup on it
  std::uint64_t seq = 0;       // highest sequence number assigned so far
  std::uint64_t aru = 0;       // all-received-up-to watermark
  DaemonId aru_setter;         // who lowered the aru last
  std::vector<std::uint64_t> rtr;  // sequence numbers needing retransmission
};

using Message = std::variant<Heartbeat, Discovery, Propose, Accept, Install,
                             Forward, DataMessage, Nack, Token>;

[[nodiscard]] util::Bytes encode(const Message& msg);
/// Throws util::DecodeError on malformed input. Data payloads come back
/// as zero-copy slices of `buf`'s refcounted storage (plain Bytes inputs
/// are wrapped — moved, not copied, when passed as an rvalue).
[[nodiscard]] Message decode(const util::SharedBytes& buf);

[[nodiscard]] const char* msg_type_name(const Message& msg);

}  // namespace wam::gcs
