#include "gcs/daemon.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace wam::gcs {

namespace {
/// Dedup key for origin-based message identity.
std::pair<std::uint32_t, std::uint64_t> origin_key(const DataMessage& d) {
  return {d.sender.daemon.value(), d.origin_msg_id};
}

// Single source of truth for DaemonCounters field names.
template <class CountersT, class Fn>
void for_each_gcs_metric(CountersT&& c, Fn&& fn) {
  fn("views_installed", c.views_installed);
  fn("discoveries_started", c.discoveries_started);
  fn("data_sequenced", c.data_sequenced);
  fn("data_delivered", c.data_delivered);
  fn("fifo_sent", c.fifo_sent);
  fn("fifo_delivered", c.fifo_delivered);
  fn("fifo_dropped_reconfig", c.fifo_dropped_reconfig);
  fn("token_rotations", c.token_rotations);
  fn("token_retries", c.token_retries);
  fn("nacks_sent", c.nacks_sent);
  fn("retransmissions", c.retransmissions);
  fn("sync_messages_delivered", c.sync_messages_delivered);
  fn("decode_errors", c.decode_errors);
  fn("corruptions_detected", c.corruptions_detected);
  fn("self_heals", c.self_heals);
}
}  // namespace

void DaemonCounters::bind(obs::MetricRegistry& registry,
                          const std::string& scope) {
  for_each_gcs_metric(*this, [&](const char* name, obs::Counter& c) {
    registry.bind(c, scope + "/" + name);
  });
}

void DaemonCounters::export_into(obs::MetricRegistry& registry,
                                 const std::string& scope) const {
  for_each_gcs_metric(*this, [&](const char* name, const obs::Counter& c) {
    registry.counter(scope + "/" + name) = c.value();
  });
}

Daemon::Daemon(net::Host& host, Config config, sim::Log* log, int ifindex)
    : host_(host),
      config_(config),
      ifindex_(ifindex),
      id_(host.primary_ip(ifindex)),
      log_(log, "gcs/" + host.name()) {
  config_.validate();
}

Daemon::~Daemon() {
  if (running_) stop();
}

void Daemon::bind_observability(obs::Observability& obs, std::string scope) {
  obs_ = &obs;
  obs_scope_ = std::move(scope);
  counters_.bind(obs.registry, obs_scope_);
}

void Daemon::start() {
  WAM_EXPECTS(!running_);
  running_ = true;
  bool bound = host_.open_udp(
      config_.port, [this](const net::Host::UdpContext& ctx,
                           const util::SharedBytes& payload) { on_udp(ctx, payload); });
  WAM_ASSERT(bound);
  if (!config_.multicast_group.is_any()) {
    host_.join_multicast(ifindex_, config_.multicast_group);
  }
  // Fresh incarnation: wipe every trace of a previous run (a restarted
  // daemon must not resurrect its old clients' group entries or messages),
  // install a singleton view at epoch 0, then flood discovery.
  group_table_ = GroupTable{};
  pending_out_.clear();
  store_.clear();
  buffer_.clear();
  preinstall_.clear();
  sequenced_.clear();
  member_delivered_.clear();
  fifo_out_seq_ = 0;
  fifo_store_.clear();
  fifo_delivered_.clear();
  fifo_dispatched_.clear();
  fifo_advertised_.clear();
  fifo_dispatch_.clear();
  fifo_buffer_.clear();
  accepts_.clear();
  accepted_proposal_.reset();
  coordinator_ = false;
  next_seq_ = 1;
  delivered_seq_ = 0;
  stable_seq_ = 0;
  advertised_seq_ = 0;
  view_ = View{ViewId{0, id_}, {id_}};
  state_ = State::kOp;
  auditor_.record(view_);
  heartbeat_timer_ = host_.scheduler().schedule(
      config_.heartbeat_timeout, [this] { heartbeat_tick(); });
  arm_audit_timer();
  log_.info("daemon %s starting", id_.to_string().c_str());
  enter_discovery("startup");
}

void Daemon::stop() {
  if (!running_) return;
  running_ = false;
  host_.close_udp(config_.port);
  if (!config_.multicast_group.is_any()) {
    host_.leave_multicast(ifindex_, config_.multicast_group);
  }
  heartbeat_timer_.cancel();
  nack_timer_.cancel();
  fifo_nack_timer_.cancel();
  audit_timer_.cancel();
  token_pass_timer_.cancel();
  token_retry_timer_.cancel();
  discovery_rebroadcast_timer_.cancel();
  discovery_deadline_timer_.cancel();
  install_deadline_timer_.cancel();
  for (auto& [member, timer] : fault_timers_) timer.cancel();
  fault_timers_.clear();
  auto clients = std::move(clients_);
  clients_.clear();
  for (auto& [cid, client] : clients) {
    if (client.callbacks.on_disconnect) client.callbacks.on_disconnect();
  }
  log_.info("daemon %s stopped", id_.to_string().c_str());
}

// ------------------------------------------------------------------ I/O ----

void Daemon::broadcast(const Message& msg) {
  if (!config_.multicast_group.is_any()) {
    host_.send_udp_multicast(ifindex_, config_.multicast_group, config_.port,
                             config_.port, encode(msg));
    return;
  }
  host_.send_udp_broadcast(ifindex_, config_.port, config_.port, encode(msg));
}

void Daemon::unicast(DaemonId to, const Message& msg) {
  if (to == id_) return;  // local paths are invoked directly
  host_.send_udp(to, config_.port, config_.port, encode(msg));
}

void Daemon::on_udp(const net::Host::UdpContext& ctx,
                    const util::SharedBytes& payload) {
  if (!running_) return;
  Message msg;
  try {
    msg = decode(payload);
  } catch (const util::DecodeError&) {
    ++counters_.decode_errors;
    return;
  }
  DaemonId src(ctx.src_ip);
  if (src == id_) return;  // our own broadcast reflected; fabric shouldn't
  note_alive(src);
  // Hearing a daemon outside our view while operational means the network
  // has more connectivity than the view reflects: reconfigure.
  if (state_ == State::kOp && !view_.contains(src)) {
    enter_discovery("foreign daemon heard");
  }
  std::visit(
      [this](auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Heartbeat>) {
          on_heartbeat(m);
        } else if constexpr (std::is_same_v<T, Discovery>) {
          on_discovery(m);
        } else if constexpr (std::is_same_v<T, Propose>) {
          on_propose(m);
        } else if constexpr (std::is_same_v<T, Accept>) {
          on_accept(m);
        } else if constexpr (std::is_same_v<T, Install>) {
          on_install(m);
        } else if constexpr (std::is_same_v<T, Forward>) {
          on_forward(std::move(m.data));
        } else if constexpr (std::is_same_v<T, DataMessage>) {
          on_data(m);
        } else if constexpr (std::is_same_v<T, Nack>) {
          on_nack(m);
        } else if constexpr (std::is_same_v<T, Token>) {
          on_token(std::move(m));
        }
      },
      msg);
}

// ----------------------------------------------------- failure detection ----

void Daemon::note_alive(DaemonId member) {
  if (member == id_) return;
  if (state_ == State::kOp && view_.contains(member)) {
    arm_fault_timer(member);
  }
}

void Daemon::arm_fault_timer(DaemonId member) {
  auto& timer = fault_timers_[member];
  timer.cancel();
  timer = host_.scheduler().schedule(
      config_.fault_detection_timeout, [this, member] {
        if (state_ != State::kOp || !view_.contains(member)) return;
        log_.info("fault detected: %s silent for %s",
                  member.to_string().c_str(),
                  sim::format_duration(config_.fault_detection_timeout).c_str());
        enter_discovery("fault detected");
      });
}

void Daemon::heartbeat_tick() {
  if (!running_) return;
  std::uint64_t stable = stable_seq_;
  if (state_ == State::kOp && is_sequencer() && !token_mode()) {
    member_delivered_[id_] = delivered_seq_;
    stable = delivered_seq_;
    for (DaemonId m : view_.members) {
      auto it = member_delivered_.find(m);
      std::uint64_t d = it == member_delivered_.end() ? 0 : it->second;
      stable = std::min(stable, d);
    }
    prune_stable(stable);
  }
  Heartbeat hb{id_,   view_.id, state_ == State::kOp,
               delivered_seq_, stable,  fifo_out_seq_};
  broadcast(hb);
  if (state_ == State::kOp) reforward_pending();
  heartbeat_timer_ = host_.scheduler().schedule(config_.heartbeat_timeout,
                                                [this] { heartbeat_tick(); });
}

void Daemon::on_heartbeat(const Heartbeat& hb) {
  if (state_ != State::kOp) return;
  if (!view_.contains(hb.sender)) return;  // foreign case handled in on_udp
  if (hb.in_op && hb.view != view_.id) {
    // A member operates in a different view than ours. Before treating the
    // disagreement as churn, audit OUR side against the install-time shadow:
    // a locally bit-flipped view id looks exactly like this, and the heal
    // path (restore shadow + rediscover) must get credit for it — this is
    // the "protocol-message boundary" audit point.
    if (audit_and_heal()) return;
    enter_discovery("view mismatch in heartbeat");
    return;
  }
  if (is_sequencer()) {
    member_delivered_[hb.sender] = hb.delivered_seq;
  } else if (hb.sender == sequencer() && hb.stable_seq > stable_seq_) {
    prune_stable(hb.stable_seq);
  }
  // Sequenced-stream tail recovery: a short connectivity glitch (below the
  // fault-detection threshold, so no view change repairs it) can drop the
  // LAST sequenced messages, and with nothing newer in flight there is no
  // gap to notice — we would diverge from the group silently and forever.
  // Peers advertise their delivered head in every heartbeat; falling behind
  // it is the missing gap signal.
  if (hb.in_op && !is_sequencer()) {
    advertised_seq_ = std::max(advertised_seq_, hb.delivered_seq);
    if (advertised_seq_ > delivered_seq_) schedule_nack();
  }
  // FIFO/causal tail recovery: a dropped message with no successor leaves
  // no gap to detect, so the heartbeat advertises the origin's stream head
  // and we NACK up to it.
  if (hb.in_op && hb.fifo_seq > 0) {
    auto& advertised = fifo_advertised_[hb.sender];
    advertised = std::max(advertised, hb.fifo_seq);
    if (advertised > fifo_delivered_[hb.sender]) schedule_fifo_nack();
  }
}

void Daemon::prune_stable(std::uint64_t stable) {
  stable_seq_ = std::max(stable_seq_, stable);
  store_.erase(store_.begin(), store_.upper_bound(stable_seq_));
  drain_dispatch();  // stability may release withheld SAFE messages
}

// ------------------------------------------------------------ total order ----

DaemonId Daemon::sequencer() const {
  WAM_ASSERT(!view_.members.empty());
  return view_.members.front();
}

void Daemon::submit(DataMessage data) {
  data.origin_msg_id = next_out_id_++;
  if (data.service == ServiceType::kFifo ||
      data.service == ServiceType::kCausal) {
    // FIFO/causal: origin-sequenced, broadcast directly, reliable within
    // the view only (no re-forward across view changes, no VS exchange).
    if (state_ != State::kOp) {
      ++counters_.fifo_dropped_reconfig;
      return;
    }
    data.view = view_.id;
    data.seq = ++fifo_out_seq_;
    if (data.service == ServiceType::kCausal) {
      // Happened-before snapshot: the last stream position we dispatched
      // from every OTHER origin.
      for (const auto& [origin, seq] : fifo_dispatched_) {
        if (origin != id_ && seq > 0) {
          data.vclock.emplace_back(origin.value(), seq);
        }
      }
    }
    fifo_store_.emplace(data.seq, data);
    if (fifo_store_.size() > 1024) fifo_store_.erase(fifo_store_.begin());
    ++counters_.fifo_sent;
    broadcast(data);
    deliver_fifo(data);  // self-delivery
    return;
  }
  pending_out_.push_back(data);
  if (state_ != State::kOp) return;  // re-forwarded after the next install
  if (token_mode()) return;  // flushed when the token next visits us
  data.view = view_.id;
  if (is_sequencer()) {
    sequence_and_broadcast(std::move(data));
  } else {
    unicast(sequencer(), Forward{std::move(data)});
  }
}

void Daemon::reforward_pending() {
  if (state_ != State::kOp || token_mode()) return;
  // When we are the sequencer, on_forward() delivers synchronously and the
  // client callbacks it triggers may submit() (growing pending_out_) or ack
  // messages that deliver() then erases — either invalidates a live
  // iterator. Iterate a snapshot; new submissions forward themselves and
  // on_forward dedups anything already sequenced.
  const auto snapshot = pending_out_;
  for (auto data : snapshot) {
    data.view = view_.id;
    if (is_sequencer()) {
      // Dedup in on_forward path; call it directly for symmetry.
      on_forward(std::move(data));
    } else {
      unicast(sequencer(), Forward{std::move(data)});
    }
  }
}

void Daemon::on_forward(DataMessage data) {
  if (state_ != State::kOp || !is_sequencer()) return;
  if (data.view != view_.id) return;  // raced a view change; origin re-sends
  if (!sequenced_.insert(origin_key(data)).second) return;  // duplicate
  sequence_and_broadcast(std::move(data));
}

void Daemon::sequence_and_broadcast(DataMessage data) {
  data.view = view_.id;
  data.seq = next_seq_++;
  sequenced_.insert(origin_key(data));
  ++counters_.data_sequenced;
  broadcast(data);
  on_data(data);  // the fabric does not loop broadcasts back to the sender
}

void Daemon::on_data(const DataMessage& data) {
  if (data.service == ServiceType::kFifo ||
      data.service == ServiceType::kCausal) {
    on_fifo_data(data);
    return;
  }
  if (state_ != State::kOp || data.view != view_.id) {
    // Data for a view we have not installed yet: stash and replay after the
    // install; data for old views is stale and dropped.
    if (data.view.epoch >= view_.id.epoch && data.view != view_.id &&
        preinstall_[data.view].size() < 4096) {
      preinstall_[data.view].push_back(data);
    }
    return;
  }
  if (data.seq == delivered_seq_ + 1) {
    deliver(data);
    try_deliver_buffered();
  } else if (data.seq > delivered_seq_ + 1) {
    buffer_.emplace(data.seq, data);
    schedule_nack();
  }
  // else: duplicate of something already delivered; drop.
}

void Daemon::try_deliver_buffered() {
  auto it = buffer_.begin();
  while (it != buffer_.end() && it->first <= delivered_seq_) {
    it = buffer_.erase(it);
  }
  while (it != buffer_.end() && it->first == delivered_seq_ + 1) {
    deliver(it->second);
    it = buffer_.erase(it);
  }
}

void Daemon::deliver(const DataMessage& data) {
  WAM_ASSERT(data.seq == delivered_seq_ + 1);
  delivered_seq_ = data.seq;
  store_.emplace(data.seq, data);
  ++counters_.data_delivered;

  // Our own message came back: it is now ordered, stop re-forwarding it.
  if (data.sender.daemon == id_) {
    for (auto it = pending_out_.begin(); it != pending_out_.end(); ++it) {
      if (it->origin_msg_id == data.origin_msg_id) {
        pending_out_.erase(it);
        break;
      }
    }
  }

  // Dispatch through a queue so that SAFE messages can hold the line (and
  // everything ordered after them) until stability reaches them.
  dispatch_queue_.push_back(data);
  drain_dispatch();
}

void Daemon::drain_dispatch(bool force) {
  while (!dispatch_queue_.empty()) {
    const auto& front = dispatch_queue_.front();
    if (!force && front.service == ServiceType::kSafe &&
        front.seq > stable_seq_) {
      break;  // not yet known-received by everyone
    }
    // Copy out: dispatch may reenter deliver() via synchronous local sends.
    DataMessage msg = front;
    dispatch_queue_.pop_front();
    dispatch(msg);
  }
}

void Daemon::dispatch(const DataMessage& data) {
  switch (data.kind) {
    case DataKind::kJoin:
    case DataKind::kLeave:
      apply_group_control(data);
      break;
    case DataKind::kClientPayload:
      dispatch_to_clients(data);
      break;
  }
}

void Daemon::schedule_nack() {
  if (token_mode()) return;  // the token's rtr list recovers gaps
  if (nack_timer_.pending()) return;
  nack_timer_ =
      host_.scheduler().schedule(config_.nack_delay, [this] { nack_tick(); });
}

void Daemon::nack_tick() {
  if (state_ != State::kOp || is_sequencer()) return;
  Nack nack{view_.id, id_, {}};
  // Everything below the highest buffered seq is a classic gap; everything
  // up to the heartbeat-advertised delivered head is potential tail loss
  // (buffer_ may be empty then — the lost messages had no successor).
  std::uint64_t hi = buffer_.empty() ? 0 : buffer_.rbegin()->first;
  hi = std::max(hi, advertised_seq_ + 1);
  for (std::uint64_t s = delivered_seq_ + 1; s < hi && nack.missing.size() < 64;
       ++s) {
    if (buffer_.count(s) == 0) nack.missing.push_back(s);
  }
  if (!nack.missing.empty()) {
    ++counters_.nacks_sent;
    unicast(sequencer(), nack);
    nack_timer_ = host_.scheduler().schedule(config_.nack_delay * 2,
                                             [this] { nack_tick(); });
  }
}

void Daemon::on_nack(const Nack& nack) {
  if (state_ != State::kOp || nack.view != view_.id) return;
  if (nack.fifo_origin == id_) {
    // A receiver is missing part of OUR fifo stream.
    for (std::uint64_t seq : nack.missing) {
      auto it = fifo_store_.find(seq);
      if (it != fifo_store_.end()) {
        ++counters_.retransmissions;
        unicast(nack.sender, it->second);
      }
    }
    return;
  }
  if (!nack.fifo_origin.is_any() || !is_sequencer()) return;
  for (std::uint64_t seq : nack.missing) {
    auto it = store_.find(seq);
    if (it != store_.end()) {
      ++counters_.retransmissions;
      unicast(nack.sender, it->second);
    }
  }
}

void Daemon::dispatch_to_clients(const DataMessage& data) {
  GroupMessage gm{data.group, data.sender, data.payload};
  for (std::uint32_t cid : local_members_of(data.group)) {
    auto it = clients_.find(cid);
    if (it != clients_.end() && it->second.callbacks.on_message) {
      it->second.callbacks.on_message(gm);
    }
  }
}

// ---------------------------------------------------------- FIFO service ----

void Daemon::on_fifo_data(const DataMessage& data) {
  if (state_ != State::kOp || data.view != view_.id) return;  // stale
  DaemonId origin = data.sender.daemon;
  auto& delivered = fifo_delivered_[origin];
  if (data.seq == delivered + 1) {
    deliver_fifo(data);
    auto& buffer = fifo_buffer_[origin];
    auto it = buffer.begin();
    while (it != buffer.end() && it->first == fifo_delivered_[origin] + 1) {
      deliver_fifo(it->second);
      it = buffer.erase(it);
    }
  } else if (data.seq > delivered + 1) {
    fifo_buffer_[origin].emplace(data.seq, data);
    schedule_fifo_nack();
  }
  // else: duplicate, drop.
}

void Daemon::deliver_fifo(const DataMessage& data) {
  fifo_delivered_[data.sender.daemon] = data.seq;
  fifo_dispatch_[data.sender.daemon].push_back(data);
  drain_origin_streams();
}

bool Daemon::causally_ready(const DataMessage& data) const {
  for (const auto& [daemon_value, seq] : data.vclock) {
    DaemonId origin{daemon_value};
    if (origin == data.sender.daemon) continue;  // own-stream order covers it
    auto it = fifo_dispatched_.find(origin);
    std::uint64_t dispatched = it == fifo_dispatched_.end() ? 0 : it->second;
    if (dispatched < seq) return false;
  }
  return true;
}

void Daemon::drain_origin_streams() {
  // Dispatch per-origin streams in order; a causal message blocks its
  // origin's stream until its cross-origin dependencies are dispatched.
  // Dispatching anything may unblock other streams, so loop to fixpoint.
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& [origin, queue] : fifo_dispatch_) {
      while (!queue.empty()) {
        const auto& head = queue.front();
        if (head.service == ServiceType::kCausal && !causally_ready(head)) {
          break;
        }
        DataMessage msg = head;
        queue.pop_front();
        fifo_dispatched_[origin] = msg.seq;
        ++counters_.fifo_delivered;
        // These services carry application payloads only; group control is
        // always agreed.
        if (msg.kind == DataKind::kClientPayload) dispatch_to_clients(msg);
        progress = true;
      }
    }
  }
}

void Daemon::schedule_fifo_nack() {
  if (fifo_nack_timer_.pending()) return;
  fifo_nack_timer_ = host_.scheduler().schedule(config_.nack_delay,
                                                [this] { fifo_nack_tick(); });
}

void Daemon::fifo_nack_tick() {
  if (state_ != State::kOp) return;
  bool gaps_remain = false;
  std::set<DaemonId> origins;
  for (const auto& [origin, buffer] : fifo_buffer_) origins.insert(origin);
  for (const auto& [origin, head] : fifo_advertised_) origins.insert(origin);
  for (DaemonId origin : origins) {
    if (origin == id_) continue;
    Nack nack{view_.id, id_, origin, {}};
    const auto& buffer = fifo_buffer_[origin];
    std::uint64_t hi = buffer.empty() ? 0 : buffer.rbegin()->first;
    auto adv = fifo_advertised_.find(origin);
    if (adv != fifo_advertised_.end()) hi = std::max(hi, adv->second + 1);
    for (std::uint64_t s = fifo_delivered_[origin] + 1;
         s < hi && nack.missing.size() < 64; ++s) {
      if (buffer.count(s) == 0) nack.missing.push_back(s);
    }
    if (!nack.missing.empty()) {
      gaps_remain = true;
      ++counters_.nacks_sent;
      unicast(origin, nack);
    }
  }
  if (gaps_remain) {
    fifo_nack_timer_ = host_.scheduler().schedule(
        config_.nack_delay * 2, [this] { fifo_nack_tick(); });
  }
}

// ------------------------------------------------------- token ordering ----

DaemonId Daemon::ring_successor() const {
  int rank = view_.rank_of(id_);
  WAM_ASSERT(rank >= 0);
  auto next = static_cast<std::size_t>(rank + 1) % view_.members.size();
  return view_.members[next];
}

void Daemon::on_token(Token token) {
  if (!token_mode() || state_ != State::kOp || token.view != view_.id) return;
  if (token.rotation <= last_rotation_seen_) return;  // duplicate/stale copy
  last_rotation_seen_ = token.rotation;
  token_retry_timer_.cancel();  // the ring made progress past our last send
  ++counters_.token_rotations;

  // 1. Retransmit what others asked for and we have.
  std::vector<std::uint64_t> still_missing;
  for (auto seq : token.rtr) {
    const DataMessage* have = nullptr;
    if (auto it = store_.find(seq); it != store_.end()) have = &it->second;
    if (auto it = buffer_.find(seq); it != buffer_.end()) have = &it->second;
    if (have) {
      ++counters_.retransmissions;
      broadcast(*have);
    } else {
      still_missing.push_back(seq);
    }
  }
  token.rtr = std::move(still_missing);

  // 2. Broadcast our pending messages, stamping sequence numbers from the
  //    token (flow-controlled by the per-hold window).
  // Two phases: stamp and copy first, then send — local delivery erases
  // entries from pending_out_, which must not happen while iterating it.
  std::vector<DataMessage> outgoing;
  int sent = 0;
  for (auto& data : pending_out_) {
    if (sent >= config_.token_window) break;
    if (data.seq != 0) continue;  // already stamped on an earlier hold
    data.view = view_.id;
    data.seq = ++token.seq;
    outgoing.push_back(data);
    ++sent;
  }
  for (auto& data : outgoing) {
    ++counters_.data_sequenced;
    broadcast(data);
    // Deliver locally: on_data copes with any ordering.
    on_data(data);
  }

  // 3. Ask for our own gaps.
  for (std::uint64_t s = delivered_seq_ + 1; s <= token.seq; ++s) {
    if (buffer_.count(s) == 0 && token.rtr.size() < 64) {
      token.rtr.push_back(s);
    }
  }

  // 4. Totem aru rule: lower it to our all-received-up-to if we are
  //    behind; raise it only if we set it last.
  if (delivered_seq_ < token.aru) {
    token.aru = delivered_seq_;
    token.aru_setter = id_;
  } else if (token.aru_setter == id_) {
    token.aru = delivered_seq_;
  }

  // 5. Stability: everything at or below the aru of the PREVIOUS rotation
  //    has been received by all members for a full rotation.
  auto stable = std::min(prev_token_aru_, token.aru);
  prev_token_aru_ = token.aru;
  prune_stable(stable);

  // 6. Pass it on after the hold time (paces the rotation).
  token.rotation += 1;
  token_pass_timer_.cancel();
  token_pass_timer_ = host_.scheduler().schedule(
      config_.token_hold,
      [this, token = std::move(token)] { pass_token(token); });
}

void Daemon::pass_token(Token token) {
  if (!token_mode() || state_ != State::kOp || token.view != view_.id) return;
  last_sent_token_ = token;
  auto successor = ring_successor();
  if (successor == id_) {
    // Singleton ring: loop the token to ourselves through the scheduler.
    host_.scheduler().schedule(config_.token_hold,
                               [this, token = std::move(token)] {
                                 on_token(token);
                               });
    return;
  }
  unicast(successor, token);
  token_retry_timer_.cancel();
  token_retry_timer_ = host_.scheduler().schedule(
      config_.token_retry, [this] { token_retry_tick(); });
}

void Daemon::token_retry_tick() {
  if (!token_mode() || state_ != State::kOp || !last_sent_token_) return;
  if (last_sent_token_->view != view_.id) return;
  // No token has come back since we sent ours: assume the unicast was lost
  // and resend the same copy (receivers dedup on the rotation counter).
  ++counters_.token_retries;
  unicast(ring_successor(), *last_sent_token_);
  token_retry_timer_ = host_.scheduler().schedule(
      config_.token_retry, [this] { token_retry_tick(); });
}

// --------------------------------------------------- membership protocol ----

void Daemon::enter_discovery(const char* reason) {
  if (!running_) return;
  ++counters_.discoveries_started;
  state_ = State::kDiscovery;
  coordinator_ = false;
  accepted_proposal_.reset();
  accepts_.clear();
  proposed_members_.clear();
  for (auto& [member, timer] : fault_timers_) timer.cancel();
  fault_timers_.clear();
  nack_timer_.cancel();
  fifo_nack_timer_.cancel();
  token_pass_timer_.cancel();
  token_retry_timer_.cancel();
  install_deadline_timer_.cancel();
  discovery_epoch_ = std::max(discovery_epoch_, view_.id.epoch) + 1;
  known_ = {id_};
  log_.info("entering discovery (epoch %llu): %s",
            static_cast<unsigned long long>(discovery_epoch_), reason);
  discovery_broadcast();
  discovery_rebroadcast_timer_.cancel();
  discovery_rebroadcast_timer_ = host_.scheduler().schedule(
      config_.heartbeat_timeout, [this] {
        if (state_ != State::kDiscovery) return;
        discovery_broadcast();
        discovery_rebroadcast_timer_ = host_.scheduler().schedule(
            config_.heartbeat_timeout, [this] {
              if (state_ == State::kDiscovery) discovery_broadcast();
            });
      });
  discovery_deadline_timer_.cancel();
  discovery_deadline_timer_ = host_.scheduler().schedule(
      config_.discovery_timeout, [this] { discovery_deadline(); });
}

void Daemon::discovery_broadcast() {
  Discovery d{id_, discovery_epoch_,
              std::vector<DaemonId>(known_.begin(), known_.end())};
  broadcast(d);
}

void Daemon::on_discovery(const Discovery& d) {
  if (state_ == State::kOp) {
    enter_discovery("peer in discovery");
    // Fall through with the freshly reset discovery state.
  } else if (state_ == State::kAwaitInstall) {
    // proposed_members_ is sorted (discovery_deadline sorts it before
    // proposing), as are d.known and p.members below — senders emit them
    // from a std::set / post-sort, so membership checks binary-search.
    bool cascades = !accepted_proposal_ ||
                    d.epoch >= accepted_proposal_->epoch ||
                    !std::binary_search(proposed_members_.begin(),
                                        proposed_members_.end(), d.sender);
    if (!cascades) return;  // stale flood from before the proposal
    enter_discovery("cascading view change");
  }
  WAM_ASSERT(state_ == State::kDiscovery);
  bool changed = false;
  if (d.epoch > discovery_epoch_) {
    discovery_epoch_ = d.epoch;
    changed = true;
  }
  if (known_.insert(d.sender).second) changed = true;
  for (DaemonId k : d.known) {
    if (known_.insert(k).second) changed = true;
  }
  bool they_know_us =
      std::binary_search(d.known.begin(), d.known.end(), id_);
  if (changed || !they_know_us) {
    discovery_broadcast();
  }
  if (changed) {
    // Extend the window so the flood can converge everywhere.
    discovery_deadline_timer_.cancel();
    discovery_deadline_timer_ = host_.scheduler().schedule(
        config_.discovery_timeout, [this] { discovery_deadline(); });
  }
}

void Daemon::discovery_deadline() {
  if (state_ != State::kDiscovery) return;
  discovery_rebroadcast_timer_.cancel();
  std::vector<DaemonId> members(known_.begin(), known_.end());
  std::sort(members.begin(), members.end());
  if (members.front() == id_) {
    // We coordinate the install.
    coordinator_ = true;
    proposed_members_ = members;
    ViewId proposal{discovery_epoch_, id_};
    accepted_proposal_ = proposal;
    accepts_.clear();
    state_ = State::kAwaitInstall;
    log_.info("proposing view %s with %zu members",
              proposal.to_string().c_str(), members.size());
    if (members.size() > 1) {
      broadcast(Propose{proposal, members});
      install_deadline_timer_.cancel();
      install_deadline_timer_ = host_.scheduler().schedule(
          config_.effective_install_timeout(), [this] { install_deadline(); });
    }
    on_accept(make_own_accept(proposal));
  } else {
    state_ = State::kAwaitInstall;
    coordinator_ = false;
    install_deadline_timer_.cancel();
    install_deadline_timer_ = host_.scheduler().schedule(
        config_.effective_install_timeout(), [this] { install_deadline(); });
  }
}

Accept Daemon::make_own_accept(const ViewId& proposal) const {
  Accept a;
  a.view = proposal;
  a.sender = id_;
  a.old_view = view_.id;
  a.retained.reserve(store_.size());
  for (const auto& [seq, msg] : store_) a.retained.push_back(msg);
  a.groups = group_table_.entries();
  a.group_seqs = group_table_.seqs();
  return a;
}

void Daemon::on_propose(const Propose& p) {
  bool includes_us =
      std::binary_search(p.members.begin(), p.members.end(), id_);
  if (!includes_us) {
    // They formed a view without us; our flood will trigger another change.
    enter_discovery("proposed view excludes us");
    return;
  }
  switch (state_) {
    case State::kOp:
      if (p.view.epoch <= view_.id.epoch) return;  // stale
      discovery_epoch_ = std::max(discovery_epoch_, p.view.epoch);
      send_accept(p.view, p.view.coordinator);
      break;
    case State::kDiscovery:
      if (p.view.epoch < discovery_epoch_) return;  // stale
      discovery_epoch_ = p.view.epoch;
      discovery_rebroadcast_timer_.cancel();
      discovery_deadline_timer_.cancel();
      send_accept(p.view, p.view.coordinator);
      break;
    case State::kAwaitInstall:
      if (accepted_proposal_ && p.view <= *accepted_proposal_) return;
      coordinator_ = false;
      accepts_.clear();
      send_accept(p.view, p.view.coordinator);
      break;
  }
}

void Daemon::send_accept(const ViewId& proposal, DaemonId coordinator) {
  accepted_proposal_ = proposal;
  state_ = State::kAwaitInstall;
  install_deadline_timer_.cancel();
  install_deadline_timer_ = host_.scheduler().schedule(
      config_.effective_install_timeout(), [this] { install_deadline(); });
  Accept a = make_own_accept(proposal);
  log_.debug("accepting proposal %s", proposal.to_string().c_str());
  unicast(coordinator, a);
}

void Daemon::on_accept(const Accept& a) {
  if (!coordinator_ || !accepted_proposal_ || a.view != *accepted_proposal_) {
    return;
  }
  accepts_[a.sender] = a;
  maybe_finish_collect();
}

void Daemon::maybe_finish_collect() {
  for (DaemonId m : proposed_members_) {
    if (accepts_.count(m) == 0) return;
  }
  // Build the install: per-old-view union of retained messages, merged group
  // table restricted to surviving daemons, per-group max sequence counters.
  Install inst;
  inst.view = View{*accepted_proposal_, proposed_members_};
  std::sort(inst.view.members.begin(), inst.view.members.end());

  std::map<std::pair<ViewId, std::uint64_t>, DataMessage> sync;
  std::map<std::pair<std::string, std::pair<std::uint32_t, std::uint32_t>>,
           GroupEntry>
      groups;
  std::map<std::string, std::uint64_t> seqs;
  for (const auto& [sender, accept] : accepts_) {
    for (const auto& msg : accept.retained) {
      sync.emplace(std::make_pair(msg.view, msg.seq), msg);
    }
    for (const auto& entry : accept.groups) {
      if (!inst.view.contains(entry.member.daemon)) continue;
      // Each daemon is authoritative for the clients IT hosts: accepting a
      // peer's stale record for another daemon's client would resurrect
      // ghost members after that daemon restarted (its new incarnation has
      // no such client, and a group view containing one deadlocks any
      // client protocol that waits to hear from every member).
      if (entry.member.daemon != sender) continue;
      groups.emplace(
          std::make_pair(entry.group,
                         std::make_pair(entry.member.daemon.value(),
                                        entry.member.client)),
          entry);
    }
    for (const auto& [group, seq] : accept.group_seqs) {
      auto& s = seqs[group];
      s = std::max(s, seq);
    }
  }
  inst.sync.reserve(sync.size());
  for (auto& [key, msg] : sync) inst.sync.push_back(std::move(msg));
  inst.groups.reserve(groups.size());
  for (auto& [key, entry] : groups) inst.groups.push_back(std::move(entry));
  inst.group_seqs.assign(seqs.begin(), seqs.end());

  log_.info("installing view %s (%zu members, %zu sync msgs)",
            inst.view.id.to_string().c_str(), inst.view.members.size(),
            inst.sync.size());
  broadcast(inst);
  install_view(inst);
}

void Daemon::on_install(const Install& inst) {
  if (!inst.view.contains(id_)) {
    enter_discovery("installed view excludes us");
    return;
  }
  if (state_ != State::kAwaitInstall || !accepted_proposal_ ||
      inst.view.id != *accepted_proposal_) {
    // We did not contribute our state to this view; joining it could break
    // Virtual Synchrony, so force another round instead.
    if (state_ == State::kOp && inst.view.id.epoch <= view_.id.epoch) return;
    enter_discovery("unexpected install");
    return;
  }
  install_view(inst);
}

void Daemon::install_view(const Install& inst) {
  // Extended-Virtual-Synchrony transitional signal: before replaying the
  // old view's tail, tell local group members which of their peers are
  // transitioning together (the only ones guaranteed to have delivered the
  // same set). Clients that do not care (Wackamole) skip transitional
  // views.
  for (const auto& name : group_table_.group_names()) {
    auto locals = local_members_of(name);
    if (locals.empty()) continue;
    GroupView tv;
    tv.group = name;
    tv.daemon_view = view_.id;  // the OLD view
    tv.group_seq = group_table_.seq(name);
    tv.reason = GroupChangeReason::kNetwork;
    tv.transitional = true;
    for (const auto& m : group_table_.members_of(name, view_)) {
      if (inst.view.contains(m.daemon)) tv.members.push_back(m);
    }
    for (std::uint32_t cid : locals) {
      auto it = clients_.find(cid);
      if (it != clients_.end() && it->second.callbacks.on_membership) {
        it->second.callbacks.on_membership(tv);
      }
    }
  }

  // Virtual-Synchrony exchange: deliver the sync messages belonging to OUR
  // previous view that we have not delivered yet, in order and without
  // gaps. All daemons transitioning from that view compute the same cut.
  for (const auto& msg : inst.sync) {
    if (msg.view != view_.id) continue;
    if (msg.seq <= delivered_seq_) continue;
    if (msg.seq != delivered_seq_ + 1) break;  // gap: discard the tail
    deliver(msg);
    ++counters_.sync_messages_delivered;
  }
  // Release anything still withheld (SAFE): all members that transitioned
  // with us flush the identical set here, preserving agreement.
  drain_dispatch(true);

  view_ = inst.view;
  state_ = State::kOp;
  auditor_.record(view_);
  discovery_epoch_ = std::max(discovery_epoch_, view_.id.epoch);
  next_seq_ = 1;
  delivered_seq_ = 0;
  stable_seq_ = 0;
  advertised_seq_ = 0;
  store_.clear();
  buffer_.clear();
  dispatch_queue_.clear();
  sequenced_.clear();
  member_delivered_.clear();
  fifo_out_seq_ = 0;
  fifo_store_.clear();
  fifo_delivered_.clear();
  fifo_dispatched_.clear();
  fifo_advertised_.clear();
  fifo_dispatch_.clear();
  fifo_buffer_.clear();
  fifo_nack_timer_.cancel();
  last_rotation_seen_ = 0;
  prev_token_aru_ = 0;
  last_sent_token_.reset();
  token_pass_timer_.cancel();
  token_retry_timer_.cancel();
  coordinator_ = false;
  accepts_.clear();
  accepted_proposal_.reset();
  discovery_rebroadcast_timer_.cancel();
  discovery_deadline_timer_.cancel();
  install_deadline_timer_.cancel();
  ++counters_.views_installed;
  if (obs_ != nullptr) {
    obs_->emit(host_.scheduler().now(), obs::EventType::kViewInstalled,
               obs_scope_,
               {{"view", view_.id.to_string()},
                {"members", std::to_string(view_.members.size())}});
  }

  group_table_.replace(inst.groups, inst.group_seqs);
  // Each accept's entries reflect that daemon's own position in the agreed
  // stream at collect time. A daemon that had not yet delivered a sequenced
  // leave/join for one of ITS OWN clients contributes a stale entry which
  // the authoritativeness filter in maybe_finish_collect() then prefers
  // over every peer's fresher copy — resurrecting a ghost member (and
  // dropping a re-join) that wedges any client protocol waiting to hear
  // from all group members. The sync cut carries exactly the controls such
  // a daemon missed, it is identical in every Install, and join/leave are
  // idempotent on the table, so re-applying it here converges all daemons
  // on the same ghost-free table. Notifications are NOT fired per control:
  // refresh_groups_after_install() below announces the final membership
  // once, with identical group sequence numbers everywhere.
  for (const auto& msg : inst.sync) {
    if (msg.kind != DataKind::kJoin && msg.kind != DataKind::kLeave) continue;
    if (!inst.view.contains(msg.sender.daemon)) continue;
    if (msg.kind == DataKind::kJoin) {
      group_table_.join(msg.group, msg.sender);
    } else {
      group_table_.leave(msg.group, msg.sender);
    }
  }
  // The merged table is authoritative for which groups our clients are in.
  for (auto& [cid, client] : clients_) {
    client.groups.clear();
  }
  for (const auto& entry : group_table_.entries()) {
    if (entry.member.daemon != id_) continue;
    auto it = clients_.find(entry.member.client);
    if (it != clients_.end()) it->second.groups.insert(entry.group);
  }

  for (DaemonId m : view_.members) {
    if (m != id_) arm_fault_timer(m);
  }

  log_.info("installed %s", view_.to_string().c_str());
  refresh_groups_after_install();

  // Replay data already received for this view, then resubmit whatever of
  // ours is still unordered.
  auto stashed = preinstall_.find(view_.id);
  if (stashed != preinstall_.end()) {
    auto msgs = std::move(stashed->second);
    preinstall_.clear();
    std::sort(msgs.begin(), msgs.end(),
              [](const DataMessage& a, const DataMessage& b) {
                return a.seq < b.seq;
              });
    for (const auto& msg : msgs) on_data(msg);
  } else {
    preinstall_.clear();
  }
  for (auto& pending : pending_out_) pending.seq = 0;  // restamp in new view
  reforward_pending();
  if (token_mode() && view_.members.front() == id_) {
    // The lowest member injects a fresh token into the new ring.
    Token token;
    token.view = view_.id;
    token.rotation = 1;
    token.aru_setter = id_;
    on_token(std::move(token));
  }
  // Kick stability/liveness gossip without waiting a full heartbeat.
  Heartbeat hb{id_, view_.id, true, delivered_seq_, stable_seq_};
  broadcast(hb);
}

void Daemon::install_deadline() {
  if (state_ != State::kAwaitInstall) return;
  enter_discovery("install timeout");
}

// ------------------------------------------------------- group handling ----

void Daemon::apply_group_control(const DataMessage& data) {
  const MemberId& member = data.sender;
  if (data.kind == DataKind::kJoin) {
    if (!group_table_.join(data.group, member)) return;
    if (member.daemon == id_) {
      auto it = clients_.find(member.client);
      if (it != clients_.end()) it->second.groups.insert(data.group);
    }
    notify_group(data.group, GroupChangeReason::kJoin);
  } else {
    if (!group_table_.leave(data.group, member)) return;
    if (member.daemon == id_) {
      auto it = clients_.find(member.client);
      if (it != clients_.end()) it->second.groups.erase(data.group);
    }
    notify_group(data.group, GroupChangeReason::kLeave);
  }
}

void Daemon::notify_group(const std::string& group, GroupChangeReason reason) {
  // CRITICAL: this function must run under exactly the same conditions at
  // every daemon (it advances the group's view sequence number, which
  // clients embed in their own protocols as the view identity). Callers
  // guarantee determinism: join/leave notifications fire only when the
  // totally-ordered control message actually changed the synced table, and
  // install-time notifications fire unconditionally for every group in the
  // merged table.
  auto members = group_table_.members_of(group, view_);
  GroupView gv;
  gv.group = group;
  gv.daemon_view = view_.id;
  gv.group_seq = group_table_.bump_seq(group);
  gv.reason = reason;
  gv.members = std::move(members);
  for (std::uint32_t cid : local_members_of(group)) {
    auto cit = clients_.find(cid);
    if (cit != clients_.end() && cit->second.callbacks.on_membership) {
      cit->second.callbacks.on_membership(gv);
    }
  }
}

void Daemon::refresh_groups_after_install() {
  // Deliver a fresh group view for EVERY group after a daemon membership
  // change, even if the member set happens to be unchanged: the decision
  // must not depend on per-daemon history (a daemon that just merged in
  // has no history), or the per-group sequence numbers would diverge.
  for (const auto& name : group_table_.group_names()) {
    notify_group(name, GroupChangeReason::kNetwork);
  }
}

std::vector<std::uint32_t> Daemon::local_members_of(
    const std::string& group) const {
  std::vector<std::uint32_t> out;
  for (const auto& [cid, client] : clients_) {
    if (client.groups.count(group) > 0) out.push_back(cid);
  }
  return out;
}

// ------------------------------------------------------- client sessions ----

std::uint32_t Daemon::register_client(std::string name,
                                      ClientCallbacks callbacks) {
  WAM_EXPECTS(running_);
  auto cid = next_client_id_++;
  clients_[cid] = LocalClient{std::move(name), std::move(callbacks), {}};
  return cid;
}

void Daemon::unregister_client(std::uint32_t client) {
  auto it = clients_.find(client);
  if (it == clients_.end()) return;
  // Graceful departure: leave every group first so no ghost members linger.
  auto groups = it->second.groups;
  for (const auto& group : groups) client_leave(client, group);
  clients_.erase(client);
}

void Daemon::client_join(std::uint32_t client, const std::string& group) {
  auto it = clients_.find(client);
  if (it == clients_.end()) return;
  DataMessage d;
  d.sender = member_id(client);
  d.kind = DataKind::kJoin;
  d.group = group;
  submit(std::move(d));
}

void Daemon::client_leave(std::uint32_t client, const std::string& group) {
  auto it = clients_.find(client);
  if (it == clients_.end()) return;
  DataMessage d;
  d.sender = member_id(client);
  d.kind = DataKind::kLeave;
  d.group = group;
  submit(std::move(d));
}

void Daemon::client_multicast(std::uint32_t client, const std::string& group,
                              util::Bytes payload, ServiceType service) {
  auto it = clients_.find(client);
  if (it == clients_.end()) return;
  DataMessage d;
  d.sender = member_id(client);
  d.service = service;
  d.kind = DataKind::kClientPayload;
  d.group = group;
  d.payload = std::move(payload);
  submit(std::move(d));
}

MemberId Daemon::member_id(std::uint32_t client) const {
  auto it = clients_.find(client);
  std::string name = it == clients_.end() ? "?" : it->second.name;
  return MemberId{id_, client, std::move(name)};
}

// --------------------------------- self-stabilization: view audit / heal ----

void Daemon::arm_audit_timer() {
  if (config_.audit_interval == sim::kZero) return;
  audit_timer_.cancel();
  audit_timer_ = host_.scheduler().schedule(config_.audit_interval,
                                            [this] { audit_tick(); });
}

bool Daemon::audit_and_heal() {
  // Only the operational state carries an installed view worth checking;
  // mid-discovery the view is about to be replaced anyway.
  if (!running_ || state_ != State::kOp) return false;
  auto f = auditor_.audit(view_, id_);
  if (!f) return false;
  ++counters_.corruptions_detected;
  log_.warn("view audit: %s (%s) — restoring shadow and rediscovering",
            view_check_name(f->check), f->detail.c_str());
  if (obs_ != nullptr) {
    obs_->emit(host_.scheduler().now(), obs::EventType::kCorruptionDetected,
               obs_scope_,
               {{"checks", view_check_name(f->check)}, {"detail", f->detail}});
  }
  // Heal: the shadow recorded at install is the trusted copy. Restore
  // it, fold the epoch high-water mark into the discovery epoch (the
  // rejoin must be a strictly fresh incarnation even if the corrupt
  // epoch had jumped ahead), and re-run the membership protocol so
  // every derived table is rebuilt by the install exchange.
  view_ = auditor_.shadow();
  discovery_epoch_ = std::max(discovery_epoch_, auditor_.shadow_epoch());
  ++counters_.self_heals;
  if (obs_ != nullptr) {
    obs_->emit(host_.scheduler().now(), obs::EventType::kSelfHeal, obs_scope_,
               {{"action", "rediscovery"}});
  }
  enter_discovery("view audit");
  return true;
}

void Daemon::audit_tick() {
  if (!running_) return;
  audit_and_heal();
  arm_audit_timer();
}

bool Daemon::force_rediscovery(const char* reason) {
  if (!running_ || state_ != State::kOp) return false;
  enter_discovery(reason);
  return true;
}

bool Daemon::chaos_flip_view_epoch() {
  if (!running_ || state_ != State::kOp) return false;
  view_.id.epoch ^= 0x40;  // single bit flip: the classic soft error
  log_.warn("chaos: flipped view epoch to %llu",
            static_cast<unsigned long long>(view_.id.epoch));
  // A flip landing on a still-unhealed earlier flip cancels it: the view
  // matches the shadow again and no audit could ever find anything.
  // Report not-applied so the oracle records no detection obligation.
  if (!auditor_.audit(view_, id_).has_value()) {
    log_.warn("chaos: double flip restored the view id — no corruption");
    return false;
  }
  return true;
}

}  // namespace wam::gcs
