#include "gcs/config.hpp"

#include "util/assert.hpp"

namespace wam::gcs {

Config Config::spread_default() {
  Config c;
  c.fault_detection_timeout = sim::seconds(5.0);
  c.heartbeat_timeout = sim::seconds(2.0);
  c.discovery_timeout = sim::seconds(7.0);
  return c;
}

Config Config::spread_tuned() {
  Config c;
  c.fault_detection_timeout = sim::seconds(1.0);
  c.heartbeat_timeout = sim::seconds(0.4);
  c.discovery_timeout = sim::seconds(1.4);
  return c;
}

void Config::validate() const {
  WAM_EXPECTS(heartbeat_timeout > sim::kZero);
  WAM_EXPECTS(fault_detection_timeout > heartbeat_timeout);
  WAM_EXPECTS(discovery_timeout > sim::kZero);
  WAM_EXPECTS(nack_delay > sim::kZero);
  WAM_EXPECTS(token_hold > sim::kZero);
  WAM_EXPECTS(token_retry > token_hold);
  WAM_EXPECTS(token_window > 0);
  WAM_EXPECTS(multicast_group.is_any() || multicast_group.is_multicast());
}

}  // namespace wam::gcs
