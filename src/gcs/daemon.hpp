// The GCS daemon: partitionable membership, Virtual Synchrony, Agreed
// delivery, and process groups, over the simulated LAN.
//
// Protocol sketch (a compact stand-in for Spread with the same external
// contract, §3.1 of the paper):
//
//   * OPERATIONAL — a coordinator-sequenced total order. Clients hand
//     messages to their daemon; the daemon forwards to the view's
//     sequencer (the lowest DaemonId); the sequencer stamps a per-view
//     sequence number and broadcasts. Receivers deliver contiguously,
//     NACKing gaps. Heartbeats (every heartbeat_timeout) double as the
//     failure detector input and carry delivery watermarks from which the
//     sequencer derives message stability (min delivered across members —
//     everything at or below it may be garbage-collected).
//
//   * FAILURE DETECTION — a per-member deadline of fault_detection_timeout
//     re-armed on every packet from that member. Because heartbeats arrive
//     every heartbeat_timeout, detection lags a crash by
//     [fault_detection - heartbeat, fault_detection], exactly the range
//     discussed with Table 1.
//
//   * MEMBERSHIP CHANGE — on suspicion or on hearing a foreign daemon, a
//     daemon floods DISCOVERY (its id, a proposed epoch, everyone heard so
//     far) and collects for discovery_timeout. The lowest-id participant
//     then PROPOSEs the view; members ACCEPT carrying their unstable
//     messages and group tables; the coordinator broadcasts INSTALL with
//     the per-old-view union of unstable messages (the Virtual-Synchrony
//     exchange: daemons that transition together first deliver identical
//     message sets) and the merged group table. Any disturbance or timeout
//     restarts discovery with a higher epoch (cascading faults).
//
//   * GROUPS — join/leave are totally ordered control messages (lightweight
//     membership: no daemon reconfiguration, the fast path behind the
//     paper's ~10 ms graceful leave). Group views carry the daemon view id
//     and a per-group sequence number, and member lists are uniquely
//     ordered by (rank of hosting daemon in the view, client id).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "gcs/audit.hpp"
#include "gcs/config.hpp"
#include "gcs/groups.hpp"
#include "gcs/message.hpp"
#include "gcs/types.hpp"
#include "net/host.hpp"
#include "obs/observability.hpp"
#include "sim/log.hpp"

namespace wam::gcs {

/// Callbacks a client registers with its local daemon.
struct ClientCallbacks {
  std::function<void(const GroupView&)> on_membership;
  std::function<void(const GroupMessage&)> on_message;
  std::function<void()> on_disconnect;
};

/// Per-daemon statistics; a thin view over registry cells once the daemon
/// is bound to an obs::Observability (see obs/metrics.hpp).
struct DaemonCounters {
  obs::Counter views_installed;
  obs::Counter discoveries_started;
  obs::Counter data_sequenced;
  obs::Counter data_delivered;
  obs::Counter fifo_sent;
  obs::Counter fifo_delivered;
  obs::Counter fifo_dropped_reconfig;
  obs::Counter token_rotations;
  obs::Counter token_retries;
  obs::Counter nacks_sent;
  obs::Counter retransmissions;
  obs::Counter sync_messages_delivered;
  obs::Counter decode_errors;
  obs::Counter corruptions_detected;
  obs::Counter self_heals;

  void bind(obs::MetricRegistry& registry, const std::string& scope);
  void export_into(obs::MetricRegistry& registry,
                   const std::string& scope) const;
};

class Daemon {
 public:
  /// The daemon binds UDP `config.port` on `host` interface `ifindex` and
  /// identifies itself by that interface's stationary primary IP.
  Daemon(net::Host& host, Config config, sim::Log* log = nullptr,
         int ifindex = 0);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Route metrics and structured events (ViewInstalled) through a shared
  /// observability context; convention for `scope`: "gcs/s<N>".
  void bind_observability(obs::Observability& obs, std::string scope);
  [[nodiscard]] obs::Observability* observability() const { return obs_; }

  /// Open the socket and begin: a fresh daemon floods discovery to find
  /// peers (or installs a singleton view if alone).
  void start();
  /// Abrupt shutdown: close the socket, kill timers, disconnect clients.
  void stop();
  [[nodiscard]] bool running() const { return running_; }

  [[nodiscard]] DaemonId id() const { return id_; }
  [[nodiscard]] const View& view() const { return view_; }
  [[nodiscard]] bool in_op() const { return state_ == State::kOp; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] const DaemonCounters& counters() const { return counters_; }
  [[nodiscard]] const GroupTable& groups() const { return group_table_; }

  // ---- Client session interface (used by gcs::Client) ----
  std::uint32_t register_client(std::string name, ClientCallbacks callbacks);
  void unregister_client(std::uint32_t client);
  void client_join(std::uint32_t client, const std::string& group);
  void client_leave(std::uint32_t client, const std::string& group);
  void client_multicast(std::uint32_t client, const std::string& group,
                        util::Bytes payload,
                        ServiceType service = ServiceType::kAgreed);
  [[nodiscard]] MemberId member_id(std::uint32_t client) const;

  // ---- Self-stabilization (view audit / recovery) ----
  /// True when the live view matches the shadow recorded at install.
  [[nodiscard]] bool view_audit_clean() const {
    return !auditor_.audit(view_, id_).has_value();
  }
  /// Rejoin the membership protocol with a fresh incarnation (used by the
  /// reconfig-storm chaos verb and by the heal path). No-op unless
  /// running and operational; returns whether it fired.
  bool force_rediscovery(const char* reason);
  /// Chaos backdoor: flip one bit of the installed view's epoch — the
  /// transient fault the ViewAuditor exists to catch. No-op unless
  /// running and operational; returns whether it fired.
  bool chaos_flip_view_epoch();

 private:
  enum class State { kOp, kDiscovery, kAwaitInstall };

  struct LocalClient {
    std::string name;
    ClientCallbacks callbacks;
    std::set<std::string> groups;
  };

  // ---- I/O ----
  void on_udp(const net::Host::UdpContext& ctx, const util::SharedBytes& payload);
  void broadcast(const Message& msg);
  void unicast(DaemonId to, const Message& msg);

  // ---- Operational state ----
  void on_heartbeat(const Heartbeat& hb);
  void heartbeat_tick();
  void arm_fault_timer(DaemonId member);
  void note_alive(DaemonId member);
  void on_forward(DataMessage data);
  void sequence_and_broadcast(DataMessage data);
  void on_data(const DataMessage& data);
  void try_deliver_buffered();
  void deliver(const DataMessage& data);
  void schedule_nack();
  void nack_tick();
  void on_nack(const Nack& nack);
  void on_fifo_data(const DataMessage& data);
  void deliver_fifo(const DataMessage& data);
  void drain_origin_streams();
  [[nodiscard]] bool causally_ready(const DataMessage& data) const;
  void schedule_fifo_nack();
  void fifo_nack_tick();
  void dispatch_to_clients(const DataMessage& data);
  void dispatch(const DataMessage& data);
  void drain_dispatch(bool force = false);
  void prune_stable(std::uint64_t stable);
  [[nodiscard]] DaemonId sequencer() const;
  [[nodiscard]] bool is_sequencer() const { return sequencer() == id_; }
  void submit(DataMessage data);
  void reforward_pending();

  // ---- Token-ring ordering (OrderingEngine::kTokenRing) ----
  [[nodiscard]] bool token_mode() const {
    return config_.ordering == OrderingEngine::kTokenRing;
  }
  [[nodiscard]] DaemonId ring_successor() const;
  void on_token(Token token);
  void pass_token(Token token);
  void token_retry_tick();

  // ---- Membership protocol ----
  void enter_discovery(const char* reason);
  void discovery_broadcast();
  void on_discovery(const Discovery& d);
  void discovery_deadline();
  void on_propose(const Propose& p);
  void send_accept(const ViewId& proposal, DaemonId coordinator);
  void on_accept(const Accept& a);
  void maybe_finish_collect();
  void on_install(const Install& inst);
  void install_view(const Install& inst);
  void install_deadline();
  [[nodiscard]] Accept make_own_accept(const ViewId& proposal) const;

  // ---- Group bookkeeping ----
  void apply_group_control(const DataMessage& data);
  void notify_group(const std::string& group, GroupChangeReason reason);
  void refresh_groups_after_install();
  [[nodiscard]] std::vector<std::uint32_t> local_members_of(
      const std::string& group) const;

  // ---- Self-stabilization ----
  void arm_audit_timer();
  void audit_tick();
  /// Audit the live view against the shadow; on divergence restore the
  /// shadow and re-enter discovery. Returns whether a heal fired.
  bool audit_and_heal();

  net::Host& host_;
  Config config_;
  int ifindex_;
  DaemonId id_;
  sim::Logger log_;
  bool running_ = false;

  State state_ = State::kOp;
  View view_;

  // Total order state (per installed view).
  std::uint64_t next_seq_ = 1;          // sequencer: next seq to assign
  std::uint64_t delivered_seq_ = 0;     // highest contiguously delivered
  std::uint64_t stable_seq_ = 0;        // GC watermark
  std::uint64_t advertised_seq_ = 0;    // heard delivered head (heartbeats)
  std::map<std::uint64_t, DataMessage> store_;   // delivered, > stable
  std::map<std::uint64_t, DataMessage> buffer_;  // received out of order
  std::deque<DataMessage> dispatch_queue_;       // delivered, not dispatched
                                                 // (SAFE holds the line)
  std::set<std::pair<std::uint32_t, std::uint64_t>> sequenced_;  // dedup
  std::map<DaemonId, std::uint64_t> member_delivered_;
  std::map<ViewId, std::vector<DataMessage>> preinstall_;  // future-view data

  // FIFO/causal service state (per installed view). Both services share
  // the per-origin streams; causal messages additionally hold their
  // origin's dispatch queue until their vector-clock dependencies on other
  // origins' streams are satisfied.
  std::uint64_t fifo_out_seq_ = 0;                       // our stream
  std::map<std::uint64_t, DataMessage> fifo_store_;      // sent, for rexmit
  std::map<DaemonId, std::uint64_t> fifo_delivered_;     // reception (contig)
  std::map<DaemonId, std::uint64_t> fifo_dispatched_;    // handed to clients
  std::map<DaemonId, std::uint64_t> fifo_advertised_;    // heard stream heads
  std::map<DaemonId, std::map<std::uint64_t, DataMessage>> fifo_buffer_;
  std::map<DaemonId, std::deque<DataMessage>> fifo_dispatch_;  // held streams
  sim::TimerHandle fifo_nack_timer_;

  // Token-ring state (per installed view).
  std::uint64_t last_rotation_seen_ = 0;
  std::uint64_t prev_token_aru_ = 0;
  std::optional<Token> last_sent_token_;
  sim::TimerHandle token_pass_timer_;
  sim::TimerHandle token_retry_timer_;

  // Outgoing messages not yet seen back in the total order.
  std::deque<DataMessage> pending_out_;
  std::uint64_t next_out_id_ = 1;

  // Failure detection.
  std::map<DaemonId, sim::TimerHandle> fault_timers_;
  sim::TimerHandle heartbeat_timer_;
  sim::TimerHandle nack_timer_;

  // Discovery / install state.
  std::uint64_t discovery_epoch_ = 0;
  std::set<DaemonId> known_;
  sim::TimerHandle discovery_rebroadcast_timer_;
  sim::TimerHandle discovery_deadline_timer_;
  sim::TimerHandle install_deadline_timer_;
  std::optional<ViewId> accepted_proposal_;
  bool coordinator_ = false;
  std::vector<DaemonId> proposed_members_;
  std::map<DaemonId, Accept> accepts_;

  // Groups and clients.
  GroupTable group_table_;
  std::map<std::uint32_t, LocalClient> clients_;
  std::uint32_t next_client_id_ = 1;

  // Self-stabilization.
  ViewAuditor auditor_;
  sim::TimerHandle audit_timer_;

  DaemonCounters counters_;
  obs::Observability* obs_ = nullptr;
  std::string obs_scope_;
};

}  // namespace wam::gcs
