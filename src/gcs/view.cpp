#include <algorithm>

#include "gcs/types.hpp"

namespace wam::gcs {

bool View::contains(DaemonId d) const {
  return std::binary_search(members.begin(), members.end(), d);
}

int View::rank_of(DaemonId d) const {
  auto it = std::lower_bound(members.begin(), members.end(), d);
  if (it == members.end() || *it != d) return -1;
  return static_cast<int>(it - members.begin());
}

std::string View::to_string() const {
  std::string out = "view " + id.to_string() + " {";
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (i != 0) out += ", ";
    out += members[i].to_string();
  }
  return out + "}";
}

bool GroupView::contains(const MemberId& m) const {
  return rank_of(m) >= 0;
}

int GroupView::rank_of(const MemberId& m) const {
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i] == m) return static_cast<int>(i);
  }
  return -1;
}

std::string GroupView::to_string() const {
  std::string out = group + " v" + std::to_string(group_seq) + "/" +
                    daemon_view.to_string() + " {";
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (i != 0) out += ", ";
    out += members[i].to_string();
  }
  return out + "}";
}

}  // namespace wam::gcs
