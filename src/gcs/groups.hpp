// Process-group membership table.
//
// Each daemon maintains the same table, updated deterministically from the
// totally ordered join/leave control messages (lightweight membership: no
// daemon reconfiguration — the fast path behind the paper's ~10 ms graceful
// leave) and rebuilt from the coordinator's merged snapshot on daemon view
// installation.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "gcs/message.hpp"
#include "gcs/types.hpp"

namespace wam::gcs {

class GroupTable {
 public:
  /// Returns false when the member is already present (duplicate join).
  bool join(const std::string& group, const MemberId& m);
  /// Returns false when the member is absent (stale leave).
  bool leave(const std::string& group, const MemberId& m);
  [[nodiscard]] bool has_member(const std::string& group,
                                const MemberId& m) const;

  /// Remove members hosted on daemons outside `v`; returns the names of
  /// groups whose membership changed.
  std::vector<std::string> drop_daemons_not_in(const View& v);

  /// Uniquely ordered member list: (rank of hosting daemon in `v`, client id).
  [[nodiscard]] std::vector<MemberId> members_of(const std::string& group,
                                                 const View& v) const;
  [[nodiscard]] std::vector<std::string> group_names() const;

  /// Snapshot / restore for the Virtual-Synchrony exchange.
  [[nodiscard]] std::vector<GroupEntry> entries() const;
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> seqs() const;
  void replace(const std::vector<GroupEntry>& entries,
               const std::vector<std::pair<std::string, std::uint64_t>>& seqs);

  /// Per-group monotone view counter.
  std::uint64_t bump_seq(const std::string& group);
  [[nodiscard]] std::uint64_t seq(const std::string& group) const;

 private:
  std::map<std::string, std::vector<MemberId>> groups_;
  std::map<std::string, std::uint64_t> seqs_;
};

}  // namespace wam::gcs
