// Core identifier types for the group communication system (GCS).
//
// The GCS plays the role Spread plays in the paper: partitionable
// membership with Virtual Synchrony and Agreed (totally ordered) delivery,
// consumed by Wackamole through a client-daemon architecture. Daemons are
// identified by their stationary IP address, which also provides the
// "uniquely ordered list of the currently connected participants" the
// Wackamole algorithm requires (Section 3.1).
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "net/address.hpp"
#include "util/bytes.hpp"
#include "util/shared_bytes.hpp"

namespace wam::gcs {

/// A daemon is identified by its stationary IP; the total order on
/// DaemonIds is the membership-list order Reallocate_IPs() relies on.
using DaemonId = net::Ipv4Address;

/// View identifier: lexicographically ordered (epoch, coordinator).
struct ViewId {
  std::uint64_t epoch = 0;
  DaemonId coordinator;

  friend auto operator<=>(const ViewId&, const ViewId&) = default;
  [[nodiscard]] std::string to_string() const {
    return std::to_string(epoch) + "@" + coordinator.to_string();
  }
};

/// Installed daemon membership: id plus the uniquely ordered member list.
struct View {
  ViewId id;
  std::vector<DaemonId> members;  // sorted ascending

  [[nodiscard]] bool contains(DaemonId d) const;
  /// Index of d in the ordered list, or -1.
  [[nodiscard]] int rank_of(DaemonId d) const;
  [[nodiscard]] std::string to_string() const;
};

/// A group participant: a client process attached to a daemon.
struct MemberId {
  DaemonId daemon;
  std::uint32_t client = 0;
  std::string name;  // informational ("wackamole" etc.), not part of identity

  friend bool operator==(const MemberId& a, const MemberId& b) {
    return a.daemon == b.daemon && a.client == b.client;
  }
  friend auto operator<=>(const MemberId& a, const MemberId& b) {
    if (auto c = a.daemon <=> b.daemon; c != 0) return c;
    return a.client <=> b.client;
  }
  [[nodiscard]] std::string to_string() const {
    return name + "#" + std::to_string(client) + "@" + daemon.to_string();
  }
};

/// Message ordering service levels (a subset of Spread's FIFO / causal /
/// agreed / safe).
enum class ServiceType : std::uint8_t {
  /// Total order across all senders, Virtual-Synchrony guarantees across
  /// view changes. What the Wackamole algorithm requires.
  kAgreed = 0,
  /// Per-sender order only, reliable within a view (NACK-based recovery),
  /// no cross-view synchronization. Cheaper: one broadcast, no sequencer
  /// hop.
  kFifo = 1,
  /// Per-sender order plus happened-before across senders (vector-clock
  /// holdback on the per-origin streams): if the sender had seen message X
  /// when it sent Y, every receiver dispatches X before Y. Reliable within
  /// a view, like kFifo.
  kCausal = 3,
  /// Total order AND delivery withheld until the message is known to have
  /// been received by every member of the view (the stability watermark
  /// passes it). Costs up to ~2 heartbeat periods of extra latency. On a
  /// view change, withheld messages are released through the
  /// Virtual-Synchrony exchange (all co-moving members release the same
  /// set).
  kSafe = 2,
};

enum class GroupChangeReason : std::uint8_t {
  kJoin = 0,     // a member joined gracefully
  kLeave = 1,    // a member left gracefully
  kNetwork = 2,  // daemon membership changed (fault, partition, merge)
};

/// Group membership notification delivered to clients, in total order with
/// respect to the group's message stream.
struct GroupView {
  std::string group;
  ViewId daemon_view;           // the daemon view this group view exists in
  std::uint64_t group_seq = 0;  // monotonically increasing per group
  GroupChangeReason reason = GroupChangeReason::kNetwork;
  /// Extended-Virtual-Synchrony transitional signal: delivered right
  /// before the remaining old-view messages during a membership change,
  /// listing only the members continuing together into the next view.
  /// Carries the OLD daemon view id and does not advance group_seq.
  bool transitional = false;
  std::vector<MemberId> members;  // ordered: (rank of daemon in view, client)

  [[nodiscard]] bool contains(const MemberId& m) const;
  [[nodiscard]] int rank_of(const MemberId& m) const;
  [[nodiscard]] std::string to_string() const;
};

/// Message delivered to a client. The payload shares the originating wire
/// buffer (copy-on-write); consumers that need a private mutable copy call
/// payload.to_bytes().
struct GroupMessage {
  std::string group;
  MemberId sender;
  util::SharedBytes payload;
};

}  // namespace wam::gcs
