#include "gcs/conf_parser.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "util/assert.hpp"

namespace wam::gcs {

namespace {

[[noreturn]] void fail(int line_no, const std::string& line,
                       const std::string& why) {
  throw ConfigError("spread.conf line " + std::to_string(line_no) + " ('" +
                    line + "'): " + why);
}

std::string trim(const std::string& s) {
  auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

sim::Duration parse_duration(const std::string& token, int line_no,
                             const std::string& line) {
  std::size_t pos = 0;
  double value = 0;
  try {
    value = std::stod(token, &pos);
  } catch (const std::exception&) {
    fail(line_no, line, "bad duration '" + token + "'");
  }
  auto unit = token.substr(pos);
  if (unit == "s") return sim::seconds(value);
  if (unit == "ms") {
    return sim::Duration(static_cast<std::int64_t>(value * 1e6));
  }
  fail(line_no, line, "duration needs an 's' or 'ms' suffix: '" + token + "'");
}

int parse_int(const std::string& token, int line_no, const std::string& line) {
  try {
    return std::stoi(token);
  } catch (const std::exception&) {
    fail(line_no, line, "expected an integer, got '" + token + "'");
  }
}

}  // namespace

Config parse_config(const std::string& text) {
  Config config;  // starts as Spread-default timeouts
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    auto stripped = trim(line);
    if (stripped.empty()) continue;
    auto eq = stripped.find('=');
    if (eq == std::string::npos) fail(line_no, line, "expected 'Key = value'");
    auto key = lower(trim(stripped.substr(0, eq)));
    auto value = trim(stripped.substr(eq + 1));
    if (value.empty()) fail(line_no, line, "missing value");

    if (key == "port") {
      int port = parse_int(value, line_no, line);
      if (port < 1 || port > 65535) fail(line_no, line, "port out of range");
      config.port = static_cast<std::uint16_t>(port);
    } else if (key == "multicast") {
      auto ip = net::Ipv4Address::parse(value);
      if (!ip || !ip->is_multicast()) {
        fail(line_no, line, "Multicast needs a 224.0.0.0/4 address");
      }
      config.multicast_group = *ip;
    } else if (key == "ordering") {
      auto v = lower(value);
      if (v == "sequencer") {
        config.ordering = OrderingEngine::kSequencer;
      } else if (v == "ring" || v == "token" || v == "token-ring") {
        config.ordering = OrderingEngine::kTokenRing;
      } else {
        fail(line_no, line, "Ordering must be 'sequencer' or 'ring'");
      }
    } else if (key == "faultdetection") {
      config.fault_detection_timeout = parse_duration(value, line_no, line);
    } else if (key == "heartbeat") {
      config.heartbeat_timeout = parse_duration(value, line_no, line);
    } else if (key == "discovery") {
      config.discovery_timeout = parse_duration(value, line_no, line);
    } else if (key == "tokenhold") {
      config.token_hold = parse_duration(value, line_no, line);
    } else if (key == "tokenretry") {
      config.token_retry = parse_duration(value, line_no, line);
    } else if (key == "tokenwindow") {
      config.token_window = parse_int(value, line_no, line);
    } else {
      fail(line_no, line, "unknown key '" + key + "'");
    }
  }
  try {
    config.validate();
  } catch (const util::ContractViolation& e) {
    throw ConfigError(std::string("spread.conf: invalid configuration: ") +
                      e.what());
  }
  return config;
}

std::string render_config(const Config& config) {
  std::ostringstream out;
  out << "Port = " << config.port << "\n";
  if (!config.multicast_group.is_any()) {
    out << "Multicast = " << config.multicast_group.to_string() << "\n";
  }
  out << "Ordering = "
      << (config.ordering == OrderingEngine::kTokenRing ? "ring"
                                                        : "sequencer")
      << "\n";
  out << "FaultDetection = " << sim::to_seconds(config.fault_detection_timeout)
      << "s\n";
  out << "Heartbeat = " << sim::to_seconds(config.heartbeat_timeout) << "s\n";
  out << "Discovery = " << sim::to_seconds(config.discovery_timeout) << "s\n";
  out << "TokenHold = " << sim::to_millis(config.token_hold) << "ms\n";
  out << "TokenRetry = " << sim::to_millis(config.token_retry) << "ms\n";
  out << "TokenWindow = " << config.token_window << "\n";
  return out.str();
}

}  // namespace wam::gcs
