#include "gcs/conf_parser.hpp"

#include <sstream>

#include "util/assert.hpp"
#include "util/conf.hpp"

namespace wam::gcs {

namespace {

namespace conf = util::conf;

[[noreturn]] void fail(int line_no, const std::string& line,
                       const std::string& why) {
  throw ConfigError("spread.conf line " + std::to_string(line_no) + " ('" +
                    line + "'): " + why);
}

}  // namespace

Config parse_config(const std::string& text) {
  Config config;  // starts as Spread-default timeouts
  conf::for_each_line(text, [&](int line_no, const std::string& stripped,
                                const std::string& line) {
    auto [key, value] = conf::split_key_value(stripped, line_no, line, fail);

    if (key == "port") {
      int port = conf::parse_int(value, line_no, line, fail);
      if (port < 1 || port > 65535) fail(line_no, line, "port out of range");
      config.port = static_cast<std::uint16_t>(port);
    } else if (key == "multicast") {
      auto ip = net::Ipv4Address::parse(value);
      if (!ip || !ip->is_multicast()) {
        fail(line_no, line, "Multicast needs a 224.0.0.0/4 address");
      }
      config.multicast_group = *ip;
    } else if (key == "ordering") {
      auto v = conf::lower(value);
      if (v == "sequencer") {
        config.ordering = OrderingEngine::kSequencer;
      } else if (v == "ring" || v == "token" || v == "token-ring") {
        config.ordering = OrderingEngine::kTokenRing;
      } else {
        fail(line_no, line, "Ordering must be 'sequencer' or 'ring'");
      }
    } else if (key == "faultdetection") {
      config.fault_detection_timeout =
          conf::parse_duration(value, line_no, line, fail);
    } else if (key == "heartbeat") {
      config.heartbeat_timeout =
          conf::parse_duration(value, line_no, line, fail);
    } else if (key == "discovery") {
      config.discovery_timeout =
          conf::parse_duration(value, line_no, line, fail);
    } else if (key == "tokenhold") {
      config.token_hold = conf::parse_duration(value, line_no, line, fail);
    } else if (key == "tokenretry") {
      config.token_retry = conf::parse_duration(value, line_no, line, fail);
    } else if (key == "tokenwindow") {
      config.token_window = conf::parse_int(value, line_no, line, fail);
    } else {
      fail(line_no, line, "unknown key '" + key + "'");
    }
  });
  try {
    config.validate();
  } catch (const util::ContractViolation& e) {
    throw ConfigError(std::string("spread.conf: invalid configuration: ") +
                      e.what());
  }
  return config;
}

std::string render_config(const Config& config) {
  std::ostringstream out;
  out << "Port = " << config.port << "\n";
  if (!config.multicast_group.is_any()) {
    out << "Multicast = " << config.multicast_group.to_string() << "\n";
  }
  out << "Ordering = "
      << (config.ordering == OrderingEngine::kTokenRing ? "ring"
                                                        : "sequencer")
      << "\n";
  out << "FaultDetection = " << sim::to_seconds(config.fault_detection_timeout)
      << "s\n";
  out << "Heartbeat = " << sim::to_seconds(config.heartbeat_timeout) << "s\n";
  out << "Discovery = " << sim::to_seconds(config.discovery_timeout) << "s\n";
  out << "TokenHold = " << sim::to_millis(config.token_hold) << "ms\n";
  out << "TokenRetry = " << sim::to_millis(config.token_retry) << "ms\n";
  out << "TokenWindow = " << config.token_window << "\n";
  return out.str();
}

}  // namespace wam::gcs
