#include "gcs/groups.hpp"

#include <algorithm>

namespace wam::gcs {

bool GroupTable::join(const std::string& group, const MemberId& m) {
  auto& members = groups_[group];
  if (std::find(members.begin(), members.end(), m) != members.end()) {
    return false;
  }
  members.push_back(m);
  return true;
}

bool GroupTable::leave(const std::string& group, const MemberId& m) {
  auto it = groups_.find(group);
  if (it == groups_.end()) return false;
  auto& members = it->second;
  auto pos = std::find(members.begin(), members.end(), m);
  if (pos == members.end()) return false;
  members.erase(pos);
  if (members.empty()) groups_.erase(it);
  return true;
}

bool GroupTable::has_member(const std::string& group, const MemberId& m) const {
  auto it = groups_.find(group);
  if (it == groups_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), m) != it->second.end();
}

std::vector<std::string> GroupTable::drop_daemons_not_in(const View& v) {
  std::vector<std::string> changed;
  for (auto it = groups_.begin(); it != groups_.end();) {
    auto& members = it->second;
    auto before = members.size();
    members.erase(std::remove_if(members.begin(), members.end(),
                                 [&v](const MemberId& m) {
                                   return !v.contains(m.daemon);
                                 }),
                  members.end());
    if (members.size() != before) changed.push_back(it->first);
    if (members.empty()) {
      it = groups_.erase(it);
    } else {
      ++it;
    }
  }
  return changed;
}

std::vector<MemberId> GroupTable::members_of(const std::string& group,
                                             const View& v) const {
  auto it = groups_.find(group);
  if (it == groups_.end()) return {};
  std::vector<MemberId> out = it->second;
  std::sort(out.begin(), out.end(), [&v](const MemberId& a, const MemberId& b) {
    int ra = v.rank_of(a.daemon);
    int rb = v.rank_of(b.daemon);
    if (ra != rb) return ra < rb;
    return a.client < b.client;
  });
  return out;
}

std::vector<std::string> GroupTable::group_names() const {
  std::vector<std::string> out;
  out.reserve(groups_.size());
  for (const auto& [name, members] : groups_) out.push_back(name);
  return out;
}

std::vector<GroupEntry> GroupTable::entries() const {
  std::vector<GroupEntry> out;
  for (const auto& [name, members] : groups_) {
    for (const auto& m : members) out.push_back(GroupEntry{name, m});
  }
  return out;
}

std::vector<std::pair<std::string, std::uint64_t>> GroupTable::seqs() const {
  return {seqs_.begin(), seqs_.end()};
}

void GroupTable::replace(
    const std::vector<GroupEntry>& entries,
    const std::vector<std::pair<std::string, std::uint64_t>>& seqs) {
  groups_.clear();
  seqs_.clear();
  for (const auto& e : entries) join(e.group, e.member);
  for (const auto& [name, seq] : seqs) seqs_[name] = seq;
}

std::uint64_t GroupTable::bump_seq(const std::string& group) {
  return ++seqs_[group];
}

std::uint64_t GroupTable::seq(const std::string& group) const {
  auto it = seqs_.find(group);
  return it == seqs_.end() ? 0 : it->second;
}

}  // namespace wam::gcs
