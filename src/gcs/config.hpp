// GCS timeout configuration — the knobs of Table 1.
//
// The paper tunes three Spread timeouts (seconds):
//                         Default   Tuned
//   Fault-detection            5       1
//   Distributed heartbeat      2       0.4
//   Discovery                  7       1.4
//
// Failure-detection latency is [fault_detection - heartbeat,
// fault_detection] after the fault (the detector arms from the last
// heartbeat received), and a reconfiguration then costs one discovery
// timeout plus the membership-install exchange; hence the paper's 10-12 s
// (default) vs 2-2.4 s (tuned) notification latency.
#pragma once

#include <cstdint>

#include "net/address.hpp"
#include "sim/time.hpp"

namespace wam::gcs {

/// How Agreed (total-order) delivery is implemented.
enum class OrderingEngine : std::uint8_t {
  /// Coordinator-sequenced: members forward to the lowest-id daemon, which
  /// stamps sequence numbers and broadcasts. Lowest latency; the default.
  kSequencer = 0,
  /// Totem-style rotating token (what the real Spread uses): the token
  /// carries the next sequence number, an all-received-up-to watermark and
  /// a retransmission-request list; the holder broadcasts its pending
  /// messages and passes the token on. Latency ~ half a rotation; built-in
  /// flow control via the per-hold window.
  kTokenRing = 1,
};

struct Config {
  sim::Duration fault_detection_timeout = sim::seconds(5.0);
  sim::Duration heartbeat_timeout = sim::seconds(2.0);  // "distributed heartbeat"
  sim::Duration discovery_timeout = sim::seconds(7.0);
  /// How long the coordinator waits for ACCEPTs / members wait for the
  /// INSTALL before restarting discovery. Zero = use discovery_timeout.
  sim::Duration install_timeout = sim::kZero;
  /// Delay before NACKing a sequence gap (lets reordered frames land).
  sim::Duration nack_delay = sim::milliseconds(5);
  std::uint16_t port = 4803;
  /// When set to a 224.0.0.0/4 address, all daemon one-to-many traffic
  /// uses IP multicast on this group instead of limited broadcast (the
  /// real Spread's default mode) — non-member hosts never see daemon
  /// frames. Zero (default) = broadcast.
  net::Ipv4Address multicast_group;

  /// Period of the ViewAuditor sweep (self-stabilization): the live view
  /// is compared against a shadow copy recorded at install time, and a
  /// divergence heals by restoring the shadow and re-entering discovery
  /// with a fresh incarnation. Zero (default) disables auditing.
  sim::Duration audit_interval = sim::kZero;

  OrderingEngine ordering = OrderingEngine::kSequencer;
  /// Token ring: minimum hold time per hop (paces rotation).
  sim::Duration token_hold = sim::milliseconds(2);
  /// Token ring: retransmit the token if the ring shows no progress.
  sim::Duration token_retry = sim::milliseconds(50);
  /// Token ring: max messages broadcast per token hold (flow control).
  int token_window = 64;

  [[nodiscard]] sim::Duration effective_install_timeout() const {
    return install_timeout == sim::kZero ? discovery_timeout : install_timeout;
  }

  /// Table 1, "Default Spread" column: 5 / 2 / 7 seconds.
  static Config spread_default();
  /// Table 1, "Tuned Spread" column: 1 / 0.4 / 1.4 seconds.
  static Config spread_tuned();

  void validate() const;  // throws ContractViolation on nonsense

  [[nodiscard]] Config with_token_ring() const {
    Config c = *this;
    c.ordering = OrderingEngine::kTokenRing;
    return c;
  }

  [[nodiscard]] Config with_multicast(
      net::Ipv4Address group = net::Ipv4Address(239, 192, 0, 7)) const {
    Config c = *this;
    c.multicast_group = group;
    return c;
  }
};

}  // namespace wam::gcs
