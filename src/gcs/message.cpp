#include "gcs/message.hpp"

#include "util/assert.hpp"

namespace wam::gcs {

namespace {

void put_view_id(util::ByteWriter& w, const ViewId& v) {
  w.u64(v.epoch);
  w.u32(v.coordinator.value());
}

ViewId get_view_id(util::ByteReader& r) {
  ViewId v;
  v.epoch = r.u64();
  v.coordinator = DaemonId(r.u32());
  return v;
}

void put_member(util::ByteWriter& w, const MemberId& m) {
  w.u32(m.daemon.value());
  w.u32(m.client);
  w.str(m.name);
}

MemberId get_member(util::ByteReader& r) {
  MemberId m;
  m.daemon = DaemonId(r.u32());
  m.client = r.u32();
  m.name = r.str();
  return m;
}

void put_daemons(util::ByteWriter& w, const std::vector<DaemonId>& ds) {
  w.u32(static_cast<std::uint32_t>(ds.size()));
  for (auto d : ds) w.u32(d.value());
}

std::vector<DaemonId> get_daemons(util::ByteReader& r) {
  auto n = r.u32();
  std::vector<DaemonId> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.emplace_back(r.u32());
  return out;
}

void put_data(util::ByteWriter& w, const DataMessage& d) {
  put_view_id(w, d.view);
  w.u64(d.seq);
  put_member(w, d.sender);
  w.u64(d.origin_msg_id);
  w.u8(static_cast<std::uint8_t>(d.service));
  w.u8(static_cast<std::uint8_t>(d.kind));
  w.str(d.group);
  w.bytes(d.payload);
  w.u32(static_cast<std::uint32_t>(d.vclock.size()));
  for (const auto& [daemon, seq] : d.vclock) {
    w.u32(daemon);
    w.u64(seq);
  }
}

DataMessage get_data(util::ByteReader& r) {
  DataMessage d;
  d.view = get_view_id(r);
  d.seq = r.u64();
  d.sender = get_member(r);
  d.origin_msg_id = r.u64();
  auto service = r.u8();
  if (service > 3) throw util::DecodeError("bad ServiceType");
  d.service = static_cast<ServiceType>(service);
  auto kind = r.u8();
  if (kind > 2) throw util::DecodeError("bad DataKind");
  d.kind = static_cast<DataKind>(kind);
  d.group = r.str();
  d.payload = r.shared_bytes();  // zero-copy slice of the wire buffer
  auto nclock = r.u32();
  d.vclock.reserve(nclock);
  for (std::uint32_t i = 0; i < nclock; ++i) {
    auto daemon = r.u32();
    auto seq = r.u64();
    d.vclock.emplace_back(daemon, seq);
  }
  return d;
}

void put_data_vec(util::ByteWriter& w, const std::vector<DataMessage>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const auto& d : v) put_data(w, d);
}

std::vector<DataMessage> get_data_vec(util::ByteReader& r) {
  auto n = r.u32();
  std::vector<DataMessage> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(get_data(r));
  return out;
}

void put_groups(util::ByteWriter& w, const std::vector<GroupEntry>& gs) {
  w.u32(static_cast<std::uint32_t>(gs.size()));
  for (const auto& g : gs) {
    w.str(g.group);
    put_member(w, g.member);
  }
}

std::vector<GroupEntry> get_groups(util::ByteReader& r) {
  auto n = r.u32();
  std::vector<GroupEntry> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    GroupEntry g;
    g.group = r.str();
    g.member = get_member(r);
    out.push_back(std::move(g));
  }
  return out;
}

void put_group_seqs(
    util::ByteWriter& w,
    const std::vector<std::pair<std::string, std::uint64_t>>& gs) {
  w.u32(static_cast<std::uint32_t>(gs.size()));
  for (const auto& [name, seq] : gs) {
    w.str(name);
    w.u64(seq);
  }
}

std::vector<std::pair<std::string, std::uint64_t>> get_group_seqs(
    util::ByteReader& r) {
  auto n = r.u32();
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    auto name = r.str();
    auto seq = r.u64();
    out.emplace_back(std::move(name), seq);
  }
  return out;
}

}  // namespace

util::Bytes encode(const Message& msg) {
  util::ByteWriter w;
  std::visit(
      [&w](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Heartbeat>) {
          w.u8(static_cast<std::uint8_t>(MsgType::kHeartbeat));
          w.u32(m.sender.value());
          put_view_id(w, m.view);
          w.boolean(m.in_op);
          w.u64(m.delivered_seq);
          w.u64(m.stable_seq);
          w.u64(m.fifo_seq);
        } else if constexpr (std::is_same_v<T, Discovery>) {
          w.u8(static_cast<std::uint8_t>(MsgType::kDiscovery));
          w.u32(m.sender.value());
          w.u64(m.epoch);
          put_daemons(w, m.known);
        } else if constexpr (std::is_same_v<T, Propose>) {
          w.u8(static_cast<std::uint8_t>(MsgType::kPropose));
          put_view_id(w, m.view);
          put_daemons(w, m.members);
        } else if constexpr (std::is_same_v<T, Accept>) {
          w.u8(static_cast<std::uint8_t>(MsgType::kAccept));
          put_view_id(w, m.view);
          w.u32(m.sender.value());
          put_view_id(w, m.old_view);
          put_data_vec(w, m.retained);
          put_groups(w, m.groups);
          put_group_seqs(w, m.group_seqs);
        } else if constexpr (std::is_same_v<T, Install>) {
          w.u8(static_cast<std::uint8_t>(MsgType::kInstall));
          put_view_id(w, m.view.id);
          put_daemons(w, m.view.members);
          put_data_vec(w, m.sync);
          put_groups(w, m.groups);
          put_group_seqs(w, m.group_seqs);
        } else if constexpr (std::is_same_v<T, Forward>) {
          w.u8(static_cast<std::uint8_t>(MsgType::kForward));
          put_data(w, m.data);
        } else if constexpr (std::is_same_v<T, DataMessage>) {
          w.u8(static_cast<std::uint8_t>(MsgType::kData));
          put_data(w, m);
        } else if constexpr (std::is_same_v<T, Nack>) {
          w.u8(static_cast<std::uint8_t>(MsgType::kNack));
          put_view_id(w, m.view);
          w.u32(m.sender.value());
          w.u32(m.fifo_origin.value());
          w.u32(static_cast<std::uint32_t>(m.missing.size()));
          for (auto s : m.missing) w.u64(s);
        } else if constexpr (std::is_same_v<T, Token>) {
          w.u8(static_cast<std::uint8_t>(MsgType::kToken));
          put_view_id(w, m.view);
          w.u64(m.rotation);
          w.u64(m.seq);
          w.u64(m.aru);
          w.u32(m.aru_setter.value());
          w.u32(static_cast<std::uint32_t>(m.rtr.size()));
          for (auto s : m.rtr) w.u64(s);
        }
      },
      msg);
  return w.take();
}

Message decode(const util::SharedBytes& buf) {
  util::ByteReader r(buf);
  auto type = r.u8();
  switch (static_cast<MsgType>(type)) {
    case MsgType::kHeartbeat: {
      Heartbeat m;
      m.sender = DaemonId(r.u32());
      m.view = get_view_id(r);
      m.in_op = r.boolean();
      m.delivered_seq = r.u64();
      m.stable_seq = r.u64();
      m.fifo_seq = r.u64();
      r.expect_end();
      return m;
    }
    case MsgType::kDiscovery: {
      Discovery m;
      m.sender = DaemonId(r.u32());
      m.epoch = r.u64();
      m.known = get_daemons(r);
      r.expect_end();
      return m;
    }
    case MsgType::kPropose: {
      Propose m;
      m.view = get_view_id(r);
      m.members = get_daemons(r);
      r.expect_end();
      return m;
    }
    case MsgType::kAccept: {
      Accept m;
      m.view = get_view_id(r);
      m.sender = DaemonId(r.u32());
      m.old_view = get_view_id(r);
      m.retained = get_data_vec(r);
      m.groups = get_groups(r);
      m.group_seqs = get_group_seqs(r);
      r.expect_end();
      return m;
    }
    case MsgType::kInstall: {
      Install m;
      m.view.id = get_view_id(r);
      m.view.members = get_daemons(r);
      m.sync = get_data_vec(r);
      m.groups = get_groups(r);
      m.group_seqs = get_group_seqs(r);
      r.expect_end();
      return m;
    }
    case MsgType::kForward: {
      Forward m;
      m.data = get_data(r);
      r.expect_end();
      return m;
    }
    case MsgType::kData: {
      auto m = get_data(r);
      r.expect_end();
      return m;
    }
    case MsgType::kNack: {
      Nack m;
      m.view = get_view_id(r);
      m.sender = DaemonId(r.u32());
      m.fifo_origin = DaemonId(r.u32());
      auto n = r.u32();
      m.missing.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) m.missing.push_back(r.u64());
      r.expect_end();
      return m;
    }
    case MsgType::kToken: {
      Token m;
      m.view = get_view_id(r);
      m.rotation = r.u64();
      m.seq = r.u64();
      m.aru = r.u64();
      m.aru_setter = DaemonId(r.u32());
      auto n = r.u32();
      m.rtr.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) m.rtr.push_back(r.u64());
      r.expect_end();
      return m;
    }
  }
  throw util::DecodeError("unknown GCS message type " + std::to_string(type));
}

const char* msg_type_name(const Message& msg) {
  return std::visit(
      [](const auto& m) -> const char* {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Heartbeat>) return "HEARTBEAT";
        else if constexpr (std::is_same_v<T, Discovery>) return "DISCOVERY";
        else if constexpr (std::is_same_v<T, Propose>) return "PROPOSE";
        else if constexpr (std::is_same_v<T, Accept>) return "ACCEPT";
        else if constexpr (std::is_same_v<T, Install>) return "INSTALL";
        else if constexpr (std::is_same_v<T, Forward>) return "FORWARD";
        else if constexpr (std::is_same_v<T, DataMessage>) return "DATA";
        else if constexpr (std::is_same_v<T, Nack>) return "NACK";
        else if constexpr (std::is_same_v<T, Token>) return "TOKEN";
      },
      msg);
}

}  // namespace wam::gcs
