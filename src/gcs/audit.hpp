// Self-stabilization, GCS side: a shadow copy of the installed daemon view
// plus an epoch high-water mark, checked against the live view on a timer.
//
// The membership view is the root of everything Wackamole derives (ranks,
// representatives, staleness tags); a transient flip of the view id or the
// member list silently desynchronizes the whole cluster. The auditor keeps
// a duplicated copy recorded at install time — a TMR-lite guard — and the
// daemon heals a divergence by restoring the shadow and re-entering
// discovery with a fresh incarnation (epoch folded over the high-water
// mark, so the healed daemon can never regress below a view it already
// installed).
#pragma once

#include <optional>
#include <string>

#include "gcs/types.hpp"

namespace wam::gcs {

enum class ViewCheck {
  /// Live view id disagrees with the shadow recorded at install.
  kIdMismatch,
  /// Live member list disagrees with the shadow recorded at install.
  kMembersMismatch,
  /// Live epoch regressed below the installed high-water mark.
  kEpochRegressed,
  /// This daemon is missing from its own installed view.
  kSelfMissing,
};

const char* view_check_name(ViewCheck c);

struct ViewFinding {
  ViewCheck check;
  std::string detail;
};

class ViewAuditor {
 public:
  /// Snapshot the freshly installed view (call from install paths only).
  void record(const View& v);
  /// Compare the live view against the shadow; nullopt = clean. Pure read.
  [[nodiscard]] std::optional<ViewFinding> audit(const View& live,
                                                 DaemonId self) const;
  /// The trusted copy to restore from on divergence.
  [[nodiscard]] const View& shadow() const { return shadow_; }
  /// Highest epoch ever installed — fold into the next discovery epoch so
  /// a healed daemon rejoins with a strictly fresh incarnation.
  [[nodiscard]] std::uint64_t shadow_epoch() const { return shadow_epoch_; }

 private:
  View shadow_;
  bool have_ = false;
  std::uint64_t shadow_epoch_ = 0;
};

}  // namespace wam::gcs
