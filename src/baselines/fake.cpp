#include "baselines/fake.hpp"

namespace wam::baselines {

FakeResponder::FakeResponder(net::Host& host, std::uint16_t port)
    : host_(host), port_(port) {}

void FakeResponder::start() {
  if (running_) return;
  running_ = host_.open_udp(
      port_, [this](const net::Host::UdpContext& ctx, const util::SharedBytes& p) {
        host_.send_udp_from(ctx.dst_ip, ctx.src_ip, ctx.src_port,
                            ctx.dst_port, p);
      });
}

void FakeResponder::stop() {
  if (!running_) return;
  host_.close_udp(port_);
  running_ = false;
}

FakeBackup::FakeBackup(net::Host& host, FakeConfig config, sim::Log* log)
    : host_(host),
      config_(std::move(config)),
      log_(log, "fake/" + host.name()) {}

void FakeBackup::start() {
  if (running_) return;
  running_ = true;
  host_.open_udp(config_.port, [this](const net::Host::UdpContext&,
                                      const util::SharedBytes&) {
    reply_seen_ = true;
  });
  probe_tick();
}

void FakeBackup::stop() {
  if (!running_) return;
  running_ = false;
  timer_.cancel();
  host_.close_udp(config_.port);
  if (holding_) hand_back();
}

void FakeBackup::probe_tick() {
  if (!running_) return;
  // Evaluate the previous probe's outcome.
  if (reply_seen_) {
    misses_ = 0;
    if (holding_ && config_.release_on_return) {
      log_.info("main server is back: releasing");
      hand_back();
    }
  } else {
    ++misses_;
    if (!holding_ && misses_ >= config_.miss_threshold) {
      take_over();
    }
  }
  reply_seen_ = false;
  host_.send_udp(config_.main_ip, config_.port, config_.port, {'f', 'k'});
  timer_ = host_.scheduler().schedule(config_.probe_interval,
                                      [this] { probe_tick(); });
}

void FakeBackup::take_over() {
  holding_ = true;
  log_.info("main server unresponsive (%d misses): taking over", misses_);
  for (const auto& vip : config_.vips) {
    host_.add_alias(config_.ifindex, vip);
    host_.send_gratuitous_arp(config_.ifindex, vip);
  }
}

void FakeBackup::hand_back() {
  holding_ = false;
  for (const auto& vip : config_.vips) {
    host_.remove_alias(config_.ifindex, vip);
  }
}

}  // namespace wam::baselines
