// Cisco's Hot Standby Router Protocol, as characterized in the paper's
// related work: one Active router and one Standby; both send hello messages
// (default every 3 s); the Standby takes over when the Active timeout
// (default 10 s) elapses without hellos from the Active, and a monitoring
// router with the next-best (priority, IP) promotes to Standby when the
// Standby timeout elapses.
#pragma once

#include <cstdint>
#include <vector>

#include "net/host.hpp"
#include "sim/log.hpp"

namespace wam::baselines {

struct HsrpConfig {
  std::uint8_t group = 1;
  std::vector<net::Ipv4Address> vips;
  int ifindex = 0;
  std::uint8_t priority = 100;
  sim::Duration hello_interval = sim::seconds(3.0);
  sim::Duration hold_time = sim::seconds(10.0);
  std::uint16_t port = 1985;  // HSRP's real UDP port
};

enum class HsrpState : std::uint8_t { kInit, kListen, kStandby, kActive };

const char* hsrp_state_name(HsrpState s);

class HsrpRouter {
 public:
  HsrpRouter(net::Host& host, HsrpConfig config, sim::Log* log = nullptr);
  ~HsrpRouter() { stop(); }
  HsrpRouter(const HsrpRouter&) = delete;
  HsrpRouter& operator=(const HsrpRouter&) = delete;

  void start();
  void stop();

  [[nodiscard]] HsrpState state() const { return state_; }
  [[nodiscard]] bool is_active() const { return state_ == HsrpState::kActive; }

 private:
  struct Hello {
    std::uint8_t group;
    std::uint8_t state;  // HsrpState of the sender
    std::uint8_t priority;
    std::uint32_t ip;
  };

  void hello_tick();
  void on_packet(const net::Host::UdpContext& ctx, const util::SharedBytes& payload);
  void arm_active_timer();
  void arm_standby_timer();
  void active_timeout();
  void standby_timeout();
  void become_active();
  void become_standby();
  void resign_active();
  /// True when (priority, ip) beats the peer's.
  [[nodiscard]] bool beats(std::uint8_t peer_priority,
                           std::uint32_t peer_ip) const;

  net::Host& host_;
  HsrpConfig config_;
  sim::Logger log_;
  bool running_ = false;
  HsrpState state_ = HsrpState::kInit;
  sim::TimerHandle hello_timer_;
  sim::TimerHandle active_timer_;
  sim::TimerHandle standby_timer_;
};

}  // namespace wam::baselines
