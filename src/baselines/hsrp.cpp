#include "baselines/hsrp.hpp"

#include "util/bytes.hpp"

namespace wam::baselines {

const char* hsrp_state_name(HsrpState s) {
  switch (s) {
    case HsrpState::kInit: return "INIT";
    case HsrpState::kListen: return "LISTEN";
    case HsrpState::kStandby: return "STANDBY";
    case HsrpState::kActive: return "ACTIVE";
  }
  return "?";
}

HsrpRouter::HsrpRouter(net::Host& host, HsrpConfig config, sim::Log* log)
    : host_(host),
      config_(std::move(config)),
      log_(log, "hsrp/" + host.name()) {}

void HsrpRouter::start() {
  if (running_) return;
  running_ = true;
  host_.open_udp(config_.port,
                 [this](const net::Host::UdpContext& ctx,
                        const util::SharedBytes& payload) { on_packet(ctx, payload); });
  state_ = HsrpState::kListen;
  arm_active_timer();
  arm_standby_timer();
  hello_tick();
}

void HsrpRouter::stop() {
  if (!running_) return;
  running_ = false;
  hello_timer_.cancel();
  active_timer_.cancel();
  standby_timer_.cancel();
  host_.close_udp(config_.port);
  if (state_ == HsrpState::kActive) {
    for (const auto& vip : config_.vips) {
      host_.remove_alias(config_.ifindex, vip);
    }
  }
  state_ = HsrpState::kInit;
}

bool HsrpRouter::beats(std::uint8_t peer_priority,
                       std::uint32_t peer_ip) const {
  auto my_ip = host_.primary_ip(config_.ifindex).value();
  if (config_.priority != peer_priority) {
    return config_.priority > peer_priority;
  }
  return my_ip > peer_ip;
}

void HsrpRouter::hello_tick() {
  if (!running_) return;
  // Hellos are sent from the speaking states (Standby and Active).
  if (state_ == HsrpState::kStandby || state_ == HsrpState::kActive) {
    util::ByteWriter w;
    w.u8(config_.group);
    w.u8(static_cast<std::uint8_t>(state_));
    w.u8(config_.priority);
    w.u32(host_.primary_ip(config_.ifindex).value());
    host_.send_udp_broadcast(config_.ifindex, config_.port, config_.port,
                             w.take());
  }
  hello_timer_ = host_.scheduler().schedule(config_.hello_interval,
                                            [this] { hello_tick(); });
}

void HsrpRouter::arm_active_timer() {
  active_timer_.cancel();
  active_timer_ = host_.scheduler().schedule(config_.hold_time,
                                             [this] { active_timeout(); });
}

void HsrpRouter::arm_standby_timer() {
  standby_timer_.cancel();
  standby_timer_ = host_.scheduler().schedule(config_.hold_time,
                                              [this] { standby_timeout(); });
}

void HsrpRouter::active_timeout() {
  if (!running_) return;
  if (state_ == HsrpState::kStandby) {
    become_active();
  } else if (state_ == HsrpState::kListen) {
    become_standby();
    arm_active_timer();  // keep watching for an active router
  }
}

void HsrpRouter::standby_timeout() {
  if (!running_) return;
  if (state_ == HsrpState::kListen) {
    become_standby();
  }
}

void HsrpRouter::become_standby() {
  state_ = HsrpState::kStandby;
  log_.info("-> STANDBY (group %u)", config_.group);
}

void HsrpRouter::become_active() {
  state_ = HsrpState::kActive;
  active_timer_.cancel();
  log_.info("-> ACTIVE (group %u)", config_.group);
  for (const auto& vip : config_.vips) {
    host_.add_alias(config_.ifindex, vip);
    host_.send_gratuitous_arp(config_.ifindex, vip);
  }
}

void HsrpRouter::resign_active() {
  for (const auto& vip : config_.vips) {
    host_.remove_alias(config_.ifindex, vip);
  }
  state_ = HsrpState::kListen;
  log_.info("resigned ACTIVE (group %u)", config_.group);
  arm_active_timer();
  arm_standby_timer();
}

void HsrpRouter::on_packet(const net::Host::UdpContext&,
                           const util::SharedBytes& payload) {
  if (!running_) return;
  util::ByteReader r(payload);
  Hello hello{};
  try {
    hello.group = r.u8();
    hello.state = r.u8();
    hello.priority = r.u8();
    hello.ip = r.u32();
  } catch (const util::DecodeError&) {
    return;
  }
  if (hello.group != config_.group) return;

  auto peer_state = static_cast<HsrpState>(hello.state);
  if (peer_state == HsrpState::kActive) {
    if (state_ == HsrpState::kActive) {
      if (!beats(hello.priority, hello.ip)) resign_active();
    } else {
      arm_active_timer();
    }
  } else if (peer_state == HsrpState::kStandby) {
    if (state_ == HsrpState::kStandby) {
      if (!beats(hello.priority, hello.ip)) {
        state_ = HsrpState::kListen;
        log_.info("deferring STANDBY to better peer");
        arm_standby_timer();
      }
    } else if (state_ != HsrpState::kActive) {
      arm_standby_timer();
    }
  }
}

}  // namespace wam::baselines
