#include "baselines/vrrp.hpp"

#include "util/bytes.hpp"

namespace wam::baselines {

const char* vrrp_state_name(VrrpState s) {
  switch (s) {
    case VrrpState::kInit: return "INIT";
    case VrrpState::kBackup: return "BACKUP";
    case VrrpState::kMaster: return "MASTER";
  }
  return "?";
}

VrrpRouter::VrrpRouter(net::Host& host, VrrpConfig config, sim::Log* log)
    : host_(host),
      config_(std::move(config)),
      log_(log, "vrrp/" + host.name()) {}

sim::Duration VrrpRouter::master_down_interval() const {
  // 3 * advertisement_interval + skew_time, skew = (256 - prio)/256 s.
  auto skew = sim::Duration(
      sim::seconds(1.0).count() * (256 - config_.priority) / 256);
  return config_.advertisement_interval * 3 + skew;
}

void VrrpRouter::start() {
  if (running_) return;
  running_ = true;
  host_.open_udp(config_.port,
                 [this](const net::Host::UdpContext& ctx,
                        const util::SharedBytes& payload) { on_packet(ctx, payload); });
  if (config_.priority == 255) {
    become_master();
  } else {
    become_backup();
  }
}

void VrrpRouter::stop() {
  if (!running_) return;
  running_ = false;
  advert_timer_.cancel();
  master_down_timer_.cancel();
  host_.close_udp(config_.port);
  if (state_ == VrrpState::kMaster) {
    for (const auto& vip : config_.vips) {
      host_.remove_alias(config_.ifindex, vip);
    }
  }
  state_ = VrrpState::kInit;
}

void VrrpRouter::become_master() {
  ++transitions_;
  state_ = VrrpState::kMaster;
  master_down_timer_.cancel();
  log_.info("-> MASTER (vrid %u)", config_.vrid);
  for (const auto& vip : config_.vips) {
    host_.add_alias(config_.ifindex, vip);
    host_.send_gratuitous_arp(config_.ifindex, vip);
  }
  send_advertisement();
}

void VrrpRouter::become_backup() {
  if (state_ == VrrpState::kMaster) {
    for (const auto& vip : config_.vips) {
      host_.remove_alias(config_.ifindex, vip);
    }
  }
  ++transitions_;
  state_ = VrrpState::kBackup;
  advert_timer_.cancel();
  log_.info("-> BACKUP (vrid %u)", config_.vrid);
  arm_master_down_timer();
}

void VrrpRouter::send_advertisement() {
  if (!running_ || state_ != VrrpState::kMaster) return;
  util::ByteWriter w;
  w.u8(config_.vrid);
  w.u8(config_.priority);
  host_.send_udp_broadcast(config_.ifindex, config_.port, config_.port,
                           w.take());
  advert_timer_ = host_.scheduler().schedule(
      config_.advertisement_interval, [this] { send_advertisement(); });
}

void VrrpRouter::arm_master_down_timer() {
  master_down_timer_.cancel();
  master_down_timer_ = host_.scheduler().schedule(
      master_down_interval(), [this] { master_down(); });
}

void VrrpRouter::master_down() {
  if (!running_ || state_ != VrrpState::kBackup) return;
  log_.info("master down timer expired");
  become_master();
}

void VrrpRouter::on_packet(const net::Host::UdpContext&,
                           const util::SharedBytes& payload) {
  if (!running_) return;
  util::ByteReader r(payload);
  std::uint8_t vrid, priority;
  try {
    vrid = r.u8();
    priority = r.u8();
  } catch (const util::DecodeError&) {
    return;
  }
  if (vrid != config_.vrid) return;

  switch (state_) {
    case VrrpState::kBackup:
      if (priority >= config_.priority || !config_.preempt) {
        arm_master_down_timer();
      }
      // Lower-priority master with preemption on: let the timer run out
      // quickly? RFC: preempting backup lets Master_Down fire naturally.
      break;
    case VrrpState::kMaster:
      if (priority > config_.priority) {
        become_backup();
      }
      // Equal priority: higher primary IP wins per RFC; we keep the
      // incumbent for simplicity (configs in this repo use distinct
      // priorities).
      break;
    case VrrpState::kInit:
      break;
  }
}

}  // namespace wam::baselines
