// The Linux Fake project's approach (paper §7): pairwise IP fail-over via
// service probing and ARP spoofing. A backup host pings the main server's
// stationary address at a fixed interval; after `miss_threshold` missed
// replies it instantiates the virtual interface and sends a gratuitous ARP.
// Optionally it releases the address when the main server answers again.
//
// This is the 1:1 baseline: no group membership, no conflict-free merge
// guarantees, no N-way coverage.
#pragma once

#include <cstdint>
#include <vector>

#include "net/host.hpp"
#include "sim/log.hpp"

namespace wam::baselines {

struct FakeConfig {
  net::Ipv4Address main_ip;  // stationary address of the protected server
  std::vector<net::Ipv4Address> vips;
  int ifindex = 0;
  sim::Duration probe_interval = sim::seconds(1.0);
  int miss_threshold = 4;
  bool release_on_return = true;
  std::uint16_t port = 1999;
};

/// Runs on the protected (main) server: answers probe pings.
class FakeResponder {
 public:
  FakeResponder(net::Host& host, std::uint16_t port = 1999);
  ~FakeResponder() { stop(); }
  void start();
  void stop();

 private:
  net::Host& host_;
  std::uint16_t port_;
  bool running_ = false;
};

/// Runs on the backup: probes the main and takes over its VIPs on failure.
class FakeBackup {
 public:
  FakeBackup(net::Host& host, FakeConfig config, sim::Log* log = nullptr);
  ~FakeBackup() { stop(); }
  FakeBackup(const FakeBackup&) = delete;
  FakeBackup& operator=(const FakeBackup&) = delete;

  void start();
  void stop();

  [[nodiscard]] bool holding() const { return holding_; }
  [[nodiscard]] int consecutive_misses() const { return misses_; }

 private:
  void probe_tick();
  void take_over();
  void hand_back();

  net::Host& host_;
  FakeConfig config_;
  sim::Logger log_;
  bool running_ = false;
  bool holding_ = false;
  int misses_ = 0;
  bool reply_seen_ = false;
  sim::TimerHandle timer_;
};

}  // namespace wam::baselines
