// Virtual Router Redundancy Protocol (RFC 2338-style), the paper's primary
// related-work comparison for router fail-over.
//
// One elected Master owns the virtual addresses and multicasts
// advertisements every advertisement_interval (default 1 s). Backups run a
// master-down timer of 3 * advertisement_interval + skew, where
// skew = (256 - priority) / 256 s; on expiry the backup promotes itself,
// acquires the addresses and gratuitously ARPs. Unlike Wackamole, VRRP
// protects ONE address set per instance (pairwise/active-standby at the
// address level) and offers no N-way balancing of many VIPs.
#pragma once

#include <cstdint>
#include <vector>

#include "net/host.hpp"
#include "sim/log.hpp"

namespace wam::baselines {

struct VrrpConfig {
  std::uint8_t vrid = 1;
  std::vector<net::Ipv4Address> vips;
  int ifindex = 0;
  std::uint8_t priority = 100;  // 255 = address owner
  sim::Duration advertisement_interval = sim::seconds(1.0);
  bool preempt = true;
  std::uint16_t port = 112;  // stand-in for IP protocol 112
};

enum class VrrpState : std::uint8_t { kInit, kBackup, kMaster };

const char* vrrp_state_name(VrrpState s);

class VrrpRouter {
 public:
  VrrpRouter(net::Host& host, VrrpConfig config, sim::Log* log = nullptr);
  ~VrrpRouter() { stop(); }
  VrrpRouter(const VrrpRouter&) = delete;
  VrrpRouter& operator=(const VrrpRouter&) = delete;

  void start();
  void stop();

  [[nodiscard]] VrrpState state() const { return state_; }
  [[nodiscard]] bool is_master() const { return state_ == VrrpState::kMaster; }
  [[nodiscard]] sim::Duration master_down_interval() const;
  [[nodiscard]] std::uint64_t transitions() const { return transitions_; }

 private:
  void become_master();
  void become_backup();
  void send_advertisement();
  void on_packet(const net::Host::UdpContext& ctx, const util::SharedBytes& payload);
  void arm_master_down_timer();
  void master_down();

  net::Host& host_;
  VrrpConfig config_;
  sim::Logger log_;
  bool running_ = false;
  VrrpState state_ = VrrpState::kInit;
  sim::TimerHandle advert_timer_;
  sim::TimerHandle master_down_timer_;
  std::uint64_t transitions_ = 0;
};

}  // namespace wam::baselines
