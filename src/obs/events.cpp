#include "obs/events.hpp"

#include "obs/json.hpp"

namespace wam::obs {

const char* event_type_name(EventType t) {
  switch (t) {
    case EventType::kViewInstalled: return "ViewInstalled";
    case EventType::kStateTransition: return "StateTransition";
    case EventType::kVipAcquired: return "VipAcquired";
    case EventType::kVipReleased: return "VipReleased";
    case EventType::kBalanceRound: return "BalanceRound";
    case EventType::kReallocation: return "Reallocation";
    case EventType::kDisconnect: return "Disconnect";
    case EventType::kArpAnnounce: return "ArpAnnounce";
    case EventType::kFaultInjected: return "FaultInjected";
    case EventType::kFaultHealed: return "FaultHealed";
    case EventType::kArpConflict: return "ArpConflict";
    case EventType::kGroupFenced: return "GroupFenced";
    case EventType::kGroupUnfenced: return "GroupUnfenced";
    case EventType::kPanicRelease: return "PanicRelease";
    case EventType::kCorruptionDetected: return "CorruptionDetected";
    case EventType::kSelfHeal: return "SelfHeal";
  }
  return "?";
}

const std::string* Event::field(std::string_view key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Event::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("seq").value(seq);
  w.key("t_ns").value(
      static_cast<std::int64_t>(time.time_since_epoch().count()));
  w.key("type").value(event_type_name(type));
  w.key("source").value(source);
  w.key("fields").begin_object();
  for (const auto& [k, v] : fields) w.key(k).value(v);
  w.end_object();
  w.end_object();
  return w.str();
}

// ------------------------------------------------------------------ bus ----

void EventBus::Subscription::reset() {
  if (auto table = table_.lock()) table->erase(id_);
  table_.reset();
}

EventBus::EventBus()
    : handlers_(std::make_shared<std::map<std::uint64_t, Handler>>()) {}

EventBus::Subscription EventBus::subscribe(Handler handler) {
  Subscription sub;
  sub.table_ = handlers_;
  sub.id_ = next_id_++;
  (*handlers_)[sub.id_] = std::move(handler);
  return sub;
}

void EventBus::publish(Event event) {
  event.seq = ++published_;
  // Copy the handler list so handlers may (un)subscribe mid-delivery: a
  // handler erasing its own map entry must not destroy the closure it is
  // currently executing.
  std::vector<Handler> snapshot;
  snapshot.reserve(handlers_->size());
  for (const auto& [id, h] : *handlers_) snapshot.push_back(h);
  for (const Handler& h : snapshot) h(event);
}

// ------------------------------------------------------------- timeline ----

EventTimeline::EventTimeline(EventBus& bus, std::size_t capacity)
    : capacity_(capacity) {
  sub_ = bus.subscribe([this](const Event& e) {
    events_.push_back(e);
    if (events_.size() > capacity_) {
      events_.pop_front();
      ++dropped_;
    }
  });
}

std::size_t EventTimeline::count(EventType t) const {
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.type == t) ++n;
  }
  return n;
}

std::size_t EventTimeline::count(EventType t,
                                 std::string_view source_prefix) const {
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.type != t) continue;
    if (e.source == source_prefix) {
      ++n;
    } else if (e.source.size() > source_prefix.size() &&
               e.source.compare(0, source_prefix.size(), source_prefix) == 0 &&
               e.source[source_prefix.size()] == '/') {
      ++n;
    }
  }
  return n;
}

std::string EventTimeline::to_json() const {
  std::string out = "[";
  bool first = true;
  for (const auto& e : events_) {
    if (!first) out += ',';
    first = false;
    out += e.to_json();
  }
  out += ']';
  return out;
}

}  // namespace wam::obs
