#include "obs/metrics.hpp"

#include <algorithm>

#include "obs/json.hpp"
#include "util/assert.hpp"

namespace wam::obs {

// ------------------------------------------------------------ histogram ----

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  WAM_EXPECTS(std::is_sorted(bounds_.begin(), bounds_.end()));
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::record(double x) {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0 || x < min_) min_ = x;
  if (count_ == 0 || x > max_) max_ = x;
  ++count_;
  sum_ += x;
}

// ------------------------------------------------------------- registry ----

std::uint64_t& MetricRegistry::counter(const std::string& name) {
  return counters_[name];
}

double& MetricRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

Histogram& MetricRegistry::histogram(const std::string& name,
                                     std::vector<double> upper_bounds) {
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(std::move(upper_bounds)))
      .first->second;
}

void MetricRegistry::bind(Counter& c, const std::string& name) {
  auto& cell = counter(name);
  cell += c.value_;
  c.value_ = 0;
  c.cell_ = &cell;
}

void MetricRegistry::bind(Gauge& g, const std::string& name) {
  auto& cell = gauge(name);
  cell = g.value();
  g.value_ = 0;
  g.cell_ = &cell;
}

std::uint64_t MetricRegistry::counter_value(const std::string& name) const {
  auto it = counters_.find(name);
  return it != counters_.end() ? it->second : 0;
}

double MetricRegistry::gauge_value(const std::string& name) const {
  auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second : 0;
}

bool MetricRegistry::name_matches(const std::string& pattern,
                                  const std::string& name) {
  if (pattern.empty()) return true;
  if (pattern.find('*') == std::string::npos) {
    if (name == pattern) return true;
    // Subtree prefix: "wam/s3" matches "wam/s3/acquires".
    return name.size() > pattern.size() &&
           name.compare(0, pattern.size(), pattern) == 0 &&
           name[pattern.size()] == '/';
  }
  // Segment-wise match with '*' standing for exactly one segment.
  std::size_t p = 0, n = 0;
  while (true) {
    auto p_end = pattern.find('/', p);
    auto n_end = name.find('/', n);
    auto p_seg = pattern.substr(p, p_end == std::string::npos
                                       ? std::string::npos
                                       : p_end - p);
    auto n_seg = name.substr(n, n_end == std::string::npos ? std::string::npos
                                                           : n_end - n);
    if (p_seg != "*" && p_seg != n_seg) return false;
    bool p_done = p_end == std::string::npos;
    bool n_done = n_end == std::string::npos;
    if (p_done || n_done) return p_done && n_done;
    p = p_end + 1;
    n = n_end + 1;
  }
}

std::uint64_t MetricRegistry::sum(const std::string& pattern) const {
  std::uint64_t total = 0;
  for (const auto& [name, value] : counters_) {
    if (name_matches(pattern, name)) total += value;
  }
  return total;
}

std::vector<std::string> MetricRegistry::match(
    const std::string& pattern) const {
  std::vector<std::string> out;
  for (const auto& [name, value] : counters_) {
    if (name_matches(pattern, name)) out.push_back(name);
  }
  return out;
}

std::string MetricRegistry::to_json(const std::string& prefix) const {
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, value] : counters_) {
    if (!name_matches(prefix, name)) continue;
    w.key(name).value(value);
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, value] : gauges_) {
    if (!name_matches(prefix, name)) continue;
    w.key(name).value(value);
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    if (!name_matches(prefix, name)) continue;
    w.key(name).begin_object();
    w.key("count").value(h.count());
    w.key("sum").value(h.sum());
    w.key("min").value(h.min());
    w.key("max").value(h.max());
    w.key("bounds").begin_array();
    for (double b : h.bounds()) w.value(b);
    w.end_array();
    w.key("buckets").begin_array();
    for (std::uint64_t c : h.counts()) w.value(c);
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace wam::obs
