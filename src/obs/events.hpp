// Structured cluster events: the typed counterpart of grepping the log.
//
// Protocol layers publish Events — ViewInstalled, StateTransition,
// VipAcquired, VipReleased, BalanceRound, Disconnect, ... — onto one
// EventBus per simulation. Every event carries the virtual timestamp at
// which it happened, a source scope ("wam/s2", "gcs/s1", "scenario"), and
// an ordered list of string fields, so the availability analyses of the
// paper (Figure 5's interruption timeline, Table 1's detection windows)
// can be computed from precise, machine-readable timelines instead of log
// scraping.
//
// Subscriptions are RAII tokens: dropping the token detaches the handler,
// and a token outliving its bus is harmless (weak reference). The bounded
// EventTimeline is the standard subscriber — it records the most recent
// `capacity` events and exports them as deterministic JSON (two runs with
// the same seed produce byte-identical documents).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace wam::obs {

enum class EventType : std::uint8_t {
  kViewInstalled,    // gcs: a daemon membership view was installed
  kStateTransition,  // wam: RUN/GATHER/IDLE state machine edge
  kVipAcquired,      // wam: a VIP group was bound locally
  kVipReleased,      // wam: a VIP group was unbound locally
  kBalanceRound,     // wam: the representative multicast a balance decision
  kReallocation,     // wam: GATHER completed, table reallocated
  kDisconnect,       // wam: lost the local GCS daemon
  kArpAnnounce,      // ip: gratuitous-ARP/spoofed-reply takeover broadcast
  kFaultInjected,    // scenario: disconnect/partition/crash injected
  kFaultHealed,      // scenario: reconnect/merge/recovery
  kArpConflict,      // ip: duplicate-address probe found another holder
  kGroupFenced,      // wam: OS-op retry budget exhausted, group self-fenced
  kGroupUnfenced,    // wam: quarantine cooldown probe succeeded
  kPanicRelease,     // wam: release_everything() — all groups dropped at once
  kCorruptionDetected,  // wam/gcs: a state audit found corrupted hot state
  kSelfHeal,            // wam/gcs: recovery action taken on a corruption
};

[[nodiscard]] const char* event_type_name(EventType t);

struct Event {
  sim::TimePoint time{};                    // virtual timestamp
  EventType type = EventType::kViewInstalled;
  std::string source;                       // metric-style scope
  /// Ordered key/value payload (insertion order is export order).
  std::vector<std::pair<std::string, std::string>> fields;
  std::uint64_t seq = 0;                    // stamped by the bus

  [[nodiscard]] const std::string* field(std::string_view key) const;
  /// One deterministic JSON object, e.g.
  /// {"seq":7,"t_ns":1500000,"type":"VipAcquired","source":"wam/s2",
  ///  "fields":{"group":"10.0.0.100"}}
  [[nodiscard]] std::string to_json() const;
};

class EventBus {
 public:
  using Handler = std::function<void(const Event&)>;

  /// RAII subscription token (move-only). reset() or destruction detaches
  /// the handler; safe to outlive the bus.
  class Subscription {
   public:
    Subscription() = default;
    Subscription(Subscription&& other) noexcept { *this = std::move(other); }
    Subscription& operator=(Subscription&& other) noexcept {
      if (this != &other) {
        reset();
        table_ = std::move(other.table_);
        id_ = other.id_;
        other.table_.reset();
      }
      return *this;
    }
    Subscription(const Subscription&) = delete;
    Subscription& operator=(const Subscription&) = delete;
    ~Subscription() { reset(); }

    void reset();
    [[nodiscard]] bool active() const { return !table_.expired(); }

   private:
    friend class EventBus;
    std::weak_ptr<std::map<std::uint64_t, Handler>> table_;
    std::uint64_t id_ = 0;
  };

  EventBus();
  EventBus(const EventBus&) = delete;
  EventBus& operator=(const EventBus&) = delete;

  [[nodiscard]] Subscription subscribe(Handler handler);
  /// Stamp a sequence number and deliver to every subscriber synchronously.
  /// Handlers may subscribe/unsubscribe during delivery; changes take
  /// effect from the next publish.
  void publish(Event event);

  [[nodiscard]] std::uint64_t published() const { return published_; }
  [[nodiscard]] std::size_t subscriber_count() const {
    return handlers_->size();
  }

 private:
  std::shared_ptr<std::map<std::uint64_t, Handler>> handlers_;
  std::uint64_t next_id_ = 1;
  std::uint64_t published_ = 0;
};

/// Bounded recorder: keeps the most recent `capacity` events.
class EventTimeline {
 public:
  explicit EventTimeline(EventBus& bus, std::size_t capacity = 8192);

  [[nodiscard]] const std::deque<Event>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  /// Events evicted by the capacity bound since the last clear().
  [[nodiscard]] std::size_t dropped() const { return dropped_; }
  [[nodiscard]] std::size_t count(EventType t) const;
  /// Events of type `t` whose source matches `source_prefix` exactly or as
  /// a '/'-delimited prefix.
  [[nodiscard]] std::size_t count(EventType t,
                                  std::string_view source_prefix) const;
  void clear() {
    events_.clear();
    dropped_ = 0;
  }

  /// Deterministic JSON array of Event::to_json() objects.
  [[nodiscard]] std::string to_json() const;

 private:
  EventBus::Subscription sub_;
  std::size_t capacity_;
  std::deque<Event> events_;
  std::size_t dropped_ = 0;
};

}  // namespace wam::obs
