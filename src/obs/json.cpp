#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace wam::obs {

// --------------------------------------------------------------- writer ----

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (stack_.empty()) return;
  auto& [is_object, count] = stack_.back();
  if (is_object && !key_pending_) {
    // Writing a bare value inside an object is a programming error; emit
    // nothing rather than malformed JSON.
    return;
  }
  if (!is_object) {
    if (count > 0) out_ += ',';
    ++count;
  }
  key_pending_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.emplace_back(true, 0);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  if (!stack_.empty()) stack_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.emplace_back(false, 0);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  if (!stack_.empty()) stack_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  if (!stack_.empty() && stack_.back().first) {
    if (stack_.back().second > 0) out_ += ',';
    ++stack_.back().second;
  }
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  // Integral doubles render as integers so exports stay byte-stable and
  // easy to diff; everything else gets round-trippable precision.
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    out_ += std::to_string(static_cast<std::int64_t>(v));
  } else if (std::isfinite(v)) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ += buf;
  } else {
    out_ += "null";  // JSON has no NaN/Inf
  }
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

// --------------------------------------------------------------- parser ----

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    auto v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw JsonError("json parse error at byte " + std::to_string(pos_) +
                    ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    JsonValue v;
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"':
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        v.kind = JsonValue::Kind::kBool;
        v.boolean = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return v;
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      auto key = parse_string();
      skip_ws();
      expect(':');
      v.object[key] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // The exports only ever escape control characters; decode the
          // BMP code point as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    char* end = nullptr;
    std::string token = text_.substr(start, pos_ - start);
    v.number = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') fail("bad number");
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue& JsonValue::at(const std::string& k) const {
  if (kind != Kind::kObject) throw JsonError("not an object: key '" + k + "'");
  auto it = object.find(k);
  if (it == object.end()) throw JsonError("missing key '" + k + "'");
  return it->second;
}

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace wam::obs
