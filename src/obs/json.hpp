// Minimal JSON support for the observability layer.
//
// JsonWriter emits deterministic, machine-readable JSON (keys in the order
// they are written, integers rendered without a decimal point, strings
// escaped per RFC 8259) — the substrate behind the `metrics` and
// `status-json` control commands and the EventTimeline export. parse_json()
// is the matching reader, used by tests and tools to round-trip what the
// daemons publish. Neither aims to be a general-purpose JSON library; they
// cover exactly the documents docs/OBSERVABILITY.md specifies.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace wam::obs {

/// Streaming writer with automatic comma/nesting management.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  /// Key for the next value (only valid directly inside an object).
  JsonWriter& key(const std::string& k);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(bool v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(double v);
  JsonWriter& null();

  [[nodiscard]] const std::string& str() const { return out_; }

  static std::string escape(const std::string& s);

 private:
  void before_value();
  std::string out_;
  // One entry per open container: true = object, false = array; .second
  // counts emitted elements (for comma placement).
  std::vector<std::pair<bool, int>> stack_;
  bool key_pending_ = false;
};

/// Thrown by parse_json() on malformed input; the message carries a byte
/// offset into the document.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

/// Parsed JSON document node.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool has(const std::string& k) const {
    return object.count(k) > 0;
  }
  /// Member access; throws JsonError when absent or not an object.
  [[nodiscard]] const JsonValue& at(const std::string& k) const;
  [[nodiscard]] std::uint64_t as_u64() const {
    return static_cast<std::uint64_t>(number);
  }
};

/// Parse a complete JSON document (trailing garbage is an error).
[[nodiscard]] JsonValue parse_json(const std::string& text);

}  // namespace wam::obs
