// The one-stop observability context: a MetricRegistry plus an EventBus.
//
// A simulation owns exactly one Observability; components receive a
// pointer to it (plus their metric scope) through bind_observability().
// Components keep working without one — their legacy counter structs then
// count free-standing and no events are published — so unit tests can
// build daemons bare while scenarios and benches get the full picture.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/events.hpp"
#include "obs/metrics.hpp"

namespace wam::obs {

struct Observability {
  MetricRegistry registry;
  EventBus bus;

  /// Publish a structured event stamped with the given virtual time.
  void emit(sim::TimePoint time, EventType type, std::string source,
            std::vector<std::pair<std::string, std::string>> fields = {}) {
    Event e;
    e.time = time;
    e.type = type;
    e.source = std::move(source);
    e.fields = std::move(fields);
    bus.publish(std::move(e));
  }
};

}  // namespace wam::obs
