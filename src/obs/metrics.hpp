// MetricRegistry: one hierarchical namespace for every counter, gauge and
// histogram in a simulation.
//
// Metric names are '/'-separated paths scoped by subsystem and instance —
// "wam/s3/acquires", "gcs/s1/views_installed", "net/frames_sent" — so a
// bench can sum one statistic across all daemons with a single wildcard
// query (sum("gcs/*/views_installed")) instead of a hand-rolled loop, and
// the `metrics` control command can export any subtree as JSON.
//
// The legacy per-component counter structs (WamCounters, gcs
// DaemonCounters, FabricCounters, HostCounters) are retained as *views*
// over registry cells: each field is an obs::Counter that, once bind()-ed,
// reads and writes the registry cell directly. Unbound counters work
// standalone, so components remain usable without any observability
// context (tests construct daemons bare all the time). Copying a Counter
// snapshots its current value — `auto before = d.counters().views_installed`
// keeps meaning what it always meant.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace wam::obs {

class MetricRegistry;

/// Monotonic 64-bit counter, optionally backed by a registry cell.
class Counter {
 public:
  Counter() = default;
  /// Copies snapshot the value and drop the binding.
  Counter(const Counter& other) : value_(other.value()) {}
  Counter& operator=(const Counter& other) {
    set(other.value());
    return *this;
  }

  [[nodiscard]] std::uint64_t value() const {
    return cell_ != nullptr ? *cell_ : value_;
  }
  operator std::uint64_t() const { return value(); }  // NOLINT: intentional

  Counter& operator++() {
    add(1);
    return *this;
  }
  void operator++(int) { add(1); }
  Counter& operator+=(std::uint64_t n) {
    add(n);
    return *this;
  }
  void add(std::uint64_t n) {
    if (cell_ != nullptr) {
      *cell_ += n;
    } else {
      value_ += n;
    }
  }

 private:
  friend class MetricRegistry;
  void set(std::uint64_t v) {
    if (cell_ != nullptr) {
      *cell_ = v;
    } else {
      value_ = v;
    }
  }

  std::uint64_t value_ = 0;
  std::uint64_t* cell_ = nullptr;  // owned by a MetricRegistry when bound
};

inline std::ostream& operator<<(std::ostream& os, const Counter& c) {
  return os << c.value();
}

/// Point-in-time value (doubles; set/add), optionally registry-backed.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge& other) : value_(other.value()) {}
  Gauge& operator=(const Gauge& other) {
    set(other.value());
    return *this;
  }

  [[nodiscard]] double value() const {
    return cell_ != nullptr ? *cell_ : value_;
  }
  operator double() const { return value(); }  // NOLINT: intentional

  void set(double v) {
    if (cell_ != nullptr) {
      *cell_ = v;
    } else {
      value_ = v;
    }
  }
  void add(double d) { set(value() + d); }

 private:
  friend class MetricRegistry;
  double value_ = 0;
  double* cell_ = nullptr;
};

/// Fixed-bucket histogram: counts of samples <= each upper bound, plus an
/// overflow bucket and count/sum/min/max. Buckets are chosen at creation
/// (no dynamic resizing — exports stay deterministic and comparable).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void record(double x);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return count_ > 0 ? min_ : 0; }
  [[nodiscard]] double max() const { return count_ > 0 ? max_ : 0; }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// counts()[i] = samples <= bounds()[i]; counts().back() = overflow.
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return counts_;
  }

 private:
  std::vector<double> bounds_;           // ascending upper bounds
  std::vector<std::uint64_t> counts_;    // bounds_.size() + 1 (overflow)
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Get-or-create the cell behind a counter/gauge name. References stay
  /// valid for the registry's lifetime (node-based storage).
  std::uint64_t& counter(const std::string& name);
  double& gauge(const std::string& name);
  /// Get-or-create a histogram; `upper_bounds` applies on first creation.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  /// Attach a free-standing Counter/Gauge to a named cell; the current
  /// free-standing value folds into the cell so nothing is lost when a
  /// component binds after it already counted something.
  void bind(Counter& c, const std::string& name);
  void bind(Gauge& g, const std::string& name);

  /// Current value, 0 when the metric does not exist.
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;
  [[nodiscard]] double gauge_value(const std::string& name) const;

  /// Sum every counter matching `pattern`:
  ///   * exact name           — "net/frames_sent"
  ///   * subtree prefix       — "wam/s3" (all metrics under that scope)
  ///   * '*' segment wildcard — "gcs/*/views_installed"
  [[nodiscard]] std::uint64_t sum(const std::string& pattern) const;
  /// Counter names matching `pattern` (sorted; same matching rules).
  [[nodiscard]] std::vector<std::string> match(
      const std::string& pattern) const;

  [[nodiscard]] std::size_t counter_count() const { return counters_.size(); }

  /// Deterministic snapshot: {"counters":{...},"gauges":{...},
  /// "histograms":{...}}, keys sorted (std::map order). A non-empty
  /// `prefix` restricts the export to that subtree.
  [[nodiscard]] std::string to_json(const std::string& prefix = "") const;

  static bool name_matches(const std::string& pattern,
                           const std::string& name);

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace wam::obs
