// wackamole.conf parsing.
//
// The released Wackamole is configured through a small text file; this
// parser accepts a compatible dialect so that configurations read like the
// real thing:
//
//     # wackamole.conf
//     Group = wackamole
//     Mature = 30s
//     Balance = 60s
//     SpreadRetryInterval = 2s
//     ArpShare = 10s
//     Announce = 0s
//     RepresentativeDriven = no
//     Prefer = web-a, web-b
//
//     VirtualInterfaces {
//       { if0: 10.0.0.100/32 }                 # one group per line...
//       web-a { if0: 10.0.0.101/32 }           # ...optionally named
//       router { if0: 203.0.113.1/32  if1: 198.51.100.101/32 }  # indivisible
//     }
//
// Interfaces are written `ifN:` (index into the host's interface list);
// the /32 suffix is accepted (and ignored) for fidelity with the original
// format. Unnamed groups are named after their first address. Durations
// take `s` or `ms` suffixes.
#pragma once

#include <stdexcept>
#include <string>

#include "wackamole/config.hpp"

namespace wam::wackamole {

/// Thrown on malformed input; the message names the offending line.
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

/// Parse the wackamole.conf dialect above. The result is validate()d.
[[nodiscard]] Config parse_config(const std::string& text);

/// Render a Config back to the same dialect (round-trip friendly).
[[nodiscard]] std::string render_config(const Config& config);

}  // namespace wam::wackamole
