// The IP address control mechanism (Figure 1's third component).
//
// IpManager is the platform abstraction the paper isolates into its
// OS-specific half: acquire/release of virtual interfaces plus ARP-cache
// spoofing. SimIpManager drives a simulated net::Host: on acquisition it
// ARP-probes each address for a duplicate holder, binds the alias,
// broadcasts a gratuitous ARP (updating every LAN host that already cached
// the address) and unicasts spoofed replies at the router(s) and at any
// explicitly registered notify targets (the router application's ARP-share
// list). RecordingIpManager is a test double; FaultyIpManager is a fault
// injecting decorator for the chaos campaign.
//
// Every operation returns an OsOpResult: real deployments fail here
// (EBUSY aliases, dying NICs, lost gratuitous ARPs), and the daemon's
// retry/backoff/self-fence machinery is driven by these results.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "net/host.hpp"
#include "obs/observability.hpp"
#include "sim/random.hpp"
#include "wackamole/config.hpp"

namespace wam::wackamole {

enum class OsOpStatus : std::uint8_t {
  kOk,
  /// The OS operation itself failed (EBUSY, ENODEV, ...). Retryable.
  kFailed,
  /// Duplicate-address detection: an ARP probe found another live holder.
  /// Nothing was bound; resolution defers to the protocol's deterministic
  /// ResolveConflicts() ordering instead of fighting at the ARP layer.
  kConflict,
};

[[nodiscard]] const char* os_op_status_name(OsOpStatus s);

/// Outcome of one enforcement-layer operation.
struct OsOpResult {
  OsOpStatus status = OsOpStatus::kOk;
  std::string detail;

  [[nodiscard]] bool ok() const { return status == OsOpStatus::kOk; }
  [[nodiscard]] static OsOpResult success() { return {}; }
  [[nodiscard]] static OsOpResult failed(std::string why) {
    return {OsOpStatus::kFailed, std::move(why)};
  }
  [[nodiscard]] static OsOpResult conflict(std::string why) {
    return {OsOpStatus::kConflict, std::move(why)};
  }
};

class IpManager {
 public:
  virtual ~IpManager() = default;
  /// Bind every address of the group and announce ownership. All-or-nothing:
  /// on a non-ok result no address of the group is left bound.
  virtual OsOpResult acquire(const VipGroup& group) = 0;
  /// Unbind every address of the group.
  virtual OsOpResult release(const VipGroup& group) = 0;
  /// Re-announce ownership of an already-held group (periodic refresh,
  /// or after learning of new notify targets).
  virtual OsOpResult announce(const VipGroup& group) = 0;
  [[nodiscard]] virtual bool holds(const std::string& group) const = 0;
  /// Router application: register a host to notify on takeover. Platforms
  /// without ARP-share support ignore this.
  virtual void add_notify_target(net::Ipv4Address /*ip*/) {}
};

class SimIpManager : public IpManager {
 public:
  explicit SimIpManager(net::Host& host) : host_(host) {}

  /// Register the router reachable through `ifindex`; spoofed ARP replies
  /// are unicast at it on every acquisition (Figure 3).
  void set_router(int ifindex, net::Ipv4Address router_ip);
  /// Router application: additional hosts to notify on takeover (§5.2).
  /// Re-adding a target refreshes its TTL timestamp — this is the ONLY
  /// operation that does; announce() sends the target a spoofed reply but
  /// leaves its TTL clock alone, so un-refreshed targets still age out.
  void add_notify_target(net::Ipv4Address ip) override;
  /// Garbage collection for the notify list (the paper's §5.2 future work:
  /// "applying garbage collection techniques to make the ARP spoof
  /// notification more accurately targeted"). Targets not refreshed within
  /// the TTL are dropped; zero (default) keeps them forever.
  void set_notify_target_ttl(sim::Duration ttl) { notify_ttl_ = ttl; }
  [[nodiscard]] std::vector<net::Ipv4Address> notify_targets() const;

  OsOpResult acquire(const VipGroup& group) override;
  OsOpResult release(const VipGroup& group) override;
  OsOpResult announce(const VipGroup& group) override;
  [[nodiscard]] bool holds(const std::string& group) const override;

  [[nodiscard]] net::Host& host() { return host_; }

  /// Publish ArpAnnounce events and a "held_groups" gauge through a shared
  /// observability context; convention for `scope`: "ip/s<N>".
  void bind_observability(obs::Observability& obs, std::string scope);

 private:
  void expire_notify_targets();
  void update_held_gauge();

  net::Host& host_;
  std::map<int, net::Ipv4Address> routers_;  // ifindex -> router ip
  std::map<net::Ipv4Address, sim::TimePoint> notify_targets_;  // ip -> seen
  sim::Duration notify_ttl_ = sim::kZero;
  std::set<std::string> held_;
  obs::Observability* obs_ = nullptr;
  std::string obs_scope_;
};

/// Fault-injecting decorator around any IpManager, seeded from sim::Rng so
/// chaos campaigns stay deterministic. With every knob at its default the
/// decorator is a pure pass-through and consumes no randomness, keeping
/// pre-existing pinned seeds byte-identical.
///
/// Knobs:
///  * per-op failure probabilities (acquire / release / announce),
///  * sticky failures: a group (or all groups) whose acquire always fails
///    until heal() — models a dead NIC or a persistently EBUSY alias.
///    Sticky state also fails announce() for the group, which the daemon
///    uses as a side-effect-free health probe at quarantine cooldown.
///  * fail_acquires_after(n): the n-th next acquire fails once — for
///    deterministic retry-schedule tests,
///  * arp-lose: announce() succeeds but is silently dropped (the gratuitous
///    ARPs never reach the wire).
class FaultyIpManager : public IpManager {
 public:
  FaultyIpManager(IpManager& inner, std::uint64_t seed)
      : inner_(inner), rng_(seed) {}

  void set_acquire_fail_probability(double p) { acquire_fail_p_ = p; }
  void set_release_fail_probability(double p) { release_fail_p_ = p; }
  void set_announce_fail_probability(double p) { announce_fail_p_ = p; }
  /// All future acquires (and announce-probes) fail until heal().
  void set_sticky_all(bool on) { sticky_all_ = on; }
  /// Acquires of `group` fail until heal() / set_sticky_group(group, false).
  void set_sticky_group(const std::string& group, bool on);
  /// The n-th acquire from now (1 = the next one) fails, once.
  void fail_acquires_after(std::uint32_t n) { fail_after_ = n; }
  void set_arp_lose(bool on) { arp_lose_ = on; }
  /// Clear every fault: probabilities, sticky state, schedules, arp-lose.
  void heal();

  [[nodiscard]] bool sticky(const std::string& group) const {
    return sticky_all_ || sticky_groups_.count(group) > 0;
  }
  [[nodiscard]] bool any_fault_armed() const;
  [[nodiscard]] std::uint64_t failures_injected() const {
    return failures_injected_;
  }

  OsOpResult acquire(const VipGroup& group) override;
  OsOpResult release(const VipGroup& group) override;
  OsOpResult announce(const VipGroup& group) override;
  [[nodiscard]] bool holds(const std::string& group) const override {
    return inner_.holds(group);
  }
  void add_notify_target(net::Ipv4Address ip) override {
    inner_.add_notify_target(ip);
  }

 private:
  OsOpResult injected(const char* op, const std::string& group,
                      const char* why);

  IpManager& inner_;
  sim::Rng rng_;
  double acquire_fail_p_ = 0.0;
  double release_fail_p_ = 0.0;
  double announce_fail_p_ = 0.0;
  bool sticky_all_ = false;
  bool arp_lose_ = false;
  std::set<std::string> sticky_groups_;
  std::uint32_t fail_after_ = 0;  // 0 = disarmed; counts down per acquire
  std::uint64_t failures_injected_ = 0;
};

/// Test double: records the operation sequence, holds no real addresses.
/// Results are scripted per-op: push_result() queues the outcome of the
/// next acquire/release/announce (FIFO, shared across op kinds); an empty
/// queue yields success, preserving pre-fallible test behaviour.
class RecordingIpManager : public IpManager {
 public:
  OsOpResult acquire(const VipGroup& group) override;
  OsOpResult release(const VipGroup& group) override;
  OsOpResult announce(const VipGroup& group) override;
  [[nodiscard]] bool holds(const std::string& group) const override {
    return held_.count(group) > 0;
  }

  void push_result(OsOpResult r) { scripted_.push_back(std::move(r)); }

  [[nodiscard]] const std::vector<std::string>& ops() const { return ops_; }
  [[nodiscard]] const std::set<std::string>& held() const { return held_; }
  void clear_ops() { ops_.clear(); }

 private:
  OsOpResult next_result();

  std::vector<std::string> ops_;
  std::set<std::string> held_;
  std::deque<OsOpResult> scripted_;
};

}  // namespace wam::wackamole
