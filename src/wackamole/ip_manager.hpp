// The IP address control mechanism (Figure 1's third component).
//
// IpManager is the platform abstraction the paper isolates into its
// OS-specific half: acquire/release of virtual interfaces plus ARP-cache
// spoofing. SimIpManager drives a simulated net::Host: on acquisition it
// binds the alias, broadcasts a gratuitous ARP (updating every LAN host
// that already cached the address) and unicasts spoofed replies at the
// router(s) and at any explicitly registered notify targets (the router
// application's ARP-share list). RecordingIpManager is a test double.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "net/host.hpp"
#include "obs/observability.hpp"
#include "wackamole/config.hpp"

namespace wam::wackamole {

class IpManager {
 public:
  virtual ~IpManager() = default;
  /// Bind every address of the group and announce ownership.
  virtual void acquire(const VipGroup& group) = 0;
  /// Unbind every address of the group.
  virtual void release(const VipGroup& group) = 0;
  /// Re-announce ownership of an already-held group (periodic refresh,
  /// or after learning of new notify targets).
  virtual void announce(const VipGroup& group) = 0;
  [[nodiscard]] virtual bool holds(const std::string& group) const = 0;
  /// Router application: register a host to notify on takeover. Platforms
  /// without ARP-share support ignore this.
  virtual void add_notify_target(net::Ipv4Address /*ip*/) {}
};

class SimIpManager : public IpManager {
 public:
  explicit SimIpManager(net::Host& host) : host_(host) {}

  /// Register the router reachable through `ifindex`; spoofed ARP replies
  /// are unicast at it on every acquisition (Figure 3).
  void set_router(int ifindex, net::Ipv4Address router_ip);
  /// Router application: additional hosts to notify on takeover (§5.2).
  /// Re-adding a target refreshes its timestamp.
  void add_notify_target(net::Ipv4Address ip) override;
  /// Garbage collection for the notify list (the paper's §5.2 future work:
  /// "applying garbage collection techniques to make the ARP spoof
  /// notification more accurately targeted"). Targets not refreshed within
  /// the TTL are dropped; zero (default) keeps them forever.
  void set_notify_target_ttl(sim::Duration ttl) { notify_ttl_ = ttl; }
  [[nodiscard]] std::vector<net::Ipv4Address> notify_targets() const;

  void acquire(const VipGroup& group) override;
  void release(const VipGroup& group) override;
  void announce(const VipGroup& group) override;
  [[nodiscard]] bool holds(const std::string& group) const override;

  [[nodiscard]] net::Host& host() { return host_; }

  /// Publish ArpAnnounce events and a "held_groups" gauge through a shared
  /// observability context; convention for `scope`: "ip/s<N>".
  void bind_observability(obs::Observability& obs, std::string scope);

 private:
  void expire_notify_targets();
  void update_held_gauge();

  net::Host& host_;
  std::map<int, net::Ipv4Address> routers_;  // ifindex -> router ip
  std::map<net::Ipv4Address, sim::TimePoint> notify_targets_;  // ip -> seen
  sim::Duration notify_ttl_ = sim::kZero;
  std::set<std::string> held_;
  obs::Observability* obs_ = nullptr;
  std::string obs_scope_;
};

/// Test double: records the operation sequence, holds no real addresses.
class RecordingIpManager : public IpManager {
 public:
  void acquire(const VipGroup& group) override;
  void release(const VipGroup& group) override;
  void announce(const VipGroup& group) override;
  [[nodiscard]] bool holds(const std::string& group) const override {
    return held_.count(group) > 0;
  }

  [[nodiscard]] const std::vector<std::string>& ops() const { return ops_; }
  [[nodiscard]] const std::set<std::string>& held() const { return held_; }
  void clear_ops() { ops_.clear(); }

 private:
  std::vector<std::string> ops_;
  std::set<std::string> held_;
};

}  // namespace wam::wackamole
