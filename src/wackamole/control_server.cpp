#include "wackamole/control_server.hpp"

namespace wam::wackamole {

ControlServer::ControlServer(net::Host& host, Daemon& daemon,
                             std::uint16_t port)
    : host_(host), control_(daemon), port_(port) {}

void ControlServer::start() {
  if (running_) return;
  running_ = host_.open_udp(
      port_, [this](const net::Host::UdpContext& ctx,
                    const util::SharedBytes& payload) {
        ++served_;
        std::string command(payload.begin(), payload.end());
        auto reply = control_.execute(command);
        host_.send_udp_from(ctx.dst_ip, ctx.src_ip, ctx.src_port,
                            ctx.dst_port,
                            util::Bytes(reply.begin(), reply.end()));
      });
}

void ControlServer::stop() {
  if (!running_) return;
  host_.close_udp(port_);
  running_ = false;
}

ControlClient::ControlClient(net::Host& host, std::uint16_t local_port)
    : host_(host), local_port_(local_port) {
  host_.open_udp(local_port_,
                 [this](const net::Host::UdpContext&,
                        const util::SharedBytes& payload) {
                   if (!pending_) return;
                   auto cb = std::move(pending_);
                   pending_ = nullptr;
                   cb(std::string(payload.begin(), payload.end()));
                 });
}

ControlClient::~ControlClient() { host_.close_udp(local_port_); }

void ControlClient::send(net::Ipv4Address daemon_host,
                         const std::string& command, ReplyFn on_reply,
                         std::uint16_t port) {
  pending_ = std::move(on_reply);
  host_.send_udp(daemon_host, port, local_port_,
                 util::Bytes(command.begin(), command.end()));
}

}  // namespace wam::wackamole
