#include "wackamole/wire.hpp"

namespace wam::wackamole {

// peek_type() trusts the [kWamMsgTypeFirst, kWamMsgTypeLast] range derived
// from the sentinel; this pin breaks the build if an enumerator is ever
// appended after kAfterLast_ or the codes stop being contiguous from 1.
static_assert(kWamMsgTypeFirst == 1, "wackamole wire codes start at 1");
static_assert(kWamMsgTypeLast == static_cast<std::uint8_t>(WamMsgType::kNotify),
              "kAfterLast_ must stay the final WamMsgType enumerator");

namespace {

void put_tag(util::ByteWriter& w, const ViewTag& t) {
  w.u64(t.epoch);
  w.u32(t.coordinator);
  w.u64(t.group_seq);
}

ViewTag get_tag(util::ByteReader& r) {
  ViewTag t;
  t.epoch = r.u64();
  t.coordinator = r.u32();
  t.group_seq = r.u64();
  return t;
}

void put_names(util::ByteWriter& w, const std::vector<std::string>& names) {
  w.u32(static_cast<std::uint32_t>(names.size()));
  for (const auto& n : names) w.str(n);
}

// A count claiming more elements than the remaining bytes could possibly
// hold is rejected before reserve() turns an attacker-controlled length
// into a giant allocation (each element is at least `min_entry` bytes).
std::uint32_t get_count(util::ByteReader& r, std::size_t min_entry) {
  auto n = r.u32();
  if (n > r.remaining() / min_entry) {
    throw util::DecodeError("implausible element count " + std::to_string(n));
  }
  return n;
}

std::vector<std::string> get_names(util::ByteReader& r) {
  auto n = get_count(r, 4);  // each name: u32 length prefix
  std::vector<std::string> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(r.str());
  return out;
}

void check_type(util::ByteReader& r, WamMsgType expected) {
  auto t = r.u8();
  if (t != static_cast<std::uint8_t>(expected)) {
    throw util::DecodeError("unexpected wackamole message type " +
                            std::to_string(t));
  }
}

}  // namespace

util::Bytes encode_state(const StateMsg& m) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(WamMsgType::kState));
  put_tag(w, m.view);
  w.boolean(m.mature);
  w.u32(m.weight);
  put_names(w, m.owned);
  put_names(w, m.preferred);
  put_names(w, m.quarantined);
  return w.take();
}

StateMsg decode_state(util::ByteView buf) {
  util::ByteReader r(buf);
  check_type(r, WamMsgType::kState);
  StateMsg m;
  m.view = get_tag(r);
  m.mature = r.boolean();
  m.weight = r.u32();
  m.owned = get_names(r);
  m.preferred = get_names(r);
  m.quarantined = get_names(r);
  r.expect_end();
  return m;
}

namespace {
util::Bytes encode_allocation_body(const BalanceMsg& m, WamMsgType type) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  put_tag(w, m.view);
  w.u32(static_cast<std::uint32_t>(m.allocation.size()));
  for (const auto& [group, owner] : m.allocation) {
    w.str(group);
    w.u32(owner.first);
    w.u32(owner.second);
  }
  return w.take();
}

BalanceMsg decode_allocation_body(util::ByteView buf, WamMsgType type) {
  util::ByteReader r(buf);
  check_type(r, type);
  BalanceMsg m;
  m.view = get_tag(r);
  auto n = get_count(r, 12);  // name length prefix + two owner u32s
  m.allocation.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    auto group = r.str();
    auto daemon = r.u32();
    auto client = r.u32();
    m.allocation.emplace_back(std::move(group), std::make_pair(daemon, client));
  }
  r.expect_end();
  return m;
}
}  // namespace

util::Bytes encode_balance(const BalanceMsg& m) {
  return encode_allocation_body(m, WamMsgType::kBalance);
}

util::Bytes encode_alloc(const BalanceMsg& m) {
  return encode_allocation_body(m, WamMsgType::kAlloc);
}

BalanceMsg decode_balance(util::ByteView buf) {
  return decode_allocation_body(buf, WamMsgType::kBalance);
}

BalanceMsg decode_alloc(util::ByteView buf) {
  return decode_allocation_body(buf, WamMsgType::kAlloc);
}

util::Bytes encode_arp_share(const ArpShareMsg& m) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(WamMsgType::kArpShare));
  w.u32(static_cast<std::uint32_t>(m.ips.size()));
  for (auto ip : m.ips) w.u32(ip);
  return w.take();
}

ArpShareMsg decode_arp_share(util::ByteView buf) {
  util::ByteReader r(buf);
  check_type(r, WamMsgType::kArpShare);
  ArpShareMsg m;
  auto n = get_count(r, 4);
  m.ips.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) m.ips.push_back(r.u32());
  r.expect_end();
  return m;
}

util::Bytes encode_notify(const NotifyMsg& m) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(WamMsgType::kNotify));
  put_tag(w, m.view);
  w.str(m.group);
  w.boolean(m.fenced);
  w.u32(m.cooldown_ms);
  w.str(m.reason);
  return w.take();
}

NotifyMsg decode_notify(util::ByteView buf) {
  util::ByteReader r(buf);
  check_type(r, WamMsgType::kNotify);
  NotifyMsg m;
  m.view = get_tag(r);
  m.group = r.str();
  m.fenced = r.boolean();
  m.cooldown_ms = r.u32();
  m.reason = r.str();
  r.expect_end();
  return m;
}

WamMsgType peek_type(util::ByteView buf) {
  util::ByteReader r(buf);
  auto t = r.u8();
  if (t < kWamMsgTypeFirst || t > kWamMsgTypeLast) {
    throw util::DecodeError("unknown wackamole message type " +
                            std::to_string(t));
  }
  return static_cast<WamMsgType>(t);
}

}  // namespace wam::wackamole
