#include "wackamole/wire.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

namespace wam::wackamole {

// peek_type() trusts the [kWamMsgTypeFirst, kWamMsgTypeLast] range derived
// from the sentinel; this pin breaks the build if an enumerator is ever
// appended after kAfterLast_ or the codes stop being contiguous from 1.
static_assert(kWamMsgTypeFirst == 1, "wackamole wire codes start at 1");
static_assert(kWamMsgTypeLast ==
                  static_cast<std::uint8_t>(WamMsgType::kAllocV2),
              "kAfterLast_ must stay the final WamMsgType enumerator");

namespace {

constexpr std::size_t kTagSize = 8 + 4 + 8;  // epoch, coordinator, group_seq

void put_tag(util::ByteWriter& w, const ViewTag& t) {
  w.u64(t.epoch);
  w.u32(t.coordinator);
  w.u64(t.group_seq);
}

ViewTag get_tag(util::ByteReader& r) {
  ViewTag t;
  t.epoch = r.u64();
  t.coordinator = r.u32();
  t.group_seq = r.u64();
  return t;
}

std::size_t names_size(const std::vector<std::string>& names) {
  std::size_t total = 4;  // count
  for (const auto& n : names) total += 4 + n.size();
  return total;
}

void put_names(util::ByteWriter& w, const std::vector<std::string>& names) {
  w.u32(static_cast<std::uint32_t>(names.size()));
  for (const auto& n : names) w.str(n);
}

// A count claiming more elements than the remaining bytes could possibly
// hold is rejected before reserve() turns an attacker-controlled length
// into a giant allocation (each element is at least `min_entry` bytes).
std::uint32_t get_count(util::ByteReader& r, std::size_t min_entry) {
  auto n = r.u32();
  if (n > r.remaining() / min_entry) {
    throw util::DecodeError("implausible element count " + std::to_string(n));
  }
  return n;
}

// Varint-count variant of the same guard for the v2 bodies.
std::uint64_t get_vcount(util::ByteReader& r, std::size_t min_entry) {
  auto n = r.varint();
  if (n > r.remaining() / min_entry) {
    throw util::DecodeError("implausible element count " + std::to_string(n));
  }
  return n;
}

std::vector<std::string> get_names(util::ByteReader& r) {
  auto n = get_count(r, 4);  // each name: u32 length prefix
  std::vector<std::string> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(r.str());
  return out;
}

void check_type(util::ByteReader& r, WamMsgType expected) {
  auto t = r.u8();
  if (t != static_cast<std::uint8_t>(expected)) {
    throw util::DecodeError("unexpected wackamole message type " +
                            std::to_string(t));
  }
}

}  // namespace

util::Bytes encode_state(const StateMsg& m) {
  util::ByteWriter w(1 + kTagSize + 1 + 4 + names_size(m.owned) +
                     names_size(m.preferred) + names_size(m.quarantined));
  w.u8(static_cast<std::uint8_t>(WamMsgType::kState));
  put_tag(w, m.view);
  w.boolean(m.mature);
  w.u32(m.weight);
  put_names(w, m.owned);
  put_names(w, m.preferred);
  put_names(w, m.quarantined);
  return w.take();
}

StateMsg decode_state(util::ByteView buf) {
  util::ByteReader r(buf);
  check_type(r, WamMsgType::kState);
  StateMsg m;
  m.view = get_tag(r);
  m.mature = r.boolean();
  m.weight = r.u32();
  m.owned = get_names(r);
  m.preferred = get_names(r);
  m.quarantined = get_names(r);
  r.expect_end();
  return m;
}

namespace {
util::Bytes encode_allocation_body(const BalanceMsg& m, WamMsgType type) {
  std::size_t size = 1 + kTagSize + 4;
  for (const auto& [group, owner] : m.allocation) {
    size += 4 + group.size() + 8;
  }
  util::ByteWriter w(size);
  w.u8(static_cast<std::uint8_t>(type));
  put_tag(w, m.view);
  w.u32(static_cast<std::uint32_t>(m.allocation.size()));
  for (const auto& [group, owner] : m.allocation) {
    w.str(group);
    w.u32(owner.first);
    w.u32(owner.second);
  }
  return w.take();
}

BalanceMsg decode_allocation_body(util::ByteView buf, WamMsgType type) {
  util::ByteReader r(buf);
  check_type(r, type);
  BalanceMsg m;
  m.view = get_tag(r);
  auto n = get_count(r, 12);  // name length prefix + two owner u32s
  m.allocation.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    auto group = r.str();
    auto daemon = r.u32();
    auto client = r.u32();
    m.allocation.emplace_back(std::move(group), std::make_pair(daemon, client));
  }
  r.expect_end();
  return m;
}
}  // namespace

util::Bytes encode_balance(const BalanceMsg& m) {
  return encode_allocation_body(m, WamMsgType::kBalance);
}

util::Bytes encode_alloc(const BalanceMsg& m) {
  return encode_allocation_body(m, WamMsgType::kAlloc);
}

BalanceMsg decode_balance(util::ByteView buf) {
  return decode_allocation_body(buf, WamMsgType::kBalance);
}

BalanceMsg decode_alloc(util::ByteView buf) {
  return decode_allocation_body(buf, WamMsgType::kAlloc);
}

// ---- Compact v2 bodies -------------------------------------------------
//
// STATE v2: [type][tag][mature][varint weight]
//           [varint N][N x vstr name]    <- union table, first-appearance
//           3 x ([varint count][count x varint table-index])
//
// BALANCE/ALLOC v2: [type][tag]
//           [varint M][M x (u32 daemon, u32 client)]  <- owner table
//           [varint V][V x (vstr name, varint owner-index)]
//
// GroupIds never reach the wire: they are first-intern order and differ
// between processes. The name table lists each distinct name once, in
// first appearance order over the message's lists — a pure function of
// the message CONTENT (the daemon emits its lists in name/config order),
// so the encoded bytes are identical on every member, which the
// simulation's determinism checks require.

namespace {

/// Unique name table over any number of id lists, in first-appearance
/// order, plus the varint index each id encodes as. Dedup is O(1) per
/// entry via a generation-stamped scratch array indexed by GroupId (the
/// process-wide id space is dense), so building the table costs no
/// hashing and no sort.
struct NameTable {
  std::vector<const std::string*> names;

  explicit NameTable(
      std::initializer_list<const std::vector<GroupId>*> lists) {
    thread_local std::vector<std::uint64_t> stamp;
    thread_local std::vector<std::uint32_t> slot;
    thread_local std::uint64_t generation = 0;
    ++generation;
    slot_ = &slot;
    for (const auto* list : lists) {
      for (auto id : *list) {
        if (id >= stamp.size()) {
          stamp.resize(id + 1, 0);
          slot.resize(id + 1, 0);
        }
        if (stamp[id] != generation) {
          stamp[id] = generation;
          slot[id] = static_cast<std::uint32_t>(names.size());
          const auto& name = group_name(id);
          names.push_back(&name);
          name_bytes_ += util::varint_size(name.size()) + name.size();
        }
      }
    }
  }

  [[nodiscard]] std::uint32_t index_of(GroupId id) const {
    return (*slot_)[id];  // valid: ctor stamped every id the lists hold
  }

  [[nodiscard]] std::size_t encoded_size() const {
    return util::varint_size(names.size()) + name_bytes_;
  }

  [[nodiscard]] std::size_t list_size(const std::vector<GroupId>& ids) const {
    std::size_t total = util::varint_size(ids.size());
    for (auto id : ids) total += util::varint_size(index_of(id));
    return total;
  }

  void put(util::ByteWriter& w) const {
    w.varint(names.size());
    for (const auto* n : names) w.vstr(*n);
  }

  void put_list(util::ByteWriter& w, const std::vector<GroupId>& ids) const {
    w.varint(ids.size());
    for (auto id : ids) w.varint(index_of(id));
  }

 private:
  std::vector<std::uint32_t>* slot_ = nullptr;
  std::size_t name_bytes_ = 0;
};

std::vector<GroupId> get_id_table(util::ByteReader& r) {
  auto n = get_vcount(r, 1);  // each name: >= 1-byte length prefix
  std::vector<GroupId> table;
  table.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) table.push_back(intern_group(r.vstr()));
  return table;
}

std::vector<GroupId> get_id_list(util::ByteReader& r,
                                 const std::vector<GroupId>& table) {
  auto n = get_vcount(r, 1);
  std::vector<GroupId> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    auto idx = r.varint();
    if (idx >= table.size()) {
      throw util::DecodeError("name-table index out of range: " +
                              std::to_string(idx));
    }
    out.push_back(table[idx]);
  }
  return out;
}

util::Bytes encode_allocation_body_v2(const BalanceMsgV2& m, WamMsgType type) {
  // Owner table in first-appearance order of the allocation.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> owners;
  std::unordered_map<std::uint64_t, std::uint32_t> owner_index;
  std::vector<std::uint32_t> owner_of;
  owner_of.reserve(m.allocation.size());
  std::size_t entry_bytes = 0;
  for (const auto& [id, owner] : m.allocation) {
    auto key = (static_cast<std::uint64_t>(owner.first) << 32) | owner.second;
    auto [it, inserted] =
        owner_index.emplace(key, static_cast<std::uint32_t>(owners.size()));
    if (inserted) owners.push_back(owner);
    owner_of.push_back(it->second);
    const auto& name = group_name(id);
    entry_bytes += util::varint_size(name.size()) + name.size() +
                   util::varint_size(it->second);
  }
  util::ByteWriter w(1 + kTagSize + util::varint_size(owners.size()) +
                     8 * owners.size() +
                     util::varint_size(m.allocation.size()) + entry_bytes);
  w.u8(static_cast<std::uint8_t>(type));
  put_tag(w, m.view);
  w.varint(owners.size());
  for (const auto& [daemon, client] : owners) {
    w.u32(daemon);
    w.u32(client);
  }
  w.varint(m.allocation.size());
  for (std::size_t i = 0; i < m.allocation.size(); ++i) {
    w.vstr(group_name(m.allocation[i].first));
    w.varint(owner_of[i]);
  }
  return w.take();
}

BalanceMsgV2 decode_allocation_body_v2(util::ByteView buf, WamMsgType type) {
  util::ByteReader r(buf);
  check_type(r, type);
  BalanceMsgV2 m;
  m.view = get_tag(r);
  auto n_owners = get_vcount(r, 8);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> owners;
  owners.reserve(n_owners);
  for (std::uint64_t i = 0; i < n_owners; ++i) {
    auto daemon = r.u32();
    auto client = r.u32();
    owners.emplace_back(daemon, client);
  }
  auto n_groups = get_vcount(r, 2);  // vstr prefix + owner index
  m.allocation.reserve(n_groups);
  for (std::uint64_t i = 0; i < n_groups; ++i) {
    auto id = intern_group(r.vstr());
    auto idx = r.varint();
    if (idx >= owners.size()) {
      throw util::DecodeError("owner-table index out of range: " +
                              std::to_string(idx));
    }
    m.allocation.emplace_back(id, owners[idx]);
  }
  r.expect_end();
  return m;
}

}  // namespace

util::Bytes encode_state_v2(const StateMsgV2& m) {
  NameTable table({&m.owned, &m.preferred, &m.quarantined});
  util::ByteWriter w(1 + kTagSize + 1 + util::varint_size(m.weight) +
                     table.encoded_size() + table.list_size(m.owned) +
                     table.list_size(m.preferred) +
                     table.list_size(m.quarantined));
  w.u8(static_cast<std::uint8_t>(WamMsgType::kStateV2));
  put_tag(w, m.view);
  w.boolean(m.mature);
  w.varint(m.weight);
  table.put(w);
  table.put_list(w, m.owned);
  table.put_list(w, m.preferred);
  table.put_list(w, m.quarantined);
  return w.take();
}

StateMsgV2 decode_state_v2(util::ByteView buf) {
  util::ByteReader r(buf);
  check_type(r, WamMsgType::kStateV2);
  StateMsgV2 m;
  m.view = get_tag(r);
  m.mature = r.boolean();
  // weight is declared u32; a wider varint is corruption, not data —
  // truncating it silently would desynchronize the balance arithmetic.
  auto weight = r.varint();
  if (weight > std::numeric_limits<std::uint32_t>::max()) {
    throw util::DecodeError("state v2 weight out of range: " +
                            std::to_string(weight));
  }
  m.weight = static_cast<std::uint32_t>(weight);
  auto table = get_id_table(r);
  m.owned = get_id_list(r, table);
  m.preferred = get_id_list(r, table);
  m.quarantined = get_id_list(r, table);
  r.expect_end();
  return m;
}

util::Bytes encode_balance_v2(const BalanceMsgV2& m) {
  return encode_allocation_body_v2(m, WamMsgType::kBalanceV2);
}

util::Bytes encode_alloc_v2(const BalanceMsgV2& m) {
  return encode_allocation_body_v2(m, WamMsgType::kAllocV2);
}

BalanceMsgV2 decode_balance_v2(util::ByteView buf) {
  return decode_allocation_body_v2(buf, WamMsgType::kBalanceV2);
}

BalanceMsgV2 decode_alloc_v2(util::ByteView buf) {
  return decode_allocation_body_v2(buf, WamMsgType::kAllocV2);
}

namespace {
std::vector<GroupId> intern_all(const std::vector<std::string>& names) {
  std::vector<GroupId> out;
  out.reserve(names.size());
  for (const auto& n : names) out.push_back(intern_group(n));
  return out;
}

std::vector<std::string> resolve_all(const std::vector<GroupId>& ids) {
  std::vector<std::string> out;
  out.reserve(ids.size());
  for (auto id : ids) out.push_back(group_name(id));
  return out;
}
}  // namespace

StateMsgV2 to_v2(const StateMsg& m) {
  StateMsgV2 out;
  out.view = m.view;
  out.mature = m.mature;
  out.weight = m.weight;
  out.owned = intern_all(m.owned);
  out.preferred = intern_all(m.preferred);
  out.quarantined = intern_all(m.quarantined);
  return out;
}

StateMsg to_v1(const StateMsgV2& m) {
  StateMsg out;
  out.view = m.view;
  out.mature = m.mature;
  out.weight = m.weight;
  out.owned = resolve_all(m.owned);
  out.preferred = resolve_all(m.preferred);
  out.quarantined = resolve_all(m.quarantined);
  return out;
}

BalanceMsgV2 to_v2(const BalanceMsg& m) {
  BalanceMsgV2 out;
  out.view = m.view;
  out.allocation.reserve(m.allocation.size());
  for (const auto& [group, owner] : m.allocation) {
    out.allocation.emplace_back(intern_group(group), owner);
  }
  return out;
}

BalanceMsg to_v1(const BalanceMsgV2& m) {
  BalanceMsg out;
  out.view = m.view;
  out.allocation.reserve(m.allocation.size());
  for (const auto& [id, owner] : m.allocation) {
    out.allocation.emplace_back(group_name(id), owner);
  }
  return out;
}

util::Bytes encode_arp_share(const ArpShareMsg& m) {
  util::ByteWriter w(1 + 4 + 4 * m.ips.size());
  w.u8(static_cast<std::uint8_t>(WamMsgType::kArpShare));
  w.u32(static_cast<std::uint32_t>(m.ips.size()));
  for (auto ip : m.ips) w.u32(ip);
  return w.take();
}

ArpShareMsg decode_arp_share(util::ByteView buf) {
  util::ByteReader r(buf);
  check_type(r, WamMsgType::kArpShare);
  ArpShareMsg m;
  auto n = get_count(r, 4);
  m.ips.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) m.ips.push_back(r.u32());
  r.expect_end();
  return m;
}

util::Bytes encode_notify(const NotifyMsg& m) {
  util::ByteWriter w(1 + kTagSize + 4 + m.group.size() + 1 + 4 + 4 +
                     m.reason.size());
  w.u8(static_cast<std::uint8_t>(WamMsgType::kNotify));
  put_tag(w, m.view);
  w.str(m.group);
  w.boolean(m.fenced);
  w.u32(m.cooldown_ms);
  w.str(m.reason);
  return w.take();
}

NotifyMsg decode_notify(util::ByteView buf) {
  util::ByteReader r(buf);
  check_type(r, WamMsgType::kNotify);
  NotifyMsg m;
  m.view = get_tag(r);
  m.group = r.str();
  m.fenced = r.boolean();
  m.cooldown_ms = r.u32();
  m.reason = r.str();
  r.expect_end();
  return m;
}

WamMsgType peek_type(util::ByteView buf) {
  util::ByteReader r(buf);
  auto t = r.u8();
  if (t < kWamMsgTypeFirst || t > kWamMsgTypeLast) {
    throw util::DecodeError("unknown wackamole message type " +
                            std::to_string(t));
  }
  return static_cast<WamMsgType>(t);
}

}  // namespace wam::wackamole
