// Administrative control channel (Section 4.2: "the addition of an input
// channel to allow administrative control of a cluster's behavior").
//
// AdminControl wraps a daemon with a tiny text command interface — the kind
// of thing the real Wackamole exposes over a local socket — plus a typed
// Status snapshot for programmatic use.
#pragma once

#include <string>
#include <vector>

#include "wackamole/daemon.hpp"

namespace wam::wackamole {

struct Status {
  WamState state = WamState::kIdle;
  bool mature = false;
  bool connected = false;
  bool representative = false;
  std::vector<std::string> owned;
  /// (group, owner) pairs from the synchronized table.
  std::vector<std::pair<std::string, std::string>> table;
  std::string view;
  WamCounters counters;
};

[[nodiscard]] Status snapshot(const Daemon& daemon);
[[nodiscard]] std::string render_status(const Status& status);

class AdminControl {
 public:
  explicit AdminControl(Daemon& daemon) : daemon_(daemon) {}

  /// Commands: "status", "balance", "prefer <g1,g2,...>", "prefer" (clear),
  /// "leave". Returns a human-readable response; unknown commands get a
  /// usage string.
  std::string execute(const std::string& command);

 private:
  Daemon& daemon_;
};

}  // namespace wam::wackamole
