// Administrative control channel (Section 4.2: "the addition of an input
// channel to allow administrative control of a cluster's behavior").
//
// AdminControl wraps a daemon with a tiny text command interface — the kind
// of thing the real Wackamole exposes over a local socket — plus a typed
// Status snapshot for programmatic use.
#pragma once

#include <string>
#include <vector>

#include "wackamole/daemon.hpp"

namespace wam::wackamole {

struct Status {
  WamState state = WamState::kIdle;
  bool mature = false;
  bool connected = false;
  bool representative = false;
  std::vector<std::string> owned;
  /// (group, owner) pairs from the synchronized table.
  std::vector<std::pair<std::string, std::string>> table;
  std::string view;
  WamCounters counters;
};

[[nodiscard]] Status snapshot(const Daemon& daemon);
[[nodiscard]] std::string render_status(const Status& status);
/// Machine-readable status: one deterministic JSON object (schema in
/// docs/OBSERVABILITY.md).
[[nodiscard]] std::string render_status_json(const Status& status);

class AdminControl {
 public:
  explicit AdminControl(Daemon& daemon) : daemon_(daemon) {}

  /// Commands: "status", "status-json", "metrics [prefix]", "balance",
  /// "prefer <g1,g2,...>", "prefer" (clear), "leave". Returns a
  /// human-readable (or, for the -json/metrics commands, JSON) response;
  /// unknown commands get a usage string.
  ///
  /// "metrics" exports the daemon's observability registry; when the daemon
  /// is bound this is the simulation-wide registry (optionally restricted
  /// to a subtree by `prefix`), otherwise a snapshot of the daemon's own
  /// counters under "wam".
  std::string execute(const std::string& command);

 private:
  Daemon& daemon_;
};

}  // namespace wam::wackamole
