// The Wackamole daemon: the state synchronization algorithm of Section 3.
//
// State machine (Figure 2):
//
//            VIEW_CHANGE                REALLOCATION COMPLETE
//      RUN ---------------> GATHER -----------------------------> RUN
//       |  ^                  |  ^
//       |  | BALANCE          |  | cascading VIEW_CHANGE:
//       |  | COMPLETE         +--+ clear table, resend STATE_MSG
//       |  |
//       +--+ BALANCE TIMEOUT (representative only)
//
// RUN (Algorithm 1): on VIEW_CHANGE, back up the table, multicast a
//   STATE_MSG tagged with the new view id, move to GATHER; on BALANCE_MSG,
//   Change_IPs() — acquire/release per the representative's allocation.
//
// GATHER (Algorithm 2): fold arriving STATE_MSGs into current_table,
//   resolving conflicts immediately (the claimant earlier in the membership
//   list releases the address — restoring network-level consistency as soon
//   as possible); once a STATE_MSG from every view member has arrived, run
//   the deterministic Reallocate_IPs() and return to RUN. BALANCE_MSGs are
//   ignored. A cascading VIEW_CHANGE clears the table and resends.
//
// BALANCE (Algorithm 3): triggered by a timeout in RUN at the
//   representative (first member of the uniquely ordered list); computes a
//   load- and preference-aware allocation and multicasts BALANCE_MSG. In
//   this event-driven implementation the procedure runs inside a single
//   scheduler event, which gives the atomicity the paper obtains by
//   delaying events.
//
// Maturity bootstrap (§3.4): a daemon starts immature and owns nothing; it
// matures on meeting a mature peer (STATE_MSG or BALANCE_MSG) or when the
// maturity timeout fires, at which point — if still nobody manages the
// addresses — it claims every uncovered group and announces itself.
//
// Disconnection (§4.2): losing the local GCS daemon releases every virtual
// interface at once (correctness cannot be ensured without the GCS) and
// starts a reconnect loop.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "gcs/client.hpp"
#include "obs/observability.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"
#include "wackamole/balance.hpp"
#include "wackamole/config.hpp"
#include "wackamole/ip_manager.hpp"
#include "wackamole/vip_table.hpp"
#include "wackamole/wire.hpp"

namespace wam::wackamole {

enum class WamState { kIdle, kRun, kGather };

const char* wam_state_name(WamState s);

/// Per-daemon statistics. A thin view: once the daemon is bound to an
/// obs::Observability, every field reads and writes a registry cell under
/// "wam/<scope>/<field>" — the legacy accessors and the metric queries
/// always agree.
struct WamCounters {
  obs::Counter view_changes;
  obs::Counter state_msgs_sent;
  obs::Counter state_msgs_received;
  obs::Counter stale_msgs_ignored;
  obs::Counter reallocations;
  obs::Counter conflicts_dropped;  // claims *we* released on conflict
  obs::Counter acquires;
  obs::Counter releases;
  obs::Counter balance_rounds;    // representative decisions multicast
  obs::Counter balance_applied;   // BALANCE_MSGs executed
  obs::Counter maturity_timeouts;
  obs::Counter reconnect_attempts;
  obs::Counter disconnects;
  obs::Counter acquire_failures;   // OS-op acquire attempts that failed
  obs::Counter acquire_retries;    // backoff retries scheduled
  obs::Counter release_retries;    // failed releases re-scheduled
  obs::Counter arp_conflicts;      // duplicate-address probes that fired
  obs::Counter groups_fenced;      // retry budget exhausted -> NOTIFY fence
  obs::Counter groups_unfenced;    // cooldown probe succeeded -> NOTIFY clear
  obs::Counter notifies_sent;
  obs::Counter notifies_received;
  obs::Counter corruptions_detected;  // audits that found corrupted state
  obs::Counter self_heals;            // heal actions taken on detection
  obs::Counter resyncs;               // leave+rejoin rebuilds executed

  /// Back every field with a registry cell named "<scope>/<field>".
  void bind(obs::MetricRegistry& registry, const std::string& scope);
  /// Copy current values into `registry` (snapshot for unbound daemons).
  void export_into(obs::MetricRegistry& registry,
                   const std::string& scope) const;

  /// Enumerate (name, field) pairs — the single source of truth for the
  /// field names used by bind(), export_into() and the JSON renderers.
  template <class Self, class Fn>
  static void for_each(Self& self, Fn&& fn) {
    fn("view_changes", self.view_changes);
    fn("state_msgs_sent", self.state_msgs_sent);
    fn("state_msgs_received", self.state_msgs_received);
    fn("stale_msgs_ignored", self.stale_msgs_ignored);
    fn("reallocations", self.reallocations);
    fn("conflicts_dropped", self.conflicts_dropped);
    fn("acquires", self.acquires);
    fn("releases", self.releases);
    fn("balance_rounds", self.balance_rounds);
    fn("balance_applied", self.balance_applied);
    fn("maturity_timeouts", self.maturity_timeouts);
    fn("reconnect_attempts", self.reconnect_attempts);
    fn("disconnects", self.disconnects);
    fn("acquire_failures", self.acquire_failures);
    fn("acquire_retries", self.acquire_retries);
    fn("release_retries", self.release_retries);
    fn("arp_conflicts", self.arp_conflicts);
    fn("groups_fenced", self.groups_fenced);
    fn("groups_unfenced", self.groups_unfenced);
    fn("notifies_sent", self.notifies_sent);
    fn("notifies_received", self.notifies_received);
    fn("corruptions_detected", self.corruptions_detected);
    fn("self_heals", self.self_heals);
    fn("resyncs", self.resyncs);
  }
};

class Daemon {
 public:
  Daemon(sim::Scheduler& sched, Config config, gcs::Daemon& gcs,
         IpManager& ip_manager, sim::Log* log = nullptr);
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Route metrics and structured events through a shared observability
  /// context; `scope` prefixes every metric name and stamps every event
  /// source (convention: "wam/s<N>"). Call before start().
  void bind_observability(obs::Observability& obs, std::string scope);
  [[nodiscard]] obs::Observability* observability() const { return obs_; }
  [[nodiscard]] const std::string& obs_scope() const { return obs_scope_; }

  /// Connect to the local GCS daemon and join the wackamole group.
  void start();
  /// Voluntary departure (§6's graceful-leave experiment): leave the group
  /// so peers reallocate within milliseconds, then release all addresses.
  void graceful_shutdown();
  [[nodiscard]] bool running() const { return running_; }

  // ---- Introspection ----
  [[nodiscard]] WamState state() const { return state_; }
  /// Virtual time of the last Figure-2 state-machine edge (simulation start
  /// if none yet). Lets liveness oracles report how long a daemon has been
  /// stuck outside RUN.
  [[nodiscard]] sim::TimePoint state_since() const { return state_since_; }
  /// Time spent in the current state as of `now`.
  [[nodiscard]] sim::Duration time_in_state(sim::TimePoint now) const {
    return now - state_since_;
  }
  [[nodiscard]] bool mature() const { return mature_; }
  [[nodiscard]] bool connected() const { return client_.connected(); }
  [[nodiscard]] const VipTable& table() const { return table_; }
  [[nodiscard]] const std::optional<gcs::GroupView>& view() const {
    return view_;
  }
  /// The cached tag messages are stamped/filtered with; the StateAuditor
  /// cross-checks it against ViewTag::of(*view()).
  [[nodiscard]] const ViewTag& view_tag() const { return view_tag_; }
  [[nodiscard]] std::vector<std::string> owned() const;
  /// Groups this daemon has self-fenced (NOTIFY protocol): their OS-level
  /// acquisition kept failing and a peer is expected to cover them. Sorted.
  [[nodiscard]] std::vector<std::string> quarantined_groups() const;
  [[nodiscard]] bool quarantined(const std::string& group) const {
    return quarantined_.count(group) > 0;
  }
  [[nodiscard]] const WamCounters& counters() const { return counters_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] bool is_representative() const;
  [[nodiscard]] std::optional<gcs::MemberId> self() const;

  // ---- Administrative controls (§4.2's input channel) ----
  /// Force a balance round now (no-op unless RUN + representative).
  bool trigger_balance();
  /// Replace the preference list; takes effect from the next STATE_MSG.
  void set_preferences(std::vector<std::string> preferred);
  /// Provide the local ARP-cache contents for the periodic ARP share
  /// (router application); pass nullptr to disable.
  void set_arp_share_source(std::function<std::vector<std::uint32_t>()> src);

  // ---- Chaos backdoors (state-corruption injection; test/campaign use) ----
  // Each models one transient-corruption class and returns whether it was
  // applied: all are no-ops unless the daemon is running, connected and
  // out of IDLE — the states where corrupted state could do damage.
  /// Overwrite the owner of the index-th configured group with a member
  /// that is not in any view, bypassing the table's guards.
  bool chaos_corrupt_vip_owner(int index);
  /// Desync the table's member index for the index-th configured group.
  bool chaos_corrupt_index(int index);
  /// Bit-flip the cached view tag (a stale incarnation: every in-view
  /// message starts looking stale, and ours look stale to the peers).
  bool chaos_corrupt_view_tag();

 private:
  void on_membership(const gcs::GroupView& gv);
  void on_message(const gcs::GroupMessage& gm);
  void on_disconnect();
  void handle_state_msg(const gcs::MemberId& sender, const StateMsgV2& m);
  void handle_balance_msg(const BalanceMsgV2& m);
  void handle_notify(const gcs::MemberId& sender, const NotifyMsg& m);
  void finish_gather();
  void send_state_msg();
  /// Multicast `table` as a BALANCE (or ALLOC) message in group-name order,
  /// honouring Config::compact_wire. Returns the number of entries sent.
  std::size_t multicast_allocation(const VipTable& table, bool alloc);
  void send_notify(const std::string& group, bool fenced,
                   const std::string& reason);
  void acquire_group(const std::string& name);
  void release_group(const std::string& name);
  void release_everything(const char* cause);
  // ---- Fallible enforcement: retry / backoff / self-fence ----
  /// Delay before the n-th retry (n = failed attempts so far): exponential
  /// from Config::acquire_backoff, capped, with multiplicative jitter.
  [[nodiscard]] sim::Duration backoff_delay(int failed_attempts);
  void schedule_acquire_retry(const std::string& name,
                              const OsOpResult& result);
  void acquire_retry_tick(const std::string& name);
  void schedule_release_retry(const std::string& name);
  void release_retry_tick(const std::string& name);
  void fence_group(const std::string& name, const std::string& reason);
  void arm_cooldown(const std::string& name);
  void cooldown_tick(const std::string& name);
  /// Run Reallocate_IPs() over the current holes and act on the result
  /// (deterministically everywhere, or via ALLOC from the representative).
  void reallocate_holes(const char* mode);
  void cancel_pending_acquires();
  [[nodiscard]] std::vector<MemberState> member_states() const;
  void arm_balance_timer();
  void balance_tick();
  bool run_balance();
  void arm_maturity_timer();
  void maturity_tick();
  void arm_arp_share_timer();
  void arp_share_tick();
  void arm_announce_timer();
  void announce_tick();
  void reconnect_tick();
  // ---- Self-stabilization: audit / heal / resync ----
  /// Where an audit runs from; decides the heal policy (see run_audit).
  enum class AuditPoint { kTimer, kBoundary, kPreWipe, kShutdown };
  void arm_audit_timer();
  void audit_tick();
  void run_audit(AuditPoint point);
  void schedule_resync(const std::string& why);
  void resync_tick();
  void become_mature(const char* how);
  /// Switch the Figure-2 state machine, publishing a StateTransition event.
  void enter_state(WamState next);
  void emit(obs::EventType type,
            std::vector<std::pair<std::string, std::string>> fields = {});

  sim::Scheduler& sched_;
  Config config_;
  gcs::Daemon& gcs_;
  IpManager& ip_manager_;
  sim::Logger log_;
  gcs::Client client_;

  bool running_ = false;
  WamState state_ = WamState::kIdle;
  sim::TimePoint state_since_{};
  bool mature_ = false;

  std::optional<gcs::GroupView> view_;
  ViewTag view_tag_;
  VipTable table_;
  /// The configured VIP set in dense positional form (built once — the
  /// group list is fixed for the daemon's lifetime). All protocol-layer
  /// work runs on interned ids/positions; names reappear only at the
  /// ip_manager/log boundary.
  GroupSet groups_;
  std::vector<GroupId> config_ids_;     // vip_groups order
  std::vector<GroupId> preferred_ids_;  // config_.preferred order
  std::set<gcs::MemberId> received_;    // STATE_MSG senders this GATHER
  struct PeerInfo {
    bool mature = false;
    int weight = 1;
    std::set<GroupId> preferred;
    std::set<GroupId> quarantined;  // learned via NOTIFY / STATE_MSG
  };
  std::map<gcs::MemberId, PeerInfo> info_;

  /// Per-group OS-op retry state (acquire and release paths).
  struct PendingOp {
    int attempts = 0;  // failed attempts so far
    sim::TimerHandle timer;
  };
  std::map<std::string, PendingOp> pending_acquires_;
  std::map<std::string, PendingOp> pending_releases_;
  std::set<std::string> quarantined_;  // groups we self-fenced
  std::map<std::string, sim::TimerHandle> cooldown_timers_;
  sim::Rng rng_;  // backoff jitter (seeded from the GCS daemon identity)

  sim::TimerHandle balance_timer_;
  sim::TimerHandle maturity_timer_;
  sim::TimerHandle arp_share_timer_;
  sim::TimerHandle announce_timer_;
  sim::TimerHandle reconnect_timer_;
  sim::TimerHandle audit_timer_;
  sim::TimerHandle resync_timer_;
  bool in_audit_ = false;       // reentrancy guard: heals multicast
  bool resync_pending_ = false;
  int resync_attempts_ = 0;     // drives the capped exponential backoff
  sim::TimePoint last_resync_at_{};
  std::function<std::vector<std::uint32_t>()> arp_share_source_;

  WamCounters counters_;
  obs::Observability* obs_ = nullptr;
  std::string obs_scope_;
};

}  // namespace wam::wackamole
