// Process-wide VIP-group-name interning.
//
// The protocol layer identifies VIP groups by dense u32 GroupIds instead of
// strings: VipTable keys its owner map by id, the allocation procedures run
// on dense arrays, and the compact wire codecs decode names straight into
// ids. String names survive only at the boundaries — config parsing,
// logging/describe output, and the per-message name tables of the wire
// format (ids are process-local and never leave the process).
//
// Ids are assigned in first-intern order, so they are NOT stable across
// runs or processes: every deterministic decision (allocation order, wire
// bytes, sorted output) orders by name, never by id. chaos::ParallelRunner
// shares this table across simulation worker threads; util::Interner is
// thread-safe and the id<->name mapping is append-only.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/interner.hpp"

namespace wam::wackamole {

using GroupId = std::uint32_t;

/// The process-wide table. Exposed for size diagnostics and tests.
util::Interner& group_interner();

/// Id of `name`, interning it on first sight.
inline GroupId intern_group(std::string_view name) {
  return group_interner().intern(name);
}

/// Id of `name` if some config/message has interned it already. A miss
/// means no VipTable can possibly have an entry for it.
inline std::optional<GroupId> find_group_id(std::string_view name) {
  return group_interner().find(name);
}

/// The name behind `id` (stable reference, O(1)).
inline const std::string& group_name(GroupId id) {
  return group_interner().name_of(id);
}

}  // namespace wam::wackamole
