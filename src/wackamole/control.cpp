#include "wackamole/control.hpp"

#include <sstream>

#include "obs/json.hpp"
#include "util/assert.hpp"

namespace wam::wackamole {

Status snapshot(const Daemon& daemon) {
  Status s;
  s.state = daemon.state();
  s.mature = daemon.mature();
  s.connected = daemon.connected();
  s.representative = daemon.is_representative();
  s.owned = daemon.owned();
  for (const auto& [group, owner] : daemon.table().owners()) {
    s.table.emplace_back(group, owner.to_string());
  }
  if (daemon.view()) s.view = daemon.view()->to_string();
  s.counters = daemon.counters();
  return s;
}

std::string render_status(const Status& s) {
  std::ostringstream out;
  out << "state: " << wam_state_name(s.state)
      << (s.mature ? " (mature)" : " (immature)")
      << (s.connected ? "" : " [disconnected]")
      << (s.representative ? " [representative]" : "") << "\n";
  out << "view: " << (s.view.empty() ? "-" : s.view) << "\n";
  out << "owned:";
  if (s.owned.empty()) out << " (none)";
  for (const auto& g : s.owned) out << " " << g;
  out << "\n";
  out << "table:\n";
  if (s.table.empty()) out << "  (empty)\n";
  for (const auto& [group, owner] : s.table) {
    out << "  " << group << " -> " << owner << "\n";
  }
  out << "counters: views=" << s.counters.view_changes
      << " reallocs=" << s.counters.reallocations
      << " acquires=" << s.counters.acquires
      << " releases=" << s.counters.releases
      << " conflicts=" << s.counters.conflicts_dropped
      << " balances=" << s.counters.balance_applied << "\n";
  return out.str();
}

std::string render_status_json(const Status& s) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("state").value(wam_state_name(s.state));
  w.key("mature").value(s.mature);
  w.key("connected").value(s.connected);
  w.key("representative").value(s.representative);
  w.key("view").value(s.view);
  w.key("owned").begin_array();
  for (const auto& g : s.owned) w.value(g);
  w.end_array();
  w.key("table").begin_object();
  for (const auto& [group, owner] : s.table) w.key(group).value(owner);
  w.end_object();
  w.key("counters").begin_object();
  WamCounters::for_each(s.counters,
                        [&](const char* name, const obs::Counter& c) {
                          w.key(name).value(c.value());
                        });
  w.end_object();
  w.end_object();
  return w.str() + "\n";
}

std::string AdminControl::execute(const std::string& command) {
  std::istringstream in(command);
  std::string verb;
  in >> verb;
  if (verb == "status") {
    return render_status(snapshot(daemon_));
  }
  if (verb == "status-json") {
    return render_status_json(snapshot(daemon_));
  }
  if (verb == "metrics") {
    std::string prefix;
    in >> prefix;
    if (auto* obs = daemon_.observability()) {
      return obs->registry.to_json(prefix) + "\n";
    }
    // Unbound daemon: snapshot its own counters into a throwaway registry
    // so the command keeps one output format either way.
    obs::MetricRegistry tmp;
    daemon_.counters().export_into(tmp, "wam");
    return tmp.to_json(prefix) + "\n";
  }
  if (verb == "balance") {
    return daemon_.trigger_balance()
               ? "balance broadcast\n"
               : "no balance needed (or not RUN/representative)\n";
  }
  if (verb == "prefer") {
    std::string list;
    in >> list;
    std::vector<std::string> prefs;
    std::istringstream items(list);
    std::string item;
    while (std::getline(items, item, ',')) {
      if (!item.empty()) prefs.push_back(item);
    }
    try {
      daemon_.set_preferences(prefs);
    } catch (const util::ContractViolation&) {
      return "error: unknown VIP group in preference list\n";
    }
    return "preferences updated (" + std::to_string(prefs.size()) + ")\n";
  }
  if (verb == "leave") {
    daemon_.graceful_shutdown();
    return "left the cluster\n";
  }
  return "usage: status | status-json | metrics [prefix] | balance | "
         "prefer [g1,g2,...] | leave\n";
}

}  // namespace wam::wackamole
