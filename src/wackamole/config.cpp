#include "wackamole/config.hpp"

#include <algorithm>
#include <set>

#include "util/assert.hpp"

namespace wam::wackamole {

std::vector<std::string> Config::group_names() const {
  std::vector<std::string> names;
  names.reserve(vip_groups.size());
  for (const auto& g : vip_groups) names.push_back(g.name);
  std::sort(names.begin(), names.end());
  return names;
}

const VipGroup* Config::find_group(const std::string& name) const {
  for (const auto& g : vip_groups) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

void Config::validate() const {
  std::set<std::string> names;
  std::set<net::Ipv4Address> addresses;
  for (const auto& g : vip_groups) {
    WAM_EXPECTS(!g.name.empty());
    WAM_EXPECTS(!g.addresses.empty());
    WAM_EXPECTS(names.insert(g.name).second);
    for (const auto& [ip, ifindex] : g.addresses) {
      WAM_EXPECTS(ifindex >= 0);
      WAM_EXPECTS(addresses.insert(ip).second);
    }
  }
  WAM_EXPECTS(!group.empty());
  WAM_EXPECTS(weight >= 1);
  WAM_EXPECTS(acquire_retry_limit >= 1);
  WAM_EXPECTS(acquire_backoff > sim::kZero);
  WAM_EXPECTS(acquire_backoff_max >= acquire_backoff);
  WAM_EXPECTS(backoff_jitter >= 0.0 && backoff_jitter < 1.0);
  WAM_EXPECTS(quarantine_cooldown > sim::kZero);
  for (const auto& pref : preferred) {
    WAM_EXPECTS(names.count(pref) > 0);
  }
}

Config Config::web_cluster(const std::vector<net::Ipv4Address>& vips,
                           int ifindex) {
  Config c;
  for (const auto& vip : vips) {
    c.vip_groups.push_back(VipGroup{vip.to_string(), {{vip, ifindex}}});
  }
  return c;
}

}  // namespace wam::wackamole
