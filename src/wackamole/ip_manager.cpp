#include "wackamole/ip_manager.hpp"

namespace wam::wackamole {

void SimIpManager::set_router(int ifindex, net::Ipv4Address router_ip) {
  routers_[ifindex] = router_ip;
}

void SimIpManager::bind_observability(obs::Observability& obs,
                                      std::string scope) {
  obs_ = &obs;
  obs_scope_ = std::move(scope);
  update_held_gauge();
}

void SimIpManager::update_held_gauge() {
  if (obs_ == nullptr) return;
  obs_->registry.gauge(obs_scope_ + "/held_groups") =
      static_cast<double>(held_.size());
}

void SimIpManager::add_notify_target(net::Ipv4Address ip) {
  notify_targets_[ip] = host_.scheduler().now();
}

void SimIpManager::expire_notify_targets() {
  if (notify_ttl_ == sim::kZero) return;
  auto now = host_.scheduler().now();
  for (auto it = notify_targets_.begin(); it != notify_targets_.end();) {
    if (now - it->second > notify_ttl_) {
      it = notify_targets_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<net::Ipv4Address> SimIpManager::notify_targets() const {
  std::vector<net::Ipv4Address> out;
  out.reserve(notify_targets_.size());
  for (const auto& [ip, seen] : notify_targets_) out.push_back(ip);
  return out;
}

void SimIpManager::acquire(const VipGroup& group) {
  for (const auto& [ip, ifindex] : group.addresses) {
    host_.add_alias(ifindex, ip);
  }
  held_.insert(group.name);
  update_held_gauge();
  announce(group);
}

void SimIpManager::release(const VipGroup& group) {
  for (const auto& [ip, ifindex] : group.addresses) {
    host_.remove_alias(ifindex, ip);
  }
  held_.erase(group.name);
  update_held_gauge();
}

void SimIpManager::announce(const VipGroup& group) {
  if (held_.count(group.name) == 0) return;
  expire_notify_targets();
  if (obs_ != nullptr) {
    obs_->emit(host_.scheduler().now(), obs::EventType::kArpAnnounce,
               obs_scope_,
               {{"group", group.name},
                {"addresses", std::to_string(group.addresses.size())}});
  }
  for (const auto& [ip, ifindex] : group.addresses) {
    // Broadcast gratuitous ARP updates every host that already resolved the
    // address...
    host_.send_gratuitous_arp(ifindex, ip);
    // ...but the router may hold a stale entry that must flip NOW, and only
    // a unicast reply is guaranteed to (re)write its cache (§5.1).
    auto router = routers_.find(ifindex);
    if (router != routers_.end()) {
      host_.send_spoofed_reply(ifindex, ip, router->second);
    }
    // Router application: notify every host known to have resolved us.
    for (const auto& [target, seen] : notify_targets_) {
      if (host_.network(ifindex).contains(target)) {
        host_.send_spoofed_reply(ifindex, ip, target);
      }
    }
  }
}

bool SimIpManager::holds(const std::string& group) const {
  return held_.count(group) > 0;
}

void RecordingIpManager::acquire(const VipGroup& group) {
  ops_.push_back("acquire " + group.name);
  held_.insert(group.name);
}

void RecordingIpManager::release(const VipGroup& group) {
  ops_.push_back("release " + group.name);
  held_.erase(group.name);
}

void RecordingIpManager::announce(const VipGroup& group) {
  ops_.push_back("announce " + group.name);
}

}  // namespace wam::wackamole
