#include "wackamole/ip_manager.hpp"

namespace wam::wackamole {

const char* os_op_status_name(OsOpStatus s) {
  switch (s) {
    case OsOpStatus::kOk:
      return "ok";
    case OsOpStatus::kFailed:
      return "failed";
    case OsOpStatus::kConflict:
      return "conflict";
  }
  return "?";
}

void SimIpManager::set_router(int ifindex, net::Ipv4Address router_ip) {
  routers_[ifindex] = router_ip;
}

void SimIpManager::bind_observability(obs::Observability& obs,
                                      std::string scope) {
  obs_ = &obs;
  obs_scope_ = std::move(scope);
  update_held_gauge();
}

void SimIpManager::update_held_gauge() {
  if (obs_ == nullptr) return;
  obs_->registry.gauge(obs_scope_ + "/held_groups") =
      static_cast<double>(held_.size());
}

void SimIpManager::add_notify_target(net::Ipv4Address ip) {
  notify_targets_[ip] = host_.scheduler().now();
}

void SimIpManager::expire_notify_targets() {
  if (notify_ttl_ == sim::kZero) return;
  auto now = host_.scheduler().now();
  for (auto it = notify_targets_.begin(); it != notify_targets_.end();) {
    if (now - it->second > notify_ttl_) {
      it = notify_targets_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<net::Ipv4Address> SimIpManager::notify_targets() const {
  std::vector<net::Ipv4Address> out;
  out.reserve(notify_targets_.size());
  for (const auto& [ip, seen] : notify_targets_) out.push_back(ip);
  return out;
}

OsOpResult SimIpManager::acquire(const VipGroup& group) {
  // Duplicate-address detection: probe every address before binding any.
  // A live holder elsewhere in our network component means binding would
  // split client traffic between two MACs; report kConflict and let the
  // protocol's ResolveConflicts() ordering decide who backs off.
  if (held_.count(group.name) == 0) {
    for (const auto& [ip, ifindex] : group.addresses) {
      if (host_.probe_address(ifindex, ip)) {
        if (obs_ != nullptr) {
          obs_->emit(host_.scheduler().now(), obs::EventType::kArpConflict,
                     obs_scope_,
                     {{"group", group.name}, {"address", ip.to_string()}});
        }
        return OsOpResult::conflict("address " + ip.to_string() +
                                    " already in use");
      }
    }
  }
  for (const auto& [ip, ifindex] : group.addresses) {
    host_.add_alias(ifindex, ip);
  }
  held_.insert(group.name);
  update_held_gauge();
  announce(group);
  return OsOpResult::success();
}

OsOpResult SimIpManager::release(const VipGroup& group) {
  for (const auto& [ip, ifindex] : group.addresses) {
    host_.remove_alias(ifindex, ip);
  }
  held_.erase(group.name);
  update_held_gauge();
  return OsOpResult::success();
}

OsOpResult SimIpManager::announce(const VipGroup& group) {
  if (held_.count(group.name) == 0) return OsOpResult::success();
  expire_notify_targets();
  if (obs_ != nullptr) {
    obs_->emit(host_.scheduler().now(), obs::EventType::kArpAnnounce,
               obs_scope_,
               {{"group", group.name},
                {"addresses", std::to_string(group.addresses.size())}});
  }
  for (const auto& [ip, ifindex] : group.addresses) {
    // Broadcast gratuitous ARP updates every host that already resolved the
    // address...
    host_.send_gratuitous_arp(ifindex, ip);
    // ...but the router may hold a stale entry that must flip NOW, and only
    // a unicast reply is guaranteed to (re)write its cache (§5.1).
    auto router = routers_.find(ifindex);
    if (router != routers_.end()) {
      host_.send_spoofed_reply(ifindex, ip, router->second);
    }
    // Router application: notify every host known to have resolved us.
    // Spoofing a target does NOT refresh its TTL clock — only an explicit
    // add_notify_target() re-registration does.
    for (const auto& [target, seen] : notify_targets_) {
      if (host_.network(ifindex).contains(target)) {
        host_.send_spoofed_reply(ifindex, ip, target);
      }
    }
  }
  return OsOpResult::success();
}

bool SimIpManager::holds(const std::string& group) const {
  return held_.count(group) > 0;
}

void FaultyIpManager::set_sticky_group(const std::string& group, bool on) {
  if (on) {
    sticky_groups_.insert(group);
  } else {
    sticky_groups_.erase(group);
  }
}

void FaultyIpManager::heal() {
  acquire_fail_p_ = 0.0;
  release_fail_p_ = 0.0;
  announce_fail_p_ = 0.0;
  sticky_all_ = false;
  arp_lose_ = false;
  sticky_groups_.clear();
  fail_after_ = 0;
}

bool FaultyIpManager::any_fault_armed() const {
  return acquire_fail_p_ > 0.0 || release_fail_p_ > 0.0 ||
         announce_fail_p_ > 0.0 || sticky_all_ || arp_lose_ ||
         !sticky_groups_.empty() || fail_after_ != 0;
}

OsOpResult FaultyIpManager::injected(const char* op, const std::string& group,
                                     const char* why) {
  ++failures_injected_;
  return OsOpResult::failed(std::string("injected ") + why + ": " + op + " " +
                            group);
}

OsOpResult FaultyIpManager::acquire(const VipGroup& group) {
  if (sticky(group.name)) return injected("acquire", group.name, "sticky");
  if (fail_after_ != 0 && --fail_after_ == 0) {
    return injected("acquire", group.name, "scheduled fault");
  }
  if (acquire_fail_p_ > 0.0 && rng_.chance(acquire_fail_p_)) {
    return injected("acquire", group.name, "random fault");
  }
  return inner_.acquire(group);
}

OsOpResult FaultyIpManager::release(const VipGroup& group) {
  if (release_fail_p_ > 0.0 && rng_.chance(release_fail_p_)) {
    return injected("release", group.name, "random fault");
  }
  return inner_.release(group);
}

OsOpResult FaultyIpManager::announce(const VipGroup& group) {
  // Sticky state fails announce too: the daemon leans on this to probe
  // enforcement health at quarantine cooldown without binding anything.
  if (sticky(group.name)) return injected("announce", group.name, "sticky");
  if (announce_fail_p_ > 0.0 && rng_.chance(announce_fail_p_)) {
    return injected("announce", group.name, "random fault");
  }
  if (arp_lose_) {
    // The syscall "succeeds"; the gratuitous ARPs just never hit the wire.
    ++failures_injected_;
    return OsOpResult::success();
  }
  return inner_.announce(group);
}

OsOpResult RecordingIpManager::next_result() {
  if (scripted_.empty()) return OsOpResult::success();
  auto r = std::move(scripted_.front());
  scripted_.pop_front();
  return r;
}

OsOpResult RecordingIpManager::acquire(const VipGroup& group) {
  auto r = next_result();
  ops_.push_back("acquire " + group.name +
                 (r.ok() ? "" : std::string(" [") +
                                    os_op_status_name(r.status) + "]"));
  if (r.ok()) held_.insert(group.name);
  return r;
}

OsOpResult RecordingIpManager::release(const VipGroup& group) {
  auto r = next_result();
  ops_.push_back("release " + group.name +
                 (r.ok() ? "" : std::string(" [") +
                                    os_op_status_name(r.status) + "]"));
  if (r.ok()) held_.erase(group.name);
  return r;
}

OsOpResult RecordingIpManager::announce(const VipGroup& group) {
  auto r = next_result();
  ops_.push_back("announce " + group.name +
                 (r.ok() ? "" : std::string(" [") +
                                    os_op_status_name(r.status) + "]"));
  return r;
}

}  // namespace wam::wackamole
