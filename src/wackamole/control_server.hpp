// Remote administrative control channel (§4.2).
//
// The released Wackamole exposes a local control socket ("wackatrl"); the
// simulated equivalent is a UDP request/response endpoint on the daemon's
// host. Requests are the same text commands AdminControl accepts
// ("status", "balance", "prefer g1,g2", "leave"); every request gets a
// one-datagram text reply. ControlClient is the matching wackatrl-style
// caller for use from any other simulated host.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "wackamole/control.hpp"

namespace wam::wackamole {

constexpr std::uint16_t kControlPort = 4804;

class ControlServer {
 public:
  ControlServer(net::Host& host, Daemon& daemon,
                std::uint16_t port = kControlPort);
  ~ControlServer() { stop(); }
  ControlServer(const ControlServer&) = delete;
  ControlServer& operator=(const ControlServer&) = delete;

  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::uint64_t requests_served() const { return served_; }

 private:
  net::Host& host_;
  AdminControl control_;
  std::uint16_t port_;
  bool running_ = false;
  std::uint64_t served_ = 0;
};

/// Fire a command at a remote daemon's control port; the callback receives
/// the text reply (not invoked if the reply is lost — UDP semantics).
class ControlClient {
 public:
  ControlClient(net::Host& host, std::uint16_t local_port = 40100);
  ~ControlClient();
  ControlClient(const ControlClient&) = delete;
  ControlClient& operator=(const ControlClient&) = delete;

  using ReplyFn = std::function<void(const std::string&)>;
  void send(net::Ipv4Address daemon_host, const std::string& command,
            ReplyFn on_reply, std::uint16_t port = kControlPort);

 private:
  net::Host& host_;
  std::uint16_t local_port_;
  ReplyFn pending_;
};

}  // namespace wam::wackamole
