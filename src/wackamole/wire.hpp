// Wackamole's own wire messages, carried as payloads of GCS multicasts.
//
// STATE_MSG and BALANCE_MSG are the two messages of Algorithms 1-3. Both
// carry the identifier of the group view they were initiated in so that
// receivers can discard messages from superseded views (Algorithm 2 line 1:
// "receive STATE_MSG with current view id"). ARP_SHARE is the router
// application's periodic ARP-knowledge gossip (Section 5.2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gcs/types.hpp"
#include "util/bytes.hpp"
#include "wackamole/group_ids.hpp"

namespace wam::wackamole {

/// Identity of one group view: (daemon view id, per-group sequence number).
struct ViewTag {
  std::uint64_t epoch = 0;
  std::uint32_t coordinator = 0;
  std::uint64_t group_seq = 0;

  static ViewTag of(const gcs::GroupView& v) {
    return ViewTag{v.daemon_view.epoch, v.daemon_view.coordinator.value(),
                   v.group_seq};
  }
  friend auto operator<=>(const ViewTag&, const ViewTag&) = default;
  [[nodiscard]] std::string to_string() const {
    return std::to_string(epoch) + "." + std::to_string(group_seq);
  }
};

enum class WamMsgType : std::uint8_t {
  kState = 1,
  kBalance = 2,
  kArpShare = 3,
  /// Representative-driven mode (§4.2): the full allocation computed by the
  /// representative at the end of GATHER and imposed on the other daemons.
  /// Same body as BALANCE_MSG.
  kAlloc = 4,
  /// NOTIFY: "I hold the allocation for <group> but cannot enforce it" —
  /// sent when a daemon exhausts its OS-op retry budget and self-fences, or
  /// (fenced = false) when its quarantine cooldown clears. Peers treat a
  /// fence as a targeted trigger to re-run Reallocate_IPs() excluding the
  /// fenced member for that group.
  kNotify = 5,
  /// Compact v2 encodings (wire format v2): a per-message name table sent
  /// once plus varint counts and table indices, instead of repeating
  /// length-prefixed strings. New CODES rather than a version field inside
  /// the old ones: a v1-only decoder's peek_type() range ended at kNotify,
  /// so v2 traffic rejects there with a clean DecodeError instead of being
  /// misparsed.
  kStateV2 = 6,
  kBalanceV2 = 7,
  kAllocV2 = 8,
  /// Sentinel: one past the last valid wire code. Keep it the final
  /// enumerator — peek_type() derives its validity range from it, so a new
  /// message type added above extends the range automatically.
  kAfterLast_,
};

/// First and last codes accepted on the wire, derived from the enum.
inline constexpr std::uint8_t kWamMsgTypeFirst =
    static_cast<std::uint8_t>(WamMsgType::kState);
inline constexpr std::uint8_t kWamMsgTypeLast =
    static_cast<std::uint8_t>(WamMsgType::kAfterLast_) - 1;

/// STATE_MSG: the sender's local knowledge, sent on every view change.
struct StateMsg {
  ViewTag view;
  bool mature = false;
  std::uint32_t weight = 1;            // capacity weight for balancing
  std::vector<std::string> owned;      // VIP groups currently covered
  std::vector<std::string> preferred;  // startup preferences (§3.4)
  /// Groups the sender has self-fenced (NOTIFY protocol): carried in
  /// STATE_MSG so quarantine survives view changes.
  std::vector<std::string> quarantined;
};

/// BALANCE_MSG: the representative's full re-allocation decision.
struct BalanceMsg {
  ViewTag view;
  /// group name -> (owner daemon ip, owner client id).
  std::vector<std::pair<std::string, std::pair<std::uint32_t, std::uint32_t>>>
      allocation;
};

/// ARP_SHARE: IPs present in the sender host's ARP cache — the peers that
/// must be notified when a virtual address moves (router application).
struct ArpShareMsg {
  std::vector<std::uint32_t> ips;
};

/// NOTIFY: self-fence (fenced = true) or quarantine-clear (fenced = false)
/// for one VIP group. `cooldown_ms` advertises how long the sender will sit
/// quarantined before probing again; `reason` is the OS-op failure detail.
struct NotifyMsg {
  ViewTag view;
  std::string group;
  bool fenced = true;
  std::uint32_t cooldown_ms = 0;
  std::string reason;
};

/// STATE_MSG in interned form — what the daemon's fast path works with.
/// The wire encoding (kStateV2) carries a name table once (each distinct
/// name of the three lists, in first-appearance order — a pure function
/// of the message content, so the bytes are cross-process deterministic)
/// plus varint table indices; GroupIds themselves never leave the
/// process.
struct StateMsgV2 {
  ViewTag view;
  bool mature = false;
  std::uint32_t weight = 1;
  std::vector<GroupId> owned;
  std::vector<GroupId> preferred;
  std::vector<GroupId> quarantined;
};

/// BALANCE_MSG / ALLOC in interned form. The wire encoding (kBalanceV2 /
/// kAllocV2) dedupes owners into a table — with V groups and M members an
/// entry shrinks from name+8 bytes to name+~1 byte.
struct BalanceMsgV2 {
  ViewTag view;
  /// group id -> (owner daemon ip, owner client id), in the sender's
  /// order (the daemon sends name-sorted).
  std::vector<std::pair<GroupId, std::pair<std::uint32_t, std::uint32_t>>>
      allocation;
};

[[nodiscard]] util::Bytes encode_state(const StateMsg& m);
[[nodiscard]] util::Bytes encode_balance(const BalanceMsg& m);
[[nodiscard]] util::Bytes encode_alloc(const BalanceMsg& m);
[[nodiscard]] util::Bytes encode_arp_share(const ArpShareMsg& m);
[[nodiscard]] util::Bytes encode_notify(const NotifyMsg& m);

[[nodiscard]] util::Bytes encode_state_v2(const StateMsgV2& m);
[[nodiscard]] util::Bytes encode_balance_v2(const BalanceMsgV2& m);
[[nodiscard]] util::Bytes encode_alloc_v2(const BalanceMsgV2& m);

/// Peek the type byte; throws util::DecodeError on empty/unknown input.
[[nodiscard]] WamMsgType peek_type(util::ByteView buf);
[[nodiscard]] StateMsg decode_state(util::ByteView buf);
[[nodiscard]] BalanceMsg decode_balance(util::ByteView buf);
[[nodiscard]] BalanceMsg decode_alloc(util::ByteView buf);
[[nodiscard]] ArpShareMsg decode_arp_share(util::ByteView buf);
[[nodiscard]] NotifyMsg decode_notify(util::ByteView buf);
[[nodiscard]] StateMsgV2 decode_state_v2(util::ByteView buf);
[[nodiscard]] BalanceMsgV2 decode_balance_v2(util::ByteView buf);
[[nodiscard]] BalanceMsgV2 decode_alloc_v2(util::ByteView buf);

/// v1 <-> v2 bridges (the string boundary). to_v2 interns; to_v1 resolves
/// ids back to names. Round-tripping preserves content and order.
[[nodiscard]] StateMsgV2 to_v2(const StateMsg& m);
[[nodiscard]] StateMsg to_v1(const StateMsgV2& m);
[[nodiscard]] BalanceMsgV2 to_v2(const BalanceMsg& m);
[[nodiscard]] BalanceMsg to_v1(const BalanceMsgV2& m);

}  // namespace wam::wackamole
