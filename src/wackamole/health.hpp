// Application/NIC health monitoring (Section 4.2).
//
// "Wackamole does not provide failure detection of any of the applications
// that may be relying on its management, e.g. HTTP servers. ... a possible
// solution is to perform run-time checks on the availability of the NIC or
// of the specific applications that use Wackamole, and trigger the virtual
// IP migration when a failure is detected."
//
// HealthMonitor implements that solution: it runs a set of pluggable
// checks on a fixed period; after `fail_threshold` consecutive failures it
// forces the local Wackamole daemon out of the cluster (a graceful group
// leave, so the survivors re-cover its addresses within milliseconds —
// far faster than waiting for clients to notice a dead application), and
// after `recover_threshold` consecutive successes it rejoins.
//
// Two ready-made checks are provided:
//   * UdpServiceCheck — probes a local UDP service (e.g. the echo server /
//     an HTTP front end) and fails when it stops answering;
//   * InterfaceCheck — fails when a monitored NIC reports down (covers the
//     "Spread on a separate NIC" deployment where the service NIC can die
//     without the GCS noticing, §4.2).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/host.hpp"
#include "sim/log.hpp"
#include "wackamole/daemon.hpp"

namespace wam::wackamole {

/// One health check: returns true when healthy. Checks may be asynchronous
/// internally (UdpServiceCheck is); poll() reports the latest verdict.
class HealthCheck {
 public:
  virtual ~HealthCheck() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Kick off the next round (send a probe, sample a flag, ...).
  virtual void run() = 0;
  /// Verdict of the PREVIOUS round.
  [[nodiscard]] virtual bool healthy() const = 0;
};

/// Probes a UDP service on this host via the loopback of the simulated
/// stack: a request is "answered" when the service's socket handler exists
/// and the service replies before the next round.
///
/// Every probe carries a round sequence number which an echo-style service
/// returns in its reply; only a reply tagged with the CURRENT round counts.
/// Without the tag, a single stale in-flight reply at death — or a service
/// that answers slower than the check interval — would satisfy the next
/// round and mask a dead service forever.
class UdpServiceCheck : public HealthCheck {
 public:
  UdpServiceCheck(net::Host& host, net::Ipv4Address service_ip,
                  std::uint16_t service_port,
                  std::uint16_t probe_port = 39000);
  ~UdpServiceCheck() override;

  [[nodiscard]] std::string name() const override;
  void run() override;
  [[nodiscard]] bool healthy() const override { return reply_seen_; }

 private:
  net::Host& host_;
  net::Ipv4Address service_ip_;
  std::uint16_t service_port_;
  std::uint16_t probe_port_;
  bool reply_seen_ = true;  // optimistic until the first probe completes
  bool awaiting_ = false;
  std::uint32_t seq_ = 0;      // round number of the probe in flight
  util::Bytes probe_;          // payload of the current round's probe
};

/// Fails when the monitored interface is administratively/physically down.
class InterfaceCheck : public HealthCheck {
 public:
  InterfaceCheck(net::Host& host, int ifindex)
      : host_(host), ifindex_(ifindex) {}

  [[nodiscard]] std::string name() const override {
    return "nic:if" + std::to_string(ifindex_);
  }
  void run() override { up_ = host_.interface_up(ifindex_); }
  [[nodiscard]] bool healthy() const override { return up_; }

 private:
  net::Host& host_;
  int ifindex_;
  bool up_ = true;
};

struct HealthMonitorConfig {
  sim::Duration check_interval = sim::seconds(1.0);
  int fail_threshold = 3;     // consecutive failures before withdrawing
  int recover_threshold = 2;  // consecutive successes before rejoining
};

class HealthMonitor {
 public:
  HealthMonitor(sim::Scheduler& sched, Daemon& daemon,
                HealthMonitorConfig config, sim::Log* log = nullptr);
  ~HealthMonitor() { stop(); }
  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  void add_check(std::unique_ptr<HealthCheck> check);
  void start();
  void stop();

  [[nodiscard]] bool withdrawn() const { return withdrawn_; }
  [[nodiscard]] int consecutive_failures() const { return failures_; }
  [[nodiscard]] std::uint64_t withdrawals() const { return withdrawals_; }
  [[nodiscard]] std::uint64_t rejoins() const { return rejoins_; }
  /// Name of the check that caused the last withdrawal ("" if none).
  [[nodiscard]] const std::string& last_failed_check() const {
    return last_failed_;
  }

 private:
  void tick();

  sim::Scheduler& sched_;
  Daemon& daemon_;
  HealthMonitorConfig config_;
  sim::Logger log_;
  std::vector<std::unique_ptr<HealthCheck>> checks_;
  bool running_ = false;
  bool withdrawn_ = false;
  int failures_ = 0;
  int successes_ = 0;
  std::uint64_t withdrawals_ = 0;
  std::uint64_t rejoins_ = 0;
  std::string last_failed_;
  sim::TimerHandle timer_;
};

}  // namespace wam::wackamole
