#include "wackamole/balance_legacy.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace wam::wackamole {

namespace {

std::vector<const MemberInfo*> mature_members(
    const std::vector<MemberInfo>& members) {
  std::vector<const MemberInfo*> out;
  for (const auto& m : members) {
    if (m.mature) out.push_back(&m);
  }
  return out;
}

}  // namespace

std::map<std::string, gcs::MemberId> legacy_reallocate_ips(
    const std::vector<std::string>& all_groups, const VipTable& table,
    const std::vector<MemberInfo>& members) {
  std::map<std::string, gcs::MemberId> assignments;
  auto mature = mature_members(members);
  if (mature.empty()) return assignments;

  // Working loads: current table plus assignments made in this pass.
  std::map<gcs::MemberId, std::size_t> load;
  for (const auto& m : mature) load[m->id] = table.load_of(m->id);

  auto holes = table.uncovered(all_groups);
  for (const auto& group : holes) {
    // Score: (prefers the group, weight-normalized load, membership
    // order). `mature` is already in membership order, so a strict '<'
    // comparison keeps the earlier member on ties. Weight-normalized load
    // comparison uses cross-multiplication to stay in exact integers.
    auto better = [&](const MemberInfo* a, const MemberInfo* b) {
      bool pa = a->preferred.count(group) > 0;
      bool pb = b->preferred.count(group) > 0;
      if (pa != pb) return pa;
      auto la = static_cast<long>(load[a->id]) * b->weight;
      auto lb = static_cast<long>(load[b->id]) * a->weight;
      return la < lb;
    };
    // A quarantine for ANY group marks the member's enforcement layer
    // suspect: each new assignment it fails burns a retry budget and rips
    // another coverage hole, so quarantine-free members take new work
    // first. Then members merely fenced for OTHER groups, and only when
    // every mature member is fenced for this very group is it forced onto
    // one anyway (someone must keep retrying rather than leave the address
    // permanently dark).
    auto pick = [&](int strictness) {
      const MemberInfo* best = nullptr;
      for (const auto* candidate : mature) {
        if (strictness >= 2 && !candidate->quarantined.empty()) continue;
        if (strictness >= 1 && candidate->quarantined.count(group) > 0) {
          continue;
        }
        if (best == nullptr || better(candidate, best)) best = candidate;
      }
      return best;
    };
    const auto* best = pick(2);
    if (best == nullptr) best = pick(1);
    if (best == nullptr) best = pick(0);  // forced coverage
    assignments.emplace(group, best->id);
    ++load[best->id];
  }
  return assignments;
}

std::map<std::string, gcs::MemberId> legacy_balance_ips(
    const std::vector<std::string>& all_groups, const VipTable& table,
    const std::vector<MemberInfo>& members) {
  std::map<std::string, gcs::MemberId> allocation;
  auto mature = mature_members(members);
  if (mature.empty()) return allocation;

  // Target loads proportional to capacity weights: floor(n*w/W) each,
  // the remainder distributed by largest fractional part (ties broken by
  // membership order) — the classic largest-remainder method, fully
  // deterministic.
  std::size_t n = all_groups.size();
  long total_weight = 0;
  for (const auto* mi : mature) total_weight += mi->weight;
  // Weights come off the wire; a fleet whose mature weights sum to zero
  // (or negative) must degrade to equal shares, not divide by zero. The
  // fast path carries the identical guard.
  const bool equal_shares = total_weight <= 0;
  if (equal_shares) total_weight = static_cast<long>(mature.size());
  std::map<gcs::MemberId, std::size_t> target;
  std::vector<std::pair<long, std::size_t>> remainders;  // (-rem, index)
  std::size_t assigned_total = 0;
  for (std::size_t i = 0; i < mature.size(); ++i) {
    long num = static_cast<long>(n) * (equal_shares ? 1 : mature[i]->weight);
    auto base = static_cast<std::size_t>(num / total_weight);
    target[mature[i]->id] = base;
    assigned_total += base;
    remainders.emplace_back(-(num % total_weight), i);
  }
  std::sort(remainders.begin(), remainders.end());
  for (std::size_t k = 0; assigned_total < n; ++k) {
    ++target[mature[remainders[k % remainders.size()].second]->id];
    ++assigned_total;
  }

  // Start from the current assignment, evicting from overloaded members.
  // Non-preferred groups are evicted before preferred ones, in reverse
  // name order, so the retained set is deterministic.
  std::map<gcs::MemberId, std::size_t> load;
  std::vector<std::string> homeless;
  std::map<gcs::MemberId, std::vector<std::string>> held;
  for (const auto& group : all_groups) {
    auto owner = table.owner(group);
    // The current owner keeps the group only if it is mature and not
    // quarantined for it — a fenced holder cannot enforce the binding, so
    // the group re-enters placement like any other homeless group.
    bool owner_mature =
        owner && std::any_of(mature.begin(), mature.end(),
                             [&](const MemberInfo* mi) {
                               return mi->id == *owner &&
                                      mi->quarantined.count(group) == 0;
                             });
    if (owner_mature) {
      held[*owner].push_back(group);
    } else {
      homeless.push_back(group);
    }
  }
  // Eviction order when a member is over target: give up groups that some
  // OTHER member prefers first, keep own preferred groups longest.
  auto preferred_by_other = [&](const gcs::MemberId& holder,
                                const std::string& group) {
    for (const auto* mi : mature) {
      if (mi->id == holder) continue;
      if (mi->preferred.count(group) > 0) return true;
    }
    return false;
  };
  for (const auto* mi : mature) {
    auto& groups = held[mi->id];
    // Keep rank: own-preferred (0) < neutral (1) < other-preferred (2).
    auto keep_rank = [&](const std::string& g) {
      if (mi->preferred.count(g) > 0) return 0;
      return preferred_by_other(mi->id, g) ? 2 : 1;
    };
    std::sort(groups.begin(), groups.end(),
              [&](const std::string& a, const std::string& b) {
                int ra = keep_rank(a);
                int rb = keep_rank(b);
                if (ra != rb) return ra < rb;
                return a < b;
              });
    while (groups.size() > target[mi->id]) {
      homeless.push_back(groups.back());
      groups.pop_back();
    }
    for (const auto& g : groups) allocation.emplace(g, mi->id);
    load[mi->id] = groups.size();
  }

  // Place the homeless groups: preference first, then most free capacity,
  // then membership order.
  std::sort(homeless.begin(), homeless.end());
  for (const auto& group : homeless) {
    auto key = [&](const MemberInfo* mi) {
      return std::make_pair(mi->preferred.count(group) == 0, load[mi->id]);
    };
    auto place = [&](bool respect_target, int strictness) {
      const MemberInfo* best = nullptr;
      for (const auto* candidate : mature) {
        if (respect_target && load[candidate->id] >= target[candidate->id]) {
          continue;
        }
        if (strictness >= 2 && !candidate->quarantined.empty()) continue;
        if (strictness >= 1 && candidate->quarantined.count(group) > 0) {
          continue;
        }
        if (best == nullptr || key(candidate) < key(best)) best = candidate;
      }
      return best;
    };
    // A member quarantined for ANY group has a suspect enforcement layer:
    // handing it fresh work guarantees another retry-budget burn and a
    // transient coverage hole when it fences. An over-target healthy
    // member is merely imbalanced, so overload one of those first — the
    // suspect member only receives a group when no quarantine-free member
    // exists at all.
    const auto* best = place(true, 2);
    if (best == nullptr) best = place(false, 2);
    if (best == nullptr) best = place(true, 1);
    if (best == nullptr) best = place(false, 1);
    // Forced coverage: every mature member is fenced for this group.
    if (best == nullptr) best = place(false, 0);
    WAM_ASSERT(best != nullptr);  // targets sum to n by construction
    allocation.emplace(group, best->id);
    ++load[best->id];
  }
  WAM_ENSURES(allocation.size() == all_groups.size());
  return allocation;
}

}  // namespace wam::wackamole
