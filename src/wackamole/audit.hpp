// Self-stabilization, detection side: cheap invariant checks over a
// wackamole daemon's hot state. A transient corruption — a stray write
// into the VIP table, a desynced member index, a stale view incarnation —
// would otherwise violate Properties 1/2 silently and forever; the
// auditor turns it into a finding the daemon can heal from (rebuild,
// fence, or a full resync from peers' STATE_MSGs — see daemon.cpp).
//
// Checks are read-only and O(V): suitable for a periodic timer and for
// protocol-message boundaries.
#pragma once

#include <string>
#include <vector>

#include "wackamole/group_ids.hpp"

namespace wam::wackamole {

class Daemon;

enum class AuditCheck {
  /// VipTable's incremental XOR checksum disagrees with its entries.
  kTableChecksum,
  /// VipTable's member->groups index disagrees with the owner map.
  kTableIndex,
  /// Cached ViewTag disagrees with the installed group view (a stale or
  /// bit-flipped incarnation: every in-view message would look stale).
  kViewTag,
  /// A table entry names an owner that is not a member of the view.
  kOwnerNotInView,
  /// The quarantine set names a group that is not configured.
  kQuarantineUnknown,
};

const char* audit_check_name(AuditCheck c);

struct AuditFinding {
  AuditCheck check;
  std::string group;  // offending group name, when one is identifiable
  std::string detail;
};

class StateAuditor {
 public:
  /// Sweep every invariant; returns all findings (empty = clean). Pure
  /// read — healing is the daemon's decision, not the auditor's.
  [[nodiscard]] static std::vector<AuditFinding> audit(const Daemon& daemon);
};

}  // namespace wam::wackamole
