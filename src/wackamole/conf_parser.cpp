#include "wackamole/conf_parser.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "util/assert.hpp"

namespace wam::wackamole {

namespace {

[[noreturn]] void fail(int line_no, const std::string& line,
                       const std::string& why) {
  throw ConfigError("wackamole.conf line " + std::to_string(line_no) + " ('" +
                    line + "'): " + why);
}

std::string trim(const std::string& s) {
  auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// "30s" / "250ms" / "0s" -> Duration.
sim::Duration parse_duration(const std::string& token, int line_no,
                             const std::string& line) {
  std::size_t pos = 0;
  double value = 0;
  try {
    value = std::stod(token, &pos);
  } catch (const std::exception&) {
    fail(line_no, line, "bad duration '" + token + "'");
  }
  auto unit = token.substr(pos);
  if (unit == "s") return sim::seconds(value);
  if (unit == "ms") return sim::milliseconds(static_cast<std::int64_t>(value));
  fail(line_no, line, "duration needs an 's' or 'ms' suffix: '" + token + "'");
}

/// "if0: 10.0.0.100/32" -> (address, ifindex). The /prefix is optional.
std::pair<net::Ipv4Address, int> parse_vif(const std::string& token,
                                           int line_no,
                                           const std::string& line) {
  auto colon = token.find(':');
  if (colon == std::string::npos || token.rfind("if", 0) != 0) {
    fail(line_no, line, "expected ifN:a.b.c.d[/32], got '" + token + "'");
  }
  int ifindex = 0;
  try {
    ifindex = std::stoi(token.substr(2, colon - 2));
  } catch (const std::exception&) {
    fail(line_no, line, "bad interface index in '" + token + "'");
  }
  auto addr_text = token.substr(colon + 1);
  auto slash = addr_text.find('/');
  if (slash != std::string::npos) addr_text.resize(slash);
  auto ip = net::Ipv4Address::parse(addr_text);
  if (!ip) fail(line_no, line, "bad address '" + addr_text + "'");
  return {*ip, ifindex};
}

/// Parse one "{ if0: a.b.c.d ... }" body into a group's addresses.
void parse_group_body(const std::string& body, VipGroup& group, int line_no,
                      const std::string& line) {
  std::istringstream words(body);
  std::string token;
  std::string pending;
  while (words >> token) {
    // Re-join "if0:" " 10.0.0.1" splits: accept both "if0:addr" and
    // "if0: addr" forms.
    if (!pending.empty()) {
      token = pending + token;
      pending.clear();
    }
    if (token.back() == ':') {
      pending = token;
      continue;
    }
    group.addresses.push_back(parse_vif(token, line_no, line));
  }
  if (!pending.empty()) fail(line_no, line, "dangling interface prefix");
  if (group.addresses.empty()) fail(line_no, line, "empty VIP group");
}

}  // namespace

Config parse_config(const std::string& text) {
  Config config;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  bool in_vifs = false;
  std::string prefer_csv;

  while (std::getline(in, line)) {
    ++line_no;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    auto stripped = trim(line);
    if (stripped.empty()) continue;

    if (in_vifs) {
      if (stripped == "}") {
        in_vifs = false;
        continue;
      }
      // Either "{ ... }" or "name { ... }".
      auto open = stripped.find('{');
      auto close = stripped.rfind('}');
      if (open == std::string::npos || close == std::string::npos ||
          close < open) {
        fail(line_no, line, "expected '[name] { ifN:addr ... }'");
      }
      VipGroup group;
      group.name = trim(stripped.substr(0, open));
      parse_group_body(stripped.substr(open + 1, close - open - 1), group,
                       line_no, line);
      if (group.name.empty()) {
        group.name = group.addresses.front().first.to_string();
      }
      config.vip_groups.push_back(std::move(group));
      continue;
    }

    if (lower(stripped).rfind("virtualinterfaces", 0) == 0) {
      if (stripped.find('{') == std::string::npos) {
        fail(line_no, line, "VirtualInterfaces needs an opening '{'");
      }
      in_vifs = true;
      continue;
    }

    auto eq = stripped.find('=');
    if (eq == std::string::npos) {
      fail(line_no, line, "expected 'Key = value'");
    }
    auto key = lower(trim(stripped.substr(0, eq)));
    auto value = trim(stripped.substr(eq + 1));
    if (value.empty()) fail(line_no, line, "missing value");

    if (key == "group") {
      config.group = value;
    } else if (key == "mature") {
      config.maturity_timeout = parse_duration(value, line_no, line);
      config.start_mature = config.maturity_timeout == sim::kZero;
    } else if (key == "balance") {
      config.balance_timeout = parse_duration(value, line_no, line);
    } else if (key == "spreadretryinterval") {
      config.reconnect_interval = parse_duration(value, line_no, line);
    } else if (key == "arpshare") {
      config.arp_share_interval = parse_duration(value, line_no, line);
    } else if (key == "announce") {
      config.announce_interval = parse_duration(value, line_no, line);
    } else if (key == "representativedriven") {
      auto v = lower(value);
      if (v == "yes" || v == "true" || v == "on") {
        config.representative_driven = true;
      } else if (v == "no" || v == "false" || v == "off") {
        config.representative_driven = false;
      } else {
        fail(line_no, line, "RepresentativeDriven must be yes/no");
      }
    } else if (key == "weight") {
      try {
        config.weight = std::stoi(value);
      } catch (const std::exception&) {
        fail(line_no, line, "Weight must be an integer");
      }
    } else if (key == "prefer") {
      prefer_csv = value;
    } else {
      fail(line_no, line, "unknown key '" + key + "'");
    }
  }
  if (in_vifs) {
    throw ConfigError("wackamole.conf: unterminated VirtualInterfaces block");
  }

  // Preferences reference group names, so resolve them last.
  if (!prefer_csv.empty() && lower(prefer_csv) != "none") {
    std::istringstream items(prefer_csv);
    std::string item;
    while (std::getline(items, item, ',')) {
      auto name = trim(item);
      if (!name.empty()) config.preferred.push_back(name);
    }
  }

  try {
    config.validate();
  } catch (const util::ContractViolation& e) {
    throw ConfigError(std::string("wackamole.conf: invalid configuration: ") +
                      e.what());
  }
  return config;
}

std::string render_config(const Config& config) {
  std::ostringstream out;
  out << "Group = " << config.group << "\n";
  out << "Mature = " << sim::to_seconds(config.maturity_timeout) << "s\n";
  out << "Balance = " << sim::to_seconds(config.balance_timeout) << "s\n";
  out << "SpreadRetryInterval = "
      << sim::to_seconds(config.reconnect_interval) << "s\n";
  out << "ArpShare = " << sim::to_seconds(config.arp_share_interval) << "s\n";
  out << "Announce = " << sim::to_seconds(config.announce_interval) << "s\n";
  out << "RepresentativeDriven = "
      << (config.representative_driven ? "yes" : "no") << "\n";
  out << "Weight = " << config.weight << "\n";
  if (!config.preferred.empty()) {
    out << "Prefer = ";
    for (std::size_t i = 0; i < config.preferred.size(); ++i) {
      if (i) out << ", ";
      out << config.preferred[i];
    }
    out << "\n";
  }
  out << "VirtualInterfaces {\n";
  for (const auto& group : config.vip_groups) {
    out << "  " << group.name << " {";
    for (const auto& [ip, ifindex] : group.addresses) {
      out << " if" << ifindex << ":" << ip.to_string() << "/32";
    }
    out << " }\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace wam::wackamole
