#include "wackamole/conf_parser.hpp"

#include <sstream>

#include "util/assert.hpp"
#include "util/conf.hpp"

namespace wam::wackamole {

namespace {

namespace conf = util::conf;

[[noreturn]] void fail(int line_no, const std::string& line,
                       const std::string& why) {
  throw ConfigError("wackamole.conf line " + std::to_string(line_no) + " ('" +
                    line + "'): " + why);
}

/// "if0: 10.0.0.100/32" -> (address, ifindex). The /prefix is optional.
std::pair<net::Ipv4Address, int> parse_vif(const std::string& token,
                                           int line_no,
                                           const std::string& line) {
  auto colon = token.find(':');
  if (colon == std::string::npos || token.rfind("if", 0) != 0) {
    fail(line_no, line, "expected ifN:a.b.c.d[/32], got '" + token + "'");
  }
  int ifindex = 0;
  try {
    ifindex = std::stoi(token.substr(2, colon - 2));
  } catch (const std::exception&) {
    fail(line_no, line, "bad interface index in '" + token + "'");
  }
  auto addr_text = token.substr(colon + 1);
  auto slash = addr_text.find('/');
  if (slash != std::string::npos) addr_text.resize(slash);
  auto ip = net::Ipv4Address::parse(addr_text);
  if (!ip) fail(line_no, line, "bad address '" + addr_text + "'");
  return {*ip, ifindex};
}

/// Parse one "{ if0: a.b.c.d ... }" body into a group's addresses.
void parse_group_body(const std::string& body, VipGroup& group, int line_no,
                      const std::string& line) {
  std::istringstream words(body);
  std::string token;
  std::string pending;
  while (words >> token) {
    // Re-join "if0:" " 10.0.0.1" splits: accept both "if0:addr" and
    // "if0: addr" forms.
    if (!pending.empty()) {
      token = pending + token;
      pending.clear();
    }
    if (token.back() == ':') {
      pending = token;
      continue;
    }
    group.addresses.push_back(parse_vif(token, line_no, line));
  }
  if (!pending.empty()) fail(line_no, line, "dangling interface prefix");
  if (group.addresses.empty()) fail(line_no, line, "empty VIP group");
}

}  // namespace

Config parse_config(const std::string& text) {
  Config config;
  bool in_vifs = false;
  std::string prefer_csv;

  conf::for_each_line(text, [&](int line_no, const std::string& stripped,
                                const std::string& line) {
    if (in_vifs) {
      if (stripped == "}") {
        in_vifs = false;
        return;
      }
      // Either "{ ... }" or "name { ... }".
      auto open = stripped.find('{');
      auto close = stripped.rfind('}');
      if (open == std::string::npos || close == std::string::npos ||
          close < open) {
        fail(line_no, line, "expected '[name] { ifN:addr ... }'");
      }
      VipGroup group;
      group.name = conf::trim(stripped.substr(0, open));
      parse_group_body(stripped.substr(open + 1, close - open - 1), group,
                       line_no, line);
      if (group.name.empty()) {
        group.name = group.addresses.front().first.to_string();
      }
      config.vip_groups.push_back(std::move(group));
      return;
    }

    if (conf::lower(stripped).rfind("virtualinterfaces", 0) == 0) {
      if (stripped.find('{') == std::string::npos) {
        fail(line_no, line, "VirtualInterfaces needs an opening '{'");
      }
      in_vifs = true;
      return;
    }

    auto [key, value] = conf::split_key_value(stripped, line_no, line, fail);

    if (key == "group") {
      config.group = value;
    } else if (key == "mature") {
      config.maturity_timeout =
          conf::parse_duration(value, line_no, line, fail);
      config.start_mature = config.maturity_timeout == sim::kZero;
    } else if (key == "balance") {
      config.balance_timeout = conf::parse_duration(value, line_no, line, fail);
    } else if (key == "spreadretryinterval") {
      config.reconnect_interval =
          conf::parse_duration(value, line_no, line, fail);
    } else if (key == "arpshare") {
      config.arp_share_interval =
          conf::parse_duration(value, line_no, line, fail);
    } else if (key == "announce") {
      config.announce_interval =
          conf::parse_duration(value, line_no, line, fail);
    } else if (key == "representativedriven") {
      config.representative_driven =
          conf::parse_bool(value, line_no, line, [&](int n, const auto& l,
                                                     const auto&) {
            fail(n, l, "RepresentativeDriven must be yes/no");
          });
    } else if (key == "compactwire") {
      config.compact_wire =
          conf::parse_bool(value, line_no, line, [&](int n, const auto& l,
                                                     const auto&) {
            fail(n, l, "CompactWire must be yes/no");
          });
    } else if (key == "acquireretries") {
      config.acquire_retry_limit =
          conf::parse_int(value, line_no, line, [&](int n, const auto& l,
                                                    const auto&) {
            fail(n, l, "AcquireRetries must be an integer");
          });
    } else if (key == "acquirebackoff") {
      config.acquire_backoff =
          conf::parse_duration(value, line_no, line, fail);
    } else if (key == "acquirebackoffmax") {
      config.acquire_backoff_max =
          conf::parse_duration(value, line_no, line, fail);
    } else if (key == "quarantinecooldown") {
      config.quarantine_cooldown =
          conf::parse_duration(value, line_no, line, fail);
    } else if (key == "backoffjitter") {
      try {
        config.backoff_jitter = std::stod(value);
      } catch (const std::exception&) {
        fail(line_no, line, "BackoffJitter must be a number");
      }
      if (config.backoff_jitter < 0.0 || config.backoff_jitter >= 1.0) {
        fail(line_no, line, "BackoffJitter must be in [0, 1)");
      }
    } else if (key == "weight") {
      config.weight =
          conf::parse_int(value, line_no, line, [&](int n, const auto& l,
                                                    const auto&) {
            fail(n, l, "Weight must be an integer");
          });
    } else if (key == "prefer") {
      prefer_csv = value;
    } else {
      fail(line_no, line, "unknown key '" + key + "'");
    }
  });
  if (in_vifs) {
    throw ConfigError("wackamole.conf: unterminated VirtualInterfaces block");
  }

  // Preferences reference group names, so resolve them last.
  if (!prefer_csv.empty() && conf::lower(prefer_csv) != "none") {
    std::istringstream items(prefer_csv);
    std::string item;
    while (std::getline(items, item, ',')) {
      auto name = conf::trim(item);
      if (!name.empty()) config.preferred.push_back(name);
    }
  }

  try {
    config.validate();
  } catch (const util::ContractViolation& e) {
    throw ConfigError(std::string("wackamole.conf: invalid configuration: ") +
                      e.what());
  }
  return config;
}

std::string render_config(const Config& config) {
  std::ostringstream out;
  out << "Group = " << config.group << "\n";
  out << "Mature = " << sim::to_seconds(config.maturity_timeout) << "s\n";
  out << "Balance = " << sim::to_seconds(config.balance_timeout) << "s\n";
  out << "SpreadRetryInterval = "
      << sim::to_seconds(config.reconnect_interval) << "s\n";
  out << "ArpShare = " << sim::to_seconds(config.arp_share_interval) << "s\n";
  out << "Announce = " << sim::to_seconds(config.announce_interval) << "s\n";
  out << "RepresentativeDriven = "
      << (config.representative_driven ? "yes" : "no") << "\n";
  out << "CompactWire = " << (config.compact_wire ? "yes" : "no") << "\n";
  out << "AcquireRetries = " << config.acquire_retry_limit << "\n";
  out << "AcquireBackoff = " << sim::to_seconds(config.acquire_backoff)
      << "s\n";
  out << "AcquireBackoffMax = " << sim::to_seconds(config.acquire_backoff_max)
      << "s\n";
  out << "QuarantineCooldown = "
      << sim::to_seconds(config.quarantine_cooldown) << "s\n";
  out << "BackoffJitter = " << config.backoff_jitter << "\n";
  out << "Weight = " << config.weight << "\n";
  if (!config.preferred.empty()) {
    out << "Prefer = ";
    for (std::size_t i = 0; i < config.preferred.size(); ++i) {
      if (i) out << ", ";
      out << config.preferred[i];
    }
    out << "\n";
  }
  out << "VirtualInterfaces {\n";
  for (const auto& group : config.vip_groups) {
    out << "  " << group.name << " {";
    for (const auto& [ip, ifindex] : group.addresses) {
      out << " if" << ifindex << ":" << ip.to_string() << "/32";
    }
    out << " }\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace wam::wackamole
