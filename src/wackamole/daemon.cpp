#include "wackamole/daemon.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "wackamole/audit.hpp"

namespace wam::wackamole {

const char* wam_state_name(WamState s) {
  switch (s) {
    case WamState::kIdle: return "IDLE";
    case WamState::kRun: return "RUN";
    case WamState::kGather: return "GATHER";
  }
  return "?";
}

void WamCounters::bind(obs::MetricRegistry& registry,
                       const std::string& scope) {
  for_each(*this, [&](const char* name, obs::Counter& c) {
    registry.bind(c, scope + "/" + name);
  });
}

void WamCounters::export_into(obs::MetricRegistry& registry,
                              const std::string& scope) const {
  for_each(*this, [&](const char* name, const obs::Counter& c) {
    registry.counter(scope + "/" + name) = c.value();
  });
}

Daemon::Daemon(sim::Scheduler& sched, Config config, gcs::Daemon& gcs,
               IpManager& ip_manager, sim::Log* log)
    : sched_(sched),
      config_(std::move(config)),
      gcs_(gcs),
      ip_manager_(ip_manager),
      log_(log, "wam/" + gcs.id().to_string()),
      client_("wackamole",
              gcs::ClientCallbacks{
                  [this](const gcs::GroupView& v) { on_membership(v); },
                  [this](const gcs::GroupMessage& m) { on_message(m); },
                  [this] { on_disconnect(); }}),
      groups_(config_.group_names()),
      rng_(gcs.id().value()) {
  config_.validate();
  config_ids_.reserve(config_.vip_groups.size());
  for (const auto& g : config_.vip_groups) {
    config_ids_.push_back(intern_group(g.name));
  }
  preferred_ids_.reserve(config_.preferred.size());
  for (const auto& name : config_.preferred) {
    preferred_ids_.push_back(intern_group(name));
  }
}

void Daemon::bind_observability(obs::Observability& obs, std::string scope) {
  obs_ = &obs;
  obs_scope_ = std::move(scope);
  counters_.bind(obs.registry, obs_scope_);
}

void Daemon::emit(obs::EventType type,
                  std::vector<std::pair<std::string, std::string>> fields) {
  if (obs_ == nullptr) return;
  obs_->emit(sched_.now(), type, obs_scope_, std::move(fields));
}

void Daemon::enter_state(WamState next) {
  if (state_ == next) return;
  WamState from = state_;
  state_ = next;
  state_since_ = sched_.now();
  emit(obs::EventType::kStateTransition,
       {{"from", wam_state_name(from)}, {"to", wam_state_name(next)}});
}

void Daemon::start() {
  WAM_EXPECTS(!running_);
  running_ = true;
  mature_ = config_.start_mature;
  state_ = WamState::kIdle;
  state_since_ = sched_.now();
  if (client_.connect(gcs_)) {
    client_.join(config_.group);
  } else {
    reconnect_timer_ = sched_.schedule(config_.reconnect_interval,
                                       [this] { reconnect_tick(); });
  }
  if (!mature_) arm_maturity_timer();
  arm_arp_share_timer();
  arm_announce_timer();
  arm_audit_timer();
  log_.info("wackamole starting (%s)", mature_ ? "mature" : "immature");
}

void Daemon::graceful_shutdown() {
  if (!running_) return;
  // Detect-only sweep: corruption present at shutdown is still reported
  // (the final campaign checkpoint reads the counters), but the state is
  // about to be discarded, so nothing is healed.
  run_audit(AuditPoint::kShutdown);
  running_ = false;
  balance_timer_.cancel();
  maturity_timer_.cancel();
  arp_share_timer_.cancel();
  announce_timer_.cancel();
  reconnect_timer_.cancel();
  audit_timer_.cancel();
  resync_timer_.cancel();
  resync_pending_ = false;
  cancel_pending_acquires();
  for (auto& [name, p] : pending_releases_) p.timer.cancel();
  pending_releases_.clear();
  for (auto& [name, t] : cooldown_timers_) t.cancel();
  cooldown_timers_.clear();
  if (client_.connected()) {
    // Leaving the group is a lightweight membership change: the survivors
    // reallocate within milliseconds, long before any fault detector would
    // have noticed us missing.
    client_.leave(config_.group);
  }
  release_everything("graceful_shutdown");
  if (client_.connected()) client_.disconnect();
  enter_state(WamState::kIdle);
  view_.reset();
  table_.clear();
  log_.info("graceful shutdown complete");
}

std::vector<std::string> Daemon::owned() const {
  std::vector<std::string> out;
  for (const auto& g : config_.vip_groups) {
    if (ip_manager_.holds(g.name)) out.push_back(g.name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> Daemon::quarantined_groups() const {
  return {quarantined_.begin(), quarantined_.end()};
}

bool Daemon::is_representative() const {
  if (!view_ || view_->members.empty() || !client_.connected()) return false;
  return view_->members.front() == client_.self();
}

std::optional<gcs::MemberId> Daemon::self() const {
  if (!client_.connected()) return std::nullopt;
  return client_.self();
}

// ------------------------------------------------------------ callbacks ----

void Daemon::on_membership(const gcs::GroupView& gv) {
  if (!running_) return;
  // EVS transitional signals are informational; the algorithm acts only on
  // regular membership installations (the paper's VIEW_CHANGE events).
  if (gv.transitional) return;
  // Audit BEFORE the wipe below: any corruption still present is detected
  // (and counted) here, never silently erased by the rebuild — the
  // reconvergence oracle's "every injected corruption is detected"
  // obligation holds unconditionally.
  run_audit(AuditPoint::kPreWipe);
  ++counters_.view_changes;
  log_.info("VIEW_CHANGE: %s", gv.to_string().c_str());
  // Algorithm 1 lines 1-4 / Algorithm 2 lines 7-9: clear the table (the
  // addresses we actually hold are our "old table" knowledge), send a
  // STATE_MSG tagged with the new view, and enter GATHER.
  view_ = gv;
  view_tag_ = ViewTag::of(gv);
  table_.clear();
  received_.clear();
  info_.clear();
  balance_timer_.cancel();
  // In-flight acquire retries are moot: the new GATHER recomputes the
  // allocation from scratch (quarantine survives — it rides in STATE_MSGs).
  cancel_pending_acquires();
  // Enter GATHER before multicasting: local delivery is synchronous, so our
  // own STATE_MSG can arrive inside the multicast call below.
  enter_state(WamState::kGather);
  send_state_msg();
}

void Daemon::on_message(const gcs::GroupMessage& gm) {
  if (!running_ || gm.group != config_.group) return;
  WamMsgType type;
  try {
    type = peek_type(gm.payload);
  } catch (const util::DecodeError&) {
    log_.warn("undecodable message from %s", gm.sender.to_string().c_str());
    return;
  }
  try {
    switch (type) {
      case WamMsgType::kState:
        handle_state_msg(gm.sender, to_v2(decode_state(gm.payload)));
        break;
      case WamMsgType::kBalance:
        handle_balance_msg(to_v2(decode_balance(gm.payload)));
        break;
      case WamMsgType::kAlloc:
        handle_balance_msg(to_v2(decode_alloc(gm.payload)));
        break;
      case WamMsgType::kStateV2:
        handle_state_msg(gm.sender, decode_state_v2(gm.payload));
        break;
      case WamMsgType::kBalanceV2:
        handle_balance_msg(decode_balance_v2(gm.payload));
        break;
      case WamMsgType::kAllocV2:
        handle_balance_msg(decode_alloc_v2(gm.payload));
        break;
      case WamMsgType::kArpShare: {
        auto share = decode_arp_share(gm.payload);
        if (gm.sender.daemon == gcs_.id()) break;  // our own gossip
        for (auto ip : share.ips) {
          ip_manager_.add_notify_target(net::Ipv4Address(ip));
        }
        break;
      }
      case WamMsgType::kNotify:
        handle_notify(gm.sender, decode_notify(gm.payload));
        break;
      case WamMsgType::kAfterLast_:
        break;  // unreachable: peek_type() rejects out-of-range codes
    }
  } catch (const util::DecodeError&) {
    log_.warn("malformed %d message from %s", static_cast<int>(type),
              gm.sender.to_string().c_str());
  }
  // Protocol-message boundary: state was just mutated by a handler — the
  // cheapest possible moment to notice a stray write before it propagates
  // into the next outgoing message.
  run_audit(AuditPoint::kBoundary);
}

void Daemon::on_disconnect() {
  if (!running_) return;
  // Pre-wipe audit, same contract as on_membership: detect before the
  // release-everything below discards the evidence.
  run_audit(AuditPoint::kPreWipe);
  ++counters_.disconnects;
  emit(obs::EventType::kDisconnect);
  log_.warn("lost local GCS daemon: releasing all virtual interfaces");
  // Correctness cannot be ensured without the GCS (§4.2): drop everything
  // and retry the connection periodically.
  cancel_pending_acquires();
  release_everything("gcs_disconnect");
  enter_state(WamState::kIdle);
  view_.reset();
  table_.clear();
  received_.clear();
  info_.clear();
  balance_timer_.cancel();
  reconnect_timer_.cancel();
  reconnect_timer_ = sched_.schedule(config_.reconnect_interval,
                                     [this] { reconnect_tick(); });
}

void Daemon::reconnect_tick() {
  if (!running_ || client_.connected()) return;
  ++counters_.reconnect_attempts;
  if (gcs_.running() && client_.connect(gcs_)) {
    log_.info("reconnected to GCS daemon");
    client_.join(config_.group);
    return;
  }
  reconnect_timer_ = sched_.schedule(config_.reconnect_interval,
                                     [this] { reconnect_tick(); });
}

// --------------------------------------------------------- STATE_MSG ----

void Daemon::send_state_msg() {
  StateMsgV2 m;
  m.view = view_tag_;
  m.mature = mature_;
  m.weight = static_cast<std::uint32_t>(config_.weight);
  // Positions are name-sorted, so the owned list goes out in the same
  // sorted order the string path produced.
  for (std::uint32_t p = 0; p < groups_.size(); ++p) {
    if (ip_manager_.holds(groups_.names[p])) m.owned.push_back(groups_.ids[p]);
  }
  m.preferred = preferred_ids_;
  m.quarantined.reserve(quarantined_.size());
  for (const auto& name : quarantined_) {
    m.quarantined.push_back(intern_group(name));
  }
  client_.multicast(config_.group, config_.compact_wire
                                       ? encode_state_v2(m)
                                       : encode_state(to_v1(m)));
  ++counters_.state_msgs_sent;
}

void Daemon::handle_state_msg(const gcs::MemberId& sender,
                              const StateMsgV2& m) {
  if (state_ == WamState::kIdle) return;
  if (m.view != view_tag_) {
    // Algorithm 2 line 1: only STATE_MSGs generated in the current view
    // count; stale ones are discarded.
    ++counters_.stale_msgs_ignored;
    return;
  }
  ++counters_.state_msgs_received;

  auto& peer = info_[sender];
  peer.mature = m.mature;
  // Clamp to [1, INT_MAX]: a zero weight would starve the sender of every
  // target share, and a u32 past INT_MAX would turn negative in the cast
  // and poison the largest-remainder arithmetic for the whole fleet.
  peer.weight = m.weight == 0 || m.weight > 0x7fffffffu
                    ? 1
                    : static_cast<int>(m.weight);
  peer.preferred = std::set<GroupId>(m.preferred.begin(), m.preferred.end());
  peer.quarantined =
      std::set<GroupId>(m.quarantined.begin(), m.quarantined.end());
  if (m.mature && !mature_) become_mature("mature peer announced itself");

  // ResolveConflicts(): fold the sender's coverage into current_table,
  // dropping overlaps immediately (the earlier member in the membership
  // list releases — restoring network-level consistency ASAP).
  for (auto id : m.owned) {
    if (!groups_.position_of(id)) {
      log_.warn("peer %s claims unknown VIP group '%s'",
                sender.to_string().c_str(), group_name(id).c_str());
      continue;
    }
    auto result = table_.claim(id, sender, *view_);
    if (result.dropped && client_.connected() &&
        *result.dropped == client_.self()) {
      const auto& name = group_name(id);
      log_.info("conflict on %s: releasing (we precede %s in the view)",
                name.c_str(), sender.to_string().c_str());
      release_group(name);
      ++counters_.conflicts_dropped;
    }
  }

  if (state_ == WamState::kGather) {
    received_.insert(sender);
    bool complete = true;
    for (const auto& member : view_->members) {
      if (received_.count(member) == 0) {
        complete = false;
        break;
      }
    }
    if (complete) finish_gather();
  }
}

std::size_t Daemon::multicast_allocation(const VipTable& table, bool alloc) {
  BalanceMsgV2 m;
  m.view = view_tag_;
  // The wire order must be group-NAME order on every member (ids are
  // process-local). All ids of a daemon-built table are configured groups,
  // so ascending position is that order; entries claimed for unknown
  // groups by a version-skewed peer (possible in a received table) force
  // the slow name sort.
  std::vector<std::pair<std::uint32_t, GroupId>> order;
  order.reserve(table.size());
  bool all_known = true;
  for (const auto& [id, owner] : table.owner_ids()) {
    auto pos = groups_.position_of(id);
    if (!pos) {
      all_known = false;
      break;
    }
    order.emplace_back(*pos, id);
  }
  m.allocation.reserve(table.size());
  if (all_known) {
    std::sort(order.begin(), order.end());
    for (const auto& [pos, id] : order) {
      auto owner = *table.owner(id);
      m.allocation.emplace_back(
          id, std::make_pair(owner.daemon.value(), owner.client));
    }
  } else {
    for (const auto& [name, owner] : table.owners()) {
      m.allocation.emplace_back(
          intern_group(name),
          std::make_pair(owner.daemon.value(), owner.client));
    }
  }
  client_.multicast(config_.group,
                    config_.compact_wire
                        ? (alloc ? encode_alloc_v2(m) : encode_balance_v2(m))
                        : (alloc ? encode_alloc(to_v1(m))
                                 : encode_balance(to_v1(m))));
  return m.allocation.size();
}

void Daemon::finish_gather() {
  if (config_.representative_driven) {
    // §4.2 variant: only the representative decides; its ALLOC_MSG imposes
    // the assignment on everyone (including itself, via self-delivery).
    enter_state(WamState::kRun);
    arm_balance_timer();
    if (is_representative()) {
      auto states = member_states();
      auto assignments = reallocate_ips_fast(groups_, table_, states);
      VipTable proposed = table_;
      for (const auto& [pos, mi] : assignments) {
        proposed.set_owner(groups_.ids[pos], states[mi].id);
      }
      auto sent = multicast_allocation(proposed, /*alloc=*/true);
      ++counters_.reallocations;
      emit(obs::EventType::kReallocation,
           {{"groups", std::to_string(sent)}, {"mode", "representative"}});
      log_.info("GATHER complete (representative): imposing allocation of "
                "%zu groups",
                sent);
    } else {
      log_.info("GATHER complete: awaiting the representative's allocation");
    }
    return;
  }
  // Reallocate_IPs(): every member computes the same assignment from the
  // same table and the same uniquely ordered member list.
  auto states = member_states();
  auto assignments = reallocate_ips_fast(groups_, table_, states);
  for (const auto& [pos, mi] : assignments) {
    table_.set_owner(groups_.ids[pos], states[mi].id);
    if (client_.connected() && states[mi].id == client_.self()) {
      acquire_group(groups_.names[pos]);
    }
  }
  ++counters_.reallocations;
  emit(obs::EventType::kReallocation,
       {{"holes", std::to_string(assignments.size())},
        {"mode", "deterministic"}});
  enter_state(WamState::kRun);
  log_.info("GATHER complete: reallocated %zu holes, table %s",
            assignments.size(), table_.describe().c_str());
  arm_balance_timer();
}

// --------------------------------------------------------- BALANCE ----

void Daemon::handle_balance_msg(const BalanceMsgV2& m) {
  if (state_ != WamState::kRun || m.view != view_tag_) {
    // Algorithm 2 lines 10-11: BALANCE_MSGs are ignored during GATHER;
    // stale ones (older views) are ignored everywhere.
    ++counters_.stale_msgs_ignored;
    return;
  }
  ++counters_.balance_applied;
  // Change_IPs(): apply the representative's allocation atomically. The
  // message carries bare (ip, client) owner pairs; MemberId equality
  // deliberately ignores the informational name, so the reconstructed
  // owners still compare equal to client_.self().
  //
  // Start from the current table rather than from scratch: a BALANCE/ALLOC
  // whose allocation omits a configured group (version-skewed or buggy
  // peer) must not silently drop that group's coverage — omitted groups
  // keep their present owner.
  if (!mature_) become_mature("balance implies a bootstrapped cluster");
  VipTable next = table_;
  std::vector<bool> listed(groups_.size(), false);
  for (const auto& [id, owner] : m.allocation) {
    next.set_owner(id, gcs::MemberId{net::Ipv4Address(owner.first),
                                     owner.second, ""});
    if (auto pos = groups_.position_of(id)) listed[*pos] = true;
  }
  for (std::size_t i = 0; i < config_.vip_groups.size(); ++i) {
    if (!listed[*groups_.position_of(config_ids_[i])]) {
      log_.warn("balance allocation omits group %s: keeping current owner",
                config_.vip_groups[i].name.c_str());
    }
  }
  if (client_.connected()) {
    auto me = client_.self();
    for (std::size_t i = 0; i < config_.vip_groups.size(); ++i) {
      const auto& name = config_.vip_groups[i].name;
      auto owner = next.owner(config_ids_[i]);
      bool should_hold = owner && *owner == me;
      bool holds = ip_manager_.holds(name);
      if (should_hold && !holds) acquire_group(name);
      if (!should_hold && holds) release_group(name);
    }
  }
  table_ = std::move(next);
}

void Daemon::arm_balance_timer() {
  if (config_.balance_timeout == sim::kZero) return;
  balance_timer_.cancel();
  balance_timer_ =
      sched_.schedule(config_.balance_timeout, [this] { balance_tick(); });
}

void Daemon::balance_tick() {
  if (!running_ || state_ != WamState::kRun) return;
  if (is_representative()) run_balance();
  arm_balance_timer();
}

bool Daemon::run_balance() {
  if (state_ != WamState::kRun || !is_representative()) return false;
  auto states = member_states();
  auto allocation = balance_ips_fast(groups_, table_, states);
  if (allocation.empty()) return false;
  bool changed = false;
  for (const auto& [pos, mi] : allocation) {
    auto current = table_.owner(groups_.ids[pos]);
    if (!current || !(*current == states[mi].id)) {
      changed = true;
      break;
    }
  }
  if (!changed) return false;
  BalanceMsgV2 m;
  m.view = view_tag_;
  m.allocation.reserve(allocation.size());
  for (const auto& [pos, mi] : allocation) {
    m.allocation.emplace_back(groups_.ids[pos],
                              std::make_pair(states[mi].id.daemon.value(),
                                             states[mi].id.client));
  }
  client_.multicast(config_.group, config_.compact_wire
                                       ? encode_balance_v2(m)
                                       : encode_balance(to_v1(m)));
  ++counters_.balance_rounds;
  emit(obs::EventType::kBalanceRound,
       {{"groups", std::to_string(m.allocation.size())}});
  log_.info("representative: broadcasting balance (%zu groups)",
            m.allocation.size());
  return true;
}

bool Daemon::trigger_balance() { return run_balance(); }

// --------------------------------------------------------- maturity ----

void Daemon::arm_maturity_timer() {
  if (config_.maturity_timeout == sim::kZero) {
    mature_ = true;
    return;
  }
  maturity_timer_.cancel();
  maturity_timer_ =
      sched_.schedule(config_.maturity_timeout, [this] { maturity_tick(); });
}

void Daemon::become_mature(const char* how) {
  if (mature_) return;
  mature_ = true;
  maturity_timer_.cancel();
  log_.info("now mature: %s", how);
}

void Daemon::maturity_tick() {
  if (!running_ || mature_) return;
  // Anyone mature out there after all? (their STATE_MSG may have raced us)
  for (const auto& [member, peer] : info_) {
    if (peer.mature) {
      become_mature("mature peer known");
      return;
    }
  }
  ++counters_.maturity_timeouts;
  become_mature("maturity timeout expired");
  if (state_ == WamState::kRun && client_.connected()) {
    // Nobody manages the addresses: start managing them (§3.4) and tell
    // the others. Ascending position = sorted name order, as before.
    for (std::uint32_t p = 0; p < groups_.size(); ++p) {
      if (table_.owner(groups_.ids[p])) continue;
      table_.set_owner(groups_.ids[p], client_.self());
      acquire_group(groups_.names[p]);
    }
    send_state_msg();
  } else if (state_ == WamState::kGather) {
    // Re-announce with the mature flag; the gather in flight will fold the
    // update in (received_ dedups the sender).
    send_state_msg();
  }
}

// --------------------------------------------------------- ARP share ----

void Daemon::set_arp_share_source(
    std::function<std::vector<std::uint32_t>()> src) {
  arp_share_source_ = std::move(src);
}

void Daemon::arm_arp_share_timer() {
  if (config_.arp_share_interval == sim::kZero) return;
  arp_share_timer_ = sched_.schedule(config_.arp_share_interval,
                                     [this] { arp_share_tick(); });
}

void Daemon::arm_announce_timer() {
  if (config_.announce_interval == sim::kZero) return;
  announce_timer_ = sched_.schedule(config_.announce_interval,
                                    [this] { announce_tick(); });
}

void Daemon::announce_tick() {
  if (!running_) return;
  // Anti-entropy: gratuitous-ARP refresh for everything we hold, so caches
  // that missed the takeover spoof (lossy LAN) eventually converge.
  for (const auto& g : config_.vip_groups) {
    if (ip_manager_.holds(g.name)) ip_manager_.announce(g);
  }
  arm_announce_timer();
}

void Daemon::arp_share_tick() {
  if (!running_) return;
  if (arp_share_source_ && client_.connected() &&
      state_ != WamState::kIdle) {
    ArpShareMsg m;
    m.ips = arp_share_source_();
    if (!m.ips.empty()) {
      client_.multicast(config_.group, encode_arp_share(m));
    }
  }
  arm_arp_share_timer();
}

// ------------------------------------------------------------ helpers ----

std::vector<MemberState> Daemon::member_states() const {
  std::vector<MemberState> out;
  if (!view_) return out;
  // §3.4: an immature server that hears a mature server's STATE_MSG in
  // GATHER marks itself mature. Since every member of the view saw the
  // same message set, "anyone mature => everyone mature" is a fact all
  // members can apply deterministically when allocating.
  bool any_mature = false;
  for (const auto& [member, peer] : info_) {
    if (peer.mature) any_mature = true;
  }
  // Ids a peer quarantined may name groups outside our config (version
  // skew); they drop out of the positional sets but still count for the
  // member-is-suspect flag, exactly like the string path did.
  auto positions_of = [&](const std::set<GroupId>& ids) {
    std::vector<std::uint32_t> positions;
    positions.reserve(ids.size());
    for (auto id : ids) {
      if (auto pos = groups_.position_of(id)) positions.push_back(*pos);
    }
    std::sort(positions.begin(), positions.end());
    return positions;
  };
  for (const auto& member : view_->members) {
    MemberState ms;
    ms.id = member;
    auto it = info_.find(member);
    if (it != info_.end()) {
      ms.mature = it->second.mature || any_mature;
      ms.weight = it->second.weight;
      ms.preferred = positions_of(it->second.preferred);
      ms.quarantined = positions_of(it->second.quarantined);
      ms.quarantined_any = !it->second.quarantined.empty();
    }
    out.push_back(std::move(ms));
  }
  return out;
}

void Daemon::acquire_group(const std::string& name) {
  const auto* group = config_.find_group(name);
  WAM_ASSERT(group != nullptr);
  if (ip_manager_.holds(name)) return;
  auto result = ip_manager_.acquire(*group);
  if (result.ok()) {
    pending_acquires_.erase(name);
    ++counters_.acquires;
    emit(obs::EventType::kVipAcquired, {{"group", name}});
    log_.info("acquired VIP group %s", name.c_str());
    return;
  }
  if (result.status == OsOpStatus::kConflict) {
    // Duplicate-address detection fired: another live host still answers
    // for the address. Don't fight at the ARP layer — the holder's claim
    // surfaces through STATE_MSGs and ResolveConflicts() decides; retry in
    // case the holder is mid-release.
    ++counters_.arp_conflicts;
    emit(obs::EventType::kArpConflict,
         {{"group", name}, {"detail", result.detail}});
    log_.warn("acquire of %s hit a duplicate address (%s): deferring to "
              "conflict resolution",
              name.c_str(), result.detail.c_str());
  } else {
    ++counters_.acquire_failures;
    log_.warn("acquire of %s failed: %s", name.c_str(), result.detail.c_str());
  }
  schedule_acquire_retry(name, result);
}

void Daemon::release_group(const std::string& name) {
  const auto* group = config_.find_group(name);
  WAM_ASSERT(group != nullptr);
  if (!ip_manager_.holds(name)) {
    auto it = pending_releases_.find(name);
    if (it != pending_releases_.end()) {
      it->second.timer.cancel();
      pending_releases_.erase(it);
    }
    return;
  }
  auto result = ip_manager_.release(*group);
  if (!result.ok()) {
    // A release that fails leaves us still answering for the address, so —
    // unlike acquire — we never give up: retry with the same capped backoff
    // until the unbind sticks.
    log_.warn("release of %s failed: %s", name.c_str(), result.detail.c_str());
    schedule_release_retry(name);
    return;
  }
  auto it = pending_releases_.find(name);
  if (it != pending_releases_.end()) {
    it->second.timer.cancel();
    pending_releases_.erase(it);
  }
  ++counters_.releases;
  emit(obs::EventType::kVipReleased, {{"group", name}});
  log_.info("released VIP group %s", name.c_str());
}

void Daemon::release_everything(const char* cause) {
  emit(obs::EventType::kPanicRelease,
       {{"cause", cause}, {"held", std::to_string(owned().size())}});
  for (const auto& g : config_.vip_groups) {
    release_group(g.name);
  }
}

// -------------------------- fallible enforcement: retry / fence / NOTIFY ----

sim::Duration Daemon::backoff_delay(int failed_attempts) {
  auto delay = config_.acquire_backoff;
  for (int i = 1; i < failed_attempts && delay < config_.acquire_backoff_max;
       ++i) {
    delay += delay;
  }
  delay = std::min(delay, config_.acquire_backoff_max);
  if (config_.backoff_jitter > 0.0) {
    double factor = 1.0 - config_.backoff_jitter +
                    2.0 * config_.backoff_jitter * rng_.uniform();
    delay = sim::Duration(static_cast<sim::Duration::rep>(
        static_cast<double>(delay.count()) * factor));
  }
  return delay;
}

void Daemon::cancel_pending_acquires() {
  for (auto& [name, p] : pending_acquires_) p.timer.cancel();
  pending_acquires_.clear();
}

void Daemon::schedule_acquire_retry(const std::string& name,
                                    const OsOpResult& result) {
  auto& p = pending_acquires_[name];
  ++p.attempts;
  if (p.attempts >= config_.acquire_retry_limit) {
    fence_group(name, result.detail);
    return;
  }
  auto delay = backoff_delay(p.attempts);
  ++counters_.acquire_retries;
  p.timer.cancel();
  p.timer =
      sched_.schedule(delay, [this, name] { acquire_retry_tick(name); });
  log_.info("retrying acquire of %s in %.1fms (attempt %d/%d)", name.c_str(),
            sim::to_millis(delay), p.attempts, config_.acquire_retry_limit);
}

void Daemon::acquire_retry_tick(const std::string& name) {
  if (!running_) return;
  if (ip_manager_.holds(name)) {
    pending_acquires_.erase(name);
    return;
  }
  if (!client_.connected() || state_ == WamState::kIdle) {
    pending_acquires_.erase(name);
    return;
  }
  auto owner = table_.owner(name);
  if (!owner || !(*owner == client_.self())) {
    // Reassigned (or the view changed) while we were backing off.
    pending_acquires_.erase(name);
    return;
  }
  acquire_group(name);
}

void Daemon::schedule_release_retry(const std::string& name) {
  if (!running_) return;
  auto& p = pending_releases_[name];
  ++p.attempts;
  ++counters_.release_retries;
  auto delay = backoff_delay(p.attempts);
  p.timer.cancel();
  p.timer =
      sched_.schedule(delay, [this, name] { release_retry_tick(name); });
}

void Daemon::release_retry_tick(const std::string& name) {
  if (!running_) return;
  if (!ip_manager_.holds(name)) {
    pending_releases_.erase(name);
    return;
  }
  if (client_.connected() && state_ != WamState::kIdle) {
    auto owner = table_.owner(name);
    if (owner && *owner == client_.self()) {
      // The cluster re-assigned the group back to us mid-retry: the failed
      // release is moot, we are supposed to hold it after all.
      pending_releases_.erase(name);
      return;
    }
  }
  release_group(name);
}

void Daemon::fence_group(const std::string& name, const std::string& reason) {
  pending_acquires_.erase(name);
  const auto* group = config_.find_group(name);
  WAM_ASSERT(group != nullptr);
  // Drop whatever partial state the failed acquires left behind. (Sim
  // acquisition is all-or-nothing; real platforms may partially bind.)
  if (ip_manager_.holds(name)) {
    release_group(name);
  } else {
    ip_manager_.release(*group);
  }
  bool fresh = quarantined_.insert(name).second;
  if (fresh) {
    ++counters_.groups_fenced;
    emit(obs::EventType::kGroupFenced,
         {{"group", name},
          {"reason", reason},
          {"cooldown_ms",
           std::to_string(sim::to_millis(config_.quarantine_cooldown))}});
    log_.warn("self-fencing %s: retry budget exhausted (%s); broadcasting "
              "NOTIFY",
              name.c_str(), reason.c_str());
    // Tell the peers on the agreed stream: they drop our claim and re-run a
    // targeted Reallocate_IPs() excluding us, so coverage migrates now
    // instead of waiting for client-visible death (§4.2 fast path). Our own
    // copy self-delivers, which clears the table entry and folds the
    // quarantine into info_ exactly like at every peer.
    if (client_.connected() && state_ != WamState::kIdle) {
      send_notify(name, true, reason);
    }
  }
  arm_cooldown(name);
}

void Daemon::send_notify(const std::string& group, bool fenced,
                         const std::string& reason) {
  NotifyMsg m;
  m.view = view_tag_;
  m.group = group;
  m.fenced = fenced;
  m.cooldown_ms =
      static_cast<std::uint32_t>(sim::to_millis(config_.quarantine_cooldown));
  m.reason = reason;
  client_.multicast(config_.group, encode_notify(m));
  ++counters_.notifies_sent;
}

void Daemon::handle_notify(const gcs::MemberId& sender, const NotifyMsg& m) {
  if (state_ == WamState::kIdle) return;
  if (m.view != view_tag_) {
    ++counters_.stale_msgs_ignored;
    return;
  }
  ++counters_.notifies_received;
  if (config_.find_group(m.group) == nullptr) {
    log_.warn("NOTIFY for unknown VIP group '%s' from %s", m.group.c_str(),
              sender.to_string().c_str());
    return;
  }
  auto id = *find_group_id(m.group);  // configured groups are pre-interned
  auto& peer = info_[sender];
  if (m.fenced) {
    peer.quarantined.insert(id);
    log_.info("%s fenced %s (%s): reallocating around it",
              sender.to_string().c_str(), m.group.c_str(), m.reason.c_str());
    // The fenced member holds the allocation but cannot enforce it: drop
    // its claim and re-run the deterministic reallocation without it.
    auto owner = table_.owner(id);
    if (owner && *owner == sender) table_.clear_owner(id);
    if (state_ == WamState::kRun) reallocate_holes("notify");
  } else {
    peer.quarantined.erase(id);
    log_.info("%s cleared its quarantine of %s", sender.to_string().c_str(),
              m.group.c_str());
  }
}

void Daemon::reallocate_holes(const char* mode) {
  auto states = member_states();
  auto assignments = reallocate_ips_fast(groups_, table_, states);
  if (assignments.empty()) return;
  if (config_.representative_driven) {
    // §4.2 variant: only the representative decides; everyone else waits
    // for its ALLOC_MSG.
    if (!is_representative()) return;
    VipTable proposed = table_;
    for (const auto& [pos, mi] : assignments) {
      proposed.set_owner(groups_.ids[pos], states[mi].id);
    }
    auto sent = multicast_allocation(proposed, /*alloc=*/true);
    ++counters_.reallocations;
    emit(obs::EventType::kReallocation,
         {{"groups", std::to_string(sent)}, {"mode", mode}});
    return;
  }
  for (const auto& [pos, mi] : assignments) {
    table_.set_owner(groups_.ids[pos], states[mi].id);
    if (client_.connected() && states[mi].id == client_.self()) {
      acquire_group(groups_.names[pos]);
    }
  }
  ++counters_.reallocations;
  emit(obs::EventType::kReallocation,
       {{"holes", std::to_string(assignments.size())}, {"mode", mode}});
}

void Daemon::arm_cooldown(const std::string& name) {
  auto it = cooldown_timers_.find(name);
  if (it != cooldown_timers_.end()) it->second.cancel();
  cooldown_timers_[name] = sched_.schedule(
      config_.quarantine_cooldown, [this, name] { cooldown_tick(name); });
}

void Daemon::cooldown_tick(const std::string& name) {
  cooldown_timers_.erase(name);
  if (!running_ || quarantined_.count(name) == 0) return;
  if (!client_.connected() || state_ != WamState::kRun) {
    arm_cooldown(name);
    return;
  }
  const auto* group = config_.find_group(name);
  WAM_ASSERT(group != nullptr);
  auto owner = table_.owner(name);
  bool ours_or_hole = !owner || *owner == client_.self();
  // Probe the enforcement layer: a real acquire when the group is ours to
  // take (hole, or still nominally ours), a side-effect-free announce when
  // a peer covers it — binding behind the peer's back would split traffic.
  auto result = ours_or_hole ? ip_manager_.acquire(*group)
                             : ip_manager_.announce(*group);
  if (result.status == OsOpStatus::kFailed) {
    // Fault persists: stay fenced, silently re-arm the cooldown.
    arm_cooldown(name);
    return;
  }
  quarantined_.erase(name);
  ++counters_.groups_unfenced;
  emit(obs::EventType::kGroupUnfenced, {{"group", name}});
  log_.info("quarantine of %s cleared: enforcement layer healthy again",
            name.c_str());
  bool claimed = false;
  if (ours_or_hole && result.ok() && ip_manager_.holds(name)) {
    table_.set_owner(name, client_.self());
    ++counters_.acquires;
    emit(obs::EventType::kVipAcquired, {{"group", name}});
    claimed = true;
  }
  send_notify(name, false, "cooldown probe succeeded");
  // A claim must reach the peers' tables: STATE_MSGs fold via claim() in
  // any state, exactly like the maturity bootstrap's announcement.
  if (claimed) send_state_msg();
}

// --------------------------- self-stabilization: audit / heal / resync ----

namespace {
const char* audit_point_name(int p) {
  switch (p) {
    case 0: return "timer";
    case 1: return "boundary";
    case 2: return "pre-wipe";
    case 3: return "shutdown";
  }
  return "?";
}
}  // namespace

void Daemon::arm_audit_timer() {
  if (config_.audit_interval == sim::kZero) return;
  audit_timer_.cancel();
  audit_timer_ =
      sched_.schedule(config_.audit_interval, [this] { audit_tick(); });
}

void Daemon::audit_tick() {
  if (!running_) return;
  run_audit(AuditPoint::kTimer);
  arm_audit_timer();
}

void Daemon::run_audit(AuditPoint point) {
  // Zero interval disables auditing entirely (timer AND boundary checks),
  // keeping pre-existing pinned seeds byte-identical.
  if (config_.audit_interval == sim::kZero) return;
  if (!running_ || in_audit_) return;
  auto findings = StateAuditor::audit(*this);
  if (findings.empty()) {
    // A clean timer sweep a full cap-period after the last resync resets
    // the backoff: the next isolated corruption gets the fast base delay
    // again, while a storm keeps the damping.
    if (point == AuditPoint::kTimer && resync_attempts_ > 0 &&
        !resync_pending_ &&
        sched_.now() - last_resync_at_ >= config_.resync_backoff_max) {
      resync_attempts_ = 0;
    }
    return;
  }
  // Guard: heals below fence/multicast, and local delivery is synchronous —
  // the nested on_message boundary audit must not recurse into run_audit
  // while the state is mid-repair.
  in_audit_ = true;
  ++counters_.corruptions_detected;
  std::string checks;
  for (const auto& f : findings) {
    if (!checks.empty()) checks += ',';
    checks += audit_check_name(f.check);
    log_.warn("state audit [%s] %s%s%s: %s",
              audit_point_name(static_cast<int>(point)),
              audit_check_name(f.check), f.group.empty() ? "" : " ",
              f.group.c_str(), f.detail.c_str());
  }
  emit(obs::EventType::kCorruptionDetected,
       {{"checks", checks},
        {"count", std::to_string(findings.size())},
        {"at", audit_point_name(static_cast<int>(point))}});

  if (point == AuditPoint::kShutdown) {
    // Detect-only: the shutdown discards the state anyway.
    in_audit_ = false;
    return;
  }
  if (point == AuditPoint::kPreWipe) {
    // The caller is about to discard and rebuild this exact state (view
    // change wipe or disconnect release): the imminent rebuild IS the
    // heal, and any pending resync is superseded by it.
    ++counters_.self_heals;
    emit(obs::EventType::kSelfHeal, {{"action", "view-rebuild"}});
    resync_timer_.cancel();
    resync_pending_ = false;
    in_audit_ = false;
    return;
  }

  bool checksum = false;
  bool index = false;
  bool view_tag = false;
  std::vector<GroupId> bogus;
  std::vector<std::string> unknown_quarantine;
  for (const auto& f : findings) {
    switch (f.check) {
      case AuditCheck::kTableChecksum: checksum = true; break;
      case AuditCheck::kTableIndex: index = true; break;
      case AuditCheck::kViewTag: view_tag = true; break;
      case AuditCheck::kOwnerNotInView:
        bogus.push_back(intern_group(f.group));
        break;
      case AuditCheck::kQuarantineUnknown:
        unknown_quarantine.push_back(f.group);
        break;
    }
  }
  if (!unknown_quarantine.empty()) {
    for (const auto& name : unknown_quarantine) {
      quarantined_.erase(name);
      auto it = cooldown_timers_.find(name);
      if (it != cooldown_timers_.end()) {
        it->second.cancel();
        cooldown_timers_.erase(it);
      }
    }
    ++counters_.self_heals;
    emit(obs::EventType::kSelfHeal,
         {{"action", "drop-unknown-quarantine"},
          {"groups", std::to_string(unknown_quarantine.size())}});
  }
  if (!bogus.empty()) {
    // Identified corrupt entries: drop them, rebuild the derived state
    // (index + checksum), then run the PR-3 fence machinery per group —
    // quarantine + NOTIFY makes the peers reallocate around us NOW, and
    // the cooldown probe clears the fence once the dust settles. The
    // table is consistent again BEFORE the first multicast below (local
    // delivery is synchronous).
    for (auto id : bogus) table_.clear_owner(id);
    table_.rebuild();
    ++counters_.self_heals;
    emit(obs::EventType::kSelfHeal,
         {{"action", "fence"}, {"groups", std::to_string(bogus.size())}});
    for (auto id : bogus) {
      fence_group(group_name(id), "state audit: owner not in view");
    }
  }
  if (view_tag || (checksum && bogus.empty())) {
    // No identifiable entry to surgically repair (or the incarnation
    // itself is suspect): discard everything and rebuild from the peers.
    schedule_resync(view_tag ? "view-tag mismatch" : "table checksum");
  } else if (index && bogus.empty() && !checksum) {
    // Index-only drift: the owner map is intact, rebuild the index.
    table_.rebuild();
    ++counters_.self_heals;
    emit(obs::EventType::kSelfHeal, {{"action", "rebuild-index"}});
  }
  in_audit_ = false;
}

void Daemon::schedule_resync(const std::string& why) {
  if (resync_pending_) return;
  resync_pending_ = true;
  auto delay = config_.resync_delay;
  for (int i = 0; i < resync_attempts_ && delay < config_.resync_backoff_max;
       ++i) {
    delay += delay;
  }
  delay = std::min(delay, config_.resync_backoff_max);
  ++resync_attempts_;
  last_resync_at_ = sched_.now();
  log_.warn("scheduling resync in %.1fms (%s, attempt %d)",
            sim::to_millis(delay), why.c_str(), resync_attempts_);
  resync_timer_.cancel();
  resync_timer_ = sched_.schedule(delay, [this] { resync_tick(); });
}

void Daemon::resync_tick() {
  resync_pending_ = false;
  if (!running_ || !client_.connected() || state_ == WamState::kIdle) return;
  ++counters_.resyncs;
  ++counters_.self_heals;
  emit(obs::EventType::kSelfHeal,
       {{"action", "resync"}, {"attempt", std::to_string(resync_attempts_)}});
  log_.warn("resync: rejoining %s to rebuild state from the peers",
            config_.group.c_str());
  last_resync_at_ = sched_.now();
  // Drop the whole client session and rejoin under a FRESH incarnation
  // (new client id), not leave+join under the same identity: the leave
  // and the re-join travel as separate unicasts to the sequencer, and
  // in-flight jitter can invert them — the join would no-op against our
  // still-present membership and the leave would then evict us for good.
  // A fresh identity's join commutes with the old identity's leave, so
  // arrival order cannot matter. The graceful disconnect still leaves the
  // group for the old id, so peers reallocate within milliseconds while
  // we discard every claim we can no longer vouch for; the rejoin
  // installs a fresh view and the normal GATHER rebuilds current_table
  // from the peers' STATE_MSGs. Quarantine deliberately survives — it
  // rides in STATE_MSGs, not in the wiped table.
  client_.disconnect();
  cancel_pending_acquires();
  release_everything("resync");
  balance_timer_.cancel();
  view_.reset();
  view_tag_ = ViewTag{};
  table_.clear();
  received_.clear();
  info_.clear();
  enter_state(WamState::kIdle);
  if (!client_.connect(gcs_)) {
    // The local GCS died between audit and resync: fall back to the
    // standard reconnect loop (on_disconnect-equivalent state).
    reconnect_timer_.cancel();
    reconnect_timer_ = sched_.schedule(config_.reconnect_interval,
                                       [this] { reconnect_tick(); });
    return;
  }
  client_.join(config_.group);
}

// ------------------------------- chaos backdoors (corruption injection) ----

bool Daemon::chaos_corrupt_vip_owner(int index) {
  if (!running_ || !client_.connected() || state_ == WamState::kIdle ||
      config_ids_.empty()) {
    return false;
  }
  auto id = config_ids_[static_cast<std::size_t>(index) % config_ids_.size()];
  // An identity no view ever contained: trips the checksum, the index
  // agreement AND the owner-not-in-view check.
  gcs::MemberId bogus{net::Ipv4Address(10, 0, 254, 254), 0xC0DE, "bogus"};
  table_.chaos_set_owner_unchecked(id, bogus);
  log_.warn("chaos: corrupted owner of %s", group_name(id).c_str());
  return true;
}

bool Daemon::chaos_corrupt_index(int index) {
  if (!running_ || !client_.connected() || state_ == WamState::kIdle ||
      config_ids_.empty()) {
    return false;
  }
  auto id = config_ids_[static_cast<std::size_t>(index) % config_ids_.size()];
  gcs::MemberId phantom{net::Ipv4Address(10, 0, 254, 253), 0xBEEF, "phantom"};
  table_.chaos_corrupt_index_entry(id, phantom);
  log_.warn("chaos: desynced member index for %s", group_name(id).c_str());
  return true;
}

bool Daemon::chaos_corrupt_view_tag() {
  if (!running_ || !client_.connected() || state_ == WamState::kIdle ||
      !view_) {
    return false;
  }
  view_tag_.group_seq ^= 0x40;  // single bit flip: the classic soft error
  log_.warn("chaos: flipped view tag to %s", view_tag_.to_string().c_str());
  // A flip landing on a still-unhealed earlier flip cancels it: the tag is
  // correct again and there is nothing any detector could ever find.
  // Report not-applied so the oracle records no detection obligation.
  if (view_tag_ == ViewTag::of(*view_)) {
    log_.warn("chaos: double flip restored the view tag — no corruption");
    return false;
  }
  return true;
}

void Daemon::set_preferences(std::vector<std::string> preferred) {
  config_.preferred = std::move(preferred);
  config_.validate();
  preferred_ids_.clear();
  preferred_ids_.reserve(config_.preferred.size());
  for (const auto& name : config_.preferred) {
    preferred_ids_.push_back(intern_group(name));
  }
}

}  // namespace wam::wackamole
