#include "wackamole/health.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace wam::wackamole {

UdpServiceCheck::UdpServiceCheck(net::Host& host, net::Ipv4Address service_ip,
                                 std::uint16_t service_port,
                                 std::uint16_t probe_port)
    : host_(host),
      service_ip_(service_ip),
      service_port_(service_port),
      probe_port_(probe_port) {
  host_.open_udp(
      probe_port_,
      [this](const net::Host::UdpContext&, const util::SharedBytes& reply) {
        // Echo-style services return the request payload (possibly behind
        // a header, e.g. EchoServer's hostname prefix), so the current
        // round's tag must appear as the reply's suffix. A reply from an
        // earlier round is stale and must not satisfy this one.
        if (!awaiting_ || reply.size() < probe_.size() ||
            !std::equal(probe_.begin(), probe_.end(),
                        reply.end() - static_cast<std::ptrdiff_t>(
                                          probe_.size()))) {
          return;
        }
        reply_seen_ = true;
        awaiting_ = false;
      });
}

UdpServiceCheck::~UdpServiceCheck() { host_.close_udp(probe_port_); }

std::string UdpServiceCheck::name() const {
  return "udp:" + service_ip_.to_string() + ":" +
         std::to_string(service_port_);
}

void UdpServiceCheck::run() {
  // Evaluate the previous round: if we were still waiting, it failed.
  if (awaiting_) reply_seen_ = false;
  awaiting_ = true;
  ++seq_;
  util::ByteWriter w;
  w.u8('h');
  w.u8('c');
  w.u32(seq_);
  probe_ = w.take();
  host_.send_udp_from(host_.primary_ip(0), service_ip_, service_port_,
                      probe_port_, probe_);
}

HealthMonitor::HealthMonitor(sim::Scheduler& sched, Daemon& daemon,
                             HealthMonitorConfig config, sim::Log* log)
    : sched_(sched),
      daemon_(daemon),
      config_(config),
      log_(log, "health/" + daemon.config().group) {
  WAM_EXPECTS(config_.fail_threshold >= 1);
  WAM_EXPECTS(config_.recover_threshold >= 1);
  WAM_EXPECTS(config_.check_interval > sim::kZero);
}

void HealthMonitor::add_check(std::unique_ptr<HealthCheck> check) {
  WAM_EXPECTS(check != nullptr);
  checks_.push_back(std::move(check));
}

void HealthMonitor::start() {
  if (running_) return;
  running_ = true;
  tick();
}

void HealthMonitor::stop() {
  if (!running_) return;
  running_ = false;
  timer_.cancel();
}

void HealthMonitor::tick() {
  if (!running_) return;
  bool all_healthy = true;
  for (auto& check : checks_) {
    check->run();
    if (!check->healthy()) {
      all_healthy = false;
      last_failed_ = check->name();
    }
  }

  if (all_healthy) {
    failures_ = 0;
    ++successes_;
    if (withdrawn_ && successes_ >= config_.recover_threshold) {
      withdrawn_ = false;
      ++rejoins_;
      log_.info("service healthy again: rejoining the cluster");
      if (!daemon_.running()) daemon_.start();
    }
  } else {
    successes_ = 0;
    ++failures_;
    if (!withdrawn_ && failures_ >= config_.fail_threshold) {
      withdrawn_ = true;
      ++withdrawals_;
      log_.warn("check '%s' failing (%d consecutive): withdrawing from the "
                "cluster so peers take over the addresses",
                last_failed_.c_str(), failures_);
      if (daemon_.running()) daemon_.graceful_shutdown();
    }
  }
  timer_ = sched_.schedule(config_.check_interval, [this] { tick(); });
}

}  // namespace wam::wackamole
