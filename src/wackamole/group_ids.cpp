#include "wackamole/group_ids.hpp"

namespace wam::wackamole {

util::Interner& group_interner() {
  // Function-local static: constructed on first use, never destroyed order
  // problems — daemons and tables in static scope may outlive main().
  static util::Interner* table = new util::Interner();
  return *table;
}

}  // namespace wam::wackamole
