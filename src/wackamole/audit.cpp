#include "wackamole/audit.hpp"

#include <algorithm>

#include "wackamole/daemon.hpp"

namespace wam::wackamole {

const char* audit_check_name(AuditCheck c) {
  switch (c) {
    case AuditCheck::kTableChecksum: return "table-checksum";
    case AuditCheck::kTableIndex: return "table-index";
    case AuditCheck::kViewTag: return "view-tag";
    case AuditCheck::kOwnerNotInView: return "owner-not-in-view";
    case AuditCheck::kQuarantineUnknown: return "quarantine-unknown";
  }
  return "?";
}

std::vector<AuditFinding> StateAuditor::audit(const Daemon& daemon) {
  std::vector<AuditFinding> out;
  const auto& table = daemon.table();

  if (!table.verify_checksum()) {
    out.push_back({AuditCheck::kTableChecksum, "",
                   "owner-map checksum mismatch over " +
                       std::to_string(table.size()) + " entries"});
  }
  if (!table.verify_index()) {
    out.push_back({AuditCheck::kTableIndex, "",
                   "member index disagrees with the owner map"});
  }

  const auto& view = daemon.view();
  if (view) {
    if (daemon.view_tag() != ViewTag::of(*view)) {
      out.push_back({AuditCheck::kViewTag, "",
                     "cached tag " + daemon.view_tag().to_string() +
                         " vs installed view " +
                         ViewTag::of(*view).to_string()});
    }
    // Deterministic sweep order: findings come out sorted by group name,
    // never by process-local GroupId or hash order.
    std::vector<std::pair<const std::string*, const gcs::MemberId*>> entries;
    entries.reserve(table.owner_ids().size());
    for (const auto& [id, member] : table.owner_ids()) {
      entries.emplace_back(&group_name(id), &member);
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return *a.first < *b.first; });
    for (const auto& [name, member] : entries) {
      bool in_view = std::any_of(
          view->members.begin(), view->members.end(),
          [member](const gcs::MemberId& m) { return m == *member; });
      if (!in_view) {
        out.push_back({AuditCheck::kOwnerNotInView, *name,
                       "owner " + member->to_string() + " not in view"});
      }
    }
  }

  for (const auto& name : daemon.quarantined_groups()) {
    if (daemon.config().find_group(name) == nullptr) {
      out.push_back({AuditCheck::kQuarantineUnknown, name,
                     "quarantined group is not configured"});
    }
  }
  return out;
}

}  // namespace wam::wackamole
