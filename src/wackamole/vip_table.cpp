#include "wackamole/vip_table.hpp"

#include <algorithm>

namespace wam::wackamole {

std::uint64_t VipTable::entry_hash(GroupId id, const gcs::MemberId& member) {
  // Identity fields only (daemon ip, client id) — matches operator== and
  // MemberIdHash; the informational name must not perturb the checksum.
  std::uint64_t h = (static_cast<std::uint64_t>(member.daemon.value()) << 32) |
                    static_cast<std::uint64_t>(member.client);
  h ^= 0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(id) + 1);
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return h;
}

void VipTable::link(GroupId id, const gcs::MemberId& member) {
  members_[member].insert(id);
}

void VipTable::unlink(GroupId id, const gcs::MemberId& member) {
  auto it = members_.find(member);
  if (it == members_.end()) return;
  it->second.erase(id);
  if (it->second.empty()) members_.erase(it);
}

std::optional<gcs::MemberId> VipTable::owner(const std::string& group) const {
  auto id = find_group_id(group);
  if (!id) return std::nullopt;  // never interned => never owned anywhere
  return owner(*id);
}

std::optional<gcs::MemberId> VipTable::owner(GroupId id) const {
  auto it = owners_.find(id);
  if (it == owners_.end()) return std::nullopt;
  return it->second;
}

void VipTable::set_owner(const std::string& group,
                         const gcs::MemberId& member) {
  set_owner(intern_group(group), member);
}

void VipTable::set_owner(GroupId id, const gcs::MemberId& member) {
  auto [it, inserted] = owners_.try_emplace(id, member);
  if (!inserted) {
    if (it->second == member) {
      it->second = member;  // refresh the informational name
      return;
    }
    unlink(id, it->second);
    checksum_ ^= entry_hash(id, it->second);
    it->second = member;
  }
  checksum_ ^= entry_hash(id, member);
  link(id, member);
}

void VipTable::clear_owner(const std::string& group) {
  auto id = find_group_id(group);
  if (id) clear_owner(*id);
}

void VipTable::clear_owner(GroupId id) {
  auto it = owners_.find(id);
  if (it == owners_.end()) return;
  unlink(id, it->second);
  checksum_ ^= entry_hash(id, it->second);
  owners_.erase(it);
}

std::size_t VipTable::load_of(const gcs::MemberId& member) const {
  auto it = members_.find(member);
  return it == members_.end() ? 0 : it->second.size();
}

std::vector<std::string> VipTable::owned_by(const gcs::MemberId& member) const {
  std::vector<std::string> out;
  auto it = members_.find(member);
  if (it == members_.end()) return out;
  out.reserve(it->second.size());
  for (GroupId id : it->second) out.push_back(group_name(id));
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> VipTable::uncovered(
    const std::vector<std::string>& all) const {
  std::vector<std::string> out;
  for (const auto& name : all) {
    auto id = find_group_id(name);
    if (!id || owners_.count(*id) == 0) out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::map<std::string, gcs::MemberId> VipTable::owners() const {
  std::map<std::string, gcs::MemberId> out;
  for (const auto& [id, member] : owners_) out.emplace(group_name(id), member);
  return out;
}

VipTable::ClaimResult VipTable::claim(const std::string& group,
                                      const gcs::MemberId& claimant,
                                      const gcs::GroupView& view) {
  return claim(intern_group(group), claimant, view);
}

VipTable::ClaimResult VipTable::claim(GroupId id, const gcs::MemberId& claimant,
                                      const gcs::GroupView& view) {
  auto it = owners_.find(id);
  if (it == owners_.end()) {
    owners_.emplace(id, claimant);
    checksum_ ^= entry_hash(id, claimant);
    link(id, claimant);
    return {true, std::nullopt};
  }
  if (it->second == claimant) return {true, std::nullopt};

  // Conflict: the member later in the uniquely ordered list keeps the group.
  int existing_rank = view.rank_of(it->second);
  int claimant_rank = view.rank_of(claimant);
  if (claimant_rank > existing_rank) {
    auto dropped = it->second;
    unlink(id, dropped);
    checksum_ ^= entry_hash(id, dropped) ^ entry_hash(id, claimant);
    it->second = claimant;
    link(id, claimant);
    return {true, dropped};
  }
  return {false, claimant};
}

bool VipTable::verify_checksum() const {
  std::uint64_t expect = 0;
  for (const auto& [id, member] : owners_) expect ^= entry_hash(id, member);
  return expect == checksum_;
}

bool VipTable::verify_index() const {
  std::size_t indexed = 0;
  for (const auto& [member, ids] : members_) {
    if (ids.empty()) return false;  // unlink() always drops empty sets
    indexed += ids.size();
    for (GroupId id : ids) {
      auto it = owners_.find(id);
      if (it == owners_.end() || !(it->second == member)) return false;
    }
  }
  return indexed == owners_.size();
}

void VipTable::rebuild() {
  members_.clear();
  checksum_ = 0;
  for (const auto& [id, member] : owners_) {
    members_[member].insert(id);
    checksum_ ^= entry_hash(id, member);
  }
}

void VipTable::chaos_set_owner_unchecked(GroupId id,
                                         const gcs::MemberId& member) {
  owners_[id] = member;  // deliberately skips unlink/link and the checksum
}

void VipTable::chaos_corrupt_index_entry(GroupId id,
                                         const gcs::MemberId& bogus) {
  auto it = owners_.find(id);
  if (it != owners_.end() && load_of(it->second) > 0) {
    unlink(id, it->second);  // indexed entry vanishes; owner map keeps it
  } else {
    link(id, bogus);  // phantom entry the owner map never had
  }
}

std::string VipTable::describe() const {
  // Single pass over a name-sorted snapshot with the exact capacity
  // reserved up front — no quadratic append-to-growing-temporary churn.
  std::vector<std::pair<const std::string*, std::string>> entries;
  entries.reserve(owners_.size());
  for (const auto& [id, member] : owners_) {
    entries.emplace_back(&group_name(id), member.to_string());
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return *a.first < *b.first; });
  std::size_t total = 2;  // braces
  for (const auto& [name, owner] : entries) {
    total += name->size() + 2 + owner.size() + 2;  // "->" and ", "
  }
  std::string out;
  out.reserve(total);
  out += '{';
  bool first = true;
  for (const auto& [name, owner] : entries) {
    if (!first) out += ", ";
    first = false;
    out += *name;
    out += "->";
    out += owner;
  }
  out += '}';
  return out;
}

}  // namespace wam::wackamole
