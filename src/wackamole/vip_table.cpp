#include "wackamole/vip_table.hpp"

#include <algorithm>

namespace wam::wackamole {

std::optional<gcs::MemberId> VipTable::owner(const std::string& group) const {
  auto it = owners_.find(group);
  if (it == owners_.end()) return std::nullopt;
  return it->second;
}

void VipTable::set_owner(const std::string& group,
                         const gcs::MemberId& member) {
  owners_[group] = member;
}

void VipTable::clear_owner(const std::string& group) { owners_.erase(group); }

std::size_t VipTable::load_of(const gcs::MemberId& member) const {
  std::size_t n = 0;
  for (const auto& [group, owner] : owners_) {
    if (owner == member) ++n;
  }
  return n;
}

std::vector<std::string> VipTable::owned_by(const gcs::MemberId& member) const {
  std::vector<std::string> out;
  for (const auto& [group, owner] : owners_) {
    if (owner == member) out.push_back(group);
  }
  return out;  // std::map iteration is already name-sorted
}

std::vector<std::string> VipTable::uncovered(
    const std::vector<std::string>& all) const {
  std::vector<std::string> out;
  for (const auto& name : all) {
    if (owners_.count(name) == 0) out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

VipTable::ClaimResult VipTable::claim(const std::string& group,
                                      const gcs::MemberId& claimant,
                                      const gcs::GroupView& view) {
  auto it = owners_.find(group);
  if (it == owners_.end()) {
    owners_.emplace(group, claimant);
    return {true, std::nullopt};
  }
  if (it->second == claimant) return {true, std::nullopt};

  // Conflict: the member later in the uniquely ordered list keeps the group.
  int existing_rank = view.rank_of(it->second);
  int claimant_rank = view.rank_of(claimant);
  if (claimant_rank > existing_rank) {
    auto dropped = it->second;
    it->second = claimant;
    return {true, dropped};
  }
  return {false, claimant};
}

std::string VipTable::describe() const {
  std::string out;
  for (const auto& [group, owner] : owners_) {
    if (!out.empty()) out += ", ";
    out += group + "->" + owner.to_string();
  }
  return "{" + out + "}";
}

}  // namespace wam::wackamole
