#include "wackamole/balance.hpp"

#include <algorithm>
#include <queue>

#include "util/assert.hpp"

namespace wam::wackamole {

GroupSet::GroupSet(const std::vector<std::string>& group_names)
    : names(group_names) {
  std::sort(names.begin(), names.end());
  ids.reserve(names.size());
  canonical.reserve(names.size());
  pos_.reserve(names.size());
  for (std::uint32_t p = 0; p < names.size(); ++p) {
    ids.push_back(intern_group(names[p]));
    canonical.push_back(p > 0 && names[p] == names[p - 1] ? canonical[p - 1]
                                                         : p);
    pos_.emplace(ids[p], p);  // first occurrence wins => canonical position
  }
}

std::optional<std::uint32_t> GroupSet::position_of(GroupId id) const {
  auto it = pos_.find(id);
  if (it == pos_.end()) return std::nullopt;
  return it->second;
}

std::vector<MemberState> to_member_states(
    const GroupSet& groups, const std::vector<MemberInfo>& members) {
  std::vector<MemberState> out;
  out.reserve(members.size());
  auto positions_of = [&](const std::set<std::string>& names) {
    // std::set iterates sorted and groups.names is sorted, so the output
    // positions come out sorted too — binary-search-ready.
    std::vector<std::uint32_t> positions;
    for (const auto& name : names) {
      auto it = std::lower_bound(groups.names.begin(), groups.names.end(),
                                 name);
      if (it != groups.names.end() && *it == name) {
        positions.push_back(
            static_cast<std::uint32_t>(it - groups.names.begin()));
      }
    }
    return positions;
  };
  for (const auto& m : members) {
    MemberState s;
    s.id = m.id;
    s.mature = m.mature;
    s.weight = m.weight;
    s.preferred = positions_of(m.preferred);
    s.quarantined = positions_of(m.quarantined);
    s.quarantined_any = !m.quarantined.empty();
    out.push_back(std::move(s));
  }
  return out;
}

namespace {

/// Lazy-deletion min-heap entry: the member's load at push time. An entry
/// whose load no longer matches the live load array is stale and gets
/// discarded on pop; after every load increment a fresh entry is pushed,
/// so each heap-eligible member always has exactly one accurate entry.
struct HeapEntry {
  std::size_t load;
  std::uint32_t idx;  // index into the members vector
};

bool contains_pos(const std::vector<std::uint32_t>& sorted_positions,
                  std::uint32_t p) {
  return std::binary_search(sorted_positions.begin(), sorted_positions.end(),
                            p);
}

}  // namespace

Placement reallocate_ips_fast(const GroupSet& groups, const VipTable& table,
                              const std::vector<MemberState>& members) {
  Placement out;
  std::vector<std::uint32_t> mature;
  for (std::uint32_t i = 0; i < members.size(); ++i) {
    if (members[i].mature) mature.push_back(i);
  }
  if (mature.empty()) return out;

  const auto v_count = static_cast<std::uint32_t>(groups.size());

  // Per-group preferred-member lists at canonical positions, membership
  // order preserved so a strict-better scan keeps the earlier member.
  std::vector<std::vector<std::uint32_t>> prefers(v_count);
  for (auto mi : mature) {
    for (auto p : members[mi].preferred) prefers[p].push_back(mi);
  }

  std::vector<std::size_t> load(members.size(), 0);
  for (auto mi : mature) load[mi] = table.load_of(members[mi].id);

  // Holes in name order: positions are name-sorted, so an ascending scan
  // reproduces the reference's sorted uncovered() sequence.
  std::vector<std::uint32_t> holes;
  for (std::uint32_t p = 0; p < v_count; ++p) {
    if (!table.owner(groups.ids[p])) holes.push_back(p);
  }
  out.reserve(holes.size());

  // Weight-normalized load comparison by cross-multiplication (exact
  // integers): a carries less relative load than b iff la/wa < lb/wb.
  auto better = [&](std::uint32_t a, std::uint32_t b) {
    auto la = static_cast<long>(load[a]) * members[b].weight;
    auto lb = static_cast<long>(load[b]) * members[a].weight;
    return la < lb;
  };

  // The strictness-2 candidate pool: quarantine-free mature members, in a
  // min-heap keyed (weight-normalized load, membership order). The ratio
  // ordering is only a strict weak ordering for positive weights, so a
  // degenerate config with a non-positive weight falls back to linear
  // scans (pick_linear) and stays decision-identical anyway.
  std::vector<std::uint32_t> qfree;
  bool heap_ok = true;
  for (auto mi : mature) {
    if (!members[mi].quarantined_any) qfree.push_back(mi);
    if (members[mi].weight <= 0) heap_ok = false;
  }
  auto heap_worse = [&](const HeapEntry& a, const HeapEntry& b) {
    auto la = static_cast<long>(a.load) * members[b.idx].weight;
    auto lb = static_cast<long>(b.load) * members[a.idx].weight;
    if (la != lb) return la > lb;
    return a.idx > b.idx;
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, decltype(heap_worse)>
      heap(heap_worse);
  if (heap_ok) {
    for (auto mi : qfree) heap.push({load[mi], mi});
  }

  // Reference pick(): full (preference, normalized load, order) scan over
  // one strictness tier. Tiers 1 and 0 are only reachable when zero
  // quarantine-free members exist, so linear cost there is irrelevant.
  auto pick_linear = [&](std::uint32_t cp, int strictness) -> std::int64_t {
    std::int64_t best = -1;
    for (auto mi : mature) {
      if (strictness >= 2 && members[mi].quarantined_any) continue;
      if (strictness >= 1 && contains_pos(members[mi].quarantined, cp)) {
        continue;
      }
      if (best < 0) {
        best = mi;
        continue;
      }
      bool pa = contains_pos(members[mi].preferred, cp);
      bool pb =
          contains_pos(members[static_cast<std::uint32_t>(best)].preferred,
                       cp);
      if (pa != pb) {
        if (pa) best = mi;
        continue;
      }
      if (better(mi, static_cast<std::uint32_t>(best))) best = mi;
    }
    return best;
  };

  for (auto p : holes) {
    auto cp = groups.canonical[p];
    std::int64_t winner = -1;
    if (heap_ok) {
      // Preference dominates the score, so a quarantine-free preferring
      // member beats the heap top regardless of load.
      for (auto mi : prefers[cp]) {
        if (members[mi].quarantined_any) continue;
        if (winner < 0 || better(mi, static_cast<std::uint32_t>(winner))) {
          winner = mi;
        }
      }
      if (winner < 0) {
        while (!heap.empty() && heap.top().load != load[heap.top().idx]) {
          heap.pop();
        }
        if (!heap.empty()) winner = heap.top().idx;
      }
    } else {
      winner = pick_linear(cp, 2);
    }
    if (winner < 0) winner = pick_linear(cp, 1);
    if (winner < 0) winner = pick_linear(cp, 0);  // forced coverage
    WAM_ASSERT(winner >= 0);
    auto w = static_cast<std::uint32_t>(winner);
    out.emplace_back(p, w);
    ++load[w];
    if (heap_ok && !members[w].quarantined_any) heap.push({load[w], w});
  }
  return out;
}

Placement balance_ips_fast(const GroupSet& groups, const VipTable& table,
                           const std::vector<MemberState>& members) {
  Placement out;
  std::vector<std::uint32_t> mature;
  for (std::uint32_t i = 0; i < members.size(); ++i) {
    if (members[i].mature) mature.push_back(i);
  }
  if (mature.empty()) return out;

  const auto v_count = static_cast<std::uint32_t>(groups.size());

  std::vector<std::vector<std::uint32_t>> prefers(v_count);
  for (auto mi : mature) {
    for (auto p : members[mi].preferred) prefers[p].push_back(mi);
  }

  // Largest-remainder targets — arithmetic identical to the reference,
  // including the equal-shares fallback when the advertised mature
  // weights sum to zero or less.
  long total_weight = 0;
  for (auto mi : mature) total_weight += members[mi].weight;
  const bool equal_shares = total_weight <= 0;
  if (equal_shares) total_weight = static_cast<long>(mature.size());
  std::vector<std::size_t> target(members.size(), 0);
  std::vector<std::pair<long, std::size_t>> remainders;  // (-rem, index)
  remainders.reserve(mature.size());
  std::size_t assigned_total = 0;
  for (std::size_t i = 0; i < mature.size(); ++i) {
    long num = static_cast<long>(v_count) *
               (equal_shares ? 1 : members[mature[i]].weight);
    auto base = static_cast<std::size_t>(num / total_weight);
    target[mature[i]] = base;
    assigned_total += base;
    remainders.emplace_back(-(num % total_weight), i);
  }
  std::sort(remainders.begin(), remainders.end());
  for (std::size_t k = 0; assigned_total < v_count; ++k) {
    ++target[mature[remainders[k % remainders.size()].second]];
    ++assigned_total;
  }

  // Current holdings. The owner keeps a group only if it is mature and
  // not quarantined for it; everything else is homeless.
  std::unordered_map<gcs::MemberId, std::uint32_t, MemberIdHash> index_of;
  index_of.reserve(mature.size());
  for (auto mi : mature) index_of.emplace(members[mi].id, mi);

  std::vector<std::size_t> load(members.size(), 0);
  std::vector<std::vector<std::uint32_t>> held(members.size());
  std::vector<std::uint32_t> homeless;
  std::vector<std::int64_t> alloc(v_count, -1);
  for (std::uint32_t p = 0; p < v_count; ++p) {
    auto owner = table.owner(groups.ids[p]);
    std::int64_t omi = -1;
    if (owner) {
      auto it = index_of.find(*owner);
      if (it != index_of.end()) omi = it->second;
    }
    if (omi >= 0 &&
        !contains_pos(members[static_cast<std::uint32_t>(omi)].quarantined,
                      groups.canonical[p])) {
      held[static_cast<std::uint32_t>(omi)].push_back(p);
    } else {
      homeless.push_back(p);
    }
  }

  // Eviction from over-target members. Keep rank: own-preferred (0) <
  // neutral (1) < other-preferred (2); within a rank evict in reverse name
  // order — position order IS name order, so sorting (rank, position)
  // pairs reproduces the reference's string sort exactly.
  for (auto mi : mature) {
    auto& hg = held[mi];
    std::vector<std::pair<int, std::uint32_t>> ranked;
    ranked.reserve(hg.size());
    for (auto p : hg) {
      auto cp = groups.canonical[p];
      int rank = 1;
      if (contains_pos(members[mi].preferred, cp)) {
        rank = 0;
      } else {
        for (auto om : prefers[cp]) {
          if (om != mi) {
            rank = 2;
            break;
          }
        }
      }
      ranked.emplace_back(rank, p);
    }
    std::sort(ranked.begin(), ranked.end());
    hg.clear();
    for (const auto& [rank, p] : ranked) hg.push_back(p);
    while (hg.size() > target[mi]) {
      homeless.push_back(hg.back());
      hg.pop_back();
    }
    for (auto p : hg) alloc[p] = mi;
    load[mi] = hg.size();
  }

  // Homeless placement key is (not-preferred, raw load, membership order)
  // — no weight normalization here, matching the reference. Two lazy
  // heaps over quarantine-free members: `under` restricted to below-target
  // loads, `all` unrestricted. A fresh under-entry at/over target is
  // discarded for good: loads only grow during placement.
  std::vector<std::uint32_t> qfree;
  for (auto mi : mature) {
    if (!members[mi].quarantined_any) qfree.push_back(mi);
  }
  auto heap_worse = [](const HeapEntry& a, const HeapEntry& b) {
    if (a.load != b.load) return a.load > b.load;
    return a.idx > b.idx;
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, decltype(heap_worse)>
      under(heap_worse);
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, decltype(heap_worse)>
      all(heap_worse);
  for (auto mi : qfree) {
    if (load[mi] < target[mi]) under.push({load[mi], mi});
    all.push({load[mi], mi});
  }
  auto top_of = [&](auto& heap, bool respect_target) -> std::int64_t {
    while (!heap.empty()) {
      auto e = heap.top();
      if (e.load != load[e.idx] ||
          (respect_target && e.load >= target[e.idx])) {
        heap.pop();
        continue;
      }
      return e.idx;
    }
    return -1;
  };

  // Reference place(): full scan of one (respect_target, strictness)
  // tier. Strictness 1/0 only run when zero quarantine-free members
  // exist, so the linear cost never shows on the fast path.
  auto place_linear = [&](std::uint32_t cp, bool respect_target,
                          int strictness) -> std::int64_t {
    std::int64_t best = -1;
    for (auto mi : mature) {
      if (respect_target && load[mi] >= target[mi]) continue;
      if (strictness >= 2 && members[mi].quarantined_any) continue;
      if (strictness >= 1 && contains_pos(members[mi].quarantined, cp)) {
        continue;
      }
      if (best < 0) {
        best = mi;
        continue;
      }
      auto b = static_cast<std::uint32_t>(best);
      auto ka = std::make_pair(!contains_pos(members[mi].preferred, cp),
                               load[mi]);
      auto kb =
          std::make_pair(!contains_pos(members[b].preferred, cp), load[b]);
      if (ka < kb) best = mi;
    }
    return best;
  };

  std::sort(homeless.begin(), homeless.end());
  for (auto p : homeless) {
    auto cp = groups.canonical[p];
    // place(true, 2): under-target quarantine-free, preferring members
    // first (preference dominates the key), then the under-heap top.
    std::int64_t winner = -1;
    for (auto mi : prefers[cp]) {
      if (members[mi].quarantined_any || load[mi] >= target[mi]) continue;
      if (winner < 0 || load[mi] < load[static_cast<std::uint32_t>(winner)]) {
        winner = mi;
      }
    }
    if (winner < 0) winner = top_of(under, true);
    if (winner < 0) {
      // place(false, 2): same pool, target constraint dropped.
      for (auto mi : prefers[cp]) {
        if (members[mi].quarantined_any) continue;
        if (winner < 0 ||
            load[mi] < load[static_cast<std::uint32_t>(winner)]) {
          winner = mi;
        }
      }
      if (winner < 0) winner = top_of(all, false);
    }
    if (winner < 0) winner = place_linear(cp, true, 1);
    if (winner < 0) winner = place_linear(cp, false, 1);
    // Forced coverage: every mature member is fenced for this group.
    if (winner < 0) winner = place_linear(cp, false, 0);
    WAM_ASSERT(winner >= 0);  // targets sum to n by construction
    auto w = static_cast<std::uint32_t>(winner);
    alloc[p] = w;
    ++load[w];
    if (!members[w].quarantined_any) {
      if (load[w] < target[w]) under.push({load[w], w});
      all.push({load[w], w});
    }
  }

  out.reserve(v_count);
  for (std::uint32_t p = 0; p < v_count; ++p) {
    WAM_ASSERT(alloc[p] >= 0);
    out.emplace_back(p, static_cast<std::uint32_t>(alloc[p]));
  }
  return out;
}

std::map<std::string, gcs::MemberId> reallocate_ips(
    const std::vector<std::string>& all_groups, const VipTable& table,
    const std::vector<MemberInfo>& members) {
  GroupSet groups(all_groups);
  auto states = to_member_states(groups, members);
  std::map<std::string, gcs::MemberId> out;
  for (const auto& [p, mi] : reallocate_ips_fast(groups, table, states)) {
    out.emplace(groups.names[p], members[mi].id);
  }
  return out;
}

std::map<std::string, gcs::MemberId> balance_ips(
    const std::vector<std::string>& all_groups, const VipTable& table,
    const std::vector<MemberInfo>& members) {
  GroupSet groups(all_groups);
  auto states = to_member_states(groups, members);
  std::map<std::string, gcs::MemberId> out;
  for (const auto& [p, mi] : balance_ips_fast(groups, table, states)) {
    out.emplace(groups.names[p], members[mi].id);
  }
  if (!out.empty()) WAM_ENSURES(out.size() == all_groups.size());
  return out;
}

std::size_t load_imbalance(const VipTable& table,
                           const std::vector<MemberInfo>& members) {
  std::size_t lo = SIZE_MAX;
  std::size_t hi = 0;
  bool any = false;
  for (const auto& m : members) {
    if (!m.mature) continue;
    any = true;
    auto load = table.load_of(m.id);
    lo = std::min(lo, load);
    hi = std::max(hi, load);
  }
  return any ? hi - lo : 0;
}

}  // namespace wam::wackamole
