// The deterministic allocation procedures of the Wackamole algorithm:
// Reallocate_IPs() (run by every member at the end of GATHER) and
// Balance_IPs() (run by the representative on the balance timeout).
//
// Both are pure functions of (the complete VIP set, the synchronized
// current_table, the uniquely ordered member list with maturity and
// preferences). Determinism is what makes the distributed decision safe:
// every member computes the same answer from the same inputs (Lemma 1/2).
//
// Two API levels live here. The string-keyed reallocate_ips()/balance_ips()
// keep the original signatures and are what tests and casual callers use.
// Underneath they delegate to the *_fast() id-keyed procedures, which run
// on dense position arrays over a GroupSet and replace the old O(V*M)
// scan-every-member-per-group loops with a lazy-deletion min-heap:
// O((V+M)*log M) placement plus O(P*log V) preference indexing. The fast
// path reproduces the reference decisions byte-for-byte (see
// balance_legacy.hpp and tests/wam_balance_equivalence_test.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gcs/types.hpp"
#include "wackamole/group_ids.hpp"
#include "wackamole/vip_table.hpp"

namespace wam::wackamole {

/// Per-member knowledge gathered from STATE_MSGs, in membership-list order.
struct MemberInfo {
  gcs::MemberId id;
  bool mature = false;
  int weight = 1;  // relative capacity (balance targets are proportional)
  std::set<std::string> preferred;
  /// Groups this member has self-fenced (NOTIFY protocol): its enforcement
  /// layer cannot bind them. A non-empty set marks the whole member
  /// suspect, so both procedures hand new groups to quarantine-free
  /// members first (overloading them past their balance target if need
  /// be), then to members fenced only for OTHER groups, and force-assign a
  /// group to a member fenced for it only when every mature member is —
  /// someone must keep retrying rather than leave the address permanently
  /// dark. Groups a member already holds are kept on the per-group rule
  /// alone: bindings that stuck before the fence stay put.
  std::set<std::string> quarantined;
};

/// The complete VIP set in dense, name-sorted positional form. Built once
/// per configuration (the VIP list only changes on reconfig) and shared by
/// every allocation round. Positions — not GroupIds — are the working
/// currency of the fast path: position order IS name order, so iterating
/// positions yields the same deterministic sequence the reference
/// implementations got from sorting strings.
struct GroupSet {
  explicit GroupSet(const std::vector<std::string>& group_names);

  std::vector<std::string> names;  ///< name-sorted (duplicates preserved)
  std::vector<GroupId> ids;        ///< ids[pos] interned from names[pos]
  /// canonical[pos] is the first position carrying the same name; equal to
  /// pos whenever names are unique. Preference/quarantine position sets
  /// store canonical positions only.
  std::vector<std::uint32_t> canonical;

  [[nodiscard]] std::size_t size() const { return names.size(); }
  /// Position of an interned group id, or nullopt if not in this set.
  [[nodiscard]] std::optional<std::uint32_t> position_of(GroupId id) const;

 private:
  std::unordered_map<GroupId, std::uint32_t> pos_;
};

/// MemberInfo translated onto a GroupSet: preference and quarantine sets
/// become sorted canonical-position vectors, queried by binary search.
struct MemberState {
  gcs::MemberId id;
  bool mature = false;
  int weight = 1;
  std::vector<std::uint32_t> preferred;    ///< canonical positions, sorted
  std::vector<std::uint32_t> quarantined;  ///< canonical positions, sorted
  /// Fenced for ANY group — including groups outside the set. This is the
  /// strictness-2 "member is suspect" signal and must not be derived from
  /// `quarantined` above, which only covers in-set groups.
  bool quarantined_any = false;
};

/// Translate gathered MemberInfo onto `groups`. Preferences and
/// quarantines naming groups outside the set are dropped (they can never
/// be queried), except through MemberState::quarantined_any.
std::vector<MemberState> to_member_states(
    const GroupSet& groups, const std::vector<MemberInfo>& members);

/// Fast-path result: (group position, index into the members vector)
/// pairs in ascending position — i.e. group-name — order.
using Placement = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

/// Reallocate_IPs() on the dense representation: assignments for the
/// previously-uncovered groups only; empty if no member is mature.
Placement reallocate_ips_fast(const GroupSet& groups, const VipTable& table,
                              const std::vector<MemberState>& members);

/// Balance_IPs() on the dense representation: a complete allocation of
/// every position; empty if no member is mature.
Placement balance_ips_fast(const GroupSet& groups, const VipTable& table,
                           const std::vector<MemberState>& members);

/// Reallocate_IPs(): assign every uncovered group to exactly one mature
/// member. Scoring favours (a) members that listed the group as preferred,
/// (b) members with the lowest current load, (c) membership-list order.
/// Returns the assignments for previously-uncovered groups only; returns
/// empty if no member is mature (the bootstrap situation of §3.4).
std::map<std::string, gcs::MemberId> reallocate_ips(
    const std::vector<std::string>& all_groups, const VipTable& table,
    const std::vector<MemberInfo>& members);

/// Balance_IPs(): the representative's load-based re-allocation. Produces a
/// complete allocation in which every mature member's share is
/// proportional to its capacity weight (within one group), moving as few
/// groups as possible from the current table and honouring preferences
/// where it can.
std::map<std::string, gcs::MemberId> balance_ips(
    const std::vector<std::string>& all_groups, const VipTable& table,
    const std::vector<MemberInfo>& members);

/// Largest load difference between two mature members under `table`
/// (diagnostic used by benches and tests).
std::size_t load_imbalance(const VipTable& table,
                           const std::vector<MemberInfo>& members);

}  // namespace wam::wackamole
