// The deterministic allocation procedures of the Wackamole algorithm:
// Reallocate_IPs() (run by every member at the end of GATHER) and
// Balance_IPs() (run by the representative on the balance timeout).
//
// Both are pure functions of (the complete VIP set, the synchronized
// current_table, the uniquely ordered member list with maturity and
// preferences). Determinism is what makes the distributed decision safe:
// every member computes the same answer from the same inputs (Lemma 1/2).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "gcs/types.hpp"
#include "wackamole/vip_table.hpp"

namespace wam::wackamole {

/// Per-member knowledge gathered from STATE_MSGs, in membership-list order.
struct MemberInfo {
  gcs::MemberId id;
  bool mature = false;
  int weight = 1;  // relative capacity (balance targets are proportional)
  std::set<std::string> preferred;
  /// Groups this member has self-fenced (NOTIFY protocol): its enforcement
  /// layer cannot bind them. A non-empty set marks the whole member
  /// suspect, so both procedures hand new groups to quarantine-free
  /// members first (overloading them past their balance target if need
  /// be), then to members fenced only for OTHER groups, and force-assign a
  /// group to a member fenced for it only when every mature member is —
  /// someone must keep retrying rather than leave the address permanently
  /// dark. Groups a member already holds are kept on the per-group rule
  /// alone: bindings that stuck before the fence stay put.
  std::set<std::string> quarantined;
};

/// Reallocate_IPs(): assign every uncovered group to exactly one mature
/// member. Scoring favours (a) members that listed the group as preferred,
/// (b) members with the lowest current load, (c) membership-list order.
/// Returns the assignments for previously-uncovered groups only; returns
/// empty if no member is mature (the bootstrap situation of §3.4).
std::map<std::string, gcs::MemberId> reallocate_ips(
    const std::vector<std::string>& all_groups, const VipTable& table,
    const std::vector<MemberInfo>& members);

/// Balance_IPs(): the representative's load-based re-allocation. Produces a
/// complete allocation in which every mature member's share is
/// proportional to its capacity weight (within one group), moving as few
/// groups as possible from the current table and honouring preferences
/// where it can.
std::map<std::string, gcs::MemberId> balance_ips(
    const std::vector<std::string>& all_groups, const VipTable& table,
    const std::vector<MemberInfo>& members);

/// Largest load difference between two mature members under `table`
/// (diagnostic used by benches and tests).
std::size_t load_imbalance(const VipTable& table,
                           const std::vector<MemberInfo>& members);

}  // namespace wam::wackamole
