// Reference implementations of Reallocate_IPs() and Balance_IPs(), kept
// verbatim from before the indexed fast path existed. They are the oracle
// half of the equivalence suite (tests/wam_balance_equivalence_test.cpp)
// and the honest "before" side of the placement micro-benchmarks: the fast
// implementations in balance.cpp must reproduce these decisions
// byte-for-byte on every input.
//
// Do not optimise this file. Its value is that it stays the simple,
// obviously-correct O(V*M) formulation of the paper's procedures.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "gcs/types.hpp"
#include "wackamole/balance.hpp"
#include "wackamole/vip_table.hpp"

namespace wam::wackamole {

/// The original O(V*M) Reallocate_IPs(). Same contract as reallocate_ips().
std::map<std::string, gcs::MemberId> legacy_reallocate_ips(
    const std::vector<std::string>& all_groups, const VipTable& table,
    const std::vector<MemberInfo>& members);

/// The original O(V*M) Balance_IPs(). Same contract as balance_ips().
std::map<std::string, gcs::MemberId> legacy_balance_ips(
    const std::vector<std::string>& all_groups, const VipTable& table,
    const std::vector<MemberInfo>& members);

}  // namespace wam::wackamole
