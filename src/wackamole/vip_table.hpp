// The current_table of the Wackamole algorithm: which member covers which
// VIP group, plus the conflict-resolution rule of ResolveConflicts().
//
// Indexed representation: the owner map is keyed by interned GroupId and a
// member->owned-groups index is maintained incrementally on every
// set_owner/clear_owner/claim, so load_of() is O(1) and owned_by() is
// O(k log k) instead of the old full-map rescans. Everything that leaves
// the table in bulk (owners(), owned_by(), uncovered(), describe()) is
// sorted by group NAME — GroupIds are process-local first-use ids and must
// never order deterministic output.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "gcs/types.hpp"
#include "wackamole/group_ids.hpp"

namespace wam::wackamole {

/// Hash over the identity fields of MemberId (daemon ip, client id) — the
/// informational name is ignored, matching operator==.
struct MemberIdHash {
  std::size_t operator()(const gcs::MemberId& m) const {
    auto key = (static_cast<std::uint64_t>(m.daemon.value()) << 32) |
               static_cast<std::uint64_t>(m.client);
    return std::hash<std::uint64_t>()(key);
  }
};

class VipTable {
 public:
  void clear() {
    owners_.clear();
    members_.clear();
    checksum_ = 0;
  }

  // ---- Name-keyed API (config-parse / test boundary) ----
  [[nodiscard]] std::optional<gcs::MemberId> owner(
      const std::string& group) const;
  void set_owner(const std::string& group, const gcs::MemberId& member);
  void clear_owner(const std::string& group);

  // ---- Id-keyed API (the protocol fast path) ----
  [[nodiscard]] std::optional<gcs::MemberId> owner(GroupId id) const;
  void set_owner(GroupId id, const gcs::MemberId& member);
  void clear_owner(GroupId id);
  /// Raw owner map; iteration order is arbitrary — sort by name before
  /// producing any deterministic output from it.
  [[nodiscard]] const std::unordered_map<GroupId, gcs::MemberId>& owner_ids()
      const {
    return owners_;
  }
  [[nodiscard]] std::size_t size() const { return owners_.size(); }

  /// Number of groups owned by `member` — O(1).
  [[nodiscard]] std::size_t load_of(const gcs::MemberId& member) const;
  /// Groups owned by `member`, sorted by name — O(k log k).
  [[nodiscard]] std::vector<std::string> owned_by(
      const gcs::MemberId& member) const;
  /// Groups in `all` with no owner, sorted.
  [[nodiscard]] std::vector<std::string> uncovered(
      const std::vector<std::string>& all) const;
  /// Name-sorted snapshot of the full table (materialized per call; hot
  /// paths should use owner_ids() or the id lookups instead).
  [[nodiscard]] std::map<std::string, gcs::MemberId> owners() const;

  /// ResolveConflicts() for one claim: `claimant` reports covering `group`.
  /// If another member already claims it, the paper's deterministic rule
  /// applies — the claimant that appears EARLIER in the membership list
  /// releases the address (Lemma 1's proof: "p ... will release vip if p
  /// appears in the membership list of S' before q"). Returns which member,
  /// if any, lost its claim.
  struct ClaimResult {
    bool claimed = false;  // claimant holds the group after the call
    std::optional<gcs::MemberId> dropped;
  };
  ClaimResult claim(const std::string& group, const gcs::MemberId& claimant,
                    const gcs::GroupView& view);
  ClaimResult claim(GroupId id, const gcs::MemberId& claimant,
                    const gcs::GroupView& view);

  [[nodiscard]] std::string describe() const;

  // ---- Guarded-state hooks (self-stabilization layer) ----
  /// Incrementally maintained XOR checksum over every (group, owner)
  /// entry. O(1) to read; any single corrupted entry flips it.
  [[nodiscard]] std::uint64_t checksum() const { return checksum_; }
  /// Recompute the checksum from owners_ and compare — O(V).
  [[nodiscard]] bool verify_checksum() const;
  /// Recompute the member->groups index from owners_ and compare — O(V).
  /// Detects index drift that the checksum (owners_-only) cannot see.
  [[nodiscard]] bool verify_index() const;
  /// Discard and rebuild the derived state (index + checksum) from the
  /// owner map. The owner map itself is the recovery root here; entries
  /// that are wrong against the VIEW are the daemon's job to fence.
  void rebuild();

  /// Chaos backdoors: corrupt state without maintaining the invariants —
  /// exactly what a stray write would do. Test/injection use only.
  /// Overwrites the owner entry, bypassing index and checksum updates.
  void chaos_set_owner_unchecked(GroupId id, const gcs::MemberId& member);
  /// Desync the member index only: drop the indexed entry for `id` when
  /// present, otherwise insert a phantom entry under `bogus`.
  void chaos_corrupt_index_entry(GroupId id, const gcs::MemberId& bogus);

 private:
  void link(GroupId id, const gcs::MemberId& member);
  void unlink(GroupId id, const gcs::MemberId& member);
  static std::uint64_t entry_hash(GroupId id, const gcs::MemberId& member);

  std::unordered_map<GroupId, gcs::MemberId> owners_;
  /// member -> groups it owns; load_of() is the set size.
  std::unordered_map<gcs::MemberId, std::unordered_set<GroupId>, MemberIdHash>
      members_;
  std::uint64_t checksum_ = 0;
};

}  // namespace wam::wackamole
