// The current_table of the Wackamole algorithm: which member covers which
// VIP group, plus the conflict-resolution rule of ResolveConflicts().
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "gcs/types.hpp"

namespace wam::wackamole {

class VipTable {
 public:
  void clear() { owners_.clear(); }

  [[nodiscard]] std::optional<gcs::MemberId> owner(
      const std::string& group) const;
  void set_owner(const std::string& group, const gcs::MemberId& member);
  void clear_owner(const std::string& group);

  /// Number of groups owned by `member`.
  [[nodiscard]] std::size_t load_of(const gcs::MemberId& member) const;
  /// Groups owned by `member`, sorted by name.
  [[nodiscard]] std::vector<std::string> owned_by(
      const gcs::MemberId& member) const;
  /// Groups in `all` with no owner, sorted.
  [[nodiscard]] std::vector<std::string> uncovered(
      const std::vector<std::string>& all) const;
  [[nodiscard]] const std::map<std::string, gcs::MemberId>& owners() const {
    return owners_;
  }

  /// ResolveConflicts() for one claim: `claimant` reports covering `group`.
  /// If another member already claims it, the paper's deterministic rule
  /// applies — the claimant that appears EARLIER in the membership list
  /// releases the address (Lemma 1's proof: "p ... will release vip if p
  /// appears in the membership list of S' before q"). Returns which member,
  /// if any, lost its claim.
  struct ClaimResult {
    bool claimed = false;  // claimant holds the group after the call
    std::optional<gcs::MemberId> dropped;
  };
  ClaimResult claim(const std::string& group, const gcs::MemberId& claimant,
                    const gcs::GroupView& view);

  [[nodiscard]] std::string describe() const;

 private:
  std::map<std::string, gcs::MemberId> owners_;
};

}  // namespace wam::wackamole
