// Wackamole configuration.
//
// A cluster covers a set of virtual IP addresses organized into VIP GROUPS:
// indivisible sets of addresses that always move together (Section 5.2 —
// a virtual router must hold its address on every attached network
// simultaneously). Web-cluster deployments simply use one group per VIP.
//
// Every daemon must be configured with the same vip_groups; preferences are
// per-server and propagate through state messages.
#pragma once

#include <string>
#include <vector>

#include "net/address.hpp"
#include "sim/time.hpp"

namespace wam::wackamole {

/// One indivisible unit of fail-over: a named set of (address, interface)
/// pairs owned by exactly one server at a time.
struct VipGroup {
  std::string name;
  /// (virtual address, interface index it lives on).
  std::vector<std::pair<net::Ipv4Address, int>> addresses;
};

struct Config {
  /// The complete set I of virtual addresses, identical across the cluster.
  std::vector<VipGroup> vip_groups;
  /// Names of groups this server prefers to own (paper §3.4: "explicit
  /// preferences specified by each server at startup").
  std::vector<std::string> preferred;
  /// Relative capacity weight for load balancing (a weight-2 server aims
  /// for twice the VIPs of a weight-1 server). Propagated via STATE_MSGs
  /// like preferences.
  int weight = 1;

  /// GCS process group name.
  std::string group = "wackamole";

  /// Re-balancing trigger period in the RUN state (§3.4). Zero disables.
  sim::Duration balance_timeout = sim::seconds(60.0);
  /// Bootstrap maturity timeout (§3.4): an immature server that meets no
  /// mature peer starts managing addresses after this delay.
  sim::Duration maturity_timeout = sim::seconds(30.0);
  /// Start mature (skips the bootstrap optimization; used in tests).
  bool start_mature = false;
  /// Retry period for reconnecting to a dead local GCS daemon (§4.2).
  sim::Duration reconnect_interval = sim::seconds(2.0);
  /// Router application: period for sharing local ARP-cache knowledge so
  /// peers know whom to notify on takeover (§5.2). Zero disables.
  sim::Duration arp_share_interval = sim::kZero;
  /// Periodically re-announce held addresses (gratuitous ARP refresh); an
  /// anti-entropy measure against lost spoof packets. Zero disables.
  sim::Duration announce_interval = sim::kZero;
  /// §4.2: "all decisions are made by a deterministically chosen
  /// representative and imposed upon the other daemons, rather than made
  /// independently by each daemon through a deterministic decision
  /// process." When true, Reallocate_IPs() runs only at the representative,
  /// whose ALLOC_MSG carries the full assignment to everyone else.
  bool representative_driven = false;
  /// Encode STATE/BALANCE/ALLOC with the compact v2 wire format (wire
  /// format v2: per-message name table, varint counts, interned indices).
  /// Decoding accepts both formats regardless, so a mixed cluster works;
  /// turn this off to interoperate with peers that predate v2.
  bool compact_wire = true;

  // ---- Fallible enforcement layer (OS-op retry / self-fence) ----
  /// Failed acquire attempts tolerated per group before self-fencing
  /// (NOTIFY protocol). Counts the initial attempt: 4 = initial + 3 retries.
  int acquire_retry_limit = 4;
  /// Base delay of the exponential acquire/release backoff: the n-th retry
  /// waits base * 2^(n-1), capped at acquire_backoff_max.
  sim::Duration acquire_backoff = sim::milliseconds(100);
  sim::Duration acquire_backoff_max = sim::seconds(2.0);
  /// Multiplicative jitter: each backoff delay is scaled by a uniform draw
  /// from [1 - jitter, 1 + jitter]. Zero disables (exact schedules in
  /// tests).
  double backoff_jitter = 0.2;
  /// How long a self-fenced group stays quarantined before the daemon
  /// probes the enforcement layer again and, on success, broadcasts a
  /// NOTIFY clear.
  sim::Duration quarantine_cooldown = sim::seconds(30.0);

  // ---- Self-stabilization (state audit / recovery) ----
  /// Period of the StateAuditor sweep over the daemon's hot state. Zero
  /// (the default) disables auditing entirely — both the timer and the
  /// protocol-message-boundary checks — so pre-existing pinned seeds
  /// replay byte-identically.
  sim::Duration audit_interval = sim::kZero;
  /// Base delay before a corruption-triggered resync (leave + rejoin of
  /// the group to rebuild state from peers' STATE_MSGs). Consecutive
  /// resyncs back off exponentially from this base...
  sim::Duration resync_delay = sim::seconds(1.0);
  /// ...capped here, damping reconfiguration storms: a daemon whose state
  /// keeps corrupting converges to one membership change per cap period.
  sim::Duration resync_backoff_max = sim::seconds(30.0);

  /// Sorted group names (the canonical iteration order of set I).
  [[nodiscard]] std::vector<std::string> group_names() const;
  [[nodiscard]] const VipGroup* find_group(const std::string& name) const;
  /// Throws ContractViolation on duplicate group names / addresses or an
  /// empty group.
  void validate() const;

  /// Convenience: one single-address group per VIP on interface `ifindex`
  /// (the web-cluster deployment of Figure 3).
  static Config web_cluster(const std::vector<net::Ipv4Address>& vips,
                            int ifindex = 0);
};

}  // namespace wam::wackamole
