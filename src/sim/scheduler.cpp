#include "sim/scheduler.hpp"

#include <cinttypes>
#include <cstdio>

#include "util/assert.hpp"

namespace wam::sim {

void TimerHandle::cancel() {
  if (state_) state_->cancelled = true;
}

bool TimerHandle::pending() const {
  return state_ && !state_->cancelled && !state_->fired;
}

TimerHandle Scheduler::schedule(Duration delay, std::function<void()> fn) {
  if (delay < kZero) delay = kZero;
  return schedule_at(now_ + delay, std::move(fn));
}

TimerHandle Scheduler::schedule_at(TimePoint when, std::function<void()> fn) {
  WAM_EXPECTS(fn != nullptr);
  if (when < now_) when = now_;
  auto state = std::make_shared<TimerHandle::State>();
  queue_.push(Event{when, next_seq_++, std::move(fn), state});
  return TimerHandle(state);
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (ev.state->cancelled) continue;
    WAM_ASSERT(ev.when >= now_);
    now_ = ev.when;
    ev.state->fired = true;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Scheduler::run_until(TimePoint deadline) {
  while (!queue_.empty()) {
    // Skip over cancelled events without advancing time.
    if (queue_.top().state->cancelled) {
      queue_.pop();
      continue;
    }
    if (queue_.top().when > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

void Scheduler::run_all() {
  while (step()) {
  }
}

std::string format_duration(Duration d) {
  char buf[64];
  auto ns = d.count();
  if (ns >= 1000000000 || ns <= -1000000000) {
    std::snprintf(buf, sizeof(buf), "%.3fs", to_seconds(d));
  } else if (ns >= 1000000 || ns <= -1000000) {
    std::snprintf(buf, sizeof(buf), "%.3fms", to_millis(d));
  } else if (ns >= 1000 || ns <= -1000) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "us", ns / 1000);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "ns", ns);
  }
  return buf;
}

std::string format_time(TimePoint t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "t=%.6fs", to_seconds(t.time_since_epoch()));
  return buf;
}

}  // namespace wam::sim
