#include "sim/scheduler.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace wam::sim {

void Scheduler::run_until(TimePoint deadline) {
  while (!heap_.empty()) {
    // Skip over cancelled events without advancing time.
    if (!entry_live(heap_.front())) {
      pop_entry();
      continue;
    }
    if (heap_.front().when > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

void Scheduler::run_until_exclusive(TimePoint end) {
  while (!heap_.empty()) {
    if (!entry_live(heap_.front())) {
      pop_entry();
      continue;
    }
    if (heap_.front().when >= end) break;
    step();
  }
  if (now_ < end) now_ = end;
}

void Scheduler::run_all() {
  while (step()) {
  }
}

void Scheduler::compact() {
  auto stale = [this](const Entry& e) { return !entry_live(e); };
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(), stale), heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), Later{});
}

std::string format_duration(Duration d) {
  char buf[64];
  auto ns = d.count();
  if (ns >= 1000000000 || ns <= -1000000000) {
    std::snprintf(buf, sizeof(buf), "%.3fs", to_seconds(d));
  } else if (ns >= 1000000 || ns <= -1000000) {
    std::snprintf(buf, sizeof(buf), "%.3fms", to_millis(d));
  } else if (ns >= 1000 || ns <= -1000) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "us", ns / 1000);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "ns", ns);
  }
  return buf;
}

std::string format_time(TimePoint t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "t=%.6fs", to_seconds(t.time_since_epoch()));
  return buf;
}

}  // namespace wam::sim
