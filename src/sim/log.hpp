// Simulation-aware logging.
//
// Log lines carry the virtual timestamp and a component tag ("gcs/s3",
// "wam/s1", "net"). Records are kept in an in-memory ring so tests can
// assert on protocol activity, and optionally echoed to stderr when
// WAM_LOG=1 (or set_echo(true)) for debugging runs.
#pragma once

#include <cstdarg>
#include <deque>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace wam::sim {

class Scheduler;

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError };

const char* log_level_name(LogLevel level);

struct LogRecord {
  TimePoint time;
  LogLevel level;
  std::string component;
  std::string message;

  [[nodiscard]] std::string render() const;
};

/// One Log per simulation; components hold (Log*, tag) pairs.
class Log {
 public:
  explicit Log(const Scheduler& sched, std::size_t capacity = 65536)
      : sched_(&sched), capacity_(capacity) {
    // Environment opt-in for interactive debugging.
    if (const char* e = ::getenv("WAM_LOG"); e && e[0] == '1') echo_ = true;
  }

  void set_echo(bool on) { echo_ = on; }
  void set_min_level(LogLevel level) { min_level_ = level; }
  [[nodiscard]] LogLevel min_level() const { return min_level_; }
  /// Threshold check, exposed so Logger can skip vsnprintf formatting for
  /// records that would be discarded anyway (hot in Trace-heavy runs).
  [[nodiscard]] bool would_log(LogLevel level) const {
    return level >= min_level_;
  }

  void write(LogLevel level, std::string component, std::string message);

  [[nodiscard]] const std::deque<LogRecord>& records() const { return records_; }
  /// Records whose component starts with `prefix` and message contains `needle`.
  [[nodiscard]] std::vector<LogRecord> find(const std::string& prefix,
                                            const std::string& needle = "") const;
  [[nodiscard]] std::size_t count(const std::string& prefix,
                                  const std::string& needle = "") const;
  void clear() { records_.clear(); }

 private:
  const Scheduler* sched_;
  std::size_t capacity_;
  bool echo_ = false;
  LogLevel min_level_ = LogLevel::kTrace;
  std::deque<LogRecord> records_;
};

/// Lightweight facade bound to one component tag.
class Logger {
 public:
  Logger() = default;
  Logger(Log* log, std::string component)
      : log_(log), component_(std::move(component)) {}

  void trace(const char* fmt, ...) const __attribute__((format(printf, 2, 3)));
  void debug(const char* fmt, ...) const __attribute__((format(printf, 2, 3)));
  void info(const char* fmt, ...) const __attribute__((format(printf, 2, 3)));
  void warn(const char* fmt, ...) const __attribute__((format(printf, 2, 3)));
  void error(const char* fmt, ...) const __attribute__((format(printf, 2, 3)));

  [[nodiscard]] bool enabled() const { return log_ != nullptr; }
  [[nodiscard]] const std::string& component() const { return component_; }

 private:
  void vwrite(LogLevel level, const char* fmt, std::va_list ap) const;

  Log* log_ = nullptr;
  std::string component_;
};

}  // namespace wam::sim
