#include "sim/script.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace wam::sim {

Script& Script::at(TimePoint when, std::string description,
                   std::function<void()> action) {
  WAM_EXPECTS(action != nullptr);
  entries_.push_back(Entry{when, std::move(description), std::move(action)});
  return *this;
}

TimePoint Script::end() const {
  TimePoint latest{};
  for (const auto& e : entries_) latest = std::max(latest, e.when);
  return latest;
}

void Script::arm(Scheduler& sched,
                 std::function<void(const Entry&)> narrate) const {
  for (const auto& entry : entries_) {
    sched.schedule_at(entry.when, [entry, narrate] {
      if (narrate) narrate(entry);
      entry.action();
    });
  }
}

}  // namespace wam::sim
