#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/assert.hpp"

namespace wam::sim {

double Stats::mean() const {
  WAM_EXPECTS(!empty());
  double sum = 0;
  for (double x : samples_) sum += x;
  return sum / static_cast<double>(samples_.size());
}

double Stats::min() const {
  WAM_EXPECTS(!empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double Stats::max() const {
  WAM_EXPECTS(!empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double Stats::stddev() const {
  WAM_EXPECTS(!empty());
  if (samples_.size() == 1) return 0.0;
  double m = mean();
  double acc = 0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

const std::vector<double>& Stats::sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  return sorted_;
}

void Stats::merge(const Stats& other) {
  if (other.empty()) return;
  const bool this_view_ok = sorted_valid_ || samples_.empty();
  const bool other_view_ok = other.sorted_valid_;
  if (this_view_ok && other_view_ok) {
    const std::vector<double>& mine = sorted_valid_ ? sorted_ : samples_;
    std::vector<double> merged;
    merged.resize(mine.size() + other.sorted_.size());
    std::merge(mine.begin(), mine.end(), other.sorted_.begin(),
               other.sorted_.end(), merged.begin());
    sorted_ = std::move(merged);
    sorted_valid_ = true;
  } else {
    sorted_valid_ = false;
  }
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
}

double Stats::percentile(double p) const {
  WAM_EXPECTS(!empty());
  WAM_EXPECTS(p >= 0.0 && p <= 100.0);
  const auto& view = sorted();
  auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(view.size())));
  if (rank == 0) rank = 1;
  return view[rank - 1];
}

std::string Stats::summary() const {
  if (empty()) return "n=0";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.4f min=%.4f max=%.4f p50=%.4f stddev=%.4f",
                count(), mean(), min(), max(), median(), stddev());
  return buf;
}

}  // namespace wam::sim
