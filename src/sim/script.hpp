// Declarative fault/event scripts.
//
// A Script is an ordered list of (time, description, action) entries that
// can be scheduled onto a Scheduler in one call. Tests and benches use it
// to express fault loads as data ("at 5 s partition {A,B}|{C}; at 12 s
// merge") instead of imperative timer plumbing, and the scenario-runner
// example parses a small text DSL into one.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"

namespace wam::sim {

class Script {
 public:
  struct Entry {
    TimePoint when;
    std::string description;
    std::function<void()> action;
  };

  /// Add an action at an absolute virtual time.
  Script& at(TimePoint when, std::string description,
             std::function<void()> action);
  Script& at(Duration when_since_epoch, std::string description,
             std::function<void()> action) {
    return at(TimePoint(when_since_epoch), std::move(description),
              std::move(action));
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
  /// Latest entry time (epoch if empty) — handy for run_until.
  [[nodiscard]] TimePoint end() const;

  /// Schedule every entry; `narrate` (optional) observes each firing.
  void arm(Scheduler& sched,
           std::function<void(const Entry&)> narrate = nullptr) const;

 private:
  std::vector<Entry> entries_;
};

}  // namespace wam::sim
