#include "sim/shard.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace wam::sim {

ShardSet::ShardSet(Scheduler& primary, int count, Duration lookahead)
    : lookahead_(lookahead) {
  WAM_EXPECTS(count >= 1);
  WAM_EXPECTS(lookahead > kZero);
  shards_.push_back(&primary);
  for (int i = 1; i < count; ++i) {
    owned_.push_back(std::make_unique<Scheduler>());
    shards_.push_back(owned_.back().get());
  }
  const auto n = static_cast<std::size_t>(count);
  out_.resize(n);
  for (auto& row : out_) row.resize(n);
  out_seq_.assign(n, 0);
  inbox_.resize(n);
  worker_errors_.resize(n);
}

ShardSet::~ShardSet() {
  if (!workers_.empty()) {
    stop_.store(true, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    for (auto& w : workers_) w.join();
  }
}

void ShardSet::post(int from, int to, TimePoint when, util::SmallFn fn) {
  WAM_EXPECTS(from >= 0 && from < size() && to >= 0 && to < size());
  // The conservative guarantee: a message posted during a window may not
  // land inside it. Catching a violation here (instead of delivering late)
  // turns a lookahead misconfiguration into an immediate, debuggable fail.
  WAM_ASSERT(when >= window_end_);
  auto& box = out_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)];
  box.push_back(Pending{when, static_cast<std::uint32_t>(from),
                        out_seq_[static_cast<std::size_t>(from)]++,
                        std::move(fn)});
}

void ShardSet::drain_inbox(int shard) {
  auto& box = inbox_[static_cast<std::size_t>(shard)];
  if (box.empty()) return;
  // Canonical insertion order: (arrival time, source shard, source seq).
  // The destination scheduler breaks its (when) ties by insertion seq, so
  // sorting here pins the cross-shard tie-break regardless of which thread
  // finished its window first.
  std::sort(box.begin(), box.end(), [](const Pending& a, const Pending& b) {
    if (a.when != b.when) return a.when < b.when;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  });
  Scheduler& sched = *shards_[static_cast<std::size_t>(shard)];
  for (Pending& p : box) sched.schedule_at(p.when, std::move(p.fn));
  box.clear();
}

void ShardSet::run_window(int shard, TimePoint wend, bool final_window) {
  drain_inbox(shard);
  Scheduler& sched = *shards_[static_cast<std::size_t>(shard)];
  if (final_window) {
    sched.run_until(wend);  // inclusive: events at exactly `wend` run
  } else {
    sched.run_until_exclusive(wend);
  }
}

void ShardSet::collect_outboxes() {
  for (std::size_t dst = 0; dst < out_.size(); ++dst) {
    auto& in = inbox_[dst];
    for (std::size_t src = 0; src < out_.size(); ++src) {
      auto& box = out_[src][dst];
      posts_ += box.size();
      for (Pending& p : box) in.push_back(std::move(p));
      box.clear();  // keeps capacity for the next window
    }
  }
}

void ShardSet::start_workers() {
  if (!workers_.empty()) return;
  for (int i = 1; i < size(); ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

void ShardSet::worker_loop(int shard) {
  std::uint64_t seen = 0;
  while (true) {
    // Spin briefly, then yield: cheap rendezvous on many-core boxes,
    // cooperative on over-subscribed ones (CI runners, single-core).
    int spins = 0;
    while (epoch_.load(std::memory_order_acquire) == seen) {
      if (++spins > 64) std::this_thread::yield();
    }
    seen = epoch_.load(std::memory_order_acquire);
    if (stop_.load(std::memory_order_relaxed)) return;
    try {
      run_window(shard, window_end_, final_window_);
    } catch (...) {
      worker_errors_[static_cast<std::size_t>(shard)] =
          std::current_exception();
    }
    done_.fetch_add(1, std::memory_order_release);
  }
}

void ShardSet::rethrow_worker_failure() {
  for (auto& err : worker_errors_) {
    if (err) {
      std::exception_ptr e = err;
      err = nullptr;
      std::rethrow_exception(e);
    }
  }
}

void ShardSet::run_windows_threaded(TimePoint wend, bool final_window) {
  start_workers();
  done_.store(0, std::memory_order_relaxed);
  window_end_ = wend;
  final_window_ = final_window;
  epoch_.fetch_add(1, std::memory_order_release);
  run_window(0, wend, final_window);  // shard 0 on the calling thread
  int spins = 0;
  while (done_.load(std::memory_order_acquire) < size() - 1) {
    if (++spins > 64) std::this_thread::yield();
  }
  rethrow_worker_failure();
}

void ShardSet::run_until(TimePoint deadline) {
  if (size() == 1) {
    // Degenerate single-shard set: no cross-shard traffic is possible, so
    // this IS the sequential engine (the oracle the tests compare against).
    drain_inbox(0);
    shards_[0]->run_until(deadline);
    window_end_ = deadline;
    return;
  }
  TimePoint t = now();
  for (int i = 1; i < size(); ++i) {
    WAM_EXPECTS(shard(i).now() == t);  // quiesced entry invariant
  }
  WAM_EXPECTS(t <= deadline);
  while (true) {
    const bool final_window = deadline - t <= lookahead_;
    const TimePoint wend = final_window ? deadline : t + lookahead_;
    ++windows_;
    if (threads_enabled_) {
      run_windows_threaded(wend, final_window);
    } else {
      window_end_ = wend;
      final_window_ = final_window;
      for (int i = 0; i < size(); ++i) run_window(i, wend, final_window);
    }
    collect_outboxes();
    t = wend;
    if (final_window) break;
  }
  // Leave no message stranded in staging: arrivals beyond `deadline` are
  // scheduled into their destination now, so pending_events() is accurate
  // and a later run_until starts from plain scheduler state.
  for (int i = 0; i < size(); ++i) drain_inbox(i);
}

}  // namespace wam::sim
