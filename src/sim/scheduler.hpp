// Discrete-event scheduler: the heart of the simulation.
//
// Events are (time, sequence, callback) triples ordered by a binary
// min-heap; ties on time break by insertion sequence so execution order is
// deterministic. Timers are cancellable through generation-checked
// handles, which protocol code uses heavily (every heartbeat /
// fault-detection / discovery timeout is a Timer).
//
// Hot-path design (this is the bottleneck of every bench and chaos run):
//   * Callbacks live in a slab of recycled nodes. Scheduling takes a node
//     off the free list and pushes a 24-byte entry onto the heap — no
//     shared_ptr control block, and no std::function heap allocation for
//     captures up to util::SmallFn::kInlineCapacity bytes.
//   * TimerHandle is a (scheduler, slot, generation) triple. cancel() is
//     O(1): it releases the node immediately (running the capture's
//     destructor, so resources are freed at cancel time) and bumps the
//     slot generation; the stale heap entry is lazily discarded when it
//     surfaces, never sifted out. A handle therefore must not outlive its
//     Scheduler — true everywhere in this codebase, where components hold
//     a reference to the scheduler that schedules for them.
//   * When stale entries dominate the heap it is compacted in one O(n)
//     sweep, so cancel-heavy workloads (heartbeat timers that are armed
//     and re-armed forever) stay bounded.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "util/assert.hpp"
#include "util/small_fn.hpp"

namespace wam::sim {

class Scheduler;

/// Cancellable handle to a scheduled event. Default-constructed handles are
/// inert; cancel() after the event fired is a harmless no-op. Copyable:
/// every copy observes the same fire/cancel state via the slot generation.
class TimerHandle {
 public:
  TimerHandle() = default;

  void cancel();
  [[nodiscard]] bool pending() const;

 private:
  friend class Scheduler;
  TimerHandle(Scheduler* sched, std::uint32_t slot, std::uint32_t gen)
      : sched_(sched), slot_(slot), gen_(gen) {}

  Scheduler* sched_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedule `fn` to run at now()+delay (delay may be zero; negative delays
  /// are clamped to zero). Returns a cancellable handle.
  TimerHandle schedule(Duration delay, util::SmallFn fn);
  TimerHandle schedule_at(TimePoint when, util::SmallFn fn);

  /// Run events until the queue is empty or the virtual clock would pass
  /// `deadline`. The clock ends at min(deadline, last event time).
  void run_until(TimePoint deadline);
  /// Like run_until, but events at exactly `end` do NOT run; the clock is
  /// left at `end`. This is the window primitive of the sharded engine
  /// (sim/shard.hpp): a lookahead window [start, end) owns the half-open
  /// interval, and the next window's run picks up the boundary events.
  void run_until_exclusive(TimePoint end);
  /// Run for a span of virtual time from now().
  void run_for(Duration span) { run_until(now_ + span); }
  /// Drain every queued event (careful with self-rearming timers).
  void run_all();
  /// Execute the single next event, if any. Returns false when idle.
  bool step();

  /// Live (scheduled, not cancelled, not yet fired) events.
  [[nodiscard]] std::size_t pending_events() const { return live_; }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }
  /// Nodes currently in the slab (live + free-listed); observability for
  /// tests and benches pinning the no-allocation steady state.
  [[nodiscard]] std::size_t slab_size() const { return slab_.size(); }

 private:
  friend class TimerHandle;

  struct Node {
    util::SmallFn fn;
    std::uint32_t gen = 0;        // bumped on fire/cancel; validates handles
    std::uint32_t next_free = 0;  // free-list link (kNil when live)
  };
  /// Heap entry: everything ordering needs, nothing else, so sift
  /// operations move 24 bytes instead of a std::function.
  struct Entry {
    TimePoint when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  static constexpr std::uint32_t kNil = 0xffffffffu;

  /// std::push_heap/pop_heap comparator (max-heap inverted to a min-heap):
  /// true when `a` runs after `b`. seq is unique, so the order is total
  /// and execution stays byte-for-byte deterministic. A functor rather
  /// than a function so the sift loops inline the comparison.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  [[nodiscard]] std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void cancel_slot(std::uint32_t slot, std::uint32_t gen);
  [[nodiscard]] bool slot_pending(std::uint32_t slot, std::uint32_t gen) const;
  [[nodiscard]] bool entry_live(const Entry& e) const {
    return slab_[e.slot].gen == e.gen;
  }
  void push_entry(const Entry& e);
  void pop_entry();
  void compact();

  TimePoint now_{};
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  std::vector<Node> slab_;
  std::uint32_t free_head_ = kNil;
  std::vector<Entry> heap_;  // binary min-heap on (when, seq)
};

// ---- Hot path, defined inline ----
//
// schedule/step and the slot bookkeeping are the innermost loop of every
// simulation (bench_micro_core measures them directly); keeping them in
// the header lets each caller inline the slab fast path.

inline void TimerHandle::cancel() {
  if (sched_ != nullptr) sched_->cancel_slot(slot_, gen_);
}

inline bool TimerHandle::pending() const {
  return sched_ != nullptr && sched_->slot_pending(slot_, gen_);
}

inline std::uint32_t Scheduler::acquire_slot() {
  if (free_head_ != kNil) {
    std::uint32_t slot = free_head_;
    free_head_ = slab_[slot].next_free;
    slab_[slot].next_free = kNil;
    return slot;
  }
  slab_.emplace_back();
  slab_.back().next_free = kNil;
  return static_cast<std::uint32_t>(slab_.size() - 1);
}

inline void Scheduler::release_slot(std::uint32_t slot) {
  Node& n = slab_[slot];
  n.fn.reset();  // run capture destructors now, not at heap-pop time
  ++n.gen;       // invalidates every outstanding handle and heap entry
  n.next_free = free_head_;
  free_head_ = slot;
  --live_;
}

inline void Scheduler::cancel_slot(std::uint32_t slot, std::uint32_t gen) {
  if (slot >= slab_.size() || slab_[slot].gen != gen) return;  // already done
  release_slot(slot);
  // The heap entry stays behind (lazy deletion); discard en masse if the
  // queue is now mostly stale so cancel-heavy phases stay bounded.
  if (heap_.size() > 64 && heap_.size() > 2 * live_) compact();
}

inline bool Scheduler::slot_pending(std::uint32_t slot,
                                    std::uint32_t gen) const {
  return slot < slab_.size() && slab_[slot].gen == gen;
}

inline void Scheduler::push_entry(const Entry& e) {
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

inline void Scheduler::pop_entry() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  heap_.pop_back();
}

inline TimerHandle Scheduler::schedule(Duration delay, util::SmallFn fn) {
  if (delay < kZero) delay = kZero;
  return schedule_at(now_ + delay, std::move(fn));
}

inline TimerHandle Scheduler::schedule_at(TimePoint when, util::SmallFn fn) {
  WAM_EXPECTS(static_cast<bool>(fn));
  if (when < now_) when = now_;
  std::uint32_t slot = acquire_slot();
  Node& n = slab_[slot];
  n.fn = std::move(fn);
  Entry e{when, next_seq_++, slot, n.gen};
  push_entry(e);
  ++live_;
  return TimerHandle(this, slot, e.gen);
}

inline bool Scheduler::step() {
  while (!heap_.empty()) {
    Entry e = heap_.front();
    pop_entry();
    if (!entry_live(e)) continue;  // cancelled: lazy deletion
    WAM_ASSERT(e.when >= now_);
    now_ = e.when;
    // Move the callback out and recycle the node *before* invoking: the
    // callback may schedule (reusing this very slot) or cancel reentrantly,
    // and a cancel of its own handle must be the documented no-op.
    util::SmallFn fn = std::move(slab_[e.slot].fn);
    release_slot(e.slot);
    ++executed_;
    fn();
    return true;
  }
  return false;
}

}  // namespace wam::sim
