// Discrete-event scheduler: the heart of the simulation.
//
// Events are (time, sequence, callback) triples in a min-heap; ties on time
// break by insertion sequence so execution order is deterministic. Timers
// are cancellable through generation-checked handles, which protocol code
// uses heavily (every heartbeat / fault-detection / discovery timeout is a
// Timer).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace wam::sim {

class Scheduler;

/// Cancellable handle to a scheduled event. Default-constructed handles are
/// inert; cancel() after the event fired is a harmless no-op.
class TimerHandle {
 public:
  TimerHandle() = default;

  void cancel();
  [[nodiscard]] bool pending() const;

 private:
  friend class Scheduler;
  struct State {
    bool cancelled = false;
    bool fired = false;
  };
  explicit TimerHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedule `fn` to run at now()+delay (delay may be zero; negative delays
  /// are clamped to zero). Returns a cancellable handle.
  TimerHandle schedule(Duration delay, std::function<void()> fn);
  TimerHandle schedule_at(TimePoint when, std::function<void()> fn);

  /// Run events until the queue is empty or the virtual clock would pass
  /// `deadline`. The clock ends at min(deadline, last event time).
  void run_until(TimePoint deadline);
  /// Run for a span of virtual time from now().
  void run_for(Duration span) { run_until(now_ + span); }
  /// Drain every queued event (careful with self-rearming timers).
  void run_all();
  /// Execute the single next event, if any. Returns false when idle.
  bool step();

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    TimePoint when;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<TimerHandle::State> state;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  TimePoint now_{};
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace wam::sim
