#include "sim/log.hpp"

#include <cstdio>
#include <cstdlib>

#include "sim/scheduler.hpp"

namespace wam::sim {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

std::string LogRecord::render() const {
  char head[96];
  std::snprintf(head, sizeof(head), "%12.6f %-5s [%s] ",
                to_seconds(time.time_since_epoch()), log_level_name(level),
                component.c_str());
  return std::string(head) + message;
}

void Log::write(LogLevel level, std::string component, std::string message) {
  if (level < min_level_) return;
  LogRecord rec{sched_->now(), level, std::move(component), std::move(message)};
  if (echo_) std::fprintf(stderr, "%s\n", rec.render().c_str());
  records_.push_back(std::move(rec));
  if (records_.size() > capacity_) records_.pop_front();
}

std::vector<LogRecord> Log::find(const std::string& prefix,
                                 const std::string& needle) const {
  std::vector<LogRecord> out;
  for (const auto& r : records_) {
    if (r.component.rfind(prefix, 0) != 0) continue;
    if (!needle.empty() && r.message.find(needle) == std::string::npos) continue;
    out.push_back(r);
  }
  return out;
}

std::size_t Log::count(const std::string& prefix,
                       const std::string& needle) const {
  // Counted in place: find() would materialize (and copy) every matching
  // record just to take .size().
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.component.rfind(prefix, 0) != 0) continue;
    if (!needle.empty() && r.message.find(needle) == std::string::npos) continue;
    ++n;
  }
  return n;
}

void Logger::vwrite(LogLevel level, const char* fmt, std::va_list ap) const {
  if (!log_ || !log_->would_log(level)) return;  // skip formatting entirely
  char buf[512];
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  log_->write(level, component_, buf);
}

#define WAM_LOG_IMPL(method, level)                 \
  void Logger::method(const char* fmt, ...) const { \
    if (!log_ || !log_->would_log(level)) return;   \
    std::va_list ap;                                \
    va_start(ap, fmt);                              \
    vwrite(level, fmt, ap);                         \
    va_end(ap);                                     \
  }

WAM_LOG_IMPL(trace, LogLevel::kTrace)
WAM_LOG_IMPL(debug, LogLevel::kDebug)
WAM_LOG_IMPL(info, LogLevel::kInfo)
WAM_LOG_IMPL(warn, LogLevel::kWarn)
WAM_LOG_IMPL(error, LogLevel::kError)

#undef WAM_LOG_IMPL

}  // namespace wam::sim
