// Conservative PDES: one world sharded across worker threads.
//
// A ShardSet partitions a simulation into K shards, each with its own
// Scheduler run-loop (shard 0 aliases an externally owned scheduler so a
// scenario's public `sched` member stays the real shard-0 clock). Time
// advances in lookahead windows: every shard runs its own events up to the
// window end, then all shards rendezvous at a barrier where cross-shard
// messages posted during the window are handed to their destination
// shards. The lookahead is the minimum cross-shard latency (the fabric's
// per-hop delay): anything sent at t arrives at t + lookahead or later,
// i.e. in a window that has not started yet, so no shard can ever receive
// an event in its past — the classic conservative synchronization
// argument (Chandy-Misra-Bryant, barrier form).
//
// Determinism contract (docs/PARALLEL.md):
//   * Each shard's event order is the sequential (when, seq) order of its
//     own scheduler — unchanged from the single-threaded engine.
//   * Cross-shard arrivals are inserted at the window boundary in the
//     canonical (when, source shard, per-source sequence) order, so the
//     destination's tie-break is independent of thread timing.
//   * Consequently a run is bit-identical for any thread interleaving and
//     for threads on/off; and the K = 1 configuration IS the sequential
//     engine, which the equivalence tests use as the oracle.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "util/small_fn.hpp"

namespace wam::sim {

class ShardSet {
 public:
  /// Shard 0 aliases `primary` (externally owned, typically a scenario's
  /// `sched` member); shards 1..count-1 are owned. `lookahead` must be a
  /// positive lower bound on every cross-shard delay.
  ShardSet(Scheduler& primary, int count, Duration lookahead);
  ShardSet(const ShardSet&) = delete;
  ShardSet& operator=(const ShardSet&) = delete;
  ~ShardSet();

  [[nodiscard]] int size() const { return static_cast<int>(shards_.size()); }
  [[nodiscard]] Scheduler& shard(int i) {
    return *shards_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] Duration lookahead() const { return lookahead_; }
  /// All shard clocks agree whenever the set is quiesced (outside
  /// run_until); shard 0 is the canonical one.
  [[nodiscard]] TimePoint now() const { return shards_[0]->now(); }

  /// Worker threads on (default) or a serial round-robin that executes
  /// the identical window schedule on the calling thread — bit-identical
  /// results either way (the serial mode is the debugging/TSan-friendly
  /// reference).
  void set_threads(bool on) { threads_enabled_ = on; }
  [[nodiscard]] bool threads() const { return threads_enabled_; }

  /// Queue `fn` to run at `when` on shard `to`. Must be called from shard
  /// `from`'s run-loop during a window (each source owns its outboxes, so
  /// posting is lock-free); `when` must lie at or beyond the current
  /// window end — the lookahead guarantee the fabric provides.
  void post(int from, int to, TimePoint when, util::SmallFn fn);

  /// Advance every shard to `deadline` in lookahead windows. Events at
  /// exactly `deadline` run (matching Scheduler::run_until semantics);
  /// on return all shards are quiesced at `deadline` and every posted
  /// message has been delivered into its destination scheduler.
  void run_until(TimePoint deadline);
  void run_for(Duration span) { run_until(now() + span); }

  /// Barrier windows executed so far (observability for tests/benches).
  [[nodiscard]] std::uint64_t windows() const { return windows_; }
  /// Cross-shard messages posted so far.
  [[nodiscard]] std::uint64_t posts() const { return posts_; }

 private:
  struct Pending {
    TimePoint when;
    std::uint32_t src;
    std::uint64_t seq;  // per-source post counter
    util::SmallFn fn;
  };

  void run_window(int shard, TimePoint wend, bool final_window);
  void drain_inbox(int shard);
  void collect_outboxes();
  void start_workers();
  void worker_loop(int shard);
  void run_windows_threaded(TimePoint wend, bool final_window);
  void rethrow_worker_failure();

  Duration lookahead_;
  std::vector<Scheduler*> shards_;  // [0] external, rest owned below
  std::vector<std::unique_ptr<Scheduler>> owned_;

  // out_[src][dst]: written only by src's thread during a window.
  std::vector<std::vector<std::vector<Pending>>> out_;
  std::vector<std::uint64_t> out_seq_;  // per-source post counter
  // inbox_[dst]: staged at the barrier by the coordinator, sorted and
  // scheduled by dst at its next window start.
  std::vector<std::vector<Pending>> inbox_;

  bool threads_enabled_ = true;
  std::uint64_t windows_ = 0;
  std::uint64_t posts_ = 0;

  // Worker rendezvous: the coordinator publishes (window_end_,
  // final_window_) then release-increments epoch_; workers acquire it,
  // run their shard's window, and release-increment done_.
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<int> done_{0};
  std::atomic<bool> stop_{false};
  TimePoint window_end_{};
  bool final_window_ = false;
  std::vector<std::exception_ptr> worker_errors_;
};

}  // namespace wam::sim
