// Virtual time types for the discrete-event simulation.
//
// The whole protocol stack runs against a virtual clock owned by
// sim::Scheduler; nothing in the library reads wall-clock time. Durations
// and time points are nanosecond-resolution int64s wrapped in std::chrono
// types so arithmetic is type-checked.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace wam::sim {

using Duration = std::chrono::nanoseconds;
using TimePoint = std::chrono::time_point<std::chrono::steady_clock, Duration>;

using std::chrono::duration_cast;

constexpr Duration kZero = Duration::zero();

constexpr Duration nanoseconds(std::int64_t n) { return Duration(n); }
constexpr Duration microseconds(std::int64_t n) { return Duration(n * 1000); }
constexpr Duration milliseconds(std::int64_t n) { return Duration(n * 1000000); }
constexpr Duration seconds(double s) {
  return Duration(static_cast<std::int64_t>(s * 1e9));
}

/// Duration in (fractional) seconds, for reporting.
constexpr double to_seconds(Duration d) {
  return static_cast<double>(d.count()) / 1e9;
}
constexpr double to_millis(Duration d) {
  return static_cast<double>(d.count()) / 1e6;
}

/// Render "12.345s" / "87.5ms" / "250us" depending on magnitude.
std::string format_duration(Duration d);
/// Render a time point as seconds since simulation start, e.g. "t=12.345s".
std::string format_time(TimePoint t);

}  // namespace wam::sim
