#include "sim/random.hpp"

#include "util/assert.hpp"

namespace wam::sim {

namespace {
// splitmix64, used to expand the user seed into xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() {
  // xoshiro256**
  std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  WAM_EXPECTS(bound > 0);
  // Rejection sampling to avoid modulo bias.
  std::uint64_t threshold = -bound % bound;
  for (;;) {
    std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  WAM_EXPECTS(lo <= hi);
  auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() {
  // 53 random mantissa bits.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Duration Rng::duration_range(Duration lo, Duration hi) {
  return Duration(range(lo.count(), hi.count()));
}

Rng Rng::fork() { return Rng(next()); }

Rng Rng::stream(std::uint64_t id) const {
  // Mix (seed, id) through splitmix64 twice so adjacent stream ids land in
  // unrelated regions of the seed space.
  std::uint64_t x = seed_ ^ (id * 0xd1342543de82ef95ULL);
  std::uint64_t mixed = splitmix64(x);
  mixed ^= splitmix64(x);
  return Rng(mixed);
}

}  // namespace wam::sim
