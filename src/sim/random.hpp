// Deterministic random number generation for the simulation.
//
// A small xoshiro256** generator seeded explicitly; every stochastic choice
// in the simulator (frame jitter, drop decisions, fault times in the
// property tests) draws from a Rng owned by the scenario, so a seed fully
// reproduces a run.
#pragma once

#include <cstdint>
#include <limits>

#include "sim/time.hpp"

namespace wam::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform over the full 64-bit range.
  std::uint64_t next();
  /// Uniform in [0, bound) via Lemire rejection; bound must be > 0.
  std::uint64_t below(std::uint64_t bound);
  /// Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);
  /// Uniform double in [0, 1).
  double uniform();
  /// Bernoulli trial.
  bool chance(double p);
  /// Uniform duration in [lo, hi].
  Duration duration_range(Duration lo, Duration hi);
  /// Split off an independently-seeded child stream.
  Rng fork();
  /// Derive the `id`-th named substream WITHOUT consuming state: the same
  /// (seed, id) pair always yields the same stream, regardless of how much
  /// the parent has been used. The chaos campaign keys its schedule
  /// generation, execution and shrink re-runs off decoupled streams so
  /// deleting one draw cannot shift every later decision.
  [[nodiscard]] Rng stream(std::uint64_t id) const;

  // UniformRandomBitGenerator interface for <random>/std::shuffle.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next(); }

 private:
  std::uint64_t seed_;  // construction seed, for stream() derivation
  std::uint64_t s_[4];
};

}  // namespace wam::sim
