// Small online-statistics accumulator used by the benchmark harnesses.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace wam::sim {

/// Collects samples and reports count/mean/min/max/stddev/percentiles.
class Stats {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_valid_ = false;
  }
  void add(Duration d) { add(to_seconds(d)); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double stddev() const;
  /// p in [0,100]; nearest-rank on the sorted samples. Arbitrary
  /// quantiles share one cached sorted view, so interleaving
  /// percentile(50)/percentile(99)/percentile(99.9) calls costs one sort.
  [[nodiscard]] double percentile(double p) const;
  /// q in [0,1]; alias for percentile(q * 100).
  [[nodiscard]] double quantile(double q) const { return percentile(q * 100.0); }
  [[nodiscard]] double median() const { return percentile(50); }

  /// Fold another accumulator into this one (per-shard / per-trial stats
  /// merged into a sweep total). When both sides already hold a valid
  /// sorted view the merged view is rebuilt with one linear std::merge
  /// instead of being invalidated and re-sorted from scratch.
  void merge(const Stats& other);

  /// "n=12 mean=2.41 min=2.02 max=2.91 p50=2.40" (values in the sample unit).
  [[nodiscard]] std::string summary() const;

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  // percentile() is called in tight loops by the benches; keep the sorted
  // view across calls and invalidate on add().
  const std::vector<double>& sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace wam::sim
