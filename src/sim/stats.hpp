// Small online-statistics accumulator used by the benchmark harnesses.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace wam::sim {

/// Collects samples and reports count/mean/min/max/stddev/percentiles.
class Stats {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_valid_ = false;
  }
  void add(Duration d) { add(to_seconds(d)); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double stddev() const;
  /// p in [0,100]; nearest-rank on the sorted samples.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50); }

  /// "n=12 mean=2.41 min=2.02 max=2.91 p50=2.40" (values in the sample unit).
  [[nodiscard]] std::string summary() const;

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  // percentile() is called in tight loops by the benches; keep the sorted
  // view across calls and invalidate on add().
  const std::vector<double>& sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace wam::sim
