#include "load/flow_stats.hpp"

#include <algorithm>
#include <iterator>

#include "util/assert.hpp"

namespace wam::load {

FlowStats::FlowStats(sim::Duration bucket) : bucket_(bucket) {
  WAM_EXPECTS(bucket > sim::kZero);
}

FlowStats::Bucket& FlowStats::bucket_at(sim::TimePoint t) {
  if (!have_origin_) {
    have_origin_ = true;
    origin_ = t;
  }
  last_seen_ = std::max(last_seen_, t);
  auto idx = static_cast<std::size_t>((t - origin_) / bucket_);
  while (buckets_.size() <= idx) {
    Bucket b;
    // 64-bit index math: narrowing the index through int corrupts bucket
    // starts (and with them failover-window sides) on long high-rate runs.
    b.start = origin_ + bucket_ * static_cast<std::int64_t>(buckets_.size());
    buckets_.push_back(b);
  }
  return buckets_[idx];
}

void FlowStats::on_offered(sim::TimePoint t) {
  ++offered_;
  ++bucket_at(t).offered;
}

void FlowStats::on_retry(sim::TimePoint t) {
  ++retries_;
  ++bucket_at(t).retries;
}

void FlowStats::on_response(sim::TimePoint t, sim::Duration rtt) {
  ++answered_;
  ++bucket_at(t).answered;
  double seconds = sim::to_seconds(rtt);
  rtt_.add(seconds);
  samples_.push_back({t, seconds});
  if (answered_ > 1) {
    longest_gap_ = std::max(longest_gap_, t - last_response_);
  }
  last_response_ = t;
}

void FlowStats::on_lost(sim::TimePoint t) {
  ++lost_;
  ++bucket_at(t).lost;
}

void FlowStats::mark_event(sim::TimePoint at, std::string label) {
  // Sorted insert (stable on ties) so failover_windows() reports in time
  // order even when marks arrive out of order — e.g. a mark recorded
  // before set_origin() rebases the grid, or shard-merged marks. An exact
  // duplicate (same tick AND same label) is a replay echo of the same
  // fail-over, not a second event: skip it instead of double-reporting.
  auto pos = std::upper_bound(
      events_.begin(), events_.end(), at,
      [](sim::TimePoint t, const Event& e) { return t < e.at; });
  for (auto it = pos; it != events_.begin();) {
    --it;
    if (it->at != at) break;
    if (it->label == label) return;
  }
  events_.insert(pos, {at, std::move(label)});
}

void FlowStats::set_origin(sim::TimePoint t) {
  WAM_EXPECTS(!have_origin_ && buckets_.empty());
  have_origin_ = true;
  origin_ = t;
  last_seen_ = t;
}

void FlowStats::merge(const FlowStats& other) {
  WAM_EXPECTS(bucket_ == other.bucket_);
  offered_ += other.offered_;
  answered_ += other.answered_;
  lost_ += other.lost_;
  retries_ += other.retries_;
  rtt_.merge(other.rtt_);

  if (other.have_origin_) {
    if (!have_origin_) {
      have_origin_ = true;
      origin_ = other.origin_;
      last_seen_ = other.last_seen_;
      buckets_ = other.buckets_;
    } else {
      last_seen_ = std::max(last_seen_, other.last_seen_);
      const sim::TimePoint new_origin = std::min(origin_, other.origin_);
      WAM_EXPECTS((origin_ - new_origin) % bucket_ == sim::kZero);
      WAM_EXPECTS((other.origin_ - new_origin) % bucket_ == sim::kZero);
      if (new_origin != origin_) {
        // Rebase our grid onto the earlier origin.
        const auto shift =
            static_cast<std::size_t>((origin_ - new_origin) / bucket_);
        std::vector<Bucket> rebased(buckets_.size() + shift);
        for (std::size_t i = 0; i < rebased.size(); ++i) {
          rebased[i].start =
              new_origin + bucket_ * static_cast<std::int64_t>(i);
        }
        for (std::size_t i = 0; i < buckets_.size(); ++i) {
          rebased[i + shift].offered = buckets_[i].offered;
          rebased[i + shift].answered = buckets_[i].answered;
          rebased[i + shift].lost = buckets_[i].lost;
          rebased[i + shift].retries = buckets_[i].retries;
        }
        buckets_ = std::move(rebased);
        origin_ = new_origin;
      }
      const auto off =
          static_cast<std::size_t>((other.origin_ - origin_) / bucket_);
      while (buckets_.size() < off + other.buckets_.size()) {
        Bucket b;
        b.start =
            origin_ + bucket_ * static_cast<std::int64_t>(buckets_.size());
        buckets_.push_back(b);
      }
      for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
        Bucket& into = buckets_[off + i];
        into.offered += other.buckets_[i].offered;
        into.answered += other.buckets_[i].answered;
        into.lost += other.buckets_[i].lost;
        into.retries += other.buckets_[i].retries;
      }
    }
  }

  // Interleave response samples in time order (ties: ours first — matching
  // the shard index order merges are applied in), then recompute the gap
  // statistics over the combined timeline: the longest silence of the
  // merged population is not the max of the per-shard silences.
  std::vector<Sample> merged;
  merged.reserve(samples_.size() + other.samples_.size());
  std::merge(samples_.begin(), samples_.end(), other.samples_.begin(),
             other.samples_.end(), std::back_inserter(merged),
             [](const Sample& a, const Sample& b) { return a.at < b.at; });
  samples_ = std::move(merged);
  longest_gap_ = sim::kZero;
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    longest_gap_ =
        std::max(longest_gap_, samples_[i].at - samples_[i - 1].at);
  }
  if (!samples_.empty()) last_response_ = samples_.back().at;

  events_.insert(events_.end(), other.events_.begin(), other.events_.end());
  std::stable_sort(events_.begin(), events_.end(),
                   [](const Event& a, const Event& b) { return a.at < b.at; });
}

double FlowStats::availability() const {
  if (offered_ == 0) return 1.0;
  return static_cast<double>(answered_) / static_cast<double>(offered_);
}

double FlowStats::effective_downtime_seconds() const {
  if (offered_ == 0 || lost_ == 0) return 0.0;
  double span = sim::to_seconds(last_seen_ - origin_);
  if (span <= 0.0) return 0.0;
  double mean_rate = static_cast<double>(offered_) / span;
  return static_cast<double>(lost_) / mean_rate;
}

std::vector<FailoverWindow> FlowStats::failover_windows(
    sim::Duration window) const {
  std::vector<FailoverWindow> out;
  out.reserve(events_.size());
  for (const auto& event : events_) {
    FailoverWindow w;
    w.label = event.label;
    w.at = event.at;
    w.window = window;
    // Clamp the lower edge at the grid origin: a mark earlier than one
    // window into the run must not produce a negative-time window.
    sim::TimePoint lo = event.at - window;
    if (have_origin_ && lo < origin_) lo = origin_;
    const sim::TimePoint hi = event.at + window;

    // Counter sides come from the bucketized timeline; a bucket belongs to
    // the side its start falls on (bucket width << window in practice).
    for (const auto& b : buckets_) {
      if (b.start >= lo && b.start < event.at) {
        w.offered_before += b.offered;
      } else if (b.start >= event.at && b.start < hi) {
        w.offered_after += b.offered;
        w.lost_after += b.lost;
        w.retries_after += b.retries;
      }
    }

    // Tail percentiles from the time-ordered sample log. samples_ is
    // appended in sim-time order, so the window is a contiguous range.
    auto cmp = [](const Sample& s, sim::TimePoint t) { return s.at < t; };
    auto lo_it = std::lower_bound(samples_.begin(), samples_.end(), lo, cmp);
    auto mid_it =
        std::lower_bound(samples_.begin(), samples_.end(), event.at, cmp);
    auto hi_it = std::lower_bound(samples_.begin(), samples_.end(), hi, cmp);
    sim::Stats before;
    for (auto it = lo_it; it != mid_it; ++it) before.add(it->rtt_seconds);
    sim::Stats after;
    for (auto it = mid_it; it != hi_it; ++it) after.add(it->rtt_seconds);
    w.p99_before = before.empty() ? 0.0 : before.percentile(99.0);
    w.p999_before = before.empty() ? 0.0 : before.percentile(99.9);
    w.p99_after = after.empty() ? 0.0 : after.percentile(99.0);
    w.p999_after = after.empty() ? 0.0 : after.percentile(99.9);
    out.push_back(std::move(w));
  }
  return out;
}

}  // namespace wam::load
