#include "load/flow_stats.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace wam::load {

FlowStats::FlowStats(sim::Duration bucket) : bucket_(bucket) {
  WAM_EXPECTS(bucket > sim::kZero);
}

FlowStats::Bucket& FlowStats::bucket_at(sim::TimePoint t) {
  if (!have_origin_) {
    have_origin_ = true;
    origin_ = t;
  }
  last_seen_ = std::max(last_seen_, t);
  auto idx = static_cast<std::size_t>((t - origin_) / bucket_);
  while (buckets_.size() <= idx) {
    Bucket b;
    b.start = origin_ + bucket_ * static_cast<int>(buckets_.size());
    buckets_.push_back(b);
  }
  return buckets_[idx];
}

void FlowStats::on_offered(sim::TimePoint t) {
  ++offered_;
  ++bucket_at(t).offered;
}

void FlowStats::on_retry(sim::TimePoint t) {
  ++retries_;
  ++bucket_at(t).retries;
}

void FlowStats::on_response(sim::TimePoint t, sim::Duration rtt) {
  ++answered_;
  ++bucket_at(t).answered;
  double seconds = sim::to_seconds(rtt);
  rtt_.add(seconds);
  samples_.push_back({t, seconds});
  if (answered_ > 1) {
    longest_gap_ = std::max(longest_gap_, t - last_response_);
  }
  last_response_ = t;
}

void FlowStats::on_lost(sim::TimePoint t) {
  ++lost_;
  ++bucket_at(t).lost;
}

void FlowStats::mark_event(sim::TimePoint at, std::string label) {
  events_.push_back({at, std::move(label)});
}

double FlowStats::availability() const {
  if (offered_ == 0) return 1.0;
  return static_cast<double>(answered_) / static_cast<double>(offered_);
}

double FlowStats::effective_downtime_seconds() const {
  if (offered_ == 0 || lost_ == 0) return 0.0;
  double span = sim::to_seconds(last_seen_ - origin_);
  if (span <= 0.0) return 0.0;
  double mean_rate = static_cast<double>(offered_) / span;
  return static_cast<double>(lost_) / mean_rate;
}

std::vector<FailoverWindow> FlowStats::failover_windows(
    sim::Duration window) const {
  std::vector<FailoverWindow> out;
  out.reserve(events_.size());
  for (const auto& event : events_) {
    FailoverWindow w;
    w.label = event.label;
    w.at = event.at;
    w.window = window;
    const sim::TimePoint lo = event.at - window;
    const sim::TimePoint hi = event.at + window;

    // Counter sides come from the bucketized timeline; a bucket belongs to
    // the side its start falls on (bucket width << window in practice).
    for (const auto& b : buckets_) {
      if (b.start >= lo && b.start < event.at) {
        w.offered_before += b.offered;
      } else if (b.start >= event.at && b.start < hi) {
        w.offered_after += b.offered;
        w.lost_after += b.lost;
        w.retries_after += b.retries;
      }
    }

    // Tail percentiles from the time-ordered sample log. samples_ is
    // appended in sim-time order, so the window is a contiguous range.
    auto cmp = [](const Sample& s, sim::TimePoint t) { return s.at < t; };
    auto lo_it = std::lower_bound(samples_.begin(), samples_.end(), lo, cmp);
    auto mid_it =
        std::lower_bound(samples_.begin(), samples_.end(), event.at, cmp);
    auto hi_it = std::lower_bound(samples_.begin(), samples_.end(), hi, cmp);
    sim::Stats before;
    for (auto it = lo_it; it != mid_it; ++it) before.add(it->rtt_seconds);
    sim::Stats after;
    for (auto it = mid_it; it != hi_it; ++it) after.add(it->rtt_seconds);
    w.p99_before = before.empty() ? 0.0 : before.percentile(99.0);
    w.p999_before = before.empty() ? 0.0 : before.percentile(99.9);
    w.p99_after = after.empty() ? 0.0 : after.percentile(99.0);
    w.p999_after = after.empty() ? 0.0 : after.percentile(99.9);
    out.push_back(std::move(w));
  }
  return out;
}

}  // namespace wam::load
