#include "load/generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/bytes.hpp"

namespace wam::load {

namespace {

/// Largest lambda handed to one Knuth draw: exp(-500) ≈ 7e-218 is still a
/// perfectly normal double, far from the ~1e-308 underflow cliff.
constexpr double kPoissonChunk = 500.0;

std::uint32_t knuth_poisson(sim::Rng& rng, double lambda) {
  const double limit = std::exp(-lambda);
  std::uint32_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng.uniform();
  } while (p > limit);
  return k - 1;
}

}  // namespace

std::uint32_t poisson_draw(sim::Rng& rng, double lambda) {
  WAM_EXPECTS(lambda >= 0.0);
  std::uint64_t total = 0;
  while (lambda > kPoissonChunk) {
    total += knuth_poisson(rng, kPoissonChunk);
    lambda -= kPoissonChunk;
  }
  total += knuth_poisson(rng, lambda);
  return static_cast<std::uint32_t>(total);
}

LoadGenerator::LoadGenerator(net::Host& host, LoadOptions options)
    : host_(host),
      opt_(std::move(options)),
      rng_(opt_.seed),
      zipf_(static_cast<std::uint32_t>(
                std::max<std::size_t>(opt_.vips.size(), 1)),
            opt_.zipf_skew),
      stats_(opt_.stats_bucket) {
  WAM_EXPECTS(!opt_.vips.empty());
  WAM_EXPECTS(opt_.flows_per_second > 0);
  WAM_EXPECTS(opt_.tick > sim::kZero);
  WAM_EXPECTS(opt_.long_flow_requests >= 1);
  // Round to the nearest whole number of ticks: plain division truncates,
  // silently shortening the long-flow cadence for any non-divisible
  // interval (e.g. 250 ms at a 100 ms tick ran every 200 ms).
  WAM_EXPECTS(opt_.long_flow_interval >= opt_.tick);
  const auto ticks = (opt_.long_flow_interval + opt_.tick / 2) / opt_.tick;
  wheel_.resize(static_cast<std::size_t>(
      std::max<std::int64_t>(static_cast<std::int64_t>(ticks), 1)));
}

void LoadGenerator::start() {
  if (running_) return;
  running_ = host_.open_udp(
      opt_.local_port,
      [this](const net::Host::UdpContext&, const util::SharedBytes& payload) {
        on_reply(payload);
      });
  WAM_EXPECTS(running_);
  timer_ = host_.scheduler().schedule(opt_.tick, [this] { tick(); });
}

void LoadGenerator::stop() {
  if (!running_) return;
  timer_.cancel();
  host_.close_udp(opt_.local_port);
  running_ = false;
}

apps::TrafficReport LoadGenerator::report() const {
  apps::TrafficReport r;
  r.requests_sent = stats_.offered();
  r.responses = stats_.answered();
  // Unanswered includes requests still in flight at report time — an
  // open-loop client that never heard back was not served.
  r.lost = r.requests_sent > r.responses ? r.requests_sent - r.responses : 0;
  r.retries = stats_.retries();
  r.longest_gap = stats_.longest_response_gap();
  return r;
}

std::uint32_t LoadGenerator::draw_arrivals() {
  const double lambda =
      opt_.flows_per_second * sim::to_seconds(opt_.tick);
  if (!opt_.poisson) {
    arrival_carry_ += lambda;
    auto n = static_cast<std::uint32_t>(arrival_carry_);
    arrival_carry_ -= n;
    return n;
  }
  return poisson_draw(rng_, lambda);
}

void LoadGenerator::tick() {
  if (!running_) return;
  const sim::TimePoint now = host_.scheduler().now();

  // 1. Expire timed-out requests from the FIFO front: retry or lose.
  while (!out_.empty() && out_.front().sent + opt_.request_timeout <= now) {
    Outstanding expired = out_.front();
    out_.pop_front();
    ++base_id_;
    if (expired.answered) continue;
    if (expired.attempt < opt_.max_retries) {
      stats_.on_retry(now);
      queue_request(expired.flow_slot,
                    static_cast<std::uint8_t>(expired.attempt + 1),
                    expired.first_sent);
    } else {
      stats_.on_lost(now);
      resolve(expired.flow_slot);
    }
  }

  if (!draining_) {
    // 2. Long-lived flows due this tick issue their next request.
    auto& due = wheel_[static_cast<std::size_t>(tick_index_ % wheel_.size())];
    std::vector<std::uint32_t> due_now;
    due_now.swap(due);  // re-pushes this tick land W ticks out, same bucket
    for (std::uint32_t slot : due_now) {
      Flow& f = flows_[slot];
      --f.remaining;
      ++f.pending;
      queue_request(slot, 0, now);
      if (f.remaining > 0) due.push_back(slot);
    }

    // 3. Open-loop arrivals.
    const std::uint32_t arrivals = draw_arrivals();
    for (std::uint32_t i = 0; i < arrivals; ++i) start_flow();
  }

  // 4. One batched injection for everything this tick produced.
  if (!burst_.empty()) {
    host_.send_udp_burst(std::move(burst_));
    burst_.clear();
  }

  ++tick_index_;
  if (draining_ && out_.empty()) {
    stop();
    return;
  }
  timer_ = host_.scheduler().schedule(opt_.tick, [this] { tick(); });
}

void LoadGenerator::drain() {
  if (!running_ || draining_) return;
  draining_ = true;
  for (auto& bucket : wheel_) bucket.clear();
  // Abandon unsent long-flow requests; slots waiting only on the wheel
  // free immediately, the rest free as their in-flight requests resolve.
  for (std::uint32_t slot = 0; slot < flows_.size(); ++slot) {
    Flow& f = flows_[slot];
    if (f.remaining > 0) {
      f.remaining = 0;
      if (f.pending == 0) free_.push_back(slot);
    }
  }
}

void LoadGenerator::start_flow() {
  std::uint32_t slot = 0;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(flows_.size());
    flows_.emplace_back();
  }
  Flow& f = flows_[slot];
  f.vip = zipf_.sample(rng_);
  const bool long_lived = rng_.chance(opt_.long_flow_fraction);
  f.remaining = static_cast<std::uint16_t>(
      long_lived ? opt_.long_flow_requests : 1);
  f.pending = 0;
  ++flows_started_;

  const sim::TimePoint now = host_.scheduler().now();
  --f.remaining;
  ++f.pending;
  queue_request(slot, 0, now);
  if (f.remaining > 0) {
    wheel_[static_cast<std::size_t>(tick_index_ % wheel_.size())].push_back(
        slot);
  }
}

void LoadGenerator::queue_request(std::uint32_t slot, std::uint8_t attempt,
                                  sim::TimePoint first_sent) {
  const sim::TimePoint now = host_.scheduler().now();
  const std::uint64_t id = base_id_ + out_.size();
  out_.push_back({first_sent, now, slot, attempt, false});
  if (attempt == 0) stats_.on_offered(now);

  util::ByteWriter w;
  w.u64(id);
  net::Host::UdpSend send;
  send.dst = opt_.vips[flows_[slot].vip];
  send.dst_port = opt_.server_port;
  send.src_port = opt_.local_port;
  send.payload = w.take();
  burst_.push_back(std::move(send));
}

void LoadGenerator::on_reply(const util::SharedBytes& payload) {
  std::uint64_t id = 0;
  try {
    util::ByteReader r(payload);
    (void)r.str();  // responding server's hostname
    id = r.u64();
  } catch (const util::DecodeError&) {
    return;  // not an echo reply to one of ours
  }
  if (id < base_id_ || id >= base_id_ + out_.size()) return;  // expired
  Outstanding& e = out_[static_cast<std::size_t>(id - base_id_)];
  if (e.answered) return;  // duplicate
  e.answered = true;
  const sim::TimePoint now = host_.scheduler().now();
  stats_.on_response(now, now - e.first_sent);
  resolve(e.flow_slot);
}

void LoadGenerator::resolve(std::uint32_t slot) {
  Flow& f = flows_[slot];
  --f.pending;
  if (f.pending == 0 && f.remaining == 0) {
    ++flows_completed_;
    free_.push_back(slot);
  }
}

}  // namespace wam::load
