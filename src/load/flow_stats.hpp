// Request-weighted availability accounting for the open-loop load harness.
//
// The paper reports fail-over cost as one number: the probe client's
// interruption gap. Under heavy traffic the operator cares about a
// different quantity — what the outage COST in requests. FlowStats
// aggregates every request the generator offered into:
//   * request-weighted availability (answered / offered),
//   * effective downtime: lost requests divided by the mean offered rate,
//     i.e. seconds of full-outage-equivalent at the run's own load —
//     downtime weighted by offered load rather than wall time,
//   * a bucketized timeline (offered/answered/lost/retries per bucket),
//   * response-time tails: p99/p999 in a window before vs after each
//     marked fail-over event — the latency gap a takeover causes even for
//     requests that were eventually answered.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace wam::load {

/// Before/after view around one marked fail-over event.
struct FailoverWindow {
  std::string label;
  sim::TimePoint at{};
  sim::Duration window = sim::kZero;
  std::uint64_t offered_before = 0;
  std::uint64_t offered_after = 0;
  std::uint64_t lost_after = 0;
  std::uint64_t retries_after = 0;
  double p99_before = 0;   // response-time percentiles, seconds
  double p99_after = 0;
  double p999_before = 0;
  double p999_after = 0;
  [[nodiscard]] double p99_gap() const { return p99_after - p99_before; }
  [[nodiscard]] double p999_gap() const { return p999_after - p999_before; }
};

class FlowStats {
 public:
  explicit FlowStats(sim::Duration bucket = sim::milliseconds(100));

  // ---- recording (generator-facing) ----
  /// A new logical request was offered (first attempt sent).
  void on_offered(sim::TimePoint t);
  /// A timed-out request was re-sent (does not add to offered).
  void on_retry(sim::TimePoint t);
  /// A logical request was answered `rtt` after its FIRST attempt.
  void on_response(sim::TimePoint t, sim::Duration rtt);
  /// A logical request exhausted its retries unanswered.
  void on_lost(sim::TimePoint t);
  /// Mark a fail-over (or any) event for windowed before/after reporting.
  void mark_event(sim::TimePoint at, std::string label);
  /// Pin the bucket-grid origin before any event is recorded. Sharded
  /// trials run one generator per client; pinning every generator to the
  /// same origin aligns their bucket grids so merge() adds bucket-to-
  /// bucket instead of rebasing.
  void set_origin(sim::TimePoint t);
  /// Fold another FlowStats (same bucket width) into this one: counters
  /// and rtt distributions add, bucket timelines align on the earlier
  /// origin (grids must be offset by a whole number of buckets), response
  /// samples interleave in time order, and the longest response gap is
  /// recomputed over the combined sample timeline.
  void merge(const FlowStats& other);

  // ---- aggregate results ----
  [[nodiscard]] std::uint64_t offered() const { return offered_; }
  [[nodiscard]] std::uint64_t answered() const { return answered_; }
  [[nodiscard]] std::uint64_t lost() const { return lost_; }
  [[nodiscard]] std::uint64_t retries() const { return retries_; }
  /// Request-weighted availability: answered / offered (1.0 when idle).
  [[nodiscard]] double availability() const;
  /// lost / mean offered rate: seconds of full outage this loss is
  /// equivalent to at the run's own load. 0 when nothing was offered.
  [[nodiscard]] double effective_downtime_seconds() const;
  [[nodiscard]] sim::Duration longest_response_gap() const {
    return longest_gap_;
  }
  /// Response times (seconds) of every answered request; exposes the
  /// arbitrary-quantile API and merges across shards via Stats::merge.
  [[nodiscard]] const sim::Stats& response_times() const { return rtt_; }

  struct Bucket {
    sim::TimePoint start{};
    std::uint64_t offered = 0;
    std::uint64_t answered = 0;
    std::uint64_t lost = 0;
    std::uint64_t retries = 0;
    [[nodiscard]] double availability() const {
      return offered == 0 ? 1.0
                          : static_cast<double>(answered) /
                                static_cast<double>(offered);
    }
  };
  [[nodiscard]] const std::vector<Bucket>& timeline() const {
    return buckets_;
  }
  [[nodiscard]] sim::Duration bucket_width() const { return bucket_; }

  /// Before/after accounting around every marked event. `window` bounds
  /// each side (e.g. 5 s before the fault vs 5 s after).
  [[nodiscard]] std::vector<FailoverWindow> failover_windows(
      sim::Duration window) const;

 private:
  Bucket& bucket_at(sim::TimePoint t);

  sim::Duration bucket_;
  bool have_origin_ = false;
  sim::TimePoint origin_{};
  sim::TimePoint last_seen_{};
  std::uint64_t offered_ = 0;
  std::uint64_t answered_ = 0;
  std::uint64_t lost_ = 0;
  std::uint64_t retries_ = 0;
  sim::TimePoint last_response_{};
  sim::Duration longest_gap_ = sim::kZero;
  std::vector<Bucket> buckets_;
  sim::Stats rtt_;
  struct Sample {
    sim::TimePoint at;
    double rtt_seconds;
  };
  std::vector<Sample> samples_;  // time-ordered (sim time is monotonic)
  struct Event {
    sim::TimePoint at;
    std::string label;
  };
  std::vector<Event> events_;
};

}  // namespace wam::load
