// One-call heavy-traffic fail-over trial, shared by bench_load_failover
// and the determinism tests.
//
// A trial builds a cluster of `members` servers covering `vips` virtual
// addresses under one of four fail-over protocols, drives an open-loop
// LoadGenerator population against the whole VIP set, fails the server
// owning the hottest VIP mid-run, and reports request-weighted
// availability plus the p99/p999 response-time gap around the takeover.
//
//   * kWackamole — the paper's N-way protocol via ClusterScenario
//     (same-LAN client, like the baseline topologies).
//   * kVrrp / kHsrp — every VIP in a single virtual-router group; the
//     highest-priority member owns all of them until it fails.
//   * kFake — 1:1 active/standby: member 0 serves, member 1 probes and
//     takes over. Extra members run echo servers but cannot protect —
//     exactly the capability gap the paper calls out.
//
// Everything a trial reports derives from virtual time and a seeded RNG,
// so TrialResult::to_json() is byte-identical across same-seed runs (the
// pinning test relies on this).
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace wam::load {

enum class Protocol { kWackamole, kVrrp, kHsrp, kFake };

const char* protocol_name(Protocol p);

struct TrialOptions {
  Protocol protocol = Protocol::kWackamole;
  int members = 4;
  int vips = 16;
  double flows_per_second = 10000.0;
  double zipf_skew = 1.0;
  double long_flow_fraction = 0.05;
  /// Load running before the fault (also the before-side stats window).
  sim::Duration warmup = sim::seconds(3.0);
  /// Observation after the fault; must cover the slowest takeover (HSRP's
  /// 10 s hold time) plus recovery.
  sim::Duration after = sim::seconds(12.0);
  /// Before/after percentile window around the fault.
  sim::Duration window = sim::seconds(3.0);
  /// Sharded engine (conservative PDES): 0 = the legacy single-threaded
  /// engine, byte-identical to history; N >= 1 = sharded engine with N
  /// shards. N = 1 is the sequential oracle — the equivalence tests pin
  /// N > 1 runs against it.
  int shards = 0;
  /// Worker threads for the sharded engine; false = serial round-robin
  /// with bit-identical results.
  bool shard_threads = true;
  /// Client hosts; the offered rate is split evenly across them. With
  /// shards > 1 clients live on shards 1..N-1, so generation parallelizes
  /// against the servers on shard 0.
  int clients = 1;
  std::uint64_t seed = 1;
};

struct TrialResult {
  Protocol protocol = Protocol::kWackamole;
  int members = 0;
  int vips = 0;
  double flows_per_second = 0;
  std::uint64_t seed = 0;

  std::uint64_t flows = 0;
  std::uint64_t offered = 0;
  std::uint64_t answered = 0;
  std::uint64_t lost = 0;
  std::uint64_t retries = 0;
  double availability = 1.0;
  /// Seconds of full-outage-equivalent at the trial's own offered rate.
  double effective_downtime_s = 0;
  double longest_gap_s = 0;
  // Response-time tails (milliseconds) in `window` around the fault.
  double p99_before_ms = 0;
  double p99_after_ms = 0;
  double p999_before_ms = 0;
  double p999_after_ms = 0;

  [[nodiscard]] double p99_gap_ms() const { return p99_after_ms - p99_before_ms; }
  [[nodiscard]] double p999_gap_ms() const {
    return p999_after_ms - p999_before_ms;
  }
  /// Deterministic JSON rendering (fixed field order, fixed precision, no
  /// wall-clock content) — the determinism pin compares these bytes.
  [[nodiscard]] std::string to_json() const;
};

/// Run one fail-over trial; purely virtual-time, deterministic per seed.
TrialResult run_failover_trial(const TrialOptions& options);

}  // namespace wam::load
