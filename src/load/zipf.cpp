#include "load/zipf.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace wam::load {

ZipfSampler::ZipfSampler(std::uint32_t n, double s) : s_(s) {
  WAM_EXPECTS(n >= 1);
  WAM_EXPECTS(s >= 0.0);
  cdf_.reserve(n);
  double acc = 0;
  for (std::uint32_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), s);
    cdf_.push_back(acc);
  }
  harmonic_ = acc;
  for (double& c : cdf_) c /= harmonic_;
  cdf_.back() = 1.0;  // guard against rounding shaving the tail
}

std::uint32_t ZipfSampler::sample(sim::Rng& rng) const {
  double u = rng.uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<std::uint32_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::uint32_t k) const {
  WAM_EXPECTS(k < cdf_.size());
  return (1.0 / std::pow(static_cast<double>(k + 1), s_)) / harmonic_;
}

}  // namespace wam::load
