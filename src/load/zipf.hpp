// Zipf-distributed VIP popularity for the load harness.
//
// Web traffic concentrates on a few hot objects; the classic model is a
// Zipf law where the k-th most popular of n items is drawn with
// probability p(k) = (1/k^s) / H_{n,s}. The sampler precomputes the
// cumulative distribution once and answers draws with a binary search —
// O(log n) per sample, no floating-point drift between platforms beyond
// what the deterministic Rng already pins.
//
// s = 0 degenerates to uniform; s = 1 is the canonical web-object skew.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/random.hpp"

namespace wam::load {

class ZipfSampler {
 public:
  /// `n` items ranked 1..n by popularity, exponent `s` >= 0.
  ZipfSampler(std::uint32_t n, double s);

  /// Draw a rank in [0, n): 0 is the most popular item.
  [[nodiscard]] std::uint32_t sample(sim::Rng& rng) const;

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(cdf_.size());
  }
  /// Closed-form probability of rank k (0-based) — the oracle the
  /// distribution test checks empirical frequencies against.
  [[nodiscard]] double pmf(std::uint32_t k) const;

 private:
  double harmonic_ = 0;  // H_{n,s}
  double s_;
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k)
};

}  // namespace wam::load
