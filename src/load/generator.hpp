// Open-loop, flow-based client population generator.
//
// The paper's §6 experiment drives ONE probe stream at 10 ms; production
// fail-over cost is a function of offered load, so this generator models a
// whole client population without a Host object per client:
//
//   * Arrivals are open-loop — new flows start at a configured rate
//     (Poisson or deterministic), independent of how the cluster responds,
//     which is what makes the loss accounting request-weighted.
//   * Each flow picks its VIP from a Zipf popularity law (hot objects).
//   * Most flows are short HTTP-like request/response exchanges; a
//     configurable fraction are long-lived connections issuing periodic
//     requests over many seconds (the clients that live THROUGH a
//     takeover).
//   * Flow state lives in a flyweight slab (8 bytes per flow) with a free
//     list; per-tick work is batched — one timer, one timeout scan over a
//     FIFO of in-flight requests, and one Host::send_udp_burst injection
//     per tick, so millions of flows cost millions of slab slots, not
//     millions of timers.
//
// Requests carry a u64 id; the echo server reflects the payload, so a
// reply is matched to its in-flight record by id alone. Timed-out
// requests retry up to LoadOptions::max_retries before being counted
// lost. All accounting lands in FlowStats.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "apps/traffic_source.hpp"
#include "load/flow_stats.hpp"
#include "load/zipf.hpp"
#include "net/host.hpp"
#include "sim/random.hpp"

namespace wam::load {

/// Exact Poisson(lambda) sample. Knuth's product-of-uniforms sampler
/// directly for small lambda; above a threshold the draw is split into
/// independent chunks (Poisson(a+b) = Poisson(a) + Poisson(b)), because
/// Knuth's termination test `p > exp(-lambda)` breaks once exp(-lambda)
/// underflows to 0 (lambda ≳ 700): the loop then only ends when p itself
/// underflows, silently capping samples near ~745. Small-lambda draws are
/// byte-identical to the historical sampler (same rng consumption).
std::uint32_t poisson_draw(sim::Rng& rng, double lambda);

struct LoadOptions {
  /// Service addresses, hottest first (Zipf rank k maps to vips[k]).
  std::vector<net::Ipv4Address> vips;
  std::uint16_t server_port = 9000;
  std::uint16_t local_port = 32000;

  /// New flows per second of virtual time.
  double flows_per_second = 1000.0;
  /// Poisson arrivals (true) or evenly spaced deterministic (false).
  bool poisson = true;
  /// Zipf exponent for VIP popularity; 0 = uniform.
  double zipf_skew = 1.0;

  /// Fraction of flows that are long-lived connections.
  double long_flow_fraction = 0.05;
  /// Requests a long-lived flow issues (one immediately, then one per
  /// interval); short flows issue exactly one.
  int long_flow_requests = 8;
  sim::Duration long_flow_interval = sim::milliseconds(500);

  /// Batching quantum: arrivals, timeouts and injection happen per tick.
  sim::Duration tick = sim::milliseconds(1);
  sim::Duration request_timeout = sim::milliseconds(250);
  /// Re-sends after timeout before a request counts as lost.
  int max_retries = 1;

  sim::Duration stats_bucket = sim::milliseconds(100);
  std::uint64_t seed = 1;
};

class LoadGenerator : public apps::TrafficSource {
 public:
  LoadGenerator(net::Host& host, LoadOptions options);

  void start() override;
  void stop() override;
  [[nodiscard]] apps::TrafficReport report() const override;
  /// Stop offering new work (arrivals and long-flow follow-ups) but keep
  /// ticking until every in-flight request resolves, then stop. Gives
  /// trials loss/availability accounting with no in-flight remainder.
  void drain();

  [[nodiscard]] FlowStats& stats() { return stats_; }
  [[nodiscard]] const FlowStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t flows_started() const { return flows_started_; }
  [[nodiscard]] std::uint64_t flows_completed() const {
    return flows_completed_;
  }
  /// Slab slots currently holding live flows.
  [[nodiscard]] std::size_t flows_active() const {
    return flows_.size() - free_.size();
  }
  /// Timer-wheel size in ticks (= the effective long-flow cadence).
  [[nodiscard]] std::size_t wheel_ticks() const { return wheel_.size(); }

 private:
  /// Flyweight flow record — everything a flow needs between requests.
  struct Flow {
    std::uint32_t vip = 0;       // index into options().vips
    std::uint16_t remaining = 0; // requests not yet sent
    std::uint16_t pending = 0;   // requests in flight
  };
  /// One in-flight request attempt, FIFO by send time (fixed timeout means
  /// the front always expires first).
  struct Outstanding {
    sim::TimePoint first_sent{};
    sim::TimePoint sent{};
    std::uint32_t flow_slot = 0;
    std::uint8_t attempt = 0;
    bool answered = false;
  };

  void tick();
  void start_flow();
  /// Queue one request for this tick's burst. Fresh logical requests
  /// (attempt 0) count as offered; retries keep their first_sent.
  void queue_request(std::uint32_t slot, std::uint8_t attempt,
                     sim::TimePoint first_sent);
  void on_reply(const util::SharedBytes& payload);
  /// A logical request resolved (answered or lost): release its hold on
  /// the flow, freeing the slot once nothing is pending or unsent.
  void resolve(std::uint32_t slot);
  [[nodiscard]] std::uint32_t draw_arrivals();

  net::Host& host_;
  LoadOptions opt_;
  sim::Rng rng_;
  ZipfSampler zipf_;
  FlowStats stats_;
  bool running_ = false;
  bool draining_ = false;
  sim::TimerHandle timer_;

  std::vector<Flow> flows_;          // the slab
  std::vector<std::uint32_t> free_;  // free slot indices
  std::uint64_t flows_started_ = 0;
  std::uint64_t flows_completed_ = 0;

  std::deque<Outstanding> out_;  // in-flight, FIFO by send time
  std::uint64_t base_id_ = 0;    // id of out_.front()

  /// Timer wheel for long-flow next-request times: ring of tick buckets,
  /// slot (tick_index % size) drained each tick.
  std::vector<std::vector<std::uint32_t>> wheel_;
  std::uint64_t tick_index_ = 0;
  double arrival_carry_ = 0;  // deterministic-arrival accumulator

  std::vector<net::Host::UdpSend> burst_;  // this tick's injection batch
};

}  // namespace wam::load
