#include "load/harness.hpp"

#include <cstdio>
#include <memory>
#include <vector>

#include "apps/cluster_scenario.hpp"
#include "apps/echo.hpp"
#include "baselines/fake.hpp"
#include "baselines/hsrp.hpp"
#include "baselines/vrrp.hpp"
#include "load/generator.hpp"
#include "sim/shard.hpp"
#include "util/assert.hpp"

namespace wam::load {

namespace {

/// Same VIP layout as ClusterScenario::vip_address so all four protocols
/// serve identical addresses: 10.0.0.(100+k) up to 100 VIPs, a /16 block
/// at 10.0.16+.x beyond that.
net::Ipv4Address vip_address(int index, int num_vips) {
  if (num_vips <= 100) {
    return net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(100 + index));
  }
  return net::Ipv4Address(10, 0, static_cast<std::uint8_t>(16 + index / 256),
                          static_cast<std::uint8_t>(index % 256));
}

std::vector<net::Ipv4Address> vip_list(int num_vips) {
  std::vector<net::Ipv4Address> vips;
  vips.reserve(static_cast<std::size_t>(num_vips));
  for (int k = 0; k < num_vips; ++k) vips.push_back(vip_address(k, num_vips));
  return vips;
}

LoadOptions load_options(const TrialOptions& t, int client, int num_clients) {
  LoadOptions opt;
  opt.vips = vip_list(t.vips);
  // The offered rate is split evenly over the client population, so the
  // cluster sees the same aggregate load regardless of `clients`.
  opt.flows_per_second = t.flows_per_second / num_clients;
  opt.zipf_skew = t.zipf_skew;
  opt.long_flow_fraction = t.long_flow_fraction;
  // Client 0 keeps the exact historical derivation (decoupled from the
  // fabric seed); extra clients perturb it with a distinct odd stride.
  opt.seed = t.seed * 0x9e3779b97f4a7c15ULL + 1 +
             0x100000001b3ULL * static_cast<std::uint64_t>(client);
  return opt;
}

void fill_result(TrialResult& r, const TrialOptions& t, const FlowStats& stats,
                 std::uint64_t flows_started) {
  r.protocol = t.protocol;
  r.members = t.members;
  r.vips = t.vips;
  r.flows_per_second = t.flows_per_second;
  r.seed = t.seed;
  r.flows = flows_started;
  r.offered = stats.offered();
  r.answered = stats.answered();
  r.lost = stats.lost();
  r.retries = stats.retries();
  r.availability = stats.availability();
  r.effective_downtime_s = stats.effective_downtime_seconds();
  r.longest_gap_s = sim::to_seconds(stats.longest_response_gap());
  auto windows = stats.failover_windows(t.window);
  if (!windows.empty()) {
    const FailoverWindow& w = windows.front();
    r.p99_before_ms = w.p99_before * 1e3;
    r.p99_after_ms = w.p99_after * 1e3;
    r.p999_before_ms = w.p999_before * 1e3;
    r.p999_after_ms = w.p999_after * 1e3;
  }
}

/// Fold a generator population's accounting into one TrialResult.
void fill_merged(TrialResult& r, const TrialOptions& t,
                 const std::vector<LoadGenerator*>& gens) {
  FlowStats merged = gens.front()->stats();
  std::uint64_t flows = gens.front()->flows_started();
  for (std::size_t i = 1; i < gens.size(); ++i) {
    merged.merge(gens[i]->stats());
    flows += gens[i]->flows_started();
  }
  fill_result(r, t, merged, flows);
}

TrialResult wackamole_trial(const TrialOptions& t) {
  WAM_EXPECTS(t.clients >= 1);
  apps::ClusterOptions copt;
  copt.num_servers = t.members;
  copt.num_vips = t.vips;
  copt.with_router = false;  // same-LAN client, like the baselines
  copt.shards = t.shards;
  copt.shard_threads = t.shard_threads;
  copt.load_clients = t.clients;
  copt.seed = t.seed;
  apps::ClusterScenario s(copt);
  s.start();
  s.run_until_stable(sim::seconds(120.0));
  for (int i = 0; i < s.num_servers(); ++i) {
    if (s.wam(i).trigger_balance()) break;
  }
  s.run(sim::seconds(2.0));

  std::vector<LoadGenerator*> gens;
  for (int c = 0; c < s.num_clients(); ++c) {
    auto owned = std::make_unique<LoadGenerator>(
        s.client_host(c), load_options(t, c, s.num_clients()));
    // Pin every generator's bucket grid to one origin so the post-run
    // merge adds bucket-to-bucket (one client keeps the legacy lazy
    // origin, which is byte-identical to history).
    if (s.num_clients() > 1) owned->stats().set_origin(s.sched.now());
    gens.push_back(owned.get());
    s.attach_traffic(std::move(owned));
  }
  s.run(t.warmup);

  const int victim = s.owner_of(0);  // whoever covers the hottest VIP
  WAM_EXPECTS(victim >= 0);
  gens.front()->stats().mark_event(s.sched.now(), "disconnect");
  s.disconnect_server(victim);
  s.run(t.after);
  for (auto* gen : gens) gen->drain();
  s.run(sim::seconds(2.0));

  TrialResult r;
  fill_merged(r, t, gens);
  return r;
}

/// Flat LAN shared by the VRRP/HSRP/Fake trials: `members` hosts all
/// running echo servers, a client population, same VIP addresses as
/// Wackamole. With t.shards > 0 the world runs on the sharded engine:
/// members (and the protocol traffic between them) on shard 0, clients
/// spread over shards 1..N-1.
struct BaselineLan {
  sim::Scheduler sched;
  sim::Log log{sched};
  net::Fabric fabric;
  std::unique_ptr<sim::ShardSet> shards;
  net::SegmentId seg;
  std::vector<std::unique_ptr<net::Host>> hosts;
  std::vector<std::unique_ptr<apps::EchoServer>> echos;
  std::vector<std::unique_ptr<net::Host>> clients;

  explicit BaselineLan(const TrialOptions& t) : fabric(sched, &log, t.seed) {
    WAM_EXPECTS(t.clients >= 1 && t.clients <= 32);
    seg = fabric.add_segment();
    if (t.shards > 0) {
      shards = std::make_unique<sim::ShardSet>(
          sched, t.shards, fabric.segment_config(seg).latency);
      shards->set_threads(t.shard_threads);
      fabric.set_sharding(*shards);
    }
    const bool wide = t.vips > 100;
    const int prefix = wide ? 16 : 24;
    for (int i = 0; i < t.members; ++i) {
      auto host = std::make_unique<net::Host>(
          sched, fabric, "member" + std::to_string(i + 1), &log);
      host->add_interface(
          seg, net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i + 1)),
          prefix);
      echos.push_back(std::make_unique<apps::EchoServer>(*host));
      echos.back()->start();
      hosts.push_back(std::move(host));
    }
    for (int i = 0; i < t.clients; ++i) {
      const int shard =
          (!shards || shards->size() <= 1) ? 0 : 1 + (i % (shards->size() - 1));
      sim::Scheduler& csched = shards ? shards->shard(shard) : sched;
      auto client = std::make_unique<net::Host>(
          csched, fabric,
          i == 0 ? "client" : "client" + std::to_string(i + 1),
          shard == 0 ? &log : nullptr);
      const auto last = static_cast<std::uint8_t>(253 - i);
      client->add_interface(seg,
                            wide ? net::Ipv4Address(10, 0, 255, last)
                                 : net::Ipv4Address(10, 0, 0, last),
                            prefix);
      if (shards) fabric.assign_shard(client->nic_id(0), shard);
      clients.push_back(std::move(client));
    }
  }

  void run_for(sim::Duration d) {
    if (shards) {
      shards->run_for(d);
      fabric.fold_shard_counters();
    } else {
      sched.run_for(d);
    }
  }

  /// Settle the protocol, run load around a member-0 crash, fill `r`.
  TrialResult measure(const TrialOptions& t, sim::Duration settle) {
    run_for(settle);
    std::vector<std::unique_ptr<LoadGenerator>> owned;
    std::vector<LoadGenerator*> gens;
    for (int c = 0; c < static_cast<int>(clients.size()); ++c) {
      owned.push_back(std::make_unique<LoadGenerator>(
          *clients[static_cast<std::size_t>(c)],
          load_options(t, c, static_cast<int>(clients.size()))));
      if (clients.size() > 1) owned.back()->stats().set_origin(sched.now());
      owned.back()->start();
      gens.push_back(owned.back().get());
    }
    run_for(t.warmup);
    gens.front()->stats().mark_event(sched.now(), "fail member1");
    hosts[0]->fail();
    run_for(t.after);
    for (auto* gen : gens) gen->drain();
    run_for(sim::seconds(2.0));
    TrialResult r;
    fill_merged(r, t, gens);
    return r;
  }
};

TrialResult vrrp_trial(const TrialOptions& t) {
  WAM_EXPECTS(t.members >= 2);
  BaselineLan lan(t);
  const auto vips = vip_list(t.vips);
  std::vector<std::unique_ptr<baselines::VrrpRouter>> routers;
  for (int i = 0; i < t.members; ++i) {
    baselines::VrrpConfig cfg;
    cfg.vrid = 1;
    cfg.vips = vips;
    cfg.priority = static_cast<std::uint8_t>(200 - i);  // member 0 masters
    routers.push_back(std::make_unique<baselines::VrrpRouter>(
        *lan.hosts[static_cast<std::size_t>(i)], cfg, &lan.log));
    routers.back()->start();
  }
  return lan.measure(t, sim::seconds(8.0));
}

TrialResult hsrp_trial(const TrialOptions& t) {
  WAM_EXPECTS(t.members >= 2);
  BaselineLan lan(t);
  const auto vips = vip_list(t.vips);
  std::vector<std::unique_ptr<baselines::HsrpRouter>> routers;
  for (int i = 0; i < t.members; ++i) {
    baselines::HsrpConfig cfg;
    cfg.group = 1;
    cfg.vips = vips;
    cfg.priority = static_cast<std::uint8_t>(200 - i);  // member 0 active
    routers.push_back(std::make_unique<baselines::HsrpRouter>(
        *lan.hosts[static_cast<std::size_t>(i)], cfg, &lan.log));
    routers.back()->start();
  }
  // HSRP's active/standby election is the slowest to converge.
  return lan.measure(t, sim::seconds(45.0));
}

TrialResult fake_trial(const TrialOptions& t) {
  WAM_EXPECTS(t.members >= 2);
  BaselineLan lan(t);
  const auto vips = vip_list(t.vips);
  // 1:1 active/standby — member 0 serves every VIP, member 1 probes it.
  // Members beyond the pair run echo servers but cannot protect anything;
  // that capability gap is part of the comparison.
  for (const auto& vip : vips) lan.hosts[0]->add_alias(0, vip);
  baselines::FakeResponder responder(*lan.hosts[0]);
  responder.start();
  baselines::FakeConfig cfg;
  cfg.main_ip = lan.hosts[0]->primary_ip();
  cfg.vips = vips;
  baselines::FakeBackup backup(*lan.hosts[1], cfg);
  backup.start();
  return lan.measure(t, sim::seconds(5.0));
}

}  // namespace

const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kWackamole: return "wackamole";
    case Protocol::kVrrp: return "vrrp";
    case Protocol::kHsrp: return "hsrp";
    case Protocol::kFake: return "fake";
  }
  return "?";
}

std::string TrialResult::to_json() const {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "{\"protocol\": \"%s\", \"members\": %d, \"vips\": %d, "
      "\"flows_per_second\": %.1f, \"seed\": %llu, \"flows\": %llu, "
      "\"offered\": %llu, \"answered\": %llu, \"lost\": %llu, "
      "\"retries\": %llu, \"availability\": %.6f, "
      "\"effective_downtime_s\": %.6f, \"longest_gap_s\": %.6f, "
      "\"p99_before_ms\": %.4f, \"p99_after_ms\": %.4f, "
      "\"p999_before_ms\": %.4f, \"p999_after_ms\": %.4f}",
      protocol_name(protocol), members, vips, flows_per_second,
      static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(flows),
      static_cast<unsigned long long>(offered),
      static_cast<unsigned long long>(answered),
      static_cast<unsigned long long>(lost),
      static_cast<unsigned long long>(retries), availability,
      effective_downtime_s, longest_gap_s, p99_before_ms, p99_after_ms,
      p999_before_ms, p999_after_ms);
  return buf;
}

TrialResult run_failover_trial(const TrialOptions& options) {
  switch (options.protocol) {
    case Protocol::kWackamole: return wackamole_trial(options);
    case Protocol::kVrrp: return vrrp_trial(options);
    case Protocol::kHsrp: return hsrp_trial(options);
    case Protocol::kFake: return fake_trial(options);
  }
  WAM_EXPECTS(false);
}

}  // namespace wam::load
