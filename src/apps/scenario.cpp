#include "apps/scenario.hpp"

#include <cctype>
#include <sstream>

#include "net/trace.hpp"
#include "sim/script.hpp"
#include "wackamole/control.hpp"

namespace wam::apps {

namespace {

[[noreturn]] void fail(int line_no, const std::string& line,
                       const std::string& why) {
  throw ScriptError("scenario line " + std::to_string(line_no) + " ('" +
                    line + "'): " + why);
}

int parse_server(const std::string& token, int num_servers, int line_no,
                 const std::string& line) {
  if (token.rfind("server", 0) != 0) {
    fail(line_no, line, "expected serverN, got '" + token + "'");
  }
  int idx = 0;
  try {
    idx = std::stoi(token.substr(6)) - 1;
  } catch (const std::exception&) {
    fail(line_no, line, "bad server number in '" + token + "'");
  }
  if (idx < 0 || idx >= num_servers) {
    fail(line_no, line, "server index out of range: " + token);
  }
  return idx;
}

std::vector<int> parse_server_list(const std::string& csv, int num_servers,
                                   int line_no, const std::string& line) {
  std::vector<int> out;
  std::istringstream items(csv);
  std::string item;
  while (std::getline(items, item, ',')) {
    if (!item.empty()) {
      out.push_back(parse_server(item, num_servers, line_no, line));
    }
  }
  if (out.empty()) fail(line_no, line, "empty server list");
  return out;
}

}  // namespace

ParsedScenario parse_scenario(const std::string& text) {
  ParsedScenario parsed;
  parsed.options.gcs = gcs::Config::spread_tuned();

  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  bool saw_run = false;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and whitespace-only lines.
    auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream words(line);
    std::string verb;
    if (!(words >> verb)) continue;

    if (verb == "servers") {
      if (!(words >> parsed.options.num_servers) ||
          parsed.options.num_servers < 1) {
        fail(line_no, line, "servers needs a positive count");
      }
    } else if (verb == "vips") {
      if (!(words >> parsed.options.num_vips) ||
          parsed.options.num_vips < 1) {
        fail(line_no, line, "vips needs a positive count");
      }
    } else if (verb == "gcs") {
      std::string which;
      words >> which;
      if (which == "tuned") {
        parsed.options.gcs = gcs::Config::spread_tuned();
      } else if (which == "default") {
        parsed.options.gcs = gcs::Config::spread_default();
      } else {
        fail(line_no, line, "gcs must be 'tuned' or 'default'");
      }
    } else if (verb == "balance") {
      double secs = 0;
      if (!(words >> secs) || secs < 0) {
        fail(line_no, line, "balance needs a timeout in seconds");
      }
      parsed.options.balance_timeout = sim::seconds(secs);
    } else if (verb == "audit") {
      // Self-stabilization: enable the Wackamole state audit and the GCS
      // view audit at this period (0 keeps both off). Resync backoff is
      // tightened alongside so heals complete within a scenario run.
      double secs = 0;
      if (!(words >> secs) || secs < 0) {
        fail(line_no, line, "audit needs a period in seconds");
      }
      parsed.options.audit_interval = sim::seconds(secs);
      parsed.options.gcs.audit_interval = sim::seconds(secs);
      if (secs > 0) {
        parsed.options.resync_delay = sim::seconds(0.5);
        parsed.options.resync_backoff_max = sim::seconds(4.0);
      }
    } else if (verb == "probe") {
      // ProbeConfig knobs; omitted lines keep the paper's defaults (the
      // pinning test asserts byte-identical runs either way).
      std::string knob;
      words >> knob;
      if (knob == "interval") {
        double secs = 0;
        if (!(words >> secs) || secs <= 0) {
          fail(line_no, line, "probe interval needs positive seconds");
        }
        parsed.options.probe.every(sim::seconds(secs));
      } else if (knob == "port") {
        int port = 0;
        if (!(words >> port) || port <= 0 || port > 65535) {
          fail(line_no, line, "probe port needs a port number");
        }
        parsed.options.probe.port(static_cast<std::uint16_t>(port));
      } else {
        fail(line_no, line, "probe knob must be 'interval' or 'port'");
      }
    } else if (verb == "run") {
      double secs = 0;
      if (!(words >> secs) || secs <= 0) {
        fail(line_no, line, "run needs a positive end time");
      }
      parsed.run_until = sim::seconds(secs);
      saw_run = true;
    } else if (verb == "at") {
      double at = 0;
      std::string action;
      if (!(words >> at >> action) || at < 0) {
        fail(line_no, line, "at needs a time and an action");
      }
      ScenarioAction sa;
      sa.at = sim::seconds(at);
      sa.verb = action;
      int n = parsed.options.num_servers;
      if (action == "disconnect" || action == "reconnect" ||
          action == "leave" || action == "status" || action == "crash" ||
          action == "restart" || action == "join") {
        std::string target;
        if (!(words >> target)) fail(line_no, line, action + " needs a server");
        sa.servers.push_back(parse_server(target, n, line_no, line));
      } else if (action == "drop") {
        std::string from;
        std::string to;
        if (!(words >> from >> to)) {
          fail(line_no, line, "drop needs two servers (from, to)");
        }
        sa.servers.push_back(parse_server(from, n, line_no, line));
        sa.servers.push_back(parse_server(to, n, line_no, line));
        if (sa.servers[0] == sa.servers[1]) {
          fail(line_no, line, "drop needs two distinct servers");
        }
      } else if (action == "loss") {
        if (!(words >> sa.value) || sa.value < 0 || sa.value >= 1) {
          fail(line_no, line, "loss needs a probability in [0, 1)");
        }
      } else if (action == "osfail") {
        std::string target;
        if (!(words >> target)) fail(line_no, line, "osfail needs a server");
        sa.servers.push_back(parse_server(target, n, line_no, line));
        if (!(words >> sa.value) || sa.value < 0 || sa.value >= 1) {
          fail(line_no, line, "osfail needs a probability in [0, 1)");
        }
      } else if (action == "osfail-sticky" || action == "arp-lose" ||
                 action == "osheal" || action == "stale-incarnation" ||
                 action == "flip-view-id" || action == "reconfig-storm") {
        std::string target;
        if (!(words >> target)) fail(line_no, line, action + " needs a server");
        sa.servers.push_back(parse_server(target, n, line_no, line));
      } else if (action == "corrupt-vip-owner" || action == "corrupt-index") {
        std::string target;
        if (!(words >> target)) fail(line_no, line, action + " needs a server");
        sa.servers.push_back(parse_server(target, n, line_no, line));
        int group_index = 0;
        if (!(words >> group_index) || group_index < 0) {
          fail(line_no, line, action + " needs a non-negative group index");
        }
        sa.value = group_index;  // integer operand rides the value slot
      } else if (action == "partition") {
        // Remainder: comma-lists separated by '|'.
        std::string rest;
        std::getline(words, rest);
        std::string cleaned;
        for (char ch : rest) {
          if (!std::isspace(static_cast<unsigned char>(ch))) cleaned += ch;
        }
        std::istringstream sides(cleaned);
        std::string side;
        while (std::getline(sides, side, '|')) {
          sa.groups.push_back(parse_server_list(side, n, line_no, line));
        }
        if (sa.groups.size() < 2) {
          fail(line_no, line, "partition needs at least two groups");
        }
      } else if (action == "probe") {
        int vip_index = 0;
        if (!(words >> vip_index) || vip_index < 0 ||
            vip_index >= parsed.options.num_vips) {
          fail(line_no, line, "probe needs a VIP index in range");
        }
        sa.servers.push_back(vip_index);  // operand slot reused for the VIP
      } else if (action == "merge" || action == "balance" ||
                 action == "coverage" || action == "undrop") {
        // no operands
      } else {
        fail(line_no, line, "unknown action '" + action + "'");
      }
      parsed.actions.push_back(std::move(sa));
    } else {
      fail(line_no, line, "unknown directive '" + verb + "'");
    }
  }
  if (!saw_run) {
    // Default: run a bit past the last action.
    sim::Duration latest = sim::seconds(10.0);
    for (const auto& a : parsed.actions) {
      latest = std::max(latest, a.at + sim::seconds(10.0));
    }
    parsed.run_until = latest;
  }
  return parsed;
}

bool run_scenario(const std::string& text, std::ostream& out,
                  std::size_t trace_tail) {
  auto parsed = parse_scenario(text);
  ClusterScenario s(parsed.options);
  std::unique_ptr<net::FrameTrace> trace;
  if (trace_tail > 0) {
    trace = std::make_unique<net::FrameTrace>(s.sched, s.fabric, trace_tail);
  }
  s.start();
  s.run_until_stable(sim::seconds(60.0));
  out << "cluster up: " << parsed.options.num_servers << " servers, "
      << parsed.options.num_vips << " VIPs\n";

  auto coverage_report = [&] {
    for (int k = 0; k < parsed.options.num_vips; ++k) {
      int owner = -1;
      int count = 0;
      for (int i = 0; i < s.num_servers(); ++i) {
        if (s.server_host(i).owns_ip(s.vip(k)) && s.server_host(i).is_up()) {
          owner = i;
          ++count;
        }
      }
      out << "    " << s.vip(k).to_string() << " -> ";
      if (count == 0) {
        out << "(unreachable)";
      } else if (count > 1) {
        out << "(CONFLICT x" << count << ")";
      } else {
        out << s.server_host(owner).name();
      }
      out << "\n";
    }
  };

  sim::Script script;
  for (const auto& action : parsed.actions) {
    auto describe = action.verb;
    script.at(action.at, describe, [&s, &out, action, &coverage_report] {
      if (action.verb == "disconnect") {
        s.disconnect_server(action.servers[0]);
      } else if (action.verb == "reconnect") {
        s.reconnect_server(action.servers[0]);
      } else if (action.verb == "leave") {
        s.graceful_leave(action.servers[0]);
      } else if (action.verb == "crash") {
        s.crash_daemon(action.servers[0]);
      } else if (action.verb == "restart") {
        s.restart_daemon(action.servers[0]);
      } else if (action.verb == "join") {
        s.rejoin(action.servers[0]);
      } else if (action.verb == "drop") {
        s.block_path(action.servers[0], action.servers[1]);
      } else if (action.verb == "undrop") {
        s.clear_blocked_paths();
      } else if (action.verb == "loss") {
        s.set_loss(action.value);
      } else if (action.verb == "osfail") {
        s.set_os_fail(action.servers[0], action.value);
      } else if (action.verb == "osfail-sticky") {
        s.set_os_fail_sticky(action.servers[0]);
      } else if (action.verb == "arp-lose") {
        s.set_arp_lose(action.servers[0], true);
      } else if (action.verb == "osheal") {
        s.heal_os(action.servers[0]);
      } else if (action.verb == "corrupt-vip-owner") {
        s.corrupt_vip_owner(action.servers[0],
                            static_cast<int>(action.value));
      } else if (action.verb == "corrupt-index") {
        s.corrupt_index(action.servers[0], static_cast<int>(action.value));
      } else if (action.verb == "stale-incarnation") {
        s.stale_incarnation(action.servers[0]);
      } else if (action.verb == "flip-view-id") {
        s.flip_view_id(action.servers[0]);
      } else if (action.verb == "reconfig-storm") {
        s.reconfig_storm(action.servers[0]);
      } else if (action.verb == "probe") {
        s.start_probe(action.servers[0]);
      } else if (action.verb == "partition") {
        s.partition(action.groups);
      } else if (action.verb == "merge") {
        s.merge();
      } else if (action.verb == "balance") {
        for (int i = 0; i < s.num_servers(); ++i) {
          if (s.wam(i).trigger_balance()) break;
        }
      } else if (action.verb == "status") {
        wackamole::AdminControl ctl(s.wam(action.servers[0]));
        out << ctl.execute("status");
      } else if (action.verb == "coverage") {
        coverage_report();
      }
    });
  }
  script.arm(s.sched, [&out](const sim::Script::Entry& entry) {
    out << "t=" << sim::to_seconds(entry.when.time_since_epoch()) << "s  "
        << entry.description << "\n";
  });
  s.sched.run_until(sim::TimePoint(parsed.run_until));

  // Final verdict over the reachable servers.
  std::vector<int> reachable;
  for (int i = 0; i < s.num_servers(); ++i) {
    if (s.server_host(i).is_up() && s.wam(i).running()) reachable.push_back(i);
  }
  out << "final coverage:\n";
  coverage_report();
  if (!s.traffic().empty()) {
    out << "traffic: " << s.traffic_report().summary() << "\n";
  }
  bool ok = !reachable.empty() && s.coverage_exactly_once(reachable);
  out << "exactly-once over reachable servers: " << (ok ? "OK" : "VIOLATED")
      << "\n";
  if (trace) {
    out << "\nlast " << trace->size() << " frames:\n" << trace->dump();
  }
  return ok;
}

}  // namespace wam::apps
