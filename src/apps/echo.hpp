// The experiment server of Section 6: "responds to UDP packets by sending
// a packet containing its hostname". Replies are sourced from the address
// the request targeted, so a client probing a VIP can tell WHICH physical
// server currently covers it.
#pragma once

#include <cstdint>

#include "net/host.hpp"

namespace wam::apps {

class EchoServer {
 public:
  explicit EchoServer(net::Host& host, std::uint16_t port = 9000)
      : host_(host), port_(port) {}
  ~EchoServer() { stop(); }
  EchoServer(const EchoServer&) = delete;
  EchoServer& operator=(const EchoServer&) = delete;

  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::uint64_t requests_served() const { return served_; }

 private:
  net::Host& host_;
  std::uint16_t port_;
  bool running_ = false;
  std::uint64_t served_ = 0;
};

}  // namespace wam::apps
