// The unified client-traffic abstraction.
//
// Three generations of traffic drivers grew side by side: the paper's
// single ProbeClient (§6), the multi-stream Workload, and the open-loop
// flow harness in src/load. Scenarios and benches should not care which
// one is wired in — a TrafficSource starts, stops, and renders what it
// observed as a structured TrafficReport, so availability accounting is
// comparable across drivers and across fail-over protocols.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace wam::apps {

/// Aggregate, driver-agnostic view of the service a traffic source
/// received. `availability` is request-weighted: answered / offered, so a
/// fail-over during heavy load costs proportionally more than the same
/// outage under a trickle.
struct TrafficReport {
  std::uint64_t requests_sent = 0;
  std::uint64_t responses = 0;
  /// Requests known to have gone unanswered (by the driver's own timeout
  /// model; in-flight requests at stop() time count here too).
  std::uint64_t lost = 0;
  /// Re-sends of timed-out requests (drivers without retry logic: 0).
  std::uint64_t retries = 0;
  /// Longest silence between consecutive responses.
  sim::Duration longest_gap = sim::kZero;

  [[nodiscard]] double availability() const {
    return requests_sent == 0
               ? 1.0
               : static_cast<double>(responses) /
                     static_cast<double>(requests_sent);
  }

  /// Fold another source's report into this one (per-shard / multi-source
  /// scenarios). longest_gap keeps the max — gaps measured by different
  /// sources are not concatenable.
  TrafficReport& merge(const TrafficReport& other) {
    requests_sent += other.requests_sent;
    responses += other.responses;
    lost += other.lost;
    retries += other.retries;
    longest_gap = longest_gap > other.longest_gap ? longest_gap
                                                  : other.longest_gap;
    return *this;
  }

  /// "sent=1200 answered=1187 lost=13 retries=4 avail=0.9892 gap=2.31s"
  [[nodiscard]] std::string summary() const;
};

/// A source of client traffic attached to a host at construction time.
/// start()/stop() are idempotent; report() may be called mid-run.
class TrafficSource {
 public:
  virtual ~TrafficSource() = default;
  virtual void start() = 0;
  virtual void stop() = 0;
  [[nodiscard]] virtual TrafficReport report() const = 0;
};

}  // namespace wam::apps
