// The measuring client of Section 6: sends UDP requests to one virtual
// address at a fixed interval (the paper uses 10 ms) and records which
// hostname answers and when. The availability interruption is "the time
// elapsed between the receipt of the last response from the disabled
// computer and the first response from the new server".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/traffic_source.hpp"
#include "net/host.hpp"
#include "sim/scheduler.hpp"

namespace wam::apps {

/// Probe parameters. Defaults pin the paper's methodology (10 ms
/// interval, echo port 9000); tests/apps_traffic_source_test.cpp asserts
/// them so existing scenarios stay byte-identical. Chainable setters give
/// call sites a builder without a separate builder type:
///
///     ProbeClient probe(host, ProbeConfig(vip).every(sim::milliseconds(5)));
struct ProbeConfig {
  net::Ipv4Address target;
  std::uint16_t target_port = 9000;
  sim::Duration interval = sim::milliseconds(10);
  std::uint16_t local_port = 30000;

  ProbeConfig() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): an address IS a probe
  // target; the conversion keeps `ProbeClient(host, vip)` call sites.
  ProbeConfig(net::Ipv4Address t) : target(t) {}

  ProbeConfig& to(net::Ipv4Address t) {
    target = t;
    return *this;
  }
  ProbeConfig& port(std::uint16_t p) {
    target_port = p;
    return *this;
  }
  ProbeConfig& every(sim::Duration d) {
    interval = d;
    return *this;
  }
  ProbeConfig& from_port(std::uint16_t p) {
    local_port = p;
    return *this;
  }
};

class ProbeClient : public TrafficSource {
 public:
  struct Response {
    sim::TimePoint time;
    std::string hostname;
  };

  /// A gap in service: the span between the last response before silence
  /// and the first response after it.
  struct Interruption {
    sim::TimePoint last_response;
    sim::TimePoint first_response;
    std::string server_before;
    std::string server_after;
    [[nodiscard]] sim::Duration length() const {
      return first_response - last_response;
    }
  };

  ProbeClient(net::Host& host, ProbeConfig config);
  ~ProbeClient() override { stop(); }
  ProbeClient(const ProbeClient&) = delete;
  ProbeClient& operator=(const ProbeClient&) = delete;

  void start() override;
  void stop() override;
  [[nodiscard]] TrafficReport report() const override;

  [[nodiscard]] const ProbeConfig& config() const { return config_; }
  [[nodiscard]] const std::vector<Response>& responses() const {
    return responses_;
  }
  [[nodiscard]] std::uint64_t requests_sent() const { return sent_; }
  /// Gaps longer than `min_gap` (default: 5 probe intervals).
  [[nodiscard]] std::vector<Interruption> interruptions(
      sim::Duration min_gap = sim::kZero) const;
  /// Longest gap observed (zero when fewer than two responses).
  [[nodiscard]] sim::Duration longest_gap() const;
  /// Hostname of the most recent responder ("" if none yet).
  [[nodiscard]] std::string current_server() const;

 private:
  void tick();

  net::Host& host_;
  ProbeConfig config_;
  bool running_ = false;
  std::uint64_t sent_ = 0;
  std::vector<Response> responses_;
  sim::TimerHandle timer_;
};

}  // namespace wam::apps
