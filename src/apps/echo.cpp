#include "apps/echo.hpp"

namespace wam::apps {

void EchoServer::start() {
  if (running_) return;
  running_ = host_.open_udp(
      port_, [this](const net::Host::UdpContext& ctx,
                    const util::SharedBytes& request) {
        ++served_;
        // Reply format: length-prefixed hostname, then the request payload
        // echoed back (lets clients correlate replies with requests).
        util::ByteWriter w;
        w.str(host_.name());
        w.raw(request);
        // Answer from the address the request hit (often a VIP).
        host_.send_udp_from(ctx.dst_ip, ctx.src_ip, ctx.src_port,
                            ctx.dst_port, w.take());
      });
}

void EchoServer::stop() {
  if (!running_) return;
  host_.close_udp(port_);
  running_ = false;
}

}  // namespace wam::apps
