// Figure 3's web-cluster deployment as a one-call scenario:
//
//   client --- external LAN --- router --- cluster LAN --- N servers
//
// Every server runs a GCS daemon, a Wackamole daemon managing K virtual
// addresses (one VIP group each, web-cluster style), and the UDP echo
// server of Section 6. The client probes one VIP through the router at the
// paper's 10 ms interval. Fault injectors mirror the paper's experiments:
// interface disconnection, graceful leave, partitions and merges.
#pragma once

#include <memory>
#include <vector>

#include "apps/echo.hpp"
#include "apps/probe_client.hpp"
#include "gcs/daemon.hpp"
#include "net/router.hpp"
#include "obs/observability.hpp"
#include "sim/random.hpp"
#include "sim/shard.hpp"
#include "wackamole/control.hpp"
#include "wackamole/daemon.hpp"

namespace wam::apps {

struct ClusterOptions {
  int num_servers = 3;
  int num_vips = 10;  // the paper's experiments maintain 10 VIPs
  gcs::Config gcs = gcs::Config::spread_tuned();
  sim::Duration balance_timeout = sim::seconds(60.0);
  sim::Duration maturity_timeout = sim::kZero;  // 0 = start mature
  /// Probe parameters (target is filled in by start_probe from the VIP
  /// index); defaults are the paper's 10 ms / port 9000 methodology.
  ProbeConfig probe;
  bool with_router = true;  // client reaches VIPs through a router
  /// Gratuitous-ARP refresh period (Config::announce_interval). Zero keeps
  /// the default (disabled); chaos campaigns with OS faults enable it so
  /// quarantine cooldown probes have live announce paths to exercise.
  sim::Duration announce_interval = sim::kZero;
  /// Self-fence cooldown before a daemon re-probes its enforcement layer.
  sim::Duration quarantine_cooldown = sim::seconds(30.0);
  /// Wackamole self-stabilization knobs (Config::audit_interval & co);
  /// zero keeps auditing off so historical seeds replay byte-identically.
  /// GCS-side view auditing is configured via `gcs.audit_interval`.
  sim::Duration audit_interval = sim::kZero;
  sim::Duration resync_delay = sim::seconds(1.0);
  sim::Duration resync_backoff_max = sim::seconds(30.0);
  /// Sharded engine (conservative PDES, sim/shard.hpp). 0 keeps the legacy
  /// single-threaded engine byte-identical to history; N >= 1 runs the
  /// sharded engine with N shards — N = 1 is the sequential oracle (same
  /// engine semantics, per-NIC fabric RNG streams, no parallelism), which
  /// the equivalence tests compare N > 1 runs against.
  int shards = 0;
  /// Worker threads for the sharded engine; false = serial round-robin on
  /// the calling thread with bit-identical results (TSan-friendly
  /// reference, and faster on single-core boxes).
  bool shard_threads = true;
  /// Client hosts (traffic injection points). All protocol work lives on
  /// shard 0; client i lands on shard 1 + (i % (shards - 1)) when
  /// shards > 1, so load generation runs concurrently with the servers.
  int load_clients = 1;
  std::uint64_t seed = 1;
};

class ClusterScenario {
 public:
  explicit ClusterScenario(ClusterOptions options);

  /// Start GCS daemons, Wackamole daemons and echo servers.
  void start();
  /// Start the probe client against VIP index `vip_index` (a TrafficSource
  /// built from ClusterOptions::probe, kept accessible via probe()).
  void start_probe(int vip_index = 0);
  /// Attach an arbitrary traffic source (the scenario takes ownership and
  /// starts it). The open-loop load harness plugs in here; so can extra
  /// probes or workloads — traffic_report() aggregates them all.
  TrafficSource& attach_traffic(std::unique_ptr<TrafficSource> source);
  void run(sim::Duration d) { advance_to(sched.now() + d); }
  /// Advance the whole world to `t` — every shard when the sharded engine
  /// is on (folding fabric counters at the quiesce point), plain
  /// sched.run_until otherwise. All drivers (chaos, harness, tests) go
  /// through here so one scenario API covers both engines.
  void advance_to(sim::TimePoint t);
  /// Run until every running Wackamole daemon reports RUN or `limit` passes.
  bool run_until_stable(sim::Duration limit);

  // ---- fault injection (the paper's §6 experiment and beyond) ----
  /// "Disconnecting the interface through which Spread, Wackamole and the
  /// experimental server access the network."
  void disconnect_server(int i);
  void reconnect_server(int i);
  void graceful_leave(int i);
  void partition(const std::vector<std::vector<int>>& groups);
  void merge();
  /// Crash the GCS daemon on server i: the local Wackamole daemon loses
  /// its GCS, releases every virtual interface (§4.2) and starts a
  /// reconnect loop; peers see a membership fault. No-op if already down.
  void crash_daemon(int i);
  /// Restart a crashed GCS daemon; the local Wackamole daemon reconnects
  /// within its reconnect interval. No-op if running.
  void restart_daemon(int i);
  /// Restart a Wackamole daemon after graceful_leave(). No-op if running.
  void rejoin(int i);
  /// Asymmetric fault: frames from server a to server b are dropped while
  /// the reverse direction keeps working (§2's pathological case).
  void block_path(int a, int b);
  void clear_blocked_paths();
  /// Random loss burst on the cluster segment; p = 0 heals.
  void set_loss(double p);
  /// Enforcement-layer faults (the fallible OS-op decorator): every
  /// acquire/release on server i fails with probability p; p = 0 heals the
  /// probabilistic knobs (sticky state is untouched).
  void set_os_fail(int i, double p);
  /// Sticky enforcement fault on server i: every acquire (and the
  /// announce-probe at quarantine cooldown) fails until heal_os(i).
  void set_os_fail_sticky(int i);
  /// Server i's gratuitous ARPs are silently lost (announce succeeds but
  /// never reaches the wire); on = false heals.
  void set_arp_lose(int i, bool on);
  /// Clear every injected enforcement fault on server i.
  void heal_os(int i);

  // ---- transient state corruption (self-stabilization campaign) ----
  // Each verb flips bits in one daemon's hot state through a chaos
  // backdoor; each returns whether the corruption actually applied (the
  // daemon must be running, connected and non-IDLE — the ReconvergenceOracle
  // only tracks applied injections).
  /// Stray write into server i's VIP table: the group at `group_index`
  /// (mod table size) gets an owner no view ever contained.
  bool corrupt_vip_owner(int i, int group_index);
  /// Desync server i's member->groups index from its owner map.
  bool corrupt_index(int i, int group_index);
  /// Bit-flip server i's cached ViewTag: every in-view message looks stale.
  bool stale_incarnation(int i);
  /// Bit-flip the epoch of server i's installed GCS view.
  bool flip_view_id(int i);
  /// Reconfiguration storm: three forced rediscoveries on server i's GCS
  /// daemon spaced 200 ms apart (exercises the resync backoff damping).
  bool reconfig_storm(int i);

  // ---- queries ----
  [[nodiscard]] net::Ipv4Address vip(int index) const;
  /// Address layout behind vip(): 10.0.0.(100+k) up to 100 VIPs (the
  /// historical layout pinned by chaos replay seeds); a /16 block at
  /// 10.0.16+.x beyond that (scale benches).
  [[nodiscard]] net::Ipv4Address vip_address(int index) const;
  /// How many of the given servers hold `ip` on an up interface.
  [[nodiscard]] int coverage_count(net::Ipv4Address ip,
                                   const std::vector<int>& servers) const;
  /// True iff every VIP is covered exactly once among `servers`.
  [[nodiscard]] bool coverage_exactly_once(
      const std::vector<int>& servers) const;
  /// Index of the server owning VIP `vip_index`, or -1.
  [[nodiscard]] int owner_of(int vip_index) const;

  [[nodiscard]] wackamole::Daemon& wam(int i) {
    return *wams_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] gcs::Daemon& gcs_daemon(int i) {
    return *gcs_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] net::Host& server_host(int i) {
    return *servers_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] wackamole::SimIpManager& ip_manager(int i) {
    return *ipmgrs_[static_cast<std::size_t>(i)];
  }
  /// The fault-injecting decorator each daemon actually talks through; a
  /// pure pass-through to ip_manager(i) until a fault knob is set.
  [[nodiscard]] wackamole::FaultyIpManager& faulty_ip_manager(int i) {
    return *faulty_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] net::Host& client_host() { return *clients_.front(); }
  [[nodiscard]] net::Host& client_host(int i) {
    return *clients_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] int num_clients() const {
    return static_cast<int>(clients_.size());
  }
  /// The sharded engine, or nullptr on the legacy path (observability:
  /// tests and benches read windows()/posts()).
  [[nodiscard]] sim::ShardSet* shards() { return shards_.get(); }
  [[nodiscard]] ProbeClient& probe() { return *probe_; }
  /// Every attached traffic source (the probe included, once started).
  [[nodiscard]] const std::vector<std::unique_ptr<TrafficSource>>& traffic()
      const {
    return traffic_;
  }
  /// Merged report across all attached traffic sources.
  [[nodiscard]] TrafficReport traffic_report() const;
  [[nodiscard]] net::Router* router() { return router_.get(); }
  [[nodiscard]] int num_servers() const { return options_.num_servers; }
  [[nodiscard]] const ClusterOptions& options() const { return options_; }
  [[nodiscard]] std::vector<int> all_servers() const;

  sim::Scheduler sched;
  sim::Log log{sched};
  /// Shared observability context: every daemon, host and fabric in the
  /// scenario is bound here (scopes "wam/s<N>", "gcs/s<N>", "net", ...),
  /// and `timeline` records every structured event for JSON export.
  /// Declared before the components so it outlives their bound counters.
  obs::Observability obs;
  obs::EventTimeline timeline{obs.bus};
  /// Seeded from ClusterOptions::seed in the constructor, so two scenarios
  /// with the same options replay byte-identical frame timing.
  net::Fabric fabric;

 private:
  [[nodiscard]] int shard_for_client(int i) const;

  ClusterOptions options_;
  std::unique_ptr<sim::ShardSet> shards_;
  net::SegmentId cluster_seg_;
  net::SegmentId external_seg_ = -1;
  std::unique_ptr<net::Router> router_;
  std::vector<std::unique_ptr<net::Host>> servers_;
  std::vector<std::unique_ptr<gcs::Daemon>> gcs_;
  std::vector<std::unique_ptr<wackamole::SimIpManager>> ipmgrs_;
  std::vector<std::unique_ptr<wackamole::FaultyIpManager>> faulty_;
  std::vector<std::unique_ptr<wackamole::Daemon>> wams_;
  std::vector<std::unique_ptr<EchoServer>> echos_;
  std::vector<std::unique_ptr<net::Host>> clients_;
  std::vector<std::unique_ptr<TrafficSource>> traffic_;  // owns probe_ too
  ProbeClient* probe_ = nullptr;
};

}  // namespace wam::apps
