#include "apps/traffic_source.hpp"

#include <cstdio>

namespace wam::apps {

std::string TrafficReport::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "sent=%llu answered=%llu lost=%llu retries=%llu "
                "avail=%.4f gap=%.3fs",
                static_cast<unsigned long long>(requests_sent),
                static_cast<unsigned long long>(responses),
                static_cast<unsigned long long>(lost),
                static_cast<unsigned long long>(retries), availability(),
                sim::to_seconds(longest_gap));
  return buf;
}

}  // namespace wam::apps
