// Multi-client workload generation and availability accounting.
//
// Where ProbeClient measures one client's view of one VIP (the paper's §6
// methodology), Workload drives a population of clients against the whole
// VIP set and aggregates *service availability over time*: per time
// bucket, the fraction of requests that received a response. This is the
// operator's-eye view of a fail-over event — the area of the dip is
// (requests lost), its width the interruption.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/probe_client.hpp"
#include "apps/traffic_source.hpp"
#include "net/host.hpp"

namespace wam::apps {

struct WorkloadOptions {
  std::vector<net::Ipv4Address> targets;  // VIPs to spread requests over
  std::uint16_t port = 9000;
  sim::Duration request_interval = sim::milliseconds(10);  // per client
  int clients = 4;  // concurrent request streams
};

class Workload : public TrafficSource {
 public:
  /// All request streams originate from `host` (distinct local ports).
  Workload(net::Host& host, WorkloadOptions options);
  ~Workload() override { stop(); }
  Workload(const Workload&) = delete;
  Workload& operator=(const Workload&) = delete;

  void start() override;
  void stop() override;
  [[nodiscard]] TrafficReport report() const override;

  [[nodiscard]] std::uint64_t requests_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t responses() const { return answered_; }
  /// Requests whose reply never arrived within the timeout.
  [[nodiscard]] std::uint64_t lost() const;

  /// Availability per bucket: fraction of the bucket's requests answered.
  struct Bucket {
    sim::TimePoint start;
    std::uint64_t requests = 0;
    std::uint64_t answered = 0;
    [[nodiscard]] double availability() const {
      return requests == 0 ? 1.0
                           : static_cast<double>(answered) /
                                 static_cast<double>(requests);
    }
  };
  [[nodiscard]] std::vector<Bucket> timeline(sim::Duration bucket) const;
  /// Overall availability across the whole run.
  [[nodiscard]] double availability() const;

 private:
  struct Request {
    sim::TimePoint sent;
    bool answered = false;
  };
  struct Stream {
    std::uint16_t port;
    std::size_t next_target = 0;
    sim::TimerHandle timer;
  };

  void tick(std::size_t stream_index);

  net::Host& host_;
  WorkloadOptions options_;
  bool running_ = false;
  std::uint64_t sent_ = 0;
  std::uint64_t answered_ = 0;
  sim::TimePoint last_response_{};
  sim::Duration longest_gap_ = sim::kZero;
  std::vector<Stream> streams_;
  std::vector<Request> requests_;  // indexed by request id
};

}  // namespace wam::apps
