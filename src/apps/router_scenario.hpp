// Figure 4's N-way fail-over virtual router as a one-call scenario:
//
//                  Internet (external segment, 203.0.113.0/24)
//                                |
//                     [ virtual router: 203.0.113.1 ]
//               router1 (.2)              router2 (.3) ... routerN
//                     [ web VIP: 198.51.100.101 ]
//                                |
//              visible cluster (web segment, 198.51.100.0/24)
//                     [ db VIP: 192.168.0.1 ]
//                                |
//              private cluster (db segment, 192.168.0.0/24)
//
// Each physical router attaches to all three networks and runs GCS +
// Wackamole managing ONE indivisible VIP group holding the virtual
// router's address on every network — the whole set moves atomically on
// fail-over (Section 5.2). Hosts on each network use the virtual address
// as their default gateway; the ARP-share gossip keeps every Wackamole
// daemon aware of the hosts to notify on takeover.
#pragma once

#include <memory>
#include <vector>

#include "apps/echo.hpp"
#include "apps/probe_client.hpp"
#include "gcs/daemon.hpp"
#include "obs/observability.hpp"
#include "wackamole/control.hpp"
#include "wackamole/daemon.hpp"

namespace wam::apps {

struct RouterScenarioOptions {
  int num_routers = 2;
  gcs::Config gcs = gcs::Config::spread_tuned();
  sim::Duration balance_timeout = sim::kZero;  // one group: nothing to balance
  sim::Duration arp_share_interval = sim::seconds(5.0);
  /// Probe parameters (target filled in by start_probe).
  ProbeConfig probe;
  /// §5.2's NAIVE deployment: the router taking over must re-learn its
  /// dynamic routing tables (OSPF/RIP) before it can forward — "this
  /// usually takes around 30 seconds". Zero models the paper's recommended
  /// alternate setup where every fail-over router participates in dynamic
  /// routing continuously and can forward the instant Wackamole
  /// reconfigures.
  sim::Duration routing_convergence_delay = sim::kZero;
  std::uint64_t seed = 1;
};

class RouterScenario {
 public:
  explicit RouterScenario(RouterScenarioOptions options);

  void start();
  /// External client probes the web server through the virtual router.
  void start_probe();
  void run(sim::Duration d) { sched.run_for(d); }
  /// Same interface as ClusterScenario::advance_to so the chaos driver is
  /// scenario-generic. The router world always runs sequentially.
  void advance_to(sim::TimePoint t) { sched.run_until(t); }

  void fail_router(int i);
  void recover_router(int i);
  void graceful_leave(int i);
  /// Restart a Wackamole daemon after graceful_leave(). No-op if running.
  void rejoin(int i);
  /// Random loss burst on all three segments; p = 0 heals.
  void set_loss(double p);

  /// Index of the router currently holding the virtual-router group, -1 if
  /// none, -2 if held more than once (conflict).
  [[nodiscard]] int active_router() const;
  /// True iff router `i` holds ALL virtual addresses (group indivisibility).
  [[nodiscard]] bool holds_whole_group(int i) const;
  /// True iff router `i` holds none of them.
  [[nodiscard]] bool holds_nothing(int i) const;

  [[nodiscard]] wackamole::Daemon& wam(int i) {
    return *wams_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] net::Host& router_host(int i) {
    return *routers_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] ProbeClient& probe() { return *probe_; }
  [[nodiscard]] net::Host& web_server() { return *web_server_; }
  [[nodiscard]] net::Host& db_server() { return *db_server_; }
  [[nodiscard]] net::Host& internet_client() { return *internet_; }
  [[nodiscard]] int num_routers() const { return options_.num_routers; }

  // The three virtual addresses of the indivisible group.
  [[nodiscard]] net::Ipv4Address external_vip() const {
    return net::Ipv4Address(203, 0, 113, 1);
  }
  [[nodiscard]] net::Ipv4Address web_vip() const {
    return net::Ipv4Address(198, 51, 100, 101);
  }
  [[nodiscard]] net::Ipv4Address db_vip() const {
    return net::Ipv4Address(192, 168, 0, 1);
  }

  sim::Scheduler sched;
  sim::Log log{sched};
  /// Shared observability context (see ClusterScenario for the scope
  /// conventions); declared before the bound components.
  obs::Observability obs;
  obs::EventTimeline timeline{obs.bus};
  /// Seeded from RouterScenarioOptions::seed in the constructor.
  net::Fabric fabric;

 private:
  RouterScenarioOptions options_;
  net::SegmentId external_seg_;
  net::SegmentId web_seg_;
  net::SegmentId db_seg_;
  class ConvergingIpManager;
  std::vector<std::unique_ptr<net::Host>> routers_;
  std::vector<std::unique_ptr<gcs::Daemon>> gcs_;
  std::vector<std::unique_ptr<wackamole::SimIpManager>> ipmgrs_;
  std::vector<std::unique_ptr<wackamole::Daemon>> wams_;
  std::unique_ptr<net::Host> internet_;
  std::unique_ptr<net::Host> web_server_;
  std::unique_ptr<net::Host> db_server_;
  std::unique_ptr<EchoServer> web_echo_;
  std::unique_ptr<EchoServer> db_echo_;
  std::unique_ptr<ProbeClient> probe_;
};

}  // namespace wam::apps
