#include "apps/workload.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/bytes.hpp"

namespace wam::apps {

Workload::Workload(net::Host& host, WorkloadOptions options)
    : host_(host), options_(std::move(options)) {
  WAM_EXPECTS(!options_.targets.empty());
  WAM_EXPECTS(options_.clients >= 1);
}

void Workload::start() {
  if (running_) return;
  running_ = true;
  for (int i = 0; i < options_.clients; ++i) {
    Stream stream;
    stream.port = static_cast<std::uint16_t>(31000 + i);
    stream.next_target = static_cast<std::size_t>(i) %
                         options_.targets.size();
    host_.open_udp(stream.port, [this](const net::Host::UdpContext&,
                                       const util::SharedBytes& payload) {
      // Echo replies carry (hostname, original payload); our payload is
      // the request id.
      std::uint64_t id = 0;
      try {
        util::ByteReader r(payload);
        (void)r.str();  // responder hostname
        id = r.u64();
      } catch (const util::DecodeError&) {
        return;
      }
      if (id < requests_.size() && !requests_[id].answered) {
        requests_[id].answered = true;
        auto now = host_.scheduler().now();
        if (answered_ > 0) {
          longest_gap_ = std::max(longest_gap_, now - last_response_);
        }
        last_response_ = now;
        ++answered_;
      }
    });
    streams_.push_back(std::move(stream));
  }
  for (std::size_t i = 0; i < streams_.size(); ++i) tick(i);
}

void Workload::stop() {
  if (!running_) return;
  running_ = false;
  for (auto& stream : streams_) {
    stream.timer.cancel();
    host_.close_udp(stream.port);
  }
  streams_.clear();
}

void Workload::tick(std::size_t stream_index) {
  if (!running_) return;
  auto& stream = streams_[stream_index];
  auto target = options_.targets[stream.next_target];
  stream.next_target = (stream.next_target + 1) % options_.targets.size();

  auto id = static_cast<std::uint64_t>(requests_.size());
  requests_.push_back(Request{host_.scheduler().now(), false});
  ++sent_;
  util::ByteWriter w;
  w.u64(id);
  host_.send_udp(target, options_.port, stream.port, w.take());

  stream.timer = host_.scheduler().schedule(
      options_.request_interval, [this, stream_index] { tick(stream_index); });
}

std::uint64_t Workload::lost() const {
  return sent_ > answered_ ? sent_ - answered_ : 0;
}

TrafficReport Workload::report() const {
  TrafficReport r;
  r.requests_sent = sent_;
  r.responses = answered_;
  r.lost = lost();
  r.longest_gap = longest_gap_;
  return r;
}

double Workload::availability() const {
  if (sent_ == 0) return 1.0;
  return static_cast<double>(answered_) / static_cast<double>(sent_);
}

std::vector<Workload::Bucket> Workload::timeline(sim::Duration bucket) const {
  std::vector<Bucket> out;
  if (requests_.empty()) return out;
  auto first = requests_.front().sent;
  for (const auto& req : requests_) {
    auto idx = static_cast<std::size_t>((req.sent - first) / bucket);
    while (out.size() <= idx) {
      Bucket b;
      b.start = first + bucket * static_cast<int>(out.size());
      out.push_back(b);
    }
    ++out[idx].requests;
    if (req.answered) ++out[idx].answered;
  }
  return out;
}

}  // namespace wam::apps
