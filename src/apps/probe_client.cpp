#include "apps/probe_client.hpp"

namespace wam::apps {

ProbeClient::ProbeClient(net::Host& host, net::Ipv4Address target,
                         std::uint16_t target_port, sim::Duration interval,
                         std::uint16_t local_port)
    : host_(host),
      target_(target),
      target_port_(target_port),
      interval_(interval),
      local_port_(local_port) {}

void ProbeClient::start() {
  if (running_) return;
  running_ = host_.open_udp(
      local_port_,
      [this](const net::Host::UdpContext&, const util::SharedBytes& payload) {
        std::string hostname;
        try {
          util::ByteReader r(payload);
          hostname = r.str();
        } catch (const util::DecodeError&) {
          return;  // not an echo reply
        }
        responses_.push_back(
            Response{host_.scheduler().now(), std::move(hostname)});
      });
  tick();
}

void ProbeClient::stop() {
  if (!running_) return;
  timer_.cancel();
  host_.close_udp(local_port_);
  running_ = false;
}

void ProbeClient::tick() {
  if (!running_) return;
  ++sent_;
  host_.send_udp(target_, target_port_, local_port_, {'p', 'i', 'n', 'g'});
  timer_ = host_.scheduler().schedule(interval_, [this] { tick(); });
}

std::vector<ProbeClient::Interruption> ProbeClient::interruptions(
    sim::Duration min_gap) const {
  if (min_gap == sim::kZero) min_gap = interval_ * 5;
  std::vector<Interruption> out;
  for (std::size_t i = 1; i < responses_.size(); ++i) {
    auto gap = responses_[i].time - responses_[i - 1].time;
    if (gap >= min_gap) {
      out.push_back(Interruption{responses_[i - 1].time, responses_[i].time,
                                 responses_[i - 1].hostname,
                                 responses_[i].hostname});
    }
  }
  return out;
}

sim::Duration ProbeClient::longest_gap() const {
  sim::Duration longest = sim::kZero;
  for (std::size_t i = 1; i < responses_.size(); ++i) {
    longest = std::max(longest, responses_[i].time - responses_[i - 1].time);
  }
  return longest;
}

std::string ProbeClient::current_server() const {
  return responses_.empty() ? "" : responses_.back().hostname;
}

}  // namespace wam::apps
