#include "apps/probe_client.hpp"

namespace wam::apps {

ProbeClient::ProbeClient(net::Host& host, ProbeConfig config)
    : host_(host), config_(config) {}

void ProbeClient::start() {
  if (running_) return;
  running_ = host_.open_udp(
      config_.local_port,
      [this](const net::Host::UdpContext&, const util::SharedBytes& payload) {
        std::string hostname;
        try {
          util::ByteReader r(payload);
          hostname = r.str();
        } catch (const util::DecodeError&) {
          return;  // not an echo reply
        }
        responses_.push_back(
            Response{host_.scheduler().now(), std::move(hostname)});
      });
  tick();
}

void ProbeClient::stop() {
  if (!running_) return;
  timer_.cancel();
  host_.close_udp(config_.local_port);
  running_ = false;
}

void ProbeClient::tick() {
  if (!running_) return;
  ++sent_;
  host_.send_udp(config_.target, config_.target_port, config_.local_port,
                 {'p', 'i', 'n', 'g'});
  timer_ = host_.scheduler().schedule(config_.interval, [this] { tick(); });
}

TrafficReport ProbeClient::report() const {
  TrafficReport r;
  r.requests_sent = sent_;
  r.responses = responses_.size();
  r.lost = sent_ > r.responses ? sent_ - r.responses : 0;
  r.longest_gap = longest_gap();
  return r;
}

std::vector<ProbeClient::Interruption> ProbeClient::interruptions(
    sim::Duration min_gap) const {
  if (min_gap == sim::kZero) min_gap = config_.interval * 5;
  std::vector<Interruption> out;
  for (std::size_t i = 1; i < responses_.size(); ++i) {
    auto gap = responses_[i].time - responses_[i - 1].time;
    if (gap >= min_gap) {
      out.push_back(Interruption{responses_[i - 1].time, responses_[i].time,
                                 responses_[i - 1].hostname,
                                 responses_[i].hostname});
    }
  }
  return out;
}

sim::Duration ProbeClient::longest_gap() const {
  sim::Duration longest = sim::kZero;
  for (std::size_t i = 1; i < responses_.size(); ++i) {
    longest = std::max(longest, responses_[i].time - responses_[i - 1].time);
  }
  return longest;
}

std::string ProbeClient::current_server() const {
  return responses_.empty() ? "" : responses_.back().hostname;
}

}  // namespace wam::apps
