#include "apps/router_scenario.hpp"

#include "util/assert.hpp"

namespace wam::apps {

/// Models §5.2's naive deployment: on takeover the router's dynamic
/// routing tables are cold, so forwarding stays off for the convergence
/// delay ("usually takes around 30 seconds").
class RouterScenario::ConvergingIpManager : public wackamole::SimIpManager {
 public:
  ConvergingIpManager(net::Host& host, sim::Duration delay)
      : SimIpManager(host), delay_(delay) {}

  wackamole::OsOpResult acquire(const wackamole::VipGroup& group) override {
    auto result = SimIpManager::acquire(group);
    if (!result.ok() || delay_ == sim::kZero) return result;
    host().enable_forwarding(false);
    ++generation_;
    auto gen = generation_;
    host().scheduler().schedule(delay_, [this, gen] {
      // A release/re-acquire in between restarts the convergence clock.
      if (gen == generation_) host().enable_forwarding(true);
    });
    return result;
  }

 private:
  sim::Duration delay_;
  std::uint64_t generation_ = 0;
};

RouterScenario::RouterScenario(RouterScenarioOptions options)
    : fabric(sched, &log, options.seed), options_(std::move(options)) {
  WAM_EXPECTS(options_.num_routers >= 2);
  fabric.bind_observability(obs, "net");
  external_seg_ = fabric.add_segment();
  web_seg_ = fabric.add_segment();
  db_seg_ = fabric.add_segment();

  // The indivisible VIP group: the router's identity on all three networks.
  wackamole::VipGroup group;
  group.name = "virtual-router";
  group.addresses = {{external_vip(), 0}, {web_vip(), 1}, {db_vip(), 2}};

  for (int i = 0; i < options_.num_routers; ++i) {
    auto r = std::make_unique<net::Host>(sched, fabric,
                                         "router" + std::to_string(i + 1),
                                         &log);
    // Interface order: 0 = external, 1 = web, 2 = db.
    r->add_interface(external_seg_,
                     net::Ipv4Address(203, 0, 113,
                                      static_cast<std::uint8_t>(2 + i)),
                     24);
    r->add_interface(web_seg_,
                     net::Ipv4Address(198, 51, 100,
                                      static_cast<std::uint8_t>(102 + i)),
                     24);
    r->add_interface(db_seg_,
                     net::Ipv4Address(192, 168, 0,
                                      static_cast<std::uint8_t>(2 + i)),
                     24);
    r->enable_forwarding(true);

    // GCS runs on the web-side interface (the paper notes Spread may use a
    // separate NIC from the managed addresses).
    auto gcsd = std::make_unique<gcs::Daemon>(*r, options_.gcs, &log, 1);

    std::unique_ptr<wackamole::SimIpManager> ipmgr;
    if (options_.routing_convergence_delay == sim::kZero) {
      ipmgr = std::make_unique<wackamole::SimIpManager>(*r);
    } else {
      ipmgr = std::make_unique<ConvergingIpManager>(
          *r, options_.routing_convergence_delay);
    }

    wackamole::Config config;
    config.vip_groups = {group};
    config.balance_timeout = options_.balance_timeout;
    config.maturity_timeout = sim::kZero;
    config.start_mature = true;
    config.arp_share_interval = options_.arp_share_interval;
    auto wamd = std::make_unique<wackamole::Daemon>(sched, config, *gcsd,
                                                    *ipmgr, &log);
    // Share the union of this router's ARP knowledge (all interfaces share
    // one cache in the simulated host) so the peer knows whom to spoof.
    net::Host* rp = r.get();
    wamd->set_arp_share_source([rp] {
      std::vector<std::uint32_t> ips;
      for (const auto& ip : rp->arp_cache().known_ips()) {
        ips.push_back(ip.value());
      }
      return ips;
    });

    const std::string suffix = "/s" + std::to_string(i + 1);
    r->bind_observability(obs, "net" + suffix);
    gcsd->bind_observability(obs, "gcs" + suffix);
    ipmgr->bind_observability(obs, "ip" + suffix);
    wamd->bind_observability(obs, "wam" + suffix);

    routers_.push_back(std::move(r));
    gcs_.push_back(std::move(gcsd));
    ipmgrs_.push_back(std::move(ipmgr));
    wams_.push_back(std::move(wamd));
  }

  internet_ = std::make_unique<net::Host>(sched, fabric, "internet", &log);
  internet_->add_interface(external_seg_, net::Ipv4Address(203, 0, 113, 50),
                           24);
  internet_->set_default_gateway(external_vip());

  web_server_ = std::make_unique<net::Host>(sched, fabric, "webserver", &log);
  web_server_->add_interface(web_seg_, net::Ipv4Address(198, 51, 100, 10), 24);
  web_server_->set_default_gateway(web_vip());
  web_echo_ = std::make_unique<EchoServer>(*web_server_);

  db_server_ = std::make_unique<net::Host>(sched, fabric, "dbserver", &log);
  db_server_->add_interface(db_seg_, net::Ipv4Address(192, 168, 0, 20), 24);
  db_server_->set_default_gateway(db_vip());
  db_echo_ = std::make_unique<EchoServer>(*db_server_);
}

void RouterScenario::start() {
  for (auto& d : gcs_) d->start();
  for (auto& w : wams_) w->start();
  web_echo_->start();
  db_echo_->start();
}

void RouterScenario::start_probe() {
  auto config = options_.probe;
  config.target = net::Ipv4Address(198, 51, 100, 10);
  probe_ = std::make_unique<ProbeClient>(*internet_, config);
  probe_->start();
}

void RouterScenario::fail_router(int i) {
  routers_[static_cast<std::size_t>(i)]->fail();
  obs.emit(sched.now(), obs::EventType::kFaultInjected, "scenario",
           {{"kind", "router_fail"}, {"router", "s" + std::to_string(i + 1)}});
}

void RouterScenario::recover_router(int i) {
  routers_[static_cast<std::size_t>(i)]->recover();
  obs.emit(sched.now(), obs::EventType::kFaultHealed, "scenario",
           {{"kind", "router_recover"},
            {"router", "s" + std::to_string(i + 1)}});
}

void RouterScenario::graceful_leave(int i) {
  wams_[static_cast<std::size_t>(i)]->graceful_shutdown();
}

void RouterScenario::rejoin(int i) {
  auto& w = *wams_[static_cast<std::size_t>(i)];
  if (w.running()) return;
  w.start();
  obs.emit(sched.now(), obs::EventType::kFaultHealed, "scenario",
           {{"kind", "rejoin"}, {"router", "s" + std::to_string(i + 1)}});
}

void RouterScenario::set_loss(double p) {
  fabric.set_drop_probability(external_seg_, p);
  fabric.set_drop_probability(web_seg_, p);
  fabric.set_drop_probability(db_seg_, p);
}

int RouterScenario::active_router() const {
  // Only reachable routers count: a failed router legitimately keeps its
  // aliases inside its own isolated component (Property 1 is per maximal
  // connected component).
  int active = -1;
  for (int i = 0; i < options_.num_routers; ++i) {
    if (!routers_[static_cast<std::size_t>(i)]->is_up()) continue;
    if (routers_[static_cast<std::size_t>(i)]->owns_ip(external_vip())) {
      if (active >= 0) return -2;
      active = i;
    }
  }
  return active;
}

bool RouterScenario::holds_whole_group(int i) const {
  const auto& r = *routers_[static_cast<std::size_t>(i)];
  return r.owns_ip(external_vip()) && r.owns_ip(web_vip()) &&
         r.owns_ip(db_vip());
}

bool RouterScenario::holds_nothing(int i) const {
  const auto& r = *routers_[static_cast<std::size_t>(i)];
  return !r.owns_ip(external_vip()) && !r.owns_ip(web_vip()) &&
         !r.owns_ip(db_vip());
}

}  // namespace wam::apps
