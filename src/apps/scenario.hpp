// Text-scripted cluster scenarios.
//
// A tiny DSL drives a ClusterScenario — topology knobs up front, then
// timed fault-injection actions — so experiments can be written as data:
//
//     # 4 web servers, 8 VIPs, tuned timeouts
//     servers 4
//     vips 8
//     gcs tuned
//     balance 30
//     probe interval 0.01      # ProbeConfig knobs (defaults: 10 ms, 9000)
//     probe port 9000
//
//     at 2   probe 0               # start the measuring client on VIP 0
//     at 5   disconnect server2
//     at 15  reconnect server2
//     at 20  partition server1,server2 | server3,server4
//     at 30  merge
//     at 32  crash server1          # GCS daemon crash
//     at 36  restart server1        # ... and restart
//     at 40  leave server3
//     at 44  join server3           # rejoin after a graceful leave
//     at 46  drop server1 server2   # one-way frame drop 1 -> 2
//     at 48  undrop                 # heal all one-way drops
//     at 50  loss 0.2               # random loss burst (loss 0 heals)
//     at 52  balance
//     at 54  status server1
//     at 55  coverage
//     at 56  osfail server2 0.5     # acquire/release fails with p=0.5
//     at 57  osfail-sticky server3  # every acquire fails until osheal
//     at 58  arp-lose server1       # gratuitous ARPs silently lost
//     at 59  osheal server2         # clear all enforcement faults
//     run 60
//
// parse_scenario() validates and returns the structured form;
// run_scenario() executes it against a fresh simulation and streams a
// narrated timeline plus the requested reports to `out`.
#pragma once

#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/cluster_scenario.hpp"

namespace wam::apps {

/// Thrown on malformed scenario text (message names the offending line).
class ScriptError : public std::runtime_error {
 public:
  explicit ScriptError(const std::string& what) : std::runtime_error(what) {}
};

struct ScenarioAction {
  sim::Duration at{};
  std::string verb;                // disconnect|reconnect|leave|partition|...
  std::vector<int> servers;        // operands as server indices
  std::vector<std::vector<int>> groups;  // for partition
  double value = 0.0;              // for loss / osfail
};

struct ParsedScenario {
  ClusterOptions options;
  std::vector<ScenarioAction> actions;
  sim::Duration run_until = sim::seconds(30.0);
};

[[nodiscard]] ParsedScenario parse_scenario(const std::string& text);

/// Parse + execute, narrating to `out`. Returns the final exactly-once
/// coverage verdict for the reachable servers (true = invariant holds).
/// With `trace_tail` > 0, the last that many captured frames are dumped to
/// `out` after the run (tcpdump-style).
bool run_scenario(const std::string& text, std::ostream& out,
                  std::size_t trace_tail = 0);

}  // namespace wam::apps
