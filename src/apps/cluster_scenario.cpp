#include "apps/cluster_scenario.hpp"

#include <algorithm>
#include <set>

#include "util/assert.hpp"

namespace wam::apps {

namespace {
constexpr int kVipBase = 100;  // narrow mode: VIPs are 10.0.0.(100+k)
// Wide mode (num_vips > 100): the cluster segment becomes 10.0.0.0/16 and
// VIPs live at 10.0.(16 + k/256).(k % 256), clear of the server block
// (10.0.0.x) and the infrastructure block (10.0.255.x). Narrow-mode
// layouts are bit-for-bit what they always were, so pinned chaos seeds
// keep replaying byte-identically.
constexpr int kWideVipSubnetBase = 16;
}

ClusterScenario::ClusterScenario(ClusterOptions options)
    : fabric(sched, &log, options.seed), options_(std::move(options)) {
  WAM_EXPECTS(options_.num_servers >= 1);
  WAM_EXPECTS(options_.num_vips >= 1 && options_.num_vips <= 4096);
  WAM_EXPECTS(options_.load_clients >= 1 && options_.load_clients <= 32);
  const bool wide = options_.num_vips > 100;
  const int prefix = wide ? 16 : 24;
  const auto router_ip = wide ? net::Ipv4Address(10, 0, 255, 254)
                              : net::Ipv4Address(10, 0, 0, 254);

  cluster_seg_ = fabric.add_segment();
  fabric.bind_observability(obs, "net");
  if (options_.with_router) external_seg_ = fabric.add_segment();

  if (options_.shards > 0) {
    // Lookahead = the minimum per-hop latency: anything sent in a window
    // arrives in a window that has not started yet (conservative PDES).
    sim::Duration lookahead = fabric.segment_config(cluster_seg_).latency;
    if (external_seg_ >= 0) {
      lookahead =
          std::min(lookahead, fabric.segment_config(external_seg_).latency);
    }
    shards_ = std::make_unique<sim::ShardSet>(sched, options_.shards,
                                              lookahead);
    shards_->set_threads(options_.shard_threads);
    fabric.set_sharding(*shards_);
  }

  // The shared VIP set (one single-address group per VIP: web-cluster mode).
  std::vector<net::Ipv4Address> vips;
  for (int k = 0; k < options_.num_vips; ++k) {
    vips.push_back(vip_address(k));
  }

  if (options_.with_router) {
    router_ = std::make_unique<net::Router>(sched, fabric, "router", &log);
    router_->attach_network(cluster_seg_, router_ip, prefix);
    router_->attach_network(external_seg_, net::Ipv4Address(172, 16, 0, 1),
                            24);
  }
  for (int i = 0; i < options_.load_clients; ++i) {
    const int shard = shard_for_client(i);
    // A client on shard k schedules its timers (and receives its frames)
    // on shard k's run-loop; non-zero shards log nowhere, since the shared
    // Log reads shard 0's clock.
    sim::Scheduler& csched = shards_ ? shards_->shard(shard) : sched;
    sim::Log* clog = shard == 0 ? &log : nullptr;
    const std::string name =
        i == 0 ? "client" : "client" + std::to_string(i + 1);
    auto client = std::make_unique<net::Host>(csched, fabric, name, clog);
    if (options_.with_router) {
      client->add_interface(external_seg_,
                            net::Ipv4Address(172, 16, 0,
                                             static_cast<std::uint8_t>(2 + i)),
                            24);
      client->set_default_gateway(net::Ipv4Address(172, 16, 0, 1));
    } else {
      const auto ip =
          wide ? net::Ipv4Address(10, 0, 255,
                                  static_cast<std::uint8_t>(253 - i))
               : net::Ipv4Address(10, 0, 0,
                                  static_cast<std::uint8_t>(253 - i));
      client->add_interface(cluster_seg_, ip, prefix);
    }
    if (shards_) fabric.assign_shard(client->nic_id(0), shard);
    clients_.push_back(std::move(client));
  }

  for (int i = 0; i < options_.num_servers; ++i) {
    auto host = std::make_unique<net::Host>(
        sched, fabric, "server" + std::to_string(i + 1), &log);
    host->add_interface(
        cluster_seg_,
        net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i + 1)), prefix);
    if (options_.with_router) {
      host->set_default_gateway(router_ip);
    }

    auto gcsd = std::make_unique<gcs::Daemon>(*host, options_.gcs, &log);

    auto ipmgr = std::make_unique<wackamole::SimIpManager>(*host);
    if (options_.with_router) {
      ipmgr->set_router(0, router_ip);
    }
    // Every daemon talks through the fault decorator; at default knobs it
    // is a pure pass-through consuming no randomness, so pre-existing
    // pinned seeds replay byte-identically.
    auto faulty = std::make_unique<wackamole::FaultyIpManager>(
        *ipmgr, options_.seed * 1000003u + static_cast<std::uint64_t>(i));

    auto config = wackamole::Config::web_cluster(vips, 0);
    config.balance_timeout = options_.balance_timeout;
    config.maturity_timeout = options_.maturity_timeout;
    config.start_mature = options_.maturity_timeout == sim::kZero;
    config.announce_interval = options_.announce_interval;
    config.quarantine_cooldown = options_.quarantine_cooldown;
    config.audit_interval = options_.audit_interval;
    config.resync_delay = options_.resync_delay;
    config.resync_backoff_max = options_.resync_backoff_max;
    auto wamd = std::make_unique<wackamole::Daemon>(sched, config, *gcsd,
                                                    *faulty, &log);
    auto echo = std::make_unique<EchoServer>(*host);

    // One scope suffix per server — "s1" matches host name "server1" — so
    // bench queries can sum across daemons with "wam/*/acquires".
    const std::string suffix = "/s" + std::to_string(i + 1);
    host->bind_observability(obs, "net" + suffix);
    gcsd->bind_observability(obs, "gcs" + suffix);
    ipmgr->bind_observability(obs, "ip" + suffix);
    wamd->bind_observability(obs, "wam" + suffix);

    servers_.push_back(std::move(host));
    gcs_.push_back(std::move(gcsd));
    ipmgrs_.push_back(std::move(ipmgr));
    faulty_.push_back(std::move(faulty));
    wams_.push_back(std::move(wamd));
    echos_.push_back(std::move(echo));
  }
}

int ClusterScenario::shard_for_client(int i) const {
  const int s = options_.shards;
  return s <= 1 ? 0 : 1 + (i % (s - 1));
}

void ClusterScenario::advance_to(sim::TimePoint t) {
  if (shards_) {
    shards_->run_until(t);
    fabric.fold_shard_counters();
  } else {
    sched.run_until(t);
  }
}

void ClusterScenario::start() {
  for (auto& d : gcs_) d->start();
  for (auto& w : wams_) w->start();
  for (auto& e : echos_) e->start();
}

void ClusterScenario::start_probe(int vip_index) {
  auto config = options_.probe;
  config.target = vip(vip_index);
  auto probe = std::make_unique<ProbeClient>(client_host(), config);
  probe_ = probe.get();
  attach_traffic(std::move(probe));
}

TrafficSource& ClusterScenario::attach_traffic(
    std::unique_ptr<TrafficSource> source) {
  traffic_.push_back(std::move(source));
  traffic_.back()->start();
  return *traffic_.back();
}

TrafficReport ClusterScenario::traffic_report() const {
  TrafficReport total;
  for (const auto& source : traffic_) total.merge(source->report());
  return total;
}

bool ClusterScenario::run_until_stable(sim::Duration limit) {
  auto deadline = sched.now() + limit;
  while (sched.now() < deadline) {
    run(sim::milliseconds(100));
    bool stable = true;
    for (auto& w : wams_) {
      if (w->running() && w->connected() &&
          w->state() != wackamole::WamState::kRun) {
        stable = false;
        break;
      }
    }
    if (stable) return true;
  }
  return false;
}

void ClusterScenario::disconnect_server(int i) {
  servers_[static_cast<std::size_t>(i)]->set_interface_up(0, false);
  obs.emit(sched.now(), obs::EventType::kFaultInjected, "scenario",
           {{"kind", "iface_down"}, {"server", "s" + std::to_string(i + 1)}});
}

void ClusterScenario::reconnect_server(int i) {
  servers_[static_cast<std::size_t>(i)]->set_interface_up(0, true);
  obs.emit(sched.now(), obs::EventType::kFaultHealed, "scenario",
           {{"kind", "iface_up"}, {"server", "s" + std::to_string(i + 1)}});
}

void ClusterScenario::graceful_leave(int i) {
  wams_[static_cast<std::size_t>(i)]->graceful_shutdown();
}

void ClusterScenario::partition(const std::vector<std::vector<int>>& groups) {
  // Partition only the cluster segment; the router and any non-server NICs
  // stay with group 0.
  std::vector<std::vector<net::NicId>> nic_groups;
  std::set<int> assigned;
  for (const auto& group : groups) {
    std::vector<net::NicId> nics;
    for (int idx : group) {
      nics.push_back(servers_[static_cast<std::size_t>(idx)]->nic_id(0));
      assigned.insert(idx);
    }
    nic_groups.push_back(std::move(nics));
  }
  WAM_EXPECTS(assigned.size() ==
              static_cast<std::size_t>(options_.num_servers));
  if (router_) nic_groups[0].push_back(router_->host().nic_id(0));
  if (!options_.with_router) {
    for (const auto& client : clients_) {
      nic_groups[0].push_back(client->nic_id(0));
    }
  }
  fabric.set_partition(cluster_seg_, nic_groups);
}

void ClusterScenario::merge() { fabric.merge_segment(cluster_seg_); }

void ClusterScenario::crash_daemon(int i) {
  auto& d = *gcs_[static_cast<std::size_t>(i)];
  if (!d.running()) return;
  d.stop();
  obs.emit(sched.now(), obs::EventType::kFaultInjected, "scenario",
           {{"kind", "daemon_crash"}, {"server", "s" + std::to_string(i + 1)}});
}

void ClusterScenario::restart_daemon(int i) {
  auto& d = *gcs_[static_cast<std::size_t>(i)];
  if (d.running()) return;
  d.start();
  obs.emit(sched.now(), obs::EventType::kFaultHealed, "scenario",
           {{"kind", "daemon_restart"},
            {"server", "s" + std::to_string(i + 1)}});
}

void ClusterScenario::rejoin(int i) {
  auto& w = *wams_[static_cast<std::size_t>(i)];
  if (w.running()) return;
  w.start();
  obs.emit(sched.now(), obs::EventType::kFaultHealed, "scenario",
           {{"kind", "rejoin"}, {"server", "s" + std::to_string(i + 1)}});
}

void ClusterScenario::block_path(int a, int b) {
  fabric.block_direction(servers_[static_cast<std::size_t>(a)]->nic_id(0),
                         servers_[static_cast<std::size_t>(b)]->nic_id(0));
}

void ClusterScenario::clear_blocked_paths() {
  fabric.clear_directional_blocks();
}

void ClusterScenario::set_loss(double p) {
  fabric.set_drop_probability(cluster_seg_, p);
}

void ClusterScenario::set_os_fail(int i, double p) {
  auto& f = faulty_ip_manager(i);
  f.set_acquire_fail_probability(p);
  f.set_release_fail_probability(p);
  obs.emit(sched.now(),
           p > 0.0 ? obs::EventType::kFaultInjected
                   : obs::EventType::kFaultHealed,
           "scenario",
           {{"kind", "os_fail"},
            {"server", "s" + std::to_string(i + 1)},
            {"p", std::to_string(p)}});
}

void ClusterScenario::set_os_fail_sticky(int i) {
  faulty_ip_manager(i).set_sticky_all(true);
  obs.emit(sched.now(), obs::EventType::kFaultInjected, "scenario",
           {{"kind", "os_fail_sticky"},
            {"server", "s" + std::to_string(i + 1)}});
}

void ClusterScenario::set_arp_lose(int i, bool on) {
  faulty_ip_manager(i).set_arp_lose(on);
  obs.emit(sched.now(),
           on ? obs::EventType::kFaultInjected : obs::EventType::kFaultHealed,
           "scenario",
           {{"kind", "arp_lose"}, {"server", "s" + std::to_string(i + 1)}});
}

void ClusterScenario::heal_os(int i) {
  faulty_ip_manager(i).heal();
  obs.emit(sched.now(), obs::EventType::kFaultHealed, "scenario",
           {{"kind", "os_heal"}, {"server", "s" + std::to_string(i + 1)}});
}

bool ClusterScenario::corrupt_vip_owner(int i, int group_index) {
  bool applied = wam(i).chaos_corrupt_vip_owner(group_index);
  obs.emit(sched.now(), obs::EventType::kFaultInjected, "scenario",
           {{"kind", "corrupt_vip_owner"},
            {"server", "s" + std::to_string(i + 1)},
            {"group_index", std::to_string(group_index)},
            {"applied", applied ? "1" : "0"}});
  return applied;
}

bool ClusterScenario::corrupt_index(int i, int group_index) {
  bool applied = wam(i).chaos_corrupt_index(group_index);
  obs.emit(sched.now(), obs::EventType::kFaultInjected, "scenario",
           {{"kind", "corrupt_index"},
            {"server", "s" + std::to_string(i + 1)},
            {"group_index", std::to_string(group_index)},
            {"applied", applied ? "1" : "0"}});
  return applied;
}

bool ClusterScenario::stale_incarnation(int i) {
  bool applied = wam(i).chaos_corrupt_view_tag();
  obs.emit(sched.now(), obs::EventType::kFaultInjected, "scenario",
           {{"kind", "stale_incarnation"},
            {"server", "s" + std::to_string(i + 1)},
            {"applied", applied ? "1" : "0"}});
  return applied;
}

bool ClusterScenario::flip_view_id(int i) {
  bool applied = gcs_daemon(i).chaos_flip_view_epoch();
  obs.emit(sched.now(), obs::EventType::kFaultInjected, "scenario",
           {{"kind", "flip_view_id"},
            {"server", "s" + std::to_string(i + 1)},
            {"applied", applied ? "1" : "0"}});
  return applied;
}

bool ClusterScenario::reconfig_storm(int i) {
  // Three rediscoveries in quick succession: one membership churn burst.
  // The follow-up kicks ride timers on the servers' scheduler (shard 0 in
  // sharded runs) so sequential and sharded timelines stay byte-identical.
  bool applied = gcs_daemon(i).force_rediscovery("chaos: reconfig storm");
  obs.emit(sched.now(), obs::EventType::kFaultInjected, "scenario",
           {{"kind", "reconfig_storm"},
            {"server", "s" + std::to_string(i + 1)},
            {"applied", applied ? "1" : "0"}});
  if (applied) {
    gcs::Daemon* d = &gcs_daemon(i);
    sched.schedule(sim::milliseconds(200), [d] {
      d->force_rediscovery("chaos: reconfig storm (2/3)");
    });
    sched.schedule(sim::milliseconds(400), [d] {
      d->force_rediscovery("chaos: reconfig storm (3/3)");
    });
  }
  return applied;
}

net::Ipv4Address ClusterScenario::vip(int index) const {
  WAM_EXPECTS(index >= 0 && index < options_.num_vips);
  return vip_address(index);
}

net::Ipv4Address ClusterScenario::vip_address(int index) const {
  if (options_.num_vips <= 100) {
    return net::Ipv4Address(10, 0, 0,
                            static_cast<std::uint8_t>(kVipBase + index));
  }
  return net::Ipv4Address(
      10, 0, static_cast<std::uint8_t>(kWideVipSubnetBase + index / 256),
      static_cast<std::uint8_t>(index % 256));
}

int ClusterScenario::coverage_count(net::Ipv4Address ip,
                                    const std::vector<int>& servers) const {
  int count = 0;
  for (int idx : servers) {
    const auto& host = *servers_[static_cast<std::size_t>(idx)];
    if (host.owns_ip(ip)) ++count;
  }
  return count;
}

bool ClusterScenario::coverage_exactly_once(
    const std::vector<int>& servers) const {
  for (int k = 0; k < options_.num_vips; ++k) {
    if (coverage_count(vip(k), servers) != 1) return false;
  }
  return true;
}

int ClusterScenario::owner_of(int vip_index) const {
  auto ip = vip(vip_index);
  for (int i = 0; i < options_.num_servers; ++i) {
    if (servers_[static_cast<std::size_t>(i)]->owns_ip(ip)) return i;
  }
  return -1;
}

std::vector<int> ClusterScenario::all_servers() const {
  std::vector<int> out;
  for (int i = 0; i < options_.num_servers; ++i) out.push_back(i);
  return out;
}

}  // namespace wam::apps
