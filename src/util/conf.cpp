#include "util/conf.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

namespace wam::util::conf {

namespace {

[[noreturn]] void report(const FailFn& fail, int line_no,
                         const std::string& line, const std::string& why) {
  fail(line_no, line, why);
  throw std::logic_error("conf FailFn returned instead of throwing");
}

}  // namespace

std::string trim(const std::string& s) {
  auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

sim::Duration parse_duration(const std::string& token, int line_no,
                             const std::string& line, const FailFn& fail) {
  std::size_t pos = 0;
  double value = 0;
  try {
    value = std::stod(token, &pos);
  } catch (const std::exception&) {
    report(fail, line_no, line, "bad duration '" + token + "'");
  }
  auto unit = token.substr(pos);
  if (unit == "s") return sim::seconds(value);
  if (unit == "ms") {
    return sim::Duration(static_cast<std::int64_t>(value * 1e6));
  }
  report(fail, line_no, line,
         "duration needs an 's' or 'ms' suffix: '" + token + "'");
}

int parse_int(const std::string& token, int line_no, const std::string& line,
              const FailFn& fail) {
  try {
    std::size_t pos = 0;
    int value = std::stoi(token, &pos);
    if (pos != token.size()) throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    report(fail, line_no, line, "expected an integer, got '" + token + "'");
  }
}

bool parse_bool(const std::string& token, int line_no,
                const std::string& line, const FailFn& fail) {
  auto v = lower(token);
  if (v == "yes" || v == "true" || v == "on") return true;
  if (v == "no" || v == "false" || v == "off") return false;
  report(fail, line_no, line, "expected yes/no, got '" + token + "'");
}

void for_each_line(
    const std::string& text,
    const std::function<void(int, const std::string&, const std::string&)>&
        handler) {
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    auto stripped = trim(line);
    if (stripped.empty()) continue;
    handler(line_no, stripped, line);
  }
}

KeyValue split_key_value(const std::string& stripped, int line_no,
                         const std::string& line, const FailFn& fail) {
  auto eq = stripped.find('=');
  if (eq == std::string::npos) {
    report(fail, line_no, line, "expected 'Key = value'");
  }
  KeyValue kv;
  kv.key = lower(trim(stripped.substr(0, eq)));
  kv.value = trim(stripped.substr(eq + 1));
  if (kv.value.empty()) report(fail, line_no, line, "missing value");
  return kv;
}

}  // namespace wam::util::conf
