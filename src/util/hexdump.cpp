#include "util/hexdump.hpp"

#include <cctype>

namespace wam::util {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

void append_hex_byte(std::string& out, std::uint8_t b) {
  out.push_back(kHexDigits[b >> 4]);
  out.push_back(kHexDigits[b & 0xf]);
}
}  // namespace

std::string hex(std::span<const std::uint8_t> buf) {
  std::string out;
  out.reserve(buf.size() * 3);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    if (i != 0) out.push_back(' ');
    append_hex_byte(out, buf[i]);
  }
  return out;
}

std::string hexdump(std::span<const std::uint8_t> buf) {
  std::string out;
  for (std::size_t line = 0; line < buf.size(); line += 16) {
    // Offset column.
    for (int shift = 12; shift >= 0; shift -= 4) {
      out.push_back(kHexDigits[(line >> shift) & 0xf]);
    }
    out += "  ";
    for (std::size_t i = 0; i < 16; ++i) {
      if (line + i < buf.size()) {
        append_hex_byte(out, buf[line + i]);
        out.push_back(' ');
      } else {
        out += "   ";
      }
      if (i == 7) out.push_back(' ');
    }
    out += " |";
    for (std::size_t i = 0; i < 16 && line + i < buf.size(); ++i) {
      auto c = buf[line + i];
      out.push_back(std::isprint(c) ? static_cast<char>(c) : '.');
    }
    out += "|\n";
  }
  return out;
}

}  // namespace wam::util
