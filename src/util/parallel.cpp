#include "util/parallel.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace wam::util {

int default_jobs(int max_jobs) {
  auto hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw < 1) hw = 1;
  if (max_jobs < 1) max_jobs = 1;
  return hw < max_jobs ? hw : max_jobs;
}

void parallel_for(std::size_t count, int jobs,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (jobs < 1) jobs = 1;
  if (static_cast<std::size_t>(jobs) > count) {
    jobs = static_cast<int>(count);
  }
  if (jobs == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto worker = [&] {
    for (;;) {
      // Claimed indices past a failure still run: simpler than draining,
      // and fn is required to be independent per index anyway.
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(jobs) - 1);
  for (int t = 1; t < jobs; ++t) threads.emplace_back(worker);
  worker();  // the caller participates instead of idling at the join
  for (auto& th : threads) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace wam::util
