// String interning: a bidirectional map from strings to dense u32 ids.
//
// Interning turns repeated string keys into array indexes: equality becomes
// an integer compare, hash-map keys become trivially hashable u32s, and the
// string bytes are stored exactly once per process. Ids are assigned in
// first-intern order and are therefore NOT portable across processes or
// runs — anything that must be deterministic (wire formats, sorted output,
// allocation decisions) must order by the underlying names, never by id.
//
// Thread-safe: chaos::ParallelRunner executes whole simulations on worker
// threads, all sharing one process-wide table (wackamole/group_ids.hpp).
// name_of() — the hot id->name call the wire encoders make once per table
// entry — is LOCK-FREE: names live in exponentially-growing chunks whose
// elements never move, a chunk pointer is published before the size
// counter's release store, and readers only index below the acquired size.
// intern()/find() take a shared lock for the hash lookup; intern takes the
// exclusive lock only after a shared-locked miss. Returned references stay
// valid for the life of the process.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace wam::util {

class Interner {
 public:
  Interner() = default;
  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;
  ~Interner();

  /// Id of `s`, inserting it on first sight. O(1) amortized.
  std::uint32_t intern(std::string_view s);
  /// Id of `s` if already interned.
  [[nodiscard]] std::optional<std::uint32_t> find(std::string_view s) const;
  /// The string behind `id`; throws std::out_of_range on an unknown id.
  /// The reference is stable for the life of the process. Lock-free.
  [[nodiscard]] const std::string& name_of(std::uint32_t id) const {
    if (id >= size_.load(std::memory_order_acquire)) {
      throw_unknown(id);
    }
    const auto loc = locate(id);
    return chunks_[loc.chunk].load(std::memory_order_acquire)[loc.offset];
  }
  [[nodiscard]] std::size_t size() const {
    return size_.load(std::memory_order_acquire);
  }

 private:
  // Chunk k holds (1024 << k) slots starting at id ((2^k)-1)*1024; 22
  // chunks cover the whole u32 id space. Chunks are allocated on demand
  // and never moved or freed before destruction, which is what keeps
  // name references stable and the read path lock-free.
  static constexpr std::uint32_t kChunk0Bits = 10;
  static constexpr std::size_t kMaxChunks = 22;

  struct Loc {
    std::size_t chunk;
    std::size_t offset;
  };
  static constexpr Loc locate(std::uint32_t id) {
    const std::uint32_t q = (id >> kChunk0Bits) + 1;
    const auto k = static_cast<std::uint32_t>(std::bit_width(q) - 1);
    const std::uint32_t start = ((1u << k) - 1u) << kChunk0Bits;
    return {k, id - start};
  }
  static constexpr std::size_t capacity_of(std::size_t chunk) {
    return static_cast<std::size_t>(1) << (kChunk0Bits + chunk);
  }
  [[noreturn]] static void throw_unknown(std::uint32_t id);

  mutable std::shared_mutex mu_;
  std::array<std::atomic<std::string*>, kMaxChunks> chunks_{};
  std::atomic<std::uint32_t> size_{0};
  // Keys view into chunk entries, so each string is stored once.
  std::unordered_map<std::string_view, std::uint32_t> index_;
};

}  // namespace wam::util
