#include "util/bytes.hpp"

#include "util/shared_bytes.hpp"

namespace wam::util {

ByteReader::ByteReader(const SharedBytes& buf)
    : buf_(buf.span()), backing_(&buf) {}

void ByteWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void ByteWriter::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void ByteWriter::boolean(bool v) { u8(v ? 1 : 0); }

void ByteWriter::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::bytes(std::span<const std::uint8_t> v) {
  u32(static_cast<std::uint32_t>(v.size()));
  raw(v);
}

void ByteWriter::str(std::string_view v) {
  u32(static_cast<std::uint32_t>(v.size()));
  buf_.insert(buf_.end(), v.begin(), v.end());
}

void ByteWriter::vstr(std::string_view v) {
  varint(v.size());
  buf_.insert(buf_.end(), v.begin(), v.end());
}

void ByteWriter::raw(std::span<const std::uint8_t> v) {
  buf_.insert(buf_.end(), v.begin(), v.end());
}

void ByteReader::need(std::size_t n) const {
  if (remaining() < n) {
    throw DecodeError("truncated buffer: need " + std::to_string(n) +
                      " bytes, have " + std::to_string(remaining()));
  }
}

std::uint8_t ByteReader::u8() {
  need(1);
  return buf_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  auto v = static_cast<std::uint16_t>((buf_[pos_] << 8) | buf_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = (static_cast<std::uint32_t>(buf_[pos_]) << 24) |
                    (static_cast<std::uint32_t>(buf_[pos_ + 1]) << 16) |
                    (static_cast<std::uint32_t>(buf_[pos_ + 2]) << 8) |
                    static_cast<std::uint32_t>(buf_[pos_ + 3]);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  auto hi = static_cast<std::uint64_t>(u32());
  auto lo = static_cast<std::uint64_t>(u32());
  return (hi << 32) | lo;
}

std::int64_t ByteReader::i64() { return static_cast<std::int64_t>(u64()); }

bool ByteReader::boolean() { return u8() != 0; }

std::uint64_t ByteReader::varint() {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    auto b = u8();
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      // The final byte of a 10-byte varint may only carry bit 0 (2^63).
      if (shift == 63 && b > 1) break;
      return v;
    }
  }
  throw DecodeError("overlong varint");
}

Bytes ByteReader::bytes() {
  auto n = u32();
  return raw(n);
}

std::string ByteReader::str() {
  auto n = u32();
  need(n);
  std::string s(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return s;
}

std::string ByteReader::vstr() {
  auto n = varint();
  if (n > remaining()) {
    throw DecodeError("truncated buffer: need " + std::to_string(n) +
                      " bytes, have " + std::to_string(remaining()));
  }
  std::string s(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return s;
}

Bytes ByteReader::raw(std::size_t n) {
  need(n);
  Bytes out(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
            buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

SharedBytes ByteReader::shared_bytes() {
  auto n = u32();
  return shared_raw(n);
}

SharedBytes ByteReader::shared_raw(std::size_t n) {
  need(n);
  SharedBytes out = backing_ != nullptr
                        ? backing_->slice(pos_, n)
                        : SharedBytes::copy_of(buf_.subspan(pos_, n));
  pos_ += n;
  return out;
}

void ByteReader::expect_end() const {
  if (!at_end()) {
    throw DecodeError("trailing garbage: " + std::to_string(remaining()) +
                      " bytes left");
  }
}

}  // namespace wam::util
