// Endian-safe byte-buffer serialization.
//
// All multi-byte integers are written big-endian (network order), matching
// what the real Wackamole/Spread wire formats do and making the simulated
// frames independent of host endianness. ByteWriter appends to an internal
// vector; ByteReader consumes a non-owning span and throws DecodeError on
// truncated input, so malformed frames surface as exceptions rather than UB.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace wam::util {

using Bytes = std::vector<std::uint8_t>;
/// Borrowed read-only view; Bytes and SharedBytes both convert to it, so
/// decoders taking ByteView accept either without copying.
using ByteView = std::span<const std::uint8_t>;

class SharedBytes;  // util/shared_bytes.hpp

/// Thrown by ByteReader when the input is shorter than the decode requires.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Bytes an unsigned LEB128 varint of `v` occupies (1..10).
[[nodiscard]] constexpr std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Append-only big-endian encoder.
class ByteWriter {
 public:
  ByteWriter() = default;
  /// Pre-size the buffer: encoders that can compute their exact body size
  /// up front avoid every intermediate reallocation.
  explicit ByteWriter(std::size_t capacity) { buf_.reserve(capacity); }

  void reserve(std::size_t capacity) { buf_.reserve(capacity); }

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void boolean(bool v);
  /// Unsigned LEB128 varint: 7 value bits per byte, high bit = "more".
  void varint(std::uint64_t v);
  /// Length-prefixed (u32) byte string.
  void bytes(std::span<const std::uint8_t> v);
  /// Length-prefixed (u32) UTF-8 string.
  void str(std::string_view v);
  /// Length-prefixed (varint) UTF-8 string — the compact-wire form.
  void vstr(std::string_view v);
  /// Raw bytes, no length prefix (for fixed-size fields such as MACs).
  void raw(std::span<const std::uint8_t> v);

  [[nodiscard]] const Bytes& data() const { return buf_; }
  [[nodiscard]] Bytes take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Consuming big-endian decoder over a borrowed buffer.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> buf) : buf_(buf) {}
  explicit ByteReader(const Bytes& buf) : buf_(buf) {}
  /// Reader over refcounted storage: shared_bytes()/shared_raw() become
  /// zero-copy slices. `buf` must outlive the reader.
  explicit ByteReader(const SharedBytes& buf);

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64();
  [[nodiscard]] bool boolean();
  /// Unsigned LEB128 varint; throws DecodeError past 10 bytes (overlong).
  [[nodiscard]] std::uint64_t varint();
  [[nodiscard]] Bytes bytes();
  [[nodiscard]] std::string str();
  /// Length-prefixed (varint) UTF-8 string — the compact-wire form.
  [[nodiscard]] std::string vstr();
  /// Read exactly n raw bytes (no length prefix).
  [[nodiscard]] Bytes raw(std::size_t n);
  /// Length-prefixed (u32) byte string as a SharedBytes: a zero-copy
  /// slice when the reader is backed by shared storage, a fresh copy
  /// otherwise.
  [[nodiscard]] SharedBytes shared_bytes();
  /// Exactly n raw bytes as a SharedBytes (zero-copy when backed).
  [[nodiscard]] SharedBytes shared_raw(std::size_t n);

  [[nodiscard]] std::size_t remaining() const { return buf_.size() - pos_; }
  [[nodiscard]] bool at_end() const { return remaining() == 0; }
  /// Throws DecodeError unless the whole buffer has been consumed.
  void expect_end() const;

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> buf_;
  std::size_t pos_ = 0;
  const SharedBytes* backing_ = nullptr;  // set by the SharedBytes ctor
};

}  // namespace wam::util
