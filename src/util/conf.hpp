// Shared tokenizer/section-parser behind the two conf dialects.
//
// gcs/conf_parser (spread.conf) and wackamole/conf_parser (wackamole.conf)
// used to carry near-identical private copies of trim/lower/duration/int
// parsing and the comment-stripping line loop. This is the one parsing
// API both front-ends now sit on: they keep their own ConfigError types
// and key handling, and report errors through a FailFn so the shared code
// never has to know which dialect it is serving.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "sim/time.hpp"

namespace wam::util::conf {

/// Error reporter supplied by the front-end. MUST throw (the helpers treat
/// it as [[noreturn]]; a returning FailFn is a programming error and trips
/// a std::logic_error).
using FailFn = std::function<void(int line_no, const std::string& line,
                                  const std::string& why)>;

[[nodiscard]] std::string trim(const std::string& s);
[[nodiscard]] std::string lower(std::string s);

/// "30s" / "2.5ms" -> Duration; anything else reports through `fail`.
[[nodiscard]] sim::Duration parse_duration(const std::string& token,
                                           int line_no,
                                           const std::string& line,
                                           const FailFn& fail);

[[nodiscard]] int parse_int(const std::string& token, int line_no,
                            const std::string& line, const FailFn& fail);

/// yes/true/on -> true, no/false/off -> false (case-insensitive).
[[nodiscard]] bool parse_bool(const std::string& token, int line_no,
                              const std::string& line, const FailFn& fail);

/// Strip comments ('#' to end of line) and blanks, then hand every
/// remaining trimmed line to `handler(line_no, stripped, raw)`. `raw` is
/// the comment-stripped original, for error messages.
void for_each_line(
    const std::string& text,
    const std::function<void(int line_no, const std::string& stripped,
                             const std::string& raw)>& handler);

struct KeyValue {
  std::string key;    // lowered + trimmed
  std::string value;  // trimmed, never empty
};

/// Split a "Key = value" line; reports through `fail` when there is no '='
/// or the value is empty.
[[nodiscard]] KeyValue split_key_value(const std::string& stripped,
                                       int line_no, const std::string& line,
                                       const FailFn& fail);

}  // namespace wam::util::conf
