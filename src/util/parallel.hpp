// Bounded fork-join parallelism for embarrassingly parallel index spaces.
//
// parallel_for(count, jobs, fn) invokes fn(i) exactly once for every
// i in [0, count), spreading the calls over up to `jobs` worker threads.
// Indices are claimed from a shared atomic counter, so uneven per-index
// cost load-balances naturally. The call returns only after every index
// has completed (fork-join barrier); the first exception thrown by any
// fn(i) is rethrown on the caller's thread after the join.
//
// Determinism contract: fn(i) must not touch shared mutable state (each
// index writes only its own slot of a pre-sized results vector, say).
// Under that contract the observable outcome is identical for any job
// count, including jobs == 1, which runs inline on the caller's thread
// with no pool at all.
#pragma once

#include <cstddef>
#include <functional>

namespace wam::util {

/// A sensible default worker count: hardware_concurrency clamped to
/// [1, max_jobs]. Returns 1 when the runtime reports no parallelism.
[[nodiscard]] int default_jobs(int max_jobs = 16);

/// Run fn(i) for every i in [0, count) on up to `jobs` threads and wait
/// for all of them. jobs <= 1 (or count <= 1) degenerates to a plain
/// sequential loop on the calling thread.
void parallel_for(std::size_t count, int jobs,
                  const std::function<void(std::size_t)>& fn);

}  // namespace wam::util
