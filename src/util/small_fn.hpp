// Small move-only callable with inline storage.
//
// The discrete-event scheduler stores one callback per event; with
// std::function each capture larger than the library's tiny SBO buffer
// (16 bytes on libstdc++) heap-allocates, and protocol code schedules an
// event for every heartbeat, timeout and frame delivery. SmallFn keeps
// captures up to kInlineCapacity bytes inside the object — sized so a
// fabric delivery closure (this + NicId + Frame with a shared payload)
// fits — and only falls back to the heap beyond that. Move-only, void()
// signature: exactly what an event queue needs, nothing more.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace wam::util {

class SmallFn {
 public:
  /// Chosen so `[this, nic, frame]` delivery closures stay inline; see
  /// static_assert in net/fabric.cpp.
  static constexpr std::size_t kInlineCapacity = 64;

  SmallFn() = default;
  SmallFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &heap_ops<Fn>;
    }
  }

  SmallFn(SmallFn&& other) noexcept { move_from(std::move(other)); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(std::move(other));
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      if (!ops_->trivial_destroy) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    void (*relocate)(void* from, void* to);  // move-construct + destroy from
    void (*destroy)(void* storage);
    /// Relocation is a plain byte copy (trivially-copyable inline capture,
    /// or the heap pointer itself): move_from() memcpys instead of making
    /// the indirect relocate call. This is the scheduler's slot-recycling
    /// fast path — most event captures are a few pointers.
    std::size_t trivial_size;  // 0 when relocate must be called
    /// The destructor is a no-op (trivially-destructible inline capture):
    /// reset() skips the indirect destroy call.
    bool trivial_destroy;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineCapacity &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops inline_ops{
      [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      [](void* from, void* to) {
        auto* f = std::launder(reinterpret_cast<Fn*>(from));
        ::new (to) Fn(std::move(*f));
        f->~Fn();
      },
      [](void* s) { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); },
      std::is_trivially_copyable_v<Fn> ? sizeof(Fn) : 0,
      std::is_trivially_destructible_v<Fn>,
  };

  template <typename Fn>
  static constexpr Ops heap_ops{
      [](void* s) { (**std::launder(reinterpret_cast<Fn**>(s)))(); },
      [](void* from, void* to) {
        auto* p = std::launder(reinterpret_cast<Fn**>(from));
        ::new (to) Fn*(*p);
      },
      [](void* s) { delete *std::launder(reinterpret_cast<Fn**>(s)); },
      sizeof(Fn*),  // relocating heap storage just moves the pointer
      false,        // destroy must run: it deletes the heap object
  };

  void move_from(SmallFn&& other) noexcept {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      if (ops_->trivial_size != 0) {
        std::memcpy(storage_, other.storage_, ops_->trivial_size);
      } else {
        ops_->relocate(other.storage_, storage_);
      }
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace wam::util
