// Refcounted copy-on-write byte buffer for frame payloads.
//
// A SharedBytes is an immutable view onto refcounted storage: copying one
// bumps a reference count instead of deep-copying the bytes, and slice()
// carves out a zero-copy sub-view sharing the same storage. This is what
// lets a broadcast to N NICs hand every receiver the *same* payload
// buffer, and lets the IPv4/UDP decoders return their nested payloads as
// views into the frame instead of fresh vectors.
//
// Aliasing rule (the "write" half of copy-on-write): the viewed bytes are
// immutable for the lifetime of every view. A writer that wants to modify
// a payload must detach first — `to_bytes()` produces a private deep copy
// to mutate, which is then re-wrapped (cheaply, by move) on assignment.
// The implicit conversion back to util::Bytes performs exactly that
// detach, so legacy `const util::Bytes&` consumers keep working at the
// cost of one explicit-in-the-type-system copy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>

#include "util/bytes.hpp"

namespace wam::util {

class SharedBytes {
 public:
  SharedBytes() = default;

  /// Wrap a buffer, taking ownership (move in to avoid the copy).
  SharedBytes(Bytes b)  // NOLINT(google-explicit-constructor)
      : storage_(std::make_shared<const Bytes>(std::move(b))) {
    data_ = storage_->data();
    size_ = storage_->size();
  }

  SharedBytes(std::initializer_list<std::uint8_t> init)
      : SharedBytes(Bytes(init)) {}

  /// Deep-copy a borrowed span into fresh shared storage.
  static SharedBytes copy_of(std::span<const std::uint8_t> v) {
    return SharedBytes(Bytes(v.begin(), v.end()));
  }

  [[nodiscard]] const std::uint8_t* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  const std::uint8_t& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] const std::uint8_t* begin() const { return data_; }
  [[nodiscard]] const std::uint8_t* end() const { return data_ + size_; }

  [[nodiscard]] std::span<const std::uint8_t> span() const {
    return {data_, size_};
  }
  operator std::span<const std::uint8_t>() const {  // NOLINT
    return span();
  }

  /// Zero-copy sub-view of [offset, offset+len) sharing this storage.
  /// Throws std::out_of_range when the window does not fit.
  [[nodiscard]] SharedBytes slice(std::size_t offset, std::size_t len) const {
    if (offset > size_ || len > size_ - offset) {
      throw std::out_of_range("SharedBytes::slice(" + std::to_string(offset) +
                              ", " + std::to_string(len) + ") of " +
                              std::to_string(size_) + " bytes");
    }
    SharedBytes out;
    out.storage_ = storage_;
    out.data_ = data_ + offset;
    out.size_ = len;
    return out;
  }

  /// Detach: materialize a private, mutable deep copy of the contents.
  [[nodiscard]] Bytes to_bytes() const { return Bytes(begin(), end()); }

  /// Implicit detach for legacy `const util::Bytes&` consumers (e.g. old
  /// UDP handler lambdas). Deliberately a conversion *operator* so the
  /// copy is visible in the handler's signature choice, not at call sites.
  operator Bytes() const { return to_bytes(); }  // NOLINT

  /// True when both views alias the same underlying storage (tests use
  /// this to pin the no-deep-copy guarantee).
  [[nodiscard]] bool shares_storage_with(const SharedBytes& other) const {
    return storage_ != nullptr && storage_ == other.storage_;
  }
  [[nodiscard]] long use_count() const { return storage_.use_count(); }

  friend bool operator==(const SharedBytes& a, const SharedBytes& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator!=(const SharedBytes& a, const SharedBytes& b) {
    return !(a == b);
  }
  // Mixed comparisons: exact-match overloads so SharedBytes==Bytes never
  // has to choose between the two implicit conversion directions.
  friend bool operator==(const SharedBytes& a, const Bytes& b) {
    return a.size_ == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const Bytes& a, const SharedBytes& b) {
    return b == a;
  }
  friend bool operator!=(const SharedBytes& a, const Bytes& b) {
    return !(a == b);
  }
  friend bool operator!=(const Bytes& a, const SharedBytes& b) {
    return !(b == a);
  }

 private:
  std::shared_ptr<const Bytes> storage_;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace wam::util
