// Debug helpers for rendering byte buffers.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace wam::util {

/// Render a buffer as "aa bb cc ..." (lowercase hex, space separated).
[[nodiscard]] std::string hex(std::span<const std::uint8_t> buf);

/// Classic 16-bytes-per-line hexdump with an ASCII gutter.
[[nodiscard]] std::string hexdump(std::span<const std::uint8_t> buf);

}  // namespace wam::util
