// Contract-checking macros for the wackamole library.
//
// WAM_ASSERT / WAM_EXPECTS / WAM_ENSURES throw wam::util::ContractViolation
// (a std::logic_error) instead of aborting: in a discrete-event simulation a
// violated invariant is a test failure we want to surface through gtest, not
// a process death.
#pragma once

#include <stdexcept>
#include <string>

namespace wam::util {

/// Thrown when a WAM_ASSERT / WAM_EXPECTS / WAM_ENSURES contract fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void contract_failed(const char* kind, const char* expr,
                                         const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}

}  // namespace wam::util

#define WAM_ASSERT(expr)                                                  \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::wam::util::contract_failed("assertion", #expr, __FILE__, __LINE__); \
    }                                                                     \
  } while (false)

// Precondition on function entry.
#define WAM_EXPECTS(expr)                                                    \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::wam::util::contract_failed("precondition", #expr, __FILE__, __LINE__); \
    }                                                                        \
  } while (false)

// Postcondition before function exit.
#define WAM_ENSURES(expr)                                                     \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::wam::util::contract_failed("postcondition", #expr, __FILE__, __LINE__); \
    }                                                                         \
  } while (false)
