#include "util/interner.hpp"

#include <mutex>
#include <stdexcept>

namespace wam::util {

Interner::~Interner() {
  for (auto& c : chunks_) delete[] c.load(std::memory_order_relaxed);
}

std::uint32_t Interner::intern(std::string_view s) {
  {
    std::shared_lock lock(mu_);
    auto it = index_.find(s);
    if (it != index_.end()) return it->second;
  }
  std::unique_lock lock(mu_);
  // Re-check: another thread may have interned `s` between the locks.
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  const auto id = size_.load(std::memory_order_relaxed);
  const auto loc = locate(id);
  auto* base = chunks_[loc.chunk].load(std::memory_order_relaxed);
  if (base == nullptr) {
    base = new std::string[capacity_of(loc.chunk)];
    // Publish the chunk before the size that makes its slots reachable.
    chunks_[loc.chunk].store(base, std::memory_order_release);
  }
  base[loc.offset] = std::string(s);
  index_.emplace(std::string_view(base[loc.offset]), id);
  size_.store(id + 1, std::memory_order_release);
  return id;
}

std::optional<std::uint32_t> Interner::find(std::string_view s) const {
  std::shared_lock lock(mu_);
  auto it = index_.find(s);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

void Interner::throw_unknown(std::uint32_t id) {
  throw std::out_of_range("Interner::name_of: unknown id " +
                          std::to_string(id));
}

}  // namespace wam::util
