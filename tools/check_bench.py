#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and fail on regressions.

Usage:
    check_bench.py BASELINE.json CURRENT.json [--threshold 2.0]

For every benchmark present in both files, computes
current_time / baseline_time (real_time, same time_unit required) and
exits non-zero if any ratio exceeds the threshold. Benchmarks that only
exist on one side are reported but never fatal, so adding or retiring a
benchmark does not break CI.

Baselines are machine-dependent: the checked-in baseline is only meant to
catch order-of-magnitude regressions (hence the generous default
threshold), not single-digit-percent noise.
"""

import argparse
import json
import sys


def load_benchmarks(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions).
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = b
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=2.0,
                    help="fail when current/baseline exceeds this (default 2.0)")
    args = ap.parse_args()

    base = load_benchmarks(args.baseline)
    curr = load_benchmarks(args.current)

    missing = sorted(set(base) - set(curr))
    added = sorted(set(curr) - set(base))
    for name in missing:
        print(f"NOTE  {name}: in baseline only (skipped)")
    for name in added:
        print(f"NOTE  {name}: new benchmark, no baseline")

    failures = []
    for name in sorted(set(base) & set(curr)):
        b, c = base[name], curr[name]
        if b.get("time_unit") != c.get("time_unit"):
            print(f"SKIP  {name}: time_unit mismatch "
                  f"({b.get('time_unit')} vs {c.get('time_unit')})")
            continue
        bt, ct = b.get("real_time"), c.get("real_time")
        if not bt or bt <= 0 or ct is None:
            print(f"SKIP  {name}: unusable real_time")
            continue
        ratio = ct / bt
        status = "FAIL" if ratio > args.threshold else "ok"
        print(f"{status:<5} {name}: {bt:.1f} -> {ct:.1f} {b['time_unit']} "
              f"({ratio:.2f}x)")
        if ratio > args.threshold:
            failures.append((name, ratio))

    if failures:
        print(f"\n{len(failures)} benchmark(s) regressed beyond "
              f"{args.threshold:.1f}x:")
        for name, ratio in failures:
            print(f"  {name}: {ratio:.2f}x")
        return 1
    print(f"\nall {len(set(base) & set(curr))} shared benchmark(s) within "
          f"{args.threshold:.1f}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
