#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and fail on regressions.

Usage:
    check_bench.py BASELINE.json CURRENT.json [--threshold 2.0]
        [--override GLOB=RATIO ...]

For every benchmark present in both files, computes
current_time / baseline_time (real_time, same time_unit required) and
exits non-zero if any ratio exceeds its threshold. Benchmarks that only
exist on one side are reported but never fatal, so adding or retiring a
benchmark does not break CI.

Per-benchmark overrides loosen (or tighten) the global threshold for
benchmarks whose name matches an fnmatch glob, e.g.

    check_bench.py base.json curr.json --threshold 2.0 \\
        --override 'BM_Scale*=3.0' --override 'BM_StateEncode/*=1.5'

The first matching override wins. Use them for benchmarks that measure
whole-simulation runs (noisier than micro loops) rather than raising the
global threshold for everyone.

Baselines are machine-dependent: the checked-in baseline is only meant to
catch order-of-magnitude regressions (hence the generous default
threshold), not single-digit-percent noise.
"""

import argparse
import fnmatch
import json
import sys


def load_benchmarks(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions).
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = b
    return out


def parse_override(text):
    glob, sep, ratio = text.rpartition("=")
    if not sep or not glob:
        raise argparse.ArgumentTypeError(
            f"override '{text}' is not of the form GLOB=RATIO")
    try:
        value = float(ratio)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"override '{text}' has a non-numeric ratio") from exc
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"override '{text}' must have a positive ratio")
    return glob, value


def threshold_for(name, default, overrides):
    for glob, ratio in overrides:
        if fnmatch.fnmatchcase(name, glob):
            return ratio
    return default


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=2.0,
                    help="fail when current/baseline exceeds this (default 2.0)")
    ap.add_argument("--override", type=parse_override, action="append",
                    default=[], metavar="GLOB=RATIO",
                    help="per-benchmark threshold; first matching glob wins")
    args = ap.parse_args()

    base = load_benchmarks(args.baseline)
    curr = load_benchmarks(args.current)

    missing = sorted(set(base) - set(curr))
    added = sorted(set(curr) - set(base))
    for name in missing:
        print(f"NOTE  {name}: in baseline only (skipped)")
    for name in added:
        print(f"NOTE  {name}: new benchmark, no baseline")

    failures = []
    for name in sorted(set(base) & set(curr)):
        b, c = base[name], curr[name]
        if b.get("time_unit") != c.get("time_unit"):
            print(f"SKIP  {name}: time_unit mismatch "
                  f"({b.get('time_unit')} vs {c.get('time_unit')})")
            continue
        bt, ct = b.get("real_time"), c.get("real_time")
        if not bt or bt <= 0 or ct is None:
            print(f"SKIP  {name}: unusable real_time")
            continue
        limit = threshold_for(name, args.threshold, args.override)
        ratio = ct / bt
        status = "FAIL" if ratio > limit else "ok"
        note = "" if limit == args.threshold else f" [limit {limit:.1f}x]"
        print(f"{status:<5} {name}: {bt:.1f} -> {ct:.1f} {b['time_unit']} "
              f"({ratio:.2f}x){note}")
        if ratio > limit:
            failures.append((name, ratio, limit))

    if failures:
        print(f"\n{len(failures)} benchmark(s) regressed beyond their limit:")
        for name, ratio, limit in failures:
            print(f"  {name}: {ratio:.2f}x (limit {limit:.1f}x)")
        return 1
    print(f"\nall {len(set(base) & set(curr))} shared benchmark(s) within "
          f"their limits")
    return 0


if __name__ == "__main__":
    sys.exit(main())
