// Figure 4: N-way fail-over for routers.
//
// Two physical routers form one virtual router whose identity — an
// INDIVISIBLE set of three addresses, one per attached network — is
// managed by Wackamole. An internet client reaches a web server through
// the virtual router; we crash the active physical router and watch the
// whole address set move atomically to the survivor.
//
//   ./virtual_router
#include <cstdio>

#include "apps/router_scenario.hpp"

using namespace wam;

namespace {

void show(apps::RouterScenario& s) {
  std::printf("  t=%.3fs  virtual router {%s, %s, %s}:",
              sim::to_seconds(s.sched.now().time_since_epoch()),
              s.external_vip().to_string().c_str(),
              s.web_vip().to_string().c_str(),
              s.db_vip().to_string().c_str());
  int active = s.active_router();
  if (active >= 0) {
    std::printf(" embodied by %s (whole group: %s)\n",
                s.router_host(active).name().c_str(),
                s.holds_whole_group(active) ? "yes" : "NO — SPLIT!");
  } else {
    std::printf(" %s\n", active == -1 ? "nobody" : "CONFLICT");
  }
}

}  // namespace

int main() {
  apps::RouterScenarioOptions opt;
  opt.num_routers = 2;
  apps::RouterScenario s(opt);
  s.start();
  s.run(sim::seconds(8.0));

  std::printf("Virtual-router fail-over (Figure 4)\n\n");
  show(s);

  s.start_probe();
  s.run(sim::seconds(2.0));
  std::printf("  client -> webserver traffic flows via the virtual router "
              "(%zu responses so far)\n",
              s.probe().responses().size());

  int active = s.active_router();
  std::printf("\n*** crashing %s (all three interfaces) ***\n",
              s.router_host(active).name().c_str());
  s.fail_router(active);
  s.run(sim::seconds(10.0));
  show(s);

  auto gaps = s.probe().interruptions();
  if (!gaps.empty()) {
    std::printf("  client-perceived interruption: %.3f s\n",
                sim::to_seconds(gaps.back().length()));
  }

  std::printf("\n*** recovering %s ***\n",
              s.router_host(active).name().c_str());
  s.recover_router(active);
  s.run(sim::seconds(10.0));
  show(s);

  std::printf(
      "\nNote: the group {ext, web, db} always moves as one unit — no\n"
      "router ever routes with a partial identity (Section 5.2).\n");
  return 0;
}
