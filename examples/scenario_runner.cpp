// Scenario runner: execute a text-scripted fault scenario against a
// simulated Wackamole cluster and narrate what happens.
//
//   ./scenario_runner                       # runs the built-in demo script
//   ./scenario_runner myfile.scn            # runs your script
//   ./scenario_runner --trace [myfile.scn]  # also dump the frame trace tail
//
// See src/apps/scenario.hpp for the DSL reference.
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "apps/scenario.hpp"

namespace {

constexpr const char* kDemo = R"(# Built-in demo: churn a 4-server cluster
servers 4
vips 8
gcs tuned
balance 15

at 3   coverage
at 5   disconnect server2
at 12  coverage
at 14  reconnect server2
at 25  balance
at 27  coverage
at 30  partition server1,server2 | server3,server4
at 40  coverage
at 42  merge
at 52  leave server4
at 56  status server1
run 60
)";

}  // namespace

int main(int argc, char** argv) {
  std::size_t trace_tail = 0;
  std::vector<std::string> args(argv + 1, argv + argc);
  for (auto it = args.begin(); it != args.end();) {
    if (*it == "--trace") {
      trace_tail = 40;
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  std::string text;
  if (!args.empty()) {
    std::ifstream in(args[0]);
    if (!in) {
      std::cerr << "cannot open " << args[0] << "\n";
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  } else {
    std::cout << "(no script given; running the built-in demo)\n\n"
              << kDemo << "\n--- execution ---\n";
    text = kDemo;
  }

  try {
    bool ok = wam::apps::run_scenario(text, std::cout, trace_tail);
    return ok ? 0 : 1;
  } catch (const wam::apps::ScriptError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
