// Partition/merge demo: Property 1 is per maximal connected component.
//
// A 4-server cluster splits into two components; each side detects the
// "holes" and re-covers the FULL virtual address set (clients in either
// component keep being served). On merge, the conflict-resolution rule of
// ResolveConflicts() deterministically drops the duplicates and the
// cluster converges back to exactly-once coverage.
//
//   ./partition_demo
#include <cstdio>

#include "apps/cluster_scenario.hpp"

using namespace wam;

namespace {

void show_coverage(apps::ClusterScenario& s, const char* title) {
  std::printf("\n=== %s ===\n", title);
  std::printf("  %-12s", "VIP");
  for (int i = 0; i < s.num_servers(); ++i) {
    std::printf(" %-9s", s.server_host(i).name().c_str());
  }
  std::printf("\n");
  for (int k = 0; k < s.options().num_vips; ++k) {
    std::printf("  %-12s", s.vip(k).to_string().c_str());
    for (int i = 0; i < s.num_servers(); ++i) {
      std::printf(" %-9s",
                  s.server_host(i).owns_ip(s.vip(k)) ? "covered" : ".");
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  apps::ClusterOptions opt;
  opt.num_servers = 4;
  opt.num_vips = 6;
  apps::ClusterScenario s(opt);
  s.start();
  s.run_until_stable(sim::seconds(10.0));
  s.wam(0).trigger_balance();
  s.run(sim::seconds(1.0));
  show_coverage(s, "healthy cluster: each VIP covered exactly once");

  std::printf("\n*** partitioning: {server1,server2} | {server3,server4} ***\n");
  s.partition({{0, 1}, {2, 3}});
  s.run(sim::seconds(8.0));
  show_coverage(s,
                "partitioned: BOTH components cover the full set "
                "(exactly once per component)");

  std::printf("\n*** merging the components ***\n");
  s.merge();
  s.run(sim::seconds(8.0));
  show_coverage(s, "merged: conflicts resolved, exactly-once again");

  std::uint64_t conflicts = s.obs.registry.sum("wam/*/conflicts_dropped");
  std::printf("\nconflicting claims dropped during the merge: %llu\n",
              static_cast<unsigned long long>(conflicts));
  return 0;
}
