// wackamoled: the production shape of a Wackamole node, end to end.
//
// Each simulated server assembles exactly what a real deployment runs:
//   * a wackamole.conf parsed from text,
//   * the GCS daemon,
//   * the Wackamole daemon driven by the parsed config,
//   * a ControlServer (the wackatrl endpoint),
//   * a HealthMonitor probing the local application.
// An operator host then drives the cluster over the wire: status queries,
// a balance, and finally watches the health monitor evict a server whose
// application died.
//
//   ./wackamoled
#include <cstdio>
#include <memory>
#include <vector>

#include "apps/echo.hpp"
#include "gcs/daemon.hpp"
#include "net/fabric.hpp"
#include "gcs/conf_parser.hpp"
#include "wackamole/conf_parser.hpp"
#include "wackamole/control_server.hpp"
#include "wackamole/health.hpp"

using namespace wam;

namespace {

constexpr const char* kSpreadConf = R"(
# spread.conf — tuned timeouts, multicast transport
Multicast = 239.192.0.7
FaultDetection = 1s
Heartbeat = 0.4s
Discovery = 1.4s
)";

constexpr const char* kConf = R"(
Group = production
Mature = 0s
Balance = 5s
ArpShare = 0s
Announce = 10s
Prefer = None

VirtualInterfaces {
  { if0: 10.0.0.100/32 }
  { if0: 10.0.0.101/32 }
  { if0: 10.0.0.102/32 }
  { if0: 10.0.0.103/32 }
}
)";

struct Node {
  std::unique_ptr<net::Host> host;
  std::unique_ptr<gcs::Daemon> gcs;
  std::unique_ptr<wackamole::SimIpManager> ipmgr;
  std::unique_ptr<wackamole::Daemon> wam;
  std::unique_ptr<wackamole::ControlServer> control;
  std::unique_ptr<wackamole::HealthMonitor> health;
  std::unique_ptr<apps::EchoServer> app;
};

}  // namespace

int main() {
  sim::Scheduler sched;
  sim::Log log(sched);
  net::Fabric fabric(sched, &log);
  auto seg = fabric.add_segment();

  std::printf("parsing spread.conf:\n%s\n", kSpreadConf);
  auto gcs_config = gcs::parse_config(kSpreadConf);
  std::printf("parsing wackamole.conf:\n%s\n", kConf);
  auto config = wackamole::parse_config(kConf);

  std::vector<Node> nodes;
  for (int i = 0; i < 3; ++i) {
    Node n;
    n.host = std::make_unique<net::Host>(sched, fabric,
                                         "node" + std::to_string(i + 1), &log);
    n.host->add_interface(
        seg, net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i + 1)),
        24);
    n.gcs = std::make_unique<gcs::Daemon>(*n.host, gcs_config, &log);
    n.ipmgr = std::make_unique<wackamole::SimIpManager>(*n.host);
    n.wam = std::make_unique<wackamole::Daemon>(sched, config, *n.gcs,
                                                *n.ipmgr, &log);
    n.control = std::make_unique<wackamole::ControlServer>(*n.host, *n.wam);
    n.app = std::make_unique<apps::EchoServer>(*n.host);
    n.health = std::make_unique<wackamole::HealthMonitor>(
        sched, *n.wam,
        wackamole::HealthMonitorConfig{sim::seconds(1.0), 3, 2}, &log);
    n.health->add_check(std::make_unique<wackamole::UdpServiceCheck>(
        *n.host, n.host->primary_ip(0), 9000));

    n.gcs->start();
    n.wam->start();
    n.control->start();
    n.app->start();
    n.health->start();
    nodes.push_back(std::move(n));
  }

  auto operator_host = std::make_unique<net::Host>(sched, fabric, "operator",
                                                   &log);
  operator_host->add_interface(seg, net::Ipv4Address(10, 0, 0, 50), 24);
  wackamole::ControlClient wackatrl(*operator_host);

  sched.run_for(sim::seconds(10.0));  // converge + one balance round

  auto ask = [&](int node, const std::string& cmd) {
    std::printf("$ wackatrl -h node%d %s\n", node + 1, cmd.c_str());
    wackatrl.send(nodes[static_cast<std::size_t>(node)].host->primary_ip(0),
                  cmd, [](const std::string& reply) {
                    std::printf("%s\n", reply.c_str());
                  });
    sched.run_for(sim::seconds(0.5));
  };

  ask(0, "status");

  std::printf("*** killing node2's application (the NETWORK stays up) ***\n");
  nodes[1].app->stop();
  sched.run_for(sim::seconds(8.0));
  std::printf("health monitor verdict on node2: %s after %llu withdrawal(s)\n\n",
              nodes[1].health->withdrawn() ? "WITHDRAWN" : "healthy",
              static_cast<unsigned long long>(nodes[1].health->withdrawals()));
  ask(0, "status");

  std::printf("*** restarting node2's application ***\n");
  nodes[1].app->start();
  sched.run_for(sim::seconds(15.0));
  std::printf("node2 rejoined: %s, owns %zu groups\n\n",
              nodes[1].wam->running() ? "yes" : "no",
              nodes[1].wam->owned().size());
  ask(1, "status");
  return 0;
}
