// Figure 3: N-way fail-over for web clusters.
//
// A client on the far side of a router continuously probes one of the
// cluster's virtual addresses (10 ms interval, as in the paper's §6
// experiment). We disconnect the interface of the VIP's current owner and
// report the availability interruption the client perceived — with both
// the default and the tuned Spread-style timeout configurations of Table 1.
//
//   ./web_cluster
#include <cstdio>

#include "apps/cluster_scenario.hpp"

using namespace wam;

namespace {

void run_experiment(const char* label, const gcs::Config& gcs_config) {
  apps::ClusterOptions opt;
  opt.num_servers = 4;
  opt.num_vips = 10;
  opt.gcs = gcs_config;

  apps::ClusterScenario s(opt);
  s.start();
  s.run_until_stable(sim::seconds(30.0));
  s.start_probe(0);
  s.run(sim::seconds(2.0));

  int victim = s.owner_of(0);
  std::printf("[%s] probing %s, currently served by %s\n", label,
              s.vip(0).to_string().c_str(),
              s.server_host(victim).name().c_str());

  std::printf("[%s] *** disconnecting %s's interface ***\n", label,
              s.server_host(victim).name().c_str());
  s.disconnect_server(victim);
  s.run(sim::seconds(20.0));

  auto gaps = s.probe().interruptions();
  if (gaps.empty()) {
    std::printf("[%s] no interruption detected?!\n", label);
    return;
  }
  const auto& gap = gaps.front();
  std::printf(
      "[%s] availability interruption: %.3f s "
      "(last response from %s at t=%.3fs, first from %s at t=%.3fs)\n",
      label, sim::to_seconds(gap.length()), gap.server_before.c_str(),
      sim::to_seconds(gap.last_response.time_since_epoch()),
      gap.server_after.c_str(),
      sim::to_seconds(gap.first_response.time_since_epoch()));
}

}  // namespace

int main() {
  std::printf("Web-cluster fail-over (Figure 3) — 4 servers, 10 VIPs,\n");
  std::printf("client probes one VIP through the router at 10 ms.\n\n");
  run_experiment("default-spread", gcs::Config::spread_default());
  std::printf("\n");
  run_experiment("tuned-spread", gcs::Config::spread_tuned());
  std::printf(
      "\nPaper reference: ~10-12 s with default timeouts, ~2-3 s tuned "
      "(Figure 5).\n");
  return 0;
}
