// chaos_campaign: randomized fault-injection campaign with invariant
// oracles (see docs/CHAOS.md).
//
//   chaos_campaign --seeds 100                 # seeds 1..100, both profiles
//   chaos_campaign --seed 42 --profile cluster # one seed, one profile
//   chaos_campaign --seed 42 --dsl             # print the schedule DSL
//   chaos_campaign --seed 42 --replay          # print the event timeline
//   chaos_campaign --seeds 100 --jobs 4        # 4 worker threads
//
// Exit status is non-zero iff any seed produced a Property 1/2 violation;
// each violating seed prints its violations, the shrunk schedule and the
// DSL replay artifact, so CI failures are immediately reproducible.
//
// --jobs N fans the (seed, profile) list out over N threads; results are
// buffered and reported in seed order, so stdout is byte-identical to a
// sequential run (each seed builds its own simulation universe).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "chaos/campaign.hpp"
#include "chaos/parallel.hpp"

namespace {

struct CliOptions {
  std::uint64_t first_seed = 1;
  std::uint64_t num_seeds = 25;
  bool single_seed = false;
  bool cluster = true;
  bool router = true;
  bool print_dsl = false;
  bool print_timeline = false;
  bool quiet = false;
  int jobs = 1;
  wam::chaos::CampaignOptions campaign;
};

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seeds N] [--seed S] [--profile cluster|router|both]\n"
      "          [--rounds R] [--servers N] [--vips K] [--os-faults]\n"
      "          [--state-faults] [--no-shrink] [--dsl] [--replay]\n"
      "          [--quiet] [--jobs N] [--shards N] [--no-shard-threads]\n",
      argv0);
  return 2;
}

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s, &end, 10);
  return end && *end == '\0' && end != s;
}

void report(const wam::chaos::CampaignResult& r, const CliOptions& cli) {
  using wam::chaos::profile_name;
  if (r.passed()) {
    if (!cli.quiet) {
      std::printf("seed %llu %s: OK (%zu actions, %zu checkpoints)\n",
                  static_cast<unsigned long long>(r.seed),
                  profile_name(r.profile), r.schedule.actions.size(),
                  r.schedule.checkpoints.size());
    }
  } else {
    std::printf("seed %llu %s: %zu VIOLATION(S)\n",
                static_cast<unsigned long long>(r.seed),
                profile_name(r.profile), r.violations.size());
    for (const auto& v : r.violations) {
      std::printf("  %s\n", wam::chaos::to_string(v).c_str());
    }
    if (!r.shrunk_actions.empty()) {
      std::printf(
          "  shrunk to %zu/%zu actions (%d replays); minimal schedule:\n",
          r.shrunk_actions.size(), r.schedule.actions.size(),
          r.shrink_evaluations);
      std::printf("%s", r.shrunk_dsl.c_str());
    }
    std::printf("  full replay artifact (scenario DSL):\n%s", r.dsl.c_str());
  }
  if (cli.print_dsl) std::printf("%s", r.dsl.c_str());
  if (cli.print_timeline) std::printf("%s\n", r.timeline_json.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    std::uint64_t v = 0;
    if (std::strcmp(arg, "--seeds") == 0) {
      const char* a = next();
      if (!a || !parse_u64(a, cli.num_seeds) || cli.num_seeds == 0) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--seed") == 0) {
      const char* a = next();
      if (!a || !parse_u64(a, cli.first_seed)) return usage(argv[0]);
      cli.single_seed = true;
    } else if (std::strcmp(arg, "--profile") == 0) {
      const char* a = next();
      if (!a) return usage(argv[0]);
      cli.cluster = std::strcmp(a, "router") != 0;
      cli.router = std::strcmp(a, "cluster") != 0;
      if (!cli.cluster && !cli.router) return usage(argv[0]);
    } else if (std::strcmp(arg, "--rounds") == 0) {
      const char* a = next();
      if (!a || !parse_u64(a, v) || v == 0) return usage(argv[0]);
      cli.campaign.generator.rounds = static_cast<int>(v);
    } else if (std::strcmp(arg, "--servers") == 0) {
      const char* a = next();
      if (!a || !parse_u64(a, v) || v < 2) return usage(argv[0]);
      cli.campaign.generator.num_servers = static_cast<int>(v);
    } else if (std::strcmp(arg, "--vips") == 0) {
      const char* a = next();
      if (!a || !parse_u64(a, v) || v == 0 || v > 100) return usage(argv[0]);
      cli.campaign.generator.num_vips = static_cast<int>(v);
    } else if (std::strcmp(arg, "--os-faults") == 0) {
      cli.campaign.generator.os_faults = true;
    } else if (std::strcmp(arg, "--state-faults") == 0) {
      // Transient state-corruption verbs + the ReconvergenceOracle
      // (cluster profile; router schedules do not generate them).
      cli.campaign.generator.state_faults = true;
    } else if (std::strcmp(arg, "--shards") == 0) {
      // Run cluster-profile seeds on the sharded engine (decision-identical
      // to the default sequential engine; see docs/PARALLEL.md).
      const char* a = next();
      if (!a || !parse_u64(a, v) || v == 0 || v > 64) return usage(argv[0]);
      cli.campaign.shards = static_cast<int>(v);
    } else if (std::strcmp(arg, "--no-shard-threads") == 0) {
      cli.campaign.shard_threads = false;
    } else if (std::strcmp(arg, "--no-shrink") == 0) {
      cli.campaign.shrink = false;
    } else if (std::strcmp(arg, "--dsl") == 0) {
      cli.print_dsl = true;
    } else if (std::strcmp(arg, "--replay") == 0) {
      cli.print_timeline = true;
    } else if (std::strcmp(arg, "--jobs") == 0) {
      const char* a = next();
      if (!a || !parse_u64(a, v) || v == 0 || v > 256) return usage(argv[0]);
      cli.jobs = static_cast<int>(v);
    } else if (std::strcmp(arg, "--quiet") == 0) {
      cli.quiet = true;
    } else {
      return usage(argv[0]);
    }
  }

  std::vector<wam::chaos::Profile> profiles;
  if (cli.cluster) profiles.push_back(wam::chaos::Profile::kCluster);
  if (cli.router) profiles.push_back(wam::chaos::Profile::kRouter);
  const std::uint64_t last_seed =
      cli.single_seed ? cli.first_seed : cli.first_seed + cli.num_seeds - 1;

  std::vector<wam::chaos::SeedJob> work;
  for (std::uint64_t seed = cli.first_seed; seed <= last_seed; ++seed) {
    for (auto profile : profiles) {
      auto opts = cli.campaign;
      if (profile == wam::chaos::Profile::kRouter &&
          cli.campaign.generator.num_servers > 4) {
        opts.generator.num_servers = 3;  // paper-sized router deployments
      }
      work.push_back({seed, profile, opts});
    }
  }

  // Results come back in job order whatever the thread count, so the
  // report below is byte-identical to a sequential run.
  wam::chaos::ParallelRunner runner(cli.jobs);
  auto results = runner.run(work);

  int failures = 0;
  std::vector<double> recon;
  for (const auto& r : results) {
    report(r, cli);
    if (!r.passed()) ++failures;
    recon.insert(recon.end(), r.reconvergence_ms.begin(),
                 r.reconvergence_ms.end());
  }
  if (!recon.empty()) {
    // Injection-to-first-SelfHeal window per applied corruption
    // (--state-faults); the distribution CI and EXPERIMENTS.md track.
    std::sort(recon.begin(), recon.end());
    auto pct = [&](double p) {
      return recon[static_cast<std::size_t>(p * (recon.size() - 1))];
    };
    std::printf(
        "reconvergence: %zu sample(s), min %.0f ms, p50 %.0f ms, "
        "p90 %.0f ms, max %.0f ms\n",
        recon.size(), recon.front(), pct(0.5), pct(0.9), recon.back());
  }
  std::printf("%zu run(s), %d with violations\n", results.size(), failures);
  return failures == 0 ? 0 : 1;
}
