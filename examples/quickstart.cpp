// Quickstart: a 3-server Wackamole cluster covering 6 virtual IPs.
//
// Shows the basic lifecycle: build a simulated LAN, run GCS + Wackamole on
// every server, watch the VIP table converge, kill a server, and watch the
// survivors re-cover its addresses — exactly once, N-way.
//
//   ./quickstart
#include <cstdio>

#include "apps/cluster_scenario.hpp"
#include "wackamole/control.hpp"

using namespace wam;

namespace {

void show(apps::ClusterScenario& s, const char* title) {
  std::printf("\n=== %s (t=%.3fs) ===\n", title,
              sim::to_seconds(s.sched.now().time_since_epoch()));
  for (int k = 0; k < s.options().num_vips; ++k) {
    int owner = -1;
    for (int i = 0; i < s.num_servers(); ++i) {
      if (s.server_host(i).owns_ip(s.vip(k)) && s.server_host(i).is_up()) {
        owner = i;
      }
    }
    std::printf("  %-12s -> %s\n", s.vip(k).to_string().c_str(),
                owner < 0 ? "(unreachable)"
                          : s.server_host(owner).name().c_str());
  }
}

}  // namespace

int main() {
  apps::ClusterOptions opt;
  opt.num_servers = 3;
  opt.num_vips = 6;
  opt.gcs = gcs::Config::spread_tuned();

  apps::ClusterScenario s(opt);
  s.start();
  s.run_until_stable(sim::seconds(10.0));
  show(s, "initial allocation (server1 grabbed everything at boot)");

  // Even out the load with an admin-triggered balance round.
  wackamole::AdminControl ctl(s.wam(0));
  std::printf("\n$ wackamole-ctl balance\n%s", ctl.execute("balance").c_str());
  s.run(sim::seconds(1.0));
  show(s, "after balance");

  std::printf("\n$ wackamole-ctl status (server1)\n%s",
              ctl.execute("status").c_str());

  // Fault: pull server2's network cable.
  std::printf("\n*** disconnecting server2's interface ***\n");
  s.disconnect_server(1);
  s.run(sim::seconds(5.0));
  show(s, "after fail-over (survivors re-covered server2's VIPs)");

  std::printf("\n*** reconnecting server2 ***\n");
  s.reconnect_server(1);
  s.run(sim::seconds(5.0));
  s.wam(0).trigger_balance();
  s.run(sim::seconds(1.0));
  show(s, "after recovery + balance");

  std::printf("\ndone.\n");
  return 0;
}
