// The self-stabilization chaos campaign (--state-faults): schedule
// generation, DSL round-trip (including the `audit` directive the replay
// artifact needs to heal), the ReconvergenceOracle, the corruption ×
// quarantine interaction, deterministic replay, and sequential vs sharded
// byte-identity. See docs/CHAOS.md §state-faults.
#include <gtest/gtest.h>

#include "apps/scenario.hpp"
#include "chaos/campaign.hpp"
#include "chaos/oracle.hpp"
#include "chaos/schedule.hpp"

namespace wam::chaos {
namespace {

bool is_corruption(FaultKind k) {
  return k == FaultKind::kCorruptVipOwner || k == FaultKind::kCorruptIndex ||
         k == FaultKind::kStaleIncarnation || k == FaultKind::kFlipViewId ||
         k == FaultKind::kReconfigStorm;
}

// ---------------------------------------------------------- generation ----

TEST(StateFaultSchedule, CorruptionVerbsAreOptIn) {
  GeneratorOptions opt;
  sim::Rng rng(42);
  auto s = generate_cluster_schedule(rng, opt);
  EXPECT_FALSE(s.state_faults);
  for (const auto& a : s.actions) EXPECT_FALSE(is_corruption(a.kind));
}

TEST(StateFaultSchedule, GenerationIsDeterministicAndInjectsCorruption) {
  GeneratorOptions opt;
  opt.state_faults = true;
  sim::Rng r1(42), r2(42);
  auto a = generate_cluster_schedule(r1, opt);
  auto b = generate_cluster_schedule(r2, opt);
  EXPECT_EQ(to_dsl(a), to_dsl(b));
  EXPECT_TRUE(a.state_faults);
  bool any = false;
  for (const auto& x : a.actions) any |= is_corruption(x.kind);
  EXPECT_TRUE(any) << to_dsl(a);
}

TEST(StateFaultSchedule, DslRoundTripsIncludingTheAuditDirective) {
  GeneratorOptions opt;
  opt.state_faults = true;
  sim::Rng rng(5);
  auto s = generate_cluster_schedule(rng, opt);
  auto parsed = apps::parse_scenario(to_dsl(s));
  // The replay artifact must re-enable the auditors, or replayed
  // corruption would never heal and the artifact would spuriously fail.
  EXPECT_EQ(parsed.options.audit_interval, sim::milliseconds(250));
  EXPECT_EQ(parsed.options.gcs.audit_interval, sim::milliseconds(250));
  ASSERT_EQ(parsed.actions.size(), s.actions.size());
  for (std::size_t i = 0; i < s.actions.size(); ++i) {
    EXPECT_EQ(parsed.actions[i].verb, fault_kind_verb(s.actions[i].kind))
        << "action " << i;
    EXPECT_EQ(parsed.actions[i].servers, s.actions[i].servers)
        << "action " << i;
    EXPECT_DOUBLE_EQ(parsed.actions[i].value, s.actions[i].value)
        << "action " << i;
  }
}

TEST(StateFaultSchedule, ModelTreatsCorruptionAsNoOp) {
  // Transient corruption never changes the predicted steady state — that
  // is what makes shrunk subsequences sound.
  ClusterFaultModel m(3);
  FaultAction a;
  a.kind = FaultKind::kCorruptVipOwner;
  a.servers = {1};
  m.apply(a);
  EXPECT_TRUE(m.participant(1));
  EXPECT_FALSE(m.transient_active());
  EXPECT_EQ(m.components().size(), 1u);
}

// ------------------------------------------------------------ campaigns ----

TEST(StateFaultCampaign, ReplayIsByteIdentical) {
  CampaignOptions opt;
  opt.generator.state_faults = true;
  opt.shrink = false;
  auto a = run_seed(7, Profile::kCluster, opt);
  auto b = run_seed(7, Profile::kCluster, opt);
  ASSERT_FALSE(a.timeline_json.empty());
  EXPECT_EQ(a.timeline_json, b.timeline_json);
  EXPECT_EQ(a.dsl, b.dsl);
  EXPECT_TRUE(a.passed()) << to_string(a.violations.front());
}

TEST(StateFaultCampaign, PinnedSeedsStayClean) {
  CampaignOptions opt;
  opt.generator.state_faults = true;
  opt.shrink = false;
  for (std::uint64_t seed : {1u, 7u, 11u}) {
    auto r = run_seed(seed, Profile::kCluster, opt);
    EXPECT_TRUE(r.passed())
        << "seed " << seed << ": " << to_string(r.violations.front());
  }
}

TEST(StateFaultCampaign, Seed45GhostMemberRegression) {
  // Seed 45 under --shards 4: a wackamole resync (fresh-incarnation
  // leave+join, sequenced but not yet delivered at the resyncing server's
  // own GCS daemon) raced a view install. The merge's per-daemon
  // authoritativeness filter preferred that daemon's stale table entry,
  // resurrecting the dead incarnation as a ghost group member nobody could
  // ever hear a STATE_MSG from — all five wackamoles wedged in GATHER for
  // the rest of the run. Fixed by re-applying the install's sync-cut
  // join/leave controls to the merged table (gcs::Daemon::install_view).
  CampaignOptions opt;
  opt.generator.state_faults = true;
  opt.shrink = false;
  opt.shards = 4;
  auto r = run_seed(45, Profile::kCluster, opt);
  EXPECT_TRUE(r.passed()) << to_string(r.violations.front());
}

TEST(StateFaultCampaign, MeasuresReconvergenceWindows) {
  CampaignOptions opt;
  opt.generator.state_faults = true;
  opt.shrink = false;
  auto r = run_seed(7, Profile::kCluster, opt);
  ASSERT_TRUE(r.passed()) << to_string(r.violations.front());
  ASSERT_FALSE(r.reconvergence_ms.empty());
  for (double ms : r.reconvergence_ms) {
    EXPECT_GT(ms, 0.0);
    // Detection within the 250 ms audit period, healing within the capped
    // resync backoff: anything past 10 s means the oracle lost track.
    EXPECT_LE(ms, 10'000.0);
  }
}

TEST(StateFaultCampaign, ShardedReplayIsByteIdentical) {
  // Same contract as ChaosShard.SeededRunMatchesSequentialEngineByteForByte:
  // shards=1 IS the sequential oracle (PR 7), and shards=N must reproduce
  // its corruption timeline byte-exact. The legacy engine (shards=0) draws
  // fabric jitter from a differently-derived stream, so it is only held to
  // verdict agreement.
  CampaignOptions opt;
  opt.generator.state_faults = true;
  opt.shrink = false;
  auto legacy = run_seed(7, Profile::kCluster, opt);

  opt.shards = 1;
  auto oracle = run_seed(7, Profile::kCluster, opt);

  opt.shards = 4;
  auto sharded = run_seed(7, Profile::kCluster, opt);

  ASSERT_FALSE(oracle.timeline_json.empty());
  EXPECT_EQ(oracle.timeline_json, sharded.timeline_json);
  EXPECT_EQ(oracle.dsl, sharded.dsl);
  EXPECT_EQ(oracle.passed(), sharded.passed());
  EXPECT_EQ(legacy.passed(), sharded.passed());
  EXPECT_EQ(legacy.reconvergence_ms.size(), sharded.reconvergence_ms.size());
}

// ---------------------------------------- corruption x quarantine fence ----

// A member that is already OS-fault-quarantined gets a corruption on top;
// the self-fence heal path must compose with the existing quarantine
// instead of deadlocking coverage (the fence releases, peers take over,
// the cooldown probe un-fences after the OS heals).
TEST(StateFaultCampaign, CorruptionWhileOsQuarantinedStillReconverges) {
  FaultSchedule s;
  s.num_servers = 3;
  s.num_vips = 5;
  s.os_faults = true;
  s.state_faults = true;
  s.horizon = sim::seconds(45.0);

  auto act = [](double at_s, FaultKind kind, std::vector<int> servers,
                double value = 0.0) {
    FaultAction a;
    a.at = sim::seconds(at_s);
    a.kind = kind;
    a.servers = std::move(servers);
    a.value = value;
    return a;
  };
  // Sticky OS fault first: server2's next acquires fail, it fences and
  // quarantines whatever lands on it. Then corrupt its VIP table while
  // quarantined, heal the OS, and let the cooldown probe recover.
  s.actions.push_back(act(5.0, FaultKind::kOsFailSticky, {1}));
  s.actions.push_back(act(8.0, FaultKind::kCorruptVipOwner, {1}, 0.0));
  s.actions.push_back(act(18.0, FaultKind::kOsHeal, {1}));
  s.checkpoints.push_back({sim::seconds(38.0), false});
  s.checkpoints.push_back({sim::seconds(43.0), true});

  auto violations =
      execute_schedule(s, s.actions, /*fabric_seed=*/99, nullptr);
  EXPECT_TRUE(violations.empty()) << to_string(violations.front());
}

}  // namespace
}  // namespace wam::chaos
