#include <gtest/gtest.h>

#include <memory>

#include "apps/echo.hpp"
#include "apps/probe_client.hpp"
#include "net/fabric.hpp"

namespace wam::apps {
namespace {

struct AppsTest : ::testing::Test {
  sim::Scheduler sched;
  net::Fabric fabric{sched};
  net::SegmentId seg = fabric.add_segment();

  std::unique_ptr<net::Host> make_host(const std::string& name, int octet) {
    auto h = std::make_unique<net::Host>(sched, fabric, name);
    h->add_interface(
        seg, net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(octet)), 24);
    return h;
  }
};

TEST_F(AppsTest, EchoRepliesWithHostname) {
  auto server = make_host("webserver1", 1);
  auto client = make_host("client", 2);
  EchoServer echo(*server);
  echo.start();
  std::string reply;
  util::Bytes echoed;
  client->open_udp(5000, [&](const net::Host::UdpContext&,
                             const util::Bytes& p) {
    util::ByteReader r(p);
    reply = r.str();
    echoed = r.raw(r.remaining());
  });
  client->send_udp(net::Ipv4Address(10, 0, 0, 1), 9000, 5000, {1});
  sched.run_all();
  EXPECT_EQ(reply, "webserver1");
  EXPECT_EQ(echoed, util::Bytes{1});  // request payload echoed back
  EXPECT_EQ(echo.requests_served(), 1u);
}

TEST_F(AppsTest, EchoRepliesFromTheVipItWasAskedOn) {
  auto server = make_host("s", 1);
  auto client = make_host("c", 2);
  auto vip = net::Ipv4Address(10, 0, 0, 100);
  server->add_alias(0, vip);
  EchoServer echo(*server);
  echo.start();
  net::Ipv4Address reply_src;
  client->open_udp(5000, [&](const net::Host::UdpContext& ctx,
                             const util::Bytes&) { reply_src = ctx.src_ip; });
  client->send_udp(vip, 9000, 5000, {1});
  sched.run_all();
  EXPECT_EQ(reply_src, vip);
}

TEST_F(AppsTest, EchoStopClosesSocket) {
  auto server = make_host("s", 1);
  auto client = make_host("c", 2);
  EchoServer echo(*server);
  echo.start();
  echo.stop();
  client->send_udp(net::Ipv4Address(10, 0, 0, 1), 9000, 5000, {1});
  sched.run_all();
  EXPECT_EQ(echo.requests_served(), 0u);
}

TEST_F(AppsTest, ProbeClientCountsResponses) {
  auto server = make_host("s", 1);
  auto client = make_host("c", 2);
  EchoServer echo(*server);
  echo.start();
  ProbeClient probe(*client, net::Ipv4Address(10, 0, 0, 1));
  probe.start();
  sched.run_for(sim::seconds(1.0));
  probe.stop();
  // 10 ms interval: ~100 requests, all answered.
  EXPECT_GE(probe.requests_sent(), 99u);
  EXPECT_GE(probe.responses().size(), 98u);
  EXPECT_EQ(probe.current_server(), "s");
  EXPECT_TRUE(probe.interruptions().empty());
}

TEST_F(AppsTest, ProbeClientMeasuresInterruption) {
  auto s1 = make_host("s1", 1);
  auto s2 = make_host("s2", 2);
  auto client = make_host("c", 3);
  auto vip = net::Ipv4Address(10, 0, 0, 100);
  EchoServer e1(*s1), e2(*s2);
  e1.start();
  e2.start();
  s1->add_alias(0, vip);

  ProbeClient probe(*client, vip);
  probe.start();
  sched.run_for(sim::seconds(1.0));

  // Manual fail-over with a 500 ms outage.
  s1->fail();
  sched.run_for(sim::milliseconds(500));
  s2->add_alias(0, vip);
  s2->send_gratuitous_arp(0, vip);
  sched.run_for(sim::seconds(1.0));

  auto gaps = probe.interruptions();
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0].server_before, "s1");
  EXPECT_EQ(gaps[0].server_after, "s2");
  double ms = sim::to_millis(gaps[0].length());
  EXPECT_GE(ms, 450.0);
  EXPECT_LE(ms, 650.0);
  EXPECT_EQ(probe.current_server(), "s2");
}

TEST_F(AppsTest, ProbeLongestGapTracksWorstOutage) {
  auto server = make_host("s", 1);
  auto client = make_host("c", 2);
  EchoServer echo(*server);
  echo.start();
  ProbeClient probe(*client, net::Ipv4Address(10, 0, 0, 1));
  probe.start();
  sched.run_for(sim::seconds(1.0));
  server->fail();
  sched.run_for(sim::milliseconds(300));
  server->recover();
  sched.run_for(sim::seconds(1.0));
  double ms = sim::to_millis(probe.longest_gap());
  EXPECT_GE(ms, 280.0);
  EXPECT_LE(ms, 400.0);
}

TEST_F(AppsTest, InterruptionThresholdFilters) {
  auto server = make_host("s", 1);
  auto client = make_host("c", 2);
  EchoServer echo(*server);
  echo.start();
  ProbeClient probe(*client, net::Ipv4Address(10, 0, 0, 1));
  probe.start();
  sched.run_for(sim::seconds(1.0));
  server->fail();
  sched.run_for(sim::milliseconds(100));
  server->recover();
  sched.run_for(sim::seconds(1.0));
  EXPECT_EQ(probe.interruptions(sim::milliseconds(500)).size(), 0u);
  EXPECT_EQ(probe.interruptions(sim::milliseconds(80)).size(), 1u);
}

}  // namespace
}  // namespace wam::apps
