#include "gcs/groups.hpp"

#include <gtest/gtest.h>

namespace wam::gcs {
namespace {

DaemonId ip(int n) {
  return DaemonId(net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(n)));
}

MemberId member(int daemon, std::uint32_t client) {
  return MemberId{ip(daemon), client, "c"};
}

View view_of(std::initializer_list<int> daemons) {
  View v;
  v.id = ViewId{1, ip(1)};
  for (int d : daemons) v.members.push_back(ip(d));
  std::sort(v.members.begin(), v.members.end());
  return v;
}

TEST(GroupTable, JoinAndDuplicateJoin) {
  GroupTable t;
  EXPECT_TRUE(t.join("g", member(1, 1)));
  EXPECT_FALSE(t.join("g", member(1, 1)));
  EXPECT_TRUE(t.has_member("g", member(1, 1)));
}

TEST(GroupTable, LeaveAndStaleLeave) {
  GroupTable t;
  t.join("g", member(1, 1));
  EXPECT_TRUE(t.leave("g", member(1, 1)));
  EXPECT_FALSE(t.leave("g", member(1, 1)));
  EXPECT_FALSE(t.has_member("g", member(1, 1)));
}

TEST(GroupTable, EmptyGroupDisappears) {
  GroupTable t;
  t.join("g", member(1, 1));
  t.leave("g", member(1, 1));
  EXPECT_TRUE(t.group_names().empty());
}

TEST(GroupTable, MembersOrderedByViewRankThenClient) {
  GroupTable t;
  t.join("g", member(5, 1));
  t.join("g", member(1, 2));
  t.join("g", member(1, 1));
  auto v = view_of({1, 5});
  auto members = t.members_of("g", v);
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0], member(1, 1));
  EXPECT_EQ(members[1], member(1, 2));
  EXPECT_EQ(members[2], member(5, 1));
}

TEST(GroupTable, DropDaemonsNotInView) {
  GroupTable t;
  t.join("g", member(1, 1));
  t.join("g", member(2, 1));
  t.join("h", member(2, 1));
  auto changed = t.drop_daemons_not_in(view_of({1}));
  EXPECT_EQ(changed.size(), 2u);
  EXPECT_TRUE(t.has_member("g", member(1, 1)));
  EXPECT_FALSE(t.has_member("g", member(2, 1)));
  EXPECT_TRUE(t.group_names() == std::vector<std::string>{"g"});
}

TEST(GroupTable, DropReportsOnlyChangedGroups) {
  GroupTable t;
  t.join("g", member(1, 1));
  auto changed = t.drop_daemons_not_in(view_of({1}));
  EXPECT_TRUE(changed.empty());
}

TEST(GroupTable, SnapshotRoundTrip) {
  GroupTable t;
  t.join("g", member(1, 1));
  t.join("h", member(2, 3));
  t.bump_seq("g");
  t.bump_seq("g");

  GroupTable u;
  u.replace(t.entries(), t.seqs());
  EXPECT_TRUE(u.has_member("g", member(1, 1)));
  EXPECT_TRUE(u.has_member("h", member(2, 3)));
  EXPECT_EQ(u.seq("g"), 2u);
  EXPECT_EQ(u.seq("h"), 0u);
}

TEST(GroupTable, BumpSeqMonotone) {
  GroupTable t;
  EXPECT_EQ(t.bump_seq("g"), 1u);
  EXPECT_EQ(t.bump_seq("g"), 2u);
  EXPECT_EQ(t.seq("g"), 2u);
  EXPECT_EQ(t.seq("other"), 0u);
}

TEST(GroupTable, MembersOfUnknownGroupEmpty) {
  GroupTable t;
  EXPECT_TRUE(t.members_of("nope", view_of({1})).empty());
}

}  // namespace
}  // namespace wam::gcs
