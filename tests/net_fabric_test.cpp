#include "net/fabric.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/assert.hpp"

namespace wam::net {
namespace {

struct FabricTest : ::testing::Test {
  sim::Scheduler sched;
  Fabric fabric{sched};
  SegmentId seg = fabric.add_segment();
  std::vector<std::vector<Frame>> inbox;

  NicId attach() {
    auto idx = inbox.size();
    inbox.emplace_back();
    return fabric.attach(seg, fabric.allocate_mac(),
                         [this, idx](const Frame& f, NicId) {
                           inbox[idx].push_back(f);
                         });
  }

  Frame frame_to(MacAddress dst, NicId from) {
    return Frame{fabric.mac_of(from), dst, EtherType::kIpv4, {1, 2, 3}};
  }
};

TEST_F(FabricTest, UnicastReachesOnlyTarget) {
  auto a = attach();
  auto b = attach();
  auto c = attach();
  fabric.send(a, frame_to(fabric.mac_of(b), a));
  sched.run_all();
  EXPECT_EQ(inbox[0].size(), 0u);
  EXPECT_EQ(inbox[1].size(), 1u);
  EXPECT_EQ(inbox[2].size(), 0u);
  EXPECT_EQ(fabric.counters().frames_delivered, 1u);
  (void)c;
}

TEST_F(FabricTest, BroadcastReachesAllButSender) {
  auto a = attach();
  attach();
  attach();
  fabric.send(a, frame_to(MacAddress::broadcast(), a));
  sched.run_all();
  EXPECT_EQ(inbox[0].size(), 0u);
  EXPECT_EQ(inbox[1].size(), 1u);
  EXPECT_EQ(inbox[2].size(), 1u);
}

TEST_F(FabricTest, DeliveryTakesLatency) {
  auto a = attach();
  auto b = attach();
  fabric.segment_config(seg).latency = sim::microseconds(100);
  fabric.segment_config(seg).jitter = sim::kZero;
  fabric.send(a, frame_to(fabric.mac_of(b), a));
  sched.run_until(sim::TimePoint(sim::microseconds(99)));
  EXPECT_EQ(inbox[1].size(), 0u);
  sched.run_until(sim::TimePoint(sim::microseconds(101)));
  EXPECT_EQ(inbox[1].size(), 1u);
}

TEST_F(FabricTest, DownSenderDropsFrame) {
  auto a = attach();
  auto b = attach();
  fabric.set_nic_up(a, false);
  fabric.send(a, frame_to(fabric.mac_of(b), a));
  sched.run_all();
  EXPECT_EQ(inbox[1].size(), 0u);
  EXPECT_EQ(fabric.counters().dropped_nic_down, 1u);
}

TEST_F(FabricTest, DownReceiverDropsFrame) {
  auto a = attach();
  auto b = attach();
  fabric.set_nic_up(b, false);
  fabric.send(a, frame_to(fabric.mac_of(b), a));
  sched.run_all();
  EXPECT_EQ(inbox[1].size(), 0u);
}

TEST_F(FabricTest, ReceiverGoingDownInFlightDropsFrame) {
  auto a = attach();
  auto b = attach();
  fabric.segment_config(seg).latency = sim::milliseconds(1);
  fabric.segment_config(seg).jitter = sim::kZero;
  fabric.send(a, frame_to(fabric.mac_of(b), a));
  sched.schedule(sim::microseconds(500), [&] { fabric.set_nic_up(b, false); });
  sched.run_all();
  EXPECT_EQ(inbox[1].size(), 0u);
}

TEST_F(FabricTest, UnknownMacCountsNoTarget) {
  auto a = attach();
  fabric.send(a, frame_to(MacAddress::from_index(999), a));
  sched.run_all();
  EXPECT_EQ(fabric.counters().dropped_no_target, 1u);
}

TEST_F(FabricTest, PartitionBlocksCrossComponentTraffic) {
  auto a = attach();
  auto b = attach();
  auto c = attach();
  fabric.set_partition(seg, {{a, b}, {c}});
  fabric.send(a, frame_to(fabric.mac_of(b), a));
  fabric.send(a, frame_to(fabric.mac_of(c), a));
  sched.run_all();
  EXPECT_EQ(inbox[1].size(), 1u);
  EXPECT_EQ(inbox[2].size(), 0u);
  EXPECT_EQ(fabric.counters().dropped_partition, 1u);
}

TEST_F(FabricTest, PartitionLimitsBroadcastScope) {
  auto a = attach();
  auto b = attach();
  auto c = attach();
  auto d = attach();
  fabric.set_partition(seg, {{a, b}, {c, d}});
  fabric.send(a, frame_to(MacAddress::broadcast(), a));
  sched.run_all();
  EXPECT_EQ(inbox[1].size(), 1u);
  EXPECT_EQ(inbox[2].size(), 0u);
  EXPECT_EQ(inbox[3].size(), 0u);
}

TEST_F(FabricTest, MergeRestoresConnectivity) {
  auto a = attach();
  auto b = attach();
  fabric.set_partition(seg, {{a}, {b}});
  fabric.send(a, frame_to(fabric.mac_of(b), a));
  sched.run_all();
  EXPECT_EQ(inbox[1].size(), 0u);
  fabric.merge_segment(seg);
  fabric.send(a, frame_to(fabric.mac_of(b), a));
  sched.run_all();
  EXPECT_EQ(inbox[1].size(), 1u);
}

TEST_F(FabricTest, PartitionMustCoverAllNics) {
  auto a = attach();
  attach();
  EXPECT_THROW(fabric.set_partition(seg, {{a}}), util::ContractViolation);
}

TEST_F(FabricTest, PartitionRejectsDuplicates) {
  auto a = attach();
  auto b = attach();
  EXPECT_THROW(fabric.set_partition(seg, {{a, b}, {a}}),
               util::ContractViolation);
}

TEST_F(FabricTest, RandomLossDropsApproximately) {
  auto a = attach();
  auto b = attach();
  fabric.segment_config(seg).drop_probability = 0.5;
  for (int i = 0; i < 1000; ++i) {
    fabric.send(a, frame_to(fabric.mac_of(b), a));
  }
  sched.run_all();
  EXPECT_GT(inbox[1].size(), 350u);
  EXPECT_LT(inbox[1].size(), 650u);
  EXPECT_EQ(fabric.counters().dropped_random + inbox[1].size(), 1000u);
}

TEST_F(FabricTest, SegmentsAreIsolated) {
  auto a = attach();
  auto other = fabric.add_segment();
  std::vector<Frame> other_inbox;
  fabric.attach(other, fabric.allocate_mac(),
                [&](const Frame& f, NicId) { other_inbox.push_back(f); });
  fabric.send(a, frame_to(MacAddress::broadcast(), a));
  sched.run_all();
  EXPECT_TRUE(other_inbox.empty());
}

TEST_F(FabricTest, DuplicateMacOnSegmentRejected) {
  auto mac = fabric.allocate_mac();
  fabric.attach(seg, mac, [](const Frame&, NicId) {});
  EXPECT_THROW(fabric.attach(seg, mac, [](const Frame&, NicId) {}),
               util::ContractViolation);
}

TEST_F(FabricTest, TapObservesTraffic) {
  auto a = attach();
  auto b = attach();
  int tapped = 0;
  fabric.set_tap([&](SegmentId, const Frame&) { ++tapped; });
  fabric.send(a, frame_to(fabric.mac_of(b), a));
  sched.run_all();
  EXPECT_EQ(tapped, 1);
}

}  // namespace
}  // namespace wam::net
