#include "net/arp_cache.hpp"

#include <gtest/gtest.h>

namespace wam::net {
namespace {

const Ipv4Address kIp(10, 0, 0, 5);
const MacAddress kMacA = MacAddress::from_index(1);
const MacAddress kMacB = MacAddress::from_index(2);

sim::TimePoint at(double s) { return sim::TimePoint(sim::seconds(s)); }

TEST(ArpCache, PutInsertsAndLookupFinds) {
  ArpCache c;
  EXPECT_FALSE(c.lookup(kIp, at(0)).has_value());
  c.put(kIp, kMacA, at(0));
  ASSERT_TRUE(c.lookup(kIp, at(1)).has_value());
  EXPECT_EQ(*c.lookup(kIp, at(1)), kMacA);
}

TEST(ArpCache, PutOverwrites) {
  ArpCache c;
  c.put(kIp, kMacA, at(0));
  c.put(kIp, kMacB, at(1));
  EXPECT_EQ(*c.lookup(kIp, at(2)), kMacB);
}

TEST(ArpCache, UpdateExistingOnlyTouchesKnownEntries) {
  ArpCache c;
  EXPECT_FALSE(c.update_existing(kIp, kMacA, at(0)));
  EXPECT_FALSE(c.contains(kIp));
  c.put(kIp, kMacA, at(0));
  EXPECT_TRUE(c.update_existing(kIp, kMacB, at(1)));
  EXPECT_EQ(*c.lookup(kIp, at(2)), kMacB);
}

TEST(ArpCache, NoExpiryByDefault) {
  ArpCache c;
  c.put(kIp, kMacA, at(0));
  EXPECT_TRUE(c.lookup(kIp, at(100000)).has_value());
}

TEST(ArpCache, TtlExpiresEntries) {
  ArpCache c(sim::seconds(10.0));
  c.put(kIp, kMacA, at(0));
  EXPECT_TRUE(c.lookup(kIp, at(9)).has_value());
  EXPECT_FALSE(c.lookup(kIp, at(11)).has_value());
}

TEST(ArpCache, EraseAndClear) {
  ArpCache c;
  c.put(kIp, kMacA, at(0));
  c.put(Ipv4Address(10, 0, 0, 6), kMacB, at(0));
  EXPECT_EQ(c.size(), 2u);
  c.erase(kIp);
  EXPECT_EQ(c.size(), 1u);
  c.clear();
  EXPECT_EQ(c.size(), 0u);
}

TEST(ArpCache, KnownIpsSortedByAddress) {
  ArpCache c;
  c.put(Ipv4Address(10, 0, 0, 9), kMacA, at(0));
  c.put(Ipv4Address(10, 0, 0, 1), kMacB, at(0));
  auto ips = c.known_ips();
  ASSERT_EQ(ips.size(), 2u);
  EXPECT_EQ(ips[0], Ipv4Address(10, 0, 0, 1));
  EXPECT_EQ(ips[1], Ipv4Address(10, 0, 0, 9));
}

TEST(ArpCache, DescribeListsEntries) {
  ArpCache c;
  c.put(kIp, kMacA, at(0));
  EXPECT_NE(c.describe().find("10.0.0.5"), std::string::npos);
}

}  // namespace
}  // namespace wam::net
