// Full-stack Wackamole under packet loss: the paper's guarantees are
// stated for reliable GCS delivery, which our GCS provides via NACK
// recovery even on a lossy LAN; ARP announcements are fire-and-forget, so
// the periodic re-announce (anti-entropy) closes that gap.
#include <gtest/gtest.h>

#include "apps/cluster_scenario.hpp"

namespace wam::apps {
namespace {

TEST(IntegrationLossy, CoverageInvariantHoldsUnderLoss) {
  ClusterOptions opt;
  opt.num_servers = 4;
  opt.num_vips = 8;
  ClusterScenario s(opt);
  s.fabric.segment_config(0).drop_probability = 0.05;
  s.start();
  ASSERT_TRUE(s.run_until_stable(sim::seconds(30.0)));
  s.disconnect_server(1);
  s.run(sim::seconds(10.0));
  EXPECT_TRUE(s.coverage_exactly_once({0, 2, 3}));
  s.reconnect_server(1);
  s.run(sim::seconds(12.0));
  EXPECT_TRUE(s.coverage_exactly_once(s.all_servers()));
}

TEST(IntegrationLossy, FailoverStillWithinReason) {
  ClusterOptions opt;
  ClusterScenario s(opt);
  s.fabric.segment_config(0).drop_probability = 0.03;
  s.start();
  ASSERT_TRUE(s.run_until_stable(sim::seconds(30.0)));
  s.start_probe(0);
  s.run(sim::seconds(1.0));
  int victim = s.owner_of(0);
  ASSERT_GE(victim, 0);
  s.disconnect_server(victim);
  s.run(sim::seconds(15.0));
  auto gaps = s.probe().interruptions(sim::milliseconds(500));
  ASSERT_GE(gaps.size(), 1u);
  // Loss can add NACK round trips but not order-of-magnitude delays.
  EXPECT_LE(sim::to_seconds(gaps.back().length()), 5.0);
}

TEST(IntegrationLossy, LostSpoofRepairedByAnnounce) {
  // Deterministic packet executioner: kill exactly the first unicast ARP
  // reply the new owner sends at the router, then let the periodic
  // re-announce repair the router's cache.
  ClusterOptions opt;
  opt.num_servers = 2;
  opt.num_vips = 1;
  ClusterScenario s(opt);

  // Enable announce on the wackamole daemons via their config: rebuild is
  // not possible post-hoc, so emulate the repair by calling announce()
  // through the ip manager after dropping the spoof.
  s.start();
  ASSERT_TRUE(s.run_until_stable(sim::seconds(10.0)));
  s.start_probe(0);
  s.run(sim::seconds(1.0));
  int victim = s.owner_of(0);
  int heir = 1 - victim;

  // Cut the heir's ability to reach the router while it takes over: the
  // spoof is lost exactly like a dropped frame would be.
  s.disconnect_server(victim);
  s.run(sim::seconds(2.0));  // detection in progress
  auto router_mac_before =
      s.router()->arp_cache().lookup(s.vip(0), s.sched.now());
  s.run(sim::seconds(4.0));  // takeover done, spoof delivered normally
  // Now poison the router cache to simulate the spoof having been lost.
  s.router()->host().arp_cache().put(s.vip(0),
                                     net::MacAddress::from_index(900),
                                     s.sched.now());
  s.run(sim::seconds(1.0));
  // Client traffic blackholes again...
  auto responses_before = s.probe().responses().size();
  s.run(sim::seconds(1.0));
  EXPECT_EQ(s.probe().responses().size(), responses_before);
  // ...until the owner re-announces.
  const auto* group = s.wam(heir).config().find_group(
      s.vip(0).to_string());
  ASSERT_NE(group, nullptr);
  s.ip_manager(heir).announce(*group);
  s.run(sim::seconds(1.0));
  EXPECT_GT(s.probe().responses().size(), responses_before);
  (void)router_mac_before;
}

TEST(IntegrationLossy, AnnounceTimerRepairsWithoutIntervention) {
  // Same scenario but with the daemon's own announce timer doing the work.
  ClusterOptions opt;
  opt.num_servers = 2;
  opt.num_vips = 1;
  ClusterScenario s(opt);
  s.start();
  ASSERT_TRUE(s.run_until_stable(sim::seconds(10.0)));
  // The scenario builder does not set announce_interval; drive the
  // equivalent via a scripted periodic announce.
  int owner = s.owner_of(0);
  ASSERT_GE(owner, 0);
  const auto* group = s.wam(owner).config().find_group(s.vip(0).to_string());
  std::function<void()> periodic = [&s, owner, group, &periodic] {
    s.ip_manager(owner).announce(*group);
    s.sched.schedule(sim::seconds(2.0), periodic);
  };
  s.sched.schedule(sim::seconds(2.0), periodic);

  s.start_probe(0);
  s.run(sim::seconds(1.0));
  s.router()->host().arp_cache().put(s.vip(0),
                                     net::MacAddress::from_index(901),
                                     s.sched.now());
  s.run(sim::seconds(5.0));
  // Service resumed despite the poisoned cache: the announce repaired it.
  auto gaps = s.probe().interruptions(sim::milliseconds(100));
  ASSERT_GE(gaps.size(), 1u);
  EXPECT_LE(sim::to_seconds(gaps.back().length()), 3.0);
}

}  // namespace
}  // namespace wam::apps
