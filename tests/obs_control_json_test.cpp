// End-to-end observability: the `metrics` and `status-json` control
// commands return parseable JSON that agrees with the legacy counters()
// accessors, and same-seed runs export byte-identical event timelines.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "apps/cluster_scenario.hpp"
#include "obs/json.hpp"
#include "wackamole/control_server.hpp"

namespace wam::wackamole {
namespace {

struct ObsControlJsonTest : ::testing::Test {
  apps::ClusterOptions opt;
  std::unique_ptr<apps::ClusterScenario> s;
  std::unique_ptr<ControlServer> server;
  std::unique_ptr<ControlClient> client;
  std::string reply;
  int replies = 0;

  void SetUp() override {
    opt.num_servers = 3;
    opt.num_vips = 6;
    opt.with_router = false;
    s = std::make_unique<apps::ClusterScenario>(opt);
    s->start();
    ASSERT_TRUE(s->run_until_stable(sim::seconds(10.0)));
    server = std::make_unique<ControlServer>(s->server_host(0), s->wam(0));
    server->start();
    client = std::make_unique<ControlClient>(s->client_host());
  }

  void command(const std::string& cmd) {
    client->send(s->server_host(0).primary_ip(0), cmd,
                 [this](const std::string& text) {
                   reply = text;
                   ++replies;
                 });
    s->run(sim::seconds(1.0));
  }
};

TEST_F(ObsControlJsonTest, StatusJsonMatchesLegacyAccessors) {
  command("status-json");
  ASSERT_EQ(replies, 1);
  auto doc = obs::parse_json(reply);
  const auto& d = s->wam(0);
  EXPECT_EQ(doc.at("state").string, wam_state_name(d.state()));
  EXPECT_EQ(doc.at("mature").boolean, d.mature());
  EXPECT_EQ(doc.at("connected").boolean, d.connected());
  EXPECT_EQ(doc.at("owned").array.size(), d.owned().size());
  EXPECT_EQ(doc.at("table").object.size(), d.table().owners().size());
  const auto& counters = doc.at("counters");
  EXPECT_EQ(counters.at("acquires").as_u64(), d.counters().acquires.value());
  EXPECT_EQ(counters.at("view_changes").as_u64(),
            d.counters().view_changes.value());
  EXPECT_EQ(counters.at("reallocations").as_u64(),
            d.counters().reallocations.value());
}

TEST_F(ObsControlJsonTest, MetricsCommandExportsBoundRegistry) {
  command("metrics");
  ASSERT_EQ(replies, 1);
  auto doc = obs::parse_json(reply);
  const auto& counters = doc.at("counters");
  // The scenario binds every daemon, so the registry holds all scopes, and
  // each cell agrees with the matching legacy accessor.
  for (int i = 0; i < opt.num_servers; ++i) {
    auto scope = "wam/s" + std::to_string(i + 1);
    EXPECT_EQ(counters.at(scope + "/acquires").as_u64(),
              s->wam(i).counters().acquires.value());
    EXPECT_EQ(counters.at("gcs/s" + std::to_string(i + 1) +
                          "/views_installed").as_u64(),
              s->gcs_daemon(i).counters().views_installed.value());
  }
  // The reply is a point-in-time snapshot and the cluster kept running
  // (the control reply itself costs frames), so the live fabric counter
  // can only have moved forward since.
  EXPECT_GT(counters.at("net/frames_sent").as_u64(), 0u);
  EXPECT_LE(counters.at("net/frames_sent").as_u64(),
            s->fabric.counters().frames_sent.value());
  // The held-groups gauges account for every VIP group exactly once.
  double held = 0;
  for (int i = 0; i < opt.num_servers; ++i) {
    held += doc.at("gauges")
                .at("ip/s" + std::to_string(i + 1) + "/held_groups")
                .number;
  }
  EXPECT_DOUBLE_EQ(held, static_cast<double>(opt.num_vips));
}

TEST_F(ObsControlJsonTest, MetricsPrefixRestrictsTheExport) {
  command("metrics wam/s1");
  ASSERT_EQ(replies, 1);
  auto doc = obs::parse_json(reply);
  EXPECT_TRUE(doc.at("counters").has("wam/s1/acquires"));
  EXPECT_FALSE(doc.at("counters").has("wam/s2/acquires"));
  EXPECT_FALSE(doc.at("counters").has("net/frames_sent"));
}

TEST_F(ObsControlJsonTest, RegistrySumsAgreeWithPerDaemonLoops) {
  std::uint64_t loop = 0;
  for (int i = 0; i < opt.num_servers; ++i) {
    loop += s->wam(i).counters().acquires;
  }
  EXPECT_EQ(s->obs.registry.sum("wam/*/acquires"), loop);
}

TEST(ObsControlJsonUnbound, MetricsFallsBackToSnapshotScope) {
  // An unbound daemon (no scenario observability) still answers `metrics`
  // with its own counters under the "wam" scope.
  sim::Scheduler sched;
  net::Fabric fabric(sched);
  auto seg = fabric.add_segment();
  net::Host host(sched, fabric, "lone");
  host.add_interface(seg, net::Ipv4Address(10, 1, 0, 1), 24);
  gcs::Daemon gcsd(host, gcs::Config::spread_tuned());
  RecordingIpManager ipmgr;
  Config config = Config::web_cluster({net::Ipv4Address(10, 1, 0, 100)}, 0);
  Daemon lone(sched, config, gcsd, ipmgr);
  gcsd.start();
  lone.start();
  sched.run_for(sim::seconds(5.0));

  AdminControl ctl(lone);
  auto doc = obs::parse_json(ctl.execute("metrics"));
  EXPECT_EQ(doc.at("counters").at("wam/acquires").as_u64(),
            lone.counters().acquires.value());
}

TEST(ObsTimelineDeterminism, SameSeedRunsExportIdenticalJson) {
  auto run_once = []() {
    apps::ClusterOptions opt;
    opt.num_servers = 3;
    opt.num_vips = 6;
    opt.seed = 42;
    apps::ClusterScenario s(opt);
    s.start();
    s.run_until_stable(sim::seconds(10.0));
    s.disconnect_server(1);
    s.run(sim::seconds(10.0));
    s.reconnect_server(1);
    s.run(sim::seconds(10.0));
    return s.timeline.to_json();
  };
  auto first = run_once();
  auto second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_GT(obs::parse_json(first).array.size(), 0u);
  EXPECT_EQ(first, second);  // byte-identical
}

}  // namespace
}  // namespace wam::wackamole
