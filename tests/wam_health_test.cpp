// Application/NIC health monitoring (§4.2 future work implemented):
// a failing local service triggers withdrawal (graceful leave), recovery
// triggers rejoin.
#include <gtest/gtest.h>

#include "apps/cluster_scenario.hpp"
#include "apps/echo.hpp"
#include "wackamole/health.hpp"
#include "util/assert.hpp"

namespace wam::wackamole {
namespace {

struct HealthTest : ::testing::Test {
  apps::ClusterOptions opt;
  std::unique_ptr<apps::ClusterScenario> s;

  void SetUp() override {
    opt.num_servers = 3;
    opt.num_vips = 6;
    s = std::make_unique<apps::ClusterScenario>(opt);
    s->start();
    ASSERT_TRUE(s->run_until_stable(sim::seconds(10.0)));
    s->wam(0).trigger_balance();
    s->run(sim::seconds(1.0));
  }

  std::unique_ptr<HealthMonitor> monitor_on(int i, HealthMonitorConfig cfg) {
    auto m = std::make_unique<HealthMonitor>(s->sched, s->wam(i), cfg,
                                             &s->log);
    // Probe the local echo server through the primary address.
    m->add_check(std::make_unique<UdpServiceCheck>(
        s->server_host(i), s->server_host(i).primary_ip(0), 9000));
    return m;
  }
};

TEST_F(HealthTest, HealthyServiceNeverWithdraws) {
  auto mon = monitor_on(1, HealthMonitorConfig{});
  mon->start();
  s->run(sim::seconds(20.0));
  EXPECT_FALSE(mon->withdrawn());
  EXPECT_EQ(mon->withdrawals(), 0u);
  EXPECT_FALSE(s->wam(1).owned().empty());
}

TEST_F(HealthTest, DeadServiceTriggersWithdrawal) {
  auto mon = monitor_on(1, HealthMonitorConfig{sim::seconds(1.0), 3, 2});
  mon->start();
  s->run(sim::seconds(3.0));
  ASSERT_FALSE(s->wam(1).owned().empty());

  // Kill the application only — the network and GCS stay healthy, so
  // without the monitor nobody would ever fail over.
  s->server_host(1).close_udp(9000);
  s->run(sim::seconds(10.0));

  EXPECT_TRUE(mon->withdrawn());
  EXPECT_EQ(mon->withdrawals(), 1u);
  EXPECT_TRUE(s->wam(1).owned().empty());
  // The survivors cover everything.
  EXPECT_TRUE(s->coverage_exactly_once({0, 2}));
  EXPECT_NE(mon->last_failed_check().find("udp:"), std::string::npos);
}

TEST_F(HealthTest, RecoveredServiceRejoins) {
  auto mon = monitor_on(1, HealthMonitorConfig{sim::seconds(1.0), 3, 2});
  mon->start();
  s->run(sim::seconds(3.0));
  s->server_host(1).close_udp(9000);
  s->run(sim::seconds(10.0));
  ASSERT_TRUE(mon->withdrawn());

  // Bring the application back.
  apps::EchoServer echo2(s->server_host(1));
  echo2.start();
  s->run(sim::seconds(10.0));
  EXPECT_FALSE(mon->withdrawn());
  EXPECT_EQ(mon->rejoins(), 1u);
  EXPECT_TRUE(s->wam(1).connected());
  EXPECT_TRUE(s->coverage_exactly_once({0, 1, 2}));
}

TEST_F(HealthTest, FailThresholdToleratesBlips) {
  auto mon = monitor_on(1, HealthMonitorConfig{sim::seconds(1.0), 5, 2});
  mon->start();
  s->run(sim::seconds(3.0));
  // A 2-second outage (2 failed checks < threshold 5) must not withdraw.
  s->server_host(1).close_udp(9000);
  s->run(sim::seconds(2.2));
  apps::EchoServer echo2(s->server_host(1));
  echo2.start();
  s->run(sim::seconds(10.0));
  EXPECT_FALSE(mon->withdrawn());
  EXPECT_EQ(mon->withdrawals(), 0u);
}

// Regression: a service answering slower than the check interval used to
// satisfy the NEXT round with the PREVIOUS round's reply — one stale
// in-flight echo per interval kept a dead-slow (or just-killed) service
// "healthy" forever. Probes now carry a round sequence number and only a
// reply bearing the current round's tag counts.
TEST_F(HealthTest, SlowServiceRepliesAreStaleNotHealthy) {
  // An echo service whose replies take 1.5 check intervals: every round's
  // probe is answered, but always after the NEXT probe was already sent.
  const std::uint16_t port = 9100;
  s->server_host(1).open_udp(
      port, [this, port](const net::Host::UdpContext& ctx,
                         const util::Bytes& payload) {
        auto reply = payload;
        auto src = ctx.src_ip;
        auto sport = ctx.src_port;
        auto dst = ctx.dst_ip;
        s->sched.schedule(sim::seconds(1.5), [this, port, reply, src, sport,
                                              dst] {
          s->server_host(1).send_udp_from(dst, src, sport, port, reply);
        });
      });

  HealthMonitorConfig cfg{sim::seconds(1.0), 3, 2};
  auto mon = std::make_unique<HealthMonitor>(s->sched, s->wam(1), cfg,
                                             &s->log);
  mon->add_check(std::make_unique<UdpServiceCheck>(
      s->server_host(1), s->server_host(1).primary_ip(0), port));
  mon->start();
  s->run(sim::seconds(10.0));
  EXPECT_TRUE(mon->withdrawn())
      << "stale replies from earlier rounds must not count as healthy";
  EXPECT_TRUE(s->coverage_exactly_once({0, 2}));
}

// The recover threshold is a hysteresis band: a flapping service that never
// strings together `recover_threshold` consecutive healthy checks must stay
// withdrawn, and rejoin exactly once when it finally stabilizes.
TEST_F(HealthTest, FlappingServiceStaysWithdrawnUntilStable) {
  auto mon = monitor_on(1, HealthMonitorConfig{sim::seconds(1.0), 2, 3});
  mon->start();
  // Checks tick on whole seconds from here; flipping the service at x.5
  // offsets keeps every up/down window an exact two ticks wide.
  s->run(sim::seconds(2.5));
  s->server_host(1).close_udp(9000);
  s->run(sim::seconds(5.0));
  ASSERT_TRUE(mon->withdrawn());

  // Flap: up for ~2 checks (below recover_threshold 3), down for ~2, thrice.
  std::vector<std::unique_ptr<apps::EchoServer>> echoes;
  for (int cycle = 0; cycle < 3; ++cycle) {
    echoes.push_back(std::make_unique<apps::EchoServer>(s->server_host(1)));
    echoes.back()->start();
    s->run(sim::seconds(2.0));
    s->server_host(1).close_udp(9000);
    s->run(sim::seconds(2.0));
  }
  EXPECT_TRUE(mon->withdrawn());
  EXPECT_EQ(mon->rejoins(), 0u)
      << "sub-threshold healthy streaks must not trigger a rejoin";

  // Stable recovery: rejoin exactly once.
  echoes.push_back(std::make_unique<apps::EchoServer>(s->server_host(1)));
  echoes.back()->start();
  s->run(sim::seconds(10.0));
  EXPECT_FALSE(mon->withdrawn());
  EXPECT_EQ(mon->rejoins(), 1u);
  EXPECT_TRUE(s->coverage_exactly_once({0, 1, 2}));
}

TEST_F(HealthTest, InterfaceCheckDetectsNicDown) {
  HealthMonitorConfig cfg{sim::seconds(1.0), 2, 2};
  auto mon = std::make_unique<HealthMonitor>(s->sched, s->wam(1), cfg,
                                             &s->log);
  mon->add_check(std::make_unique<InterfaceCheck>(s->server_host(1), 0));
  mon->start();
  s->run(sim::seconds(3.0));
  s->server_host(1).set_interface_up(0, false);
  s->run(sim::seconds(5.0));
  EXPECT_TRUE(mon->withdrawn());
  EXPECT_NE(mon->last_failed_check().find("nic:"), std::string::npos);
}

TEST_F(HealthTest, MonitorConfigValidation) {
  EXPECT_THROW(HealthMonitor(s->sched, s->wam(0),
                             HealthMonitorConfig{sim::kZero, 3, 2}),
               util::ContractViolation);
  EXPECT_THROW(HealthMonitor(s->sched, s->wam(0),
                             HealthMonitorConfig{sim::seconds(1.0), 0, 2}),
               util::ContractViolation);
}

}  // namespace
}  // namespace wam::wackamole
