// Self-stabilization, wackamole side: the guarded VipTable (incremental
// checksum + member index), the StateAuditor sweep, and the daemon's heal
// tiers — in-place index rebuild, fence of an owner no view contained, and
// a full resync from peers' STATE_MSGs — under injected transient
// corruption (see docs/CHAOS.md §state-faults).
#include "wackamole/audit.hpp"

#include <gtest/gtest.h>

#include <string>

#include "apps/cluster_scenario.hpp"
#include "wackamole/daemon.hpp"
#include "wackamole/vip_table.hpp"

namespace wam::wackamole {
namespace {

gcs::MemberId member(int last, std::uint32_t client) {
  return {net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(last)), client,
          "s" + std::to_string(last)};
}

// ------------------------------------------------------- guarded table ----

TEST(VipTableGuard, ChecksumAndIndexTrackEveryMutation) {
  VipTable t;
  EXPECT_EQ(t.checksum(), 0u);
  t.set_owner("vip0", member(1, 1));
  t.set_owner("vip1", member(2, 2));
  EXPECT_TRUE(t.verify_checksum());
  EXPECT_TRUE(t.verify_index());
  t.set_owner("vip0", member(2, 2));  // overwrite moves the index entry
  t.clear_owner("vip1");
  EXPECT_TRUE(t.verify_checksum());
  EXPECT_TRUE(t.verify_index());
  t.clear();
  EXPECT_EQ(t.checksum(), 0u);
  EXPECT_TRUE(t.verify_checksum());
}

TEST(VipTableGuard, StrayWriteFlipsTheChecksum) {
  VipTable t;
  t.set_owner("vip0", member(1, 1));
  t.set_owner("vip1", member(2, 2));
  t.chaos_set_owner_unchecked(intern_group("vip0"), member(9, 9));
  EXPECT_FALSE(t.verify_checksum());
  // The owner map is the recovery root: rebuild() recomputes the derived
  // state from it, it does not guess the pre-corruption owner back.
  t.rebuild();
  EXPECT_TRUE(t.verify_checksum());
  EXPECT_TRUE(t.verify_index());
  ASSERT_TRUE(t.owner("vip0").has_value());
  EXPECT_EQ(t.owner("vip0")->daemon, member(9, 9).daemon);
}

TEST(VipTableGuard, IndexDesyncIsDetectedSeparatelyFromTheChecksum) {
  VipTable t;
  t.set_owner("vip0", member(1, 1));
  // Dropping the indexed entry leaves owners_ (and its checksum) intact —
  // only verify_index() can see this class of drift.
  t.chaos_corrupt_index_entry(intern_group("vip0"), member(9, 9));
  EXPECT_TRUE(t.verify_checksum());
  EXPECT_FALSE(t.verify_index());
  EXPECT_NE(t.load_of(member(1, 1)), 1u);
  t.rebuild();
  EXPECT_TRUE(t.verify_index());
  EXPECT_EQ(t.load_of(member(1, 1)), 1u);
}

TEST(VipTableGuard, PhantomIndexEntryIsDetected) {
  VipTable t;
  t.set_owner("vip0", member(1, 1));
  // A never-owned group id: the backdoor inserts a phantom entry.
  t.chaos_corrupt_index_entry(intern_group("vip-phantom"), member(9, 9));
  EXPECT_FALSE(t.verify_index());
  t.rebuild();
  EXPECT_TRUE(t.verify_index());
  EXPECT_EQ(t.load_of(member(9, 9)), 0u);
}

// ------------------------------------------------------------- auditor ----

apps::ClusterOptions small_cluster() {
  apps::ClusterOptions opt;
  opt.num_servers = 3;
  opt.num_vips = 5;
  opt.with_router = false;
  return opt;
}

// Audits enabled, campaign-speed knobs (detection within 250 ms, resync
// after 500 ms, quick quarantine probe-back).
apps::ClusterOptions audited_cluster() {
  auto opt = small_cluster();
  opt.audit_interval = sim::milliseconds(250);
  opt.resync_delay = sim::milliseconds(500);
  opt.resync_backoff_max = sim::seconds(4.0);
  opt.gcs.audit_interval = sim::milliseconds(250);
  opt.quarantine_cooldown = sim::seconds(5.0);
  return opt;
}

TEST(StateAudit, CleanClusterHasNoFindings) {
  apps::ClusterScenario s(small_cluster());
  s.start();
  ASSERT_TRUE(s.run_until_stable(sim::seconds(10.0)));
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(StateAuditor::audit(s.wam(i)).empty()) << "server " << i;
  }
}

TEST(StateAudit, StrayOwnerWriteYieldsChecksumAndViewFindings) {
  // Audits stay disabled (the default) so the corruption persists long
  // enough to inspect the findings themselves.
  apps::ClusterScenario s(small_cluster());
  s.start();
  ASSERT_TRUE(s.run_until_stable(sim::seconds(10.0)));
  ASSERT_TRUE(s.corrupt_vip_owner(0, 0));
  auto findings = StateAuditor::audit(s.wam(0));
  ASSERT_FALSE(findings.empty());
  bool checksum = false, not_in_view = false;
  for (const auto& f : findings) {
    checksum |= f.check == AuditCheck::kTableChecksum;
    not_in_view |= f.check == AuditCheck::kOwnerNotInView;
  }
  EXPECT_TRUE(checksum);
  EXPECT_TRUE(not_in_view);
}

TEST(StateAudit, ViewTagCorruptionIsAFinding) {
  apps::ClusterScenario s(small_cluster());
  s.start();
  ASSERT_TRUE(s.run_until_stable(sim::seconds(10.0)));
  ASSERT_TRUE(s.stale_incarnation(2));
  auto findings = StateAuditor::audit(s.wam(2));
  ASSERT_FALSE(findings.empty());
  bool view_tag = false;
  for (const auto& f : findings) view_tag |= f.check == AuditCheck::kViewTag;
  EXPECT_TRUE(view_tag);
}

TEST(StateAudit, InjectionRequiresARunningConnectedDaemon) {
  apps::ClusterScenario s(small_cluster());
  s.start();
  ASSERT_TRUE(s.run_until_stable(sim::seconds(10.0)));
  s.wam(1).graceful_shutdown();
  s.run(sim::seconds(1.0));
  EXPECT_FALSE(s.corrupt_vip_owner(1, 0));
  EXPECT_FALSE(s.corrupt_index(1, 0));
  EXPECT_FALSE(s.stale_incarnation(1));
}

// ---------------------------------------------------------- heal tiers ----

TEST(SelfHeal, FenceHealsAnOwnerNoViewContained) {
  apps::ClusterScenario s(audited_cluster());
  s.start();
  ASSERT_TRUE(s.run_until_stable(sim::seconds(10.0)));
  ASSERT_TRUE(s.corrupt_vip_owner(1, 2));
  s.run(sim::seconds(2.0));
  EXPECT_GE(s.wam(1).counters().corruptions_detected.value(), 1u);
  EXPECT_GE(s.wam(1).counters().self_heals.value(), 1u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(StateAuditor::audit(s.wam(i)).empty()) << "server " << i;
  }
  // Past the quarantine cooldown the fenced group is probed back in and
  // Property 1 holds again.
  s.run(sim::seconds(10.0));
  EXPECT_TRUE(s.coverage_exactly_once(s.all_servers()));
}

TEST(SelfHeal, IndexDesyncRebuildsInPlaceWithoutAResync) {
  apps::ClusterScenario s(audited_cluster());
  s.start();
  ASSERT_TRUE(s.run_until_stable(sim::seconds(10.0)));
  const auto resyncs0 = s.wam(0).counters().resyncs.value();
  ASSERT_TRUE(s.corrupt_index(0, 1));
  s.run(sim::seconds(1.0));
  EXPECT_GE(s.wam(0).counters().corruptions_detected.value(), 1u);
  EXPECT_GE(s.wam(0).counters().self_heals.value(), 1u);
  EXPECT_TRUE(StateAuditor::audit(s.wam(0)).empty());
  // Derived-state drift needs no help from peers.
  EXPECT_EQ(s.wam(0).counters().resyncs.value(), resyncs0);
  EXPECT_TRUE(s.coverage_exactly_once(s.all_servers()));
}

TEST(SelfHeal, StaleIncarnationResyncsFromPeers) {
  apps::ClusterScenario s(audited_cluster());
  s.start();
  ASSERT_TRUE(s.run_until_stable(sim::seconds(10.0)));
  ASSERT_TRUE(s.stale_incarnation(2));
  s.run(sim::seconds(4.0));
  EXPECT_GE(s.wam(2).counters().corruptions_detected.value(), 1u);
  EXPECT_GE(s.wam(2).counters().resyncs.value(), 1u);
  ASSERT_TRUE(s.run_until_stable(sim::seconds(20.0)));
  EXPECT_TRUE(StateAuditor::audit(s.wam(2)).empty());
  EXPECT_TRUE(s.coverage_exactly_once(s.all_servers()));
}

TEST(SelfHeal, RepeatedCorruptionKeepsHealing) {
  apps::ClusterScenario s(audited_cluster());
  s.start();
  ASSERT_TRUE(s.run_until_stable(sim::seconds(10.0)));
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(s.corrupt_vip_owner(0, round)) << round;
    s.run(sim::seconds(8.0));
    EXPECT_TRUE(StateAuditor::audit(s.wam(0)).empty()) << round;
  }
  ASSERT_TRUE(s.run_until_stable(sim::seconds(20.0)));
  s.run(sim::seconds(6.0));  // let the last quarantine cool down
  EXPECT_TRUE(s.coverage_exactly_once(s.all_servers()));
  EXPECT_GE(s.wam(0).counters().corruptions_detected.value(), 3u);
}

TEST(SelfHeal, AuditsOffByDefaultKeepsHistoricalDeterminism) {
  // With the default (disabled) audit interval a corrupted daemon never
  // detects anything — the knob is strictly opt-in, which is what keeps
  // pre-existing chaos seeds byte-identical.
  apps::ClusterScenario s(small_cluster());
  s.start();
  ASSERT_TRUE(s.run_until_stable(sim::seconds(10.0)));
  ASSERT_TRUE(s.corrupt_index(0, 0));
  s.run(sim::seconds(5.0));
  EXPECT_EQ(s.wam(0).counters().corruptions_detected.value(), 0u);
  EXPECT_EQ(s.wam(0).counters().self_heals.value(), 0u);
}

}  // namespace
}  // namespace wam::wackamole
