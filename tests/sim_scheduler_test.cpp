#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/assert.hpp"

namespace wam::sim {
namespace {

TEST(Scheduler, StartsAtZero) {
  Scheduler s;
  EXPECT_EQ(s.now().time_since_epoch(), kZero);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule(milliseconds(30), [&] { order.push_back(3); });
  s.schedule(milliseconds(10), [&] { order.push_back(1); });
  s.schedule(milliseconds(20), [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now().time_since_epoch(), milliseconds(30));
}

TEST(Scheduler, TiesBreakByInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule(milliseconds(5), [&order, i] { order.push_back(i); });
  }
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler s;
  int fired = 0;
  s.schedule(seconds(1.0), [&] { ++fired; });
  s.schedule(seconds(3.0), [&] { ++fired; });
  s.run_until(TimePoint(seconds(2.0)));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now().time_since_epoch(), seconds(2.0));
  EXPECT_EQ(s.pending_events(), 1u);
}

TEST(Scheduler, RunForAdvancesRelative) {
  Scheduler s;
  s.run_for(seconds(1.5));
  s.run_for(seconds(0.5));
  EXPECT_EQ(s.now().time_since_epoch(), seconds(2.0));
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  int fired = 0;
  auto h = s.schedule(milliseconds(10), [&] { ++fired; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  s.run_all();
  EXPECT_EQ(fired, 0);
}

TEST(Scheduler, CancelAfterFireIsNoop) {
  Scheduler s;
  int fired = 0;
  auto h = s.schedule(milliseconds(10), [&] { ++fired; });
  s.run_all();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not blow up
}

TEST(Scheduler, EventsMayScheduleMoreEvents) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.schedule(milliseconds(1), recurse);
  };
  s.schedule(milliseconds(1), recurse);
  s.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now().time_since_epoch(), milliseconds(5));
}

TEST(Scheduler, NegativeDelayClampsToNow) {
  Scheduler s;
  s.run_for(seconds(1.0));
  bool fired = false;
  s.schedule(milliseconds(-100), [&] { fired = true; });
  s.run_all();
  EXPECT_TRUE(fired);
  EXPECT_EQ(s.now().time_since_epoch(), seconds(1.0));
}

TEST(Scheduler, StepExecutesExactlyOne) {
  Scheduler s;
  int fired = 0;
  s.schedule(milliseconds(1), [&] { ++fired; });
  s.schedule(milliseconds(2), [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
  EXPECT_EQ(s.executed_events(), 2u);
}

TEST(Scheduler, NullCallbackViolatesContract) {
  Scheduler s;
  EXPECT_THROW(s.schedule(kZero, nullptr), util::ContractViolation);
}

TEST(TimeFormat, Durations) {
  EXPECT_EQ(format_duration(seconds(2.5)), "2.500s");
  EXPECT_EQ(format_duration(milliseconds(12)), "12.000ms");
  EXPECT_EQ(format_duration(microseconds(250)), "250us");
  EXPECT_EQ(format_duration(nanoseconds(42)), "42ns");
}

TEST(TimeFormat, Conversions) {
  EXPECT_DOUBLE_EQ(to_seconds(milliseconds(1500)), 1.5);
  EXPECT_DOUBLE_EQ(to_millis(microseconds(2500)), 2.5);
}

}  // namespace
}  // namespace wam::sim
