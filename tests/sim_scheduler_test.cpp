#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/assert.hpp"

namespace wam::sim {
namespace {

TEST(Scheduler, StartsAtZero) {
  Scheduler s;
  EXPECT_EQ(s.now().time_since_epoch(), kZero);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule(milliseconds(30), [&] { order.push_back(3); });
  s.schedule(milliseconds(10), [&] { order.push_back(1); });
  s.schedule(milliseconds(20), [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now().time_since_epoch(), milliseconds(30));
}

TEST(Scheduler, TiesBreakByInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule(milliseconds(5), [&order, i] { order.push_back(i); });
  }
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler s;
  int fired = 0;
  s.schedule(seconds(1.0), [&] { ++fired; });
  s.schedule(seconds(3.0), [&] { ++fired; });
  s.run_until(TimePoint(seconds(2.0)));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now().time_since_epoch(), seconds(2.0));
  EXPECT_EQ(s.pending_events(), 1u);
}

TEST(Scheduler, RunForAdvancesRelative) {
  Scheduler s;
  s.run_for(seconds(1.5));
  s.run_for(seconds(0.5));
  EXPECT_EQ(s.now().time_since_epoch(), seconds(2.0));
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  int fired = 0;
  auto h = s.schedule(milliseconds(10), [&] { ++fired; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  s.run_all();
  EXPECT_EQ(fired, 0);
}

TEST(Scheduler, CancelAfterFireIsNoop) {
  Scheduler s;
  int fired = 0;
  auto h = s.schedule(milliseconds(10), [&] { ++fired; });
  s.run_all();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not blow up
}

TEST(Scheduler, EventsMayScheduleMoreEvents) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.schedule(milliseconds(1), recurse);
  };
  s.schedule(milliseconds(1), recurse);
  s.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now().time_since_epoch(), milliseconds(5));
}

TEST(Scheduler, NegativeDelayClampsToNow) {
  Scheduler s;
  s.run_for(seconds(1.0));
  bool fired = false;
  s.schedule(milliseconds(-100), [&] { fired = true; });
  s.run_all();
  EXPECT_TRUE(fired);
  EXPECT_EQ(s.now().time_since_epoch(), seconds(1.0));
}

TEST(Scheduler, StepExecutesExactlyOne) {
  Scheduler s;
  int fired = 0;
  s.schedule(milliseconds(1), [&] { ++fired; });
  s.schedule(milliseconds(2), [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
  EXPECT_EQ(s.executed_events(), 2u);
}

TEST(Scheduler, NullCallbackViolatesContract) {
  Scheduler s;
  EXPECT_THROW(s.schedule(kZero, nullptr), util::ContractViolation);
}

// Regression pin for the slab/lazy-deletion rewrite: cancelling timers
// interleaved with live ones must not disturb the execution order of the
// survivors, and cancelled entries must never fire even when their heap
// entries are still buried under live ones.
TEST(Scheduler, CancelledTimersAreSkippedWithoutReordering) {
  Scheduler s;
  std::vector<int> order;
  std::vector<TimerHandle> handles;
  for (int i = 0; i < 20; ++i) {
    handles.push_back(
        s.schedule(milliseconds(i + 1), [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 20; i += 2) handles[static_cast<std::size_t>(i)].cancel();
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 5, 7, 9, 11, 13, 15, 17, 19}));
}

// Zero-delay events scheduled at the same instant — including from inside
// a running event — fire in insertion order, exactly as before the slab
// rewrite. This is the ordering the whole deterministic-replay story
// (chaos timelines, FrameTrace goldens) leans on.
TEST(Scheduler, ZeroDelayTiesKeepInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule(kZero, [&] {
    order.push_back(0);
    s.schedule(kZero, [&] { order.push_back(2); });
    s.schedule(kZero, [&] { order.push_back(3); });
  });
  s.schedule(kZero, [&] { order.push_back(1); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

// pending_events() reports live events only: cancelled timers drop out
// immediately even though their heap entries are lazily deleted.
TEST(Scheduler, PendingEventsCountsLiveOnly) {
  Scheduler s;
  auto a = s.schedule(milliseconds(1), [] {});
  auto b = s.schedule(milliseconds(2), [] {});
  auto c = s.schedule(milliseconds(3), [] {});
  EXPECT_EQ(s.pending_events(), 3u);
  b.cancel();
  EXPECT_EQ(s.pending_events(), 2u);
  s.step();
  EXPECT_EQ(s.pending_events(), 1u);
  a.cancel();  // already fired: no-op
  c.cancel();
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_FALSE(s.step());
}

// A handle whose slot has been recycled by a later event must see the
// generation mismatch: it reports not-pending and its cancel() must not
// kill the new tenant.
TEST(Scheduler, StaleHandleDoesNotCancelRecycledSlot) {
  Scheduler s;
  auto stale = s.schedule(milliseconds(1), [] {});
  s.run_all();  // fires; slot goes back on the free list
  int fired = 0;
  auto fresh = s.schedule(milliseconds(1), [&] { ++fired; });
  EXPECT_FALSE(stale.pending());
  stale.cancel();  // generation mismatch: must be a no-op
  EXPECT_TRUE(fresh.pending());
  s.run_all();
  EXPECT_EQ(fired, 1);
}

// Steady-state timer churn (schedule + cancel + reschedule) reuses slab
// slots instead of growing the slab: the fast path the benches measure.
TEST(Scheduler, SlabSlotsAreReusedUnderChurn) {
  Scheduler s;
  for (int round = 0; round < 100; ++round) {
    auto h = s.schedule(milliseconds(10), [] {});
    h.cancel();
    s.schedule(milliseconds(1), [] {});
    s.run_for(milliseconds(1));
  }
  // Each round holds at most 2 slots at once; reuse keeps the slab tiny.
  EXPECT_LE(s.slab_size(), 4u);
  EXPECT_EQ(s.pending_events(), 0u);
}

// An event that cancels its own handle mid-execution (the timer has
// already been popped) must not corrupt the slab.
TEST(Scheduler, CancelOwnHandleDuringExecutionIsSafe) {
  Scheduler s;
  TimerHandle h;
  int fired = 0;
  h = s.schedule(milliseconds(1), [&] {
    ++fired;
    h.cancel();  // no-op: the event is already executing
  });
  s.schedule(milliseconds(2), [&] { ++fired; });
  s.run_all();
  EXPECT_EQ(fired, 2);
}

// An event may cancel a sibling that is already in the heap for the same
// instant; the sibling must not fire.
TEST(Scheduler, EventCancelsSameTickSibling) {
  Scheduler s;
  int fired = 0;
  TimerHandle victim;
  s.schedule(milliseconds(1), [&] { victim.cancel(); });
  victim = s.schedule(milliseconds(1), [&] { ++fired; });
  s.run_all();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(s.executed_events(), 1u);
}

TEST(TimeFormat, Durations) {
  EXPECT_EQ(format_duration(seconds(2.5)), "2.500s");
  EXPECT_EQ(format_duration(milliseconds(12)), "12.000ms");
  EXPECT_EQ(format_duration(microseconds(250)), "250us");
  EXPECT_EQ(format_duration(nanoseconds(42)), "42ns");
}

TEST(TimeFormat, Conversions) {
  EXPECT_DOUBLE_EQ(to_seconds(milliseconds(1500)), 1.5);
  EXPECT_DOUBLE_EQ(to_millis(microseconds(2500)), 2.5);
}

}  // namespace
}  // namespace wam::sim
