// Wackamole end-to-end on the token-ring ordering engine: the algorithm
// consumes only the GCS contract, so correctness must be engine-agnostic.
#include <gtest/gtest.h>

#include "wam_fixture.hpp"

namespace wam::testing {
namespace {

struct TokenWamCluster : WamCluster {
  explicit TokenWamCluster(int n, wackamole::Config wam_config)
      : WamCluster(n, std::move(wam_config),
                   gcs::Config::spread_tuned().with_token_ring()) {}
};

TEST(WamTokenRing, ClusterCoversExactlyOnce) {
  TokenWamCluster c(3, test_config(6));
  c.start_wam();
  c.run(sim::seconds(5.0));
  c.expect_correctness({0, 1, 2}, "token initial");
}

TEST(WamTokenRing, FaultReallocates) {
  TokenWamCluster c(3, test_config(6));
  c.start_wam();
  c.run(sim::seconds(5.0));
  // Even out if boot left it lopsided (token-mode boot often lands
  // balanced already, in which case trigger_balance is a no-op).
  c.wams[0]->trigger_balance();
  c.run(sim::seconds(1.0));
  c.hosts[2]->set_interface_up(0, false);
  c.run(sim::seconds(6.0));
  c.expect_correctness({0, 1}, "token after fault");
}

TEST(WamTokenRing, MergeResolvesConflicts) {
  TokenWamCluster c(4, test_config(8));
  c.start_wam();
  c.run(sim::seconds(5.0));
  c.partition({{0, 1}, {2, 3}});
  c.run(sim::seconds(8.0));
  c.expect_correctness({0, 1}, "token partition A");
  c.expect_correctness({2, 3}, "token partition B");
  c.merge();
  c.run(sim::seconds(8.0));
  c.expect_correctness({0, 1, 2, 3}, "token merge");
}

TEST(WamTokenRing, BalanceWorks) {
  auto config = test_config(8);
  TokenWamCluster c(2, config);
  c.start_wam();
  c.run(sim::seconds(5.0));
  // Whether or not boot already balanced the load, the end state after an
  // (idempotent) balance request is an even split.
  c.wams[0]->trigger_balance();
  c.run(sim::seconds(1.0));
  EXPECT_EQ(c.wams[0]->owned().size(), 4u);
  EXPECT_EQ(c.wams[1]->owned().size(), 4u);
}

TEST(WamTokenRing, GracefulLeaveIsStillFast) {
  TokenWamCluster c(3, test_config(6));
  c.start_wam();
  c.run(sim::seconds(5.0));
  auto views_before = c.daemons[0]->counters().views_installed;
  c.wams[2]->graceful_shutdown();
  c.run(sim::seconds(2.0));
  EXPECT_EQ(c.daemons[0]->counters().views_installed, views_before);
  c.expect_correctness({0, 1}, "token graceful leave");
}

class TokenPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TokenPropertyTest, RandomFaultsPreserveCorrectness) {
  sim::Rng rng(GetParam() * 53 + 11);
  TokenWamCluster c(4, test_config(6));
  c.start_wam();
  c.run(sim::seconds(5.0));
  for (int phase = 0; phase < 5; ++phase) {
    int k = static_cast<int>(rng.range(1, 2));
    std::vector<std::vector<int>> groups(static_cast<std::size_t>(k));
    for (int i = 0; i < 4; ++i) {
      groups[rng.below(static_cast<std::uint64_t>(k))].push_back(i);
    }
    std::vector<std::vector<int>> nonempty;
    for (auto& g : groups) {
      if (!g.empty()) nonempty.push_back(g);
    }
    c.partition(nonempty);
    c.run(sim::seconds(8.0));
    for (const auto& component : nonempty) {
      c.expect_correctness(component,
                           ("token phase " + std::to_string(phase)).c_str());
    }
  }
  c.merge();
  c.run(sim::seconds(8.0));
  c.expect_correctness({0, 1, 2, 3}, "token final");
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenPropertyTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace wam::testing
