// FIFO service level: per-sender order, reliable within a view, cheaper
// than agreed (no sequencer hop).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gcs_fixture.hpp"

namespace wam::testing {
namespace {

struct FifoRecorder {
  std::vector<std::string> messages;
  std::unique_ptr<gcs::Client> client;

  explicit FifoRecorder(const std::string& name) {
    gcs::ClientCallbacks cb;
    cb.on_message = [this](const gcs::GroupMessage& m) {
      messages.emplace_back(m.payload.begin(), m.payload.end());
    };
    client = std::make_unique<gcs::Client>(name, std::move(cb));
  }

  void send(const std::string& text) {
    client->multicast("g", util::Bytes(text.begin(), text.end()),
                      gcs::ServiceType::kFifo);
  }
};

struct FifoTest : ::testing::Test {
  GcsCluster c{3};
  std::vector<std::unique_ptr<FifoRecorder>> recs;

  void SetUp() override {
    c.start_all();
    c.run(sim::seconds(5.0));
    for (std::size_t i = 0; i < c.daemons.size(); ++i) {
      auto r = std::make_unique<FifoRecorder>("f" + std::to_string(i));
      ASSERT_TRUE(r->client->connect(*c.daemons[i]));
      r->client->join("g");
      recs.push_back(std::move(r));
    }
    c.run(sim::seconds(1.0));
  }

  /// Subsequence of `messages` sent by prefix (e.g. "a").
  static std::vector<std::string> stream_of(
      const std::vector<std::string>& messages, const std::string& prefix) {
    std::vector<std::string> out;
    for (const auto& m : messages) {
      if (m.rfind(prefix, 0) == 0) out.push_back(m);
    }
    return out;
  }
};

TEST_F(FifoTest, DeliversToAllMembersIncludingSender) {
  recs[0]->send("hello");
  c.run(sim::seconds(1.0));
  for (auto& r : recs) {
    ASSERT_EQ(r->messages.size(), 1u);
    EXPECT_EQ(r->messages[0], "hello");
  }
  EXPECT_GE(c.daemons[0]->counters().fifo_sent, 1u);
}

TEST_F(FifoTest, PerSenderOrderPreserved) {
  for (int i = 0; i < 10; ++i) {
    recs[0]->send("a" + std::to_string(i));
    recs[1]->send("b" + std::to_string(i));
  }
  c.run(sim::seconds(1.0));
  for (auto& r : recs) {
    ASSERT_EQ(r->messages.size(), 20u);
    auto a = stream_of(r->messages, "a");
    auto b = stream_of(r->messages, "b");
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(a[static_cast<std::size_t>(i)], "a" + std::to_string(i));
      EXPECT_EQ(b[static_cast<std::size_t>(i)], "b" + std::to_string(i));
    }
  }
}

TEST_F(FifoTest, SurvivesLossViaNack) {
  c.fabric.segment_config(c.seg).drop_probability = 0.15;
  for (int i = 0; i < 25; ++i) recs[0]->send("m" + std::to_string(i));
  c.run(sim::seconds(5.0));
  c.fabric.segment_config(c.seg).drop_probability = 0.0;
  c.run(sim::seconds(3.0));
  for (auto& r : recs) {
    ASSERT_EQ(r->messages.size(), 25u);
    for (int i = 0; i < 25; ++i) {
      EXPECT_EQ(r->messages[static_cast<std::size_t>(i)],
                "m" + std::to_string(i));
    }
  }
}

TEST_F(FifoTest, FifoAndAgreedCoexist) {
  recs[0]->send("fifo1");
  recs[0]->client->multicast("g", util::Bytes{'A'});
  recs[0]->send("fifo2");
  c.run(sim::seconds(1.0));
  for (auto& r : recs) {
    ASSERT_EQ(r->messages.size(), 3u);
    // FIFO order among fifo messages holds regardless of interleaving.
    auto f = stream_of(r->messages, "fifo");
    ASSERT_EQ(f.size(), 2u);
    EXPECT_EQ(f[0], "fifo1");
    EXPECT_EQ(f[1], "fifo2");
  }
}

TEST_F(FifoTest, DroppedDuringReconfiguration) {
  c.partition({{0}, {1, 2}});
  c.run(sim::milliseconds(1200));  // detector fired, views reforming
  auto before = c.daemons[0]->counters().fifo_dropped_reconfig;
  // Daemon 0 is (likely) mid-reconfiguration; a fifo send while not
  // operational is dropped and counted.
  while (c.daemons[0]->in_op()) {
    c.run(sim::milliseconds(100));
    if (c.sched.now().time_since_epoch() > sim::seconds(60.0)) {
      GTEST_SKIP() << "daemon never left OP in the window";
    }
  }
  recs[0]->send("lost");
  EXPECT_EQ(c.daemons[0]->counters().fifo_dropped_reconfig, before + 1);
}

TEST_F(FifoTest, StreamsResetAcrossViews) {
  recs[0]->send("before");
  c.run(sim::seconds(1.0));
  c.partition({{0, 1}, {2}});
  c.run(sim::seconds(6.0));
  recs[0]->send("after");
  c.run(sim::seconds(1.0));
  // Member 1 shares the new view and receives the new stream.
  ASSERT_EQ(recs[1]->messages.size(), 2u);
  EXPECT_EQ(recs[1]->messages[1], "after");
  // Member 2 is partitioned away: only the first message arrived.
  ASSERT_EQ(recs[2]->messages.size(), 1u);
}

}  // namespace
}  // namespace wam::testing
