// LoadGenerator and harness pins: open-loop offered rate, loss accounting
// when the service dies, drain semantics, and same-seed byte-identical
// trial serialization.
#include "load/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apps/echo.hpp"
#include "load/harness.hpp"
#include "net/fabric.hpp"
#include "net/host.hpp"
#include "util/assert.hpp"

namespace wam::load {
namespace {

struct GeneratorTest : ::testing::Test {
  sim::Scheduler sched;
  net::Fabric fabric{sched};
  net::SegmentId seg = fabric.add_segment();
  std::unique_ptr<net::Host> server;
  std::unique_ptr<net::Host> client;
  std::unique_ptr<apps::EchoServer> echo;
  net::Ipv4Address vip{10, 0, 0, 100};

  GeneratorTest() {
    server = std::make_unique<net::Host>(sched, fabric, "server1");
    server->add_interface(seg, net::Ipv4Address(10, 0, 0, 1), 24);
    server->add_alias(0, vip);
    client = std::make_unique<net::Host>(sched, fabric, "client");
    client->add_interface(seg, net::Ipv4Address(10, 0, 0, 50), 24);
    echo = std::make_unique<apps::EchoServer>(*server);
    echo->start();
  }

  LoadOptions options(double rate) {
    LoadOptions opt;
    opt.vips = {vip};
    opt.flows_per_second = rate;
    opt.long_flow_fraction = 0.0;
    return opt;
  }
};

TEST_F(GeneratorTest, OfferedRateTracksConfiguredRate) {
  auto opt = options(2000.0);
  LoadGenerator gen(*client, opt);
  gen.start();
  sched.run_for(sim::seconds(5.0));
  // Poisson arrivals: ~10000 short flows = requests, within 5%.
  EXPECT_NEAR(static_cast<double>(gen.stats().offered()), 10000.0, 500.0);
  EXPECT_EQ(gen.stats().offered(),
            static_cast<std::uint64_t>(gen.flows_started()));
  // Healthy LAN: everything answered, nothing lost or retried.
  EXPECT_EQ(gen.stats().lost(), 0u);
  EXPECT_EQ(gen.stats().retries(), 0u);
  EXPECT_GT(gen.stats().availability(), 0.999);
  gen.stop();
}

TEST_F(GeneratorTest, DeterministicArrivalsAreExact) {
  auto opt = options(1000.0);
  opt.poisson = false;
  LoadGenerator gen(*client, opt);
  gen.start();
  sched.run_for(sim::seconds(2.0));
  // 1 flow per ms tick, 2000 ticks (first tick fires at t=1ms).
  EXPECT_EQ(gen.flows_started(), 2000u);
  gen.stop();
}

TEST_F(GeneratorTest, ServerDeathConvertsOfferedLoadIntoLoss) {
  auto opt = options(2000.0);
  LoadGenerator gen(*client, opt);
  gen.start();
  sched.run_for(sim::seconds(2.0));
  gen.stats().mark_event(sched.now(), "server dies");
  server->fail();
  sched.run_for(sim::seconds(2.0));
  gen.drain();
  sched.run_for(sim::seconds(2.0));

  // Everything offered after the failure times out (one retry each), so
  // roughly half the offered load is lost and availability ~0.5.
  EXPECT_GT(gen.stats().lost(), 3000u);
  EXPECT_GT(gen.stats().retries(), 3000u);
  EXPECT_NEAR(gen.stats().availability(), 0.5, 0.05);
  // ~2 s of full outage at the mean offered rate, by construction.
  EXPECT_NEAR(gen.stats().effective_downtime_seconds(), 2.0, 0.3);
  // After drain, accounting is closed: offered = answered + lost.
  EXPECT_EQ(gen.stats().offered(),
            gen.stats().answered() + gen.stats().lost());
  // report() agrees with the sink once nothing is in flight.
  auto report = gen.report();
  EXPECT_EQ(report.lost, gen.stats().lost());
  EXPECT_EQ(report.responses, gen.stats().answered());
}

TEST_F(GeneratorTest, LongFlowsIssueFollowUpRequests) {
  auto opt = options(500.0);
  opt.long_flow_fraction = 1.0;  // every flow long-lived
  opt.long_flow_requests = 4;
  opt.long_flow_interval = sim::milliseconds(100);
  LoadGenerator gen(*client, opt);
  gen.start();
  sched.run_for(sim::seconds(2.0));
  gen.drain();
  sched.run_for(sim::seconds(1.0));
  // Flows that started before ~t=1.7s completed all 4 requests; offered
  // must be well above one per flow.
  EXPECT_GT(gen.stats().offered(), gen.flows_started() * 3);
  EXPECT_GT(gen.flows_completed(), 0u);
  // Drain released every slab slot.
  EXPECT_EQ(gen.flows_active(), 0u);
}

TEST_F(GeneratorTest, FlowSlabRecyclesSlots) {
  auto opt = options(5000.0);
  LoadGenerator gen(*client, opt);
  gen.start();
  sched.run_for(sim::seconds(4.0));
  // In-flight at any instant is rate x RTT (~sub-ms), so the slab stays
  // tiny compared to the ~20k flows that passed through it.
  EXPECT_GT(gen.flows_started(), 15000u);
  EXPECT_LT(gen.flows_active(), 200u);
  gen.stop();
}

TEST(PoissonDraw, SmallLambdaIsByteIdenticalToKnuthReference) {
  // Below the split threshold the sampler must consume the rng exactly
  // like the historical Knuth loop — pinned so every existing seeded
  // trial keeps its byte-identical results.
  auto reference = [](sim::Rng& rng, double lambda) -> std::uint32_t {
    const double limit = std::exp(-lambda);
    std::uint32_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= rng.uniform();
    } while (p > limit);
    return k - 1;
  };
  for (double lambda : {0.3, 1.0, 10.0, 75.0, 400.0}) {
    sim::Rng a(42);
    sim::Rng b(42);
    for (int i = 0; i < 200; ++i) {
      ASSERT_EQ(poisson_draw(a, lambda), reference(b, lambda)) << lambda;
    }
    // Full stream agreement, not just the sample values.
    EXPECT_EQ(a.uniform(), b.uniform()) << lambda;
  }
}

TEST(PoissonDraw, HighLambdaIsNotCappedAndMeanIsUnbiased) {
  // The historical sampler silently capped draws near ~745 once
  // exp(-lambda) underflowed to 0: at lambda = 1000 every sample came
  // back ~745 and the offered load ran 25% light. The split sampler must
  // put the mean back on lambda and produce samples ABOVE the old cap
  // (1000 - 8 sigma > 745, so any capped sampler fails this hard).
  sim::Rng rng(7);
  const double lambda = 1000.0;
  const int n = 3000;
  double sum = 0;
  std::uint32_t lo = ~0u;
  std::uint32_t hi = 0;
  for (int i = 0; i < n; ++i) {
    const std::uint32_t x = poisson_draw(rng, lambda);
    sum += x;
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  const double mean = sum / n;
  // sd of the sample mean = sqrt(1000/3000) ~ 0.58; +-4 sd margin.
  EXPECT_NEAR(mean, lambda, 2.5);
  EXPECT_GT(lo, 745u);
  EXPECT_GT(hi, lambda);  // the right tail exists again
}

TEST_F(GeneratorTest, WheelSizeRoundsToNearestTick) {
  // 250 ms cadence at a 100 ms tick used to truncate to 2 ticks (a 200 ms
  // cadence, 25% hot); round-half-up gives 3. Divisible intervals are
  // untouched, and a cadence shorter than the tick is a configuration
  // error, not a 0-sized wheel.
  auto opt = options(100.0);
  opt.tick = sim::milliseconds(100);
  opt.long_flow_interval = sim::milliseconds(250);
  EXPECT_EQ(LoadGenerator(*client, opt).wheel_ticks(), 3u);
  opt.long_flow_interval = sim::milliseconds(240);
  EXPECT_EQ(LoadGenerator(*client, opt).wheel_ticks(), 2u);
  opt.long_flow_interval = sim::milliseconds(500);
  EXPECT_EQ(LoadGenerator(*client, opt).wheel_ticks(), 5u);
  opt.long_flow_interval = sim::milliseconds(100);
  EXPECT_EQ(LoadGenerator(*client, opt).wheel_ticks(), 1u);
  opt.long_flow_interval = sim::milliseconds(60);
  EXPECT_THROW(LoadGenerator(*client, opt), util::ContractViolation);
}

TEST(LoadHarness, SameSeedTrialsAreByteIdentical) {
  TrialOptions t;
  t.protocol = Protocol::kWackamole;
  t.members = 3;
  t.vips = 8;
  t.flows_per_second = 2000.0;
  t.warmup = sim::seconds(1.0);
  t.after = sim::seconds(6.0);
  t.window = sim::seconds(1.0);
  auto a = run_failover_trial(t);
  auto b = run_failover_trial(t);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_GT(a.flows, 10000u);
  EXPECT_GT(a.lost, 0u);  // the fault must actually cost something
  EXPECT_LT(a.availability, 1.0);
  EXPECT_GT(a.availability, 0.5);

  // A different seed perturbs the trial (same shape, different draws).
  TrialOptions other = t;
  other.seed = 2;
  EXPECT_NE(run_failover_trial(other).to_json(), a.to_json());
}

TEST(LoadHarness, BaselineProtocolLosesMoreThanNWay) {
  // The paper's claim, in miniature: VRRP's master holds EVERY address,
  // so one fault loses all offered load for the whole takeover, while
  // Wackamole only loses the victim's share.
  TrialOptions t;
  t.members = 3;
  t.vips = 9;
  t.flows_per_second = 2000.0;
  t.warmup = sim::seconds(1.0);
  t.after = sim::seconds(6.0);
  t.protocol = Protocol::kWackamole;
  auto wack = run_failover_trial(t);
  t.protocol = Protocol::kVrrp;
  auto vrrp = run_failover_trial(t);
  EXPECT_GT(vrrp.effective_downtime_s, wack.effective_downtime_s);
  EXPECT_GT(vrrp.lost, wack.lost);
}

}  // namespace
}  // namespace wam::load
