// The fast allocation procedures must reproduce the legacy reference
// implementations DECISION-FOR-DECISION, not merely satisfy the same
// properties: every daemon in a mixed fleet must compute the identical
// allocation, and the chaos replay corpus pins byte-identical transcripts
// that depend on every tie-break. This suite drives both implementations
// over >1000 randomized configurations, including the corners where the
// strictness tiers and weight handling diverge most easily:
//   * quarantine-heavy members (tier-2 vs tier-1 placement),
//   * fully-quarantined clusters (tier-0 forced coverage),
//   * capacity weights including the degenerate zero/negative weights,
//   * preference-heavy configs (preference beats load),
//   * departed owners and partially-covered tables.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "sim/random.hpp"
#include "wackamole/balance.hpp"
#include "wackamole/balance_legacy.hpp"

namespace wam::wackamole {
namespace {

gcs::MemberId member(int n) {
  return gcs::MemberId{
      gcs::DaemonId(net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(n))),
      1, "w"};
}

struct Fuzz {
  std::vector<std::string> groups;
  std::vector<MemberInfo> members;
  VipTable table;
};

/// Knobs that push a configuration into one of the corner regimes.
struct Shape {
  double p_mature = 0.8;
  double p_prefer = 0.1;
  double p_quarantine = 0.0;
  bool random_weights = false;
  bool degenerate_weights = false;  // weights drawn from {-1, 0, 1, 2}
  int max_groups = 30;
  int max_members = 8;
};

Fuzz make_fuzz(sim::Rng& rng, const Shape& shape) {
  Fuzz f;
  int n_groups = static_cast<int>(rng.range(1, shape.max_groups));
  int n_members = static_cast<int>(rng.range(1, shape.max_members));
  for (int i = 0; i < n_groups; ++i) {
    f.groups.push_back("g" + std::to_string(100 + i));
  }
  for (int m = 0; m < n_members; ++m) {
    MemberInfo mi;
    mi.id = member(m + 1);
    mi.mature = rng.chance(shape.p_mature);
    if (shape.degenerate_weights) {
      mi.weight = static_cast<int>(rng.range(0, 4)) - 1;
    } else if (shape.random_weights) {
      mi.weight = static_cast<int>(rng.range(1, 5));
    }
    for (const auto& g : f.groups) {
      if (rng.chance(shape.p_prefer)) mi.preferred.insert(g);
      if (rng.chance(shape.p_quarantine)) mi.quarantined.insert(g);
    }
    // Occasionally fence a group outside the configured set: exercises the
    // quarantined_any distinction (member is suspect for strictness even
    // though no in-set lookup ever hits the name).
    if (shape.p_quarantine > 0 && rng.chance(0.2)) {
      mi.quarantined.insert("external-" + std::to_string(m));
    }
    f.members.push_back(std::move(mi));
  }
  for (const auto& g : f.groups) {
    double roll = rng.uniform();
    if (roll < 0.4) {
      f.table.set_owner(g, f.members[rng.below(f.members.size())].id);
    } else if (roll < 0.5) {
      f.table.set_owner(g, member(99));  // departed member
    }
  }
  return f;
}

void expect_identical(const Fuzz& f, const char* what) {
  auto legacy_r = legacy_reallocate_ips(f.groups, f.table, f.members);
  auto fast_r = reallocate_ips(f.groups, f.table, f.members);
  EXPECT_EQ(legacy_r, fast_r) << what << ": reallocate decisions diverged";

  auto legacy_b = legacy_balance_ips(f.groups, f.table, f.members);
  auto fast_b = balance_ips(f.groups, f.table, f.members);
  EXPECT_EQ(legacy_b, fast_b) << what << ": balance decisions diverged";
}

class EquivalenceFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EquivalenceFuzz, PlainConfigs) {
  sim::Rng rng(GetParam() * 7919);
  for (int iter = 0; iter < 40; ++iter) {
    expect_identical(make_fuzz(rng, Shape{}), "plain");
  }
}

TEST_P(EquivalenceFuzz, QuarantineHeavy) {
  sim::Rng rng(GetParam() * 104729);
  Shape shape;
  shape.p_quarantine = 0.35;
  for (int iter = 0; iter < 40; ++iter) {
    expect_identical(make_fuzz(rng, shape), "quarantine-heavy");
  }
}

TEST_P(EquivalenceFuzz, ForcedCoverage) {
  // Every member fenced for (nearly) every group: placement falls through
  // to the strictness-1 and strictness-0 tiers, where someone must take the
  // group anyway rather than leave the address dark.
  sim::Rng rng(GetParam() * 1299709);
  Shape shape;
  shape.p_quarantine = 0.9;
  shape.max_groups = 12;
  shape.max_members = 5;
  for (int iter = 0; iter < 40; ++iter) {
    expect_identical(make_fuzz(rng, shape), "forced-coverage");
  }
}

TEST_P(EquivalenceFuzz, Weighted) {
  sim::Rng rng(GetParam() * 15485863);
  Shape shape;
  shape.random_weights = true;
  shape.p_quarantine = 0.1;
  for (int iter = 0; iter < 40; ++iter) {
    expect_identical(make_fuzz(rng, shape), "weighted");
  }
}

TEST_P(EquivalenceFuzz, DegenerateWeights) {
  // Zero and negative weights break the cross-multiplication ordering the
  // reallocate heap relies on; the fast path must detect this and take its
  // linear fallback, still matching the reference scan exactly.
  sim::Rng rng(GetParam() * 32452843);
  Shape shape;
  shape.degenerate_weights = true;
  for (int iter = 0; iter < 40; ++iter) {
    expect_identical(make_fuzz(rng, shape), "degenerate-weights");
  }
}

TEST_P(EquivalenceFuzz, PreferenceHeavy) {
  sim::Rng rng(GetParam() * 49979687);
  Shape shape;
  shape.p_prefer = 0.5;
  shape.p_quarantine = 0.15;
  for (int iter = 0; iter < 40; ++iter) {
    expect_identical(make_fuzz(rng, shape), "preference-heavy");
  }
}

// 6 regimes x 5 seeds x 40 iterations = 1200 randomized configurations,
// each checked for both procedures.
INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceFuzz,
                         ::testing::Values(1, 2, 3, 4, 5));

// The dense API must agree with the string wrappers (the wrappers ARE the
// fast path, so this pins the GroupSet/MemberState translation itself).
TEST(EquivalenceDense, DenseApiMatchesStringWrapper) {
  sim::Rng rng(4242);
  for (int iter = 0; iter < 50; ++iter) {
    Shape shape;
    shape.p_quarantine = 0.2;
    shape.random_weights = true;
    auto f = make_fuzz(rng, shape);

    GroupSet groups(f.groups);
    auto states = to_member_states(groups, f.members);

    auto from_placement = [&](const Placement& p) {
      std::map<std::string, gcs::MemberId> out;
      for (auto [pos, mi] : p) out.emplace(groups.names[pos], states[mi].id);
      return out;
    };

    EXPECT_EQ(from_placement(reallocate_ips_fast(groups, f.table, states)),
              legacy_reallocate_ips(f.groups, f.table, f.members));
    EXPECT_EQ(from_placement(balance_ips_fast(groups, f.table, states)),
              legacy_balance_ips(f.groups, f.table, f.members));
  }
}

// A handful of hand-built corners that random generation hits rarely.
TEST(EquivalenceCorners, EmptyAndSingletons) {
  std::vector<std::string> no_groups;
  std::vector<MemberInfo> no_members;
  VipTable empty;
  EXPECT_EQ(legacy_reallocate_ips(no_groups, empty, no_members),
            reallocate_ips(no_groups, empty, no_members));
  EXPECT_EQ(legacy_balance_ips(no_groups, empty, no_members),
            balance_ips(no_groups, empty, no_members));

  std::vector<std::string> one_group{"g"};
  MemberInfo solo;
  solo.id = member(1);
  solo.mature = true;
  std::vector<MemberInfo> members{solo};
  EXPECT_EQ(legacy_reallocate_ips(one_group, empty, members),
            reallocate_ips(one_group, empty, members));
  EXPECT_EQ(legacy_balance_ips(one_group, empty, members),
            balance_ips(one_group, empty, members));
}

TEST(EquivalenceCorners, AllImmature) {
  std::vector<std::string> groups{"a", "b", "c"};
  std::vector<MemberInfo> members;
  for (int i = 1; i <= 3; ++i) {
    MemberInfo mi;
    mi.id = member(i);
    mi.mature = false;
    members.push_back(mi);
  }
  VipTable table;
  EXPECT_TRUE(reallocate_ips(groups, table, members).empty());
  EXPECT_TRUE(balance_ips(groups, table, members).empty());
  EXPECT_EQ(legacy_reallocate_ips(groups, table, members),
            reallocate_ips(groups, table, members));
  EXPECT_EQ(legacy_balance_ips(groups, table, members),
            balance_ips(groups, table, members));
}

TEST(EquivalenceCorners, EveryMemberFencedForEveryGroup) {
  std::vector<std::string> groups{"a", "b", "c", "d"};
  std::vector<MemberInfo> members;
  for (int i = 1; i <= 3; ++i) {
    MemberInfo mi;
    mi.id = member(i);
    mi.mature = true;
    for (const auto& g : groups) mi.quarantined.insert(g);
    members.push_back(mi);
  }
  VipTable table;
  auto legacy = legacy_reallocate_ips(groups, table, members);
  auto fast = reallocate_ips(groups, table, members);
  EXPECT_EQ(legacy, fast);
  EXPECT_EQ(fast.size(), groups.size()) << "forced coverage must still cover";
  EXPECT_EQ(legacy_balance_ips(groups, table, members),
            balance_ips(groups, table, members));
}

}  // namespace
}  // namespace wam::wackamole
