#include <gtest/gtest.h>

#include "gcs_fixture.hpp"

namespace wam::testing {
namespace {

using gcs::Config;

TEST(GcsMembership, SingletonInstallsAlone) {
  GcsCluster c(1);
  c.start_all();
  c.run(sim::seconds(5.0));
  EXPECT_TRUE(c.daemons[0]->in_op());
  EXPECT_EQ(c.daemons[0]->view().members.size(), 1u);
}

TEST(GcsMembership, ClusterConvergesToOneView) {
  GcsCluster c(5);
  c.start_all();
  c.run(sim::seconds(5.0));
  c.expect_views({{0, 1, 2, 3, 4}}, "initial");
  // All members share the identical view id.
  auto id = c.daemons[0]->view().id;
  for (auto& d : c.daemons) EXPECT_EQ(d->view().id, id);
}

TEST(GcsMembership, MemberListIsSortedAndIdentical) {
  GcsCluster c(4);
  c.start_all();
  c.run(sim::seconds(5.0));
  auto members = c.daemons[0]->view().members;
  EXPECT_TRUE(std::is_sorted(members.begin(), members.end()));
  for (auto& d : c.daemons) EXPECT_EQ(d->view().members, members);
}

TEST(GcsMembership, StaggeredStartStillConverges) {
  GcsCluster c(3);
  c.daemons[0]->start();
  c.run(sim::seconds(3.0));
  c.daemons[1]->start();
  c.run(sim::seconds(3.0));
  c.daemons[2]->start();
  c.run(sim::seconds(5.0));
  c.expect_views({{0, 1, 2}}, "staggered");
}

TEST(GcsMembership, NicDownRemovesMember) {
  GcsCluster c(3);
  c.start_all();
  c.run(sim::seconds(5.0));
  c.hosts[2]->set_interface_up(0, false);
  c.run(sim::seconds(5.0));
  c.expect_views({{0, 1}}, "after fault");
  // The isolated daemon converges to a singleton view.
  c.expect_views({{2}}, "isolated");
}

TEST(GcsMembership, RecoveryRemerges) {
  GcsCluster c(3);
  c.start_all();
  c.run(sim::seconds(5.0));
  c.hosts[2]->set_interface_up(0, false);
  c.run(sim::seconds(5.0));
  c.hosts[2]->set_interface_up(0, true);
  c.run(sim::seconds(5.0));
  c.expect_views({{0, 1, 2}}, "after recovery");
}

TEST(GcsMembership, PartitionSplitsViews) {
  GcsCluster c(5);
  c.start_all();
  c.run(sim::seconds(5.0));
  c.partition({{0, 1}, {2, 3, 4}});
  c.run(sim::seconds(5.0));
  c.expect_views({{0, 1}, {2, 3, 4}}, "partitioned");
}

TEST(GcsMembership, MergeReunifies) {
  GcsCluster c(5);
  c.start_all();
  c.run(sim::seconds(5.0));
  c.partition({{0, 1}, {2, 3, 4}});
  c.run(sim::seconds(5.0));
  c.merge();
  c.run(sim::seconds(5.0));
  c.expect_views({{0, 1, 2, 3, 4}}, "merged");
}

TEST(GcsMembership, CascadingPartitions) {
  GcsCluster c(6);
  c.start_all();
  c.run(sim::seconds(5.0));
  c.partition({{0, 1, 2}, {3, 4, 5}});
  // Interrupt the first reconfiguration mid-flight with a further split.
  c.run(sim::milliseconds(700));
  c.partition({{0, 1}, {2}, {3, 4, 5}});
  c.run(sim::seconds(6.0));
  c.expect_views({{0, 1}, {2}, {3, 4, 5}}, "cascading");
}

TEST(GcsMembership, DaemonStopIsDetected) {
  GcsCluster c(3);
  c.start_all();
  c.run(sim::seconds(5.0));
  c.daemons[0]->stop();
  c.run(sim::seconds(5.0));
  c.expect_views({{1, 2}}, "after stop");
}

TEST(GcsMembership, DaemonRestartRejoins) {
  GcsCluster c(3);
  c.start_all();
  c.run(sim::seconds(5.0));
  c.daemons[0]->stop();
  c.run(sim::seconds(5.0));
  c.daemons[0]->start();
  c.run(sim::seconds(5.0));
  c.expect_views({{0, 1, 2}}, "after restart");
}

// Failure-notification latency must fall within
// [fault_detection - heartbeat, fault_detection] + discovery + install;
// with the default config that is the paper's 10-12 s window.
TEST(GcsMembership, DefaultConfigDetectionLatencyInPaperRange) {
  GcsCluster c(4, Config::spread_default());
  c.start_all();
  c.run(sim::seconds(30.0));
  ASSERT_TRUE(c.daemons[0]->in_op());
  auto fault_time = c.sched.now();
  c.hosts[3]->set_interface_up(0, false);

  // Find when daemon 0 installs the 3-member view.
  while (c.sched.now() - fault_time < sim::seconds(20.0)) {
    c.run(sim::milliseconds(50));
    if (c.daemons[0]->in_op() && c.daemons[0]->view().members.size() == 3) {
      break;
    }
  }
  auto latency = c.sched.now() - fault_time;
  EXPECT_GE(sim::to_seconds(latency), 9.9);
  EXPECT_LE(sim::to_seconds(latency), 12.5);
}

TEST(GcsMembership, TunedConfigDetectionLatencyInPaperRange) {
  GcsCluster c(4, Config::spread_tuned());
  c.start_all();
  c.run(sim::seconds(10.0));
  ASSERT_TRUE(c.daemons[0]->in_op());
  auto fault_time = c.sched.now();
  c.hosts[3]->set_interface_up(0, false);
  while (c.sched.now() - fault_time < sim::seconds(5.0)) {
    c.run(sim::milliseconds(10));
    if (c.daemons[0]->in_op() && c.daemons[0]->view().members.size() == 3) {
      break;
    }
  }
  auto latency = c.sched.now() - fault_time;
  EXPECT_GE(sim::to_seconds(latency), 1.9);
  EXPECT_LE(sim::to_seconds(latency), 2.6);
}

TEST(GcsMembership, TwelveNodeClusterConverges) {
  GcsCluster c(12);
  c.start_all();
  c.run(sim::seconds(10.0));
  std::vector<std::vector<int>> all = {{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}};
  c.expect_views(all, "12-node");
}

TEST(GcsMembership, ViewEpochIncreasesAcrossChanges) {
  GcsCluster c(3);
  c.start_all();
  c.run(sim::seconds(5.0));
  auto e1 = c.daemons[0]->view().id.epoch;
  c.hosts[2]->set_interface_up(0, false);
  c.run(sim::seconds(5.0));
  auto e2 = c.daemons[0]->view().id.epoch;
  EXPECT_GT(e2, e1);
}

}  // namespace
}  // namespace wam::testing
