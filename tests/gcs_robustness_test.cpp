// GCS internals under stress: NACK recovery accounting, stability-based
// garbage collection, pre-install buffering, install timeouts, sequencer
// fail-over mid-stream, lossy membership formation.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gcs_fixture.hpp"

namespace wam::testing {
namespace {

struct Rec {
  std::vector<std::string> messages;
  std::unique_ptr<gcs::Client> client;
  explicit Rec(const std::string& name) {
    gcs::ClientCallbacks cb;
    cb.on_message = [this](const gcs::GroupMessage& m) {
      messages.emplace_back(m.payload.begin(), m.payload.end());
    };
    client = std::make_unique<gcs::Client>(name, std::move(cb));
  }
  void send(const std::string& text) {
    client->multicast("g", util::Bytes(text.begin(), text.end()));
  }
};

struct RobustnessTest : ::testing::Test {
  GcsCluster c{3};
  std::vector<std::unique_ptr<Rec>> recs;

  void SetUp() override {
    c.start_all();
    c.run(sim::seconds(5.0));
    for (std::size_t i = 0; i < c.daemons.size(); ++i) {
      auto r = std::make_unique<Rec>("r" + std::to_string(i));
      ASSERT_TRUE(r->client->connect(*c.daemons[i]));
      r->client->join("g");
      recs.push_back(std::move(r));
    }
    c.run(sim::seconds(1.0));
  }
};

TEST_F(RobustnessTest, NackRecoveryIsAccounted) {
  c.fabric.segment_config(c.seg).drop_probability = 0.25;
  for (int i = 0; i < 40; ++i) recs[1]->send(std::to_string(i));
  c.run(sim::seconds(10.0));
  c.fabric.segment_config(c.seg).drop_probability = 0.0;
  c.run(sim::seconds(5.0));
  ASSERT_EQ(recs[0]->messages.size(), 40u);
  std::uint64_t nacks = 0, rexmit = 0;
  for (auto& d : c.daemons) {
    nacks += d->counters().nacks_sent;
    rexmit += d->counters().retransmissions;
  }
  EXPECT_GT(nacks, 0u);
  EXPECT_GT(rexmit, 0u);
}

TEST_F(RobustnessTest, StabilityPrunesTheStore) {
  for (int i = 0; i < 50; ++i) recs[0]->send(std::to_string(i));
  // A few heartbeats propagate delivery watermarks and the GC kicks in.
  c.run(sim::seconds(3.0));
  // No daemon retains all 50+ messages once they are stable; we can only
  // observe this indirectly: a view change right now must carry a small
  // sync set.
  c.partition({{0, 1}, {2}});
  c.run(sim::seconds(6.0));
  // If the store had not been pruned, the sync set would redeliver old
  // messages; no duplicates may appear.
  for (auto& r : recs) {
    std::set<std::string> unique(r->messages.begin(), r->messages.end());
    EXPECT_EQ(unique.size(), r->messages.size());
  }
}

TEST_F(RobustnessTest, SequencerDeathMidStreamLosesNothingDelivered) {
  // The sequencer is the lowest id (daemon 0). Kill it right after a burst
  // and verify survivors converge with identical, gap-free prefixes.
  for (int i = 0; i < 15; ++i) recs[1]->send("x" + std::to_string(i));
  c.hosts[0]->set_interface_up(0, false);
  c.run(sim::seconds(8.0));
  EXPECT_EQ(recs[1]->messages, recs[2]->messages);
  // Messages re-submitted by their origin after the view change must
  // appear exactly once.
  std::set<std::string> unique(recs[1]->messages.begin(),
                               recs[1]->messages.end());
  EXPECT_EQ(unique.size(), recs[1]->messages.size());
}

TEST_F(RobustnessTest, SendsDuringDiscoveryArriveAfterInstall) {
  c.hosts[2]->set_interface_up(0, false);
  c.run(sim::milliseconds(1100));  // fault detected, discovery running
  recs[0]->send("queued");
  c.run(sim::seconds(6.0));
  ASSERT_FALSE(recs[1]->messages.empty());
  EXPECT_EQ(recs[1]->messages.back(), "queued");
}

TEST_F(RobustnessTest, MembershipFormsUnderHeavyLoss) {
  GcsCluster lossy(4);
  lossy.fabric.segment_config(lossy.seg).drop_probability = 0.30;
  lossy.start_all();
  lossy.run(sim::seconds(60.0));
  lossy.fabric.segment_config(lossy.seg).drop_probability = 0.0;
  lossy.run(sim::seconds(10.0));
  lossy.expect_views({{0, 1, 2, 3}}, "after lossy formation");
}

TEST_F(RobustnessTest, RepeatedPartitionMergeCycles) {
  for (int round = 0; round < 5; ++round) {
    c.partition({{0}, {1, 2}});
    c.run(sim::seconds(6.0));
    c.expect_views({{0}, {1, 2}}, "cycle split");
    c.merge();
    c.run(sim::seconds(6.0));
    c.expect_views({{0, 1, 2}}, "cycle merge");
    recs[0]->send("r" + std::to_string(round));
    c.run(sim::seconds(1.0));
  }
  // All five post-merge messages delivered everywhere, once.
  for (auto& r : recs) {
    int count = 0;
    for (const auto& m : r->messages) {
      if (m[0] == 'r') ++count;
    }
    EXPECT_EQ(count, 5);
  }
}

TEST_F(RobustnessTest, DecodeErrorsCountedNotFatal) {
  // Blast garbage at the GCS port.
  c.hosts[0]->send_udp_broadcast(0, c.daemons[0]->config().port, 9,
                                 {0xde, 0xad, 0xbe, 0xef});
  c.run(sim::seconds(1.0));
  std::uint64_t errors = 0;
  for (auto& d : c.daemons) errors += d->counters().decode_errors;
  EXPECT_GE(errors, 1u);
  // The cluster is unbothered.
  recs[0]->send("still fine");
  c.run(sim::seconds(1.0));
  EXPECT_EQ(recs[2]->messages.back(), "still fine");
}

TEST_F(RobustnessTest, ViewsInstalledCounterAdvances) {
  auto before = c.daemons[1]->counters().views_installed;
  c.hosts[0]->set_interface_up(0, false);
  c.run(sim::seconds(6.0));
  EXPECT_GT(c.daemons[1]->counters().views_installed, before);
}

TEST_F(RobustnessTest, TwoSimultaneousFaults) {
  GcsCluster big(6);
  big.start_all();
  big.run(sim::seconds(5.0));
  big.hosts[4]->set_interface_up(0, false);
  big.hosts[5]->set_interface_up(0, false);
  big.run(sim::seconds(8.0));
  big.expect_views({{0, 1, 2, 3}}, "double fault");
}

TEST_F(RobustnessTest, FlappingMemberEventuallySettles) {
  for (int i = 0; i < 4; ++i) {
    c.hosts[2]->set_interface_up(0, false);
    c.run(sim::seconds(2.0));
    c.hosts[2]->set_interface_up(0, true);
    c.run(sim::seconds(2.0));
  }
  c.run(sim::seconds(8.0));
  c.expect_views({{0, 1, 2}}, "after flapping");
}

// Regression (chaos seeds 4/28/55/66): a connectivity glitch SHORTER than
// the fault-detection timeout that eats the LAST sequenced message leaves
// no gap to NACK — nothing newer ever arrives on the stream — so the
// affected member silently diverged until the next view change. Peers now
// advertise their delivered head in heartbeats and the member NACKs up to
// it; the recovery must happen without any membership change.
TEST_F(RobustnessTest, SequencedTailLossRecoversViaHeartbeats) {
  auto view_before = c.daemons[2]->view().id;
  // One-way glitch: the sequencer's broadcasts don't reach daemon 2.
  c.fabric.block_direction(c.hosts[0]->nic_id(0), c.hosts[2]->nic_id(0));
  recs[1]->send("tail");
  c.run(sim::milliseconds(100));
  c.fabric.clear_directional_blocks();

  ASSERT_EQ(recs[0]->messages.size(), 1u);  // delivered where reachable
  EXPECT_TRUE(recs[2]->messages.empty());   // lost the tail

  // Well under the 1 s fault-detection timeout: recovery must come from
  // heartbeat watermarks, not from a reconfiguration.
  c.run(sim::seconds(2.0));
  ASSERT_EQ(recs[2]->messages.size(), 1u);
  EXPECT_EQ(recs[2]->messages[0], "tail");
  EXPECT_EQ(c.daemons[2]->view().id, view_before)
      << "tail loss must be repaired without a view change";
}

// Regression (chaos seed 63, ASan): reforward_pending() used to iterate
// pending_out_ directly; a client whose on_message callback multicasts —
// reentrant submit() inside the synchronous delivery path — grows the
// deque mid-loop and invalidated the iterator (heap-use-after-free). The
// ping/pong clients below answer from inside delivery while partitions
// force re-forwards at every install.
TEST_F(RobustnessTest, ReentrantSubmitDuringViewChangesIsSafe) {
  struct Ponger {
    std::unique_ptr<gcs::Client> client;
    int id;
    explicit Ponger(int i) : id(i) {
      gcs::ClientCallbacks cb;
      cb.on_message = [this](const gcs::GroupMessage& m) {
        std::string text(m.payload.begin(), m.payload.end());
        if (text.rfind("ping", 0) == 0 && client->connected()) {
          auto reply = "pong" + std::to_string(id) + "/" + text;
          client->multicast("g", util::Bytes(reply.begin(), reply.end()));
        }
      };
      client = std::make_unique<gcs::Client>("p" + std::to_string(i),
                                             std::move(cb));
    }
  };
  std::vector<std::unique_ptr<Ponger>> pongers;
  for (std::size_t i = 0; i < c.daemons.size(); ++i) {
    auto p = std::make_unique<Ponger>(static_cast<int>(i));
    ASSERT_TRUE(p->client->connect(*c.daemons[i]));
    p->client->join("g");
    pongers.push_back(std::move(p));
  }
  c.run(sim::seconds(1.0));

  for (int round = 0; round < 3; ++round) {
    recs[static_cast<std::size_t>(round) % 3]->send(
        "ping-a" + std::to_string(round));
    c.partition({{0}, {1, 2}});
    c.run(sim::seconds(2.0));
    for (std::size_t i = 0; i < 3; ++i) {
      recs[i]->send("ping-b" + std::to_string(round) + std::to_string(i));
    }
    c.merge();
    c.run(sim::seconds(4.0));
  }
  c.run(sim::seconds(5.0));

  c.expect_views({{0, 1, 2}}, "after ping/pong churn");

  // Partition-era deliveries legitimately differ per component; what must
  // agree — and proves the daemons survived the churn intact — is the
  // total order from the healed view onward.
  std::vector<std::size_t> base;
  for (auto& r : recs) base.push_back(r->messages.size());
  recs[0]->send("ping-final");
  c.run(sim::seconds(2.0));
  auto suffix = [&](std::size_t i) {
    return std::vector<std::string>(
        recs[i]->messages.begin() +
            static_cast<std::ptrdiff_t>(base[i]),
        recs[i]->messages.end());
  };
  auto s0 = suffix(0);
  ASSERT_FALSE(s0.empty());
  EXPECT_EQ(s0, suffix(1));
  EXPECT_EQ(s0, suffix(2));
}

}  // namespace
}  // namespace wam::testing
