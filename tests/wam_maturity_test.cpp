// The bootstrap ("maturity") optimization of §3.4: a freshly started server
// owns nothing until it meets a mature peer or its maturity timeout fires.
#include <gtest/gtest.h>

#include "wam_fixture.hpp"

namespace wam::testing {
namespace {

wackamole::Config immature_config(int vips, double maturity_seconds) {
  auto c = test_config(vips);
  c.start_mature = false;
  c.maturity_timeout = sim::seconds(maturity_seconds);
  return c;
}

TEST(WamMaturity, FreshClusterOwnsNothingBeforeTimeout) {
  WamCluster c(3, immature_config(6, 20.0));
  c.start_wam();
  c.run(sim::seconds(10.0));  // converged, but all immature
  for (auto& w : c.wams) {
    EXPECT_EQ(w->state(), wackamole::WamState::kRun);
    EXPECT_FALSE(w->mature());
    EXPECT_TRUE(w->owned().empty());
  }
}

TEST(WamMaturity, TimeoutBootstrapsExactlyOnce) {
  WamCluster c(3, immature_config(6, 20.0));
  // Stagger the starts slightly (real machines never boot in lockstep):
  // only the first maturity timer should ever fire.
  c.start_all();
  for (int i = 0; i < 3; ++i) {
    c.sched.schedule(sim::milliseconds(200 * i), [&c, i] {
      c.wams[static_cast<std::size_t>(i)]->start();
    });
  }
  c.run(sim::seconds(30.0));
  // Someone's timeout fired, it claimed everything and announced itself.
  c.expect_correctness({0, 1, 2}, "after bootstrap");
  std::uint64_t timeouts = 0;
  for (auto& w : c.wams) {
    timeouts += w->counters().maturity_timeouts;
    EXPECT_TRUE(w->mature());
  }
  EXPECT_EQ(timeouts, 1u);  // the STATE_MSG matured everyone else
}

TEST(WamMaturity, ImmatureJoinerDoesNotStealVips) {
  auto mature_cfg = test_config(6);  // starts mature
  WamCluster c(3, mature_cfg);
  // Replace daemon 2's config with an immature one (same VIP set).
  auto immature_cfg = immature_config(6, 1000.0);
  c.wams[2] = std::make_unique<wackamole::Daemon>(
      c.sched, immature_cfg, *c.daemons[2], *c.ipmgrs[2], &c.log);
  c.daemons[0]->start();
  c.daemons[1]->start();
  c.wams[0]->start();
  c.wams[1]->start();
  c.run(sim::seconds(5.0));
  c.expect_correctness({0, 1}, "before join");

  c.daemons[2]->start();
  c.wams[2]->start();
  c.run(sim::seconds(8.0));
  // Server 2 met mature peers: it is mature now, but reallocation found no
  // holes, so it still owns nothing (no churn on boot — the point of §3.4).
  EXPECT_TRUE(c.wams[2]->mature());
  EXPECT_TRUE(c.wams[2]->owned().empty());
  c.expect_correctness({0, 1, 2}, "after join");
}

TEST(WamMaturity, BalanceMaturesAndLoadsTheJoiner) {
  auto mature_cfg = test_config(6);
  mature_cfg.balance_timeout = sim::seconds(10.0);
  WamCluster c(2, mature_cfg);
  auto immature_cfg = immature_config(6, 1000.0);
  immature_cfg.balance_timeout = sim::seconds(10.0);
  c.wams[1] = std::make_unique<wackamole::Daemon>(
      c.sched, immature_cfg, *c.daemons[1], *c.ipmgrs[1], &c.log);
  c.daemons[0]->start();
  c.wams[0]->start();
  c.run(sim::seconds(5.0));
  c.daemons[1]->start();
  c.wams[1]->start();
  c.run(sim::seconds(5.0));
  EXPECT_TRUE(c.wams[1]->owned().empty());
  c.run(sim::seconds(12.0));  // balance fires
  c.expect_correctness({0, 1}, "after balance");
  EXPECT_EQ(c.wams[0]->owned().size(), 3u);
  EXPECT_EQ(c.wams[1]->owned().size(), 3u);
}

TEST(WamMaturity, ZeroTimeoutMeansImmediatelyMature) {
  auto cfg = test_config(4);
  cfg.start_mature = false;
  cfg.maturity_timeout = sim::kZero;
  WamCluster c(1, cfg);
  c.start_wam();
  c.run(sim::seconds(5.0));
  EXPECT_TRUE(c.wams[0]->mature());
  EXPECT_EQ(c.wams[0]->owned().size(), 4u);
}

}  // namespace
}  // namespace wam::testing
