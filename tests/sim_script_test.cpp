#include "sim/script.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace wam::sim {
namespace {

TEST(Script, RunsEntriesAtScheduledTimes) {
  Scheduler sched;
  Script script;
  std::vector<std::string> fired;
  script.at(seconds(1.0), "one", [&] { fired.push_back("one"); });
  script.at(seconds(3.0), "three", [&] { fired.push_back("three"); });
  script.arm(sched);
  sched.run_until(TimePoint(seconds(2.0)));
  EXPECT_EQ(fired, (std::vector<std::string>{"one"}));
  sched.run_all();
  EXPECT_EQ(fired, (std::vector<std::string>{"one", "three"}));
}

TEST(Script, NarratorObservesFirings) {
  Scheduler sched;
  Script script;
  script.at(seconds(1.0), "boom", [] {});
  std::vector<std::string> narrated;
  script.arm(sched, [&](const Script::Entry& e) {
    narrated.push_back(e.description);
  });
  sched.run_all();
  EXPECT_EQ(narrated, (std::vector<std::string>{"boom"}));
}

TEST(Script, EndIsLatestEntry) {
  Script script;
  EXPECT_EQ(script.end(), TimePoint{});
  script.at(seconds(5.0), "a", [] {});
  script.at(seconds(2.0), "b", [] {});
  EXPECT_EQ(script.end(), TimePoint(seconds(5.0)));
  EXPECT_EQ(script.size(), 2u);
}

TEST(Script, RejectsNullAction) {
  Script script;
  EXPECT_THROW(script.at(seconds(1.0), "x", nullptr),
               util::ContractViolation);
}

TEST(Script, ChainingStyle) {
  Scheduler sched;
  int count = 0;
  Script script;
  script.at(seconds(1.0), "a", [&] { ++count; })
      .at(seconds(2.0), "b", [&] { ++count; })
      .at(seconds(3.0), "c", [&] { ++count; });
  script.arm(sched);
  sched.run_all();
  EXPECT_EQ(count, 3);
}

}  // namespace
}  // namespace wam::sim
