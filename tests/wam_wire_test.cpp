#include "wackamole/wire.hpp"

#include <gtest/gtest.h>

namespace wam::wackamole {
namespace {

TEST(WamWire, StateRoundTrip) {
  StateMsg m;
  m.view = ViewTag{7, 0x0a000001, 3};
  m.mature = true;
  m.owned = {"a", "b"};
  m.preferred = {"b"};
  m.quarantined = {"a"};
  auto out = decode_state(encode_state(m));
  EXPECT_EQ(out.view, m.view);
  EXPECT_TRUE(out.mature);
  EXPECT_EQ(out.owned, m.owned);
  EXPECT_EQ(out.preferred, m.preferred);
  EXPECT_EQ(out.quarantined, m.quarantined);
}

TEST(WamWire, StateEmptyLists) {
  StateMsg m;
  auto out = decode_state(encode_state(m));
  EXPECT_TRUE(out.owned.empty());
  EXPECT_TRUE(out.preferred.empty());
  EXPECT_FALSE(out.mature);
}

TEST(WamWire, BalanceRoundTrip) {
  BalanceMsg m;
  m.view = ViewTag{9, 0x0a000002, 1};
  m.allocation = {{"g1", {0x0a000001, 1}}, {"g2", {0x0a000002, 2}}};
  auto out = decode_balance(encode_balance(m));
  EXPECT_EQ(out.view, m.view);
  ASSERT_EQ(out.allocation.size(), 2u);
  EXPECT_EQ(out.allocation[0].first, "g1");
  EXPECT_EQ(out.allocation[0].second.first, 0x0a000001u);
  EXPECT_EQ(out.allocation[1].second.second, 2u);
}

TEST(WamWire, ArpShareRoundTrip) {
  ArpShareMsg m;
  m.ips = {1, 2, 0xffffffff};
  auto out = decode_arp_share(encode_arp_share(m));
  EXPECT_EQ(out.ips, m.ips);
}

TEST(WamWire, NotifyRoundTrip) {
  NotifyMsg m;
  m.view = ViewTag{11, 0x0a000003, 6};
  m.group = "vip4";
  m.fenced = true;
  m.cooldown_ms = 30000;
  m.reason = "injected sticky: acquire vip4";
  auto out = decode_notify(encode_notify(m));
  EXPECT_EQ(out.view, m.view);
  EXPECT_EQ(out.group, m.group);
  EXPECT_TRUE(out.fenced);
  EXPECT_EQ(out.cooldown_ms, 30000u);
  EXPECT_EQ(out.reason, m.reason);

  m.fenced = false;  // the quarantine-clear direction
  m.reason.clear();
  out = decode_notify(encode_notify(m));
  EXPECT_FALSE(out.fenced);
  EXPECT_TRUE(out.reason.empty());
}

TEST(WamWire, PeekTypeDispatch) {
  EXPECT_EQ(peek_type(encode_state(StateMsg{})), WamMsgType::kState);
  EXPECT_EQ(peek_type(encode_balance(BalanceMsg{})), WamMsgType::kBalance);
  EXPECT_EQ(peek_type(encode_arp_share(ArpShareMsg{})), WamMsgType::kArpShare);
  EXPECT_EQ(peek_type(encode_notify(NotifyMsg{})), WamMsgType::kNotify);
}

TEST(WamWire, PeekRejectsGarbage) {
  EXPECT_THROW(peek_type(util::Bytes{}), util::DecodeError);
  EXPECT_THROW(peek_type(util::Bytes{0x63}), util::DecodeError);
}

TEST(WamWire, DecodeWrongTypeThrows) {
  auto bytes = encode_state(StateMsg{});
  EXPECT_THROW(decode_balance(bytes), util::DecodeError);
}

TEST(WamWire, DecodeTruncatedThrows) {
  StateMsg m;
  m.owned = {"a"};
  auto bytes = encode_state(m);
  bytes.resize(bytes.size() - 1);
  EXPECT_THROW(decode_state(bytes), util::DecodeError);
}

TEST(WamWire, ViewTagOrderingAndEquality) {
  ViewTag a{1, 1, 1};
  ViewTag b{1, 1, 2};
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, (ViewTag{1, 1, 1}));
}

TEST(WamWire, ViewTagFromGroupView) {
  gcs::GroupView gv;
  gv.daemon_view = gcs::ViewId{5, gcs::DaemonId(net::Ipv4Address(10, 0, 0, 1))};
  gv.group_seq = 12;
  auto tag = ViewTag::of(gv);
  EXPECT_EQ(tag.epoch, 5u);
  EXPECT_EQ(tag.group_seq, 12u);
}

}  // namespace
}  // namespace wam::wackamole
