// Full-stack integration: Figure 4's virtual router built from N physical
// routers, with an indivisible VIP group spanning three networks.
#include <gtest/gtest.h>

#include "apps/router_scenario.hpp"

namespace wam::apps {
namespace {

TEST(IntegrationRouter, ExactlyOneActiveRouter) {
  RouterScenario s(RouterScenarioOptions{});
  s.start();
  s.run(sim::seconds(8.0));
  int active = s.active_router();
  ASSERT_GE(active, 0) << "no or conflicting active router";
  EXPECT_TRUE(s.holds_whole_group(active));
  for (int i = 0; i < s.num_routers(); ++i) {
    if (i != active) EXPECT_TRUE(s.holds_nothing(i));
  }
}

TEST(IntegrationRouter, GroupIsIndivisible) {
  RouterScenario s(RouterScenarioOptions{});
  s.start();
  s.run(sim::seconds(8.0));
  // At any sampled instant, no router holds a strict subset of the group.
  for (int round = 0; round < 20; ++round) {
    s.run(sim::milliseconds(250));
    for (int i = 0; i < s.num_routers(); ++i) {
      EXPECT_TRUE(s.holds_whole_group(i) || s.holds_nothing(i))
          << "router " << i << " holds a partial group";
    }
  }
}

TEST(IntegrationRouter, TrafficFlowsThroughVirtualRouter) {
  RouterScenario s(RouterScenarioOptions{});
  s.start();
  s.run(sim::seconds(8.0));
  s.start_probe();
  s.run(sim::seconds(1.0));
  EXPECT_GT(s.probe().responses().size(), 50u);
  EXPECT_EQ(s.probe().current_server(), "webserver");
}

TEST(IntegrationRouter, FailoverMovesWholeGroupAndRestoresService) {
  RouterScenario s(RouterScenarioOptions{});
  s.start();
  s.run(sim::seconds(8.0));
  s.start_probe();
  s.run(sim::seconds(1.0));
  int active = s.active_router();
  ASSERT_GE(active, 0);

  s.fail_router(active);
  s.run(sim::seconds(8.0));

  int heir = -1;
  for (int i = 0; i < s.num_routers(); ++i) {
    if (i != active && s.holds_whole_group(i)) heir = i;
  }
  ASSERT_GE(heir, 0) << "no surviving router took the group";
  // Service resumed: responses arrive again after the interruption.
  auto gaps = s.probe().interruptions();
  ASSERT_GE(gaps.size(), 1u);
  EXPECT_EQ(s.probe().current_server(), "webserver");
  // The interruption is dominated by the tuned GCS timeouts (~2-3 s).
  double secs = sim::to_seconds(gaps.back().length());
  EXPECT_GE(secs, 1.5);
  EXPECT_LE(secs, 4.0);
}

TEST(IntegrationRouter, RecoveredRouterDoesNotConflict) {
  RouterScenario s(RouterScenarioOptions{});
  s.start();
  s.run(sim::seconds(8.0));
  int active = s.active_router();
  ASSERT_GE(active, 0);
  s.fail_router(active);
  s.run(sim::seconds(8.0));
  s.recover_router(active);
  s.run(sim::seconds(8.0));
  int now_active = s.active_router();
  ASSERT_GE(now_active, 0) << "conflict or hole after recovery";
  EXPECT_TRUE(s.holds_whole_group(now_active));
}

TEST(IntegrationRouter, GracefulLeaveHandsOverQuickly) {
  RouterScenario s(RouterScenarioOptions{});
  s.start();
  s.run(sim::seconds(8.0));
  s.start_probe();
  s.run(sim::seconds(1.0));
  int active = s.active_router();
  ASSERT_GE(active, 0);
  s.graceful_leave(active);
  s.run(sim::seconds(3.0));
  int heir = s.active_router();
  ASSERT_GE(heir, 0);
  EXPECT_NE(heir, active);
  EXPECT_LE(sim::to_millis(s.probe().longest_gap()), 250.0);
}

TEST(IntegrationRouter, ThreeRoutersSurviveTwoFailures) {
  RouterScenarioOptions opt;
  opt.num_routers = 3;
  RouterScenario s(opt);
  s.start();
  s.run(sim::seconds(8.0));
  int first = s.active_router();
  ASSERT_GE(first, 0);
  s.fail_router(first);
  s.run(sim::seconds(8.0));
  int second = s.active_router();
  ASSERT_GE(second, 0);
  ASSERT_NE(second, first);
  s.fail_router(second);
  s.run(sim::seconds(8.0));
  int third = -1;
  for (int i = 0; i < 3; ++i) {
    if (i != first && i != second && s.holds_whole_group(i)) third = i;
  }
  EXPECT_GE(third, 0);
}

TEST(IntegrationRouter, DbTrafficAlsoTraversesVirtualRouter) {
  RouterScenario s(RouterScenarioOptions{});
  s.start();
  s.run(sim::seconds(8.0));
  // Web server talks to the DB server across segments via its VIP gateway.
  int got = 0;
  s.db_server().open_udp(7777, [&](const net::Host::UdpContext& ctx,
                                   const util::Bytes&) {
    ++got;
    s.db_server().send_udp_from(ctx.dst_ip, ctx.src_ip, ctx.src_port,
                                ctx.dst_port, {1});
  });
  int replies = 0;
  s.web_server().open_udp(7778, [&](const net::Host::UdpContext&,
                                    const util::Bytes&) { ++replies; });
  s.web_server().send_udp(net::Ipv4Address(192, 168, 0, 20), 7777, 7778, {0});
  s.run(sim::seconds(1.0));
  EXPECT_EQ(got, 1);
  EXPECT_EQ(replies, 1);
}

TEST(IntegrationRouter, NaiveRoutingDelayDominatesFailover) {
  // §5.2: in the naive deployment the heir cannot forward until its
  // dynamic routing tables reconverge (modelled as 5 s here), so the
  // client-perceived interruption is hand-off + reconvergence.
  RouterScenarioOptions opt;
  opt.routing_convergence_delay = sim::seconds(5.0);
  RouterScenario s(opt);
  s.start();
  s.run(sim::seconds(15.0));  // initial owner also converges once
  s.start_probe();
  s.run(sim::seconds(1.0));
  int active = s.active_router();
  ASSERT_GE(active, 0);
  s.fail_router(active);
  s.run(sim::seconds(15.0));
  auto gaps = s.probe().interruptions(sim::milliseconds(500));
  ASSERT_GE(gaps.size(), 1u);
  double secs = sim::to_seconds(gaps.back().length());
  // ~2.3 s Wackamole hand-off + 5 s reconvergence.
  EXPECT_GE(secs, 6.5);
  EXPECT_LE(secs, 9.0);
}

TEST(IntegrationRouter, AdvertiseSetupSkipsReconvergence) {
  RouterScenarioOptions opt;  // routing_convergence_delay = 0
  RouterScenario s(opt);
  s.start();
  s.run(sim::seconds(8.0));
  s.start_probe();
  s.run(sim::seconds(1.0));
  int active = s.active_router();
  ASSERT_GE(active, 0);
  s.fail_router(active);
  s.run(sim::seconds(10.0));
  auto gaps = s.probe().interruptions(sim::milliseconds(500));
  ASSERT_GE(gaps.size(), 1u);
  EXPECT_LE(sim::to_seconds(gaps.back().length()), 4.0);
}

}  // namespace
}  // namespace wam::apps
