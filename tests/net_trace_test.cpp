#include "net/trace.hpp"

#include "net/host.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace wam::net {
namespace {

struct TraceTest : ::testing::Test {
  sim::Scheduler sched;
  Fabric fabric{sched};
  SegmentId seg = fabric.add_segment();
  FrameTrace trace{sched, fabric};
  std::unique_ptr<Host> a, b;

  void SetUp() override {
    a = std::make_unique<Host>(sched, fabric, "a");
    a->add_interface(seg, Ipv4Address(10, 0, 0, 1), 24);
    b = std::make_unique<Host>(sched, fabric, "b");
    b->add_interface(seg, Ipv4Address(10, 0, 0, 2), 24);
  }
};

TEST_F(TraceTest, CapturesArpExchange) {
  b->open_udp(7, [](const Host::UdpContext&, const util::Bytes&) {});
  a->send_udp(Ipv4Address(10, 0, 0, 2), 7, 7, {1});
  sched.run_all();
  EXPECT_EQ(trace.count("ARP who-has 10.0.0.2"), 1u);
  EXPECT_EQ(trace.count("is-at"), 1u);
  EXPECT_EQ(trace.count("UDP 10.0.0.1:7 > 10.0.0.2:7"), 1u);
}

TEST_F(TraceTest, CapturesGratuitousArp) {
  a->add_alias(0, Ipv4Address(10, 0, 0, 100));
  a->send_gratuitous_arp(0, Ipv4Address(10, 0, 0, 100));
  sched.run_all();
  EXPECT_EQ(trace.count("gratuitous"), 1u);
}

TEST_F(TraceTest, DumpIsTimestampedAndOrdered) {
  b->open_udp(7, [](const Host::UdpContext&, const util::Bytes&) {});
  a->send_udp(Ipv4Address(10, 0, 0, 2), 7, 7, {1});
  sched.run_all();
  auto dump = trace.dump();
  EXPECT_NE(dump.find("seg0"), std::string::npos);
  // ARP request precedes the UDP payload frame.
  EXPECT_LT(dump.find("who-has"), dump.find("UDP"));
}

TEST_F(TraceTest, CapacityBoundsRing) {
  FrameTrace small(sched, fabric, 4);
  b->open_udp(7, [](const Host::UdpContext&, const util::Bytes&) {});
  for (int i = 0; i < 20; ++i) {
    a->send_udp(Ipv4Address(10, 0, 0, 2), 7, 7, {1});
  }
  sched.run_all();
  EXPECT_LE(small.size(), 4u);
}

TEST_F(TraceTest, SummarizeMalformedFrames) {
  Frame bogus{MacAddress::from_index(1), MacAddress::from_index(2),
              EtherType::kIpv4, {1, 2}};
  EXPECT_EQ(FrameTrace::summarize(bogus), "IPv4 <malformed>");
  Frame bogus_arp{MacAddress::from_index(1), MacAddress::from_index(2),
                  EtherType::kArp, {9}};
  EXPECT_EQ(FrameTrace::summarize(bogus_arp), "ARP <malformed>");
}

TEST_F(TraceTest, ClearEmptiesRecords) {
  a->send_gratuitous_arp(0, Ipv4Address(10, 0, 0, 1));
  sched.run_all();
  EXPECT_GT(trace.size(), 0u);
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
}

}  // namespace
}  // namespace wam::net
