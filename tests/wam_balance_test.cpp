#include "wackamole/balance.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace wam::wackamole {
namespace {

gcs::MemberId member(int n) {
  return gcs::MemberId{
      gcs::DaemonId(net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(n))),
      1, "w"};
}

MemberInfo info(int n, bool mature = true,
                std::set<std::string> preferred = {}) {
  return MemberInfo{member(n), mature, 1, std::move(preferred)};
}

std::vector<std::string> groups(int n) {
  std::vector<std::string> out;
  for (int i = 0; i < n; ++i) {
    out.push_back("g" + std::to_string(i / 10) + std::to_string(i % 10));
  }
  return out;
}

TEST(Reallocate, CoversAllHolesExactlyOnce) {
  VipTable table;
  auto all = groups(10);
  auto members = std::vector<MemberInfo>{info(1), info(2), info(3)};
  auto assignments = reallocate_ips(all, table, members);
  EXPECT_EQ(assignments.size(), 10u);
  for (const auto& g : all) EXPECT_TRUE(assignments.count(g));
}

TEST(Reallocate, SpreadsLoadEvenly) {
  VipTable table;
  auto all = groups(9);
  auto members = std::vector<MemberInfo>{info(1), info(2), info(3)};
  auto assignments = reallocate_ips(all, table, members);
  std::map<gcs::MemberId, int> load;
  for (const auto& [g, m] : assignments) ++load[m];
  for (const auto& [m, n] : load) EXPECT_EQ(n, 3);
}

TEST(Reallocate, RespectsExistingLoad) {
  VipTable table;
  auto all = groups(6);
  // Member 1 already holds 4 groups; the 2 holes should go to member 2.
  for (int i = 0; i < 4; ++i) table.set_owner(all[static_cast<std::size_t>(i)], member(1));
  auto members = std::vector<MemberInfo>{info(1), info(2)};
  auto assignments = reallocate_ips(all, table, members);
  ASSERT_EQ(assignments.size(), 2u);
  for (const auto& [g, m] : assignments) EXPECT_EQ(m, member(2));
}

TEST(Reallocate, SkipsImmatureMembers) {
  VipTable table;
  auto all = groups(4);
  auto members = std::vector<MemberInfo>{info(1, false), info(2, true)};
  auto assignments = reallocate_ips(all, table, members);
  for (const auto& [g, m] : assignments) EXPECT_EQ(m, member(2));
}

TEST(Reallocate, AllImmatureAssignsNothing) {
  VipTable table;
  auto all = groups(4);
  auto members = std::vector<MemberInfo>{info(1, false), info(2, false)};
  EXPECT_TRUE(reallocate_ips(all, table, members).empty());
}

TEST(Reallocate, HonorsPreferences) {
  VipTable table;
  auto all = groups(2);
  auto members =
      std::vector<MemberInfo>{info(1), info(2, true, {all[0], all[1]})};
  auto assignments = reallocate_ips(all, table, members);
  // Member 2 prefers both; it gets both despite higher load... no: load
  // balancing still applies within preference ties. First group goes to 2
  // (preference beats load), second: member 2 has load 1 but still prefers;
  // preference outranks load in the scoring, so both land on member 2.
  EXPECT_EQ(assignments[all[0]], member(2));
  EXPECT_EQ(assignments[all[1]], member(2));
}

TEST(Reallocate, DeterministicTieBreakByRank) {
  VipTable table;
  auto all = groups(1);
  auto members = std::vector<MemberInfo>{info(1), info(2)};
  auto a1 = reallocate_ips(all, table, members);
  auto a2 = reallocate_ips(all, table, members);
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(a1[all[0]], member(1));  // earlier in the membership list
}

TEST(Balance, ProducesCompleteAllocation) {
  VipTable table;
  auto all = groups(10);
  auto members = std::vector<MemberInfo>{info(1), info(2), info(3)};
  for (const auto& g : all) table.set_owner(g, member(1));  // all on one
  auto allocation = balance_ips(all, table, members);
  EXPECT_EQ(allocation.size(), all.size());
}

TEST(Balance, LoadsWithinOne) {
  VipTable table;
  auto all = groups(10);
  for (const auto& g : all) table.set_owner(g, member(1));
  auto members = std::vector<MemberInfo>{info(1), info(2), info(3)};
  auto allocation = balance_ips(all, table, members);
  std::map<gcs::MemberId, std::size_t> load;
  for (const auto& [g, m] : allocation) ++load[m];
  std::size_t lo = SIZE_MAX, hi = 0;
  for (const auto& [m, n] : load) {
    lo = std::min(lo, n);
    hi = std::max(hi, n);
  }
  EXPECT_LE(hi - lo, 1u);
}

TEST(Balance, MinimizesMovement) {
  // Already balanced: nothing moves.
  VipTable table;
  auto all = groups(6);
  auto members = std::vector<MemberInfo>{info(1), info(2), info(3)};
  for (int i = 0; i < 6; ++i) {
    table.set_owner(all[static_cast<std::size_t>(i)], member(1 + i % 3));
  }
  auto allocation = balance_ips(all, table, members);
  for (const auto& g : all) {
    EXPECT_EQ(allocation[g], *table.owner(g)) << g << " moved unnecessarily";
  }
}

TEST(Balance, PreferredGroupsStayWithPreferrer) {
  VipTable table;
  auto all = groups(4);
  // Member 1 holds everything but prefers only g00; rebalance to 2 members
  // must keep g00 on member 1.
  for (const auto& g : all) table.set_owner(g, member(1));
  auto members =
      std::vector<MemberInfo>{info(1, true, {all[0]}), info(2)};
  auto allocation = balance_ips(all, table, members);
  EXPECT_EQ(allocation[all[0]], member(1));
}

TEST(Balance, ExcludesImmatureMembers) {
  VipTable table;
  auto all = groups(4);
  for (const auto& g : all) table.set_owner(g, member(1));
  auto members = std::vector<MemberInfo>{info(1), info(2, false)};
  auto allocation = balance_ips(all, table, members);
  for (const auto& g : all) EXPECT_EQ(allocation[g], member(1));
}

TEST(Balance, ReassignsGroupsOwnedByDepartedMembers) {
  VipTable table;
  auto all = groups(4);
  table.set_owner(all[0], member(9));  // not in the member list
  auto members = std::vector<MemberInfo>{info(1), info(2)};
  auto allocation = balance_ips(all, table, members);
  EXPECT_TRUE(allocation[all[0]] == member(1) ||
              allocation[all[0]] == member(2));
}

TEST(Balance, EmptyWhenNoMatureMembers) {
  VipTable table;
  auto members = std::vector<MemberInfo>{info(1, false)};
  EXPECT_TRUE(balance_ips(groups(3), table, members).empty());
}

TEST(Balance, DeterministicAcrossCalls) {
  VipTable table;
  auto all = groups(13);
  for (int i = 0; i < 13; ++i) {
    table.set_owner(all[static_cast<std::size_t>(i)], member(1 + i % 2));
  }
  auto members = std::vector<MemberInfo>{info(1), info(2), info(3), info(4)};
  EXPECT_EQ(balance_ips(all, table, members),
            balance_ips(all, table, members));
}

// Regression (chaos seed 9): a fenced member that owns nothing is the only
// under-target candidate, and the group evicted from an over-target member
// is exactly the one it is quarantined for. The old placement force-assigned
// it anyway — the fenced owner cannot bind, its re-fence is silent, and the
// address stays dark. Balance must overload a healthy member instead.
TEST(Balance, OverloadsHealthyMemberBeforeQuarantinedOne) {
  VipTable table;
  auto all = groups(7);
  table.set_owner(all[0], member(1));
  table.set_owner(all[1], member(1));
  table.set_owner(all[2], member(2));
  table.set_owner(all[6], member(2));
  table.set_owner(all[3], member(4));
  table.set_owner(all[4], member(4));
  table.set_owner(all[5], member(5));
  auto members = std::vector<MemberInfo>{info(1), info(2), info(3), info(4),
                                         info(5)};
  members[2].quarantined = {all[3], all[4]};  // member 3 owns nothing
  auto allocation = balance_ips(all, table, members);
  ASSERT_EQ(allocation.size(), all.size());
  EXPECT_NE(allocation[all[3]], member(3));
  EXPECT_NE(allocation[all[4]], member(3));
}

// A quarantine for any group marks the whole member suspect: new groups it
// has not (yet) fenced still go to quarantine-free members first, or every
// balance round feeds the sick member a fresh group to burn a retry budget
// on and rip another transient coverage hole.
TEST(Balance, SuspectMemberGetsNoFreshGroupsWhileHealthyMembersExist) {
  VipTable table;
  auto all = groups(6);
  table.set_owner(all[0], member(1));
  table.set_owner(all[1], member(1));
  table.set_owner(all[2], member(2));
  table.set_owner(all[3], member(2));
  auto members = std::vector<MemberInfo>{info(1), info(2), info(3)};
  members[2].quarantined = {all[4]};  // fenced for one group, owns nothing
  auto allocation = balance_ips(all, table, members);
  ASSERT_EQ(allocation.size(), all.size());
  for (const auto& [g, m] : allocation) {
    EXPECT_NE(m, member(3)) << g << " assigned to the suspect member";
  }
  auto assignments = reallocate_ips(all, table, members);
  for (const auto& [g, m] : assignments) {
    EXPECT_NE(m, member(3)) << g << " reallocated to the suspect member";
  }
}

TEST(Balance, ForcedCoverageWhenEveryMemberIsFenced) {
  VipTable table;
  auto all = groups(2);
  auto members = std::vector<MemberInfo>{info(1), info(2)};
  members[0].quarantined = {all[0]};
  members[1].quarantined = {all[0]};
  auto allocation = balance_ips(all, table, members);
  ASSERT_EQ(allocation.size(), all.size());  // nothing left permanently dark
}

TEST(LoadImbalance, MeasuresSpread) {
  VipTable table;
  auto all = groups(5);
  for (const auto& g : all) table.set_owner(g, member(1));
  auto members = std::vector<MemberInfo>{info(1), info(2)};
  EXPECT_EQ(load_imbalance(table, members), 5u);
  auto allocation = balance_ips(all, table, members);
  VipTable balanced;
  for (const auto& [g, m] : allocation) balanced.set_owner(g, m);
  EXPECT_LE(load_imbalance(balanced, members), 1u);
}

}  // namespace
}  // namespace wam::wackamole
