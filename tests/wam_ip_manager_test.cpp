// SimIpManager: acquire/release side effects, router spoofing, notify-
// target handling with garbage collection (§5.2), and the periodic
// re-announce anti-entropy.
#include <gtest/gtest.h>

#include <memory>

#include "net/fabric.hpp"
#include "wackamole/ip_manager.hpp"

namespace wam::wackamole {
namespace {

struct IpManagerTest : ::testing::Test {
  sim::Scheduler sched;
  net::Fabric fabric{sched};
  net::SegmentId seg = fabric.add_segment();
  std::unique_ptr<net::Host> server, router, peer;
  VipGroup group{"web", {{net::Ipv4Address(10, 0, 0, 100), 0}}};

  void SetUp() override {
    server = std::make_unique<net::Host>(sched, fabric, "server");
    server->add_interface(seg, net::Ipv4Address(10, 0, 0, 1), 24);
    router = std::make_unique<net::Host>(sched, fabric, "router");
    router->add_interface(seg, net::Ipv4Address(10, 0, 0, 254), 24);
    peer = std::make_unique<net::Host>(sched, fabric, "peer");
    peer->add_interface(seg, net::Ipv4Address(10, 0, 0, 7), 24);
  }
};

TEST_F(IpManagerTest, AcquireBindsAndHolds) {
  SimIpManager mgr(*server);
  EXPECT_FALSE(mgr.holds("web"));
  mgr.acquire(group);
  EXPECT_TRUE(mgr.holds("web"));
  EXPECT_TRUE(server->owns_ip(net::Ipv4Address(10, 0, 0, 100)));
  mgr.release(group);
  EXPECT_FALSE(mgr.holds("web"));
  EXPECT_FALSE(server->owns_ip(net::Ipv4Address(10, 0, 0, 100)));
}

TEST_F(IpManagerTest, AcquireSpoofsTheRouter) {
  SimIpManager mgr(*server);
  mgr.set_router(0, net::Ipv4Address(10, 0, 0, 254));
  mgr.acquire(group);
  sched.run_all();
  auto cached = router->arp_cache().lookup(net::Ipv4Address(10, 0, 0, 100),
                                           sched.now());
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(*cached, server->mac(0));
}

TEST_F(IpManagerTest, NotifyTargetsGetUnicastSpoofs) {
  SimIpManager mgr(*server);
  mgr.add_notify_target(net::Ipv4Address(10, 0, 0, 7));
  mgr.acquire(group);
  sched.run_all();
  auto cached = peer->arp_cache().lookup(net::Ipv4Address(10, 0, 0, 100),
                                         sched.now());
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(*cached, server->mac(0));
}

TEST_F(IpManagerTest, OffSubnetNotifyTargetsSkipped) {
  SimIpManager mgr(*server);
  mgr.add_notify_target(net::Ipv4Address(192, 168, 9, 9));
  auto before = server->counters().arp_replies_sent;
  mgr.acquire(group);
  sched.run_all();
  // gratuitous only (1) — no spoof for the unreachable target.
  EXPECT_EQ(server->counters().arp_replies_sent, before + 1);
}

TEST_F(IpManagerTest, NotifyTargetGarbageCollection) {
  SimIpManager mgr(*server);
  mgr.set_notify_target_ttl(sim::seconds(10.0));
  mgr.add_notify_target(net::Ipv4Address(10, 0, 0, 7));
  sched.run_for(sim::seconds(5.0));
  mgr.add_notify_target(net::Ipv4Address(10, 0, 0, 8));
  sched.run_for(sim::seconds(7.0));  // .7 is now 12 s old, .8 is 7 s old
  mgr.acquire(group);
  sched.run_all();
  auto targets = mgr.notify_targets();
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(targets[0], net::Ipv4Address(10, 0, 0, 8));
}

TEST_F(IpManagerTest, RefreshKeepsTargetAlive) {
  SimIpManager mgr(*server);
  mgr.set_notify_target_ttl(sim::seconds(10.0));
  mgr.add_notify_target(net::Ipv4Address(10, 0, 0, 7));
  sched.run_for(sim::seconds(8.0));
  mgr.add_notify_target(net::Ipv4Address(10, 0, 0, 7));  // refresh
  sched.run_for(sim::seconds(8.0));
  mgr.acquire(group);
  EXPECT_EQ(mgr.notify_targets().size(), 1u);
}

TEST_F(IpManagerTest, AnnounceOnlyWhenHeld) {
  SimIpManager mgr(*server);
  auto before = server->counters().arp_replies_sent;
  mgr.announce(group);  // not held: no-op
  sched.run_all();
  EXPECT_EQ(server->counters().arp_replies_sent, before);
}

TEST_F(IpManagerTest, AnnounceRepairsPoisonedCache) {
  SimIpManager mgr(*server);
  mgr.acquire(group);
  sched.run_all();
  // Poison the peer's cache (it had resolved the VIP to someone else).
  peer->arp_cache().put(net::Ipv4Address(10, 0, 0, 100),
                        net::MacAddress::from_index(999), sched.now());
  mgr.announce(group);
  sched.run_all();
  EXPECT_EQ(*peer->arp_cache().lookup(net::Ipv4Address(10, 0, 0, 100),
                                      sched.now()),
            server->mac(0));
}

TEST_F(IpManagerTest, RecordingManagerTracksOps) {
  RecordingIpManager mgr;
  mgr.acquire(group);
  mgr.announce(group);
  mgr.release(group);
  EXPECT_EQ(mgr.ops(),
            (std::vector<std::string>{"acquire web", "announce web",
                                      "release web"}));
  EXPECT_FALSE(mgr.holds("web"));
}

TEST_F(IpManagerTest, MultiAddressGroupBindsEverything) {
  auto seg2 = fabric.add_segment();
  auto multi = std::make_unique<net::Host>(sched, fabric, "r1");
  multi->add_interface(seg, net::Ipv4Address(10, 0, 0, 2), 24);
  multi->add_interface(seg2, net::Ipv4Address(192, 168, 1, 2), 24);
  SimIpManager mgr(*multi);
  VipGroup vr{"vr",
              {{net::Ipv4Address(10, 0, 0, 200), 0},
               {net::Ipv4Address(192, 168, 1, 1), 1}}};
  mgr.acquire(vr);
  EXPECT_TRUE(multi->owns_ip(net::Ipv4Address(10, 0, 0, 200)));
  EXPECT_TRUE(multi->owns_ip(net::Ipv4Address(192, 168, 1, 1)));
  mgr.release(vr);
  EXPECT_FALSE(multi->owns_ip(net::Ipv4Address(10, 0, 0, 200)));
  EXPECT_FALSE(multi->owns_ip(net::Ipv4Address(192, 168, 1, 1)));
}

// Satellite regression pin: spoofing a notify target from announce() must
// NOT refresh its TTL clock — only an explicit add_notify_target() does.
// Otherwise the periodic re-announce would keep every stale target alive
// forever and the §5.2 garbage collection could never drop anything.
TEST_F(IpManagerTest, AnnounceDoesNotRefreshNotifyTtl) {
  SimIpManager mgr(*server);
  mgr.set_notify_target_ttl(sim::seconds(10.0));
  mgr.acquire(group);
  mgr.add_notify_target(net::Ipv4Address(10, 0, 0, 7));
  sched.run_for(sim::seconds(8.0));
  mgr.announce(group);  // spoofs the target...
  // ...after the 5 ms ARP-resolution retry inside send_spoofed_reply.
  sched.run_for(sim::milliseconds(10));
  ASSERT_TRUE(peer->arp_cache()
                  .lookup(net::Ipv4Address(10, 0, 0, 100), sched.now())
                  .has_value());
  sched.run_for(sim::seconds(4.0));  // ...but at 12 s of age it still dies
  mgr.announce(group);
  EXPECT_TRUE(mgr.notify_targets().empty());
}

TEST_F(IpManagerTest, AcquireDetectsDuplicateAddress) {
  SimIpManager first(*peer);
  ASSERT_TRUE(first.acquire(group).ok());

  SimIpManager mgr(*server);
  auto r = mgr.acquire(group);
  EXPECT_EQ(r.status, OsOpStatus::kConflict);
  EXPECT_FALSE(mgr.holds("web"));
  EXPECT_FALSE(server->owns_ip(net::Ipv4Address(10, 0, 0, 100)));

  // Once the rightful holder releases, acquisition goes through.
  first.release(group);
  EXPECT_TRUE(mgr.acquire(group).ok());
  EXPECT_TRUE(server->owns_ip(net::Ipv4Address(10, 0, 0, 100)));
}

TEST_F(IpManagerTest, ConflictProbeIgnoresDownedHolders) {
  SimIpManager first(*peer);
  ASSERT_TRUE(first.acquire(group).ok());
  peer->set_interface_up(0, false);  // dead holders can't answer probes

  SimIpManager mgr(*server);
  EXPECT_TRUE(mgr.acquire(group).ok());
}

TEST_F(IpManagerTest, FaultyDefaultsArePassThrough) {
  SimIpManager inner(*server);
  FaultyIpManager mgr(inner, 42);
  EXPECT_TRUE(mgr.acquire(group).ok());
  EXPECT_TRUE(mgr.holds("web"));
  EXPECT_TRUE(mgr.announce(group).ok());
  EXPECT_TRUE(mgr.release(group).ok());
  EXPECT_EQ(mgr.failures_injected(), 0u);
}

TEST_F(IpManagerTest, FaultyStickyFailsAcquireAndAnnounceUntilHealed) {
  SimIpManager inner(*server);
  FaultyIpManager mgr(inner, 42);
  mgr.set_sticky_group("web", true);
  EXPECT_EQ(mgr.acquire(group).status, OsOpStatus::kFailed);
  EXPECT_FALSE(mgr.holds("web"));
  // Sticky state fails the side-effect-free health probe too.
  EXPECT_EQ(mgr.announce(group).status, OsOpStatus::kFailed);
  EXPECT_EQ(mgr.failures_injected(), 2u);
  mgr.heal();
  EXPECT_TRUE(mgr.acquire(group).ok());
  EXPECT_TRUE(mgr.holds("web"));
}

TEST_F(IpManagerTest, FaultyProbabilityOneAlwaysFails) {
  SimIpManager inner(*server);
  FaultyIpManager mgr(inner, 42);
  mgr.set_acquire_fail_probability(1.0);
  EXPECT_EQ(mgr.acquire(group).status, OsOpStatus::kFailed);
  mgr.set_release_fail_probability(1.0);
  EXPECT_EQ(mgr.release(group).status, OsOpStatus::kFailed);
  mgr.heal();
  EXPECT_TRUE(mgr.acquire(group).ok());
  EXPECT_TRUE(mgr.release(group).ok());
}

TEST_F(IpManagerTest, FaultyScheduledFaultFiresOnce) {
  RecordingIpManager inner;
  FaultyIpManager mgr(inner, 42);
  mgr.fail_acquires_after(2);
  EXPECT_TRUE(mgr.acquire(group).ok());                       // 1st passes
  EXPECT_EQ(mgr.acquire(group).status, OsOpStatus::kFailed);  // 2nd fails
  EXPECT_TRUE(mgr.acquire(group).ok());                       // disarmed
  // The injected failure never reached the inner manager.
  EXPECT_EQ(inner.ops(),
            (std::vector<std::string>{"acquire web", "acquire web"}));
}

TEST_F(IpManagerTest, ArpLoseSwallowsAnnouncesSilently) {
  SimIpManager inner(*server);
  FaultyIpManager mgr(inner, 42);
  ASSERT_TRUE(mgr.acquire(group).ok());
  sched.run_all();
  mgr.set_arp_lose(true);
  peer->arp_cache().put(net::Ipv4Address(10, 0, 0, 100),
                        net::MacAddress::from_index(999), sched.now());
  EXPECT_TRUE(mgr.announce(group).ok());  // "succeeds"...
  sched.run_all();
  // ...but the poisoned cache was never repaired: nothing hit the wire.
  EXPECT_EQ(*peer->arp_cache().lookup(net::Ipv4Address(10, 0, 0, 100),
                                      sched.now()),
            net::MacAddress::from_index(999));
  EXPECT_EQ(mgr.failures_injected(), 1u);
}

TEST_F(IpManagerTest, RecordingManagerScriptedResults) {
  RecordingIpManager mgr;
  mgr.push_result(OsOpResult::failed("ebusy"));
  mgr.push_result(OsOpResult::conflict("dup"));
  EXPECT_EQ(mgr.acquire(group).status, OsOpStatus::kFailed);
  EXPECT_FALSE(mgr.holds("web"));
  EXPECT_EQ(mgr.acquire(group).status, OsOpStatus::kConflict);
  EXPECT_FALSE(mgr.holds("web"));
  EXPECT_TRUE(mgr.acquire(group).ok());  // queue drained: success again
  EXPECT_TRUE(mgr.holds("web"));
  EXPECT_EQ(mgr.ops(),
            (std::vector<std::string>{"acquire web [failed]",
                                      "acquire web [conflict]",
                                      "acquire web"}));
}

}  // namespace
}  // namespace wam::wackamole
