// ShardSet unit pins: the exclusive-window scheduler primitive, the
// conservative window schedule, canonical cross-shard tie ordering,
// serial-vs-threaded bit-identity, and worker exception propagation.
#include "sim/shard.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace wam::sim {
namespace {

TEST(RunUntilExclusive, StopsBeforeEndAndAdvancesClock) {
  Scheduler sched;
  std::vector<int> ran;
  sched.schedule_at(TimePoint(milliseconds(1)), [&] { ran.push_back(1); });
  sched.schedule_at(TimePoint(milliseconds(2)), [&] { ran.push_back(2); });
  sched.run_until_exclusive(TimePoint(milliseconds(2)));
  // The event at exactly the window end does NOT run, but the clock lands
  // on the boundary — the next window picks the event up.
  EXPECT_EQ(ran, (std::vector<int>{1}));
  EXPECT_EQ(sched.now(), TimePoint(milliseconds(2)));
  sched.run_until(TimePoint(milliseconds(2)));
  EXPECT_EQ(ran, (std::vector<int>{1, 2}));
}

TEST(RunUntilExclusive, EmptyHeapStillAdvancesClock) {
  Scheduler sched;
  sched.run_until_exclusive(TimePoint(milliseconds(5)));
  EXPECT_EQ(sched.now(), TimePoint(milliseconds(5)));
}

TEST(ShardSet, SingleShardIsTheSequentialEngine) {
  Scheduler sched;
  ShardSet shards(sched, 1, milliseconds(1));
  int ran = 0;
  sched.schedule_at(TimePoint(milliseconds(3)), [&] { ++ran; });
  shards.run_until(TimePoint(milliseconds(3)));
  EXPECT_EQ(ran, 1);  // inclusive deadline, like Scheduler::run_until
  EXPECT_EQ(shards.now(), TimePoint(milliseconds(3)));
  EXPECT_EQ(shards.windows(), 0u);  // no barrier machinery engaged
}

TEST(ShardSet, WindowsCoverTheSpanAndQuiesceTogether) {
  Scheduler sched;
  ShardSet shards(sched, 3, milliseconds(1));
  shards.set_threads(false);
  shards.run_until(TimePoint(milliseconds(10)));
  // 10 ms span at 1 ms lookahead = 10 windows (the last one inclusive).
  EXPECT_EQ(shards.windows(), 10u);
  for (int i = 0; i < shards.size(); ++i) {
    EXPECT_EQ(shards.shard(i).now(), TimePoint(milliseconds(10)));
  }
}

TEST(ShardSet, CrossShardPostDeliversAtItsTimestamp) {
  Scheduler sched;
  ShardSet shards(sched, 2, milliseconds(1));
  shards.set_threads(false);
  TimePoint delivered{};
  // Shard 0 sends at t = 500 us; arrival one lookahead later on shard 1.
  sched.schedule_at(TimePoint(microseconds(500)), [&] {
    shards.post(0, 1, TimePoint(microseconds(1500)),
                util::SmallFn([&] { delivered = shards.shard(1).now(); }));
  });
  shards.run_until(TimePoint(milliseconds(3)));
  EXPECT_EQ(delivered, TimePoint(microseconds(1500)));
  EXPECT_EQ(shards.posts(), 1u);
}

TEST(ShardSet, SameTimestampArrivalsOrderBySourceThenSeq) {
  // Three shards all post to shard 0 with the SAME arrival timestamp; the
  // canonical (when, src, seq) order must hold no matter which shard's
  // window ran first.
  Scheduler sched;
  ShardSet shards(sched, 4, milliseconds(1));
  shards.set_threads(false);
  std::vector<std::string> order;
  const TimePoint at(milliseconds(2));
  for (int src = 3; src >= 1; --src) {  // posted in reverse shard order
    for (int k = 0; k < 2; ++k) {
      shards.shard(src).schedule_at(TimePoint(milliseconds(1)), [&, src, k] {
        shards.post(src, 0, at, util::SmallFn([&, src, k] {
                      order.push_back(std::to_string(src) + "." +
                                      std::to_string(k));
                    }));
      });
    }
  }
  shards.run_until(TimePoint(milliseconds(3)));
  // Sources ascend; within one source the post sequence is preserved.
  // (Each shard's schedule_at events at 1 ms run in insertion order, so
  // src 3 posts seqs 0,1 then src 2 posts 2,3 ... — the sort must undo
  // the reversed source order without disturbing per-source order.)
  EXPECT_EQ(order, (std::vector<std::string>{"1.0", "1.1", "2.0", "2.1",
                                             "3.0", "3.1"}));
}

/// A deterministic little workload: every shard runs a periodic event that
/// logs its (shard, tick) and ping-pongs a message to the next shard.
std::vector<std::string> run_workload(int shard_count, bool threads) {
  Scheduler sched;
  ShardSet shards(sched, shard_count, milliseconds(1));
  shards.set_threads(threads);
  std::vector<std::string> log;
  std::mutex mu;  // threads=on: shards append concurrently
  auto emit = [&](int shard, const std::string& what) {
    std::lock_guard<std::mutex> lock(mu);
    log.push_back(format_time(shards.shard(shard).now()) + " s" +
                  std::to_string(shard) + " " + what);
  };
  for (int s = 0; s < shard_count; ++s) {
    for (int tick = 1; tick <= 8; ++tick) {
      shards.shard(s).schedule_at(
          TimePoint(microseconds(700) * tick), [&, s, tick] {
            emit(s, "tick" + std::to_string(tick));
            const int dst = (s + 1) % shard_count;
            if (dst != s) {
              shards.post(s, dst,
                          shards.shard(s).now() + milliseconds(1),
                          util::SmallFn([&, s, dst] {
                            emit(dst, "from" + std::to_string(s));
                          }));
            }
          });
    }
  }
  shards.run_until(TimePoint(milliseconds(12)));
  return log;
}

TEST(ShardSet, SerialAndThreadedRunsAreBitIdentical) {
  // Identical ordering requires a canonical merge: compare the per-shard
  // subsequences (the global interleaving of the threaded log is timing-
  // dependent, but each shard's own order and timestamps are pinned).
  auto serial = run_workload(3, /*threads=*/false);
  auto threaded = run_workload(3, /*threads=*/true);
  for (int s = 0; s < 3; ++s) {
    const std::string tag = " s" + std::to_string(s) + " ";
    std::vector<std::string> a;
    std::vector<std::string> b;
    for (const auto& line : serial) {
      if (line.find(tag) != std::string::npos) a.push_back(line);
    }
    for (const auto& line : threaded) {
      if (line.find(tag) != std::string::npos) b.push_back(line);
    }
    EXPECT_EQ(a, b) << "shard " << s;
  }
}

TEST(ShardSet, WorkerExceptionPropagatesToCoordinator) {
  Scheduler sched;
  ShardSet shards(sched, 2, milliseconds(1));
  shards.set_threads(true);
  shards.shard(1).schedule_at(TimePoint(microseconds(100)), [] {
    throw std::runtime_error("boom on shard 1");
  });
  EXPECT_THROW(shards.run_until(TimePoint(milliseconds(1))),
               std::runtime_error);
}

TEST(ShardSet, SerialExceptionAlsoPropagates) {
  Scheduler sched;
  ShardSet shards(sched, 2, milliseconds(1));
  shards.set_threads(false);
  shards.shard(1).schedule_at(TimePoint(microseconds(100)), [] {
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(shards.run_until(TimePoint(milliseconds(1))),
               std::runtime_error);
}

TEST(ShardSet, RepeatedRunUntilResumesCleanly) {
  Scheduler sched;
  ShardSet shards(sched, 2, milliseconds(1));
  shards.set_threads(false);
  int ran = 0;
  shards.shard(1).schedule_at(TimePoint(milliseconds(5)), [&] { ++ran; });
  shards.run_until(TimePoint(milliseconds(2)));
  EXPECT_EQ(ran, 0);
  shards.run_until(TimePoint(milliseconds(6)));
  EXPECT_EQ(ran, 1);
  shards.run_for(milliseconds(4));
  EXPECT_EQ(shards.now(), TimePoint(milliseconds(10)));
}

}  // namespace
}  // namespace wam::sim
