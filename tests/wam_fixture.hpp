// Test scaffolding for the Wackamole algorithm layer: a GcsCluster plus a
// Wackamole daemon per host, backed by RecordingIpManagers (no real network
// side effects — algorithm-level tests) unless a test opts into
// SimIpManager through ClusterScenario instead.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "gcs_fixture.hpp"
#include "wackamole/control.hpp"
#include "wackamole/daemon.hpp"

namespace wam::testing {

struct WamCluster : GcsCluster {
  std::vector<std::unique_ptr<wackamole::RecordingIpManager>> ipmgrs;
  std::vector<std::unique_ptr<wackamole::Daemon>> wams;

  explicit WamCluster(int n, wackamole::Config wam_config,
                      gcs::Config gcs_config = gcs::Config::spread_tuned())
      : GcsCluster(n, gcs_config) {
    for (int i = 0; i < n; ++i) {
      auto ipmgr = std::make_unique<wackamole::RecordingIpManager>();
      auto wamd = std::make_unique<wackamole::Daemon>(
          sched, wam_config, *daemons[static_cast<std::size_t>(i)], *ipmgr,
          &log);
      ipmgrs.push_back(std::move(ipmgr));
      wams.push_back(std::move(wamd));
    }
  }

  void start_wam() {
    start_all();
    for (auto& w : wams) w->start();
  }

  /// Coverage of `group` among the given server indices.
  int holders(const std::string& group, const std::vector<int>& servers) {
    int n = 0;
    for (int idx : servers) {
      if (ipmgrs[static_cast<std::size_t>(idx)]->holds(group)) ++n;
    }
    return n;
  }

  /// Property 1 check: every group covered exactly once within the
  /// component and every member in RUN.
  void expect_correctness(const std::vector<int>& component,
                          const char* where) {
    for (int idx : component) {
      EXPECT_EQ(wams[static_cast<std::size_t>(idx)]->state(),
                wackamole::WamState::kRun)
          << where << ": wam " << idx << " not in RUN";
    }
    for (const auto& name :
         wams[0]->config().group_names()) {
      EXPECT_EQ(holders(name, component), 1)
          << where << ": group " << name << " covered "
          << holders(name, component) << " times in component";
    }
  }
};

/// Standard 6-VIP web-cluster style config (mature from the start).
inline wackamole::Config test_config(int vips = 6) {
  std::vector<net::Ipv4Address> addrs;
  for (int k = 0; k < vips; ++k) {
    addrs.push_back(
        net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(100 + k)));
  }
  auto c = wackamole::Config::web_cluster(addrs);
  c.start_mature = true;
  c.maturity_timeout = sim::kZero;
  c.balance_timeout = sim::kZero;  // tests arm balance explicitly
  return c;
}

}  // namespace wam::testing
