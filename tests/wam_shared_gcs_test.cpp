// §4.2: "taking into account the fact that Spread may be used for multiple
// applications concurrently" — two independent Wackamole clusters (disjoint
// VIP sets, different group names) share the same GCS daemons without
// interfering.
#include <gtest/gtest.h>

#include "wam_fixture.hpp"

namespace wam::testing {
namespace {

wackamole::Config cluster_config(const std::string& group, int base_octet,
                                 int vips) {
  std::vector<net::Ipv4Address> addrs;
  for (int k = 0; k < vips; ++k) {
    addrs.push_back(net::Ipv4Address(
        10, 0, 0, static_cast<std::uint8_t>(base_octet + k)));
  }
  auto c = wackamole::Config::web_cluster(addrs);
  c.group = group;
  c.start_mature = true;
  c.maturity_timeout = sim::kZero;
  c.balance_timeout = sim::kZero;
  return c;
}

struct SharedGcsTest : ::testing::Test {
  GcsCluster c{3};
  std::vector<std::unique_ptr<wackamole::RecordingIpManager>> ipmgrs_a,
      ipmgrs_b;
  std::vector<std::unique_ptr<wackamole::Daemon>> wams_a, wams_b;

  void SetUp() override {
    auto config_a = cluster_config("web-tier", 100, 4);
    auto config_b = cluster_config("db-tier", 150, 3);
    for (int i = 0; i < 3; ++i) {
      ipmgrs_a.push_back(
          std::make_unique<wackamole::RecordingIpManager>());
      wams_a.push_back(std::make_unique<wackamole::Daemon>(
          c.sched, config_a, *c.daemons[static_cast<std::size_t>(i)],
          *ipmgrs_a.back(), &c.log));
      ipmgrs_b.push_back(
          std::make_unique<wackamole::RecordingIpManager>());
      wams_b.push_back(std::make_unique<wackamole::Daemon>(
          c.sched, config_b, *c.daemons[static_cast<std::size_t>(i)],
          *ipmgrs_b.back(), &c.log));
    }
    c.start_all();
    for (auto& w : wams_a) w->start();
    for (auto& w : wams_b) w->start();
    c.run(sim::seconds(5.0));
  }

  int holders(std::vector<std::unique_ptr<wackamole::RecordingIpManager>>&
                  mgrs,
              const std::string& group, const std::vector<int>& servers) {
    int n = 0;
    for (int idx : servers) {
      if (mgrs[static_cast<std::size_t>(idx)]->holds(group)) ++n;
    }
    return n;
  }

  void expect_both_exactly_once(const std::vector<int>& component,
                                const char* where) {
    for (const auto& name : wams_a[0]->config().group_names()) {
      EXPECT_EQ(holders(ipmgrs_a, name, component), 1)
          << where << ": web-tier " << name;
    }
    for (const auto& name : wams_b[0]->config().group_names()) {
      EXPECT_EQ(holders(ipmgrs_b, name, component), 1)
          << where << ": db-tier " << name;
    }
  }
};

TEST_F(SharedGcsTest, BothClustersCoverIndependently) {
  expect_both_exactly_once({0, 1, 2}, "initial");
}

TEST_F(SharedGcsTest, FaultReallocatesBoth) {
  c.hosts[2]->set_interface_up(0, false);
  c.run(sim::seconds(6.0));
  expect_both_exactly_once({0, 1}, "after fault");
}

TEST_F(SharedGcsTest, GracefulLeaveOfOneClusterLeavesTheOtherAlone) {
  auto acquires_b_before =
      wams_b[0]->counters().acquires + wams_b[1]->counters().acquires +
      wams_b[2]->counters().acquires;
  auto views_b_before = wams_b[0]->counters().view_changes;
  wams_a[2]->graceful_shutdown();
  c.run(sim::seconds(2.0));
  // web-tier re-covered among survivors...
  for (const auto& name : wams_a[0]->config().group_names()) {
    EXPECT_EQ(holders(ipmgrs_a, name, {0, 1}), 1);
  }
  // ...while db-tier saw no group view change and moved nothing.
  auto acquires_b_after =
      wams_b[0]->counters().acquires + wams_b[1]->counters().acquires +
      wams_b[2]->counters().acquires;
  EXPECT_EQ(acquires_b_after, acquires_b_before);
  EXPECT_EQ(wams_b[0]->counters().view_changes, views_b_before);
}

TEST_F(SharedGcsTest, PartitionAffectsBothConsistently) {
  c.partition({{0}, {1, 2}});
  c.run(sim::seconds(8.0));
  expect_both_exactly_once({0}, "component A");
  expect_both_exactly_once({1, 2}, "component B");
  c.merge();
  c.run(sim::seconds(8.0));
  expect_both_exactly_once({0, 1, 2}, "after merge");
}

}  // namespace
}  // namespace wam::testing
