// Representative-driven allocation mode (§4.2): the representative alone
// computes Reallocate_IPs() and imposes it via ALLOC_MSG. Outcomes must
// match the distributed mode's invariants.
#include <gtest/gtest.h>

#include "wam_fixture.hpp"

namespace wam::testing {
namespace {

wackamole::Config rep_config(int vips) {
  auto c = test_config(vips);
  c.representative_driven = true;
  return c;
}

TEST(WamRepresentative, ClusterConvergesToExactlyOnce) {
  WamCluster c(3, rep_config(6));
  c.start_wam();
  c.run(sim::seconds(5.0));
  c.expect_correctness({0, 1, 2}, "rep-driven initial");
}

TEST(WamRepresentative, FaultReallocation) {
  WamCluster c(3, rep_config(6));
  c.start_wam();
  c.run(sim::seconds(5.0));
  ASSERT_TRUE(c.wams[0]->trigger_balance());
  c.run(sim::seconds(1.0));
  c.hosts[2]->set_interface_up(0, false);
  c.run(sim::seconds(5.0));
  c.expect_correctness({0, 1}, "rep-driven after fault");
  c.expect_correctness({2}, "isolated still covers (it is its own rep)");
}

TEST(WamRepresentative, RepresentativeDeathStillConverges) {
  // The representative itself dies mid-operation: the new view has a new
  // representative, which re-runs the allocation.
  WamCluster c(3, rep_config(6));
  c.start_wam();
  c.run(sim::seconds(5.0));
  c.hosts[0]->set_interface_up(0, false);  // rep = lowest ip = host 0
  c.run(sim::seconds(6.0));
  c.expect_correctness({1, 2}, "after representative death");
}

TEST(WamRepresentative, MergeResolvesConflicts) {
  WamCluster c(4, rep_config(8));
  c.start_wam();
  c.run(sim::seconds(5.0));
  c.partition({{0, 1}, {2, 3}});
  c.run(sim::seconds(8.0));
  c.expect_correctness({0, 1}, "rep-driven partition A");
  c.expect_correctness({2, 3}, "rep-driven partition B");
  c.merge();
  c.run(sim::seconds(8.0));
  c.expect_correctness({0, 1, 2, 3}, "rep-driven merge");
}

TEST(WamRepresentative, OnlyRepresentativeComputes) {
  WamCluster c(3, rep_config(6));
  c.start_wam();
  c.run(sim::seconds(5.0));
  // reallocations counts representative decisions in this mode; only the
  // representative of each view increments it.
  EXPECT_GT(c.wams[0]->counters().reallocations, 0u);
  EXPECT_EQ(c.wams[1]->counters().reallocations, 0u);
  EXPECT_EQ(c.wams[2]->counters().reallocations, 0u);
}

TEST(WamRepresentative, SameFinalAllocationAsDistributedMode) {
  // After identical histories, both modes must land in a table satisfying
  // exactly-once with the same group universe; run the balance round so
  // both are also even.
  WamCluster rep(3, rep_config(6));
  rep.start_wam();
  rep.run(sim::seconds(5.0));
  rep.wams[0]->trigger_balance();
  rep.run(sim::seconds(1.0));

  WamCluster dist(3, test_config(6));
  dist.start_wam();
  dist.run(sim::seconds(5.0));
  dist.wams[0]->trigger_balance();
  dist.run(sim::seconds(1.0));

  rep.expect_correctness({0, 1, 2}, "rep");
  dist.expect_correctness({0, 1, 2}, "dist");
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(rep.wams[static_cast<std::size_t>(i)]->owned().size(),
              dist.wams[static_cast<std::size_t>(i)]->owned().size());
  }
}

class RepPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RepPropertyTest, RandomFaultsPreserveCorrectness) {
  sim::Rng rng(GetParam() * 31 + 7);
  WamCluster c(4, rep_config(7));
  c.start_wam();
  c.run(sim::seconds(5.0));
  for (int phase = 0; phase < 6; ++phase) {
    int k = static_cast<int>(rng.range(1, 2));
    std::vector<std::vector<int>> groups(static_cast<std::size_t>(k));
    for (int i = 0; i < 4; ++i) {
      groups[rng.below(static_cast<std::uint64_t>(k))].push_back(i);
    }
    std::vector<std::vector<int>> nonempty;
    for (auto& g : groups) {
      if (!g.empty()) nonempty.push_back(g);
    }
    c.partition(nonempty);
    c.run(sim::seconds(8.0));
    for (const auto& component : nonempty) {
      c.expect_correctness(component,
                           ("rep phase " + std::to_string(phase)).c_str());
    }
  }
  c.merge();
  c.run(sim::seconds(8.0));
  c.expect_correctness({0, 1, 2, 3}, "rep final");
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepPropertyTest, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace wam::testing
