// EventBus + EventTimeline: subscription lifetimes, sequence stamping,
// bounded recording and the deterministic JSON export.
#include "obs/events.hpp"

#include <gtest/gtest.h>

#include "obs/json.hpp"

namespace wam::obs {
namespace {

Event make_event(std::int64_t t_ns, EventType type, std::string source) {
  Event e;
  e.time = sim::TimePoint(sim::Duration(t_ns));
  e.type = type;
  e.source = std::move(source);
  return e;
}

TEST(EventBus, DeliversToSubscribersAndStampsSequence) {
  EventBus bus;
  std::vector<std::uint64_t> seqs;
  auto sub = bus.subscribe([&](const Event& e) { seqs.push_back(e.seq); });
  bus.publish(make_event(10, EventType::kVipAcquired, "wam/s1"));
  bus.publish(make_event(20, EventType::kVipReleased, "wam/s1"));
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_EQ(seqs[0], 1u);
  EXPECT_EQ(seqs[1], 2u);
  EXPECT_EQ(bus.published(), 2u);
}

TEST(EventBus, SubscriptionTokenDetachesOnResetAndDestruction) {
  EventBus bus;
  int calls = 0;
  {
    auto sub = bus.subscribe([&](const Event&) { ++calls; });
    EXPECT_TRUE(sub.active());
    bus.publish(make_event(0, EventType::kDisconnect, "wam/s1"));
    EXPECT_EQ(calls, 1);
  }  // token destroyed
  bus.publish(make_event(1, EventType::kDisconnect, "wam/s1"));
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(bus.subscriber_count(), 0u);

  auto sub = bus.subscribe([&](const Event&) { ++calls; });
  sub.reset();
  EXPECT_FALSE(sub.active());
  bus.publish(make_event(2, EventType::kDisconnect, "wam/s1"));
  EXPECT_EQ(calls, 1);
}

TEST(EventBus, TokenMayOutliveTheBus) {
  EventBus::Subscription sub;
  {
    EventBus bus;
    sub = bus.subscribe([](const Event&) {});
    EXPECT_TRUE(sub.active());
  }
  EXPECT_FALSE(sub.active());
  sub.reset();  // must not crash
}

TEST(EventBus, HandlerMayUnsubscribeDuringDelivery) {
  EventBus bus;
  int calls = 0;
  EventBus::Subscription sub;
  sub = bus.subscribe([&](const Event&) {
    ++calls;
    sub.reset();  // unsubscribe from inside the callback
  });
  bus.publish(make_event(0, EventType::kBalanceRound, "wam/s1"));
  bus.publish(make_event(1, EventType::kBalanceRound, "wam/s1"));
  EXPECT_EQ(calls, 1);
}

TEST(EventTimeline, RecordsBoundedAndCounts) {
  EventBus bus;
  EventTimeline timeline(bus, 3);
  for (int i = 0; i < 5; ++i) {
    bus.publish(make_event(i, EventType::kViewInstalled, "gcs/s1"));
  }
  bus.publish(make_event(5, EventType::kVipAcquired, "wam/s2"));
  EXPECT_EQ(timeline.size(), 3u);
  EXPECT_EQ(timeline.dropped(), 3u);
  EXPECT_EQ(timeline.count(EventType::kViewInstalled), 2u);
  EXPECT_EQ(timeline.count(EventType::kVipAcquired), 1u);
  EXPECT_EQ(timeline.count(EventType::kVipAcquired, "wam"), 1u);
  EXPECT_EQ(timeline.count(EventType::kVipAcquired, "wam/s2"), 1u);
  EXPECT_EQ(timeline.count(EventType::kVipAcquired, "wam/s"), 0u);
  timeline.clear();
  EXPECT_EQ(timeline.size(), 0u);
  EXPECT_EQ(timeline.dropped(), 0u);
}

TEST(EventTimeline, JsonExportIsDeterministicAndParseable) {
  EventBus bus;
  EventTimeline timeline(bus);
  auto e = make_event(1500000, EventType::kVipAcquired, "wam/s2");
  e.fields = {{"group", "10.0.0.100"}};
  bus.publish(e);
  bus.publish(make_event(2000000, EventType::kStateTransition, "wam/s1"));

  auto json = timeline.to_json();
  EXPECT_EQ(json, timeline.to_json());  // byte-identical re-export

  auto doc = parse_json(json);
  ASSERT_TRUE(doc.is_array());
  ASSERT_EQ(doc.array.size(), 2u);
  const auto& first = doc.array[0];
  EXPECT_EQ(first.at("seq").as_u64(), 1u);
  EXPECT_EQ(first.at("t_ns").as_u64(), 1500000u);
  EXPECT_EQ(first.at("type").string, "VipAcquired");
  EXPECT_EQ(first.at("source").string, "wam/s2");
  EXPECT_EQ(first.at("fields").at("group").string, "10.0.0.100");
}

TEST(Event, FieldLookup) {
  auto e = make_event(0, EventType::kReallocation, "wam/s1");
  e.fields = {{"groups", "4"}, {"mode", "deterministic"}};
  ASSERT_NE(e.field("mode"), nullptr);
  EXPECT_EQ(*e.field("mode"), "deterministic");
  EXPECT_EQ(e.field("absent"), nullptr);
}

TEST(EventTypeName, CoversEveryType) {
  EXPECT_STREQ(event_type_name(EventType::kViewInstalled), "ViewInstalled");
  EXPECT_STREQ(event_type_name(EventType::kStateTransition),
               "StateTransition");
  EXPECT_STREQ(event_type_name(EventType::kVipAcquired), "VipAcquired");
  EXPECT_STREQ(event_type_name(EventType::kVipReleased), "VipReleased");
  EXPECT_STREQ(event_type_name(EventType::kBalanceRound), "BalanceRound");
  EXPECT_STREQ(event_type_name(EventType::kReallocation), "Reallocation");
  EXPECT_STREQ(event_type_name(EventType::kDisconnect), "Disconnect");
  EXPECT_STREQ(event_type_name(EventType::kArpAnnounce), "ArpAnnounce");
  EXPECT_STREQ(event_type_name(EventType::kFaultInjected), "FaultInjected");
  EXPECT_STREQ(event_type_name(EventType::kFaultHealed), "FaultHealed");
}

}  // namespace
}  // namespace wam::obs
