// The Totem-style token-ring ordering engine: same Agreed-delivery
// contract as the sequencer engine, different mechanism (rotating token
// stamps sequence numbers, carries the aru watermark and retransmission
// requests).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gcs_fixture.hpp"

namespace wam::testing {
namespace {

gcs::Config token_config() {
  return gcs::Config::spread_tuned().with_token_ring();
}

struct Rec {
  std::vector<std::string> messages;
  std::unique_ptr<gcs::Client> client;
  explicit Rec(const std::string& name) {
    gcs::ClientCallbacks cb;
    cb.on_message = [this](const gcs::GroupMessage& m) {
      messages.emplace_back(m.payload.begin(), m.payload.end());
    };
    client = std::make_unique<gcs::Client>(name, std::move(cb));
  }
  void send(const std::string& text) {
    client->multicast("g", util::Bytes(text.begin(), text.end()));
  }
};

struct TokenRingTest : ::testing::Test {
  GcsCluster c{4, token_config()};
  std::vector<std::unique_ptr<Rec>> recs;

  void SetUp() override {
    c.start_all();
    c.run(sim::seconds(5.0));
    for (std::size_t i = 0; i < c.daemons.size(); ++i) {
      auto r = std::make_unique<Rec>("t" + std::to_string(i));
      ASSERT_TRUE(r->client->connect(*c.daemons[i]));
      r->client->join("g");
      recs.push_back(std::move(r));
    }
    c.run(sim::seconds(1.0));
  }
};

TEST_F(TokenRingTest, MembershipFormsAndTokenRotates) {
  c.expect_views({{0, 1, 2, 3}}, "token formation");
  auto rotations = c.daemons[0]->counters().token_rotations;
  EXPECT_GT(rotations, 10u);
  c.run(sim::seconds(1.0));
  EXPECT_GT(c.daemons[0]->counters().token_rotations, rotations);
}

TEST_F(TokenRingTest, TotalOrderAcrossSenders) {
  for (int i = 0; i < 12; ++i) {
    recs[static_cast<std::size_t>(i % 4)]->send("m" + std::to_string(i));
  }
  c.run(sim::seconds(2.0));
  ASSERT_EQ(recs[0]->messages.size(), 12u);
  for (auto& r : recs) EXPECT_EQ(r->messages, recs[0]->messages);
}

TEST_F(TokenRingTest, SenderReceivesOwnMessages) {
  recs[2]->send("mine");
  c.run(sim::seconds(1.0));
  ASSERT_FALSE(recs[2]->messages.empty());
  EXPECT_EQ(recs[2]->messages[0], "mine");
}

TEST_F(TokenRingTest, GapsRecoveredThroughTokenRtr) {
  c.fabric.segment_config(c.seg).drop_probability = 0.15;
  for (int i = 0; i < 30; ++i) {
    recs[static_cast<std::size_t>(i % 4)]->send(std::to_string(i));
  }
  c.run(sim::seconds(10.0));
  c.fabric.segment_config(c.seg).drop_probability = 0.0;
  c.run(sim::seconds(5.0));
  ASSERT_EQ(recs[0]->messages.size(), 30u);
  for (auto& r : recs) EXPECT_EQ(r->messages, recs[0]->messages);
  std::uint64_t rexmit = 0;
  for (auto& d : c.daemons) rexmit += d->counters().retransmissions;
  EXPECT_GT(rexmit, 0u);
}

TEST_F(TokenRingTest, TokenLossRecoveredByRetry) {
  // Drop heavily for a short window: some token unicasts die; the holder's
  // retry resends them and the ring keeps turning.
  c.fabric.segment_config(c.seg).drop_probability = 0.5;
  c.run(sim::seconds(2.0));
  c.fabric.segment_config(c.seg).drop_probability = 0.0;
  c.run(sim::seconds(3.0));
  std::uint64_t retries = 0;
  for (auto& d : c.daemons) retries += d->counters().token_retries;
  EXPECT_GT(retries, 0u);
  // Still operational and ordering.
  recs[0]->send("after storm");
  c.run(sim::seconds(1.0));
  EXPECT_EQ(recs[3]->messages.back(), "after storm");
}

TEST_F(TokenRingTest, MemberDeathReformsRing) {
  c.hosts[1]->set_interface_up(0, false);
  c.run(sim::seconds(6.0));
  c.expect_views({{0, 2, 3}}, "ring after death");
  recs[0]->send("post-fault");
  c.run(sim::seconds(1.0));
  EXPECT_EQ(recs[2]->messages.back(), "post-fault");
  EXPECT_EQ(recs[3]->messages.back(), "post-fault");
}

TEST_F(TokenRingTest, PartitionAndMergeKeepAgreement) {
  for (int i = 0; i < 8; ++i) recs[0]->send("pre" + std::to_string(i));
  c.partition({{0, 1}, {2, 3}});
  c.run(sim::seconds(8.0));
  EXPECT_EQ(recs[0]->messages, recs[1]->messages);
  EXPECT_EQ(recs[2]->messages, recs[3]->messages);
  c.merge();
  c.run(sim::seconds(8.0));
  c.expect_views({{0, 1, 2, 3}}, "token merge");
  recs[1]->send("joined");
  c.run(sim::seconds(1.0));
  for (auto& r : recs) {
    ASSERT_FALSE(r->messages.empty());
    EXPECT_EQ(r->messages.back(), "joined");
  }
}

TEST_F(TokenRingTest, SingletonRingWorks) {
  GcsCluster solo(1, token_config());
  solo.start_all();
  solo.run(sim::seconds(5.0));
  Rec r("solo");
  ASSERT_TRUE(r.client->connect(*solo.daemons[0]));
  r.client->join("g");
  solo.run(sim::seconds(1.0));
  r.send("alone");
  solo.run(sim::seconds(1.0));
  ASSERT_EQ(r.messages.size(), 1u);
  EXPECT_EQ(r.messages[0], "alone");
}

TEST_F(TokenRingTest, SafeDeliveryOverTokenStability) {
  recs[0]->client->multicast("g", util::Bytes{'S'},
                             gcs::ServiceType::kSafe);
  c.run(sim::seconds(2.0));
  for (auto& r : recs) {
    ASSERT_EQ(r->messages.size(), 1u);
    EXPECT_EQ(r->messages[0], "S");
  }
}

TEST_F(TokenRingTest, FlowControlWindowCapsPerHold) {
  // Blast 200 messages from one member; the 64-message window forces them
  // across several token holds, but all arrive in order.
  for (int i = 0; i < 200; ++i) recs[0]->send(std::to_string(i));
  c.run(sim::seconds(5.0));
  ASSERT_EQ(recs[1]->messages.size(), 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(recs[1]->messages[static_cast<std::size_t>(i)],
              std::to_string(i));
  }
}

// The Wackamole algorithm must run unchanged on the token-ring engine.
TEST_F(TokenRingTest, StabilityGarbageCollectsUnderTokenAru) {
  for (int i = 0; i < 50; ++i) recs[0]->send(std::to_string(i));
  c.run(sim::seconds(3.0));
  // Force a view change; the sync sets must be small (stable msgs pruned)
  // and nothing may be redelivered.
  c.partition({{0, 1, 2}, {3}});
  c.run(sim::seconds(8.0));
  for (auto& r : recs) {
    std::set<std::string> unique(r->messages.begin(), r->messages.end());
    EXPECT_EQ(unique.size(), r->messages.size());
  }
}

}  // namespace
}  // namespace wam::testing
