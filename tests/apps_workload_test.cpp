#include "apps/workload.hpp"

#include <gtest/gtest.h>

#include "apps/cluster_scenario.hpp"
#include "util/assert.hpp"

namespace wam::apps {
namespace {

WorkloadOptions options_for(ClusterScenario& s, int vips, int clients) {
  WorkloadOptions o;
  for (int k = 0; k < vips; ++k) o.targets.push_back(s.vip(k));
  o.clients = clients;
  return o;
}

TEST(Workload, FullAvailabilityOnHealthyCluster) {
  ClusterOptions opt;
  opt.num_vips = 4;
  ClusterScenario s(opt);
  s.start();
  ASSERT_TRUE(s.run_until_stable(sim::seconds(10.0)));
  Workload w(s.client_host(), options_for(s, 4, 3));
  w.start();
  s.run(sim::seconds(2.0));
  w.stop();
  s.run(sim::milliseconds(100));  // let the last replies land
  EXPECT_GT(w.requests_sent(), 500u);
  EXPECT_GE(w.availability(), 0.99);
}

TEST(Workload, FaultDipsAvailabilityThenRecovers) {
  ClusterOptions opt;
  opt.num_vips = 6;
  opt.num_servers = 3;
  ClusterScenario s(opt);
  s.start();
  ASSERT_TRUE(s.run_until_stable(sim::seconds(10.0)));
  s.wam(0).trigger_balance();
  s.run(sim::seconds(1.0));
  Workload w(s.client_host(), options_for(s, 6, 6));
  w.start();
  s.run(sim::seconds(2.0));
  s.disconnect_server(1);
  s.run(sim::seconds(8.0));
  w.stop();
  s.run(sim::milliseconds(100));

  auto buckets = w.timeline(sim::milliseconds(500));
  ASSERT_GT(buckets.size(), 10u);
  // Beginning: full availability.
  EXPECT_GE(buckets[1].availability(), 0.99);
  // Somewhere in the middle: a dip (the failed server's share goes dark).
  double worst = 1.0;
  for (const auto& b : buckets) worst = std::min(worst, b.availability());
  EXPECT_LT(worst, 0.9);
  // End: recovered to full availability.
  EXPECT_GE(buckets[buckets.size() - 2].availability(), 0.99);
  // Total loss is bounded: roughly (share of VIPs) x (interruption).
  EXPECT_GT(w.lost(), 0u);
  EXPECT_LT(w.availability() < 1.0 ? 1.0 - w.availability() : 0.0, 0.25);
}

TEST(Workload, SpreadsRequestsAcrossTargets) {
  ClusterOptions opt;
  opt.num_vips = 4;
  ClusterScenario s(opt);
  s.start();
  ASSERT_TRUE(s.run_until_stable(sim::seconds(10.0)));
  s.wam(0).trigger_balance();
  s.run(sim::seconds(1.0));
  Workload w(s.client_host(), options_for(s, 4, 1));
  w.start();
  s.run(sim::seconds(1.0));
  w.stop();
  s.run(sim::milliseconds(100));
  // All servers served some requests (round-robin over a balanced table).
  for (int i = 0; i < s.num_servers(); ++i) {
    if (!s.wam(i).owned().empty()) {
      EXPECT_GT(s.server_host(i).counters().udp_received, 0u)
          << "server " << i << " idle";
    }
  }
}

TEST(Workload, RequiresTargets) {
  ClusterScenario s(ClusterOptions{});
  WorkloadOptions empty;
  EXPECT_THROW(Workload(s.client_host(), empty), util::ContractViolation);
}

}  // namespace
}  // namespace wam::apps
