// The shared conf tokenizer/section-parser both conf dialects sit on.
#include "util/conf.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace wam::util::conf {
namespace {

struct TestError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

FailFn thrower() {
  return [](int line_no, const std::string& line, const std::string& why) {
    throw TestError("line " + std::to_string(line_no) + ": " + why + " [" +
                    line + "]");
  };
}

TEST(Conf, TrimAndLower) {
  EXPECT_EQ(trim("  a b \t"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(lower("MixedCase"), "mixedcase");
}

TEST(Conf, ParseDuration) {
  auto fail = thrower();
  EXPECT_EQ(parse_duration("30s", 1, "x", fail), sim::seconds(30.0));
  EXPECT_EQ(parse_duration("2.5ms", 1, "x", fail),
            sim::Duration(2500000));  // 2.5 ms in ns
  EXPECT_THROW((void)parse_duration("fast", 1, "x", fail), TestError);
  EXPECT_THROW((void)parse_duration("10", 1, "x", fail), TestError);
}

TEST(Conf, ParseIntAndBool) {
  auto fail = thrower();
  EXPECT_EQ(parse_int("42", 1, "x", fail), 42);
  EXPECT_THROW((void)parse_int("4x2", 1, "x", fail), TestError);
  EXPECT_TRUE(parse_bool("Yes", 1, "x", fail));
  EXPECT_TRUE(parse_bool("on", 1, "x", fail));
  EXPECT_FALSE(parse_bool("FALSE", 1, "x", fail));
  EXPECT_THROW((void)parse_bool("maybe", 1, "x", fail), TestError);
}

TEST(Conf, ForEachLineStripsCommentsAndBlanks) {
  std::vector<int> line_nos;
  std::vector<std::string> lines;
  for_each_line("# header\n\nKey = 1  # trailing\n  \n Other = 2\n",
                [&](int line_no, const std::string& stripped,
                    const std::string& raw) {
                  line_nos.push_back(line_no);
                  lines.push_back(stripped);
                  EXPECT_EQ(raw.find('#'), std::string::npos);
                });
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(line_nos[0], 3);
  EXPECT_EQ(lines[0], "Key = 1");
  EXPECT_EQ(line_nos[1], 5);
  EXPECT_EQ(lines[1], "Other = 2");
}

TEST(Conf, SplitKeyValue) {
  auto fail = thrower();
  auto kv = split_key_value("HeartBeat = 0.4s", 1, "x", fail);
  EXPECT_EQ(kv.key, "heartbeat");  // lowered
  EXPECT_EQ(kv.value, "0.4s");
  EXPECT_THROW(split_key_value("NoEquals", 1, "x", fail), TestError);
  EXPECT_THROW(split_key_value("Key =", 1, "x", fail), TestError);
}

TEST(Conf, ReturningFailFnIsAProgrammingError) {
  FailFn noop = [](int, const std::string&, const std::string&) {};
  EXPECT_THROW((void)parse_int("bad", 1, "x", noop), std::logic_error);
}

}  // namespace
}  // namespace wam::util::conf
