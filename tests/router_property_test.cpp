// Randomized property test for the virtual-router application (Figure 4):
// across random crash/recover/graceful-leave sequences, the indivisible
// VIP group invariant must hold (a router owns all three addresses or
// none), and after quiescence exactly one reachable router embodies the
// virtual router.
#include <gtest/gtest.h>

#include "apps/router_scenario.hpp"
#include "sim/random.hpp"

namespace wam::apps {
namespace {

class RouterPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RouterPropertyTest, IndivisibilityAndSingleOwnership) {
  sim::Rng rng(GetParam() * 97 + 3);
  RouterScenarioOptions opt;
  opt.num_routers = 3;
  RouterScenario s(opt);
  s.start();
  s.run(sim::seconds(8.0));
  ASSERT_GE(s.active_router(), 0);

  std::set<int> down;
  std::set<int> left;
  for (int phase = 0; phase < 8; ++phase) {
    int action = static_cast<int>(rng.below(3));
    int target = static_cast<int>(rng.below(3));
    switch (action) {
      case 0:  // crash (only if it keeps at least one router alive)
        if (down.size() + left.size() < 2 && down.count(target) == 0 &&
            left.count(target) == 0) {
          s.fail_router(target);
          down.insert(target);
        }
        break;
      case 1:  // recover
        if (down.count(target) > 0) {
          s.recover_router(target);
          down.erase(target);
        }
        break;
      case 2:  // graceful leave
        if (down.size() + left.size() < 2 && down.count(target) == 0 &&
            left.count(target) == 0) {
          s.graceful_leave(target);
          left.insert(target);
        }
        break;
    }

    // Sample the indivisibility invariant while converging.
    for (int step = 0; step < 8; ++step) {
      s.run(sim::seconds(1.0));
      for (int i = 0; i < 3; ++i) {
        EXPECT_TRUE(s.holds_whole_group(i) || s.holds_nothing(i))
            << "seed " << GetParam() << " phase " << phase << ": router "
            << i << " holds a partial group";
      }
    }

    // After quiescence: exactly one reachable, running router is active.
    int active = s.active_router();
    EXPECT_GE(active, -1) << "conflict among reachable routers";
    bool any_candidate = false;
    for (int i = 0; i < 3; ++i) {
      if (down.count(i) == 0 && left.count(i) == 0) any_candidate = true;
    }
    if (any_candidate) {
      EXPECT_GE(active, 0) << "seed " << GetParam() << " phase " << phase
                           << ": nobody embodies the virtual router";
      EXPECT_TRUE(down.count(active) == 0 && left.count(active) == 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace wam::apps
