// Join-ordering regression coverage for the discovery/install membership
// checks (gcs/daemon.cpp). Those checks binary-search sorted member
// vectors (proposed_members_, Discovery.known, Propose.members); if any
// path ever produced an unsorted vector, a member joining in an
// unfavourable id order would be silently missed — the daemon would
// believe a proposal excludes it (spurious re-discovery loop) or that a
// peer doesn't know it (flood never quiesces). These tests drive joins in
// every order class that changes which element the searches probe.
#include <gtest/gtest.h>

#include <algorithm>

#include "gcs_fixture.hpp"

namespace wam::testing {
namespace {

TEST(GcsJoinOrder, AscendingStaggeredJoins) {
  GcsCluster c(4);
  for (int i = 0; i < 4; ++i) {
    c.daemons[static_cast<std::size_t>(i)]->start();
    c.run(sim::seconds(2.0));
  }
  c.run(sim::seconds(5.0));
  c.expect_views({{0, 1, 2, 3}}, "ascending staggered");
}

// The lowest id coordinates installs; starting it LAST means every earlier
// proposal came from a daemon that loses coordinatorship, and the final
// member joins at the front of every sorted member vector.
TEST(GcsJoinOrder, DescendingStaggeredJoins) {
  GcsCluster c(4);
  for (int i = 3; i >= 0; --i) {
    c.daemons[static_cast<std::size_t>(i)]->start();
    c.run(sim::seconds(2.0));
  }
  c.run(sim::seconds(5.0));
  c.expect_views({{0, 1, 2, 3}}, "descending staggered");
}

// Joins landing mid-install cascade back into discovery; the membership
// checks run against proposals from both old and new coordinators.
TEST(GcsJoinOrder, InterleavedJoinsCascade) {
  GcsCluster c(5);
  for (int i : {2, 4, 0, 3, 1}) {
    c.daemons[static_cast<std::size_t>(i)]->start();
    c.run(sim::milliseconds(300));  // shorter than discovery settles
  }
  c.run(sim::seconds(8.0));
  c.expect_views({{0, 1, 2, 3, 4}}, "interleaved");
}

TEST(GcsJoinOrder, RejoinAfterFaultKeepsSortedViews) {
  GcsCluster c(4);
  c.start_all();
  c.run(sim::seconds(5.0));
  c.expect_views({{0, 1, 2, 3}}, "initial");

  // Drop the FIRST member (the coordinator / front of every sorted
  // vector), converge, then bring it back: its rejoin flood must be
  // recognized by peers whose proposed_members_ no longer contains it.
  c.hosts[0]->set_interface_up(0, false);
  c.run(sim::seconds(5.0));
  c.expect_views({{1, 2, 3}}, "after fault");

  c.hosts[0]->set_interface_up(0, true);
  c.run(sim::seconds(8.0));
  c.expect_views({{0, 1, 2, 3}}, "after rejoin");

  for (auto& d : c.daemons) {
    auto members = d->view().members;
    EXPECT_TRUE(std::is_sorted(members.begin(), members.end()))
        << "view member list must stay sorted";
  }
}

}  // namespace
}  // namespace wam::testing
