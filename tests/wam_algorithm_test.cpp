// Algorithm-level tests of the Wackamole daemon (Figure 2 / Algorithms 1-3)
// against the real GCS, with RecordingIpManagers standing in for the OS.
#include <gtest/gtest.h>

#include "wam_fixture.hpp"

namespace wam::testing {
namespace {

using wackamole::WamState;

TEST(WamAlgorithm, SingleServerCoversEverything) {
  WamCluster c(1, test_config(4));
  c.start_wam();
  c.run(sim::seconds(5.0));
  c.expect_correctness({0}, "single");
  EXPECT_EQ(c.wams[0]->owned().size(), 4u);
}

TEST(WamAlgorithm, ThreeServersPartitionTheVipSet) {
  WamCluster c(3, test_config(6));
  c.start_wam();
  c.run(sim::seconds(5.0));
  c.expect_correctness({0, 1, 2}, "initial");
  // Boot churn lets the first joiner grab everything (reallocation only
  // fills holes); the balance round evens the load to 2 groups each.
  ASSERT_TRUE(c.wams[0]->trigger_balance());
  c.run(sim::seconds(1.0));
  c.expect_correctness({0, 1, 2}, "balanced");
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(c.wams[static_cast<std::size_t>(i)]->owned().size(), 2u);
  }
}

TEST(WamAlgorithm, TablesIdenticalAcrossMembers) {
  WamCluster c(3, test_config(6));
  c.start_wam();
  c.run(sim::seconds(5.0));
  auto t0 = c.wams[0]->table().owners();
  for (int i = 1; i < 3; ++i) {
    EXPECT_EQ(c.wams[static_cast<std::size_t>(i)]->table().owners(), t0);
  }
}

TEST(WamAlgorithm, FaultReallocatesTheDeadServersVips) {
  WamCluster c(3, test_config(6));
  c.start_wam();
  c.run(sim::seconds(5.0));
  ASSERT_TRUE(c.wams[0]->trigger_balance());  // give everyone a share
  c.run(sim::seconds(1.0));
  auto lost = c.wams[2]->owned();
  EXPECT_FALSE(lost.empty());
  c.hosts[2]->set_interface_up(0, false);
  c.run(sim::seconds(5.0));
  c.expect_correctness({0, 1}, "after fault");
  // The isolated server covers the complete set in its own component
  // (Property 1 holds per maximal connected component).
  c.expect_correctness({2}, "isolated");
  EXPECT_EQ(c.wams[2]->owned().size(), 6u);
}

TEST(WamAlgorithm, MergeResolvesAllConflicts) {
  WamCluster c(4, test_config(8));
  c.start_wam();
  c.run(sim::seconds(5.0));
  c.partition({{0, 1}, {2, 3}});
  c.run(sim::seconds(8.0));
  // Both components cover the full set: 8 + 8 = 16 holdings overall.
  c.expect_correctness({0, 1}, "component A");
  c.expect_correctness({2, 3}, "component B");
  c.merge();
  c.run(sim::seconds(8.0));
  c.expect_correctness({0, 1, 2, 3}, "after merge");
  // Conflicts were actually dropped by somebody.
  std::uint64_t conflicts = 0;
  for (auto& w : c.wams) conflicts += w->counters().conflicts_dropped;
  EXPECT_GT(conflicts, 0u);
}

TEST(WamAlgorithm, RecoveryRejoinsAndCoversOnce) {
  WamCluster c(3, test_config(6));
  c.start_wam();
  c.run(sim::seconds(5.0));
  c.hosts[0]->set_interface_up(0, false);
  c.run(sim::seconds(5.0));
  c.hosts[0]->set_interface_up(0, true);
  c.run(sim::seconds(8.0));
  c.expect_correctness({0, 1, 2}, "after recovery");
}

TEST(WamAlgorithm, StateMachineVisitsGatherThenRun) {
  WamCluster c(2, test_config(4));
  c.start_wam();
  EXPECT_EQ(c.wams[0]->state(), WamState::kIdle);
  c.run(sim::seconds(5.0));
  EXPECT_EQ(c.wams[0]->state(), WamState::kRun);
  EXPECT_GE(c.wams[0]->counters().view_changes, 1u);
  EXPECT_GE(c.wams[0]->counters().reallocations, 1u);
}

TEST(WamAlgorithm, StaleStateMsgsIgnored) {
  WamCluster c(3, test_config(6));
  c.start_wam();
  c.run(sim::seconds(5.0));
  // Force cascading view changes; stale STATE_MSGs from earlier views must
  // be discarded (Algorithm 2 line 1).
  c.partition({{0, 1}, {2}});
  c.run(sim::milliseconds(1500));
  c.merge();
  c.run(sim::seconds(8.0));
  c.expect_correctness({0, 1, 2}, "after churn");
}

TEST(WamAlgorithm, GcsDaemonDeathDropsAllVips) {
  WamCluster c(3, test_config(6));
  c.start_wam();
  c.run(sim::seconds(5.0));
  EXPECT_FALSE(c.wams[0]->owned().empty());
  c.daemons[0]->stop();
  // Disconnection is synchronous: the Wackamole daemon must already have
  // released everything (§4.2).
  EXPECT_TRUE(c.wams[0]->owned().empty());
  EXPECT_EQ(c.wams[0]->state(), WamState::kIdle);
  EXPECT_FALSE(c.wams[0]->connected());
  c.run(sim::seconds(5.0));
  c.expect_correctness({1, 2}, "survivors");
}

TEST(WamAlgorithm, ReconnectsAfterGcsRestart) {
  WamCluster c(3, test_config(6));
  c.start_wam();
  c.run(sim::seconds(5.0));
  c.daemons[0]->stop();
  c.run(sim::seconds(3.0));
  c.daemons[0]->start();
  c.run(sim::seconds(10.0));
  EXPECT_TRUE(c.wams[0]->connected());
  c.expect_correctness({0, 1, 2}, "after gcs restart");
  EXPECT_GE(c.wams[0]->counters().reconnect_attempts, 1u);
}

TEST(WamAlgorithm, GracefulShutdownLeavesNoHole) {
  WamCluster c(3, test_config(6));
  c.start_wam();
  c.run(sim::seconds(5.0));
  c.wams[2]->graceful_shutdown();
  c.run(sim::seconds(2.0));
  c.expect_correctness({0, 1}, "after graceful leave");
  EXPECT_TRUE(c.wams[2]->owned().empty());
  // No daemon-level reconfiguration was needed (lightweight leave).
  EXPECT_EQ(c.daemons[0]->view().members.size(), 3u);
}

TEST(WamAlgorithm, RepresentativeIsFirstInView) {
  WamCluster c(3, test_config(6));
  c.start_wam();
  c.run(sim::seconds(5.0));
  EXPECT_TRUE(c.wams[0]->is_representative());
  EXPECT_FALSE(c.wams[1]->is_representative());
  EXPECT_FALSE(c.wams[2]->is_representative());
}

TEST(WamAlgorithm, BalanceRedistributesAfterChurn) {
  auto config = test_config(8);
  config.balance_timeout = sim::seconds(10.0);
  WamCluster c(2, config);
  c.start_wam();
  c.run(sim::seconds(5.0));
  // Kill and revive server 1: server 0 takes everything, then the revived
  // server rejoins. Reallocation alone fills holes only, so the load stays
  // lopsided until the balance timer fires.
  c.hosts[1]->set_interface_up(0, false);
  c.run(sim::seconds(5.0));
  EXPECT_EQ(c.wams[0]->owned().size(), 8u);
  c.hosts[1]->set_interface_up(0, true);
  c.run(sim::seconds(5.0));
  c.expect_correctness({0, 1}, "after rejoin");
  // Still lopsided: all 8 sit on one server (the merge's conflict rule
  // decides which); reallocation alone never moves covered groups.
  auto lopsided = std::max(c.wams[0]->owned().size(),
                           c.wams[1]->owned().size());
  EXPECT_EQ(lopsided, 8u);
  c.run(sim::seconds(12.0));  // balance timer fires
  c.expect_correctness({0, 1}, "after balance");
  EXPECT_EQ(c.wams[0]->owned().size(), 4u);
  EXPECT_EQ(c.wams[1]->owned().size(), 4u);
  EXPECT_GE(c.wams[0]->counters().balance_rounds, 1u);
}

TEST(WamAlgorithm, TriggerBalanceOnDemand) {
  auto config = test_config(6);
  WamCluster c(2, config);
  c.start_wam();
  c.run(sim::seconds(5.0));
  c.hosts[1]->set_interface_up(0, false);
  c.run(sim::seconds(5.0));
  c.hosts[1]->set_interface_up(0, true);
  c.run(sim::seconds(5.0));
  auto lopsided = std::max(c.wams[0]->owned().size(),
                           c.wams[1]->owned().size());
  EXPECT_EQ(lopsided, 6u);
  EXPECT_TRUE(c.wams[0]->trigger_balance());
  c.run(sim::seconds(1.0));
  EXPECT_EQ(c.wams[0]->owned().size(), 3u);
  EXPECT_EQ(c.wams[1]->owned().size(), 3u);
  // Non-representative cannot trigger.
  EXPECT_FALSE(c.wams[1]->trigger_balance());
}

TEST(WamAlgorithm, PreferencesSteerReallocation) {
  auto config = test_config(4);
  WamCluster c(2, config);
  // Server 1 (index 1) prefers two specific groups; the balance round must
  // route them there (preferences travel in STATE_MSGs, §3.4).
  auto names = config.group_names();
  c.wams[1]->set_preferences({names[0], names[1]});
  c.start_wam();
  c.run(sim::seconds(5.0));
  ASSERT_TRUE(c.wams[0]->trigger_balance());
  c.run(sim::seconds(1.0));
  c.expect_correctness({0, 1}, "with preferences");
  auto owned1 = c.wams[1]->owned();
  EXPECT_TRUE(std::find(owned1.begin(), owned1.end(), names[0]) !=
              owned1.end());
  EXPECT_TRUE(std::find(owned1.begin(), owned1.end(), names[1]) !=
              owned1.end());
}

TEST(WamAlgorithm, AdminControlCommands) {
  WamCluster c(2, test_config(4));
  c.start_wam();
  c.run(sim::seconds(5.0));
  wackamole::AdminControl ctl(*c.wams[0]);
  auto status = ctl.execute("status");
  EXPECT_NE(status.find("state: RUN"), std::string::npos);
  EXPECT_NE(status.find("[representative]"), std::string::npos);
  EXPECT_NE(ctl.execute("bogus").find("usage:"), std::string::npos);
  EXPECT_NE(ctl.execute("prefer not-a-group").find("error"),
            std::string::npos);
  auto names = c.wams[0]->config().group_names();
  EXPECT_NE(ctl.execute("prefer " + names[0]).find("updated"),
            std::string::npos);
  EXPECT_NE(ctl.execute("leave").find("left"), std::string::npos);
  c.run(sim::seconds(2.0));
  c.expect_correctness({1}, "after admin leave");
}

TEST(WamAlgorithm, CountersTrackActivity) {
  WamCluster c(2, test_config(4));
  c.start_wam();
  c.run(sim::seconds(5.0));
  const auto& counters = c.wams[0]->counters();
  EXPECT_GE(counters.state_msgs_sent, 1u);
  EXPECT_GE(counters.state_msgs_received, 2u);  // self + peer
  EXPECT_GE(counters.acquires, 1u);
}

}  // namespace
}  // namespace wam::testing
