#include "wackamole/vip_table.hpp"

#include <gtest/gtest.h>

namespace wam::wackamole {
namespace {

gcs::DaemonId ip(int n) {
  return gcs::DaemonId(net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(n)));
}

gcs::MemberId member(int n) { return gcs::MemberId{ip(n), 1, "w"}; }

gcs::GroupView view_of(std::initializer_list<int> daemons) {
  gcs::GroupView v;
  v.daemon_view = gcs::ViewId{1, ip(1)};
  for (int d : daemons) v.members.push_back(member(d));
  return v;
}

TEST(VipTable, ClaimUnowned) {
  VipTable t;
  auto r = t.claim("g", member(1), view_of({1, 2}));
  EXPECT_TRUE(r.claimed);
  EXPECT_FALSE(r.dropped.has_value());
  EXPECT_EQ(*t.owner("g"), member(1));
}

TEST(VipTable, ReclaimByOwnerIsIdempotent) {
  VipTable t;
  auto v = view_of({1, 2});
  t.claim("g", member(1), v);
  auto r = t.claim("g", member(1), v);
  EXPECT_TRUE(r.claimed);
  EXPECT_FALSE(r.dropped.has_value());
}

TEST(VipTable, ConflictLaterMemberWins) {
  // The paper's rule: p releases vip if p appears in the membership list
  // BEFORE q. The later claimant keeps the address.
  VipTable t;
  auto v = view_of({1, 2});
  t.claim("g", member(1), v);
  auto r = t.claim("g", member(2), v);
  EXPECT_TRUE(r.claimed);
  ASSERT_TRUE(r.dropped.has_value());
  EXPECT_EQ(*r.dropped, member(1));
  EXPECT_EQ(*t.owner("g"), member(2));
}

TEST(VipTable, ConflictEarlierClaimantLoses) {
  VipTable t;
  auto v = view_of({1, 2});
  t.claim("g", member(2), v);
  auto r = t.claim("g", member(1), v);
  EXPECT_FALSE(r.claimed);
  ASSERT_TRUE(r.dropped.has_value());
  EXPECT_EQ(*r.dropped, member(1));
  EXPECT_EQ(*t.owner("g"), member(2));
}

TEST(VipTable, ConflictResolutionIsSymmetric) {
  // Whatever the arrival order of the two claims, the final owner is the
  // same — this is what makes the distributed procedure deterministic.
  auto v = view_of({1, 2});
  VipTable a;
  a.claim("g", member(1), v);
  a.claim("g", member(2), v);
  VipTable b;
  b.claim("g", member(2), v);
  b.claim("g", member(1), v);
  EXPECT_EQ(*a.owner("g"), *b.owner("g"));
}

TEST(VipTable, LoadAndOwnedBy) {
  VipTable t;
  auto v = view_of({1, 2});
  t.claim("a", member(1), v);
  t.claim("b", member(1), v);
  t.claim("c", member(2), v);
  EXPECT_EQ(t.load_of(member(1)), 2u);
  EXPECT_EQ(t.load_of(member(2)), 1u);
  EXPECT_EQ(t.owned_by(member(1)), (std::vector<std::string>{"a", "b"}));
}

TEST(VipTable, Uncovered) {
  VipTable t;
  t.claim("b", member(1), view_of({1}));
  auto holes = t.uncovered({"a", "b", "c"});
  EXPECT_EQ(holes, (std::vector<std::string>{"a", "c"}));
}

TEST(VipTable, SetAndClearOwner) {
  VipTable t;
  t.set_owner("g", member(3));
  EXPECT_EQ(*t.owner("g"), member(3));
  t.clear_owner("g");
  EXPECT_FALSE(t.owner("g").has_value());
}

TEST(VipTable, ClearEmptiesTable) {
  VipTable t;
  t.set_owner("g", member(1));
  t.clear();
  EXPECT_TRUE(t.owners().empty());
}

TEST(VipTable, DescribeListsOwners) {
  VipTable t;
  t.set_owner("g", member(1));
  EXPECT_NE(t.describe().find("g->"), std::string::npos);
}

}  // namespace
}  // namespace wam::wackamole
