#include "gcs/message.hpp"

#include <gtest/gtest.h>

namespace wam::gcs {
namespace {

DaemonId ip(int n) {
  return DaemonId(net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(n)));
}

DataMessage sample_data() {
  DataMessage d;
  d.view = ViewId{7, ip(1)};
  d.seq = 42;
  d.sender = MemberId{ip(3), 2, "wackamole"};
  d.origin_msg_id = 99;
  d.kind = DataKind::kClientPayload;
  d.group = "wackamole";
  d.payload = {1, 2, 3};
  return d;
}

TEST(GcsMessage, HeartbeatRoundTrip) {
  Heartbeat hb{ip(1), ViewId{3, ip(1)}, false, 17, 12};
  auto m = decode(encode(hb));
  auto& out = std::get<Heartbeat>(m);
  EXPECT_EQ(out.sender, ip(1));
  EXPECT_EQ(out.view, (ViewId{3, ip(1)}));
  EXPECT_FALSE(out.in_op);
  EXPECT_EQ(out.delivered_seq, 17u);
  EXPECT_EQ(out.stable_seq, 12u);
}

TEST(GcsMessage, DiscoveryRoundTrip) {
  Discovery d{ip(2), 9, {ip(1), ip(2), ip(3)}};
  auto out = std::get<Discovery>(decode(encode(d)));
  EXPECT_EQ(out.sender, ip(2));
  EXPECT_EQ(out.epoch, 9u);
  EXPECT_EQ(out.known, d.known);
}

TEST(GcsMessage, ProposeRoundTrip) {
  Propose p{ViewId{4, ip(1)}, {ip(1), ip(5)}};
  auto out = std::get<Propose>(decode(encode(p)));
  EXPECT_EQ(out.view, p.view);
  EXPECT_EQ(out.members, p.members);
}

TEST(GcsMessage, DataRoundTrip) {
  auto d = sample_data();
  auto out = std::get<DataMessage>(decode(encode(Message(d))));
  EXPECT_EQ(out.view, d.view);
  EXPECT_EQ(out.seq, d.seq);
  EXPECT_EQ(out.sender, d.sender);
  EXPECT_EQ(out.sender.name, "wackamole");
  EXPECT_EQ(out.origin_msg_id, d.origin_msg_id);
  EXPECT_EQ(out.kind, d.kind);
  EXPECT_EQ(out.group, d.group);
  EXPECT_EQ(out.payload, d.payload);
}

TEST(GcsMessage, ForwardRoundTrip) {
  Forward f{sample_data()};
  auto out = std::get<Forward>(decode(encode(f)));
  EXPECT_EQ(out.data.origin_msg_id, 99u);
}

TEST(GcsMessage, AcceptRoundTrip) {
  Accept a;
  a.view = ViewId{5, ip(1)};
  a.sender = ip(2);
  a.old_view = ViewId{4, ip(2)};
  a.retained = {sample_data(), sample_data()};
  a.groups = {GroupEntry{"wackamole", MemberId{ip(2), 1, "w"}}};
  a.group_seqs = {{"wackamole", 6}};
  auto out = std::get<Accept>(decode(encode(a)));
  EXPECT_EQ(out.view, a.view);
  EXPECT_EQ(out.sender, a.sender);
  EXPECT_EQ(out.old_view, a.old_view);
  ASSERT_EQ(out.retained.size(), 2u);
  EXPECT_EQ(out.retained[0].seq, 42u);
  ASSERT_EQ(out.groups.size(), 1u);
  EXPECT_EQ(out.groups[0].group, "wackamole");
  ASSERT_EQ(out.group_seqs.size(), 1u);
  EXPECT_EQ(out.group_seqs[0].second, 6u);
}

TEST(GcsMessage, InstallRoundTrip) {
  Install inst;
  inst.view = View{ViewId{5, ip(1)}, {ip(1), ip(2)}};
  inst.sync = {sample_data()};
  inst.groups = {GroupEntry{"g", MemberId{ip(1), 1, "x"}}};
  inst.group_seqs = {{"g", 2}};
  auto out = std::get<Install>(decode(encode(inst)));
  EXPECT_EQ(out.view.id, inst.view.id);
  EXPECT_EQ(out.view.members, inst.view.members);
  ASSERT_EQ(out.sync.size(), 1u);
  EXPECT_EQ(out.sync[0].group, "wackamole");
}

TEST(GcsMessage, NackRoundTrip) {
  Nack n{ViewId{2, ip(1)}, ip(3), DaemonId{}, {4, 5, 9}};
  auto out = std::get<Nack>(decode(encode(n)));
  EXPECT_EQ(out.view, n.view);
  EXPECT_EQ(out.sender, n.sender);
  EXPECT_TRUE(out.fifo_origin.is_any());
  EXPECT_EQ(out.missing, n.missing);
}

TEST(GcsMessage, FifoNackRoundTrip) {
  Nack n{ViewId{2, ip(1)}, ip(3), ip(7), {11}};
  auto out = std::get<Nack>(decode(encode(n)));
  EXPECT_EQ(out.fifo_origin, ip(7));
  EXPECT_EQ(out.missing, n.missing);
}

TEST(GcsMessage, ServiceTypeRoundTrip) {
  auto d = sample_data();
  d.service = ServiceType::kFifo;
  auto out = std::get<DataMessage>(decode(encode(Message(d))));
  EXPECT_EQ(out.service, ServiceType::kFifo);
}

TEST(GcsMessage, DecodeRejectsUnknownType) {
  util::Bytes buf{0x7f};
  EXPECT_THROW(decode(buf), util::DecodeError);
}

TEST(GcsMessage, DecodeRejectsTruncated) {
  auto bytes = encode(Message(sample_data()));
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(decode(bytes), util::DecodeError);
}

TEST(GcsMessage, DecodeRejectsTrailingGarbage) {
  auto bytes = encode(Message(Heartbeat{ip(1), ViewId{1, ip(1)}, true, 0, 0}));
  bytes.push_back(0);
  EXPECT_THROW(decode(bytes), util::DecodeError);
}

TEST(GcsMessage, TypeNames) {
  EXPECT_STREQ(msg_type_name(Message(sample_data())), "DATA");
  EXPECT_STREQ(msg_type_name(Message(Nack{})), "NACK");
  EXPECT_STREQ(msg_type_name(Message(Heartbeat{})), "HEARTBEAT");
}

TEST(ViewId, LexicographicOrdering) {
  EXPECT_LT((ViewId{1, ip(9)}), (ViewId{2, ip(1)}));
  EXPECT_LT((ViewId{2, ip(1)}), (ViewId{2, ip(2)}));
}

TEST(View, RankAndContains) {
  View v{ViewId{1, ip(1)}, {ip(1), ip(3), ip(5)}};
  EXPECT_TRUE(v.contains(ip(3)));
  EXPECT_FALSE(v.contains(ip(2)));
  EXPECT_EQ(v.rank_of(ip(1)), 0);
  EXPECT_EQ(v.rank_of(ip(5)), 2);
  EXPECT_EQ(v.rank_of(ip(4)), -1);
}

}  // namespace
}  // namespace wam::gcs
