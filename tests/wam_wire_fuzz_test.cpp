// Wire-decode robustness: no input — truncated, hostile or random — may do
// anything other than decode cleanly or throw util::DecodeError. The chaos
// campaign drops and reorders frames; a decoder that reads past the buffer
// or turns a hostile length prefix into a giant allocation would convert a
// network fault into memory corruption.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "sim/random.hpp"
#include "wackamole/wire.hpp"

namespace wam::wackamole {
namespace {

struct Codec {
  const char* name;
  util::Bytes encoded;  // a representative well-formed message
  std::function<void(const util::Bytes&)> decode;
};

std::vector<Codec> codecs() {
  StateMsg state;
  state.view = ViewTag{3, 0x0a000001, 9};
  state.mature = true;
  state.owned = {"vip0", "vip1"};
  state.preferred = {"vip1"};
  state.quarantined = {"vip0"};

  NotifyMsg notify;
  notify.view = ViewTag{5, 0x0a000003, 4};
  notify.group = "vip0";
  notify.fenced = true;
  notify.cooldown_ms = 30000;
  notify.reason = "injected failure: acquire vip0";

  BalanceMsg balance;
  balance.view = ViewTag{4, 0x0a000002, 2};
  balance.allocation = {{"vip0", {0x0a000001, 1}}, {"vip1", {0x0a000002, 2}}};

  ArpShareMsg arp;
  arp.ips = {1, 2, 0xdeadbeef};

  return {
      {"state", encode_state(state),
       [](const util::Bytes& b) { (void)decode_state(b); }},
      {"balance", encode_balance(balance),
       [](const util::Bytes& b) { (void)decode_balance(b); }},
      {"alloc", encode_alloc(balance),
       [](const util::Bytes& b) { (void)decode_alloc(b); }},
      {"arp_share", encode_arp_share(arp),
       [](const util::Bytes& b) { (void)decode_arp_share(b); }},
      {"notify", encode_notify(notify),
       [](const util::Bytes& b) { (void)decode_notify(b); }},
      {"state_v2", encode_state_v2(to_v2(state)),
       [](const util::Bytes& b) { (void)decode_state_v2(b); }},
      {"balance_v2", encode_balance_v2(to_v2(balance)),
       [](const util::Bytes& b) { (void)decode_balance_v2(b); }},
      {"alloc_v2", encode_alloc_v2(to_v2(balance)),
       [](const util::Bytes& b) { (void)decode_alloc_v2(b); }},
  };
}

TEST(WamWireFuzz, EveryTruncatedPrefixThrows) {
  for (const auto& c : codecs()) {
    for (std::size_t len = 0; len < c.encoded.size(); ++len) {
      util::Bytes prefix(c.encoded.begin(),
                         c.encoded.begin() + static_cast<std::ptrdiff_t>(len));
      EXPECT_THROW(c.decode(prefix), util::DecodeError)
          << c.name << " prefix of " << len << " bytes";
    }
  }
}

TEST(WamWireFuzz, TrailingGarbageThrows) {
  for (const auto& c : codecs()) {
    auto padded = c.encoded;
    padded.push_back(0x00);
    EXPECT_THROW(c.decode(padded), util::DecodeError) << c.name;
    padded.back() = 0xff;
    EXPECT_THROW(c.decode(padded), util::DecodeError) << c.name;
  }
}

// An element count far larger than the remaining bytes must be rejected
// up front, not fed to reserve()/push_back until memory runs out.
TEST(WamWireFuzz, OversizedCountsAreRejected) {
  {
    util::ByteWriter w;  // ARP share claiming 2^32-1 addresses
    w.u8(static_cast<std::uint8_t>(WamMsgType::kArpShare));
    w.u32(0xffffffff);
    EXPECT_THROW((void)decode_arp_share(w.take()), util::DecodeError);
  }
  {
    util::ByteWriter w;  // STATE with an implausible owned-list count
    w.u8(static_cast<std::uint8_t>(WamMsgType::kState));
    w.u64(1);  // view tag
    w.u32(0x0a000001);
    w.u64(1);
    w.boolean(true);
    w.u32(1);           // weight
    w.u32(0x10000000);  // 268M owned names in an empty remainder
    EXPECT_THROW((void)decode_state(w.take()), util::DecodeError);
  }
  {
    util::ByteWriter w;  // BALANCE with an implausible allocation count
    w.u8(static_cast<std::uint8_t>(WamMsgType::kBalance));
    w.u64(1);
    w.u32(0x0a000001);
    w.u64(1);
    w.u32(0x10000000);
    EXPECT_THROW((void)decode_balance(w.take()), util::DecodeError);
  }
  {
    util::ByteWriter w;  // NOTIFY claiming a 268MB group name
    w.u8(static_cast<std::uint8_t>(WamMsgType::kNotify));
    w.u64(1);  // view tag
    w.u32(0x0a000001);
    w.u64(1);
    w.u32(0x10000000);  // group-name length with an empty remainder
    EXPECT_THROW((void)decode_notify(w.take()), util::DecodeError);
  }
}

// Hand-built v2 corruption: fields the generic mutators rarely hit.
TEST(WamWireFuzz, StateV2WeightWiderThanU32Throws) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(WamMsgType::kStateV2));
  w.u64(3);  // view tag
  w.u32(0x0a000001);
  w.u64(9);
  w.boolean(true);
  w.varint(std::uint64_t{1} << 40);  // weight is declared u32 on the wire
  w.varint(0);                       // empty name table
  w.varint(0);                       // owned
  w.varint(0);                       // preferred
  w.varint(0);                       // quarantined
  EXPECT_THROW((void)decode_state_v2(w.take()), util::DecodeError);
}

TEST(WamWireFuzz, StateV2NameTableIndexOutOfRangeThrows) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(WamMsgType::kStateV2));
  w.u64(3);
  w.u32(0x0a000001);
  w.u64(9);
  w.boolean(true);
  w.varint(7);       // weight
  w.varint(1);       // name table of one entry...
  w.vstr("vip0");
  w.varint(1);       // ...but the owned list cites entry 5
  w.varint(5);
  w.varint(0);
  w.varint(0);
  EXPECT_THROW((void)decode_state_v2(w.take()), util::DecodeError);
}

TEST(WamWireFuzz, BalanceV2OwnerIndexOutOfRangeThrows) {
  util::ByteWriter w;
  w.u8(static_cast<std::uint8_t>(WamMsgType::kBalanceV2));
  w.u64(4);
  w.u32(0x0a000002);
  w.u64(2);
  w.varint(1);  // one owner
  w.u32(0x0a000001);
  w.u32(1);
  w.varint(1);  // one allocation entry pointing past the owner table
  w.vstr("vip0");
  w.varint(3);
  EXPECT_THROW((void)decode_balance_v2(w.take()), util::DecodeError);
}

// Deterministic mutation fuzzing: flip random bytes of valid messages and
// random buffers; the decoders must either succeed or throw DecodeError —
// any other escape (crash, other exception type) fails the test. Runs
// under ASan+UBSan in CI, where out-of-bounds reads become hard failures.
TEST(WamWireFuzz, MutatedMessagesNeverEscapeDecodeError) {
  sim::Rng rng(20260805);
  auto all = codecs();
  for (int round = 0; round < 2000; ++round) {
    const auto& c = all[static_cast<std::size_t>(
        rng.below(static_cast<std::uint64_t>(all.size())))];
    auto buf = c.encoded;
    auto flips = 1 + rng.below(4);
    for (std::uint64_t f = 0; f < flips; ++f) {
      auto pos = static_cast<std::size_t>(
          rng.below(static_cast<std::uint64_t>(buf.size())));
      buf[pos] = static_cast<std::uint8_t>(rng.below(256));
    }
    try {
      c.decode(buf);
    } catch (const util::DecodeError&) {
      // expected for most mutations
    }
  }
}

// Varint-targeted mutation: splice runs of 0xff continuation bytes into
// valid messages, stretching whatever varint (or length prefix) they land
// in far past its declared width. Complements the byte-flip suite, which
// rarely manufactures an over-wide varint.
TEST(WamWireFuzz, VarintStuffedMutationsNeverEscapeDecodeError) {
  sim::Rng rng(20260808);
  auto all = codecs();
  for (int round = 0; round < 2000; ++round) {
    const auto& c = all[static_cast<std::size_t>(
        rng.below(static_cast<std::uint64_t>(all.size())))];
    auto buf = c.encoded;
    auto pos = static_cast<std::ptrdiff_t>(
        rng.below(static_cast<std::uint64_t>(buf.size())));
    auto run = static_cast<std::size_t>(1 + rng.below(10));
    buf.insert(buf.begin() + pos, run, 0xff);
    try {
      c.decode(buf);
    } catch (const util::DecodeError&) {
      // expected for most splices
    }
  }
}

TEST(WamWireFuzz, RandomBuffersNeverEscapeDecodeError) {
  sim::Rng rng(777);
  auto all = codecs();
  for (int round = 0; round < 2000; ++round) {
    util::Bytes buf(static_cast<std::size_t>(rng.below(64)));
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.below(256));
    for (const auto& c : all) {
      try {
        c.decode(buf);
      } catch (const util::DecodeError&) {
      }
    }
    try {
      (void)peek_type(buf);
    } catch (const util::DecodeError&) {
    }
  }
}

}  // namespace
}  // namespace wam::wackamole
