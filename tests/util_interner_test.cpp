// util::Interner: dense ids, stable references, thread safety under the
// concurrent intern storm chaos::ParallelRunner subjects the process-wide
// group table to.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "util/interner.hpp"

namespace wam::util {
namespace {

TEST(Interner, IdsAreDenseAndFirstInternOrder) {
  Interner t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.intern("alpha"), 0u);
  EXPECT_EQ(t.intern("beta"), 1u);
  EXPECT_EQ(t.intern("alpha"), 0u) << "re-intern must return the same id";
  EXPECT_EQ(t.intern("gamma"), 2u);
  EXPECT_EQ(t.size(), 3u);
}

TEST(Interner, FindMissesUntilInterned) {
  Interner t;
  EXPECT_FALSE(t.find("x").has_value());
  auto id = t.intern("x");
  ASSERT_TRUE(t.find("x").has_value());
  EXPECT_EQ(*t.find("x"), id);
  EXPECT_FALSE(t.find("y").has_value());
}

TEST(Interner, NameOfRoundTripsAndThrowsOnUnknown) {
  Interner t;
  auto id = t.intern("the-name");
  EXPECT_EQ(t.name_of(id), "the-name");
  EXPECT_THROW((void)t.name_of(id + 1), std::out_of_range);
}

TEST(Interner, ReferencesStayStableAcrossGrowth) {
  Interner t;
  const std::string* first = &t.name_of(t.intern("first"));
  for (int i = 0; i < 10000; ++i) t.intern("filler-" + std::to_string(i));
  EXPECT_EQ(&t.name_of(0), first)
      << "deque-backed storage must never move interned strings";
  EXPECT_EQ(*first, "first");
}

TEST(Interner, EmptyStringIsAValidKey) {
  Interner t;
  auto id = t.intern("");
  EXPECT_EQ(t.name_of(id), "");
  EXPECT_EQ(t.intern(""), id);
}

TEST(Interner, ConcurrentInternsAgreeOnIds) {
  Interner t;
  constexpr int kThreads = 8;
  constexpr int kNames = 200;
  std::vector<std::vector<std::uint32_t>> ids(
      kThreads, std::vector<std::uint32_t>(kNames));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&t, &ids, w] {
      for (int i = 0; i < kNames; ++i) {
        // Every thread interns the same names in a different order.
        int n = (i * 7 + w * 13) % kNames;
        ids[static_cast<std::size_t>(w)][static_cast<std::size_t>(n)] =
            t.intern("shared-" + std::to_string(n));
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(t.size(), static_cast<std::size_t>(kNames));
  std::set<std::uint32_t> seen;
  for (int n = 0; n < kNames; ++n) {
    auto id = ids[0][static_cast<std::size_t>(n)];
    for (int w = 1; w < kThreads; ++w) {
      EXPECT_EQ(ids[static_cast<std::size_t>(w)][static_cast<std::size_t>(n)],
                id)
          << "threads disagree on the id of shared-" << n;
    }
    EXPECT_EQ(t.name_of(id), "shared-" + std::to_string(n));
    seen.insert(id);
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kNames));
}

}  // namespace
}  // namespace wam::util
