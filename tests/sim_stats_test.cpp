#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace wam::sim {
namespace {

TEST(Stats, EmptyGuards) {
  Stats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.summary(), "n=0");
  EXPECT_THROW(s.mean(), util::ContractViolation);
  EXPECT_THROW(s.percentile(50), util::ContractViolation);
}

TEST(Stats, BasicMoments) {
  Stats s;
  for (double x : {2.0, 4.0, 6.0, 8.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
  EXPECT_NEAR(s.stddev(), 2.5819888974716, 1e-9);
}

TEST(Stats, SingleSampleStddevZero) {
  Stats s;
  s.add(3.14);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, Percentiles) {
  Stats s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(90), 90.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.median(), 50.0);
}

TEST(Stats, AcceptsDurations) {
  Stats s;
  s.add(milliseconds(1500));
  EXPECT_DOUBLE_EQ(s.mean(), 1.5);  // stored in seconds
}

TEST(Stats, SummaryMentionsCount) {
  Stats s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_NE(s.summary().find("n=2"), std::string::npos);
}

}  // namespace
}  // namespace wam::sim
