#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace wam::sim {
namespace {

TEST(Stats, EmptyGuards) {
  Stats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.summary(), "n=0");
  EXPECT_THROW(s.mean(), util::ContractViolation);
  EXPECT_THROW(s.percentile(50), util::ContractViolation);
}

TEST(Stats, BasicMoments) {
  Stats s;
  for (double x : {2.0, 4.0, 6.0, 8.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
  EXPECT_NEAR(s.stddev(), 2.5819888974716, 1e-9);
}

TEST(Stats, SingleSampleStddevZero) {
  Stats s;
  s.add(3.14);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, Percentiles) {
  Stats s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(90), 90.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.median(), 50.0);
}

TEST(Stats, AcceptsDurations) {
  Stats s;
  s.add(milliseconds(1500));
  EXPECT_DOUBLE_EQ(s.mean(), 1.5);  // stored in seconds
}

TEST(Stats, SummaryMentionsCount) {
  Stats s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_NE(s.summary().find("n=2"), std::string::npos);
}

TEST(Stats, QuantileIsPercentileOverHundred) {
  Stats s;
  for (int i = 1; i <= 1000; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.quantile(0.5), s.percentile(50));
  EXPECT_DOUBLE_EQ(s.quantile(0.99), s.percentile(99));
  EXPECT_DOUBLE_EQ(s.quantile(0.999), s.percentile(99.9));
  // Tail quantiles land where they should on a 1..1000 ramp.
  EXPECT_NEAR(s.quantile(0.99), 990.0, 1.0);
  EXPECT_NEAR(s.quantile(0.999), 999.0, 1.0);
}

TEST(Stats, MergeMatchesAddingEverySample) {
  Stats merged;
  Stats reference;
  Stats shard_a;
  Stats shard_b;
  for (int i = 0; i < 100; ++i) {
    double x = static_cast<double>((i * 37) % 100);
    (i % 2 == 0 ? shard_a : shard_b).add(x);
    reference.add(x);
  }
  merged.merge(shard_a);
  merged.merge(shard_b);
  ASSERT_EQ(merged.count(), reference.count());
  EXPECT_DOUBLE_EQ(merged.mean(), reference.mean());
  EXPECT_DOUBLE_EQ(merged.min(), reference.min());
  EXPECT_DOUBLE_EQ(merged.max(), reference.max());
  for (double p : {1.0, 25.0, 50.0, 90.0, 99.0, 99.9}) {
    EXPECT_DOUBLE_EQ(merged.percentile(p), reference.percentile(p)) << p;
  }
}

TEST(Stats, MergeReusesSortedViews) {
  // Both sides already queried (sorted views cached): merging must keep
  // percentile() answers identical to a from-scratch sort.
  Stats a;
  Stats b;
  for (int i = 100; i > 0; --i) a.add(static_cast<double>(i));
  for (int i = 200; i > 100; --i) b.add(static_cast<double>(i));
  (void)a.percentile(50);  // warm both caches
  (void)b.percentile(50);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_DOUBLE_EQ(a.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(a.percentile(100), 200.0);
  EXPECT_NEAR(a.percentile(50), 100.5, 1.0);
}

TEST(Stats, MergeIntoEmptyAndFromEmpty) {
  Stats empty;
  Stats full;
  full.add(1.0);
  full.add(2.0);
  full.merge(empty);  // no-op
  EXPECT_EQ(full.count(), 2u);
  Stats target;
  target.merge(full);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 1.5);
}

}  // namespace
}  // namespace wam::sim
