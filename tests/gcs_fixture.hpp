// Shared test scaffolding: a cluster of hosts each running a GCS daemon on
// one LAN segment, with helpers for partition injection and convergence.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gcs/client.hpp"
#include "gcs/daemon.hpp"
#include "net/fabric.hpp"
#include "net/host.hpp"

namespace wam::testing {

struct GcsCluster {
  sim::Scheduler sched;
  sim::Log log{sched};
  net::Fabric fabric{sched, &log};
  net::SegmentId seg = fabric.add_segment();
  std::vector<std::unique_ptr<net::Host>> hosts;
  std::vector<std::unique_ptr<gcs::Daemon>> daemons;

  explicit GcsCluster(int n, gcs::Config config = gcs::Config::spread_tuned()) {
    for (int i = 0; i < n; ++i) {
      auto host = std::make_unique<net::Host>(
          sched, fabric, "s" + std::to_string(i + 1), &log);
      host->add_interface(
          seg, net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i + 1)),
          24);
      auto daemon = std::make_unique<gcs::Daemon>(*host, config, &log);
      hosts.push_back(std::move(host));
      daemons.push_back(std::move(daemon));
    }
  }

  void start_all() {
    for (auto& d : daemons) d->start();
  }

  void run(sim::Duration d) { sched.run_for(d); }

  /// Partition the segment into groups given by host indices.
  void partition(const std::vector<std::vector<int>>& groups) {
    std::vector<std::vector<net::NicId>> nic_groups;
    for (const auto& group : groups) {
      std::vector<net::NicId> nics;
      for (int idx : group) {
        nics.push_back(hosts[static_cast<std::size_t>(idx)]->nic_id(0));
      }
      nic_groups.push_back(std::move(nics));
    }
    fabric.set_partition(seg, nic_groups);
  }

  void merge() { fabric.merge_segment(seg); }

  /// True when every running daemon with a reachable peer set has converged
  /// to an operational view consistent with `expected_components` (given as
  /// host-index groups).
  void expect_views(const std::vector<std::vector<int>>& components,
                    const char* where) {
    for (const auto& component : components) {
      std::vector<gcs::DaemonId> expected;
      for (int idx : component) {
        expected.push_back(daemons[static_cast<std::size_t>(idx)]->id());
      }
      std::sort(expected.begin(), expected.end());
      for (int idx : component) {
        auto& d = *daemons[static_cast<std::size_t>(idx)];
        EXPECT_TRUE(d.in_op()) << where << ": daemon " << idx << " not in OP";
        EXPECT_EQ(d.view().members, expected)
            << where << ": daemon " << idx << " has view "
            << d.view().to_string();
      }
    }
  }
};

}  // namespace wam::testing
