// Self-stabilization, GCS side: the ViewAuditor's TMR-lite shadow of the
// installed view, and the daemon's heal path — restore the shadow, fold
// the epoch high-water into the next incarnation, re-enter discovery.
#include "gcs/audit.hpp"

#include <gtest/gtest.h>

#include "apps/cluster_scenario.hpp"
#include "gcs/daemon.hpp"

namespace wam::gcs {
namespace {

DaemonId id(int last) {
  return net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(last));
}

View view(std::uint64_t epoch, std::vector<DaemonId> members) {
  return View{ViewId{epoch, members.front()}, std::move(members)};
}

// ------------------------------------------------------- shadow auditor ----

TEST(ViewAuditor, SilentBeforeTheFirstRecord) {
  ViewAuditor a;
  EXPECT_FALSE(a.audit(view(1, {id(1)}), id(1)).has_value());
}

TEST(ViewAuditor, CleanViewMatchesItsShadow) {
  ViewAuditor a;
  auto v = view(3, {id(1), id(2), id(3)});
  a.record(v);
  EXPECT_FALSE(a.audit(v, id(2)).has_value());
  EXPECT_EQ(a.shadow_epoch(), 3u);
}

TEST(ViewAuditor, FlippedEpochIsAnIdMismatch) {
  ViewAuditor a;
  auto v = view(3, {id(1), id(2)});
  a.record(v);
  auto live = v;
  live.id.epoch ^= 0x40;  // exactly what chaos_flip_view_epoch() does
  auto f = a.audit(live, id(1));
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->check, ViewCheck::kIdMismatch);
}

TEST(ViewAuditor, MutatedMembershipIsAMembersMismatch) {
  ViewAuditor a;
  auto v = view(3, {id(1), id(2), id(3)});
  a.record(v);
  auto live = v;
  live.members.pop_back();
  auto f = a.audit(live, id(1));
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->check, ViewCheck::kMembersMismatch);
}

TEST(ViewAuditor, EpochHighWaterSurvivesLaterRecords) {
  ViewAuditor a;
  a.record(view(5, {id(1), id(2)}));
  // A corrupted re-record below the high-water mark: the shadow follows,
  // but the epoch high-water does not regress — the audit flags it.
  auto old_view = view(3, {id(1), id(2)});
  a.record(old_view);
  EXPECT_EQ(a.shadow_epoch(), 5u);
  auto f = a.audit(old_view, id(1));
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->check, ViewCheck::kEpochRegressed);
}

TEST(ViewAuditor, SelfEvictedFromItsOwnViewIsAFinding) {
  ViewAuditor a;
  auto v = view(4, {id(1), id(2)});
  a.record(v);
  auto f = a.audit(v, id(9));
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->check, ViewCheck::kSelfMissing);
}

// ------------------------------------------------------- daemon healing ----

apps::ClusterOptions audited_cluster() {
  apps::ClusterOptions opt;
  opt.num_servers = 3;
  opt.num_vips = 5;
  opt.with_router = false;
  opt.audit_interval = sim::milliseconds(250);
  opt.resync_delay = sim::milliseconds(500);
  opt.resync_backoff_max = sim::seconds(4.0);
  opt.gcs.audit_interval = sim::milliseconds(250);
  opt.quarantine_cooldown = sim::seconds(5.0);
  return opt;
}

TEST(GcsSelfHeal, FlippedViewEpochHealsThroughRediscovery) {
  apps::ClusterScenario s(audited_cluster());
  s.start();
  ASSERT_TRUE(s.run_until_stable(sim::seconds(10.0)));
  ASSERT_TRUE(s.flip_view_id(1));
  s.run(sim::seconds(2.0));
  EXPECT_GE(s.gcs_daemon(1).counters().corruptions_detected.value(), 1u);
  EXPECT_GE(s.gcs_daemon(1).counters().self_heals.value(), 1u);
  ASSERT_TRUE(s.run_until_stable(sim::seconds(20.0)));
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(s.gcs_daemon(i).view_audit_clean()) << "server " << i;
  }
  EXPECT_TRUE(s.coverage_exactly_once(s.all_servers()));
}

TEST(GcsSelfHeal, ReconfigStormConvergesUnderResyncBackoff) {
  apps::ClusterScenario s(audited_cluster());
  s.start();
  ASSERT_TRUE(s.run_until_stable(sim::seconds(10.0)));
  ASSERT_TRUE(s.reconfig_storm(0));
  // Three forced rediscoveries 200 ms apart; membership churn plus the
  // wackamole resync damping must still reconverge to exactly-once.
  ASSERT_TRUE(s.run_until_stable(sim::seconds(30.0)));
  s.run(sim::seconds(6.0));
  EXPECT_TRUE(s.coverage_exactly_once(s.all_servers()));
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(s.gcs_daemon(i).view_audit_clean()) << "server " << i;
  }
}

TEST(GcsSelfHeal, ChaosHooksRequireARunningDaemon) {
  apps::ClusterScenario s(audited_cluster());
  s.start();
  ASSERT_TRUE(s.run_until_stable(sim::seconds(10.0)));
  s.crash_daemon(2);
  s.run(sim::seconds(1.0));
  EXPECT_FALSE(s.flip_view_id(2));
  EXPECT_FALSE(s.reconfig_storm(2));
}

}  // namespace
}  // namespace wam::gcs
